(* Tests for the domain work pool: ordering, failure propagation,
   nesting rules, and the determinism contract — parallel runs of the
   grounding and the solvers must reproduce the sequential results. *)

module Pool = Prelude.Pool
module Network = Mln.Network

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

(* ------------------------------------------------------------------ *)
(* Pool combinators.                                                   *)

let test_map_order () =
  let pool = Pool.create ~jobs:4 in
  let xs = List.init 200 Fun.id in
  Alcotest.(check (list int))
    "input order" (List.map (fun x -> x * x) xs)
    (Pool.map pool (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "sequential agrees"
    (Pool.map Pool.sequential (fun x -> x * x) xs)
    (Pool.map pool (fun x -> x * x) xs)

let test_map_array () =
  let pool = Pool.create ~jobs:3 in
  let xs = Array.init 50 string_of_int in
  Alcotest.(check (array string)) "array order" xs
    (Pool.map_array pool Fun.id xs)

let test_exception_propagation () =
  let pool = Pool.create ~jobs:4 in
  Alcotest.check_raises "task failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.map pool
           (fun x -> if x = 17 then failwith "boom" else x)
           (List.init 64 Fun.id)));
  (* The pool stays usable after a failed operation. *)
  Alcotest.(check (list int)) "pool recovers" [ 0; 1; 2 ]
    (Pool.map pool Fun.id [ 0; 1; 2 ])

let test_nested_use_rejected () =
  let pool = Pool.create ~jobs:2 in
  Alcotest.check_raises "nested submit" Pool.Nested_use (fun () ->
      ignore
        (Pool.map pool
           (fun _ -> List.length (Pool.map pool Fun.id [ 1; 2; 3 ]))
           [ 1; 2; 3; 4 ]))

let test_sequential_nesting_allowed () =
  (* jobs = 1 pools are plain loops and may nest freely. *)
  let total =
    Pool.map Pool.sequential
      (fun x ->
        List.fold_left ( + ) 0 (Pool.map Pool.sequential (fun y -> x * y) [ 1; 2 ]))
      [ 1; 2; 3 ]
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "nested sequential" 18 total

let test_cross_pool_nesting_degrades () =
  (* Submitting to a different pool from inside a task falls back to a
     sequential loop instead of deadlocking. *)
  let outer = Pool.create ~jobs:2 in
  let inner = Pool.create ~jobs:2 in
  let results =
    Pool.map outer
      (fun x ->
        List.fold_left ( + ) 0 (Pool.map inner (fun y -> x + y) [ 1; 2; 3 ]))
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list int)) "cross-pool results"
    (List.init 8 (fun x -> (3 * x) + 6))
    results

let test_run_all () =
  let pool = Pool.create ~jobs:4 in
  let hits = Array.make 32 false in
  Pool.run_all pool
    (List.init 32 (fun i () -> hits.(i) <- true));
  Alcotest.(check bool) "all thunks ran" true (Array.for_all Fun.id hits)

let test_for_chunked_sum () =
  (* Per-chunk partial sums reduce identically at any job count because
     chunk boundaries only depend on [chunk] and [n]. *)
  let n = 10_000 and chunk = 64 in
  let nchunks = (n + chunk - 1) / chunk in
  let sum_with jobs =
    let pool = Pool.create ~jobs in
    let parts = Array.make nchunks 0.0 in
    Pool.for_ pool ~chunk n (fun i ->
        parts.(i / chunk) <- parts.(i / chunk) +. (1.0 /. float_of_int (i + 1)));
    Array.fold_left ( +. ) 0.0 parts
  in
  let s1 = sum_with 1 and s4 = sum_with 4 in
  Alcotest.(check bool)
    (Printf.sprintf "bitwise equal sums (%.17g vs %.17g)" s1 s4)
    true (Int64.equal (Int64.bits_of_float s1) (Int64.bits_of_float s4))

let test_stats () =
  let pool = Pool.create ~jobs:4 in
  ignore (Pool.map pool Fun.id (List.init 10 Fun.id));
  Pool.run_all pool [ (fun () -> ()); (fun () -> ()) ];
  let s = Pool.stats pool in
  Alcotest.(check int) "calls" 2 s.Pool.calls;
  Alcotest.(check int) "tasks" 12 s.Pool.tasks;
  Alcotest.(check bool) "wall measured" true (s.Pool.wall_ms >= 0.0)

let test_create_and_parse () =
  Alcotest.(check int) "jobs resolved" 3 (Pool.jobs (Pool.create ~jobs:3));
  Alcotest.(check int) "jobs 0 = recommended"
    (Pool.recommended_jobs ())
    (Pool.jobs (Pool.create ~jobs:0));
  Alcotest.check_raises "negative jobs"
    (Invalid_argument "Pool.create: jobs < 0") (fun () ->
      ignore (Pool.create ~jobs:(-1)));
  Alcotest.(check (option int)) "parse 4" (Some 4) (Pool.parse_jobs (Some "4"));
  Alcotest.(check (option int)) "parse 0"
    (Some (Pool.recommended_jobs ()))
    (Pool.parse_jobs (Some "0"));
  Alcotest.(check (option int)) "parse junk" None (Pool.parse_jobs (Some "x"));
  Alcotest.(check (option int)) "parse negative" None
    (Pool.parse_jobs (Some "-2"));
  Alcotest.(check (option int)) "parse absent" None (Pool.parse_jobs None)

(* ------------------------------------------------------------------ *)
(* Determinism across job counts.                                      *)

(* Same generator family as test_mln's solver-agreement property. *)
let random_network rng =
  let num_atoms = 2 + Prelude.Prng.int rng 6 in
  let num_clauses = 3 + Prelude.Prng.int rng 10 in
  let clauses =
    Array.init num_clauses (fun i ->
        let len = 1 + Prelude.Prng.int rng 3 in
        let literals =
          Array.init len (fun _ ->
              {
                Network.atom = Prelude.Prng.int rng num_atoms;
                positive = Prelude.Prng.bool rng;
              })
        in
        {
          Network.literals;
          weight =
            (if Prelude.Prng.bernoulli rng 0.2 then None
             else Some (0.5 +. Prelude.Prng.float rng 3.0));
          source = Printf.sprintf "c%d" i;
        })
  in
  { Network.num_atoms; clauses }

let walksat_jobs_property =
  QCheck.Test.make ~count:40
    ~name:"maxwalksat: jobs=4 equals jobs=1 (assignment and costs)"
    QCheck.(pair small_int small_int)
    (fun (net_seed, solve_seed) ->
      let network = random_network (Prelude.Prng.create net_seed) in
      let solve pool =
        Mln.Maxwalksat.solve ~seed:solve_seed ~max_flips:2_000 ~restarts:4
          ~portfolio:[ 11; 23 ] ~pool network
      in
      let a1, s1 = solve Pool.sequential in
      let a4, s4 = solve (Pool.create ~jobs:4) in
      a1 = a4
      && s1.Mln.Maxwalksat.hard_violated = s4.Mln.Maxwalksat.hard_violated
      && s1.Mln.Maxwalksat.soft_cost = s4.Mln.Maxwalksat.soft_cost)

let ground_fixture () =
  let d = Datagen.Footballdb.generate ~seed:21 ~players:40 ~noise_ratio:0.5 () in
  (d.Datagen.Footballdb.graph, Datagen.Footballdb.constraints ())

let grounding_jobs_property =
  QCheck.Test.make ~count:10 ~name:"grounding: jobs=4 equals jobs=1"
    QCheck.small_int
    (fun seed ->
      let d =
        Datagen.Footballdb.generate ~seed ~players:25 ~noise_ratio:0.5 ()
      in
      let rules = Datagen.Footballdb.constraints () in
      let ground pool =
        let store = Grounder.Atom_store.of_graph d.Datagen.Footballdb.graph in
        let result = Grounder.Ground.run ~pool store rules in
        ( Grounder.Atom_store.size store,
          result.Grounder.Ground.derived,
          List.map
            (Format.asprintf "%a" (Grounder.Ground.Instance.pp store))
            result.Grounder.Ground.instances )
      in
      ground Pool.sequential = ground (Pool.create ~jobs:4))

let test_admm_jobs_identical () =
  let graph, rules = ground_fixture () in
  let solve jobs =
    let store = Grounder.Atom_store.of_graph graph in
    let ground = Grounder.Ground.run store rules in
    let model = Psl.Hlmrf.build store ground.Grounder.Ground.instances in
    let truth, stats =
      Psl.Admm.solve ~max_iters:300 ~pool:(Pool.create ~jobs) model
    in
    (truth, stats.Psl.Admm.iterations, stats.Psl.Admm.objective)
  in
  let t1, i1, o1 = solve 1 in
  let t4, i4, o4 = solve 4 in
  Alcotest.(check int) "same iterations" i1 i4;
  Alcotest.(check bool) "same objective" true (o1 = o4);
  Alcotest.(check bool) "bitwise identical truth" true
    (Array.for_all2
       (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
       t1 t4)

let test_samplers_jobs_identical () =
  let store =
    Grounder.Atom_store.of_graph
      (Kg.Graph.of_list
         [
           Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
           Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
           Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
         ])
  in
  let rules =
    parse_rules
      {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .|}
  in
  let ground = Grounder.Ground.run store rules in
  let network = Network.build store ground.Grounder.Ground.instances in
  let gibbs jobs =
    (Mln.Gibbs.run ~seed:3 ~burn_in:50 ~samples:400 ~chains:3
       ~pool:(Pool.create ~jobs) network)
      .Mln.Gibbs.marginals
  in
  Alcotest.(check bool) "gibbs chains merge identically" true
    (gibbs 1 = gibbs 4);
  let mcsat jobs =
    (Mln.Mcsat.run ~seed:3 ~burn_in:20 ~samples:150 ~chains:3
       ~pool:(Pool.create ~jobs) network)
      .Mln.Mcsat.marginals
  in
  Alcotest.(check bool) "mcsat chains merge identically" true
    (mcsat 1 = mcsat 4)

let test_engine_jobs_identical () =
  let graph, rules = ground_fixture () in
  let removed jobs engine =
    let result = Tecore.Engine.resolve ~engine ~jobs graph rules in
    List.map
      (fun (_, q) -> Kg.Quad.to_string q)
      result.Tecore.Engine.resolution.Tecore.Conflict.removed
  in
  List.iter
    (fun (name, engine) ->
      Alcotest.(check (list string))
        (name ^ " removals at jobs=4")
        (removed 1 engine) (removed 4 engine))
    [
      ("mln", Tecore.Engine.Mln Mln.Map_inference.default_options);
      ("psl", Tecore.Engine.Psl Psl.Npsl.default_options);
    ]

let () =
  Alcotest.run "pool"
    [
      ( "combinators",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "map_array" `Quick test_map_array;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested use rejected" `Quick
            test_nested_use_rejected;
          Alcotest.test_case "sequential nesting allowed" `Quick
            test_sequential_nesting_allowed;
          Alcotest.test_case "cross-pool nesting degrades" `Quick
            test_cross_pool_nesting_degrades;
          Alcotest.test_case "run_all" `Quick test_run_all;
          Alcotest.test_case "chunked for_ sums bitwise" `Quick
            test_for_chunked_sum;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "create and parse_jobs" `Quick
            test_create_and_parse;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest walksat_jobs_property;
          QCheck_alcotest.to_alcotest grounding_jobs_property;
          Alcotest.test_case "admm bitwise identical" `Quick
            test_admm_jobs_identical;
          Alcotest.test_case "sampler chains identical" `Quick
            test_samplers_jobs_identical;
          Alcotest.test_case "engine removals identical" `Quick
            test_engine_jobs_identical;
        ] );
    ]
