(* Differential protocol oracle for [tecore serve].

   The contract under test: a session driven over the wire — requests
   through a live loopback server, edits and resolves multiplexed by the
   daemon — is observationally identical to the same command sequence
   applied directly to a {!Tecore.Session}. Random edit scripts are sent
   through both paths; after every resolve the server's summary fields
   (objective, cache outcome, status) and the full [result] resolution
   payload must match the local oracle byte for byte, for every solver
   backend. A second suite pins the warm path: repeated 1-fact edits
   must keep hitting the incremental caches (replay/hit), never falling
   back to a fresh run. *)

module Engine = Tecore.Engine
module Session = Tecore.Session
module Prng = Prelude.Prng

(* This suite owns the fault registry: differential identity is a
   fault-free property (the CI sweep re-runs everything under
   TECORE_FAULTS; an injected slowdown or crash would legitimately make
   the two paths diverge). *)
let () = Prelude.Deadline.Faults.clear ()

(* ------------------------------------------------------------------ *)
(* Loopback client                                                     *)
(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; ic : in_channel }

let connect server =
  let fd = Serve.connect server in
  { fd; ic = Unix.in_channel_of_descr fd }

let close client = close_in_noerr client.ic

let send client line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write client.fd b off (n - off))
  in
  go 0

let request client line =
  send client line;
  match input_line client.ic with
  | resp -> resp
  | exception End_of_file ->
      Alcotest.failf "connection closed after %S" line

(* Split a response line into its tag and parsed JSON body. *)
let parse_response resp =
  let body tag =
    let n = String.length tag in
    if String.length resp >= n && String.sub resp 0 n = tag then
      Some (String.sub resp n (String.length resp - n))
    else None
  in
  let json s =
    match Obs.Json.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparseable response %S: %s" resp e
  in
  match (body "ok ", body "err ") with
  | Some s, _ -> `Ok (json s)
  | None, Some s -> `Err (json s)
  | None, None -> Alcotest.failf "untagged response %S" resp

let fields = function
  | Obs.Json.Obj fs -> fs
  | j -> Alcotest.failf "expected an object, got %s" (Obs.Json.to_string j)

let str_field j name =
  match List.assoc_opt name (fields j) with
  | Some (Obs.Json.Str s) -> s
  | _ -> Alcotest.failf "missing string field %S in %s" name
           (Obs.Json.to_string j)

let num_field j name =
  match List.assoc_opt name (fields j) with
  | Some (Obs.Json.Num n) -> n
  | _ -> Alcotest.failf "missing number field %S in %s" name
           (Obs.Json.to_string j)

let expect_ok line resp =
  match parse_response resp with
  | `Ok j -> j
  | `Err j ->
      Alcotest.failf "request %S failed: %s" line (Obs.Json.to_string j)

(* ------------------------------------------------------------------ *)
(* Random wire scripts                                                 *)
(* ------------------------------------------------------------------ *)

(* Each generated fact is unique (the serial number feeds the interval),
   so asserts never collide and retract bookkeeping stays exact. *)
let gen_script ~seed ~ops =
  let rng = Prng.create seed in
  let serial = ref 0 in
  let fact () =
    incr serial;
    let lo = 1900 + !serial in
    Printf.sprintf "ex:P%d ex:playsFor ex:T%d [%d,%d] 0.%d ."
      (Prng.int rng 4) (Prng.int rng 3) lo
      (lo + 1 + Prng.int rng 4)
      (5 + Prng.int rng 5)
  in
  let live = ref [] in
  let rule_on = ref false in
  let out = ref [] in
  let push l = out := l :: !out in
  push "open";
  push
    "constraint one_team: ex:playsFor(x, y)@t ^ ex:playsFor(x, z)@t2 ^ y != \
     z => disjoint(t, t2) .";
  for _ = 1 to 5 do
    let f = fact () in
    push ("assert " ^ f);
    live := f :: !live
  done;
  push "resolve";
  for _ = 1 to ops do
    match Prng.int rng 6 with
    | 0 | 1 ->
        let f = fact () in
        push ("assert " ^ f);
        live := f :: !live
    | 2 -> (
        match !live with
        | [] -> ()
        | l ->
            let f = List.nth l (Prng.int rng (List.length l)) in
            push ("retract " ^ f);
            live := List.filter (fun x -> x <> f) l)
    | 3 ->
        if !rule_on then begin
          push "unrule t_worksfor";
          rule_on := false
        end
        else begin
          push
            "rule t_worksfor 1.5: ex:playsFor(x, y)@t => ex:worksFor(x, y)@t .";
          rule_on := true
        end
    | _ -> push "resolve"
  done;
  push "resolve";
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The local oracle: the same line applied directly to a Session        *)
(* ------------------------------------------------------------------ *)

let mirror_exec session line =
  if line = "open" then begin
    Session.load_graph session (Kg.Graph.create ());
    Ok ()
  end
  else
    match Tecore.Script.parse_command ~path:"wire" ~line:1 line with
    | Error e -> Error e.Tecore.Script.message
    | Ok None -> Error "empty"
    | Ok (Some located) -> (
        let quad payload k =
          match Kg.Nquads.parse_quad (Session.namespace session) payload with
          | Error m -> Error m
          | Ok q -> k q
        in
        match located.Tecore.Script.cmd with
        | Tecore.Script.Assert_ p ->
            quad p (fun q ->
                Result.map ignore
                  (Result.map_error Session.error_message
                     (Session.assert_fact session q)))
        | Tecore.Script.Retract p ->
            quad p (fun q ->
                Result.map ignore
                  (Result.map_error Session.error_message
                     (Session.retract session q)))
        | Tecore.Script.Rule src ->
            Result.map ignore (Session.add_rules session src)
        | Tecore.Script.Unrule name ->
            if Session.remove_rule session name then Ok ()
            else Error "no such rule"
        | Tecore.Script.Load _ | Tecore.Script.Resolve _ | Tecore.Script.Diff
          ->
            Alcotest.failf "mirror_exec does not handle %S" line)

let resolution_payload session (r : Engine.result) =
  let s =
    Tecore.Json_out.of_resolution
      ~namespace:(Session.namespace session)
      r.Engine.resolution
  in
  match Obs.Json.parse s with
  | Ok j -> Obs.Json.to_string j
  | Error e -> Alcotest.failf "local resolution JSON does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Differential run                                                    *)
(* ------------------------------------------------------------------ *)

let run_differential ~name ~engine ~seed ~ops () =
  let config = { Serve.default_config with Serve.engine } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let c = connect server in
      ignore (expect_ok "hello" (request c ("hello diff-" ^ name)));
      let session = Session.create () in
      let resolves = ref 0 in
      List.iter
        (fun line ->
          let resp = request c line in
          match Tecore.Script.parse_command ~path:"wire" ~line:1 line with
          | Ok (Some { Tecore.Script.cmd = Tecore.Script.Resolve mode; _ })
            -> (
              incr resolves;
              let sj = expect_ok line resp in
              match Session.resolve ~engine ~mode session with
              | Error e ->
                  Alcotest.failf "local resolve failed: %s"
                    (Session.error_message e)
              | Ok r ->
                  let local_objective = r.Engine.stats.Engine.objective in
                  if num_field sj "objective" <> local_objective then
                    Alcotest.failf
                      "objective diverged on %S: server %.17g, local %.17g"
                      line
                      (num_field sj "objective")
                      local_objective;
                  Alcotest.(check string)
                    "status"
                    (Prelude.Deadline.status_name r.Engine.stats.Engine.status)
                    (str_field sj "status");
                  Alcotest.(check string)
                    "cache outcome"
                    (Engine.outcome_name
                       (Option.get (Session.cache_outcome session)))
                    (str_field sj "cache");
                  (* The full resolution payload, byte for byte. *)
                  let rj = expect_ok "result" (request c "result") in
                  let server_payload =
                    match List.assoc_opt "resolution" (fields rj) with
                    | Some j -> Obs.Json.to_string j
                    | None -> Alcotest.fail "result carries no resolution"
                  in
                  Alcotest.(check string)
                    "resolution payload" (resolution_payload session r)
                    server_payload)
          | _ -> (
              let local = mirror_exec session line in
              match (parse_response resp, local) with
              | `Ok _, Ok () -> ()
              | `Err _, Error _ -> ()
              | `Ok _, Error m ->
                  Alcotest.failf "server accepted %S but oracle failed: %s"
                    line m
              | `Err j, Ok () ->
                  Alcotest.failf "server refused %S accepted by oracle: %s"
                    line (Obs.Json.to_string j)))
        (gen_script ~seed ~ops);
      if !resolves < 2 then Alcotest.fail "script exercised < 2 resolves";
      close c)

(* The full backend matrix of test_incremental, over the wire. Instance
   sizes stay tiny so the exact backends finish their search. *)
let engines =
  let mln = Mln.Map_inference.default_options in
  [
    ("mln-walk-cpi", Engine.Mln mln, 16);
    ("mln-walk", Engine.Mln { mln with Mln.Map_inference.use_cpi = false }, 16);
    ( "mln-ilp",
      Engine.Mln
        {
          mln with
          Mln.Map_inference.solver = Mln.Map_inference.Ilp_exact;
          use_cpi = false;
        },
      8 );
    ( "mln-bb",
      Engine.Mln
        {
          mln with
          Mln.Map_inference.solver = Mln.Map_inference.Exact_bb;
          use_cpi = false;
        },
      8 );
    ("psl", Engine.Psl Psl.Npsl.default_options, 16);
  ]

let differential_tests =
  List.concat_map
    (fun (name, engine, ops) ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "server = session (%s, seed %d)" name seed)
            `Quick
            (run_differential ~name ~engine ~seed ~ops))
        [ 11; 42 ])
    engines

(* ------------------------------------------------------------------ *)
(* Warm path                                                           *)
(* ------------------------------------------------------------------ *)

(* Repeated 1-fact edits through the server must ride the incremental
   caches: every post-edit resolve replays the cached grounding
   (replay), every no-edit resolve is a pure hit, and nothing falls back
   to a fresh run. *)
let test_warm_path () =
  let server = Serve.start (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let c = connect server in
      let ok line = expect_ok line (request c line) in
      ignore (ok "hello warm");
      ignore (ok "open");
      ignore
        (ok
           "constraint one_team: ex:playsFor(x, y)@t ^ ex:playsFor(x, z)@t2 \
            ^ y != z => disjoint(t, t2) .");
      for i = 1 to 4 do
        ignore
          (ok
             (Printf.sprintf "assert ex:P%d ex:playsFor ex:T0 [%d,%d] 0.8 ."
                i (1990 + i) (1995 + i)))
      done;
      ignore (ok "resolve");
      for i = 1 to 8 do
        ignore
          (ok
             (Printf.sprintf "assert ex:P1 ex:playsFor ex:T1 [%d,%d] 0.6 ."
                (2000 + i) (2001 + i)));
        let sj = ok "resolve" in
        Alcotest.(check string)
          "1-fact edit replays the cached grounding" "replay"
          (str_field sj "cache");
        let hj = ok "resolve" in
        Alcotest.(check string)
          "unchanged resolve is a cache hit" "hit" (str_field hj "cache")
      done;
      close c)

(* ------------------------------------------------------------------ *)
(* Live metrics                                                        *)
(* ------------------------------------------------------------------ *)

let test_metrics_validate () =
  let server = Serve.start (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let c = connect server in
      ignore (expect_ok "ping" (request c "ping"));
      ignore (expect_ok "hello" (request c "hello metrics-probe"));
      let j = expect_ok "metrics" (request c "metrics") in
      let text = str_field j "metrics" in
      (match Obs.Export.validate_metrics text with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid OpenMetrics exposition: %s" e);
      let has_line prefix =
        List.exists
          (fun l ->
            String.length l >= String.length prefix
            && String.sub l 0 (String.length prefix) = prefix)
          (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) "sessions gauge" true
        (has_line "serve_sessions_open 1");
      Alcotest.(check bool) "queue depth gauge" true
        (has_line "serve_queue_depth 0");
      Alcotest.(check bool) "requests counter" true
        (has_line "serve_requests_total{outcome=\"ok\"}");
      Alcotest.(check bool) "shed counter" true (has_line "serve_shed_total 0");
      close c)

(* ------------------------------------------------------------------ *)
(* Request tracing and the access log                                  *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_request_ids_and_zero_cost () =
  (* Traced server: every response carries a unique, strictly monotone
     request id, ok and err alike, and hello echoes the start time. *)
  let config = { Serve.default_config with Serve.trace_every = 1 } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let c = connect server in
      let hj = expect_ok "hello" (request c "hello ids") in
      Alcotest.(check (float 1.0))
        "hello echoes the server start time" (Serve.start_time server)
        (num_field hj "started");
      let last = ref 0 in
      for _ = 1 to 10 do
        let j = expect_ok "ping" (request c "ping") in
        let req = int_of_float (num_field j "req") in
        Alcotest.(check bool)
          (Printf.sprintf "req %d strictly after %d" req !last)
          true (req > !last);
        last := req
      done;
      (match parse_response (request c "bogus !!") with
      | `Err j ->
          Alcotest.(check bool)
            "err responses carry the id too" true
            (num_field j "req" > 0.0)
      | `Ok _ -> Alcotest.fail "bogus request accepted");
      close c);
  (* Zero-cost contract: with tracing off, no response ever mentions a
     request id (byte-identity with pre-tracing servers). *)
  let plain = Serve.start (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop plain)
    (fun () ->
      let c = connect plain in
      List.iter
        (fun line ->
          let resp = request c line in
          Alcotest.(check bool)
            (Printf.sprintf "no req field in %S" resp)
            false
            (contains resp "\"req\":"))
        [ "ping"; "hello plain"; "open"; "stat"; "bogus !!" ];
      close c)

let test_trace_verb_sampling () =
  let server = Serve.start (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let c = connect server in
      (* req 1: tracing starts off. *)
      Alcotest.(check bool)
        "off by default" false
        (contains (request c "ping") "\"req\":");
      Alcotest.(check int) "period 0" 0 (Serve.trace_period server);
      (* req 2 sets the period; the deciding happens before execution,
         so the trace request itself is still untraced. *)
      let resp = request c "trace 3" in
      Alcotest.(check bool) "trace 3 accepted" true (contains resp "ok ");
      Alcotest.(check int) "period 3" 3 (Serve.trace_period server);
      (* reqs 3..6: ids divisible by 3 are traced. *)
      Alcotest.(check (list bool))
        "every 3rd request traced"
        [ true; false; false; true ]
        (List.map
           (fun _ -> contains (request c "ping") "\"req\":")
           [ (); (); (); () ])
      ;
      ignore (expect_ok "trace off" (request c "trace off"));
      Alcotest.(check int) "period back to 0" 0 (Serve.trace_period server);
      Alcotest.(check bool)
        "off again" false
        (contains (request c "ping") "\"req\":");
      (match parse_response (request c "trace sometimes") with
      | `Err _ -> ()
      | `Ok _ -> Alcotest.fail "malformed trace accepted");
      close c)

let test_tail_verb () =
  let config = { Serve.default_config with Serve.trace_every = 1 } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let c = connect server in
      ignore (expect_ok "hello" (request c "hello tail"));
      for _ = 1 to 5 do
        ignore (expect_ok "ping" (request c "ping"))
      done;
      let j = expect_ok "tail 3" (request c "tail 3") in
      let reqs =
        match List.assoc_opt "requests" (fields j) with
        | Some (Obs.Json.Arr rs) -> rs
        | _ -> Alcotest.fail "tail carries no requests array"
      in
      Alcotest.(check int) "tail bounded" 3 (List.length reqs);
      (* Chronological, with the schema fields present. *)
      let ids = List.map (fun r -> num_field r "req") reqs in
      Alcotest.(check bool)
        "tail ids ascending" true
        (List.sort compare ids = ids);
      List.iter
        (fun r ->
          Alcotest.(check string) "verb" "ping" (str_field r "verb");
          Alcotest.(check string) "outcome" "ok" (str_field r "outcome");
          Alcotest.(check bool) "wall_ms present" true
            (num_field r "wall_ms" >= 0.0))
        reqs;
      close c)

(* The tentpole's acceptance loop: a traced workload's access-log
   records have phase sums within tolerance of the request wall time,
   and the offline analyzer reproduces the live summary quantiles
   byte-for-byte. *)
let test_access_log_analyzer_matches_live () =
  let log = Filename.temp_file "tecore_access" ".log" in
  let config =
    {
      Serve.default_config with
      Serve.access_log = Some log;
      trace_every = 1;
    }
  in
  let server = Serve.start ~config (`Tcp 0) in
  let metrics =
    Fun.protect
      ~finally:(fun () -> Serve.stop server)
      (fun () ->
        let c = connect server in
        let ok line = expect_ok line (request c line) in
        ignore (ok "hello analyzer");
        ignore (ok "open");
        ignore
          (ok
             "constraint one_team: ex:playsFor(x, y)@t ^ ex:playsFor(x, \
              z)@t2 ^ y != z => disjoint(t, t2) .");
        for i = 1 to 6 do
          ignore
            (ok
               (Printf.sprintf
                  "assert ex:P%d ex:playsFor ex:T0 [%d,%d] 0.8 ." i
                  (1990 + i) (1995 + i)))
        done;
        ignore (ok "resolve");
        ignore (ok "assert ex:P1 ex:playsFor ex:T1 [2010,2011] 0.6 .");
        ignore (ok "resolve");
        close c;
        (* Stop first: joins the connection thread (so the final record
           is emitted) and flushes the access log. The live summaries
           survive stop. *)
        Serve.stop server;
        Serve.metrics_text server)
  in
  let records, warnings = Serve.Access_log.read_file log in
  Sys.remove log;
  Alcotest.(check int) "no reader warnings" 0 (List.length warnings);
  Alcotest.(check int)
    "tail ring and log agree"
    (List.length (Serve.recent_records server))
    (List.length records);
  List.iter
    (fun (r : Serve.Access_log.record) ->
      let sum =
        List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0
          r.Serve.Access_log.phases
      in
      Alcotest.(check bool)
        (Printf.sprintf "req %d: phase sum %.3f within wall %.3f"
           r.Serve.Access_log.req sum r.Serve.Access_log.wall_ms)
        true
        (sum <= (r.Serve.Access_log.wall_ms *. 1.05) +. 1.0))
    records;
  (* The resolve must attribute time to ground and solve. *)
  let resolve_phases =
    List.concat_map
      (fun (r : Serve.Access_log.record) ->
        if r.Serve.Access_log.verb = "resolve" then
          List.map fst r.Serve.Access_log.phases
        else [])
      records
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p ^ " attributed on resolve") true
        (List.mem p resolve_phases))
    [ "ground"; "solve" ];
  (* Live summary quantiles = analyzer quantiles, byte for byte: both
     sides are Json.number renderings of Obs.Histogram.quantile over
     the same record set. *)
  let s = Serve.Access_log.stats records in
  let metric_lines = String.split_on_char '\n' metrics in
  let live_value phase q =
    let prefix =
      Printf.sprintf "serve_request_phase_ms{phase=\"%s\",quantile=\"%s\"} "
        phase q
    in
    let n = String.length prefix in
    match
      List.find_opt
        (fun l -> String.length l > n && String.sub l 0 n = prefix)
        metric_lines
    with
    | Some l -> String.sub l n (String.length l - n)
    | None -> Alcotest.failf "no %s p%s row in metrics" phase q
  in
  Alcotest.(check bool)
    "analyzer saw phases" true
    (s.Serve.Access_log.phase_hists <> []);
  List.iter
    (fun (phase, h) ->
      List.iter
        (fun (qs, q) ->
          Alcotest.(check string)
            (Printf.sprintf "%s p%s: live = offline" phase qs)
            (Obs.Json.number (Obs.Histogram.quantile h q))
            (live_value phase qs))
        [ ("0.5", 0.5); ("0.95", 0.95) ])
    s.Serve.Access_log.phase_hists;
  (* Per-session counters made it into the exposition. *)
  Alcotest.(check bool)
    "per-session counter exported" true
    (List.exists
       (fun l ->
         contains l "serve_session_requests_total{session=\"analyzer\"}")
       metric_lines)

let () =
  Alcotest.run "serve"
    [
      ("differential oracle", differential_tests);
      ( "warm path",
        [ Alcotest.test_case "1-fact edits stay cached" `Quick test_warm_path ]
      );
      ( "metrics",
        [
          Alcotest.test_case "live exposition validates" `Quick
            test_metrics_validate;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "request ids and zero-cost contract" `Quick
            test_request_ids_and_zero_cost;
          Alcotest.test_case "trace verb adjusts sampling" `Quick
            test_trace_verb_sampling;
          Alcotest.test_case "tail returns recent records" `Quick
            test_tail_verb;
          Alcotest.test_case "analyzer matches live summaries" `Quick
            test_access_log_analyzer_matches_live;
        ] );
    ]
