(* Tests for the rule/constraint language: lexer, parser, printer. *)

open Logic

let parse_ok src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let parse_one src =
  match parse_ok src with
  | [ r ] -> r
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 rule, got %d" (List.length rs))

let parse_err src =
  match Rulelang.Parser.parse_string src with
  | Ok _ -> Alcotest.fail ("should not parse: " ^ src)
  | Error e -> e

let test_lexer_tokens () =
  match Rulelang.Lexer.tokenize "foo(x, y)@t => bar [1,5] 2.5 != <= met-by ex:p" with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Lexer.pp_error e)
  | Ok tokens ->
      let toks = List.map fst tokens in
      let expect =
        Rulelang.Token.
          [
            Ident "foo"; Lparen; Ident "x"; Comma; Ident "y"; Rparen; At;
            Ident "t"; Arrow; Ident "bar"; Interval (1, 5); Number 2.5; Neq;
            Le; Ident "met-by"; Ident "ex:p"; Eof;
          ]
      in
      Alcotest.(check int) "token count" (List.length expect) (List.length toks);
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (Format.asprintf "token %a = %a" Rulelang.Token.pp a
               Rulelang.Token.pp b)
            true (Rulelang.Token.equal a b))
        expect toks

let test_lexer_comments () =
  match Rulelang.Lexer.tokenize "# hash comment\nfoo // slash comment\nbar" with
  | Error _ -> Alcotest.fail "lex failed"
  | Ok tokens ->
      Alcotest.(check int) "two idents + eof" 3 (List.length tokens)

let test_lexer_iri_vs_lt () =
  match Rulelang.Lexer.tokenize "<http://x/y> x < 3 y <= 4" with
  | Error _ -> Alcotest.fail "lex failed"
  | Ok tokens ->
      (match List.map fst tokens with
      | Rulelang.Token.(
          [ Ident "http://x/y"; Ident "x"; Lt; Number 3.0; Ident "y"; Le;
            Number 4.0; Eof ]) ->
          ()
      | _ -> Alcotest.fail "unexpected tokens")

let test_lexer_errors () =
  (match Rulelang.Lexer.tokenize "\"unterminated" with
  | Error e -> Alcotest.(check int) "line" 1 e.Rulelang.Lexer.line
  | Ok _ -> Alcotest.fail "unterminated string lexed");
  match Rulelang.Lexer.tokenize "a\nb $" with
  | Error e -> Alcotest.(check int) "line 2" 2 e.Rulelang.Lexer.line
  | Ok _ -> Alcotest.fail "bad char lexed"

let test_parse_inference_rule () =
  let r = parse_one "rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t ." in
  Alcotest.(check string) "name" "f1" r.Rule.name;
  Alcotest.(check bool) "weight" true (r.Rule.weight = Some 2.5);
  Alcotest.(check bool) "inference" true (Rule.is_inference r);
  Alcotest.(check int) "body size" 1 (List.length r.Rule.body)

let test_parse_constraint_hard () =
  let r =
    parse_one
      "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
  in
  Alcotest.(check bool) "hard" true (Rule.is_hard r);
  Alcotest.(check int) "two body atoms" 2 (List.length r.Rule.body);
  Alcotest.(check int) "one condition" 1 (List.length r.Rule.conditions);
  match r.Rule.head with
  | Rule.Require (Cond.Allen (set, _, _)) ->
      Alcotest.(check bool) "disjoint set" true
        (Kg.Allen.Set.equal set Kg.Allen.Set.disjoint)
  | _ -> Alcotest.fail "expected an Allen head"

let test_parse_soft_constraint () =
  let r = parse_one "constraint w 0.8: p(x, y)@t => start(t) > 5 ." in
  Alcotest.(check bool) "soft" true (r.Rule.weight = Some 0.8)

let test_parse_equality_head () =
  let r =
    parse_one
      "constraint c3: bornIn(x, y)@t ^ bornIn(x, z)@t2 ^ intersects(t, t2) => y = z ."
  in
  match r.Rule.head with
  | Rule.Require (Cond.Eq (Lterm.Var "y", Lterm.Var "z")) -> ()
  | _ -> Alcotest.fail "expected equality head"

let test_parse_bottom_head () =
  let r = parse_one "constraint d: coach(x, x)@t => false ." in
  Alcotest.(check bool) "bottom" true (r.Rule.head = Rule.Bottom)

let test_parse_computed_interval () =
  let r =
    parse_one
      "rule f2 1.6: worksFor(x, y)@t ^ locatedIn(y, z)@t2 ^ intersects(t, t2) => livesIn(x, z)@(t * t2) ."
  in
  match r.Rule.head with
  | Rule.Infer { time = Some (Lterm.Tinter (Lterm.Tvar "t", Lterm.Tvar "t2")); _ } ->
      ()
  | _ -> Alcotest.fail "expected computed intersection time"

let test_parse_hull () =
  let r = parse_one "rule h 1: p(x, y)@t ^ q(x, y)@t2 => r(x, y)@(t + t2) ." in
  match r.Rule.head with
  | Rule.Infer { time = Some (Lterm.Thull _); _ } -> ()
  | _ -> Alcotest.fail "expected hull time"

let test_temporal_arith_resolution () =
  (* Bare temporal variables in arithmetic become interval starts. *)
  let r =
    parse_one
      "rule f3 2.9: playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ t - t2 < 20 => Teen(x) ."
  in
  match r.Rule.conditions with
  | [ Cond.Cmp (Cond.Lt,
        Cond.Sub (Cond.Start_of (Lterm.Tvar "t"), Cond.Start_of (Lterm.Tvar "t2")),
        Cond.Num 20) ] ->
      ()
  | _ -> Alcotest.fail "temporal arithmetic not resolved"

let test_value_stays_object () =
  (* A bare object variable in arithmetic keeps Value_of. *)
  let r = parse_one "constraint v: p(x, z)@t => z > 5 ." in
  match r.Rule.head with
  | Rule.Require (Cond.Cmp (Cond.Gt, Cond.Value_of (Lterm.Var "z"), Cond.Num 5)) ->
      ()
  | _ -> Alcotest.fail "object variable mangled"

let test_quad_sugar () =
  let r = parse_one "rule q 1.2: quad(x, playsFor, y, t) => quad(x, worksFor, y, t) ." in
  (match r.Rule.body with
  | [ { Atom.predicate = "playsFor"; args = [ Lterm.Var "x"; Lterm.Var "y" ];
        time = Some (Lterm.Tvar "t") } ] ->
      ()
  | _ -> Alcotest.fail "quad sugar body");
  match r.Rule.head with
  | Rule.Infer { Atom.predicate = "worksFor"; _ } -> ()
  | _ -> Alcotest.fail "quad sugar head"

let test_constants_vs_variables () =
  let r = parse_one "rule k 1: coach(x, Chelsea)@[2000,2004] => Top(x) ." in
  match r.Rule.body with
  | [ { Atom.args = [ Lterm.Var "x"; Lterm.Const c ];
        time = Some (Lterm.Tconst i); _ } ] ->
      Alcotest.(check string) "constant" "Chelsea" (Kg.Term.to_string c);
      Alcotest.(check int) "interval lo" 2000 (Kg.Interval.lo i)
  | _ -> Alcotest.fail "constant handling"

let test_numeric_and_string_constants () =
  let r = parse_one {|rule s 1: born(x, 1951)@t ^ tag(x, "noisy")@t => Flag(x) .|} in
  match (List.nth r.Rule.body 0).Atom.args with
  | [ _; Lterm.Const (Kg.Term.Int 1951) ] -> ()
  | _ -> Alcotest.fail "int constant"

let test_namespace_expansion () =
  let ns = Kg.Namespace.create () in
  match
    Rulelang.Parser.parse_string ~namespace:ns
      "rule n 1: ex:p(x, ex:K)@t => ex:q(x, ex:K)@t ."
  with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)
  | Ok [ r ] -> (
      match r.Rule.body with
      | [ { Atom.predicate; args = [ _; Lterm.Const c ]; _ } ] ->
          Alcotest.(check string) "predicate expanded"
            "http://example.org/p" predicate;
          Alcotest.(check string) "constant expanded" "http://example.org/K"
            (Kg.Term.to_string c)
      | _ -> Alcotest.fail "body shape")
  | Ok _ -> Alcotest.fail "one rule expected"

let test_multiple_statements () =
  let rules =
    parse_ok
      {|rule a 1: p(x, y)@t => q(x, y)@t .
constraint b: p(x, y)@t ^ p(x, z)@t2 ^ y != z => disjoint(t, t2) .
rule c 2: q(x, y)@t => r(x, y)@t .|}
  in
  Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ]
    (List.map (fun r -> r.Rule.name) rules)

let test_parse_errors () =
  ignore (parse_err "rule: p(x)@t => q(x)@t .");
  (* missing name *)
  ignore (parse_err "rule r 1: => q(x)@t .");
  (* empty body *)
  ignore (parse_err "rule r 1: p(x)@t => .");
  (* missing head *)
  ignore (parse_err "rule r 1: p(x)@t q(x)@t .");
  (* missing arrow *)
  ignore (parse_err "rule r -2: p(x)@t => q(x)@t .");
  (* negative weight *)
  ignore (parse_err "constraint c: p(x)@t => q(x)@t .");
  (* constraint with atom head *)
  ignore (parse_err "rule r 1: p(x)@t => q(x, w)@t .");
  (* unsafe head *)
  ignore (parse_err "rule r 1: false => q(x)@t .")
  (* false in body *)

let test_unsafe_reported_with_name () =
  let e = parse_err "rule u 1: p(x, y)@t => q(x, w)@t ." in
  Alcotest.(check bool) "mentions rule" true
    (let m = e.Rulelang.Parser.message in
     let has needle =
       let n = String.length needle and h = String.length m in
       let rec loop i = i + n <= h && (String.sub m i n = needle || loop (i + 1)) in
       loop 0
     in
     has "u" && has "?w")

let paper_program =
  {|rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .
rule f2 1.6: worksFor(x, y)@t ^ locatedIn(y, z)@t2 ^ overlaps(t, t2) => livesIn(x, z)@(t * t2) .
rule f3 2.9: playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ t - t2 < 20 => TeenPlayer(x) .
constraint c1: birthDate(x, y)@t ^ deathDate(x, z)@t2 => before(t, t2) .
constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint c3: bornIn(x, y)@t ^ bornIn(x, z)@t2 ^ overlaps(t, t2) => y = z .|}

let test_paper_program () =
  let rules = parse_ok paper_program in
  Alcotest.(check int) "six declarations" 6 (List.length rules);
  Alcotest.(check int) "three inference rules" 3
    (List.length (List.filter Rule.is_inference rules));
  Alcotest.(check int) "three hard constraints" 3
    (List.length (List.filter (fun r -> Rule.is_hard r && not (Rule.is_inference r)) rules))

let test_printer_roundtrip () =
  let rules = parse_ok paper_program in
  let printed = Rulelang.Printer.program_to_string rules in
  let reparsed = parse_ok printed in
  Alcotest.(check int) "same count" (List.length rules) (List.length reparsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same rendering"
        (Rulelang.Printer.rule_to_string a)
        (Rulelang.Printer.rule_to_string b))
    rules reparsed

let test_parse_rule_single () =
  (match Rulelang.Parser.parse_rule "rule r 1: p(x, y)@t => q(x, y)@t ." with
  | Ok r -> Alcotest.(check string) "name" "r" r.Rule.name
  | Error e -> Alcotest.fail e);
  match Rulelang.Parser.parse_rule "rule a 1: p(x)@t => p(x)@t . rule b 1: p(x)@t => p(x)@t ." with
  | Ok _ -> Alcotest.fail "two rules accepted by parse_rule"
  | Error _ -> ()

let () =
  Alcotest.run "rulelang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "iri vs lt" `Quick test_lexer_iri_vs_lt;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "inference rule" `Quick test_parse_inference_rule;
          Alcotest.test_case "hard constraint" `Quick test_parse_constraint_hard;
          Alcotest.test_case "soft constraint" `Quick test_parse_soft_constraint;
          Alcotest.test_case "equality head" `Quick test_parse_equality_head;
          Alcotest.test_case "bottom head" `Quick test_parse_bottom_head;
          Alcotest.test_case "computed interval" `Quick test_parse_computed_interval;
          Alcotest.test_case "hull" `Quick test_parse_hull;
          Alcotest.test_case "temporal arith" `Quick test_temporal_arith_resolution;
          Alcotest.test_case "value stays object" `Quick test_value_stays_object;
          Alcotest.test_case "quad sugar" `Quick test_quad_sugar;
          Alcotest.test_case "constants vs variables" `Quick
            test_constants_vs_variables;
          Alcotest.test_case "literal constants" `Quick
            test_numeric_and_string_constants;
          Alcotest.test_case "namespace expansion" `Quick test_namespace_expansion;
          Alcotest.test_case "multiple statements" `Quick test_multiple_statements;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "unsafe reported" `Quick test_unsafe_reported_with_name;
          Alcotest.test_case "paper program" `Quick test_paper_program;
          Alcotest.test_case "parse_rule" `Quick test_parse_rule_single;
        ] );
      ( "printer",
        [ Alcotest.test_case "roundtrip" `Quick test_printer_roundtrip ] );
    ]
