(* Edge cases and failure injection across the full engine stack. *)

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let c2 =
  "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."

let test_empty_graph () =
  let g = Kg.Graph.create () in
  let result = Tecore.Engine.resolve g (parse_rules c2) in
  Alcotest.(check int) "nothing kept" 0 result.Tecore.Engine.resolution.Tecore.Conflict.kept;
  Alcotest.(check int) "nothing removed" 0
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed)

let test_no_rules () =
  let g =
    Kg.Graph.of_list
      [ Kg.Quad.v "a" "p" (Kg.Term.iri "b") (1, 2) 0.9 ]
  in
  let result = Tecore.Engine.resolve g [] in
  Alcotest.(check int) "everything kept" 1
    result.Tecore.Engine.resolution.Tecore.Conflict.kept

let test_unsatisfiable_hard_core () =
  (* Two conflicting confidence-1.0 facts: no consistent world exists;
     both engines must report instead of looping or crashing. *)
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 1.0;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 1.0;
      ]
  in
  let mln =
    Tecore.Engine.resolve ~engine:(Tecore.Engine.Mln Mln.Map_inference.default_options)
      g (parse_rules c2)
  in
  Alcotest.(check bool) "mln reports violations" true
    (mln.Tecore.Engine.stats.Tecore.Engine.hard_violations > 0);
  let psl =
    Tecore.Engine.resolve ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
      g (parse_rules c2)
  in
  Alcotest.(check bool) "psl reports unrepaired" true
    (psl.Tecore.Engine.stats.Tecore.Engine.hard_violations > 0)

let test_soft_constraint_can_lose () =
  (* A weak soft constraint must NOT remove two strong facts. *)
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.95;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 0.95;
      ]
  in
  let weak =
    parse_rules
      "constraint weak 0.1: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
  in
  let result = Tecore.Engine.resolve g weak in
  Alcotest.(check int) "both kept" 2
    result.Tecore.Engine.resolution.Tecore.Conflict.kept;
  (* ... and a strong soft constraint wins over a weak fact. *)
  let strong =
    parse_rules
      "constraint strong 8.0: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
  in
  let g2 =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.95;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 0.55;
      ]
  in
  let result = Tecore.Engine.resolve g2 strong in
  Alcotest.(check int) "weak fact removed" 1
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed)

let test_duplicate_statements_conflict () =
  (* Duplicate statements (same triple and interval) never clash with
     each other under y != z constraints. *)
  let q = Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.8 in
  let g = Kg.Graph.of_list [ q; q ] in
  let result = Tecore.Engine.resolve g (parse_rules c2) in
  Alcotest.(check int) "no conflicts" 0
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.conflicting)

let test_duplicate_facts_removed_together () =
  (* Duplicate statements intern to one atom: when MAP drops the atom,
     every duplicate fact must leave the consistent graph. *)
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.9;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 0.6;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 0.4;
      ]
  in
  let result = Tecore.Engine.resolve g (parse_rules c2) in
  Alcotest.(check int) "both duplicates removed" 2
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed);
  Alcotest.(check int) "consistent keeps only A" 1
    (Kg.Graph.size result.Tecore.Engine.resolution.Tecore.Conflict.consistent);
  (* And the repair strategies see them as one unit. *)
  let repair = Tecore.Repair.greedy g (parse_rules c2) in
  Alcotest.(check int) "greedy removes both duplicates" 2
    (List.length repair.Tecore.Repair.removed)

let test_reflexive_join_no_self_clash () =
  (* A fact never clashes with itself even under a condition-free pairing
     constraint: the tautology filter must drop (-a v +a)-style clauses,
     and y != z guards the rest. *)
  let g =
    Kg.Graph.of_list [ Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.8 ]
  in
  let result = Tecore.Engine.resolve g (parse_rules c2) in
  Alcotest.(check int) "kept" 1 result.Tecore.Engine.resolution.Tecore.Conflict.kept

let test_single_point_intervals () =
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2000) 0.9;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2000, 2000) 0.6;
      ]
  in
  let result = Tecore.Engine.resolve g (parse_rules c2) in
  Alcotest.(check int) "point clash resolved" 1
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed)

let test_adjacent_intervals_no_clash () =
  (* [2000,2004] meets [2005,2007]: disjoint in Allen terms, no clash. *)
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2004) 0.9;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2005, 2007) 0.6;
      ]
  in
  let result = Tecore.Engine.resolve g (parse_rules c2) in
  Alcotest.(check int) "no removal" 0
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed)

let test_negative_time_points () =
  (* BCE-style years: the discrete domain is any int. *)
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (-50, -40) 0.9;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (-45, -30) 0.6;
      ]
  in
  let result = Tecore.Engine.resolve g (parse_rules c2) in
  Alcotest.(check int) "negative-era clash resolved" 1
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed)

let test_rule_chain_depth () =
  (* A chain p1 -> p2 -> ... -> p6 must close in 5 rounds and derive all
     intermediate facts. *)
  let rules =
    parse_rules
      {|rule r1 2.0: p1(x, y)@t => p2(x, y)@t .
rule r2 2.0: p2(x, y)@t => p3(x, y)@t .
rule r3 2.0: p3(x, y)@t => p4(x, y)@t .
rule r4 2.0: p4(x, y)@t => p5(x, y)@t .
rule r5 2.0: p5(x, y)@t => p6(x, y)@t .|}
  in
  let g = Kg.Graph.of_list [ Kg.Quad.v "a" "p1" (Kg.Term.iri "b") (1, 2) 0.9 ] in
  let result = Tecore.Engine.resolve g rules in
  Alcotest.(check int) "five derived" 5
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.derived);
  (* Chained derivations keep high confidence. *)
  List.iter
    (fun (d : Tecore.Conflict.derived_fact) ->
      Alcotest.(check bool) "confident" true (d.Tecore.Conflict.confidence > 0.8))
    result.Tecore.Engine.resolution.Tecore.Conflict.derived

let test_interval_computation_chain () =
  (* Head intervals computed from computed intervals. *)
  let rules =
    parse_rules
      {|rule r1 2.0: p(x, y)@t ^ q(y, z)@t2 ^ intersects(t, t2) => pq(x, z)@(t * t2) .
rule r2 2.0: pq(x, z)@t ^ r(z, w)@t2 ^ intersects(t, t2) => pqr(x, w)@(t * t2) .|}
  in
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "a" "p" (Kg.Term.iri "b") (1, 10) 0.9;
        Kg.Quad.v "b" "q" (Kg.Term.iri "c") (5, 15) 0.9;
        Kg.Quad.v "c" "r" (Kg.Term.iri "d") (8, 20) 0.9;
      ]
  in
  let result = Tecore.Engine.resolve g rules in
  let derived =
    List.filter_map
      (fun (d : Tecore.Conflict.derived_fact) -> d.Tecore.Conflict.as_quad)
      result.Tecore.Engine.resolution.Tecore.Conflict.derived
  in
  let pqr =
    List.find_opt
      (fun q -> Kg.Term.to_string q.Kg.Quad.predicate = "pqr")
      derived
  in
  match pqr with
  | Some q ->
      Alcotest.(check int) "lo = max starts" 8 (Kg.Interval.lo q.Kg.Quad.time);
      Alcotest.(check int) "hi = min ends" 10 (Kg.Interval.hi q.Kg.Quad.time)
  | None -> Alcotest.fail "pqr not derived"

let test_large_weights_and_tiny_confidence () =
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.9999999;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 0.0000001;
      ]
  in
  let result = Tecore.Engine.resolve g (parse_rules c2) in
  let removed = result.Tecore.Engine.resolution.Tecore.Conflict.removed in
  Alcotest.(check int) "one removed" 1 (List.length removed);
  Alcotest.(check string) "the near-zero one" "B"
    (Kg.Term.to_string (snd (List.hd removed)).Kg.Quad.object_)

let test_all_engines_agree_on_edge_cases () =
  let graphs =
    [
      Kg.Graph.of_list
        [
          Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.9;
          Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 0.6;
          Kg.Quad.v "x" "coach" (Kg.Term.iri "C") (2006, 2009) 0.7;
        ];
      Kg.Graph.of_list
        [ Kg.Quad.v "solo" "coach" (Kg.Term.iri "A") (1, 1) 0.51 ];
    ]
  in
  List.iter
    (fun g ->
      let removed engine =
        (Tecore.Engine.resolve ~engine g (parse_rules c2))
          .Tecore.Engine.resolution.Tecore.Conflict.removed
        |> List.map fst |> List.sort Int.compare
      in
      let mln = removed (Tecore.Engine.Mln Mln.Map_inference.default_options) in
      let psl = removed (Tecore.Engine.Psl Psl.Npsl.default_options) in
      Alcotest.(check (list int)) "engines agree" mln psl)
    graphs

let () =
  Alcotest.run "engine-edge"
    [
      ( "degenerate inputs",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "no rules" `Quick test_no_rules;
          Alcotest.test_case "duplicate statements" `Quick
            test_duplicate_statements_conflict;
          Alcotest.test_case "duplicates removed together" `Quick
            test_duplicate_facts_removed_together;
          Alcotest.test_case "reflexive join" `Quick
            test_reflexive_join_no_self_clash;
          Alcotest.test_case "point intervals" `Quick test_single_point_intervals;
          Alcotest.test_case "adjacent intervals" `Quick
            test_adjacent_intervals_no_clash;
          Alcotest.test_case "negative time" `Quick test_negative_time_points;
        ] );
      ( "stress semantics",
        [
          Alcotest.test_case "unsatisfiable hard core" `Quick
            test_unsatisfiable_hard_core;
          Alcotest.test_case "soft constraints lose and win" `Quick
            test_soft_constraint_can_lose;
          Alcotest.test_case "rule chain depth" `Quick test_rule_chain_depth;
          Alcotest.test_case "interval computation chain" `Quick
            test_interval_computation_chain;
          Alcotest.test_case "extreme confidences" `Quick
            test_large_weights_and_tiny_confidence;
          Alcotest.test_case "engines agree" `Quick
            test_all_engines_agree_on_edge_cases;
        ] );
    ]
