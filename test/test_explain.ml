(* Tests for removal and derivation explanations. *)

module E = Tecore.Explain

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let cr_rules () =
  parse_rules
    {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .|}

let cr_graph () =
  Kg.Graph.of_list
    [
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
      Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
    ]

let test_removal_explained_by_clash () =
  let graph = cr_graph () in
  let result = Tecore.Engine.resolve graph (cr_rules ()) in
  let removals, _ = E.of_result graph result in
  match removals with
  | [ r ] -> (
      Alcotest.(check string) "napoli removed" "Napoli"
        (Kg.Term.to_string r.E.quad.Kg.Quad.object_);
      match r.E.clashes with
      | [ clash ] ->
          Alcotest.(check string) "constraint name" "c2" clash.E.constraint_name;
          Alcotest.(check int) "one winner" 1 (List.length clash.E.winners);
          Alcotest.(check string) "chelsea won" "Chelsea"
            (Kg.Term.to_string (List.hd clash.E.winners).Kg.Quad.object_);
          Alcotest.(check bool) "winner outweighs loser" true
            (clash.E.winner_weight > clash.E.loser_weight)
      | clashes ->
          Alcotest.fail (Printf.sprintf "expected 1 clash, got %d" (List.length clashes)))
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 removal, got %d" (List.length rs))

let test_low_confidence_removal_has_no_clash () =
  (* A fact below confidence 0.5 is dropped by its own weight. *)
  let graph =
    Kg.Graph.of_list [ Kg.Quad.v "a" "p" (Kg.Term.iri "b") (1, 2) 0.2 ]
  in
  let result = Tecore.Engine.resolve graph [] in
  let removals, _ = E.of_result graph result in
  match removals with
  | [ r ] -> Alcotest.(check int) "no clash" 0 (List.length r.E.clashes)
  | _ -> Alcotest.fail "expected one removal"

let test_derivation_explained () =
  let graph = cr_graph () in
  let result = Tecore.Engine.resolve graph (cr_rules ()) in
  let _, derivations = E.of_result graph result in
  match derivations with
  | [ d ] -> (
      Alcotest.(check string) "worksFor derived" "worksFor"
        d.E.atom.Logic.Atom.Ground.predicate;
      match d.E.via with
      | [ (rule, support) ] ->
          Alcotest.(check string) "via f1" "f1" rule;
          Alcotest.(check int) "one supporting fact" 1 (List.length support);
          Alcotest.(check string) "palermo supports" "Palermo"
            (Kg.Term.to_string (List.hd support).Kg.Quad.object_)
      | _ -> Alcotest.fail "expected one firing rule")
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 derivation, got %d" (List.length ds))

let test_chained_derivation_support () =
  (* The second derivation's direct support is the first (hidden) atom,
     so its evidence support is the playsFor fact transitively only when
     listed in the instance body; via f2 the evidence support is the
     locatedIn fact. *)
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
        Kg.Quad.v "Palermo" "locatedIn" (Kg.Term.iri "Sicily") (1900, 2017) 1.0;
      ]
  in
  let rules =
    parse_rules
      {|rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .
rule f2 1.6: worksFor(x, y)@t ^ locatedIn(y, z)@t2 ^ intersects(t, t2) => livesIn(x, z)@(t * t2) .|}
  in
  let result = Tecore.Engine.resolve graph rules in
  let _, derivations = E.of_result graph result in
  let lives =
    List.find_opt
      (fun d -> d.E.atom.Logic.Atom.Ground.predicate = "livesIn")
      derivations
  in
  match lives with
  | Some d -> (
      match d.E.via with
      | [ ("f2", support) ] ->
          Alcotest.(check int) "evidence support (locatedIn only)" 1
            (List.length support)
      | _ -> Alcotest.fail "expected f2 firing")
  | None -> Alcotest.fail "livesIn not derived"

let test_pp_smoke () =
  let graph = cr_graph () in
  let result = Tecore.Engine.resolve graph (cr_rules ()) in
  let removals, derivations = E.of_result graph result in
  List.iter
    (fun r ->
      let s = Format.asprintf "%a" E.pp_removal r in
      Alcotest.(check bool) "non-empty" true (String.length s > 0))
    removals;
  List.iter
    (fun d ->
      let s = Format.asprintf "%a" E.pp_derivation d in
      Alcotest.(check bool) "non-empty" true (String.length s > 0))
    derivations

let () =
  Alcotest.run "explain"
    [
      ( "removals",
        [
          Alcotest.test_case "clash explanation" `Quick
            test_removal_explained_by_clash;
          Alcotest.test_case "own-weight removal" `Quick
            test_low_confidence_removal_has_no_clash;
        ] );
      ( "derivations",
        [
          Alcotest.test_case "direct" `Quick test_derivation_explained;
          Alcotest.test_case "chained" `Quick test_chained_derivation_support;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
