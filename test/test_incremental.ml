(* Differential oracle for incremental resolution.

   The contract under test: a resolve with [~mode:`Incremental] — cached
   grounding snapshot, delta replay, memoised component solutions and all
   — is observationally identical to a from-scratch [`Fresh] resolve of
   the same graph and rules. Random edit scripts drive one long-lived
   session through asserts, retracts and rule toggles; after every
   resolve the incremental result is compared field by field against the
   stateless oracle, for every engine backend and at two job counts. *)

module Engine = Tecore.Engine
module Session = Tecore.Session
module Conflict = Tecore.Conflict

(* This suite owns the fault registry: the differential property is a
   fault-free identity (the fault interaction has its own test below,
   which configures exactly the fault it wants). Without this, the CI
   sweep that re-runs the whole suite under TECORE_FAULTS would inject
   different fault sites into the incremental and fresh pipelines —
   which legitimately diverge then, as only one of them is degraded. *)
let () = Prelude.Deadline.Faults.clear ()

let base_rules_src =
  {|
constraint fb_one_team:
  playsFor(x, y)@t ^ playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint fb_one_birth:
  birthDate(x, y)@t ^ birthDate(x, z)@t2 ^ intersects(t, t2) => y = z .
|}

let extra_rule_src =
  "rule t_worksfor 1.5: playsFor(x, y)@t => worksFor(x, y)@t ."

(* ------------------------------------------------------------------ *)
(* Edit scripts                                                        *)
(* ------------------------------------------------------------------ *)

type op =
  | Assert_ of int * int * int  (* base fact, object donor, year shift *)
  | Retract of int
  | Toggle_rule
  | Resolve

let pp_op = function
  | Assert_ (a, b, c) -> Printf.sprintf "assert(%d,%d,%d)" a b c
  | Retract i -> Printf.sprintf "retract(%d)" i
  | Toggle_rule -> "toggle_rule"
  | Resolve -> "resolve"

let script_gen =
  QCheck.Gen.(
    let op =
      frequency
        [
          (3, map3 (fun a b c -> Assert_ (a, b, c)) nat nat nat);
          (3, map (fun i -> Retract i) nat);
          (1, return Toggle_rule);
          (3, return Resolve);
        ]
    in
    list_size (int_range 4 10) op >|= fun ops -> ops @ [ Resolve ])

let script_arb =
  QCheck.make script_gen ~print:(fun ops ->
      String.concat "; " (List.map pp_op ops))

let live_facts g = List.rev (Kg.Graph.fold (fun id q acc -> (id, q) :: acc) g [])

let apply session op =
  match op with
  | Resolve -> ()
  | Toggle_rule ->
      if
        List.exists
          (fun (r : Logic.Rule.t) -> r.Logic.Rule.name = "t_worksfor")
          (Session.rules session)
      then ignore (Session.remove_rule session "t_worksfor")
      else (
        match Session.add_rules session extra_rule_src with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "add_rules: %s" e)
  | Retract i -> (
      match Session.graph session with
      | None -> ()
      | Some g -> (
          match live_facts g with
          | [] -> ()
          | facts -> (
              let _, q = List.nth facts (i mod List.length facts) in
              match Session.retract session q with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.failf "retract of a live fact: %s"
                    (Session.error_message e))))
  | Assert_ (i, j, k) -> (
      match Session.graph session with
      | None -> ()
      | Some g -> (
          match Kg.Graph.by_predicate g (Kg.Term.iri "playsFor") with
          | [] -> ()
          | plays -> (
              let _, q = List.nth plays (i mod List.length plays) in
              let _, donor = List.nth plays (j mod List.length plays) in
              let lo = 1960 + (k mod 50) in
              let q' =
                {
                  q with
                  Kg.Quad.object_ = donor.Kg.Quad.object_;
                  time = Kg.Interval.make lo (lo + 2);
                  confidence = 0.55;
                }
              in
              match Session.assert_fact session q' with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.failf "assert: %s" (Session.error_message e))))

(* ------------------------------------------------------------------ *)
(* Result signatures                                                   *)
(* ------------------------------------------------------------------ *)

let ground_str a = Format.asprintf "%a" Logic.Atom.Ground.pp a

let signature (r : Engine.result) =
  let res = r.Engine.resolution in
  ( List.map
      (fun (id, q) -> (id, Kg.Quad.to_string q))
      res.Conflict.removed,
    res.Conflict.kept,
    List.sort compare
      (List.map
         (fun (d : Conflict.derived_fact) ->
           (ground_str d.Conflict.atom, d.Conflict.confidence))
         res.Conflict.derived),
    res.Conflict.conflicting,
    r.Engine.stats.Engine.objective,
    r.Engine.stats.Engine.hard_violations,
    r.Engine.stats.Engine.engine_used,
    r.Engine.stats.Engine.status )

let new_session d =
  let session = Session.create () in
  Session.load_graph session d.Datagen.Footballdb.graph;
  (match Session.add_rules session base_rules_src with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "base rules: %s" e);
  session

let check_resolve ~engine ~jobs session =
  match Session.resolve ~engine ~jobs ~mode:`Incremental session with
  | Error e ->
      Alcotest.failf "incremental resolve: %s" (Session.error_message e)
  | Ok r_inc ->
      let g = Option.get (Session.graph session) in
      let r_fresh = Engine.resolve ~engine ~jobs g (Session.rules session) in
      signature r_inc = signature r_fresh

let run_script ~engine ~jobs seed ops =
  let d =
    Datagen.Footballdb.generate
      ~seed:(1 + (seed mod 50))
      ~players:7 ~noise_ratio:0.4 ()
  in
  let session = new_session d in
  List.for_all
    (fun op ->
      apply session op;
      match op with
      | Resolve -> check_resolve ~engine ~jobs session
      | _ -> true)
    ops

(* The full backend matrix. Instance sizes stay tiny (7 players) so the
   exact backends finish their search. *)
let engines =
  let mln = Mln.Map_inference.default_options in
  [
    ("mln-walk-cpi", Engine.Mln mln, 6);
    ( "mln-walk",
      Engine.Mln { mln with Mln.Map_inference.use_cpi = false },
      6 );
    ( "mln-ilp",
      Engine.Mln
        {
          mln with
          Mln.Map_inference.solver = Mln.Map_inference.Ilp_exact;
          use_cpi = false;
        },
      3 );
    ( "mln-bb",
      Engine.Mln
        {
          mln with
          Mln.Map_inference.solver = Mln.Map_inference.Exact_bb;
          use_cpi = false;
        },
      3 );
    ("psl", Engine.Psl Psl.Npsl.default_options, 6);
  ]

let differential_tests =
  List.concat_map
    (fun (name, engine, count) ->
      List.map
        (fun jobs ->
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count
               ~name:
                 (Printf.sprintf "incremental = fresh (%s, jobs=%d)" name
                    jobs)
               (QCheck.pair QCheck.small_nat script_arb)
               (fun (seed, ops) -> run_script ~engine ~jobs seed ops)))
        [ 1; 4 ])
    engines

(* ------------------------------------------------------------------ *)
(* Grounding replay is byte-identical                                  *)
(* ------------------------------------------------------------------ *)

let store_dump store =
  let acc = ref [] in
  Grounder.Atom_store.iter
    (fun id atom origin ->
      let origin_str =
        match origin with
        | Grounder.Atom_store.Evidence { confidence; fact } ->
            Printf.sprintf "evidence(%.3f,%d)" confidence fact
        | Grounder.Atom_store.Hidden -> "hidden"
      in
      acc := (id, ground_str atom, origin_str) :: !acc)
    store;
  List.rev !acc

let instances_dump store (result : Grounder.Ground.result) =
  List.map
    (Format.asprintf "%a" (Grounder.Ground.Instance.pp store))
    result.Grounder.Ground.instances

let test_reground_identical () =
  let d =
    Datagen.Footballdb.generate ~seed:5 ~players:12 ~noise_ratio:0.5 ()
  in
  let g = d.Datagen.Footballdb.graph in
  let rules =
    Datagen.Footballdb.constraints () @ Datagen.Footballdb.rules ()
  in
  let store0 = Grounder.Atom_store.of_graph g in
  let _, snapshot = Grounder.Ground.run_record store0 rules in
  (* Retract one playsFor fact... *)
  let id, _ =
    List.hd (Kg.Graph.by_predicate g (Kg.Term.iri "playsFor"))
  in
  Kg.Graph.remove g id;
  (* ...then replay against the edited graph... *)
  let store_inc = Grounder.Atom_store.of_graph g in
  let affected =
    Grounder.Ground.affected_rules ~delta:[ "playsFor" ] rules
  in
  let result_inc =
    match Grounder.Ground.reground ~snapshot ~affected store_inc rules with
    | Some (r, _) -> r
    | None -> Alcotest.fail "reground refused a same-rules replay"
  in
  (* ...and compare against a fresh grounding, atom by atom. *)
  let store_fresh = Grounder.Atom_store.of_graph g in
  let result_fresh = Grounder.Ground.run store_fresh rules in
  Alcotest.(check (list (triple int string string)))
    "stores identical" (store_dump store_fresh) (store_dump store_inc);
  Alcotest.(check (list string))
    "instances identical"
    (instances_dump store_fresh result_fresh)
    (instances_dump store_inc result_inc);
  (* Identical stores and instances compile to identical networks, so
     the marginal solvers (Gibbs, MC-SAT) see the same problem too. *)
  let network_of store result =
    Mln.Network.build store result.Grounder.Ground.instances
  in
  let n1 = network_of store_fresh result_fresh in
  let n2 = network_of store_inc result_inc in
  Alcotest.(check int)
    "network atoms" n1.Mln.Network.num_atoms n2.Mln.Network.num_atoms;
  Alcotest.(check bool)
    "network clauses" true
    (n1.Mln.Network.clauses = n2.Mln.Network.clauses);
  let marginals n =
    (Mln.Gibbs.run ~seed:3 ~burn_in:100 ~samples:2_000 n).Mln.Gibbs.marginals
  in
  Alcotest.(check bool)
    "gibbs marginals identical" true
    (marginals n1 = marginals n2)

(* ------------------------------------------------------------------ *)
(* Removed rules can leave nothing behind                              *)
(* ------------------------------------------------------------------ *)

let test_remove_rule_invalidates () =
  let d =
    Datagen.Footballdb.generate ~seed:9 ~players:8 ~noise_ratio:0.4 ()
  in
  let session = new_session d in
  (match Session.add_rules session extra_rule_src with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "add_rules: %s" e);
  let engine = Engine.Mln Mln.Map_inference.default_options in
  (match Session.resolve ~engine ~mode:`Incremental session with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first resolve: %s" (Session.error_message e));
  Alcotest.(check bool)
    "rule removed" true
    (Session.remove_rule session "t_worksfor");
  match Session.resolve ~engine ~mode:`Incremental session with
  | Error e -> Alcotest.failf "second resolve: %s" (Session.error_message e)
  | Ok r ->
      (* The cached grounding must have been dropped wholesale... *)
      (match Session.cache_outcome session with
      | Some Engine.Invalidate -> ()
      | other ->
          Alcotest.failf "expected Invalidate, got %s"
            (match other with
            | Some o -> Engine.outcome_name o
            | None -> "none"));
      (* ...so no ground instance of the removed rule can survive to be
         selected. *)
      Alcotest.(check bool)
        "no stale instances" true
        (List.for_all
           (fun (i : Grounder.Ground.Instance.t) ->
             i.Grounder.Ground.Instance.rule.Logic.Rule.name <> "t_worksfor")
           r.Engine.raw.Engine.instances);
      let g = Option.get (Session.graph session) in
      let r_fresh = Engine.resolve ~engine g (Session.rules session) in
      Alcotest.(check bool)
        "equals fresh after unrule" true
        (signature r = signature r_fresh)

(* ------------------------------------------------------------------ *)
(* Cache outcome bookkeeping                                           *)
(* ------------------------------------------------------------------ *)

let test_outcomes () =
  let d =
    Datagen.Footballdb.generate ~seed:11 ~players:8 ~noise_ratio:0.4 ()
  in
  let session = new_session d in
  let engine = Engine.Mln Mln.Map_inference.default_options in
  let resolve () =
    match Session.resolve ~engine ~mode:`Incremental session with
    | Ok r -> r
    | Error e -> Alcotest.failf "resolve: %s" (Session.error_message e)
  in
  let outcome () =
    match Session.cache_outcome session with
    | Some o -> Engine.outcome_name o
    | None -> "none"
  in
  ignore (resolve ());
  Alcotest.(check string) "first resolve misses" "miss" (outcome ());
  let r_hit = resolve () in
  Alcotest.(check string) "no-op resolve hits" "hit" (outcome ());
  let g = Option.get (Session.graph session) in
  let id, q = List.hd (live_facts g) in
  ignore id;
  (match Session.retract session q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "retract: %s" (Session.error_message e));
  let r_replay = resolve () in
  Alcotest.(check string) "edited resolve replays" "replay" (outcome ());
  let r_fresh = Engine.resolve ~engine g (Session.rules session) in
  Alcotest.(check bool)
    "replayed equals fresh" true
    (signature r_replay = signature r_fresh);
  (* A hit returns the previous result, which by induction equals the
     fresh resolve of the unedited graph; spot-check the stats agree. *)
  Alcotest.(check bool)
    "hit kept a completed status" true
    (r_hit.Engine.stats.Engine.status = Prelude.Deadline.Completed);
  (* A finite deadline bypasses the state machinery. *)
  (match
     Session.resolve ~engine ~mode:`Incremental
       ~deadline:(Prelude.Deadline.after ~ms:60_000.)
       session
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bypass resolve: %s" (Session.error_message e));
  Alcotest.(check string) "finite deadline bypasses" "bypass" (outcome ())

(* ------------------------------------------------------------------ *)
(* Fault containment: mid-replay failure falls back to fresh           *)
(* ------------------------------------------------------------------ *)

let test_fault_fallback () =
  let d =
    Datagen.Footballdb.generate ~seed:13 ~players:8 ~noise_ratio:0.4 ()
  in
  let session = new_session d in
  let engine = Engine.Mln Mln.Map_inference.default_options in
  (match Session.resolve ~engine ~mode:`Incremental session with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first resolve: %s" (Session.error_message e));
  let g = Option.get (Session.graph session) in
  let _, q = List.hd (live_facts g) in
  (match Session.retract session q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "retract: %s" (Session.error_message e));
  Prelude.Deadline.Faults.configure "incr_timeout";
  let r =
    Fun.protect
      ~finally:(fun () -> Prelude.Deadline.Faults.clear ())
      (fun () ->
        match Session.resolve ~engine ~mode:`Incremental session with
        | Ok r -> r
        | Error e ->
            Alcotest.failf "faulted resolve: %s" (Session.error_message e))
  in
  (match Session.cache_outcome session with
  | Some Engine.Fallback -> ()
  | other ->
      Alcotest.failf "expected Fallback, got %s"
        (match other with
        | Some o -> Engine.outcome_name o
        | None -> "none"));
  let r_fresh = Engine.resolve ~engine g (Session.rules session) in
  Alcotest.(check bool)
    "fallback equals fresh (never a stale cache)" true
    (signature r = signature r_fresh)

let () =
  Alcotest.run "incremental"
    [
      ("differential", differential_tests);
      ( "grounding",
        [ Alcotest.test_case "reground is byte-identical" `Quick
            test_reground_identical ] );
      ( "invalidation",
        [
          Alcotest.test_case "removed rule leaves no stale clauses" `Quick
            test_remove_rule_invalidates;
          Alcotest.test_case "outcome bookkeeping" `Quick test_outcomes;
        ] );
      ( "faults",
        [
          Alcotest.test_case "mid-replay fault falls back to fresh" `Quick
            test_fault_fallback;
        ] );
    ]
