(* Tests for the JSON rendering, validated with a minimal JSON parser so
   the output is checked for well-formedness, not just by substring. *)

(* ------------- a tiny JSON validator ------------- *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

exception Bad of string

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (text.[!pos] = ' ' || text.[!pos] = '\n' || text.[!pos] = '\t'
        || text.[!pos] = '\r')
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "bad escape"
             else
               match text.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "bad unicode escape";
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape %c" c));
            incr pos;
            loop ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> JStr (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          JObj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((key, value) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((key, value) :: acc)
            | _ -> fail "expected , or }"
          in
          JObj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          JArr []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (value :: acc)
            | Some ']' ->
                incr pos;
                List.rev (value :: acc)
            | _ -> fail "expected , or ]"
          in
          JArr (items [])
        end
    | Some 't' ->
        pos := !pos + 4;
        JBool true
    | Some 'f' ->
        pos := !pos + 5;
        JBool false
    | Some 'n' ->
        pos := !pos + 4;
        JNull
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && (match text.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr pos
        done;
        (match float_of_string_opt (String.sub text start (!pos - start)) with
        | Some f -> JNum f
        | None -> fail "bad number")
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing data";
  v

let field name = function
  | JObj members -> (
      match List.assoc_opt name members with
      | Some v -> v
      | None -> Alcotest.fail ("missing field " ^ name))
  | _ -> Alcotest.fail "not an object"

(* ------------- tests ------------- *)

module J = Tecore.Json_out

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let test_escape () =
  Alcotest.(check string) "quotes" "a\\\"b" (J.escape "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (J.escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (J.escape "a\nb");
  Alcotest.(check string) "control" "a\\u0001b" (J.escape "a\001b")

let test_quad_json () =
  let q = Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9 in
  match parse_json (J.of_quad q) with
  | JObj _ as j ->
      (match field "subject" j with
      | JStr "CR" -> ()
      | _ -> Alcotest.fail "subject");
      (match field "from" j with
      | JNum f -> Alcotest.(check bool) "from" true (f = 2000.0)
      | _ -> Alcotest.fail "from");
      (match field "confidence" j with
      | JNum c -> Alcotest.(check bool) "confidence" true (Float.abs (c -. 0.9) < 1e-9)
      | _ -> Alcotest.fail "confidence")
  | _ -> Alcotest.fail "not an object"

let test_quad_with_tricky_strings () =
  let q =
    Kg.Quad.v "s\"ubj" "p" (Kg.Term.str "line\nbreak \\ quote\"") (1, 2) 0.5
  in
  match parse_json (J.of_quad q) with
  | JObj _ as j -> (
      match field "object" j with
      | JStr s -> Alcotest.(check string) "roundtrip" "line\nbreak \\ quote\"" s
      | _ -> Alcotest.fail "object")
  | _ -> Alcotest.fail "not an object"

let test_result_json () =
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
        Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
      ]
  in
  let rules =
    parse_rules
      {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .|}
  in
  let result = Tecore.Engine.resolve g rules in
  let j = parse_json (J.of_result result) in
  (match field "engine" j with
  | JStr ("mln" | "psl") -> ()
  | _ -> Alcotest.fail "engine");
  let resolution = field "resolution" j in
  (match field "removed" resolution with
  | JArr [ removed ] -> (
      match field "object" removed with
      | JStr "Napoli" -> ()
      | _ -> Alcotest.fail "removed object")
  | _ -> Alcotest.fail "one removed fact expected");
  (match field "derived" resolution with
  | JArr [ derived ] -> (
      match field "predicate" derived with
      | JStr "worksFor" -> ()
      | _ -> Alcotest.fail "derived predicate")
  | _ -> Alcotest.fail "one derived fact expected");
  match field "kept" resolution with
  | JNum k -> Alcotest.(check bool) "kept 2" true (k = 2.0)
  | _ -> Alcotest.fail "kept"

let test_namespace_shrinking () =
  let ns = Kg.Namespace.create () in
  let q =
    Kg.Quad.v "http://example.org/CR" "http://example.org/coach"
      (Kg.Term.iri "http://example.org/Chelsea")
      (2000, 2004) 0.9
  in
  match parse_json (J.of_quad ~namespace:ns q) with
  | JObj _ as j -> (
      match field "subject" j with
      | JStr "ex:CR" -> ()
      | JStr other -> Alcotest.fail ("not shrunk: " ^ other)
      | _ -> Alcotest.fail "subject")
  | _ -> Alcotest.fail "not an object"

let test_atemporal_derived () =
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "Kid" "playsFor" (Kg.Term.iri "Ajax") (2010, 2012) 0.8;
        Kg.Quad.v "Kid" "birthDate" (Kg.Term.int 1994) (1994, 2017) 0.95;
      ]
  in
  let rules =
    parse_rules
      "rule f3 2.9: playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ t - t2 < 20 => Teen(x) ."
  in
  let result = Tecore.Engine.resolve g rules in
  let j = parse_json (J.of_result result) in
  match field "derived" (field "resolution" j) with
  | JArr [ derived ] -> (
      (* Atemporal atoms have no from/to fields. *)
      match derived with
      | JObj members ->
          Alcotest.(check bool) "no from" true
            (not (List.mem_assoc "from" members));
          (match field "args" derived with
          | JArr [ JStr "Kid" ] -> ()
          | _ -> Alcotest.fail "args")
      | _ -> Alcotest.fail "derived not an object")
  | _ -> Alcotest.fail "one derived expected"

let () =
  Alcotest.run "json"
    [
      ( "rendering",
        [
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "quad" `Quick test_quad_json;
          Alcotest.test_case "tricky strings" `Quick test_quad_with_tricky_strings;
          Alcotest.test_case "full result" `Quick test_result_json;
          Alcotest.test_case "namespace shrinking" `Quick
            test_namespace_shrinking;
          Alcotest.test_case "atemporal derived" `Quick test_atemporal_derived;
        ] );
    ]
