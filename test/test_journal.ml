(* Durability tests for the write-ahead journal behind
   [tecore serve --state-dir] (lib/serve/journal.ml).

   Coverage: frame/codec units, append/recover round-trips, snapshot
   compaction, torn-tail truncation at EVERY byte boundary of a real
   journal, typed unrecoverable damage (manifest and snapshot), serve
   restart recovery, idle-TTL parking with transparent re-hello, and a
   SIGKILL crash oracle: the real CLI daemon is forked with a
   [journal_torn] fault injected into its environment, killed -9 while
   it stalls mid-frame, and the recovered session must resolve
   byte-identically to an uninterrupted reference session holding
   exactly the acked edit prefix — for every solver backend. *)

module Engine = Tecore.Engine
module Session = Tecore.Session
module Journal = Serve.Journal
module Prng = Prelude.Prng

(* This suite owns the fault registry: the crash oracle injects
   [journal_torn] into the child daemon's environment explicitly; the
   parent process must stay fault-free even under the CI fault sweep. *)
let () = Prelude.Deadline.Faults.clear ()

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                  *)
(* ------------------------------------------------------------------ *)

let dir_serial = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let with_state_dir name f =
  incr dir_serial;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tecore-journal-%s-%d-%d" name (Unix.getpid ())
         !dir_serial)
  in
  rm_rf d;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path content =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc content)

let facts session =
  match Session.graph session with
  | Some g -> Kg.Graph.size g
  | None -> 0

let check_status name expected status =
  Alcotest.(check string) name expected (Journal.status_name status)

(* ------------------------------------------------------------------ *)
(* Shared edit lines                                                   *)
(* ------------------------------------------------------------------ *)

let constraint_line =
  "constraint one_team: ex:playsFor(x, y)@t ^ ex:playsFor(x, z)@t2 ^ y != z \
   => disjoint(t, t2) ."

let assert_line i =
  Printf.sprintf "assert ex:P%d ex:playsFor ex:T%d [%d,%d] 0.%d ." (i mod 4)
    (i mod 3) (1900 + i)
    (1901 + i)
    (5 + (i mod 5))

(* ------------------------------------------------------------------ *)
(* Units: CRC, id codec, fsync policy, replay                          *)
(* ------------------------------------------------------------------ *)

let test_crc32 () =
  Alcotest.(check int) "empty string" 0 (Journal.crc32 "");
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Journal.crc32 "123456789");
  Alcotest.(check bool) "one-bit difference detected" true
    (Journal.crc32 "assert a" <> Journal.crc32 "assert b")

let test_id_codec () =
  List.iter
    (fun id ->
      Alcotest.(check (option string))
        (Printf.sprintf "roundtrip %S" id)
        (Some id)
        (Journal.decode_id (Journal.encode_id id)))
    [ "alice"; "A-z_09"; "weird id/with:chars"; "pct%40"; "\xc3\xbcber"; "" ];
  Alcotest.(check string)
    "plain ids are their own encoding" "a_B-9" (Journal.encode_id "a_B-9");
  Alcotest.(check (option string)) "bad hex" None (Journal.decode_id "%zz");
  Alcotest.(check (option string))
    "truncated escape" None (Journal.decode_id "abc%4");
  Alcotest.(check (option string))
    "raw specials refused" None
    (Journal.decode_id "a b")

let test_fsync_policy () =
  let ok name s expected =
    match Journal.fsync_policy_of_string s with
    | Ok p -> Alcotest.(check bool) name true (p = expected)
    | Error e -> Alcotest.failf "%s: unexpected error %s" name e
  in
  ok "always" "always" Journal.Always;
  ok "case-folded" "NEVER" Journal.Never;
  ok "every n" " 8 " (Journal.Every 8);
  List.iter
    (fun s ->
      match Journal.fsync_policy_of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid policy %S" s
      | Error _ -> ())
    [ "0"; "-2"; "banana"; "" ];
  Alcotest.(check string) "name always" "always"
    (Journal.fsync_policy_name Journal.Always);
  Alcotest.(check string) "name never" "never"
    (Journal.fsync_policy_name Journal.Never);
  Alcotest.(check string) "name every" "8"
    (Journal.fsync_policy_name (Journal.Every 8))

let test_replay_line () =
  let s = Session.create () in
  let ok line payload =
    match Journal.replay_line s ~line payload with
    | Ok () -> ()
    | Error m -> Alcotest.failf "replay %S failed: %s" payload m
  in
  ok 1 "open";
  ok 2 "@prefix foaf: <http://xmlns.com/foaf/0.1/> .";
  ok 3 constraint_line;
  ok 4 (assert_line 1);
  ok 5 (assert_line 2);
  Alcotest.(check int) "facts applied" 2 (facts s);
  ok 6 ("retract " ^ String.sub (assert_line 2) 7
          (String.length (assert_line 2) - 7));
  Alcotest.(check int) "retract applied" 1 (facts s);
  ok 7 "rule t_works 1.5: ex:playsFor(x, y)@t => ex:worksFor(x, y)@t .";
  Alcotest.(check int) "rules applied" 2 (List.length (Session.rules s));
  ok 8 "unrule t_works";
  Alcotest.(check int) "unrule applied" 1 (List.length (Session.rules s));
  (match Journal.replay_line s ~line:9 "assert not a quad" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage payload replayed");
  match Journal.replay_line s ~line:10 "unrule no_such" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unrule of absent rule replayed"

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

let recover_full name ~state_dir ~fsync ~compact_every id =
  let r = Journal.recover ~state_dir ~fsync ~compact_every id in
  check_status name "full" r.Journal.status;
  r

let test_roundtrip_full () =
  with_state_dir "roundtrip" (fun state_dir ->
      let edits =
        "open" :: constraint_line :: List.init 3 (fun i -> assert_line (i + 1))
      in
      let j =
        Journal.create ~state_dir ~fsync:Journal.Always ~compact_every:0
          "alice"
      in
      List.iter (Journal.append j) edits;
      Alcotest.(check int) "record counter" 5
        (Journal.records_since_snapshot j);
      Alcotest.(check int) "append counter" 5 (Journal.appends j);
      Journal.close j;
      Journal.close j (* idempotent *);
      Alcotest.(check (list string))
        "listing" [ "alice" ]
        (Journal.list_sessions ~state_dir);
      let r =
        recover_full "clean tail" ~state_dir ~fsync:Journal.Always
          ~compact_every:0 "alice"
      in
      Alcotest.(check int) "facts recovered" 3 (facts r.Journal.session);
      Alcotest.(check int) "rules recovered" 1
        (List.length (Session.rules r.Journal.session));
      Alcotest.(check int) "tail counter restored" 5
        (Journal.records_since_snapshot r.Journal.journal);
      (* The recovered handle stays appendable. *)
      Journal.append r.Journal.journal (assert_line 4);
      Journal.close r.Journal.journal;
      let r2 =
        recover_full "after re-append" ~state_dir ~fsync:Journal.Always
          ~compact_every:0 "alice"
      in
      Alcotest.(check int) "fourth fact recovered" 4 (facts r2.Journal.session);
      Journal.close r2.Journal.journal)

let test_missing_dir_listing () =
  with_state_dir "empty" (fun state_dir ->
      Alcotest.(check (list string))
        "missing state dir lists nothing" []
        (Journal.list_sessions ~state_dir))

let session_files ~state_dir id =
  Sys.readdir (Journal.session_dir ~state_dir id)
  |> Array.to_list |> List.sort compare

let test_compaction () =
  with_state_dir "compact" (fun state_dir ->
      let session = Session.create () in
      let j =
        Journal.create ~state_dir ~fsync:Journal.Always ~compact_every:4
          "carol"
      in
      let edits =
        "open" :: constraint_line :: List.init 6 (fun i -> assert_line (i + 1))
      in
      let compactions = ref 0 in
      List.iteri
        (fun i line ->
          (match Journal.replay_line session ~line:(i + 1) line with
          | Ok () -> ()
          | Error m -> Alcotest.failf "mirror replay %S: %s" line m);
          Journal.append j line;
          if Journal.maybe_compact j (fun () -> Session.dump_state session)
          then incr compactions)
        edits;
      Alcotest.(check int) "size-triggered compactions" 2 !compactions;
      Alcotest.(check int) "tail counter reset" 0
        (Journal.records_since_snapshot j);
      Journal.close j;
      (* Exactly one generation's files survive. *)
      Alcotest.(check (list string))
        "old generations deleted"
        [ "MANIFEST"; "journal.2"; "snapshot.2" ]
        (session_files ~state_dir "carol");
      let r =
        recover_full "compacted" ~state_dir ~fsync:Journal.Always
          ~compact_every:4 "carol"
      in
      Alcotest.(check (list string))
        "state dump identical after compaction round-trip"
        (Session.dump_state session)
        (Session.dump_state r.Journal.session);
      Journal.close r.Journal.journal)

let test_explicit_compact () =
  with_state_dir "snapshot" (fun state_dir ->
      let session = Session.create () in
      let j =
        Journal.create ~state_dir ~fsync:Journal.Always ~compact_every:0 "dan"
      in
      let edits = [ "open"; assert_line 1; assert_line 2 ] in
      List.iteri
        (fun i line ->
          (match Journal.replay_line session ~line:(i + 1) line with
          | Ok () -> ()
          | Error m -> Alcotest.failf "mirror replay %S: %s" line m);
          Journal.append j line)
        edits;
      Journal.compact j (Session.dump_state session);
      Alcotest.(check int) "counter reset" 0
        (Journal.records_since_snapshot j);
      (* A post-snapshot record lands in the new generation. *)
      Journal.append j (assert_line 3);
      Journal.close j;
      let r =
        recover_full "snapshot + tail" ~state_dir ~fsync:Journal.Always
          ~compact_every:0 "dan"
      in
      Alcotest.(check int) "snapshot facts + tail fact" 3
        (facts r.Journal.session);
      Alcotest.(check int) "tail counter counts only the tail" 1
        (Journal.records_since_snapshot r.Journal.journal);
      Journal.close r.Journal.journal)

(* ------------------------------------------------------------------ *)
(* Torn tails: truncate a real journal at every byte boundary          *)
(* ------------------------------------------------------------------ *)

let test_torn_tail_every_boundary () =
  with_state_dir "torn" (fun template ->
      let edits = "open" :: List.init 5 (fun i -> assert_line (i + 1)) in
      let j =
        Journal.create ~state_dir:template ~fsync:Journal.Never
          ~compact_every:0 "t"
      in
      List.iter (Journal.append j) edits;
      Journal.close j;
      let tdir = Journal.session_dir ~state_dir:template "t" in
      let manifest = read_file (Filename.concat tdir "MANIFEST") in
      let data = read_file (Filename.concat tdir "journal.0") in
      (* Frame boundaries: length(4) + crc(4) + payload + '\n'. *)
      let boundaries =
        List.rev
          (List.fold_left
             (fun acc e -> (List.hd acc + 8 + String.length e + 1) :: acc)
             [ 0 ] edits)
      in
      Alcotest.(check int)
        "boundaries span the file" (String.length data)
        (List.nth boundaries (List.length edits));
      with_state_dir "torn-cut" (fun scratch ->
          for cut = 0 to String.length data do
            let state_dir =
              Filename.concat scratch (Printf.sprintf "cut%d" cut)
            in
            let dir = Journal.session_dir ~state_dir "t" in
            mkdir_p dir;
            write_file (Filename.concat dir "MANIFEST") manifest;
            write_file
              (Filename.concat dir "journal.0")
              (String.sub data 0 cut);
            let r =
              Journal.recover ~state_dir ~fsync:Journal.Never ~compact_every:0
                "t"
            in
            (* Whole frames before the cut replay; the torn remainder is
               dropped. *)
            let expect_replayed =
              List.fold_left
                (fun acc b -> if b <= cut && b > 0 then acc + 1 else acc)
                0 boundaries
            in
            let tag = Printf.sprintf "cut %d" cut in
            (match r.Journal.status with
            | Journal.Full ->
                Alcotest.(check bool)
                  (tag ^ ": full only at a frame boundary") true
                  (List.mem cut boundaries)
            | Journal.Partial { dropped_bytes; replayed } ->
                Alcotest.(check bool)
                  (tag ^ ": partial only off-boundary") false
                  (List.mem cut boundaries);
                Alcotest.(check int) (tag ^ ": replayed prefix")
                  expect_replayed replayed;
                Alcotest.(check int)
                  (tag ^ ": dropped bytes")
                  (cut - List.nth boundaries expect_replayed)
                  dropped_bytes
            | Journal.Unrecoverable reason ->
                Alcotest.failf "%s: unrecoverable: %s" tag reason);
            (* "open" is record 1; every later record adds one fact. *)
            Alcotest.(check int)
              (tag ^ ": facts")
              (max 0 (expect_replayed - 1))
              (facts r.Journal.session);
            Journal.close r.Journal.journal;
            (* Partial recovery self-heals by compacting: the second
               recovery of the same directory is always clean. *)
            let r2 =
              recover_full (tag ^ ": self-healed") ~state_dir
                ~fsync:Journal.Never ~compact_every:0 "t"
            in
            Alcotest.(check int)
              (tag ^ ": facts stable across self-heal")
              (max 0 (expect_replayed - 1))
              (facts r2.Journal.session);
            Journal.close r2.Journal.journal;
            rm_rf state_dir
          done))

(* ------------------------------------------------------------------ *)
(* Unrecoverable damage                                                *)
(* ------------------------------------------------------------------ *)

let test_unrecoverable_manifest () =
  with_state_dir "badmanifest" (fun state_dir ->
      let j =
        Journal.create ~state_dir ~fsync:Journal.Always ~compact_every:0 "eve"
      in
      List.iter (Journal.append j) [ "open"; assert_line 1; assert_line 2 ];
      Journal.close j;
      let dir = Journal.session_dir ~state_dir "eve" in
      write_file (Filename.concat dir "MANIFEST") "not a manifest\n";
      let r =
        Journal.recover ~state_dir ~fsync:Journal.Always ~compact_every:0
          "eve"
      in
      check_status "typed status" "unrecoverable" r.Journal.status;
      Alcotest.(check int) "empty session" 0 (facts r.Journal.session);
      (* The damaged generation is left in place for inspection... *)
      Alcotest.(check bool) "damaged journal kept" true
        (Sys.file_exists (Filename.concat dir "journal.0"));
      (* ...and the handle is live at a fresh generation. *)
      Journal.append r.Journal.journal "open";
      Journal.append r.Journal.journal (assert_line 7);
      Journal.close r.Journal.journal;
      let r2 =
        recover_full "re-initialised" ~state_dir ~fsync:Journal.Always
          ~compact_every:0 "eve"
      in
      Alcotest.(check int) "post-damage edits recovered" 1
        (facts r2.Journal.session);
      Journal.close r2.Journal.journal)

let test_unrecoverable_snapshot () =
  with_state_dir "badsnapshot" (fun state_dir ->
      let session = Session.create () in
      let j =
        Journal.create ~state_dir ~fsync:Journal.Always ~compact_every:0
          "frank"
      in
      List.iteri
        (fun i line ->
          (match Journal.replay_line session ~line:(i + 1) line with
          | Ok () -> ()
          | Error m -> Alcotest.failf "mirror replay %S: %s" line m);
          Journal.append j line)
        [ "open"; constraint_line; assert_line 1; assert_line 2 ];
      Journal.compact j (Session.dump_state session);
      Journal.close j;
      let dir = Journal.session_dir ~state_dir "frank" in
      let snap_path = Filename.concat dir "snapshot.1" in
      let snap = Bytes.of_string (read_file snap_path) in
      let mid = Bytes.length snap / 2 in
      Bytes.set snap mid (Char.chr (Char.code (Bytes.get snap mid) lxor 0x40));
      write_file snap_path (Bytes.to_string snap);
      let r =
        Journal.recover ~state_dir ~fsync:Journal.Always ~compact_every:0
          "frank"
      in
      check_status "typed status" "unrecoverable" r.Journal.status;
      Alcotest.(check int)
        "half-applied snapshot restarts from empty" 0
        (facts r.Journal.session);
      Alcotest.(check bool) "damaged snapshot kept" true
        (Sys.file_exists snap_path);
      Journal.close r.Journal.journal;
      let r2 =
        recover_full "re-initialised cleanly" ~state_dir ~fsync:Journal.Always
          ~compact_every:0 "frank"
      in
      Journal.close r2.Journal.journal)

(* ------------------------------------------------------------------ *)
(* Loopback client (same shape as test_serve.ml)                       *)
(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; ic : in_channel }

let connect server =
  let fd = Serve.connect server in
  { fd; ic = Unix.in_channel_of_descr fd }

let close client = close_in_noerr client.ic

let send_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let request client line =
  send_line client.fd line;
  match input_line client.ic with
  | resp -> resp
  | exception End_of_file ->
      Alcotest.failf "connection closed after %S" line

let parse_response resp =
  let body tag =
    let n = String.length tag in
    if String.length resp >= n && String.sub resp 0 n = tag then
      Some (String.sub resp n (String.length resp - n))
    else None
  in
  let json s =
    match Obs.Json.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparseable response %S: %s" resp e
  in
  match (body "ok ", body "err ") with
  | Some s, _ -> `Ok (json s)
  | None, Some s -> `Err (json s)
  | None, None -> Alcotest.failf "untagged response %S" resp

let fields = function
  | Obs.Json.Obj fs -> fs
  | j -> Alcotest.failf "expected an object, got %s" (Obs.Json.to_string j)

let str_field j name =
  match List.assoc_opt name (fields j) with
  | Some (Obs.Json.Str s) -> s
  | _ ->
      Alcotest.failf "missing string field %S in %s" name (Obs.Json.to_string j)

let num_field j name =
  match List.assoc_opt name (fields j) with
  | Some (Obs.Json.Num n) -> n
  | _ ->
      Alcotest.failf "missing number field %S in %s" name (Obs.Json.to_string j)

let bool_field j name =
  match List.assoc_opt name (fields j) with
  | Some (Obs.Json.Bool b) -> b
  | _ ->
      Alcotest.failf "missing bool field %S in %s" name (Obs.Json.to_string j)

let expect_ok line resp =
  match parse_response resp with
  | `Ok j -> j
  | `Err j ->
      Alcotest.failf "request %S failed: %s" line (Obs.Json.to_string j)

let expect_err_kind name kind resp =
  match parse_response resp with
  | `Err j -> Alcotest.(check string) name kind (str_field j "kind")
  | `Ok j ->
      Alcotest.failf "%s: expected a %s error, got ok %s" name kind
        (Obs.Json.to_string j)

(* ------------------------------------------------------------------ *)
(* Serve restart recovery                                              *)
(* ------------------------------------------------------------------ *)

let test_serve_restart () =
  with_state_dir "restart" (fun sd ->
      let config = { Serve.default_config with Serve.state_dir = Some sd } in
      let server = Serve.start ~config (`Tcp 0) in
      (let c = connect server in
       let ok line = expect_ok line (request c line) in
       let hj = ok "hello alice" in
       Alcotest.(check bool) "fresh session" true (bool_field hj "created");
       Alcotest.(check string) "no recovery" "none" (str_field hj "recovery");
       ignore (ok "open");
       ignore (ok constraint_line);
       for i = 1 to 3 do
         ignore (ok (assert_line i))
       done;
       let sj = ok "stat" in
       Alcotest.(check bool) "durable" true (bool_field sj "durable");
       Alcotest.(check (float 0.))
         "journal records" 5.
         (num_field sj "journal_records");
       close c;
       Serve.stop server);
      (* Same state dir, fresh daemon: the registry is rebuilt at
         start. *)
      let server = Serve.start ~config (`Tcp 0) in
      Fun.protect
        ~finally:(fun () -> Serve.stop server)
        (fun () ->
          Alcotest.(check int) "startup recovery counted" 1
            (Serve.sessions_recovered server);
          let c = connect server in
          let ok line = expect_ok line (request c line) in
          let hj = ok "hello alice" in
          Alcotest.(check bool)
            "attached, not created" false (bool_field hj "created");
          Alcotest.(check string) "full recovery" "full"
            (str_field hj "recovery");
          let sj = ok "stat" in
          Alcotest.(check (float 0.)) "facts survive" 3.
            (num_field sj "facts");
          Alcotest.(check (float 0.)) "rules survive" 1.
            (num_field sj "rules");
          ignore (ok "resolve");
          close c))

(* ------------------------------------------------------------------ *)
(* Idle-TTL expiry: parked with a state dir, discarded without         *)
(* ------------------------------------------------------------------ *)

let await_expired server =
  let deadline = Unix.gettimeofday () +. 5. in
  while
    Serve.sessions_expired server = 0 && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "janitor expired the session" true
    (Serve.sessions_expired server > 0)

let test_idle_ttl_parks_durable_sessions () =
  with_state_dir "ttl" (fun sd ->
      let config =
        {
          Serve.default_config with
          Serve.state_dir = Some sd;
          idle_ttl_s = Some 0.05;
        }
      in
      let server = Serve.start ~config (`Tcp 0) in
      Fun.protect
        ~finally:(fun () -> Serve.stop server)
        (fun () ->
          let c = connect server in
          let ok line = expect_ok line (request c line) in
          ignore (ok "hello bob");
          ignore (ok "open");
          ignore (ok (assert_line 1));
          await_expired server;
          (* The stale attachment gets a typed error, not a hang or a
             silent empty session. *)
          expect_err_kind "typed expired error" "expired" (request c "stat");
          (* Re-hello transparently recovers the parked state. *)
          let hj = ok "hello bob" in
          Alcotest.(check string) "parked session recovered" "full"
            (str_field hj "recovery");
          let sj = ok "stat" in
          Alcotest.(check (float 0.)) "parked fact survives" 1.
            (num_field sj "facts");
          close c))

let test_idle_ttl_discards_ephemeral_sessions () =
  let config = { Serve.default_config with Serve.idle_ttl_s = Some 0.05 } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let c = connect server in
      let ok line = expect_ok line (request c line) in
      ignore (ok "hello ted");
      ignore (ok "open");
      ignore (ok (assert_line 1));
      await_expired server;
      expect_err_kind "typed expired error" "expired" (request c "stat");
      let hj = ok "hello ted" in
      Alcotest.(check bool)
        "no state dir: expired session is gone" true
        (bool_field hj "created");
      let sj = ok "stat" in
      Alcotest.(check (float 0.)) "fresh empty session" 0.
        (num_field sj "facts");
      close c)

(* ------------------------------------------------------------------ *)
(* SIGKILL crash oracle                                                *)
(* ------------------------------------------------------------------ *)

(* Random wire edit scripts — the generator of test_serve.ml, filtered
   to journaled edits (reads never reach the journal). *)
let gen_script ~seed ~ops =
  let rng = Prng.create seed in
  let serial = ref 0 in
  let fact () =
    incr serial;
    let lo = 1900 + !serial in
    Printf.sprintf "ex:P%d ex:playsFor ex:T%d [%d,%d] 0.%d ." (Prng.int rng 4)
      (Prng.int rng 3) lo
      (lo + 1 + Prng.int rng 4)
      (5 + Prng.int rng 5)
  in
  let live = ref [] in
  let rule_on = ref false in
  let out = ref [] in
  let push l = out := l :: !out in
  push "open";
  push constraint_line;
  for _ = 1 to 5 do
    let f = fact () in
    push ("assert " ^ f);
    live := f :: !live
  done;
  for _ = 1 to ops do
    match Prng.int rng 5 with
    | 0 | 1 ->
        let f = fact () in
        push ("assert " ^ f);
        live := f :: !live
    | 2 -> (
        match !live with
        | [] -> ()
        | l ->
            let f = List.nth l (Prng.int rng (List.length l)) in
            push ("retract " ^ f);
            live := List.filter (fun x -> x <> f) l)
    | _ ->
        if !rule_on then begin
          push "unrule t_worksfor";
          rule_on := false
        end
        else begin
          push
            "rule t_worksfor 1.5: ex:playsFor(x, y)@t => ex:worksFor(x, y)@t .";
          rule_on := true
        end
  done;
  List.rev !out

let resolution_payload session (r : Engine.result) =
  let s =
    Tecore.Json_out.of_resolution
      ~namespace:(Session.namespace session)
      r.Engine.resolution
  in
  match Obs.Json.parse s with
  | Ok j -> Obs.Json.to_string j
  | Error e -> Alcotest.failf "local resolution JSON does not parse: %s" e

(* The backend matrix of test_serve.ml. *)
let engines =
  let mln = Mln.Map_inference.default_options in
  [
    ("mln-walk-cpi", Engine.Mln mln);
    ("mln-walk", Engine.Mln { mln with Mln.Map_inference.use_cpi = false });
    ( "mln-ilp",
      Engine.Mln
        {
          mln with
          Mln.Map_inference.solver = Mln.Map_inference.Ilp_exact;
          use_cpi = false;
        } );
    ( "mln-bb",
      Engine.Mln
        {
          mln with
          Mln.Map_inference.solver = Mln.Map_inference.Exact_bb;
          use_cpi = false;
        } );
    ("psl", Engine.Psl Psl.Npsl.default_options);
  ]

(* The real daemon binary, located relative to this test executable in
   the _build tree (declared as a dune dep), so the test works from any
   cwd — dune runtest and dune exec differ. *)
let cli_binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "tecore_cli.exe"))

let spawn_daemon ?(extra_args = []) ~socket ~state_dir ~faults () =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let keep s =
    not
      (String.length s >= 14 && String.sub s 0 14 = "TECORE_FAULTS=")
  in
  let env =
    Array.of_list
      (("TECORE_FAULTS=" ^ faults)
      :: List.filter keep (Array.to_list (Unix.environment ())))
  in
  let pid =
    Unix.create_process_env cli_binary
      (Array.of_list
         ([ cli_binary; "serve"; "--socket"; socket; "--state-dir"; state_dir ]
         @ extra_args))
      env devnull devnull devnull
  in
  Unix.close devnull;
  pid

let connect_unix path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go ()
  in
  go ()

(* Raw-fd line reader with a timeout: the stalled (fault-tripped)
   request must be detected, not waited out. *)
type raw = { rfd : Unix.file_descr; rbuf : Buffer.t }

let recv_line ~timeout raw =
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents raw.rbuf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear raw.rbuf;
        Buffer.add_string raw.rbuf
          (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
    | None -> (
        match Unix.select [ raw.rfd ] [] [] timeout with
        | [], _, _ -> None
        | _ -> (
            match Unix.read raw.rfd chunk 0 (Bytes.length chunk) with
            | 0 -> None
            | n ->
                Buffer.add_subbytes raw.rbuf chunk 0 n;
                go ()))
  in
  go ()

let starts_with_ok s = String.length s >= 3 && String.sub s 0 3 = "ok "

(* Fork the real daemon with a [journal_torn:K] fault in its
   environment, drive random edits until the K-th journal append stalls
   mid-frame, SIGKILL it there, and check every recovery surface:

   - [Journal.recover] reports [Partial] whose replayed prefix is
     exactly the acked edits and whose state dump matches a reference
     session that executed them uninterrupted;
   - a fresh [Serve.start] over the same state dir serves the session,
     reporting the partial recovery, and its wire-level resolve matches
     the reference byte for byte;
   - after the self-heal, direct resolves agree with the reference for
     every solver backend. *)
let test_sigkill_crash_oracle () =
  with_state_dir "crash" (fun sd ->
      mkdir_p sd (* the daemon binds its socket under here *);
      let socket = Filename.concat sd "daemon.sock" in
      let torn_at = 9 in
      let edits = gen_script ~seed:42 ~ops:16 in
      Alcotest.(check bool) "script reaches the fault point" true
        (List.length edits > torn_at);
      let pid =
        spawn_daemon ~socket ~state_dir:sd
          ~faults:(Printf.sprintf "journal_torn:%d" torn_at)
          ()
      in
      let acked = ref [] in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          let fd = connect_unix socket in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let raw = { rfd = fd; rbuf = Buffer.create 256 } in
              send_line fd "hello crash";
              (match recv_line ~timeout:10. raw with
              | Some resp when starts_with_ok resp -> ()
              | Some resp -> Alcotest.failf "hello refused: %s" resp
              | None -> Alcotest.fail "daemon did not answer hello");
              let stalled = ref false in
              (try
                 List.iter
                   (fun line ->
                     send_line fd line;
                     match recv_line ~timeout:2. raw with
                     | Some resp when starts_with_ok resp ->
                         acked := line :: !acked
                     | Some resp ->
                         Alcotest.failf "daemon refused %S: %s" line resp
                     | None ->
                         (* The torn append is holding the frame's
                            second half back: kill it right here. *)
                         stalled := true;
                         raise Exit)
                   edits
               with Exit -> ());
              Alcotest.(check bool) "stalled at the torn append" true !stalled;
              Alcotest.(check int) "acked prefix before the stall"
                (torn_at - 1)
                (List.length !acked)));
      let acked = List.rev !acked in
      (* Reference: an uninterrupted session holding exactly the acked
         prefix. *)
      let reference = Session.create () in
      List.iteri
        (fun i line ->
          match Journal.replay_line reference ~line:(i + 1) line with
          | Ok () -> ()
          | Error m -> Alcotest.failf "reference replay %S: %s" line m)
        acked;
      (* Wire level: a fresh daemon over the same state dir recovers at
         start and serves the session. *)
      let config = { Serve.default_config with Serve.state_dir = Some sd } in
      let server = Serve.start ~config (`Tcp 0) in
      Fun.protect
        ~finally:(fun () -> Serve.stop server)
        (fun () ->
          let c = connect server in
          let ok line = expect_ok line (request c line) in
          let hj = ok "hello crash" in
          Alcotest.(check string) "torn tail surfaced as partial" "partial"
            (str_field hj "recovery");
          let sj = ok "stat" in
          Alcotest.(check (float 0.))
            "recovered facts = reference facts"
            (float_of_int (facts reference))
            (num_field sj "facts");
          Alcotest.(check (float 0.))
            "recovered rules = reference rules"
            (float_of_int (List.length (Session.rules reference)))
            (num_field sj "rules");
          (* The default-engine resolve, byte for byte over the wire. *)
          let rj = ok "resolve" in
          (match Session.resolve ~mode:`Fresh reference with
          | Error e ->
              Alcotest.failf "reference resolve: %s" (Session.error_message e)
          | Ok r ->
              Alcotest.(check (float 0.))
                "wire objective matches reference"
                r.Engine.stats.Engine.objective (num_field rj "objective");
              let res = ok "result" in
              let server_payload =
                match List.assoc_opt "resolution" (fields res) with
                | Some j -> Obs.Json.to_string j
                | None -> Alcotest.fail "result carries no resolution"
              in
              Alcotest.(check string)
                "wire resolution payload matches reference"
                (resolution_payload reference r)
                server_payload);
          close c);
      (* Journal level: the healed directory resolves identically to
         the reference under every solver backend. *)
      List.iter
        (fun (name, engine) ->
          let r =
            recover_full (name ^ ": healed recovery") ~state_dir:sd
              ~fsync:Journal.Always ~compact_every:256 "crash"
          in
          Alcotest.(check (list string))
            (name ^ ": recovered state dump")
            (Session.dump_state reference)
            (Session.dump_state r.Journal.session);
          let resolve tag session =
            match Session.resolve ~engine ~mode:`Fresh session with
            | Ok res -> res
            | Error e ->
                Alcotest.failf "%s: %s resolve failed: %s" name tag
                  (Session.error_message e)
          in
          let recovered = resolve "recovered" r.Journal.session in
          let expected = resolve "reference" reference in
          Alcotest.(check (float 0.))
            (name ^ ": objective")
            expected.Engine.stats.Engine.objective
            recovered.Engine.stats.Engine.objective;
          Alcotest.(check string)
            (name ^ ": resolution payload")
            (resolution_payload reference expected)
            (resolution_payload r.Journal.session recovered);
          Journal.close r.Journal.journal)
        engines)

(* ------------------------------------------------------------------ *)
(* Cross-session group commit                                          *)
(* ------------------------------------------------------------------ *)

(* Direct API: handles attached to one group pool their [Every n]
   budget — the threshold counts pending appends across the whole
   group, a flush pass resets every member, attach deduplicates, and
   [close] detaches. *)
let test_group_commit_pooling () =
  with_state_dir "group" (fun sd ->
      let open_j id =
        Journal.create ~state_dir:sd ~fsync:(Journal.Every 3) ~compact_every:0
          id
      in
      let g = Journal.create_group () in
      let ja = open_j "ga" and jb = open_j "gb" in
      Journal.attach ja g;
      Journal.attach ja g (* double attach must not double-count *);
      Journal.attach jb g;
      Alcotest.(check int) "no commits yet" 0 (Journal.group_commits g);
      Journal.append ja (assert_line 1);
      Journal.append jb (assert_line 2);
      Alcotest.(check int)
        "two pooled appends stay below the budget (attach deduplicates)" 0
        (Journal.group_commits g);
      Journal.append ja (assert_line 3);
      Alcotest.(check int) "third pooled append triggers a group commit" 1
        (Journal.group_commits g);
      (* The flush resets every member: the next budget starts from
         zero across the group. *)
      Journal.append jb (assert_line 4);
      Journal.append jb (assert_line 5);
      Alcotest.(check int) "flush reset the whole pool" 1
        (Journal.group_commits g);
      Journal.append ja (assert_line 6);
      Alcotest.(check int) "second group commit" 2 (Journal.group_commits g);
      (* [close] detaches: the survivor pools alone from then on. *)
      Journal.close ja;
      Journal.append jb (assert_line 7);
      Journal.append jb (assert_line 8);
      Journal.append jb (assert_line 9);
      Alcotest.(check int) "detached member no longer counts" 3
        (Journal.group_commits g);
      Journal.close jb;
      (* [Always] and [Never] members never trip the group budget. *)
      let g2 = Journal.create_group () in
      let jc =
        Journal.create ~state_dir:sd ~fsync:Journal.Always ~compact_every:0
          "gc"
      and jd =
        Journal.create ~state_dir:sd ~fsync:Journal.Never ~compact_every:0
          "gd"
      in
      Journal.attach jc g2;
      Journal.attach jd g2;
      for i = 1 to 4 do
        Journal.append jc (assert_line i);
        Journal.append jd (assert_line (i + 4))
      done;
      Alcotest.(check int) "always/never ignore the group" 0
        (Journal.group_commits g2);
      Journal.close jc;
      Journal.close jd)

(* Fork the real daemon multi-lane with a pooled fsync budget, drive
   edits on TWO sessions in strict alternation until session A's
   [torn_at]-th append stalls mid-frame (the fault index is
   per-handle, so the stall point is deterministic), SIGKILL it there —
   mid-group-commit, with acked-but-unsynced edits pending on both
   sessions under [Every n] — and check recovery per session: every
   acked edit present, the torn (unacked) one absent, for each fsync
   policy. SIGKILL preserves page-cache writes, so acked edits must
   survive even under [never]. *)
let test_group_commit_crash ~fsync () =
  with_state_dir ("gcrash-" ^ fsync) (fun sd ->
      mkdir_p sd (* the daemon binds its socket under here *);
      let socket = Filename.concat sd "daemon.sock" in
      let torn_at = 8 in
      let script_a = gen_script ~seed:71 ~ops:10 in
      let script_b = gen_script ~seed:72 ~ops:10 in
      Alcotest.(check bool) "scripts reach the fault point" true
        (List.length script_a > torn_at && List.length script_b > torn_at);
      let pid =
        spawn_daemon ~socket ~state_dir:sd
          ~extra_args:[ "--fsync"; fsync; "--lanes"; "2" ]
          ~faults:(Printf.sprintf "journal_torn:%d" torn_at)
          ()
      in
      let acked_a = ref [] and acked_b = ref [] in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          let fd_a = connect_unix socket in
          let fd_b = connect_unix socket in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.close fd_a with Unix.Unix_error _ -> ());
              try Unix.close fd_b with Unix.Unix_error _ -> ())
            (fun () ->
              let raw_a = { rfd = fd_a; rbuf = Buffer.create 256 } in
              let raw_b = { rfd = fd_b; rbuf = Buffer.create 256 } in
              let hello raw fd id =
                send_line fd ("hello " ^ id);
                match recv_line ~timeout:10. raw with
                | Some resp when starts_with_ok resp -> ()
                | Some resp -> Alcotest.failf "hello %s refused: %s" id resp
                | None -> Alcotest.failf "daemon did not answer hello %s" id
              in
              hello raw_a fd_a "gc-a";
              hello raw_b fd_b "gc-b";
              let stalled = ref false in
              let step raw fd acked line =
                send_line fd line;
                match recv_line ~timeout:2. raw with
                | Some resp when starts_with_ok resp ->
                    acked := line :: !acked
                | Some resp -> Alcotest.failf "daemon refused %S: %s" line resp
                | None ->
                    stalled := true;
                    raise Exit
              in
              (try
                 List.iter2
                   (fun la lb ->
                     step raw_a fd_a acked_a la;
                     step raw_b fd_b acked_b lb)
                   (List.filteri (fun i _ -> i <= torn_at) script_a)
                   (List.filteri (fun i _ -> i <= torn_at) script_b)
               with Exit -> ());
              Alcotest.(check bool) "stalled at the torn append" true !stalled;
              Alcotest.(check int) "torn session acked prefix" (torn_at - 1)
                (List.length !acked_a);
              Alcotest.(check int) "sibling session acked prefix" (torn_at - 1)
                (List.length !acked_b)));
      (* Per-session references holding exactly the acked prefixes. *)
      let reference acked =
        let s = Session.create () in
        List.iteri
          (fun i line ->
            match Journal.replay_line s ~line:(i + 1) line with
            | Ok () -> ()
            | Error m -> Alcotest.failf "reference replay %S: %s" line m)
          acked;
        s
      in
      let ref_a = reference (List.rev !acked_a) in
      let ref_b = reference (List.rev !acked_b) in
      (* Wire level: a fresh daemon over the same state dir recovers
         both sessions — the torn one as [partial], the sibling clean —
         and serves exactly the acked facts for each. *)
      let config = { Serve.default_config with Serve.state_dir = Some sd } in
      let server = Serve.start ~config (`Tcp 0) in
      Fun.protect
        ~finally:(fun () -> Serve.stop server)
        (fun () ->
          let c = connect server in
          let ok line = expect_ok line (request c line) in
          let check_session id expected_recovery reference =
            let hj = ok ("hello " ^ id) in
            Alcotest.(check string)
              (id ^ ": recovery status")
              expected_recovery (str_field hj "recovery");
            let sj = ok "stat" in
            Alcotest.(check (float 0.))
              (id ^ ": recovered facts = acked facts")
              (float_of_int (facts reference))
              (num_field sj "facts");
            Alcotest.(check (float 0.))
              (id ^ ": recovered rules = acked rules")
              (float_of_int (List.length (Session.rules reference)))
              (num_field sj "rules")
          in
          check_session "gc-a" "partial" ref_a;
          check_session "gc-b" "full" ref_b;
          close c);
      (* Journal level: after the self-heal both directories replay to
         exactly the acked state, token for token. *)
      List.iter
        (fun (id, reference) ->
          let r =
            recover_full
              (id ^ ": healed recovery")
              ~state_dir:sd ~fsync:Journal.Always ~compact_every:256 id
          in
          Alcotest.(check (list string))
            (id ^ ": recovered state dump")
            (Session.dump_state reference)
            (Session.dump_state r.Journal.session);
          Journal.close r.Journal.journal)
        [ ("gc-a", ref_a); ("gc-b", ref_b) ])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "journal"
    [
      ( "units",
        [
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "session-id codec" `Quick test_id_codec;
          Alcotest.test_case "fsync policy parsing" `Quick test_fsync_policy;
          Alcotest.test_case "record replay" `Quick test_replay_line;
          Alcotest.test_case "group-commit pooling" `Quick
            test_group_commit_pooling;
        ] );
      ( "round trips",
        [
          Alcotest.test_case "append / recover" `Quick test_roundtrip_full;
          Alcotest.test_case "missing state dir" `Quick
            test_missing_dir_listing;
          Alcotest.test_case "size-triggered compaction" `Quick
            test_compaction;
          Alcotest.test_case "explicit snapshot + tail" `Quick
            test_explicit_compact;
        ] );
      ( "damage",
        [
          Alcotest.test_case "torn tail at every byte boundary" `Quick
            test_torn_tail_every_boundary;
          Alcotest.test_case "corrupt manifest" `Quick
            test_unrecoverable_manifest;
          Alcotest.test_case "corrupt snapshot" `Quick
            test_unrecoverable_snapshot;
        ] );
      ( "serve",
        [
          Alcotest.test_case "restart recovers the registry" `Quick
            test_serve_restart;
          Alcotest.test_case "idle TTL parks durable sessions" `Quick
            test_idle_ttl_parks_durable_sessions;
          Alcotest.test_case "idle TTL discards ephemeral sessions" `Quick
            test_idle_ttl_discards_ephemeral_sessions;
        ] );
      ( "crash oracle",
        [
          Alcotest.test_case "SIGKILL mid-append, recover, re-resolve"
            `Quick test_sigkill_crash_oracle;
          Alcotest.test_case "group-commit SIGKILL, two sessions (always)"
            `Quick
            (test_group_commit_crash ~fsync:"always");
          Alcotest.test_case "group-commit SIGKILL, two sessions (every 5)"
            `Quick
            (test_group_commit_crash ~fsync:"5");
          Alcotest.test_case "group-commit SIGKILL, two sessions (never)"
            `Quick
            (test_group_commit_crash ~fsync:"never");
        ] );
    ]
