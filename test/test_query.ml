(* Tests for temporal conjunctive queries. *)

module Q = Tecore.Query

let graph () =
  Kg.Graph.of_list
    [
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Leicester") (2015, 2017) 0.7;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
      Kg.Quad.v "CR" "birthDate" (Kg.Term.int 1951) (1951, 2017) 1.0;
      Kg.Quad.v "Kid" "coach" (Kg.Term.iri "Ajax") (2010, 2012) 0.8;
    ]

let run src =
  match Q.run (graph ()) src with
  | Ok answers -> answers
  | Error e -> Alcotest.fail e

let test_single_atom () =
  let answers = run "coach(x, y)@t" in
  Alcotest.(check int) "four coach facts" 4 (List.length answers);
  List.iter
    (fun a ->
      Alcotest.(check int) "one supporting fact" 1 (List.length a.Q.facts))
    answers

let test_constant_selection () =
  let answers = run "coach(CR, y)@t" in
  Alcotest.(check int) "three CR facts" 3 (List.length answers);
  let answers = run "coach(x, Ajax)@t" in
  Alcotest.(check int) "one ajax fact" 1 (List.length answers);
  match (List.hd answers).Q.subst |> fun s -> Logic.Subst.find s "x" with
  | Some t -> Alcotest.(check string) "x bound to Kid" "Kid" (Kg.Term.to_string t)
  | None -> Alcotest.fail "x unbound"

let test_overlap_join () =
  let answers =
    run "coach(x, y)@t ^ coach(x, z)@t2 ^ y != z ^ intersects(t, t2)"
  in
  (* Chelsea/Napoli in both orders. *)
  Alcotest.(check int) "one clash, two orders" 2 (List.length answers)

let test_confidence_product () =
  let answers =
    run "coach(x, y)@t ^ coach(x, z)@t2 ^ y != z ^ intersects(t, t2)"
  in
  List.iter
    (fun a ->
      Alcotest.(check bool) "confidence = 0.9 * 0.6" true
        (Float.abs (a.Q.confidence -. 0.54) < 1e-9))
    answers

let test_arithmetic_condition () =
  let answers = run "coach(x, y)@t ^ start(t) >= 2010" in
  Alcotest.(check int) "leicester and ajax" 2 (List.length answers)

let test_interval_constant () =
  let answers = run "coach(x, y)@[2015,2017]" in
  Alcotest.(check int) "exact interval" 1 (List.length answers)

let test_empty_result () =
  Alcotest.(check int) "no zz facts" 0 (List.length (run "zz(x, y)@t"))

let test_parse_error () =
  match Q.run (graph ()) "coach(x, y)@" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad query accepted"

let test_unsafe_condition () =
  match Q.run (graph ()) "coach(x, y)@t ^ value(w) > 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsafe query accepted"

let test_no_atoms () =
  match Q.run (graph ()) "start(t) > 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "atomless query accepted"

let test_select_projection () =
  match Q.select (graph ()) "coach(CR, y)@t" [ "y"; "nope" ] with
  | Error e -> Alcotest.fail e
  | Ok rows ->
      Alcotest.(check int) "three rows" 3 (List.length rows);
      List.iter
        (fun row ->
          match row with
          | [ Some _; None ] -> ()
          | _ -> Alcotest.fail "projection shape")
        rows

let test_namespace_query () =
  let ns = Kg.Namespace.create () in
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "http://example.org/CR" "http://example.org/coach"
          (Kg.Term.iri "http://example.org/Chelsea")
          (2000, 2004) 0.9;
      ]
  in
  match Q.run ~namespace:ns g "ex:coach(x, y)@t" with
  | Ok answers -> Alcotest.(check int) "curie expands" 1 (List.length answers)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "query"
    [
      ( "evaluation",
        [
          Alcotest.test_case "single atom" `Quick test_single_atom;
          Alcotest.test_case "constant selection" `Quick test_constant_selection;
          Alcotest.test_case "overlap join" `Quick test_overlap_join;
          Alcotest.test_case "confidence product" `Quick test_confidence_product;
          Alcotest.test_case "arithmetic condition" `Quick
            test_arithmetic_condition;
          Alcotest.test_case "interval constant" `Quick test_interval_constant;
          Alcotest.test_case "empty result" `Quick test_empty_result;
          Alcotest.test_case "select projection" `Quick test_select_projection;
          Alcotest.test_case "namespace" `Quick test_namespace_query;
        ] );
      ( "errors",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "unsafe condition" `Quick test_unsafe_condition;
          Alcotest.test_case "no atoms" `Quick test_no_atoms;
        ] );
    ]
