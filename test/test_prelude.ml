(* Tests for the prelude: deterministic PRNG, growable vectors, timing. *)

module Prng = Prelude.Prng
module Vec = Prelude.Vec

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.int64 a) (Prng.int64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_int_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_prng_range_bounds () =
  let rng = Prng.create 8 in
  for _ = 1 to 10_000 do
    let v = Prng.range rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_prng_float_bounds () =
  let rng = Prng.create 9 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bernoulli_extremes () =
  let rng = Prng.create 10 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Prng.bernoulli rng 1.0);
    Alcotest.(check bool) "p=0 always false" false (Prng.bernoulli rng 0.0)
  done

let test_prng_bernoulli_rate () =
  let rng = Prng.create 11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.3" rate)
    true
    (Float.abs (rate -. 0.3) < 0.02)

let test_prng_split_independent () =
  let parent = Prng.create 12 in
  let child = Prng.split parent in
  let a = Prng.int64 parent and b = Prng.int64 child in
  Alcotest.(check bool) "parent and child differ" false (Int64.equal a b)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 13 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 100 (fun i -> i))
    sorted

let test_prng_pick () =
  let rng = Prng.create 14 in
  let pool = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked from pool" true
      (Array.mem (Prng.pick rng pool) pool)
  done;
  Alcotest.check_raises "empty list" (Invalid_argument "Prng.pick_list: empty list")
    (fun () -> ignore (Prng.pick_list rng []))

let test_prng_gaussian_moments () =
  let rng = Prng.create 15 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.gaussian rng ~mean:3.0 ~stddev:2.0 in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true
    (Float.abs (sqrt var -. 2.0) < 0.1)

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh is empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 0;
  Alcotest.(check int) "set 7" 0 (Vec.get v 7)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Vec.set: index out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.(check (option int)) "pop 2" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_vec_conversions () =
  let v = Vec.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 4; 1; 5 ] (Vec.to_list v);
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4; 1; 5 |] (Vec.to_array v);
  let doubled = Vec.map (fun x -> 2 * x) v in
  Alcotest.(check (list int)) "map" [ 6; 2; 8; 2; 10 ] (Vec.to_list doubled);
  let evens = Vec.filter (fun x -> x mod 2 = 0) v in
  Alcotest.(check (list int)) "filter" [ 4 ] (Vec.to_list evens)

let test_vec_fold_iter () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check int) "iteri count" 4 (List.length !seen);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_vec_clear () =
  let v = Vec.of_list [ 1 ] in
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 5;
  Alcotest.(check int) "reusable" 5 (Vec.get v 0)

let test_timing_mean () =
  let ms = Prelude.Timing.mean_ms ~runs:3 (fun () -> ignore (Sys.opaque_identity 1)) in
  Alcotest.(check bool) "non-negative" true (ms >= 0.0)

let qcheck_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let qcheck_prng_int_uniformish =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "prelude"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "range bounds" `Quick test_prng_range_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli_rate;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          QCheck_alcotest.to_alcotest qcheck_prng_int_uniformish;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
          Alcotest.test_case "fold/iter/exists" `Quick test_vec_fold_iter;
          Alcotest.test_case "clear" `Quick test_vec_clear;
          QCheck_alcotest.to_alcotest qcheck_vec_roundtrip;
        ] );
      ( "timing",
        [ Alcotest.test_case "mean_ms" `Quick test_timing_mean ] );
    ]
