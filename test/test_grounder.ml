(* Tests for the atom store, relational body grounding and the closure. *)

module Store = Grounder.Atom_store
module Ground = Grounder.Ground
module Body = Grounder.Body
open Logic

let iv = Kg.Interval.make

let quad_atom p s o t = Atom.quad_pattern p ~subject:s ~object_:o ~time:t

let cr_graph () =
  Kg.Graph.of_list
    [
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Leicester") (2015, 2017) 0.7;
      Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
      Kg.Quad.v "CR" "birthDate" (Kg.Term.int 1951) (1951, 2017) 1.0;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
    ]

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let test_store_of_graph () =
  let store = Store.of_graph (cr_graph ()) in
  Alcotest.(check int) "five atoms" 5 (Store.size store);
  Store.iter
    (fun id _atom origin ->
      Alcotest.(check bool) "all evidence" true
        (match origin with Store.Evidence _ -> true | Store.Hidden -> false);
      Alcotest.(check bool) "evidence flag" true (Store.is_evidence store id))
    store

let test_store_intern_dedup () =
  let store = Store.create () in
  let atom =
    Atom.Ground.make ~time:(iv 1 2) "p" [ Kg.Term.iri "a"; Kg.Term.iri "b" ]
  in
  let id1 = Store.intern store Store.Hidden atom in
  let id2 = Store.intern store Store.Hidden atom in
  Alcotest.(check int) "same id" id1 id2;
  Alcotest.(check int) "size 1" 1 (Store.size store);
  Alcotest.(check bool) "find" true (Store.find store atom = Some id1)

let test_store_evidence_upgrade () =
  let store = Store.create () in
  let atom =
    Atom.Ground.make ~time:(iv 1 2) "p" [ Kg.Term.iri "a"; Kg.Term.iri "b" ]
  in
  let id = Store.intern store Store.Hidden atom in
  Alcotest.(check bool) "hidden" false (Store.is_evidence store id);
  let id' =
    Store.intern store (Store.Evidence { confidence = 0.7; fact = 0 }) atom
  in
  Alcotest.(check int) "same id" id id';
  Alcotest.(check bool) "upgraded" true (Store.is_evidence store id);
  (* Higher confidence wins. *)
  ignore (Store.intern store (Store.Evidence { confidence = 0.9; fact = 1 }) atom);
  (match Store.origin store id with
  | Store.Evidence { confidence; _ } ->
      Alcotest.(check bool) "max confidence" true (confidence = 0.9)
  | Store.Hidden -> Alcotest.fail "should stay evidence");
  (* Lower confidence does not downgrade. *)
  ignore (Store.intern store (Store.Evidence { confidence = 0.2; fact = 2 }) atom);
  match Store.origin store id with
  | Store.Evidence { confidence; _ } ->
      Alcotest.(check bool) "still max" true (confidence = 0.9)
  | Store.Hidden -> Alcotest.fail "should stay evidence"

let test_store_tables () =
  let store = Store.of_graph (cr_graph ()) in
  (match Store.table_for store "coach" ~arity:2 ~temporal:true with
  | Some t -> Alcotest.(check int) "coach rows" 3 (Reldb.Table.cardinal t)
  | None -> Alcotest.fail "coach table missing");
  Alcotest.(check bool) "absent predicate" true
    (Store.table_for store "zzz" ~arity:2 ~temporal:true = None);
  Alcotest.(check string) "table name scheme" "coach/2@"
    (Store.table_name "coach" ~arity:2 ~temporal:true)

let test_body_single_atom () =
  let store = Store.of_graph (cr_graph ()) in
  let rule =
    Rule.make ~name:"r" ~weight:1.0
      ~body:[ quad_atom "coach" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t") ]
      (Rule.Infer (quad_atom "worksFor" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t")))
  in
  let bindings = Body.all store rule in
  Alcotest.(check int) "three coach bindings" 3 (List.length bindings);
  List.iter
    (fun { Body.subst; body_atoms } ->
      Alcotest.(check int) "one body atom" 1 (List.length body_atoms);
      Alcotest.(check bool) "x is CR" true
        (Subst.find subst "x" = Some (Kg.Term.iri "CR")))
    bindings

let test_body_join_with_condition () =
  let store = Store.of_graph (cr_graph ()) in
  let rule =
    List.hd
      (parse_rules
         "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .")
  in
  let bindings = Body.all store rule in
  (* 3 coach facts, ordered pairs with distinct objects: 3*2 = 6. *)
  Alcotest.(check int) "six ordered pairs" 6 (List.length bindings)

let test_body_constant_filter () =
  let store = Store.of_graph (cr_graph ()) in
  let rule =
    Rule.make ~name:"r"
      ~body:[ quad_atom "coach" (Lterm.var "x") (Lterm.iri "Chelsea") (Lterm.Tvar "t") ]
      Rule.Bottom
  in
  Alcotest.(check int) "only chelsea" 1 (List.length (Body.all store rule))

let test_body_constant_interval () =
  let store = Store.of_graph (cr_graph ()) in
  let rule =
    Rule.make ~name:"r"
      ~body:
        [ quad_atom "coach" (Lterm.var "x") (Lterm.var "y")
            (Lterm.Tconst (iv 2015 2017)) ]
      Rule.Bottom
  in
  Alcotest.(check int) "only leicester" 1 (List.length (Body.all store rule))

let test_body_missing_predicate () =
  let store = Store.of_graph (cr_graph ()) in
  let rule =
    Rule.make ~name:"r"
      ~body:[ quad_atom "zzz" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t") ]
      Rule.Bottom
  in
  Alcotest.(check int) "no bindings" 0 (List.length (Body.all store rule))

let test_body_rejects_computed_time () =
  let store = Store.of_graph (cr_graph ()) in
  let rule =
    Rule.make ~name:"r"
      ~body:
        [
          quad_atom "coach" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t");
          quad_atom "coach" (Lterm.var "x") (Lterm.var "z")
            (Lterm.Tinter (Lterm.Tvar "t", Lterm.Tvar "t"));
        ]
      Rule.Bottom
  in
  match Body.all store rule with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "computed body time accepted"

let test_closure_derives () =
  let store = Store.of_graph (cr_graph ()) in
  let rules =
    parse_rules "rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t ."
  in
  let result = Ground.run store rules in
  Alcotest.(check int) "one derived atom" 1 (List.length result.Ground.derived);
  Alcotest.(check int) "six atoms total" 6 (Store.size store);
  let derived = List.hd result.Ground.derived in
  Alcotest.(check string) "derived atom"
    "worksFor(CR, Palermo)@[1984,1986]"
    (Atom.Ground.to_string (Store.atom store derived));
  Alcotest.(check bool) "derived is hidden" false (Store.is_evidence store derived)

let test_closure_chain () =
  (* f1 feeds f2: two closure rounds. *)
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
        Kg.Quad.v "Palermo" "locatedIn" (Kg.Term.iri "Sicily") (1900, 2017) 1.0;
      ]
  in
  let store = Store.of_graph graph in
  let rules =
    parse_rules
      {|rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .
rule f2 1.6: worksFor(x, y)@t ^ locatedIn(y, z)@t2 ^ intersects(t, t2) => livesIn(x, z)@(t * t2) .|}
  in
  let result = Ground.run store rules in
  Alcotest.(check int) "two derived" 2 (List.length result.Ground.derived);
  Alcotest.(check bool) "at least two rounds" true (result.Ground.rounds >= 2);
  (* livesIn gets the computed intersection interval. *)
  let lives =
    Store.find store
      (Atom.Ground.make ~time:(iv 1984 1986) "livesIn"
         [ Kg.Term.iri "CR"; Kg.Term.iri "Sicily" ])
  in
  Alcotest.(check bool) "livesIn@[1984,1986] exists" true (lives <> None)

let test_instances_heads () =
  let store = Store.of_graph (cr_graph ()) in
  let rules =
    parse_rules
      {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .|}
  in
  let result = Ground.run store rules in
  let violated, satisfied, derives =
    List.fold_left
      (fun (v, s, d) i ->
        match i.Ground.Instance.head with
        | Ground.Instance.Violated -> (v + 1, s, d)
        | Ground.Instance.Satisfied -> (v, s + 1, d)
        | Ground.Instance.Derives _ -> (v, s, d + 1))
      (0, 0, 0) result.Ground.instances
  in
  (* Chelsea/Napoli clash in both orders: 2 violated; the other 4 ordered
     pairs are disjoint: satisfied. *)
  Alcotest.(check int) "violated" 2 violated;
  Alcotest.(check int) "satisfied" 4 satisfied;
  Alcotest.(check int) "derives" 1 derives

let test_equality_generating_head () =
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "P" "birthDate" (Kg.Term.int 1951) (1951, 2017) 0.9;
        Kg.Quad.v "P" "birthDate" (Kg.Term.int 1953) (1953, 2017) 0.6;
      ]
  in
  let store = Store.of_graph graph in
  let rules =
    parse_rules
      "constraint b: birthDate(x, y)@t ^ birthDate(x, z)@t2 ^ intersects(t, t2) => y = z ."
  in
  let result = Ground.run store rules in
  let violated =
    List.filter
      (fun i -> i.Ground.Instance.head = Ground.Instance.Violated)
      result.Ground.instances
  in
  (* (1951,1953) and (1953,1951): both violate y = z. The reflexive
     pairings satisfy it. *)
  Alcotest.(check int) "two violations" 2 (List.length violated)

let test_arith_condition_grounding () =
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "Kid" "playsFor" (Kg.Term.iri "Ajax") (2010, 2012) 0.8;
        Kg.Quad.v "Kid" "birthDate" (Kg.Term.int 1994) (1994, 2017) 0.95;
        Kg.Quad.v "Old" "playsFor" (Kg.Term.iri "Ajax") (2010, 2012) 0.8;
        Kg.Quad.v "Old" "birthDate" (Kg.Term.int 1970) (1970, 2017) 0.95;
      ]
  in
  let store = Store.of_graph graph in
  let rules =
    parse_rules
      "rule f3 2.9: playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ t - t2 < 20 => TeenPlayer(x) ."
  in
  let result = Ground.run store rules in
  (* Kid: 2010-1994=16 < 20 fires; Old: 2010-1970=40 does not. *)
  Alcotest.(check int) "one derived" 1 (List.length result.Ground.derived);
  let teen =
    Store.find store (Atom.Ground.make "TeenPlayer" [ Kg.Term.iri "Kid" ])
  in
  Alcotest.(check bool) "Kid is the teen" true (teen <> None)

let test_closure_terminates () =
  (* A self-feeding rule must reach a fixpoint, not loop. *)
  let graph =
    Kg.Graph.of_list [ Kg.Quad.v "a" "p" (Kg.Term.iri "b") (1, 10) 0.9 ]
  in
  let store = Store.of_graph graph in
  let rules = parse_rules "rule loop 1: p(x, y)@t => p(x, y)@t ." in
  let result = Ground.run store rules in
  Alcotest.(check int) "nothing new" 0 (List.length result.Ground.derived)

(* Properties over the intern layer: the process-wide symbol table and
   the code-packed atom store must both be loss-free dictionaries —
   decoding returns the value interned, re-interning is the identity on
   ids, and distinct values get distinct ids. *)

let arbitrary_term =
  QCheck.(
    oneof
      [
        map (fun i -> Kg.Term.iri (Printf.sprintf "e%d" i)) (int_range 0 500);
        map Kg.Term.str (string_of_size (Gen.int_range 0 8));
        map Kg.Term.int (int_range (-1000) 1000);
        (* Eighths are exact in binary, so structural equality holds. *)
        map (fun i -> Kg.Term.float (float_of_int i /. 8.))
          (int_range (-800) 800);
      ])

let qcheck_symbol_roundtrip =
  QCheck.Test.make ~name:"Symbol: term/interval intern round-trips" ~count:500
    QCheck.(pair arbitrary_term (pair (int_range 0 3000) (int_range 0 50)))
    (fun (t, (lo, len)) ->
      let id = Kg.Symbol.term_id t in
      let iv = Kg.Interval.make lo (lo + len) in
      let iid = Kg.Symbol.interval_id iv in
      Kg.Term.equal (Kg.Symbol.term id) t
      && Kg.Symbol.term_id t = id
      && Kg.Symbol.find_term t = Some id
      && Kg.Interval.(
           lo (Kg.Symbol.interval iid) = lo iv
           && hi (Kg.Symbol.interval iid) = hi iv)
      && Kg.Symbol.interval_id iv = iid
      && Kg.Symbol.find_interval iv = Some iid)

let arbitrary_ground_atom =
  QCheck.(
    map
      (fun (p, args, time) ->
        let time = Option.map (fun (lo, len) -> iv lo (lo + len)) time in
        Atom.Ground.make ?time p args)
      (triple
         (oneofl [ "p"; "q"; "r" ])
         (list_of_size (Gen.int_range 0 3) arbitrary_term)
         (option (pair (int_range 0 100) (int_range 0 20)))))

let qcheck_store_roundtrip =
  QCheck.Test.make
    ~name:"Atom_store: intern/decode round-trips, distinct atoms distinct ids"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 0 25) arbitrary_ground_atom)
    (fun atoms ->
      let store = Store.create () in
      let ids = List.map (Store.intern store Store.Hidden) atoms in
      let distinct = List.sort_uniq Atom.Ground.compare atoms in
      Store.size store = List.length distinct
      && List.for_all2
           (fun atom id ->
             Atom.Ground.equal (Store.atom store id) atom
             && Store.find store atom = Some id
             && Store.intern store Store.Hidden atom = id)
           atoms ids)

let () =
  Alcotest.run "grounder"
    [
      ( "store",
        [
          Alcotest.test_case "of_graph" `Quick test_store_of_graph;
          Alcotest.test_case "intern dedup" `Quick test_store_intern_dedup;
          Alcotest.test_case "evidence upgrade" `Quick test_store_evidence_upgrade;
          Alcotest.test_case "tables" `Quick test_store_tables;
          QCheck_alcotest.to_alcotest qcheck_symbol_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_store_roundtrip;
        ] );
      ( "body",
        [
          Alcotest.test_case "single atom" `Quick test_body_single_atom;
          Alcotest.test_case "join with condition" `Quick
            test_body_join_with_condition;
          Alcotest.test_case "constant filter" `Quick test_body_constant_filter;
          Alcotest.test_case "constant interval" `Quick test_body_constant_interval;
          Alcotest.test_case "missing predicate" `Quick test_body_missing_predicate;
          Alcotest.test_case "rejects computed time" `Quick
            test_body_rejects_computed_time;
        ] );
      ( "closure",
        [
          Alcotest.test_case "derives" `Quick test_closure_derives;
          Alcotest.test_case "chain (f1 -> f2)" `Quick test_closure_chain;
          Alcotest.test_case "terminates" `Quick test_closure_terminates;
        ] );
      ( "instances",
        [
          Alcotest.test_case "heads" `Quick test_instances_heads;
          Alcotest.test_case "equality-generating" `Quick
            test_equality_generating_head;
          Alcotest.test_case "arithmetic condition" `Quick
            test_arith_condition_grounding;
        ] );
    ]
