(* Tests for Gibbs-sampling marginal inference. *)

module Network = Mln.Network
module Gibbs = Mln.Gibbs

let unit_clause atom positive weight =
  {
    Network.literals = [| { Network.atom; positive } |];
    weight;
    source = "test";
  }

let test_single_atom_marginal () =
  (* One soft unit clause (+0) with weight w: P(x) = sigmoid(w). *)
  let w = 1.0 in
  let network =
    { Network.num_atoms = 1; clauses = [| unit_clause 0 true (Some w) |] }
  in
  let r = Gibbs.run ~seed:1 ~burn_in:500 ~samples:20_000 network in
  let expected = 1.0 /. (1.0 +. exp (-.w)) in
  Alcotest.(check bool)
    (Printf.sprintf "marginal %.3f ~ %.3f" r.Gibbs.marginals.(0) expected)
    true
    (Float.abs (r.Gibbs.marginals.(0) -. expected) < 0.02)

let test_opposing_units () =
  (* +x with weight 2, -x with weight 2: marginal 0.5. *)
  let network =
    {
      Network.num_atoms = 1;
      clauses = [| unit_clause 0 true (Some 2.0); unit_clause 0 false (Some 2.0) |];
    }
  in
  let r = Gibbs.run ~seed:2 ~burn_in:500 ~samples:20_000 network in
  Alcotest.(check bool) "balanced" true
    (Float.abs (r.Gibbs.marginals.(0) -. 0.5) < 0.02)

let test_hard_evidence_near_one () =
  let network =
    { Network.num_atoms = 1; clauses = [| unit_clause 0 true None |] }
  in
  let r = Gibbs.run ~seed:3 ~burn_in:200 ~samples:5_000 network in
  Alcotest.(check bool) "pinned near 1" true (r.Gibbs.marginals.(0) > 0.99)

let test_mutual_exclusion_marginals () =
  (* Evidence pulls both, hard clause forbids both: the chain splits its
     time between the two single-atom worlds according to their weights. *)
  let network =
    {
      Network.num_atoms = 2;
      clauses =
        [|
          unit_clause 0 true (Some 2.0);
          unit_clause 1 true (Some 1.0);
          {
            Network.literals =
              [|
                { Network.atom = 0; positive = false };
                { Network.atom = 1; positive = false };
              |];
            weight = None;
            source = "clash";
          };
        |];
    }
  in
  let r = Gibbs.run ~seed:4 ~burn_in:1_000 ~samples:30_000 network in
  Alcotest.(check bool) "heavier atom more probable" true
    (r.Gibbs.marginals.(0) > r.Gibbs.marginals.(1));
  Alcotest.(check bool) "both rarely true together" true
    (r.Gibbs.marginals.(0) +. r.Gibbs.marginals.(1) < 1.35)

let test_deterministic_given_seed () =
  let network =
    { Network.num_atoms = 1; clauses = [| unit_clause 0 true (Some 0.7) |] }
  in
  let a = Gibbs.run ~seed:5 ~burn_in:100 ~samples:1_000 network in
  let b = Gibbs.run ~seed:5 ~burn_in:100 ~samples:1_000 network in
  Alcotest.(check bool) "same seed, same marginals" true
    (a.Gibbs.marginals = b.Gibbs.marginals)

let test_map_agreement_on_running_example () =
  (* On the running example the marginals should rank the MAP-kept facts
     above the removed one. *)
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
      ]
  in
  let rules =
    match
      Rulelang.Parser.parse_string
        "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "parse"
  in
  let store = Grounder.Atom_store.of_graph graph in
  let ground = Grounder.Ground.run store rules in
  let network = Network.build store ground.Grounder.Ground.instances in
  let init = Network.initial_assignment network store in
  let r = Gibbs.run ~seed:6 ~burn_in:1_000 ~samples:20_000 ~init network in
  Alcotest.(check bool) "chelsea above napoli" true
    (r.Gibbs.marginals.(0) > r.Gibbs.marginals.(1));
  Alcotest.(check bool) "napoli below half" true (r.Gibbs.marginals.(1) < 0.5)

let () =
  Alcotest.run "gibbs"
    [
      ( "marginals",
        [
          Alcotest.test_case "single atom" `Quick test_single_atom_marginal;
          Alcotest.test_case "opposing units" `Quick test_opposing_units;
          Alcotest.test_case "hard evidence" `Quick test_hard_evidence_near_one;
          Alcotest.test_case "mutual exclusion" `Quick
            test_mutual_exclusion_marginals;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
          Alcotest.test_case "running example" `Quick
            test_map_agreement_on_running_example;
        ] );
    ]
