(* Tests for the TeCoRe core: translator, conflict interpretation,
   threshold, the engine facade and the session workflow. *)

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let cr_graph () =
  Kg.Graph.of_list
    [
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Leicester") (2015, 2017) 0.7;
      Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
      Kg.Quad.v "CR" "birthDate" (Kg.Term.int 1951) (1951, 2017) 1.0;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
    ]

let cr_rules () =
  parse_rules
    {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .|}

let test_translator_ok () =
  let report = Tecore.Translator.analyse (cr_graph ()) (cr_rules ()) in
  Alcotest.(check bool) "ok" true report.Tecore.Translator.ok;
  Alcotest.(check bool) "recommends MLN for 5 facts" true
    (report.Tecore.Translator.recommended = Tecore.Translator.Mln_engine)

let test_translator_warnings () =
  let rules =
    parse_rules "constraint c: nosuch(x, y)@t ^ nosuch(x, z)@t2 => y = z ."
  in
  let report = Tecore.Translator.analyse (cr_graph ()) rules in
  Alcotest.(check bool) "still ok" true report.Tecore.Translator.ok;
  Alcotest.(check bool) "warns about predicate" true
    (List.exists
       (fun n -> n.Tecore.Translator.severity = Tecore.Translator.Warning)
       report.Tecore.Translator.notes)

let test_translator_duplicate_names () =
  let rules =
    parse_rules
      {|rule dup 1.0: coach(x, y)@t => worksFor(x, y)@t .
rule dup 2.0: playsFor(x, y)@t => worksFor(x, y)@t .|}
  in
  let report = Tecore.Translator.analyse (cr_graph ()) rules in
  Alcotest.(check bool) "duplicate names rejected" false
    report.Tecore.Translator.ok;
  Alcotest.(check bool) "error note names the rule" true
    (List.exists
       (fun (n : Tecore.Translator.note) ->
         n.Tecore.Translator.severity = Tecore.Translator.Error
         && n.Tecore.Translator.rule = Some "dup")
       report.Tecore.Translator.notes)

let test_translator_recommends_psl_at_scale () =
  let graph = Kg.Graph.create () in
  for i = 0 to Tecore.Translator.mln_size_limit do
    ignore
      (Kg.Graph.add graph
         (Kg.Quad.v (Printf.sprintf "s%d" i) "p" (Kg.Term.iri "o") (1, 2) 0.9))
  done;
  let report = Tecore.Translator.analyse graph [] in
  Alcotest.(check bool) "psl recommended" true
    (report.Tecore.Translator.recommended = Tecore.Translator.Psl_engine)

let test_translator_head_predicate_not_warned () =
  (* worksFor only exists as a rule head; chained rules must not warn. *)
  let rules =
    parse_rules
      {|rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .
rule g 1.0: worksFor(x, y)@t => employed(x, y)@t .|}
  in
  let report = Tecore.Translator.analyse (cr_graph ()) rules in
  Alcotest.(check bool) "no warnings" true
    (not
       (List.exists
          (fun n -> n.Tecore.Translator.severity = Tecore.Translator.Warning)
          report.Tecore.Translator.notes))

let figure7 result =
  Kg.Graph.to_list result.Tecore.Engine.resolution.Tecore.Conflict.consistent
  |> List.map Kg.Quad.to_string
  |> List.sort String.compare

let expected_figure7 =
  List.sort String.compare
    [
      "(CR, coach, Chelsea, [2000,2004]) 0.9";
      "(CR, coach, Leicester, [2015,2017]) 0.7";
      "(CR, playsFor, Palermo, [1984,1986]) 0.5";
      "(CR, birthDate, 1951, [1951,2017])";
      "(CR, worksFor, Palermo, [1984,1986]) 0.924";
    ]

let test_resolve_mln () =
  let result =
    Tecore.Engine.resolve
      ~engine:(Tecore.Engine.Mln Mln.Map_inference.default_options)
      (cr_graph ()) (cr_rules ())
  in
  Alcotest.(check (list string)) "figure 7" expected_figure7 (figure7 result);
  Alcotest.(check int) "one removed" 1
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed);
  Alcotest.(check int) "kept" 4 result.Tecore.Engine.resolution.Tecore.Conflict.kept;
  Alcotest.(check int) "clash involves two facts" 2
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.conflicting);
  let removed_fact =
    snd (List.hd result.Tecore.Engine.resolution.Tecore.Conflict.removed)
  in
  Alcotest.(check string) "napoli removed"
    "(CR, coach, Napoli, [2001,2003]) 0.6"
    (Kg.Quad.to_string removed_fact)

let test_resolve_psl () =
  let result =
    Tecore.Engine.resolve ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
      (cr_graph ()) (cr_rules ())
  in
  Alcotest.(check (list string)) "figure 7 via psl" expected_figure7
    (figure7 result)

let test_resolve_auto () =
  let result = Tecore.Engine.resolve (cr_graph ()) (cr_rules ()) in
  Alcotest.(check bool) "auto uses mln on small input" true
    (result.Tecore.Engine.stats.Tecore.Engine.engine_used
    = Tecore.Translator.Mln_engine)

let test_threshold () =
  (* worksFor is derived with confidence sigmoid(2.5) ~ 0.924. *)
  let resolve t =
    Tecore.Engine.resolve ?threshold:t (cr_graph ()) (cr_rules ())
  in
  let keep = resolve (Some 0.5) in
  Alcotest.(check int) "below threshold kept" 1
    (List.length keep.Tecore.Engine.resolution.Tecore.Conflict.derived);
  let drop = resolve (Some 0.95) in
  Alcotest.(check int) "above threshold dropped" 0
    (List.length drop.Tecore.Engine.resolution.Tecore.Conflict.derived);
  (* The derived quad is also removed from the consistent graph. *)
  Alcotest.(check int) "consistent shrinks" 4
    (Kg.Graph.size drop.Tecore.Engine.resolution.Tecore.Conflict.consistent)

let test_derived_confidence_monotone () =
  (* Two rules deriving the same atom give higher confidence than one. *)
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "a" "p" (Kg.Term.iri "b") (1, 2) 0.9;
        Kg.Quad.v "a" "q" (Kg.Term.iri "b") (1, 2) 0.9;
      ]
  in
  let one = parse_rules "rule r1 1.0: p(x, y)@t => d(x, y)@t ." in
  let two =
    parse_rules
      {|rule r1 1.0: p(x, y)@t => d(x, y)@t .
rule r2 1.0: q(x, y)@t => d(x, y)@t .|}
  in
  let conf rules =
    let result = Tecore.Engine.resolve graph rules in
    match result.Tecore.Engine.resolution.Tecore.Conflict.derived with
    | [ d ] -> d.Tecore.Conflict.confidence
    | ds -> Alcotest.fail (Printf.sprintf "expected 1 derived, got %d" (List.length ds))
  in
  Alcotest.(check bool) "two rules > one rule" true (conf two > conf one)

let test_rejected () =
  let unsafe =
    [
      Logic.Rule.
        {
          name = "bad";
          weight = None;
          body = [ Logic.Atom.make "p" [ Logic.Lterm.var "x" ] ];
          conditions = [];
          head =
            Infer (Logic.Atom.make "q" [ Logic.Lterm.var "y" ]);
        };
    ]
  in
  match Tecore.Engine.resolve (cr_graph ()) unsafe with
  | exception Tecore.Engine.Rejected report ->
      Alcotest.(check bool) "report not ok" false report.Tecore.Translator.ok
  | _ -> Alcotest.fail "unsafe rule accepted"

let test_session_workflow () =
  let s = Tecore.Session.create () in
  Alcotest.(check bool) "no graph yet" true (Tecore.Session.graph s = None);
  (match Tecore.Session.run s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "run without graph must fail");
  (match
     Tecore.Session.load_string s
       {|ex:CR ex:coach ex:Chelsea [2000,2004] 0.9 .
ex:CR ex:coach ex:Napoli [2001,2003] 0.6 .|}
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Tecore.Session.add_rules s
       "constraint c2: ex:coach(x, y)@t ^ ex:coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
   with
  | Ok [ _ ] -> ()
  | Ok _ -> Alcotest.fail "one rule expected"
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "completion" [ "ex:coach" ]
    (Tecore.Session.complete_predicate s "ex:c");
  (match Tecore.Session.run s with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one consistent statement" 1
    (List.length (Tecore.Session.consistent_statements s));
  Alcotest.(check int) "one conflicting statement" 1
    (List.length (Tecore.Session.conflicting_statements s));
  Alcotest.(check bool) "stats mention engine" true
    (Tecore.Session.statistics s <> "no run yet");
  (* Editing rules invalidates the previous result. *)
  Alcotest.(check bool) "remove rule" true (Tecore.Session.remove_rule s "c2");
  Alcotest.(check bool) "result cleared" true (Tecore.Session.last_result s = None);
  Alcotest.(check bool) "remove absent rule" false
    (Tecore.Session.remove_rule s "zz");
  Tecore.Session.clear_rules s;
  Alcotest.(check int) "rules cleared" 0 (List.length (Tecore.Session.rules s))

let test_session_load_errors () =
  let s = Tecore.Session.create () in
  (match Tecore.Session.load_string s "not a fact line" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad data accepted");
  (match Tecore.Session.add_rules s "rule broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad rules accepted");
  match Tecore.Session.load_file s "/nonexistent/path.tq" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing file accepted"

let test_conflicting_count_on_noisy_graph () =
  (* Three mutually overlapping coach facts: all three are conflicting,
     but only the cheapest ones are removed. *)
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2010) 0.9;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2001, 2005) 0.6;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "C") (2004, 2008) 0.7;
      ]
  in
  let rules =
    parse_rules
      "constraint c: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
  in
  let result = Tecore.Engine.resolve graph rules in
  Alcotest.(check int) "three conflicting" 3
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.conflicting);
  Alcotest.(check int) "two removed" 2
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed);
  Alcotest.(check int) "one kept" 1 result.Tecore.Engine.resolution.Tecore.Conflict.kept;
  (* The highest-confidence fact survives. *)
  let kept = Kg.Graph.to_list result.Tecore.Engine.resolution.Tecore.Conflict.consistent in
  Alcotest.(check int) "graph size" 1 (List.length kept);
  Alcotest.(check string) "A kept" "(x, coach, A, [2000,2010]) 0.9"
    (Kg.Quad.to_string (List.hd kept))

let () =
  Alcotest.run "tecore"
    [
      ( "translator",
        [
          Alcotest.test_case "ok" `Quick test_translator_ok;
          Alcotest.test_case "warnings" `Quick test_translator_warnings;
          Alcotest.test_case "duplicate names" `Quick
            test_translator_duplicate_names;
          Alcotest.test_case "psl at scale" `Quick
            test_translator_recommends_psl_at_scale;
          Alcotest.test_case "head predicates" `Quick
            test_translator_head_predicate_not_warned;
        ] );
      ( "engine",
        [
          Alcotest.test_case "resolve mln" `Quick test_resolve_mln;
          Alcotest.test_case "resolve psl" `Quick test_resolve_psl;
          Alcotest.test_case "resolve auto" `Quick test_resolve_auto;
          Alcotest.test_case "threshold" `Quick test_threshold;
          Alcotest.test_case "derived confidence monotone" `Quick
            test_derived_confidence_monotone;
          Alcotest.test_case "rejected" `Quick test_rejected;
          Alcotest.test_case "conflicting count" `Quick
            test_conflicting_count_on_noisy_graph;
        ] );
      ( "session",
        [
          Alcotest.test_case "workflow" `Quick test_session_workflow;
          Alcotest.test_case "load errors" `Quick test_session_load_errors;
        ] );
    ]
