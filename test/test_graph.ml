(* Tests for the indexed quad store. *)

module G = Kg.Graph
module Q = Kg.Quad
module T = Kg.Term
module I = Kg.Interval

let quad_testable = Alcotest.testable Q.pp Q.equal

let sample () =
  let g = G.create () in
  let ids =
    List.map (G.add g)
      [
        Q.v "CR" "coach" (T.iri "Chelsea") (2000, 2004) 0.9;
        Q.v "CR" "coach" (T.iri "Leicester") (2015, 2017) 0.7;
        Q.v "CR" "playsFor" (T.iri "Palermo") (1984, 1986) 0.5;
        Q.v "CR" "birthDate" (T.int 1951) (1951, 2017) 1.0;
        Q.v "CR" "coach" (T.iri "Napoli") (2001, 2003) 0.6;
        Q.v "Kid" "playsFor" (T.iri "Ajax") (2010, 2012) 0.8;
      ]
  in
  (g, ids)

let test_add_size () =
  let g, ids = sample () in
  Alcotest.(check int) "size" 6 (G.size g);
  Alcotest.(check int) "total" 6 (G.total g);
  Alcotest.(check (list int)) "ids are dense" [ 0; 1; 2; 3; 4; 5 ] ids

let test_remove_restore () =
  let g, _ = sample () in
  G.remove g 4;
  Alcotest.(check int) "size after remove" 5 (G.size g);
  Alcotest.(check int) "total unchanged" 6 (G.total g);
  Alcotest.(check bool) "id dead" false (G.mem_id g 4);
  G.remove g 4;
  Alcotest.(check int) "remove idempotent" 5 (G.size g);
  G.restore g 4;
  Alcotest.(check int) "restored" 6 (G.size g);
  Alcotest.(check bool) "id live" true (G.mem_id g 4)

let test_unknown_id () =
  let g, _ = sample () in
  Alcotest.(check bool) "mem_id unknown" false (G.mem_id g 99);
  (match G.find g 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "find must reject unknown ids");
  match G.remove g (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "remove must reject unknown ids"

let test_queries () =
  let g, _ = sample () in
  Alcotest.(check int) "coach facts" 3
    (List.length (G.by_predicate g (T.iri "coach")));
  Alcotest.(check int) "CR facts" 5
    (List.length (G.by_subject g (T.iri "CR")));
  Alcotest.(check int) "CR coach facts" 3
    (List.length (G.by_subject_predicate g (T.iri "CR") (T.iri "coach")));
  Alcotest.(check int) "Kid playsFor" 1
    (List.length (G.by_subject_predicate g (T.iri "Kid") (T.iri "playsFor")))

let test_queries_respect_tombstones () =
  let g, _ = sample () in
  G.remove g 0;
  Alcotest.(check int) "coach facts after remove" 2
    (List.length (G.by_predicate g (T.iri "coach")));
  Alcotest.(check int) "overlap query after remove" 1
    (List.length (G.overlapping g (T.iri "coach") (I.make 2001 2003)))

let test_overlapping () =
  let g, _ = sample () in
  let hits = G.overlapping g (T.iri "coach") (I.make 2001 2003) in
  Alcotest.(check int) "chelsea+napoli" 2 (List.length hits);
  let hits = G.overlapping g (T.iri "coach") (I.make 2010 2012) in
  Alcotest.(check int) "gap years" 0 (List.length hits);
  let hits = G.overlapping g (T.iri "playsFor") (I.make 1986 2010) in
  Alcotest.(check int) "both players" 2 (List.length hits)

let test_contains_statement () =
  let g, _ = sample () in
  Alcotest.(check bool) "present (any confidence)" true
    (G.contains_statement g (Q.v "CR" "coach" (T.iri "Chelsea") (2000, 2004) 0.1));
  Alcotest.(check bool) "different interval" false
    (G.contains_statement g (Q.v "CR" "coach" (T.iri "Chelsea") (2000, 2005) 0.9))

let test_predicates_and_completion () =
  let g, _ = sample () in
  let preds = G.predicates g in
  Alcotest.(check int) "three predicates" 3 (List.length preds);
  (match preds with
  | (p, c) :: _ ->
      Alcotest.(check string) "coach most frequent" "coach" (T.to_string p);
      Alcotest.(check int) "count" 3 c
  | [] -> Alcotest.fail "no predicates");
  Alcotest.(check int) "complete 'c'" 1
    (List.length (G.complete_predicate g "c"));
  Alcotest.(check int) "complete ''" 3
    (List.length (G.complete_predicate g ""));
  Alcotest.(check int) "complete 'z'" 0
    (List.length (G.complete_predicate g "z"))

let test_subjects () =
  let g, _ = sample () in
  Alcotest.(check int) "two subjects" 2 (List.length (G.subjects g))

let test_stats () =
  let g, _ = sample () in
  let s = G.stats g in
  Alcotest.(check int) "facts" 6 s.G.facts;
  Alcotest.(check int) "certain" 1 s.G.certain_facts;
  Alcotest.(check int) "subjects" 2 s.G.distinct_subjects;
  Alcotest.(check int) "predicates" 3 s.G.distinct_predicates;
  Alcotest.(check bool) "span" true
    (match s.G.time_span with
    | Some span -> I.lo span = 1951 && I.hi span = 2017
    | None -> false);
  G.remove g 0;
  let s = G.stats g in
  Alcotest.(check int) "removed tracked" 1 s.G.removed

let test_copy_independent () =
  let g, _ = sample () in
  G.remove g 1;
  let g' = G.copy g in
  Alcotest.(check int) "copy size" (G.size g) (G.size g');
  Alcotest.(check bool) "tombstone copied" false (G.mem_id g' 1);
  G.remove g' 0;
  Alcotest.(check bool) "original unaffected" true (G.mem_id g 0)

let test_of_list_roundtrip () =
  let quads =
    [
      Q.v "a" "p" (T.iri "b") (1, 2) 0.5;
      Q.v "c" "p" (T.iri "d") (3, 4) 0.6;
    ]
  in
  let g = G.of_list quads in
  Alcotest.(check (list quad_testable)) "roundtrip" quads (G.to_list g)

let test_insertion_order () =
  let g, _ = sample () in
  let first = List.hd (G.to_list g) in
  Alcotest.check quad_testable "first is Chelsea"
    (Q.v "CR" "coach" (T.iri "Chelsea") (2000, 2004) 0.9)
    first

let test_duplicate_statements_allowed () =
  let g = G.create () in
  let q = Q.v "a" "p" (T.iri "b") (1, 2) 0.5 in
  let id1 = G.add g q and id2 = G.add g q in
  Alcotest.(check bool) "distinct ids" true (id1 <> id2);
  Alcotest.(check int) "both stored" 2 (G.size g)

(* Property: by_predicate agrees with a naive scan. *)
let arbitrary_graph =
  let quad_gen =
    QCheck.map
      (fun ((s, p), (lo, len), conf10) ->
        Q.v
          (Printf.sprintf "s%d" s)
          (Printf.sprintf "p%d" p)
          (T.iri "o")
          (lo, lo + len)
          (0.1 +. (float_of_int conf10 /. 11.0)))
      QCheck.(
        triple
          (pair (int_range 0 5) (int_range 0 3))
          (pair (int_range 0 50) (int_range 0 10))
          (int_range 0 9))
  in
  QCheck.(list_of_size (Gen.int_range 0 60) quad_gen)

let qcheck_by_predicate_naive =
  QCheck.Test.make ~name:"by_predicate = naive filter" ~count:200
    arbitrary_graph (fun quads ->
      let g = G.of_list quads in
      List.for_all
        (fun p ->
          let fast = List.map snd (G.by_predicate g (T.iri p)) in
          let naive =
            List.filter (fun q -> T.equal q.Q.predicate (T.iri p)) quads
          in
          List.length fast = List.length naive
          && List.for_all2 Q.equal fast naive)
        [ "p0"; "p1"; "p2"; "p3" ])

let qcheck_overlapping_naive =
  QCheck.Test.make ~name:"overlapping = naive filter" ~count:200
    QCheck.(pair arbitrary_graph (pair (int_range 0 60) (int_range 0 10)))
    (fun (quads, (lo, len)) ->
      let window = I.make lo (lo + len) in
      let g = G.of_list quads in
      List.for_all
        (fun p ->
          let fast =
            G.overlapping g (T.iri p) window
            |> List.map fst |> List.sort Int.compare
          in
          let naive =
            List.filteri (fun _ _ -> true) quads
            |> List.mapi (fun i q -> (i, q))
            |> List.filter (fun (_, q) ->
                   T.equal q.Q.predicate (T.iri p)
                   && I.overlaps q.Q.time window)
            |> List.map fst
          in
          fast = naive)
        [ "p0"; "p1" ])

let () =
  Alcotest.run "graph"
    [
      ( "store",
        [
          Alcotest.test_case "add/size" `Quick test_add_size;
          Alcotest.test_case "remove/restore" `Quick test_remove_restore;
          Alcotest.test_case "unknown ids" `Quick test_unknown_id;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "of_list roundtrip" `Quick test_of_list_roundtrip;
          Alcotest.test_case "insertion order" `Quick test_insertion_order;
          Alcotest.test_case "duplicates allowed" `Quick
            test_duplicate_statements_allowed;
        ] );
      ( "queries",
        [
          Alcotest.test_case "basic" `Quick test_queries;
          Alcotest.test_case "tombstones respected" `Quick
            test_queries_respect_tombstones;
          Alcotest.test_case "temporal overlap" `Quick test_overlapping;
          Alcotest.test_case "contains_statement" `Quick test_contains_statement;
          Alcotest.test_case "predicates/completion" `Quick
            test_predicates_and_completion;
          Alcotest.test_case "subjects" `Quick test_subjects;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_by_predicate_naive;
          QCheck_alcotest.to_alcotest qcheck_overlapping_naive;
        ] );
    ]
