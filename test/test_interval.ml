(* Tests for discrete time intervals. *)

module I = Kg.Interval

let iv lo hi = I.make lo hi

let interval_testable =
  Alcotest.testable I.pp I.equal

let test_make_valid () =
  let i = iv 2000 2004 in
  Alcotest.(check int) "lo" 2000 (I.lo i);
  Alcotest.(check int) "hi" 2004 (I.hi i);
  Alcotest.(check int) "length" 5 (I.length i)

let test_make_invalid () =
  match iv 5 3 with
  | exception I.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Invalid"

let test_point () =
  let p = I.point 1951 in
  Alcotest.(check int) "lo" 1951 (I.lo p);
  Alcotest.(check int) "hi" 1951 (I.hi p);
  Alcotest.(check int) "length" 1 (I.length p)

let test_contains () =
  let i = iv 10 20 in
  Alcotest.(check bool) "inside" true (I.contains i 15);
  Alcotest.(check bool) "lo edge" true (I.contains i 10);
  Alcotest.(check bool) "hi edge" true (I.contains i 20);
  Alcotest.(check bool) "below" false (I.contains i 9);
  Alcotest.(check bool) "above" false (I.contains i 21)

let test_overlaps_disjoint () =
  Alcotest.(check bool) "overlap" true (I.overlaps (iv 1 5) (iv 5 9));
  Alcotest.(check bool) "no overlap" false (I.overlaps (iv 1 4) (iv 5 9));
  Alcotest.(check bool) "disjoint" true (I.disjoint (iv 1 4) (iv 5 9));
  Alcotest.(check bool) "contained overlaps" true (I.overlaps (iv 1 9) (iv 3 4))

let test_intersect () =
  Alcotest.(check (option interval_testable)) "proper"
    (Some (iv 3 5))
    (I.intersect (iv 1 5) (iv 3 9));
  Alcotest.(check (option interval_testable)) "empty" None
    (I.intersect (iv 1 2) (iv 3 9));
  Alcotest.(check (option interval_testable)) "single point"
    (Some (iv 5 5))
    (I.intersect (iv 1 5) (iv 5 9))

let test_hull () =
  Alcotest.check interval_testable "hull spans" (iv 1 9)
    (I.hull (iv 1 3) (iv 7 9));
  Alcotest.check interval_testable "hull of nested" (iv 1 9)
    (I.hull (iv 1 9) (iv 3 4))

let test_subsumes () =
  Alcotest.(check bool) "outer subsumes inner" true (I.subsumes (iv 1 9) (iv 3 4));
  Alcotest.(check bool) "equal subsumes" true (I.subsumes (iv 1 9) (iv 1 9));
  Alcotest.(check bool) "partial does not" false (I.subsumes (iv 1 5) (iv 3 9))

let test_before () =
  Alcotest.(check bool) "gap" true (I.before (iv 1 3) (iv 5 9));
  Alcotest.(check bool) "adjacent is not before (meets)" false
    (I.before (iv 1 4) (iv 5 9));
  Alcotest.(check bool) "overlap is not before" false (I.before (iv 1 6) (iv 5 9))

let test_shift_clamp () =
  Alcotest.check interval_testable "shift" (iv 11 13) (I.shift (iv 1 3) 10);
  Alcotest.(check (option interval_testable)) "clamp inside"
    (Some (iv 3 5))
    (I.clamp (iv 1 5) ~within:(iv 3 10));
  Alcotest.(check (option interval_testable)) "clamp out" None
    (I.clamp (iv 1 2) ~within:(iv 5 10))

let test_compare_order () =
  Alcotest.(check bool) "lex by lo" true (I.compare (iv 1 9) (iv 2 3) < 0);
  Alcotest.(check bool) "lex by hi" true (I.compare (iv 1 3) (iv 1 9) < 0);
  Alcotest.(check int) "equal" 0 (I.compare (iv 1 3) (iv 1 3))

let test_to_string () =
  Alcotest.(check string) "pair" "[2000,2004]" (I.to_string (iv 2000 2004));
  Alcotest.(check string) "point" "[1951]" (I.to_string (I.point 1951))

let test_of_string () =
  let ok s expected =
    match I.of_string s with
    | Ok i -> Alcotest.check interval_testable s expected i
    | Error e -> Alcotest.fail e
  in
  ok "[2000,2004]" (iv 2000 2004);
  ok "[1951]" (I.point 1951);
  ok "1951" (I.point 1951);
  ok "[ 3 , 7 ]" (iv 3 7);
  ok "[-5,-1]" (iv (-5) (-1));
  let bad s =
    match I.of_string s with
    | Ok _ -> Alcotest.fail (s ^ " should not parse")
    | Error _ -> ()
  in
  bad "[5,3]";
  bad "[a,b]";
  bad "";
  bad "[1,2"

let arbitrary_interval =
  QCheck.map
    (fun (a, b) -> if a <= b then iv a b else iv b a)
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"of_string (to_string i) = i" ~count:500
    arbitrary_interval (fun i ->
      match I.of_string (I.to_string i) with
      | Ok j -> I.equal i j
      | Error _ -> false)

let qcheck_intersect_commutes =
  QCheck.Test.make ~name:"intersect commutes" ~count:500
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) ->
      Option.equal I.equal (I.intersect a b) (I.intersect b a))

let qcheck_intersect_subsumed =
  QCheck.Test.make ~name:"intersection inside both" ~count:500
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) ->
      match I.intersect a b with
      | None -> I.disjoint a b
      | Some c -> I.subsumes a c && I.subsumes b c)

let qcheck_hull_contains =
  QCheck.Test.make ~name:"hull contains both" ~count:500
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) ->
      let h = I.hull a b in
      I.subsumes h a && I.subsumes h b)

let qcheck_overlaps_symmetric =
  QCheck.Test.make ~name:"overlaps symmetric" ~count:500
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) -> I.overlaps a b = I.overlaps b a)

let qcheck_length_positive =
  QCheck.Test.make ~name:"length >= 1" ~count:500 arbitrary_interval
    (fun i -> I.length i >= 1)

let () =
  Alcotest.run "interval"
    [
      ( "construction",
        [
          Alcotest.test_case "make valid" `Quick test_make_valid;
          Alcotest.test_case "make invalid" `Quick test_make_invalid;
          Alcotest.test_case "point" `Quick test_point;
        ] );
      ( "relations",
        [
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "overlaps/disjoint" `Quick test_overlaps_disjoint;
          Alcotest.test_case "intersect" `Quick test_intersect;
          Alcotest.test_case "hull" `Quick test_hull;
          Alcotest.test_case "subsumes" `Quick test_subsumes;
          Alcotest.test_case "before" `Quick test_before;
          Alcotest.test_case "shift/clamp" `Quick test_shift_clamp;
          Alcotest.test_case "compare" `Quick test_compare_order;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_intersect_commutes;
          QCheck_alcotest.to_alcotest qcheck_intersect_subsumed;
          QCheck_alcotest.to_alcotest qcheck_hull_contains;
          QCheck_alcotest.to_alcotest qcheck_overlaps_symmetric;
          QCheck_alcotest.to_alcotest qcheck_length_positive;
        ] );
    ]
