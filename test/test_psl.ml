(* Tests for the PSL engine: HL-MRF compilation, the ADMM solver on
   problems with known optima, rounding, and the nPSL pipeline. *)

module Hlmrf = Psl.Hlmrf
module Admm = Psl.Admm
module Store = Grounder.Atom_store

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let near ?(eps = 2e-2) a b = Float.abs (a -. b) <= eps

let test_admm_single_pull () =
  (* minimize 1.0 * max(0, 1 - x): optimum x = 1. *)
  let model =
    {
      Hlmrf.num_vars = 1;
      potentials =
        [| { Hlmrf.weight = 1.0; expr = { coeffs = [ (0, -1.0) ]; const = 1.0 } } |];
      constraints = [||];
    }
  in
  let x, stats = Admm.solve model in
  Alcotest.(check bool) "converged" true stats.Admm.converged;
  Alcotest.(check bool) "x = 1" true (near x.(0) 1.0)

let test_admm_competing_pulls () =
  (* min 3*max(0,1-x) + 1*max(0,x): linear in x with slope -2 on [0,1],
     optimum x = 1. Swap weights -> x = 0. *)
  let model w_up w_down =
    {
      Hlmrf.num_vars = 1;
      potentials =
        [|
          { Hlmrf.weight = w_up; expr = { coeffs = [ (0, -1.0) ]; const = 1.0 } };
          { Hlmrf.weight = w_down; expr = { coeffs = [ (0, 1.0) ]; const = 0.0 } };
        |];
      constraints = [||];
    }
  in
  let x, _ = Admm.solve (model 3.0 1.0) in
  Alcotest.(check bool) "strong pull wins" true (near x.(0) 1.0);
  let x, _ = Admm.solve (model 1.0 3.0) in
  Alcotest.(check bool) "strong push wins" true (near x.(0) 0.0)

let test_admm_mutual_exclusion () =
  (* Pull both vars to 1 with weights 0.9 and 0.6 under x0 + x1 <= 1:
     optimum keeps the heavier at 1. *)
  let model =
    {
      Hlmrf.num_vars = 2;
      potentials =
        [|
          { Hlmrf.weight = 0.9; expr = { coeffs = [ (0, -1.0) ]; const = 1.0 } };
          { Hlmrf.weight = 0.6; expr = { coeffs = [ (1, -1.0) ]; const = 1.0 } };
        |];
      constraints =
        [| Hlmrf.Le { coeffs = [ (0, 1.0); (1, 1.0) ]; const = -1.0 } |];
    }
  in
  let x, stats = Admm.solve ~max_iters:5000 model in
  Alcotest.(check bool) "feasible" true
    (Hlmrf.constraint_violation model x < 0.05);
  Alcotest.(check bool) "heavier kept" true (x.(0) > x.(1));
  Alcotest.(check bool) "x0 near 1" true (near ~eps:0.05 x.(0) 1.0);
  Alcotest.(check bool) "x1 near 0" true (near ~eps:0.05 x.(1) 0.0);
  Alcotest.(check bool) "objective near 0.6" true
    (near ~eps:0.05 stats.Admm.objective 0.6)

let test_admm_equality_pin () =
  let model =
    {
      Hlmrf.num_vars = 1;
      potentials =
        [| { Hlmrf.weight = 5.0; expr = { coeffs = [ (0, 1.0) ]; const = 0.0 } } |];
      constraints = [| Hlmrf.Eq { coeffs = [ (0, 1.0) ]; const = -1.0 } |];
    }
  in
  (* Even a strong pull to 0 cannot move a pinned variable. *)
  let x, _ = Admm.solve ~max_iters:5000 model in
  Alcotest.(check bool) "pinned at 1" true (near ~eps:0.05 x.(0) 1.0)

let test_admm_implication_potential () =
  (* body -> head with body pinned at 1: w*max(0, x_b - x_h) plus a tiny
     prior on the head; the head should rise to ~1. *)
  let model =
    {
      Hlmrf.num_vars = 2;
      potentials =
        [|
          { Hlmrf.weight = 2.0; expr = { coeffs = [ (0, 1.0); (1, -1.0) ]; const = 0.0 } };
          { Hlmrf.weight = 0.05; expr = { coeffs = [ (1, 1.0) ]; const = 0.0 } };
        |];
      constraints = [| Hlmrf.Eq { coeffs = [ (0, 1.0) ]; const = -1.0 } |];
    }
  in
  let x, _ = Admm.solve ~max_iters:5000 model in
  Alcotest.(check bool) "head derived" true (x.(1) > 0.9)

let test_objective_and_violation () =
  let model =
    {
      Hlmrf.num_vars = 2;
      potentials =
        [| { Hlmrf.weight = 2.0; expr = { coeffs = [ (0, 1.0) ]; const = -0.25 } } |];
      constraints =
        [| Hlmrf.Le { coeffs = [ (0, 1.0); (1, 1.0) ]; const = -1.0 } |];
    }
  in
  Alcotest.(check bool) "objective" true
    (near (Hlmrf.objective model [| 0.75; 0.0 |]) 1.0);
  Alcotest.(check bool) "violation zero" true
    (Hlmrf.constraint_violation model [| 0.5; 0.5 |] = 0.0);
  Alcotest.(check bool) "violation positive" true
    (Hlmrf.constraint_violation model [| 1.0; 0.5 |] > 0.0)

let test_rounding_simple () =
  let model = { Hlmrf.num_vars = 3; potentials = [||]; constraints = [||] } in
  let assignment, stats = Psl.Rounding.round model [| 0.9; 0.4; 0.5 |] in
  Alcotest.(check (array bool)) "threshold 0.5" [| true; false; true |] assignment;
  Alcotest.(check int) "no flips" 0 stats.Psl.Rounding.flipped

let test_rounding_repair () =
  (* Both rounded to true but mutually exclusive: the lower soft value is
     flipped. *)
  let model =
    {
      Hlmrf.num_vars = 2;
      potentials = [||];
      constraints =
        [| Hlmrf.Le { coeffs = [ (0, 1.0); (1, 1.0) ]; const = -1.0 } |];
    }
  in
  let assignment, stats = Psl.Rounding.round model [| 0.8; 0.6 |] in
  Alcotest.(check (array bool)) "lower flipped" [| true; false |] assignment;
  Alcotest.(check int) "one flip" 1 stats.Psl.Rounding.flipped;
  Alcotest.(check int) "repaired" 0 stats.Psl.Rounding.unrepaired

let test_rounding_respects_pins () =
  let model =
    {
      Hlmrf.num_vars = 2;
      potentials = [||];
      constraints =
        [|
          Hlmrf.Eq { coeffs = [ (0, 1.0) ]; const = -1.0 };
          Hlmrf.Le { coeffs = [ (0, 1.0); (1, 1.0) ]; const = -1.0 };
        |];
    }
  in
  let assignment, _ = Psl.Rounding.round model [| 0.6; 0.9 |] in
  Alcotest.(check (array bool)) "pinned survives, other flips"
    [| true; false |] assignment

let cr_graph () =
  Kg.Graph.of_list
    [
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Leicester") (2015, 2017) 0.7;
      Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
      Kg.Quad.v "CR" "birthDate" (Kg.Term.int 1951) (1951, 2017) 1.0;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
    ]

let test_hlmrf_build_shape () =
  let store = Store.of_graph (cr_graph ()) in
  let rules =
    parse_rules
      {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .|}
  in
  let result = Grounder.Ground.run store rules in
  let model = Hlmrf.build store result.Grounder.Ground.instances in
  Alcotest.(check int) "vars" 6 model.Hlmrf.num_vars;
  (* 1 equality pin (birthDate) + 1 deduplicated clash constraint. *)
  Alcotest.(check int) "constraints" 2 (Array.length model.Hlmrf.constraints);
  (* 4 uncertain evidence pulls + 1 hidden prior + 1 soft rule instance. *)
  Alcotest.(check int) "potentials" 6 (Array.length model.Hlmrf.potentials)

let test_npsl_running_example () =
  let rules =
    parse_rules
      {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .|}
  in
  let out = Psl.Npsl.run (cr_graph ()) rules in
  Alcotest.(check bool) "admm converged" true out.Psl.Npsl.stats.Psl.Npsl.admm.Admm.converged;
  Alcotest.(check int) "repaired" 0
    out.Psl.Npsl.stats.Psl.Npsl.rounding.Psl.Rounding.unrepaired;
  (* Figure 7: facts 1-4 kept, fact 5 (Napoli) removed, worksFor derived. *)
  Alcotest.(check (array bool)) "assignment"
    [| true; true; true; true; false; true |]
    out.Psl.Npsl.assignment;
  (* The continuous state is crisp on this instance. *)
  Alcotest.(check bool) "napoli near 0" true (out.Psl.Npsl.truth.(4) < 0.2);
  Alcotest.(check bool) "chelsea near 1" true (out.Psl.Npsl.truth.(0) > 0.8)

let test_npsl_agrees_with_mln_on_example () =
  let rules =
    parse_rules
      "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
  in
  let psl_out = Psl.Npsl.run (cr_graph ()) rules in
  let mln_out = Mln.Map_inference.run (cr_graph ()) rules in
  Alcotest.(check (array bool)) "same MAP state"
    mln_out.Mln.Map_inference.assignment psl_out.Psl.Npsl.assignment

let () =
  Alcotest.run "psl"
    [
      ( "admm",
        [
          Alcotest.test_case "single pull" `Quick test_admm_single_pull;
          Alcotest.test_case "competing pulls" `Quick test_admm_competing_pulls;
          Alcotest.test_case "mutual exclusion" `Quick test_admm_mutual_exclusion;
          Alcotest.test_case "equality pin" `Quick test_admm_equality_pin;
          Alcotest.test_case "implication potential" `Quick
            test_admm_implication_potential;
          Alcotest.test_case "objective/violation" `Quick
            test_objective_and_violation;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "simple threshold" `Quick test_rounding_simple;
          Alcotest.test_case "repair" `Quick test_rounding_repair;
          Alcotest.test_case "respects pins" `Quick test_rounding_respects_pins;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "hlmrf shape" `Quick test_hlmrf_build_shape;
          Alcotest.test_case "running example" `Quick test_npsl_running_example;
          Alcotest.test_case "agrees with mln" `Quick
            test_npsl_agrees_with_mln_on_example;
        ] );
    ]
