(* Unit tests for the observability library: span nesting, metric
   accumulation across merged spans, histogram quantiles, and the JSON
   round-trip used by the CLI and the benchmark exporter. *)

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_trace None;
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Spans.                                                             *)

let test_span_nesting () =
  with_obs (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () -> ());
          Obs.span "inner2" (fun () -> ()));
      let r = Obs.Report.capture () in
      Alcotest.(check int) "one top-level span" 1 (List.length r.Obs.Report.spans);
      let outer = List.hd r.Obs.Report.spans in
      Alcotest.(check string) "outer name" "outer" outer.Obs.Report.name;
      Alcotest.(check (list string))
        "children in order" [ "inner"; "inner2" ]
        (List.map
           (fun (n : Obs.Report.node) -> n.Obs.Report.name)
           outer.Obs.Report.children);
      match Obs.Report.find r [ "outer"; "inner" ] with
      | Some n -> Alcotest.(check int) "inner calls" 1 n.Obs.Report.calls
      | None -> Alcotest.fail "find outer/inner")

let test_span_merging () =
  with_obs (fun () ->
      for _ = 1 to 3 do
        Obs.span "stage" (fun () -> Obs.count "work")
      done;
      let r = Obs.Report.capture () in
      Alcotest.(check int) "merged to one node" 1 (List.length r.Obs.Report.spans);
      let n = List.hd r.Obs.Report.spans in
      Alcotest.(check int) "three calls" 3 n.Obs.Report.calls;
      Alcotest.(check (float 1e-9))
        "counters accumulate" 3.0
        (List.assoc "work" n.Obs.Report.counters))

let test_span_exception_balance () =
  with_obs (fun () ->
      (try
         Obs.span "outer" (fun () ->
             Obs.span "boom" (fun () -> failwith "x"))
       with Failure _ -> ());
      (* The stack must be balanced: a fresh span lands at top level. *)
      Obs.span "after" (fun () -> ());
      let r = Obs.Report.capture () in
      Alcotest.(check (list string))
        "both top level" [ "outer"; "after" ]
        (List.map
           (fun (n : Obs.Report.node) -> n.Obs.Report.name)
           r.Obs.Report.spans);
      match Obs.Report.find r [ "outer"; "boom" ] with
      | Some n -> Alcotest.(check int) "raising span closed" 1 n.Obs.Report.calls
      | None -> Alcotest.fail "raising span lost")

let test_disabled_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  Obs.span "ghost" (fun () -> Obs.count "ghost.count");
  Obs.event "ghost.event" [ ("k", Obs.Events.Int 1) ];
  Obs.sample "ghost.series" ~t_ms:1.0 ~v:2.0;
  Obs.set_enabled true;
  let r = Obs.Report.capture () in
  Obs.set_enabled false;
  Alcotest.(check int) "no spans recorded" 0 (List.length r.Obs.Report.spans);
  Alcotest.(check int)
    "no counters recorded" 0
    (List.length r.Obs.Report.counters);
  Alcotest.(check int) "no events recorded" 0 (List.length r.Obs.Report.events);
  Alcotest.(check int) "no series recorded" 0 (List.length r.Obs.Report.series)

let test_root_metrics () =
  with_obs (fun () ->
      Obs.count ~n:5 "loose";
      Obs.gauge "level" 0.75;
      let r = Obs.Report.capture () in
      Alcotest.(check (float 1e-9))
        "root counter" 5.0
        (List.assoc "loose" r.Obs.Report.counters);
      Alcotest.(check (float 1e-9))
        "root gauge" 0.75
        (List.assoc "level" r.Obs.Report.gauges))

let test_trace_hook () =
  with_obs (fun () ->
      let events = ref [] in
      Obs.set_trace
        (Some (fun ~depth name _ms -> events := (depth, name) :: !events));
      Obs.span "a" (fun () -> Obs.span "b" (fun () -> ()));
      Obs.set_trace None;
      (* Children close before parents; depth counts from 0 at top level. *)
      Alcotest.(check (list (pair int string)))
        "close order and depths"
        [ (1, "b"); (0, "a") ]
        (List.rev !events))

(* ------------------------------------------------------------------ *)
(* Histograms.                                                        *)

let test_histogram_quantiles () =
  let h = Obs.Histogram.create () in
  for i = 100 downto 1 do
    Obs.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "total" 5050.0 (Obs.Histogram.total h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Histogram.minimum h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Obs.Histogram.maximum h);
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Obs.Histogram.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Obs.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p90" 90.0 (Obs.Histogram.quantile h 0.9);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Obs.Histogram.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "p100 = max" 100.0 (Obs.Histogram.quantile h 1.0)

let test_histogram_merge () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  List.iter (Obs.Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Obs.Histogram.add b) [ 3.0; 4.0 ];
  let m = Obs.Histogram.merge a b in
  Alcotest.(check int) "merged count" 4 (Obs.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged total" 10.0 (Obs.Histogram.total m);
  (* Merge must not alias the inputs. *)
  Obs.Histogram.add m 99.0;
  Alcotest.(check int) "input a untouched" 2 (Obs.Histogram.count a)

let test_histogram_reservoir_cap () =
  let h = Obs.Histogram.create ~cap:64 () in
  for i = 1 to 10_000 do
    Obs.Histogram.add h (float_of_int i)
  done;
  (* Stream statistics stay exact past the cap; only the quantile
     sample is bounded. *)
  Alcotest.(check int) "count is stream-exact" 10_000 (Obs.Histogram.count h);
  Alcotest.(check int) "stored bounded by cap" 64 (Obs.Histogram.stored h);
  Alcotest.(check int) "capacity reported" 64 (Obs.Histogram.capacity h);
  Alcotest.(check (float 1e-3))
    "total is stream-exact" 50_005_000.0 (Obs.Histogram.total h);
  Alcotest.(check (float 1e-9)) "min exact" 1.0 (Obs.Histogram.minimum h);
  Alcotest.(check (float 1e-9)) "max exact" 10_000.0 (Obs.Histogram.maximum h);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        "retained samples come from the stream" true
        (Float.is_integer v && v >= 1.0 && v <= 10_000.0))
    (Obs.Histogram.to_list h);
  (* The reservoir is seeded deterministically, so this is a stable
     (loose) check that the median estimate sits in the bulk of the
     uniform stream rather than at an extreme. *)
  let p50 = Obs.Histogram.quantile h 0.5 in
  Alcotest.(check bool)
    "median estimate in the bulk" true
    (p50 >= 1_000.0 && p50 <= 9_000.0)

let prop_histogram_merge_stable =
  QCheck.Test.make
    ~name:"histogram merge: exact stream stats, deterministic, unaliased"
    ~count:100
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (xs, ys) ->
      let cap = 32 in
      let fill vals =
        let h = Obs.Histogram.create ~cap () in
        List.iter (fun v -> Obs.Histogram.add h (float_of_int v)) vals;
        h
      in
      let a = fill xs and b = fill ys in
      let m1 = Obs.Histogram.merge a b in
      let m2 = Obs.Histogram.merge a b in
      let all = xs @ ys in
      (* Small-integer sums are exactly representable, so the stream
         fields must combine exactly, not approximately. *)
      let ok_stream =
        Obs.Histogram.count m1 = List.length all
        && Obs.Histogram.total m1
           = List.fold_left (fun acc v -> acc +. float_of_int v) 0.0 all
        &&
        match all with
        | [] -> Obs.Histogram.stored m1 = 0
        | _ ->
            Obs.Histogram.minimum m1
            = float_of_int (List.fold_left min max_int all)
            && Obs.Histogram.maximum m1
               = float_of_int (List.fold_left max min_int all)
      in
      let qs = [ 0.0; 0.25; 0.5; 0.75; 0.95; 1.0 ] in
      let same q1 q2 = q1 = q2 || (Float.is_nan q1 && Float.is_nan q2) in
      (* Merging the same pair twice yields identical histograms. *)
      let deterministic =
        Obs.Histogram.to_list m1 = Obs.Histogram.to_list m2
        && List.for_all
             (fun q ->
               same (Obs.Histogram.quantile m1 q) (Obs.Histogram.quantile m2 q))
             qs
      in
      (* While everything fits the capacity, a merge is exactly the
         histogram of the concatenated stream. *)
      let exact_below_cap =
        List.length all > cap
        || (let c = fill all in
            List.for_all
              (fun q ->
                same (Obs.Histogram.quantile m1 q) (Obs.Histogram.quantile c q))
              qs)
      in
      Obs.Histogram.add m1 1234.0;
      let unaliased =
        Obs.Histogram.count a = List.length xs
        && Obs.Histogram.count b = List.length ys
      in
      ok_stream && deterministic && exact_below_cap && unaliased)

(* ------------------------------------------------------------------ *)
(* Per-request phase contexts.                                        *)

let test_phases_capture_when_disabled () =
  (* Phase capture is independent of global collection: with Obs
     disabled an installed context still times spans, the [only] filter
     drops non-taxonomy names, direct records bypass the filter, and
     the global report stays empty. *)
  Obs.reset ();
  Obs.set_enabled false;
  let ctx = Obs.Phases.create ~only:[ "ground"; "solve" ] () in
  Obs.with_phases ctx (fun () ->
      Obs.span "ground" (fun () -> ());
      Obs.span "translate" (fun () -> ());
      Obs.span "solve" (fun () -> ()));
  Obs.Phases.record ctx "queue" 1.5;
  Alcotest.(check (list string))
    "interesting spans + direct records, in order"
    [ "ground"; "solve"; "queue" ]
    (List.map fst (Obs.Phases.entries ctx));
  List.iter
    (fun (_, ms) ->
      Alcotest.(check bool) "durations non-negative" true (ms >= 0.0))
    (Obs.Phases.entries ctx);
  Alcotest.(check (float 1e-9))
    "total sums the entries"
    (List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0
       (Obs.Phases.entries ctx))
    (Obs.Phases.total ctx);
  Obs.set_enabled true;
  let r = Obs.Report.capture () in
  Obs.set_enabled false;
  Alcotest.(check int)
    "global report untouched" 0
    (List.length r.Obs.Report.spans)

let test_phases_nested_outermost () =
  (* A captured span inside a captured span attributes to the outer one
     only (a cutting-plane re-ground inside solve is not
     double-counted) — on both the enabled and the disabled path. *)
  let check_with enabled =
    Obs.reset ();
    Obs.set_enabled enabled;
    let ctx = Obs.Phases.create ~only:[ "solve"; "ground" ] () in
    Obs.with_phases ctx (fun () ->
        Obs.span "solve" (fun () -> Obs.span "ground" (fun () -> ())));
    Obs.set_enabled false;
    Alcotest.(check (list string))
      (Printf.sprintf "outermost only (enabled=%b)" enabled)
      [ "solve" ]
      (List.map fst (Obs.Phases.entries ctx))
  in
  check_with false;
  check_with true;
  Obs.reset ()

let test_phases_uninstalled_context () =
  (* Spans outside [with_phases] never touch a context, and contexts
     nest: the inner installation wins for its extent only. *)
  Obs.reset ();
  Obs.set_enabled false;
  let outer = Obs.Phases.create () and inner = Obs.Phases.create () in
  Obs.span "stray" (fun () -> ());
  Obs.with_phases outer (fun () ->
      Obs.span "a" (fun () -> ());
      Obs.with_phases inner (fun () -> Obs.span "b" (fun () -> ()));
      Obs.span "c" (fun () -> ()));
  Alcotest.(check (list string))
    "outer saw its own extent" [ "a"; "c" ]
    (List.map fst (Obs.Phases.entries outer));
  Alcotest.(check (list string))
    "inner saw the nested extent" [ "b" ]
    (List.map fst (Obs.Phases.entries inner))

(* ------------------------------------------------------------------ *)
(* JSON round-trip.                                                   *)

let test_json_roundtrip_report () =
  let report =
    with_obs (fun () ->
        Obs.span "ground" (fun () -> Obs.count ~n:42 "atoms");
        Obs.span "solve" (fun () ->
            Obs.record "flips" 10.0;
            Obs.record "flips" 30.0;
            Obs.gauge "cost" 1.5);
        Obs.Report.capture ())
  in
  let text = Obs.Report.to_string report in
  match Obs.Json.parse text with
  | Error e -> Alcotest.fail ("report JSON does not parse: " ^ e)
  | Ok json ->
      (* Printing the parsed tree must reproduce the exact encoding: the
         printer/parser pair is the data contract for BENCH_obs.json. *)
      Alcotest.(check string) "print . parse = id" text (Obs.Json.to_string json);
      let spans =
        match Obs.Json.member "spans" json with
        | Some (Obs.Json.Arr spans) -> spans
        | _ -> Alcotest.fail "no spans array"
      in
      Alcotest.(check int) "two spans" 2 (List.length spans);
      let solve = List.nth spans 1 in
      (match Obs.Json.member "name" solve with
      | Some (Obs.Json.Str s) -> Alcotest.(check string) "name" "solve" s
      | _ -> Alcotest.fail "span without name");
      (match Obs.Json.member "histograms" solve with
      | Some (Obs.Json.Obj [ ("flips", flips) ]) -> (
          match Obs.Json.member "mean" flips with
          | Some (Obs.Json.Num m) ->
              Alcotest.(check (float 1e-9)) "hist mean survives" 20.0 m
          | _ -> Alcotest.fail "histogram without mean")
      | _ -> Alcotest.fail "solve without histograms")

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Obs.Json.parse input with
      | Ok _ -> Alcotest.failf "accepted malformed JSON %S" input
      | Error e ->
          let contains_offset =
            let needle = "offset" in
            let n = String.length needle and m = String.length e in
            let rec at i = i + n <= m && (String.sub e i n = needle || at (i + 1)) in
            at 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "error for %S mentions offset" input)
            true contains_offset)
    [ "{"; "[1,"; "\"unterminated"; "{\"a\":}"; "truefalse"; "{} x" ]

let test_json_escapes () =
  let s = "line\nbreak \"quoted\" \\ tab\t" in
  let text = Obs.Json.to_string (Obs.Json.Str s) in
  match Obs.Json.parse text with
  | Ok (Obs.Json.Str back) -> Alcotest.(check string) "string survives" s back
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Find across merged spans and the self_ms invariant.                *)

let test_find_merged () =
  with_obs (fun () ->
      Obs.span "stage" (fun () ->
          Obs.span "child" (fun () -> Obs.count "c"));
      Obs.span "stage" (fun () ->
          Obs.span "child" (fun () -> Obs.count "c"));
      let r = Obs.Report.capture () in
      match Obs.Report.find r [ "stage"; "child" ] with
      | None -> Alcotest.fail "find stage/child across merged parents"
      | Some n ->
          Alcotest.(check int) "merged calls" 2 n.Obs.Report.calls;
          Alcotest.(check (float 1e-9))
            "merged counter" 2.0
            (List.assoc "c" n.Obs.Report.counters))

let prop_self_ms_nonneg =
  QCheck.Test.make ~name:"self_ms >= 0 on random span trees" ~count:50
    QCheck.(small_list (int_bound 3))
    (fun script ->
      let r =
        with_obs (fun () ->
            (* Interpret the script as a nesting recipe: 0 closes a
               leaf immediately, anything else opens a span around the
               rest of the script. *)
            let rec go = function
              | [] -> ()
              | 0 :: rest ->
                  Obs.span "leaf" (fun () -> ());
                  go rest
              | d :: rest ->
                  Obs.span (Printf.sprintf "n%d" d) (fun () -> go rest)
            in
            go script;
            Obs.Report.capture ())
      in
      let rec ok (n : Obs.Report.node) =
        Obs.Report.self_ms n >= -1e-6 && List.for_all ok n.Obs.Report.children
      in
      List.for_all ok r.Obs.Report.spans)

(* ------------------------------------------------------------------ *)
(* Events: levels, ring-buffer overflow, capacity.                    *)

let test_events_basic () =
  with_obs (fun () ->
      Obs.event "plain" [];
      Obs.event ~level:Obs.Events.Warn "warned"
        [ ("n", Obs.Events.Int 3); ("who", Obs.Events.Str "me") ];
      let r = Obs.Report.capture () in
      Alcotest.(check int) "two events" 2 (List.length r.Obs.Report.events);
      let e1 = List.nth r.Obs.Report.events 1 in
      Alcotest.(check string) "name" "warned" e1.Obs.Events.name;
      Alcotest.(check bool)
        "level" true
        (e1.Obs.Events.level = Obs.Events.Warn);
      Alcotest.(check int) "fields" 2 (List.length e1.Obs.Events.fields);
      Alcotest.(check bool)
        "timestamps oldest-first" true
        ((List.hd r.Obs.Report.events).Obs.Events.t_ms <= e1.Obs.Events.t_ms);
      Alcotest.(check int) "nothing dropped" 0 r.Obs.Report.events_dropped)

let test_events_ring_overflow () =
  let orig = Obs.event_capacity () in
  Fun.protect
    ~finally:(fun () -> Obs.set_event_capacity orig)
    (fun () ->
      with_obs (fun () ->
          Obs.set_event_capacity 8;
          for i = 0 to 19 do
            Obs.event (Printf.sprintf "e%d" i) []
          done;
          let r = Obs.Report.capture () in
          Alcotest.(check int)
            "newest 8 kept" 8
            (List.length r.Obs.Report.events);
          Alcotest.(check (list string))
            "oldest dropped, order preserved"
            (List.init 8 (fun i -> Printf.sprintf "e%d" (12 + i)))
            (List.map
               (fun (e : Obs.Events.event) -> e.Obs.Events.name)
               r.Obs.Report.events);
          Alcotest.(check int) "drop counter" 12 r.Obs.Report.events_dropped))

let test_event_hook () =
  with_obs (fun () ->
      let seen = ref [] in
      Obs.set_event_hook
        (Some (fun e -> seen := e.Obs.Events.name :: !seen));
      Fun.protect
        ~finally:(fun () -> Obs.set_event_hook None)
        (fun () ->
          Obs.event "a" [];
          Obs.event "b" []);
      Alcotest.(check (list string)) "hook saw both" [ "a"; "b" ]
        (List.rev !seen))

(* ------------------------------------------------------------------ *)
(* Series: bounded memory, downsampling keeps a monotone subsequence. *)

let test_series_downsample () =
  let s = Obs.Series.create ~cap:8 () in
  for i = 0 to 999 do
    Obs.Series.add s ~x:(float_of_int i) ~y:(float_of_int (1000 - i))
  done;
  Alcotest.(check int) "count = points offered" 1000 (Obs.Series.count s);
  let pts = Obs.Series.points s in
  Alcotest.(check bool)
    "kept points bounded" true
    (List.length pts <= 9 (* cap + the tracked last point *));
  Alcotest.(check bool) "non-empty" true (pts <> []);
  (* Downsampling drops points but never reorders: x stays strictly
     increasing, and the y of this monotone input stays decreasing. *)
  let rec monotone = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        x1 < x2 && y1 > y2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "subsequence keeps monotonicity" true (monotone pts);
  (* The most recent sample always survives. *)
  Alcotest.(check (float 1e-9)) "last x kept" 999.0 (fst (List.hd (List.rev pts)));
  Alcotest.(check (float 1e-9)) "last y kept" 1.0 (snd (List.hd (List.rev pts)))

let test_series_merge () =
  let a = Obs.Series.create ~cap:16 () and b = Obs.Series.create ~cap:16 () in
  List.iter (fun x -> Obs.Series.add a ~x ~y:(x *. 10.0)) [ 1.0; 3.0; 5.0 ];
  List.iter (fun x -> Obs.Series.add b ~x ~y:(x *. 10.0)) [ 2.0; 4.0 ];
  let m = Obs.Series.merge a b in
  Alcotest.(check int) "merged count" 5 (Obs.Series.count m);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "merged sorted by x"
    [ (1.0, 10.0); (2.0, 20.0); (3.0, 30.0); (4.0, 40.0); (5.0, 50.0) ]
    (Obs.Series.points m)

let test_sample_in_report () =
  with_obs (fun () ->
      Obs.span "solve" (fun () ->
          Obs.sample "cost" ~t_ms:(Prelude.Timing.now_ms ()) ~v:5.0;
          Obs.sample "cost" ~t_ms:(Prelude.Timing.now_ms ()) ~v:3.0);
      let r = Obs.Report.capture () in
      match Obs.Report.find r [ "solve" ] with
      | None -> Alcotest.fail "solve span"
      | Some n -> (
          match List.assoc_opt "cost" n.Obs.Report.series with
          | None -> Alcotest.fail "cost series missing"
          | Some s ->
              Alcotest.(check int) "two samples" 2 (Obs.Series.count s);
              List.iter
                (fun (x, _) ->
                  Alcotest.(check bool)
                    "timestamps are reset-relative and non-negative" true
                    (x >= 0.0))
                (Obs.Series.points s)))

(* ------------------------------------------------------------------ *)
(* JSON hardening: shortest-round-trip floats, non-finite rejection,  *)
(* and a generative round-trip property.                              *)

let test_json_float_roundtrip () =
  List.iter
    (fun f ->
      let text = Obs.Json.to_string (Obs.Json.Num f) in
      match Obs.Json.parse text with
      | Ok (Obs.Json.Num back) ->
          Alcotest.(check bool)
            (Printf.sprintf "%h survives as %s" f text)
            true (back = f)
      | Ok _ -> Alcotest.failf "%s parsed to a non-number" text
      | Error e -> Alcotest.failf "%s: %s" text e)
    [
      1e-7; 6.02e23; 0.1 +. 0.2; 1.7976931348623157e308; 5e-324; -0.375;
      3.141592653589793; 1e22; 123456789.123456789;
    ]

let test_json_nonfinite_rejected () =
  List.iter
    (fun input ->
      match Obs.Json.parse input with
      | Ok _ -> Alcotest.failf "accepted non-finite number %S" input
      | Error e ->
          let mentions_offset =
            let needle = "offset" in
            let n = String.length needle and m = String.length e in
            let rec at i =
              i + n <= m && (String.sub e i n = needle || at (i + 1))
            in
            at 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "error for %S carries an offset" input)
            true mentions_offset)
    [ "1e999"; "-1e999"; "[1, 1e999]"; "{\"v\": -1e999}" ]

let json_gen =
  let open QCheck.Gen in
  let finite =
    map (fun f -> if Float.is_finite f then f else 0.0) float
  in
  let key = string_size ~gen:(char_range 'a' 'z') (1 -- 5) in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun f -> Obs.Json.Num f) finite;
        map (fun i -> Obs.Json.Num (float_of_int i)) small_signed_int;
        map (fun s -> Obs.Json.Str s) (string_size ~gen:printable (0 -- 10));
      ]
  in
  let rec value n =
    if n <= 0 then scalar
    else
      frequency
        [
          (3, scalar);
          ( 1,
            map (fun xs -> Obs.Json.Arr xs)
              (list_size (0 -- 4) (value (n / 2))) );
          ( 1,
            map (fun kvs -> Obs.Json.Obj kvs)
              (list_size (0 -- 4) (pair key (value (n / 2)))) );
        ]
  in
  value 8

let prop_json_roundtrip =
  QCheck.Test.make ~name:"parse . to_string = id" ~count:200
    (QCheck.make json_gen)
    (fun v ->
      match Obs.Json.parse (Obs.Json.to_string v) with
      | Ok back -> back = v
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Solver convergence series: every solver leaves a non-empty series  *)
(* with non-decreasing timestamps; MAP solvers' best cost never rises. *)

let rec node_series (n : Obs.Report.node) =
  n.Obs.Report.series
  @ List.concat_map node_series n.Obs.Report.children

let all_series (r : Obs.Report.t) =
  r.Obs.Report.series @ List.concat_map node_series r.Obs.Report.spans

let convergence_points r name =
  match
    List.filter_map
      (fun (n, s) -> if n = name then Some s else None)
      (all_series r)
  with
  | [] -> Alcotest.failf "series %s missing from report" name
  | first :: rest ->
      Obs.Series.points (List.fold_left Obs.Series.merge first rest)

let check_timeline ?(map_cost = false) name pts =
  Alcotest.(check bool) (name ^ " non-empty") true (pts <> []);
  let rec go = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s time monotone (%.3f <= %.3f)" name x1 x2)
          true (x1 <= x2);
        if map_cost then
          Alcotest.(check bool)
            (Printf.sprintf "%s cost non-increasing (%.3f >= %.3f)" name y1 y2)
            true (y1 >= y2);
        go rest
    | _ -> ()
  in
  go pts

(* Three atoms; soft unit clauses pulling 0 and 1 up, a soft mutual
   exclusion, and a hard unit on atom 2 so the samplers have a hard
   part to respect. *)
let tiny_network () =
  let clause lits weight =
    {
      Mln.Network.literals =
        Array.of_list
          (List.map
             (fun (atom, positive) -> { Mln.Network.atom; positive })
             lits);
      weight;
      source = "tiny";
    }
  in
  {
    Mln.Network.num_atoms = 3;
    clauses =
      [|
        clause [ (0, true) ] (Some 1.0);
        clause [ (1, true) ] (Some 0.6);
        clause [ (0, false); (1, false) ] (Some 0.8);
        clause [ (2, true) ] None;
      |];
  }

let test_walksat_convergence () =
  with_obs (fun () ->
      let network = tiny_network () in
      ignore
        (Mln.Maxwalksat.solve ~seed:3 ~init:(Array.make 3 false) network);
      let r = Obs.Report.capture () in
      check_timeline ~map_cost:true "walksat.convergence"
        (convergence_points r "walksat.convergence"))

let test_milp_convergence () =
  with_obs (fun () ->
      let network = tiny_network () in
      (match
         Mln.Ilp_encoding.solve ~deadline:Prelude.Deadline.none network
       with
      | Some _ -> ()
      | None -> Alcotest.fail "tiny network should be feasible");
      let r = Obs.Report.capture () in
      check_timeline ~map_cost:true "milp.convergence"
        (convergence_points r "milp.convergence"))

let test_gibbs_convergence () =
  with_obs (fun () ->
      ignore
        (Mln.Gibbs.run ~seed:3 ~burn_in:10 ~samples:80 (tiny_network ()));
      let r = Obs.Report.capture () in
      let pts = convergence_points r "gibbs.convergence" in
      check_timeline "gibbs.convergence" pts;
      (* Cumulative recorded sweeps only grow. *)
      let rec nondecreasing = function
        | (_, y1) :: ((_, y2) :: _ as rest) ->
            y1 <= y2 && nondecreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "cumulative samples" true (nondecreasing pts))

let test_mcsat_convergence () =
  with_obs (fun () ->
      ignore
        (Mln.Mcsat.run ~seed:3 ~burn_in:4 ~samples:24 ~sample_flips:500
           (tiny_network ()));
      let r = Obs.Report.capture () in
      check_timeline "mcsat.convergence"
        (convergence_points r "mcsat.convergence"))

let test_admm_convergence () =
  with_obs (fun () ->
      (* minimize max(0, 1 - x): ADMM walks x toward 1. *)
      let model =
        {
          Psl.Hlmrf.num_vars = 1;
          potentials =
            [|
              {
                Psl.Hlmrf.weight = 1.0;
                expr = { coeffs = [ (0, -1.0) ]; const = 1.0 };
              };
            |];
          constraints = [||];
        }
      in
      ignore (Psl.Admm.solve ~max_iters:200 model);
      let r = Obs.Report.capture () in
      check_timeline ~map_cost:true "admm.convergence"
        (convergence_points r "admm.convergence"))

(* ------------------------------------------------------------------ *)
(* Worker profiling: parallel runs account the same work, worker      *)
(* lanes only exist when the crew actually ran tasks.                 *)

let counter_total r name =
  let rec node_sum (n : Obs.Report.node) =
    Option.value (List.assoc_opt name n.Obs.Report.counters) ~default:0.0
    +. List.fold_left (fun acc c -> acc +. node_sum c) 0.0 n.Obs.Report.children
  in
  Option.value (List.assoc_opt name r.Obs.Report.counters) ~default:0.0
  +. List.fold_left (fun acc n -> acc +. node_sum n) 0.0 r.Obs.Report.spans

let span_calls r name =
  let rec node_sum (n : Obs.Report.node) =
    (if n.Obs.Report.name = name then n.Obs.Report.calls else 0)
    + List.fold_left (fun acc c -> acc + node_sum c) 0 n.Obs.Report.children
  in
  List.fold_left (fun acc n -> acc + node_sum n) 0 r.Obs.Report.spans

let test_jobs_report_equivalence () =
  let run jobs =
    with_obs (fun () ->
        let pool = Prelude.Pool.create ~jobs in
        Obs.span "work" (fun () ->
            ignore
              (Prelude.Pool.map pool
                 (fun i ->
                   Obs.count "item";
                   i * i)
                 (List.init 12 Fun.id)));
        Obs.Report.capture ())
  in
  let r1 = run 1 and r4 = run 4 in
  (* The same work is accounted at every job count, wherever the tasks
     ran (coordinator span at jobs=1, task spans in worker lanes at
     jobs=4). *)
  Alcotest.(check (float 1e-9)) "items at jobs=1" 12.0 (counter_total r1 "item");
  Alcotest.(check (float 1e-9)) "items at jobs=4" 12.0 (counter_total r4 "item");
  (* Sequential pools bypass the crew: no task spans, no worker lanes. *)
  Alcotest.(check int) "no task spans at jobs=1" 0 (span_calls r1 "task");
  Alcotest.(check bool)
    "no worker lanes at jobs=1" true
    (List.for_all
       (fun (n : Obs.Report.node) ->
         not
           (String.length n.Obs.Report.name >= 8
           && String.sub n.Obs.Report.name 0 8 = "workers/"))
       r1.Obs.Report.spans);
  (* The crew path wraps every dealt task in a span (the coordinator
     deals too, so lanes are scheduling-dependent — only the total is
     stable). *)
  Alcotest.(check int) "12 task spans at jobs=4" 12 (span_calls r4 "task")

(* ------------------------------------------------------------------ *)
(* Exports: the trace and metrics renderings of a captured report pass *)
(* their own validators.                                              *)

let test_export_validates () =
  with_obs (fun () ->
      Obs.span "resolve" (fun () ->
          Obs.span "ground" (fun () -> Obs.count ~n:7 "atoms");
          Obs.span "solve" (fun () ->
              Obs.record "flips" 5.0;
              Obs.gauge "cost" 1.5;
              Obs.sample "cost" ~t_ms:(Prelude.Timing.now_ms ()) ~v:1.5));
      Obs.event ~level:Obs.Events.Warn "something" [ ("n", Obs.Events.Int 1) ];
      let r = Obs.Report.capture () in
      (match Obs.Export.validate_trace (Obs.Export.chrome_trace r) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("chrome trace invalid: " ^ e));
      (match Obs.Export.validate_metrics (Obs.Export.open_metrics r) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("open metrics invalid: " ^ e));
      (* The JSON report with events and series still round-trips. *)
      let text = Obs.Report.to_string r in
      match Obs.Json.parse text with
      | Error e -> Alcotest.fail ("report JSON: " ^ e)
      | Ok json ->
          Alcotest.(check string)
            "print . parse = id" text
            (Obs.Json.to_string json))

let test_trace_validator_rejects () =
  List.iter
    (fun (what, json) ->
      match Obs.Export.validate_trace json with
      | Ok () -> Alcotest.failf "validator accepted %s" what
      | Error _ -> ())
    [
      ("a non-object", Obs.Json.Num 1.0);
      ("missing traceEvents", Obs.Json.Obj []);
      ("empty traceEvents", Obs.Json.Obj [ ("traceEvents", Obs.Json.Arr []) ]);
      ( "an incomplete event",
        Obs.Json.Obj
          [
            ( "traceEvents",
              Obs.Json.Arr
                [ Obs.Json.Obj [ ("name", Obs.Json.Str "x") ] ] );
          ] );
    ]

let test_metrics_validator_rejects () =
  List.iter
    (fun (what, text) ->
      match Obs.Export.validate_metrics text with
      | Ok () -> Alcotest.failf "validator accepted %s" what
      | Error _ -> ())
    [
      ("an empty exposition", "");
      ("a missing EOF", "# TYPE a gauge\na 1\n");
      ("an unknown type", "# TYPE a banana\na 1\n# EOF\n");
      ("a bare word sample", "# TYPE a gauge\na one\n# EOF\n");
      ("unbalanced labels", "# TYPE a gauge\na{x=\"1\" 2\n# EOF\n");
    ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "same-name merging" `Quick test_span_merging;
          Alcotest.test_case "exception balance" `Quick
            test_span_exception_balance;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "root metrics" `Quick test_root_metrics;
          Alcotest.test_case "trace hook" `Quick test_trace_hook;
          Alcotest.test_case "find across merged spans" `Quick
            test_find_merged;
          QCheck_alcotest.to_alcotest prop_self_ms_nonneg;
        ] );
      ( "events",
        [
          Alcotest.test_case "levels and fields" `Quick test_events_basic;
          Alcotest.test_case "ring overflow keeps newest" `Quick
            test_events_ring_overflow;
          Alcotest.test_case "event hook streams" `Quick test_event_hook;
        ] );
      ( "series",
        [
          Alcotest.test_case "downsampling stays monotone" `Quick
            test_series_downsample;
          Alcotest.test_case "merge" `Quick test_series_merge;
          Alcotest.test_case "sample lands in the span" `Quick
            test_sample_in_report;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "maxwalksat" `Quick test_walksat_convergence;
          Alcotest.test_case "milp" `Quick test_milp_convergence;
          Alcotest.test_case "gibbs" `Quick test_gibbs_convergence;
          Alcotest.test_case "mcsat" `Quick test_mcsat_convergence;
          Alcotest.test_case "admm" `Quick test_admm_convergence;
        ] );
      ( "workers",
        [
          Alcotest.test_case "jobs=1 and jobs=4 account the same work"
            `Quick test_jobs_report_equivalence;
        ] );
      ( "export",
        [
          Alcotest.test_case "trace and metrics validate" `Quick
            test_export_validates;
          Alcotest.test_case "trace validator rejects" `Quick
            test_trace_validator_rejects;
          Alcotest.test_case "metrics validator rejects" `Quick
            test_metrics_validator_rejects;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles 1..100" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "reservoir past the cap" `Quick
            test_histogram_reservoir_cap;
          QCheck_alcotest.to_alcotest prop_histogram_merge_stable;
        ] );
      ( "phases",
        [
          Alcotest.test_case "captures with collection disabled" `Quick
            test_phases_capture_when_disabled;
          Alcotest.test_case "nested spans attribute to outermost" `Quick
            test_phases_nested_outermost;
          Alcotest.test_case "installation scoping" `Quick
            test_phases_uninstalled_context;
        ] );
      ( "json",
        [
          Alcotest.test_case "report round-trip" `Quick
            test_json_roundtrip_report;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "string escapes" `Quick test_json_escapes;
          Alcotest.test_case "float round-trip" `Quick
            test_json_float_roundtrip;
          Alcotest.test_case "non-finite rejected" `Quick
            test_json_nonfinite_rejected;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
    ]
