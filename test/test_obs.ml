(* Unit tests for the observability library: span nesting, metric
   accumulation across merged spans, histogram quantiles, and the JSON
   round-trip used by the CLI and the benchmark exporter. *)

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_trace None;
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Spans.                                                             *)

let test_span_nesting () =
  with_obs (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () -> ());
          Obs.span "inner2" (fun () -> ()));
      let r = Obs.Report.capture () in
      Alcotest.(check int) "one top-level span" 1 (List.length r.Obs.Report.spans);
      let outer = List.hd r.Obs.Report.spans in
      Alcotest.(check string) "outer name" "outer" outer.Obs.Report.name;
      Alcotest.(check (list string))
        "children in order" [ "inner"; "inner2" ]
        (List.map
           (fun (n : Obs.Report.node) -> n.Obs.Report.name)
           outer.Obs.Report.children);
      match Obs.Report.find r [ "outer"; "inner" ] with
      | Some n -> Alcotest.(check int) "inner calls" 1 n.Obs.Report.calls
      | None -> Alcotest.fail "find outer/inner")

let test_span_merging () =
  with_obs (fun () ->
      for _ = 1 to 3 do
        Obs.span "stage" (fun () -> Obs.count "work")
      done;
      let r = Obs.Report.capture () in
      Alcotest.(check int) "merged to one node" 1 (List.length r.Obs.Report.spans);
      let n = List.hd r.Obs.Report.spans in
      Alcotest.(check int) "three calls" 3 n.Obs.Report.calls;
      Alcotest.(check (float 1e-9))
        "counters accumulate" 3.0
        (List.assoc "work" n.Obs.Report.counters))

let test_span_exception_balance () =
  with_obs (fun () ->
      (try
         Obs.span "outer" (fun () ->
             Obs.span "boom" (fun () -> failwith "x"))
       with Failure _ -> ());
      (* The stack must be balanced: a fresh span lands at top level. *)
      Obs.span "after" (fun () -> ());
      let r = Obs.Report.capture () in
      Alcotest.(check (list string))
        "both top level" [ "outer"; "after" ]
        (List.map
           (fun (n : Obs.Report.node) -> n.Obs.Report.name)
           r.Obs.Report.spans);
      match Obs.Report.find r [ "outer"; "boom" ] with
      | Some n -> Alcotest.(check int) "raising span closed" 1 n.Obs.Report.calls
      | None -> Alcotest.fail "raising span lost")

let test_disabled_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  Obs.span "ghost" (fun () -> Obs.count "ghost.count");
  Obs.set_enabled true;
  let r = Obs.Report.capture () in
  Obs.set_enabled false;
  Alcotest.(check int) "no spans recorded" 0 (List.length r.Obs.Report.spans);
  Alcotest.(check int)
    "no counters recorded" 0
    (List.length r.Obs.Report.counters)

let test_root_metrics () =
  with_obs (fun () ->
      Obs.count ~n:5 "loose";
      Obs.gauge "level" 0.75;
      let r = Obs.Report.capture () in
      Alcotest.(check (float 1e-9))
        "root counter" 5.0
        (List.assoc "loose" r.Obs.Report.counters);
      Alcotest.(check (float 1e-9))
        "root gauge" 0.75
        (List.assoc "level" r.Obs.Report.gauges))

let test_trace_hook () =
  with_obs (fun () ->
      let events = ref [] in
      Obs.set_trace
        (Some (fun ~depth name _ms -> events := (depth, name) :: !events));
      Obs.span "a" (fun () -> Obs.span "b" (fun () -> ()));
      Obs.set_trace None;
      (* Children close before parents; depth counts from 0 at top level. *)
      Alcotest.(check (list (pair int string)))
        "close order and depths"
        [ (1, "b"); (0, "a") ]
        (List.rev !events))

(* ------------------------------------------------------------------ *)
(* Histograms.                                                        *)

let test_histogram_quantiles () =
  let h = Obs.Histogram.create () in
  for i = 100 downto 1 do
    Obs.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "total" 5050.0 (Obs.Histogram.total h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Histogram.minimum h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Obs.Histogram.maximum h);
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Obs.Histogram.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Obs.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p90" 90.0 (Obs.Histogram.quantile h 0.9);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Obs.Histogram.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "p100 = max" 100.0 (Obs.Histogram.quantile h 1.0)

let test_histogram_merge () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  List.iter (Obs.Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Obs.Histogram.add b) [ 3.0; 4.0 ];
  let m = Obs.Histogram.merge a b in
  Alcotest.(check int) "merged count" 4 (Obs.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged total" 10.0 (Obs.Histogram.total m);
  (* Merge must not alias the inputs. *)
  Obs.Histogram.add m 99.0;
  Alcotest.(check int) "input a untouched" 2 (Obs.Histogram.count a)

(* ------------------------------------------------------------------ *)
(* JSON round-trip.                                                   *)

let test_json_roundtrip_report () =
  let report =
    with_obs (fun () ->
        Obs.span "ground" (fun () -> Obs.count ~n:42 "atoms");
        Obs.span "solve" (fun () ->
            Obs.record "flips" 10.0;
            Obs.record "flips" 30.0;
            Obs.gauge "cost" 1.5);
        Obs.Report.capture ())
  in
  let text = Obs.Report.to_string report in
  match Obs.Json.parse text with
  | Error e -> Alcotest.fail ("report JSON does not parse: " ^ e)
  | Ok json ->
      (* Printing the parsed tree must reproduce the exact encoding: the
         printer/parser pair is the data contract for BENCH_obs.json. *)
      Alcotest.(check string) "print . parse = id" text (Obs.Json.to_string json);
      let spans =
        match Obs.Json.member "spans" json with
        | Some (Obs.Json.Arr spans) -> spans
        | _ -> Alcotest.fail "no spans array"
      in
      Alcotest.(check int) "two spans" 2 (List.length spans);
      let solve = List.nth spans 1 in
      (match Obs.Json.member "name" solve with
      | Some (Obs.Json.Str s) -> Alcotest.(check string) "name" "solve" s
      | _ -> Alcotest.fail "span without name");
      (match Obs.Json.member "histograms" solve with
      | Some (Obs.Json.Obj [ ("flips", flips) ]) -> (
          match Obs.Json.member "mean" flips with
          | Some (Obs.Json.Num m) ->
              Alcotest.(check (float 1e-9)) "hist mean survives" 20.0 m
          | _ -> Alcotest.fail "histogram without mean")
      | _ -> Alcotest.fail "solve without histograms")

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Obs.Json.parse input with
      | Ok _ -> Alcotest.failf "accepted malformed JSON %S" input
      | Error e ->
          let contains_offset =
            let needle = "offset" in
            let n = String.length needle and m = String.length e in
            let rec at i = i + n <= m && (String.sub e i n = needle || at (i + 1)) in
            at 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "error for %S mentions offset" input)
            true contains_offset)
    [ "{"; "[1,"; "\"unterminated"; "{\"a\":}"; "truefalse"; "{} x" ]

let test_json_escapes () =
  let s = "line\nbreak \"quoted\" \\ tab\t" in
  let text = Obs.Json.to_string (Obs.Json.Str s) in
  match Obs.Json.parse text with
  | Ok (Obs.Json.Str back) -> Alcotest.(check string) "string survives" s back
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "same-name merging" `Quick test_span_merging;
          Alcotest.test_case "exception balance" `Quick
            test_span_exception_balance;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "root metrics" `Quick test_root_metrics;
          Alcotest.test_case "trace hook" `Quick test_trace_hook;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles 1..100" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "json",
        [
          Alcotest.test_case "report round-trip" `Quick
            test_json_roundtrip_report;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "string escapes" `Quick test_json_escapes;
        ] );
    ]
