(* Tests for pseudo-likelihood weight learning. *)

module Learn = Mln.Learn
module Store = Grounder.Atom_store

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

(* A corpus where rule "good" (playsFor -> worksFor) is always confirmed
   (the worksFor facts are present) and rule "bad" (playsFor -> captainOf)
   is never confirmed. *)
let corpus n =
  let g = Kg.Graph.create () in
  for i = 0 to n - 1 do
    let who = Printf.sprintf "P%d" i in
    ignore
      (Kg.Graph.add g
         (Kg.Quad.v who "playsFor" (Kg.Term.iri "Club") (2000, 2005) 0.9));
    ignore
      (Kg.Graph.add g
         (Kg.Quad.v who "worksFor" (Kg.Term.iri "Club") (2000, 2005) 0.9))
  done;
  g

let rules () =
  parse_rules
    {|rule good 1.0: playsFor(x, y)@t => worksFor(x, y)@t .
rule bad 1.0: playsFor(x, y)@t => captainOf(x, y)@t .|}

let learn_on graph rules =
  let store = Store.of_graph graph in
  let ground = Grounder.Ground.run store rules in
  (store, ground, Learn.learn store ground.Grounder.Ground.instances rules)

let test_confirmed_rule_beats_unconfirmed () =
  let _, _, result = learn_on (corpus 30) (rules ()) in
  let w name = List.assoc name result.Learn.weights in
  Alcotest.(check bool)
    (Printf.sprintf "good %.2f > bad %.2f" (w "good") (w "bad"))
    true
    (w "good" > w "bad")

let test_pll_increases () =
  let _, _, result = learn_on (corpus 30) (rules ()) in
  match result.Learn.pll_trace with
  | first :: _ ->
      let last = List.nth result.Learn.pll_trace
          (List.length result.Learn.pll_trace - 1)
      in
      Alcotest.(check bool)
        (Printf.sprintf "pll %.2f -> %.2f" first last)
        true (last >= first)
  | [] -> Alcotest.fail "empty trace"

let test_hard_rules_untouched () =
  let rules =
    parse_rules
      {|rule soft 1.0: playsFor(x, y)@t => worksFor(x, y)@t .
constraint hard: playsFor(x, y)@t ^ playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .|}
  in
  let _, _, result = learn_on (corpus 10) rules in
  Alcotest.(check int) "only soft rules learned" 1
    (List.length result.Learn.weights);
  Alcotest.(check bool) "soft entry present" true
    (List.mem_assoc "soft" result.Learn.weights)

let test_apply () =
  let rs = rules () in
  let _, _, result = learn_on (corpus 20) rs in
  let updated = Learn.apply result rs in
  List.iter2
    (fun (old_r : Logic.Rule.t) (new_r : Logic.Rule.t) ->
      Alcotest.(check string) "name preserved" old_r.name new_r.name;
      match new_r.weight with
      | Some w ->
          Alcotest.(check bool) "weight is the learned one" true
            (Some w = List.assoc_opt new_r.name result.Learn.weights)
      | None -> Alcotest.fail "soft rule lost its weight")
    rs updated

let test_weights_bounded () =
  let options = { Learn.default_options with Learn.iterations = 500 } in
  let store = Store.of_graph (corpus 30) in
  let ground = Grounder.Ground.run store (rules ()) in
  let result =
    Learn.learn ~options store ground.Grounder.Ground.instances (rules ())
  in
  List.iter
    (fun (_, w) ->
      Alcotest.(check bool) "within bounds" true
        (w >= options.Learn.min_weight && w <= options.Learn.max_weight))
    result.Learn.weights

let test_violated_constraint_weight_drops () =
  (* A soft constraint violated by half the data should end with a lower
     weight than one the data always satisfies. *)
  let g = Kg.Graph.create () in
  for i = 0 to 19 do
    let who = Printf.sprintf "P%d" i in
    ignore
      (Kg.Graph.add g (Kg.Quad.v who "p" (Kg.Term.iri "A") (2000, 2005) 0.9));
    (* Half the subjects also have an overlapping second object. *)
    if i mod 2 = 0 then
      ignore
        (Kg.Graph.add g (Kg.Quad.v who "p" (Kg.Term.iri "B") (2003, 2008) 0.9));
    ignore
      (Kg.Graph.add g (Kg.Quad.v who "q" (Kg.Term.iri "C") (2010, 2012) 0.9))
  done;
  let rules =
    parse_rules
      {|constraint often_violated 1.0: p(x, y)@t ^ p(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint never_violated 1.0: q(x, y)@t ^ q(x, z)@t2 ^ y != z => disjoint(t, t2) .|}
  in
  let _, _, result = learn_on g rules in
  let w name = List.assoc name result.Learn.weights in
  Alcotest.(check bool)
    (Printf.sprintf "violated %.3f < intact %.3f" (w "often_violated")
       (w "never_violated"))
    true
    (w "often_violated" < w "never_violated")

let test_pll_function_sanity () =
  (* PLL of a world that satisfies everything beats one that does not. *)
  let graph = corpus 5 in
  let rs = rules () in
  let store = Store.of_graph graph in
  let ground = Grounder.Ground.run store rs in
  let network = Mln.Network.build store ground.Grounder.Ground.instances in
  let all_true = Array.make network.Mln.Network.num_atoms true in
  let all_false = Array.make network.Mln.Network.num_atoms false in
  Alcotest.(check bool) "true world more probable" true
    (Learn.pseudo_log_likelihood network all_true
    > Learn.pseudo_log_likelihood network all_false)

let test_learned_weights_usable_by_engine () =
  let rs = rules () in
  let _, _, result = learn_on (corpus 20) rs in
  let updated = Learn.apply result rs in
  (* Resolution with learned weights still derives worksFor facts. *)
  let g =
    Kg.Graph.of_list
      [ Kg.Quad.v "New" "playsFor" (Kg.Term.iri "Club") (2010, 2012) 0.9 ]
  in
  let out = Tecore.Engine.resolve g updated in
  Alcotest.(check bool) "derives with learned weight" true
    (List.exists
       (fun (d : Tecore.Conflict.derived_fact) ->
         d.Tecore.Conflict.atom.Logic.Atom.Ground.predicate = "worksFor")
       out.Tecore.Engine.resolution.Tecore.Conflict.derived)

let () =
  Alcotest.run "learn"
    [
      ( "pseudo-likelihood",
        [
          Alcotest.test_case "confirmed beats unconfirmed" `Quick
            test_confirmed_rule_beats_unconfirmed;
          Alcotest.test_case "pll increases" `Quick test_pll_increases;
          Alcotest.test_case "hard rules untouched" `Quick
            test_hard_rules_untouched;
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "weights bounded" `Quick test_weights_bounded;
          Alcotest.test_case "violated constraint drops" `Quick
            test_violated_constraint_weight_drops;
          Alcotest.test_case "pll sanity" `Quick test_pll_function_sanity;
          Alcotest.test_case "usable by engine" `Quick
            test_learned_weights_usable_by_engine;
        ] );
    ]
