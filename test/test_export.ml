(* Tests for the solver-syntax exports (Alchemy-style MLN, PSL). *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let paper_rules () =
  parse_rules
    {|rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .
constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .|}

let test_mln_weighted_rule () =
  let text = Tecore.Export.to_mln (paper_rules ()) in
  Alcotest.(check bool) "weight prefix" true
    (contains text "2.5 playsFor(x, t_lo, t_hi)" || contains text "2.5 playsFor(x, y, t_lo, t_hi)");
  Alcotest.(check bool) "implication" true (contains text "=>");
  Alcotest.(check bool) "head atom" true
    (contains text "worksFor(x, y, t_lo, t_hi)")

let test_mln_hard_rule_period () =
  let text = Tecore.Export.to_mln (paper_rules ()) in
  (* hard formulas end with a period in Alchemy syntax *)
  Alcotest.(check bool) "hard marker" true (contains text ".");
  Alcotest.(check bool) "disjoint flattened to endpoints" true
    (contains text "t_hi + 1 < t2_lo")

let test_mln_declarations () =
  let text = Tecore.Export.to_mln (paper_rules ()) in
  Alcotest.(check bool) "playsFor declared" true
    (contains text "playsFor(arg0, arg1, lo, hi)");
  Alcotest.(check bool) "coach declared" true
    (contains text "coach(arg0, arg1, lo, hi)");
  Alcotest.(check bool) "head predicate declared" true
    (contains text "worksFor(arg0, arg1, lo, hi)")

let test_mln_constant_sanitisation () =
  let rules =
    parse_rules "rule k 1: coach(x, Real_Montara)@t => Top(x) ."
  in
  let text = Tecore.Export.to_mln rules in
  Alcotest.(check bool) "constant kept upper" true
    (contains text "Real_Montara")

let test_evidence_export () =
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
        Kg.Quad.v "CR" "birthDate" (Kg.Term.int 1951) (1951, 2017) 1.0;
      ]
  in
  let text = Tecore.Export.to_mln_evidence graph in
  Alcotest.(check bool) "soft evidence has weight" true
    (contains text "0.9 coach(CR, Chelsea, 2000, 2004)");
  Alcotest.(check bool) "hard evidence bare" true
    (contains text "birthDate(CR, C1951, 1951, 2017)");
  Alcotest.(check bool) "hard line has no weight prefix" true
    (not (contains text "1 birthDate"))

let test_psl_rule () =
  let text = Tecore.Export.to_psl (paper_rules ()) in
  Alcotest.(check bool) "weighted arrow rule" true
    (contains text "2.5: playsFor(x, y, t_lo, t_hi) -> worksFor(x, y, t_lo, t_hi)");
  Alcotest.(check bool) "hard rule with period" true (contains text " .")

let test_allen_encodings () =
  let rules =
    parse_rules
      {|constraint a: p(x, y)@t ^ q(x, z)@t2 => before(t, t2) .
constraint b: p(x, y)@t ^ q(x, z)@t2 => intersects(t, t2) .
constraint c: p(x, y)@t ^ q(x, z)@t2 => during(t, t2) .|}
  in
  let text = Tecore.Export.to_mln rules in
  Alcotest.(check bool) "before" true (contains text "t_hi + 1 < t2_lo");
  Alcotest.(check bool) "intersects" true
    (contains text "t_lo <= t2_hi ^ t2_lo <= t_hi");
  Alcotest.(check bool) "during" true
    (contains text "t2_lo < t_lo ^ t_hi < t2_hi")

let test_computed_interval_flattening () =
  let rules =
    parse_rules
      "rule f2 1.6: p(x, y)@t ^ q(y, z)@t2 ^ intersects(t, t2) => r(x, z)@(t * t2) ."
  in
  let text = Tecore.Export.to_mln rules in
  (* The intersection's endpoints are the max/min of the operands; our
     flattening approximates with the operand endpoints. *)
  Alcotest.(check bool) "head emitted" true (contains text "r(x, z,")

let test_save () =
  let path = Filename.temp_file "tecore" ".mln" in
  Tecore.Export.save ~path "content";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "saved" "content" line

let () =
  Alcotest.run "export"
    [
      ( "mln",
        [
          Alcotest.test_case "weighted rule" `Quick test_mln_weighted_rule;
          Alcotest.test_case "hard rule" `Quick test_mln_hard_rule_period;
          Alcotest.test_case "declarations" `Quick test_mln_declarations;
          Alcotest.test_case "constants" `Quick test_mln_constant_sanitisation;
          Alcotest.test_case "evidence" `Quick test_evidence_export;
          Alcotest.test_case "allen encodings" `Quick test_allen_encodings;
          Alcotest.test_case "computed intervals" `Quick
            test_computed_interval_flattening;
        ] );
      ( "psl",
        [
          Alcotest.test_case "rules" `Quick test_psl_rule;
          Alcotest.test_case "save" `Quick test_save;
        ] );
    ]
