(* Tests for the weighted FOL layer: terms, substitutions, atoms,
   conditions and rules. *)

open Logic
module I = Kg.Interval

let iv = I.make

let subst_bind pairs tpairs =
  let s =
    List.fold_left
      (fun s (v, c) ->
        match Subst.bind s v c with
        | Some s -> s
        | None -> Alcotest.fail ("bind failed on " ^ v))
      Subst.empty pairs
  in
  List.fold_left
    (fun s (v, i) ->
      match Subst.bind_time s v i with
      | Some s -> s
      | None -> Alcotest.fail ("bind_time failed on " ^ v))
    s tpairs

let test_subst_bind_conflict () =
  let s = subst_bind [ ("x", Kg.Term.iri "a") ] [] in
  Alcotest.(check bool) "rebind same ok" true
    (Subst.bind s "x" (Kg.Term.iri "a") <> None);
  Alcotest.(check bool) "rebind different fails" true
    (Subst.bind s "x" (Kg.Term.iri "b") = None)

let test_subst_eval_time () =
  let s = subst_bind [] [ ("t", iv 1 5); ("u", iv 3 9) ] in
  Alcotest.(check bool) "var" true
    (Subst.eval_time s (Lterm.Tvar "t") = Some (iv 1 5));
  Alcotest.(check bool) "const" true
    (Subst.eval_time s (Lterm.Tconst (iv 7 8)) = Some (iv 7 8));
  Alcotest.(check bool) "intersection" true
    (Subst.eval_time s (Lterm.Tinter (Lterm.Tvar "t", Lterm.Tvar "u"))
    = Some (iv 3 5));
  Alcotest.(check bool) "hull" true
    (Subst.eval_time s (Lterm.Thull (Lterm.Tvar "t", Lterm.Tvar "u"))
    = Some (iv 1 9));
  (* Empty intersection evaluates to None: the rule instance is dropped. *)
  let s2 = subst_bind [] [ ("t", iv 1 2); ("u", iv 5 9) ] in
  Alcotest.(check bool) "empty intersection" true
    (Subst.eval_time s2 (Lterm.Tinter (Lterm.Tvar "t", Lterm.Tvar "u")) = None);
  Alcotest.(check bool) "unbound" true
    (Subst.eval_time s (Lterm.Tvar "zz") = None)

let test_lterm_vars () =
  Alcotest.(check (list string)) "var" [ "x" ] (Lterm.vars (Lterm.var "x"));
  Alcotest.(check (list string)) "const" [] (Lterm.vars (Lterm.iri "a"));
  Alcotest.(check (list string)) "tvars dedup" [ "t"; "u" ]
    (Lterm.tvars
       (Lterm.Tinter (Lterm.Tvar "t", Lterm.Thull (Lterm.Tvar "u", Lterm.Tvar "t"))))

let quad_atom p s o t =
  Atom.quad_pattern p ~subject:s ~object_:o ~time:t

let test_atom_vars () =
  let a =
    quad_atom "coach" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t")
  in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Atom.vars a);
  Alcotest.(check (list string)) "tvars" [ "t" ] (Atom.tvars a);
  Alcotest.(check int) "arity" 2 (Atom.arity a);
  Alcotest.(check bool) "not ground" false (Atom.is_ground a);
  let repeated = Atom.make "p" [ Lterm.var "x"; Lterm.var "x" ] in
  Alcotest.(check (list string)) "dedup vars" [ "x" ] (Atom.vars repeated)

let test_atom_instantiate () =
  let a =
    quad_atom "coach" (Lterm.var "x") (Lterm.iri "Chelsea") (Lterm.Tvar "t")
  in
  let s = subst_bind [ ("x", Kg.Term.iri "CR") ] [ ("t", iv 2000 2004) ] in
  (match Atom.instantiate s a with
  | Some g ->
      Alcotest.(check string) "pp"
        "coach(CR, Chelsea)@[2000,2004]"
        (Atom.Ground.to_string g)
  | None -> Alcotest.fail "instantiate failed");
  (* Unbound variable: no instance. *)
  Alcotest.(check bool) "unbound" true
    (Atom.instantiate Subst.empty a = None);
  (* Computed empty interval: no instance. *)
  let computed =
    quad_atom "livesIn" (Lterm.var "x") (Lterm.iri "Rome")
      (Lterm.Tinter (Lterm.Tconst (iv 1 2), Lterm.Tconst (iv 5 6)))
  in
  Alcotest.(check bool) "empty computed time" true
    (Atom.instantiate s computed = None)

let test_atom_match_ground () =
  let pattern =
    quad_atom "coach" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t")
  in
  let ground =
    Atom.Ground.make ~time:(iv 2000 2004) "coach"
      [ Kg.Term.iri "CR"; Kg.Term.iri "Chelsea" ]
  in
  (match Atom.match_ground pattern ground Subst.empty with
  | Some s ->
      Alcotest.(check bool) "x bound" true
        (Subst.find s "x" = Some (Kg.Term.iri "CR"));
      Alcotest.(check bool) "t bound" true
        (Subst.find_time s "t" = Some (iv 2000 2004))
  | None -> Alcotest.fail "match failed");
  (* Mismatched predicate. *)
  let other = Atom.Ground.make ~time:(iv 1 2) "playsFor" [ Kg.Term.iri "a"; Kg.Term.iri "b" ] in
  Alcotest.(check bool) "wrong predicate" true
    (Atom.match_ground pattern other Subst.empty = None);
  (* Repeated variable must match equal constants. *)
  let selfp = Atom.make "p" [ Lterm.var "x"; Lterm.var "x" ] in
  let diag = Atom.Ground.make "p" [ Kg.Term.iri "a"; Kg.Term.iri "a" ] in
  let off = Atom.Ground.make "p" [ Kg.Term.iri "a"; Kg.Term.iri "b" ] in
  Alcotest.(check bool) "diagonal matches" true
    (Atom.match_ground selfp diag Subst.empty <> None);
  Alcotest.(check bool) "off-diagonal does not" true
    (Atom.match_ground selfp off Subst.empty = None)

let test_ground_quad_conversion () =
  let q = Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9 in
  let g = Atom.Ground.of_quad q in
  Alcotest.(check string) "predicate" "coach" g.Atom.Ground.predicate;
  (match Atom.Ground.to_quad ~confidence:0.9 g with
  | Some q' -> Alcotest.(check bool) "roundtrip" true (Kg.Quad.equal q q')
  | None -> Alcotest.fail "to_quad failed");
  (* Atemporal and non-binary atoms have no quad form. *)
  Alcotest.(check bool) "atemporal" true
    (Atom.Ground.to_quad (Atom.Ground.make "p" [ Kg.Term.iri "a"; Kg.Term.iri "b" ]) = None);
  Alcotest.(check bool) "unary" true
    (Atom.Ground.to_quad
       (Atom.Ground.make ~time:(iv 1 2) "p" [ Kg.Term.iri "a" ])
    = None)

let test_cond_allen () =
  let s = subst_bind [] [ ("t", iv 1 4); ("u", iv 5 9) ] in
  let c = Cond.allen_set Kg.Allen.Set.disjoint (Lterm.Tvar "t") (Lterm.Tvar "u") in
  Alcotest.(check (option bool)) "disjoint true" (Some true) (Cond.eval s c);
  let c2 = Cond.allen Kg.Allen.Overlaps (Lterm.Tvar "t") (Lterm.Tvar "u") in
  Alcotest.(check (option bool)) "overlaps false" (Some false) (Cond.eval s c2);
  let unbound = Cond.allen Kg.Allen.Before (Lterm.Tvar "zz") (Lterm.Tvar "u") in
  Alcotest.(check (option bool)) "unbound" None (Cond.eval s unbound)

let test_cond_arith () =
  let s =
    subst_bind
      [ ("z", Kg.Term.int 1951) ]
      [ ("t", iv 1984 1986); ("u", iv 1951 2017) ]
  in
  (* start(t) - start(u) < 20: 1984 - 1951 = 33, so false. *)
  let age_cond =
    Cond.Cmp
      (Cond.Lt, Cond.Sub (Cond.Start_of (Lterm.Tvar "t"),
                          Cond.Start_of (Lterm.Tvar "u")),
       Cond.Num 20)
  in
  Alcotest.(check (option bool)) "33 < 20 false" (Some false)
    (Cond.eval s age_cond);
  let len_cond =
    Cond.Cmp (Cond.Eq_cmp, Cond.Length_of (Lterm.Tvar "t"), Cond.Num 3)
  in
  Alcotest.(check (option bool)) "length" (Some true) (Cond.eval s len_cond);
  let value_cond =
    Cond.Cmp
      (Cond.Ge, Cond.Sub (Cond.End_of (Lterm.Tvar "u"), Cond.Value_of (Lterm.var "z")),
       Cond.Num 66)
  in
  Alcotest.(check (option bool)) "2017-1951 >= 66" (Some true)
    (Cond.eval s value_cond);
  (* Value_of a non-numeric constant: not evaluable. *)
  let s2 = subst_bind [ ("z", Kg.Term.iri "Chelsea") ] [] in
  Alcotest.(check (option bool)) "non-numeric" None
    (Cond.eval s2 (Cond.Cmp (Cond.Lt, Cond.Value_of (Lterm.var "z"), Cond.Num 1)))

let test_cond_eq_neq () =
  let s = subst_bind [ ("y", Kg.Term.iri "a"); ("z", Kg.Term.iri "b") ] [] in
  Alcotest.(check (option bool)) "neq" (Some true)
    (Cond.eval s (Cond.Neq (Lterm.var "y", Lterm.var "z")));
  Alcotest.(check (option bool)) "eq false" (Some false)
    (Cond.eval s (Cond.Eq (Lterm.var "y", Lterm.var "z")));
  Alcotest.(check (option bool)) "eq self" (Some true)
    (Cond.eval s (Cond.Eq (Lterm.var "y", Lterm.var "y")))

let test_cond_negate () =
  let s = subst_bind [] [ ("t", iv 1 4); ("u", iv 5 9) ] in
  let conds =
    [
      Cond.allen_set Kg.Allen.Set.disjoint (Lterm.Tvar "t") (Lterm.Tvar "u");
      Cond.Cmp (Cond.Lt, Cond.Start_of (Lterm.Tvar "t"), Cond.Num 3);
      Cond.Cmp (Cond.Ge, Cond.End_of (Lterm.Tvar "u"), Cond.Num 9);
    ]
  in
  List.iter
    (fun c ->
      match (Cond.eval s c, Cond.eval s (Cond.negate c)) with
      | Some a, Some b ->
          Alcotest.(check bool) "negation flips" true (a = not b)
      | _ -> Alcotest.fail "evaluable")
    conds

let test_rule_safety () =
  let body =
    [ quad_atom "coach" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t") ]
  in
  (* Head variable not bound by the body. *)
  (match
     Rule.make ~name:"bad" ~body
       (Rule.Infer (quad_atom "p" (Lterm.var "x") (Lterm.var "w") (Lterm.Tvar "t")))
   with
  | exception Rule.Ill_formed _ -> ()
  | _ -> Alcotest.fail "unsafe head accepted");
  (* Condition variable not bound. *)
  (match
     Rule.make ~name:"bad2" ~body
       ~conditions:[ Cond.Neq (Lterm.var "x", Lterm.var "q") ]
       Rule.Bottom
   with
  | exception Rule.Ill_formed _ -> ()
  | _ -> Alcotest.fail "unsafe condition accepted");
  (* Temporal head variable not bound. *)
  (match
     Rule.make ~name:"bad3" ~body
       (Rule.Require
          (Cond.allen Kg.Allen.Before (Lterm.Tvar "t") (Lterm.Tvar "nope")))
   with
  | exception Rule.Ill_formed _ -> ()
  | _ -> Alcotest.fail "unsafe temporal accepted");
  (* Safe rule passes. *)
  let ok =
    Rule.make ~name:"ok" ~weight:2.5 ~body
      (Rule.Infer (quad_atom "worksFor" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t")))
  in
  Alcotest.(check bool) "inference" true (Rule.is_inference ok);
  Alcotest.(check bool) "soft" false (Rule.is_hard ok)

let test_rule_validation () =
  (match Rule.make ~name:"empty" ~body:[] Rule.Bottom with
  | exception Rule.Ill_formed _ -> ()
  | _ -> Alcotest.fail "empty body accepted");
  match
    Rule.make ~name:"negweight" ~weight:(-1.0)
      ~body:[ Atom.make "p" [ Lterm.var "x" ] ]
      Rule.Bottom
  with
  | exception Rule.Ill_formed _ -> ()
  | _ -> Alcotest.fail "negative weight accepted"

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let test_rule_pp () =
  let r =
    Rule.make ~name:"c2"
      ~conditions:[ Cond.Neq (Lterm.var "y", Lterm.var "z") ]
      ~body:
        [
          quad_atom "coach" (Lterm.var "x") (Lterm.var "y") (Lterm.Tvar "t");
          quad_atom "coach" (Lterm.var "x") (Lterm.var "z") (Lterm.Tvar "u");
        ]
      (Rule.Require
         (Cond.allen_set Kg.Allen.Set.disjoint (Lterm.Tvar "t") (Lterm.Tvar "u")))
  in
  let s = Rule.to_string r in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 0 && String.sub s 0 2 = "c2");
  Alcotest.(check bool) "hard marker" true (contains_substring s "[hard]")

let () =
  Alcotest.run "logic"
    [
      ( "subst",
        [
          Alcotest.test_case "bind conflict" `Quick test_subst_bind_conflict;
          Alcotest.test_case "eval_time" `Quick test_subst_eval_time;
          Alcotest.test_case "lterm vars" `Quick test_lterm_vars;
        ] );
      ( "atom",
        [
          Alcotest.test_case "vars" `Quick test_atom_vars;
          Alcotest.test_case "instantiate" `Quick test_atom_instantiate;
          Alcotest.test_case "match_ground" `Quick test_atom_match_ground;
          Alcotest.test_case "quad conversion" `Quick test_ground_quad_conversion;
        ] );
      ( "cond",
        [
          Alcotest.test_case "allen" `Quick test_cond_allen;
          Alcotest.test_case "arith" `Quick test_cond_arith;
          Alcotest.test_case "eq/neq" `Quick test_cond_eq_neq;
          Alcotest.test_case "negate" `Quick test_cond_negate;
        ] );
      ( "rule",
        [
          Alcotest.test_case "safety" `Quick test_rule_safety;
          Alcotest.test_case "validation" `Quick test_rule_validation;
          Alcotest.test_case "pp" `Quick test_rule_pp;
        ] );
    ]
