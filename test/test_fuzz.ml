(* Fuzzing the parsers: arbitrary input must produce an [Error], never an
   escaping exception, and valid printed output must re-parse. *)

module Prng = Prelude.Prng

let random_string rng len charset =
  String.init (Prng.int rng (len + 1)) (fun _ -> Prng.pick rng charset)

let printable =
  Array.init 95 (fun i -> Char.chr (32 + i))

let rule_ish =
  [|
    'a'; 'b'; 'x'; 'y'; 'z'; 't'; '('; ')'; ','; '@'; '^'; '='; '>'; '<';
    '!'; '.'; ':'; ' '; '['; ']'; '1'; '2'; '-'; '+'; '*'; '"'; '\'';
    'r'; 'u'; 'l'; 'e'; 'c'; 'o'; 'n'; 's'; 'i'; '\n';
  |]

let test_rule_parser_total () =
  let rng = Prng.create 101 in
  for _ = 1 to 3_000 do
    let src = random_string rng 60 rule_ish in
    match Rulelang.Parser.parse_string src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "parser raised %s on %S" (Printexc.to_string e) src)
  done

let test_rule_parser_printable_total () =
  let rng = Prng.create 102 in
  for _ = 1 to 2_000 do
    let src = random_string rng 80 printable in
    match Rulelang.Parser.parse_string src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "parser raised %s on %S" (Printexc.to_string e) src)
  done

let test_query_parser_total () =
  let rng = Prng.create 103 in
  for _ = 1 to 2_000 do
    let src = random_string rng 50 rule_ish in
    match Rulelang.Parser.parse_query src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "query parser raised %s on %S" (Printexc.to_string e)
             src)
  done

let test_nquads_parser_total () =
  let rng = Prng.create 104 in
  for _ = 1 to 3_000 do
    let src = random_string rng 80 printable in
    match Kg.Nquads.parse_string src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "nquads raised %s on %S" (Printexc.to_string e) src)
  done

let test_sql_parser_total () =
  let rng = Prng.create 105 in
  let db = Reldb.Database.create () in
  Reldb.Database.add_table db
    (Reldb.Table.create ~name:"t" ~columns:[ "a"; "b" ]);
  let sql_ish =
    [|
      'S'; 'E'; 'L'; 'C'; 'T'; 'F'; 'R'; 'O'; 'M'; 'W'; 'H'; ' '; '*'; ',';
      '='; '<'; '>'; '\''; 'a'; 'b'; 't'; '1'; '2'; 'J'; 'I'; 'N'; 'D';
    |]
  in
  for _ = 1 to 3_000 do
    let src = random_string rng 60 sql_ish in
    match Reldb.Sql.query db src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "sql raised %s on %S" (Printexc.to_string e) src)
  done

let test_interval_of_string_total () =
  let rng = Prng.create 106 in
  for _ = 1 to 3_000 do
    let src = random_string rng 20 printable in
    match Kg.Interval.of_string src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "interval raised %s on %S" (Printexc.to_string e) src)
  done

(* Structured fuzz: generate random *valid* programs, print, re-parse. *)
let random_program rng =
  let predicate () =
    Prng.pick rng [| "p"; "q"; "coach"; "playsFor"; "worksFor" |]
  in
  let bound_var () = Prng.pick rng [| "x"; "y"; "z" |] in
  let tvar () = Prng.pick rng [| "t"; "t2" |] in
  let atom () =
    (* Heads reuse body-bound variables only, keeping the rule safe. *)
    Printf.sprintf "%s(%s, %s)@%s" (predicate ()) (bound_var ()) (bound_var ())
      (tvar ())
  in
  let cond () =
    match Prng.int rng 3 with
    | 0 -> "y != z"
    | 1 -> Printf.sprintf "intersects(%s, %s)" (tvar ()) (tvar ())
    | _ -> Printf.sprintf "start(%s) < %d" (tvar ()) (Prng.int rng 100)
  in
  let name = Printf.sprintf "r%d" (Prng.int rng 1000) in
  (* The body binds exactly x, y, z, t and t2, so every head and
     condition above is range-restricted. *)
  let body =
    Printf.sprintf "%s(x, y)@t ^ %s(x, z)@t2" (predicate ()) (predicate ())
  in
  let body = if Prng.bool rng then body ^ " ^ " ^ cond () else body in
  if Prng.bool rng then
    Printf.sprintf "constraint %s: %s => disjoint(t, t2) ." name body
  else
    Printf.sprintf "rule %s %.1f: %s => %s ." name
      (0.5 +. Prng.float rng 5.0)
      body (atom ())

let test_valid_programs_roundtrip () =
  let rng = Prng.create 107 in
  for _ = 1 to 500 do
    let src = random_program rng in
    match Rulelang.Parser.parse_string src with
    | Error e ->
        Alcotest.fail
          (Format.asprintf "valid program rejected: %S (%a)" src
             Rulelang.Parser.pp_error e)
    | Ok rules -> (
        let printed = Rulelang.Printer.program_to_string rules in
        match Rulelang.Parser.parse_string printed with
        | Ok rules' ->
            Alcotest.(check int) "same arity" (List.length rules)
              (List.length rules')
        | Error e ->
            Alcotest.fail
              (Format.asprintf "printed program rejected: %S (%a)" printed
                 Rulelang.Parser.pp_error e))
  done

let test_engine_survives_random_small_graphs () =
  (* Random tiny graphs + the c2 constraint: resolution must terminate
     with no hard violations (nothing is certain) on both engines. *)
  let rng = Prng.create 108 in
  let rules =
    match
      Rulelang.Parser.parse_string
        "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "parse"
  in
  for _ = 1 to 40 do
    let g = Kg.Graph.create () in
    let n = 1 + Prng.int rng 12 in
    for _ = 1 to n do
      let lo = Prng.range rng 2000 2010 in
      let hi = lo + Prng.int rng 5 in
      ignore
        (Kg.Graph.add g
           (Kg.Quad.v
              (Prng.pick rng [| "a"; "b"; "c" |])
              "coach"
              (Kg.Term.iri (Prng.pick rng [| "X"; "Y"; "Z" |]))
              (lo, hi)
              (0.5 +. Prng.float rng 0.45)))
    done;
    List.iter
      (fun engine ->
        let result = Tecore.Engine.resolve ~engine g rules in
        Alcotest.(check int) "resolved" 0
          result.Tecore.Engine.stats.Tecore.Engine.hard_violations)
      [
        Tecore.Engine.Mln Mln.Map_inference.default_options;
        Tecore.Engine.Psl Psl.Npsl.default_options;
      ]
  done

(* ---- edit-script parser (tecore session --script) ----------------- *)

let script_ish =
  [|
    'l'; 'o'; 'a'; 'd'; 's'; 'e'; 'r'; 't'; 'c'; 'u'; 'n'; 'i'; 'v'; 'f';
    'd'; ' '; '\t'; '\n'; '#'; '.'; '<'; '>'; '"'; '['; ']'; ','; '('; ')';
    '1'; '9'; '0'; '@'; ':'; '^'; '='; '!'; '-';
  |]

let test_script_parser_total () =
  let rng = Prng.create 107 in
  for _ = 1 to 3_000 do
    let src = random_string rng 120 script_ish in
    match Tecore.Script.parse_string ~path:"<fuzz>" src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "script parser raised %s on %S"
             (Printexc.to_string e) src)
  done

let test_script_parser_printable_total () =
  let rng = Prng.create 108 in
  for _ = 1 to 2_000 do
    let src = random_string rng 120 printable in
    match Tecore.Script.parse_string ~path:"<fuzz>" src with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "script parser raised %s on %S"
             (Printexc.to_string e) src)
  done

(* Mutate a valid script — truncate it mid-line, splice random bytes —
   and require a located error or a clean parse, never an exception and
   never a zero/negative location. *)
let test_script_mutations_located () =
  let valid =
    "load data.tq\n\
     rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .\n\
     assert <p> <playsFor> <T> [2001,2003] 0.8 .\n\
     retract <p> <playsFor> <T> [2001,2003] 0.8 .\n\
     resolve incremental\n\
     unrule f1\n\
     resolve fresh\n\
     diff\n"
  in
  let rng = Prng.create 109 in
  for _ = 1 to 2_000 do
    let cut = Prng.int rng (String.length valid + 1) in
    let src =
      String.sub valid 0 cut ^ random_string rng 20 printable
    in
    match Tecore.Script.parse_string ~path:"s.script" src with
    | Ok _ -> ()
    | Error e ->
        if e.Tecore.Script.line < 1 || e.Tecore.Script.column < 1 then
          Alcotest.fail
            (Printf.sprintf "non-positive location %d:%d on %S"
               e.Tecore.Script.line e.Tecore.Script.column src);
        if e.Tecore.Script.path <> "s.script" then
          Alcotest.fail "error lost the script path"
    | exception e ->
        Alcotest.fail
          (Printf.sprintf "script parser raised %s on %S"
             (Printexc.to_string e) src)
  done

(* Targeted rejects: each bad line must be refused at parse time with
   the [path:line:column] convention, before anything executes. *)
let test_script_typed_errors () =
  let expect_error src frag =
    match Tecore.Script.parse_string ~path:"bad.script" src with
    | Ok _ -> Alcotest.failf "parsed %S" src
    | Error e ->
        let msg = Format.asprintf "%a" Tecore.Script.pp_error e in
        let contains needle hay =
          let nn = String.length needle and nh = String.length hay in
          let rec at i =
            i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
          in
          at 0
        in
        if not (contains "bad.script:" msg) then
          Alcotest.failf "no location in %S" msg;
        if not (contains frag msg) then
          Alcotest.failf "expected %S in %S" frag msg
  in
  expect_error "frobnicate x\n" "unknown command";
  expect_error "load\n" "missing file path";
  expect_error "assert\n" "missing fact";
  expect_error "assert <a> <b>\n" "";
  expect_error "retract not a quad\n" "";
  expect_error "rule nonsense here\n" "";
  expect_error "unrule\n" "missing rule name";
  expect_error "resolve sideways\n" "expected \"fresh\" or \"incremental\"";
  expect_error "diff everything\n" "diff takes no argument";
  (* Error line numbers point at the offending line, not line 1. *)
  match
    Tecore.Script.parse_string ~path:"p.script" "diff\ndiff\nbogus cmd\n"
  with
  | Ok _ -> Alcotest.fail "parsed a bogus third line"
  | Error e -> Alcotest.(check int) "line 3" 3 e.Tecore.Script.line

(* Executing a script that retracts an absent fact must halt with a
   located execution error (the parse is fine — the fact just is not in
   the graph). *)
let test_script_retract_absent () =
  let src =
    "assert <p> <playsFor> <T> [2001,2003] 0.8 .\n\
     retract <p> <playsFor> <T> [1900,1901] 0.8 .\n"
  in
  let script =
    match Tecore.Script.parse_string ~path:"r.script" src with
    | Ok s -> s
    | Error e ->
        Alcotest.failf "parse: %s" (Format.asprintf "%a" Tecore.Script.pp_error e)
  in
  let session = Tecore.Session.create () in
  Tecore.Session.load_graph session (Kg.Graph.create ());
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  match Tecore.Script.run ~session fmt script with
  | Ok () -> Alcotest.fail "retract of an absent fact succeeded"
  | Error e ->
      Alcotest.(check int) "line 2" 2 e.Tecore.Script.line;
      Alcotest.(check string) "path" "r.script" e.Tecore.Script.path

(* ------------------------------------------------------------------ *)
(* The wire layer is total                                             *)
(* ------------------------------------------------------------------ *)

(* Random byte mutations of valid protocol frames, against a live
   server: every response must still be a tagged single-line JSON
   object ([ok {...}] or [err {...}] with a [kind]), no exception may
   escape the accept loop, and the connection must stay usable — probed
   with a [ping] after the storm. Mutations substitute printable bytes
   (never a newline), so frames stay frames; a mutation that lands on
   [quit] just closes the connection, which the harness answers by
   reconnecting. *)
let wire_frames =
  [|
    "ping"; "hello fuzz"; "open"; "stat"; "result"; "metrics"; "diff";
    "resolve"; "resolve fresh"; "shutdown";
    "assert ex:A ex:playsFor ex:B [2001,2003] 0.8 .";
    "retract ex:A ex:playsFor ex:B [2001,2003] 0.8 .";
    "rule r1 1.5: ex:playsFor(x, y)@t => ex:worksFor(x, y)@t .";
    "unrule r1";
  |]

let wire_send fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let test_wire_mutations_total () =
  let server = Serve.start (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let rng = Prng.create 401 in
      let conn = ref None in
      let fresh () =
        let fd = Serve.connect server in
        let c = (fd, Unix.in_channel_of_descr fd) in
        conn := Some c;
        c
      in
      let current () = match !conn with Some c -> c | None -> fresh () in
      let reconnect () =
        (match !conn with
        | Some (_, ic) -> close_in_noerr ic
        | None -> ());
        conn := None
      in
      let check_response line =
        let tagged tag =
          let n = String.length tag in
          if String.length line >= n && String.sub line 0 n = tag then
            Some (String.sub line n (String.length line - n))
          else None
        in
        match (tagged "ok ", tagged "err ") with
        | Some body, _ | None, Some body -> (
            match Obs.Json.parse body with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "response is not JSON: %S (%s)" line e)
        | None, None -> Alcotest.failf "untagged response %S" line
      in
      for _ = 1 to 400 do
        let frame = wire_frames.(Prng.int rng (Array.length wire_frames)) in
        let mutated = Bytes.of_string frame in
        for _ = 0 to Prng.int rng 3 do
          if Bytes.length mutated > 0 then
            Bytes.set mutated
              (Prng.int rng (Bytes.length mutated))
              (Prng.pick rng printable)
        done;
        let fd, ic = current () in
        wire_send fd (Bytes.to_string mutated);
        match input_line ic with
        | resp -> check_response resp
        | exception End_of_file -> reconnect ()
      done;
      (* The connection (or a fresh one) still serves typed responses. *)
      let fd, ic = current () in
      wire_send fd "ping";
      (match input_line ic with
      | resp -> Alcotest.(check string) "still alive" "ok {\"pong\":true}" resp
      | exception End_of_file ->
          let fd, ic = fresh () in
          wire_send fd "ping";
          Alcotest.(check string) "still alive" "ok {\"pong\":true}"
            (input_line ic));
      reconnect ())

(* Oversized frames are refused with a typed parse error — and the
   connection stays usable for the next, normal-sized request. *)
let test_wire_oversized_line () =
  let config = { Serve.default_config with Serve.max_line_bytes = 4096 } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let fd = Serve.connect server in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          wire_send fd ("assert " ^ String.make 20_000 'x');
          (match input_line ic with
          | resp ->
              let contains affix =
                let n = String.length affix in
                let rec go i =
                  i + n <= String.length resp
                  && (String.sub resp i n = affix || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool)
                "typed parse error" true
                (contains "\"kind\":\"parse\"" && contains "exceeds")
          | exception End_of_file ->
              Alcotest.fail "connection dropped on oversized frame");
          wire_send fd "ping";
          Alcotest.(check string)
            "usable after overflow" "ok {\"pong\":true}" (input_line ic)))

(* ------------------------------------------------------------------ *)
(* Lane routing: adversarial session ids must always land on a lane    *)
(* ------------------------------------------------------------------ *)

module Faults = Prelude.Deadline.Faults

(* Ids chosen to stress the hash: empty, huge, non-ASCII, invalid
   UTF-8, control bytes, whitespace. *)
let adversarial_ids =
  [
    "";
    " ";
    "plain";
    String.make 65_536 'x';
    "\xc3\xbcber-s\xc3\xa9ssion";
    "\xff\xfe\x80\x80";
    "\x01\x02\x7f";
    "id with spaces and\ttabs";
    "%2Fsessions%2F..%2F..";
  ]

(* [Serve.lane_of_session] is total: every string — plus a pile of
   random byte soup — routes to a valid lane, deterministically; a
   single-lane server routes everything to lane 0. *)
let test_lane_routing_total () =
  let config = { Serve.default_config with Serve.lanes = 4 } in
  let server = Serve.start ~config (`Tcp 0) in
  let single =
    Serve.start ~config:{ Serve.default_config with Serve.lanes = 1 } (`Tcp 0)
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Serve.stop single)
    (fun () ->
      let n = Serve.lane_count server in
      Alcotest.(check int) "lane count" 4 n;
      let any_byte = Array.init 256 Char.chr in
      let rng = Prng.create 601 in
      let ids =
        adversarial_ids
        @ List.init 400 (fun _ -> random_string rng 48 any_byte)
      in
      List.iter
        (fun id ->
          let l = Serve.lane_of_session server id in
          if l < 0 || l >= n then
            Alcotest.failf "id %S routed out of range: %d" id l;
          if Serve.lane_of_session server id <> l then
            Alcotest.failf "routing of %S is not deterministic" id;
          if Serve.lane_of_session single id <> 0 then
            Alcotest.failf "single-lane server routed %S off lane 0" id)
        ids;
      (* The hash actually spreads sessions — a constant function would
         pass totality and defeat the point of lanes. *)
      let spread =
        List.sort_uniq compare
          (List.map
             (fun i -> Serve.lane_of_session server (string_of_int i))
             (List.init 32 (fun i -> i)))
      in
      Alcotest.(check bool) "hash spreads across lanes" true
        (List.length spread > 1))

(* The [lane_collide:L] fault point forces every id onto one lane — the
   test hook for deterministic hash collisions. *)
let test_lane_collide_hook () =
  let config = { Serve.default_config with Serve.lanes = 4 } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () ->
      Faults.clear ();
      Serve.stop server)
    (fun () ->
      Faults.configure "lane_collide:6";
      List.iter
        (fun id ->
          Alcotest.(check int)
            (Printf.sprintf "collides %S onto lane 6 mod 4" id)
            2
            (Serve.lane_of_session server id))
        [ "a"; "b"; ""; String.make 1_000 'q' ];
      Faults.clear ();
      Alcotest.(check bool) "hook off: normal routing returns" true
        (Serve.lane_of_session server "a" < 4))

(* Live multi-lane server: adversarial hello ids get typed responses,
   sessions that open really work end to end (the [stat] lane field
   agrees with the routing function), and the accept loop survives it
   all. *)
let test_lane_adversarial_hellos_live () =
  let config = { Serve.default_config with Serve.lanes = 4 } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      (* Whitespace-trimmed and empty ids are refused at parse time
         (covered below); everything else must open a working session. *)
      let wire_safe id =
        (not (String.contains id '\n')) && String.trim id = id
      in
      let ok_fields line resp =
        if String.length resp >= 3 && String.sub resp 0 3 = "ok " then
          match Obs.Json.parse (String.sub resp 3 (String.length resp - 3)) with
          | Ok (Obs.Json.Obj fs) -> fs
          | Ok _ | Error _ ->
              Alcotest.failf "%S: malformed ok body %S" line resp
        else Alcotest.failf "%S: expected ok, got %S" line resp
      in
      List.iter
        (fun id ->
          if wire_safe id && id <> "" then begin
            let fd = Serve.connect server in
            let ic = Unix.in_channel_of_descr fd in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let ok line =
                  wire_send fd line;
                  ok_fields line (input_line ic)
                in
                ignore (ok ("hello " ^ id));
                let sj = ok "stat" in
                (match List.assoc_opt "lane" sj with
                | Some (Obs.Json.Num l) ->
                    Alcotest.(check int)
                      (Printf.sprintf "stat lane agrees for %S" id)
                      (Serve.lane_of_session server id)
                      (int_of_float l)
                | _ ->
                    Alcotest.failf "stat for %S carries no lane field" id);
                ignore (ok "open");
                ignore
                  (ok "assert ex:A ex:playsFor ex:B [2001,2003] 0.8 .");
                ignore (ok "resolve"))
          end)
        adversarial_ids;
      (* Empty id: typed parse error, connection survives. *)
      let fd = Serve.connect server in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          wire_send fd "hello ";
          let resp = input_line ic in
          Alcotest.(check bool)
            "empty id refused, typed" true
            (String.length resp >= 4 && String.sub resp 0 4 = "err ");
          wire_send fd "ping";
          Alcotest.(check string)
            "accept loop alive" "ok {\"pong\":true}" (input_line ic)))

(* Shutdown drains every lane: with all lanes wedged behind a slow
   resolve and one more job queued, the [shutdown] verb answers running
   jobs normally and every still-queued job with a typed
   [shutting_down] error — nothing hangs, nothing is dropped
   silently. *)
let test_shutdown_drains_lanes () =
  let config =
    { Serve.default_config with Serve.lanes = 2; Serve.allow_shutdown = true }
  in
  let server = Serve.start ~config (`Tcp 0) in
  Faults.configure "slow_resolve:400";
  Fun.protect
    ~finally:(fun () ->
      Faults.clear ();
      Serve.stop server)
    (fun () ->
      let find_id prefix lane =
        let rec go i =
          let id = Printf.sprintf "%s%d" prefix i in
          if Serve.lane_of_session server id = lane then id else go (i + 1)
        in
        go 0
      in
      let id_a = find_id "drain-a" 0 in
      let id_a2 = find_id "drain-c" 0 in
      let id_b = find_id "drain-b" 1 in
      let open_session id =
        let fd = Serve.connect server in
        let ic = Unix.in_channel_of_descr fd in
        let ok line =
          wire_send fd line;
          let resp = input_line ic in
          if not (String.length resp >= 3 && String.sub resp 0 3 = "ok ")
          then Alcotest.failf "%s: %S refused: %S" id line resp
        in
        ok ("hello " ^ id);
        ok "open";
        ok "assert ex:A ex:playsFor ex:B [2001,2003] 0.8 .";
        (fd, ic)
      in
      let fd_a, ic_a = open_session id_a in
      let fd_a2, ic_a2 = open_session id_a2 in
      let fd_b, ic_b = open_session id_b in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic_a;
          close_in_noerr ic_a2;
          close_in_noerr ic_b)
        (fun () ->
          (* Wedge lane 0, then queue a second job behind it and a
             third on lane 1, and pull the plug while the slow resolve
             still holds its lane. *)
          wire_send fd_a "resolve";
          let deadline = Unix.gettimeofday () +. 5. in
          while (not (Serve.busy server)) && Unix.gettimeofday () < deadline
          do
            Thread.yield ()
          done;
          Alcotest.(check bool) "lane 0 is wedged" true (Serve.busy server);
          wire_send fd_a2 "resolve";
          wire_send fd_b "resolve";
          let fd_ctl = Serve.connect server in
          let ic_ctl = Unix.in_channel_of_descr fd_ctl in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic_ctl)
            (fun () ->
              wire_send fd_ctl "shutdown";
              let resp = input_line ic_ctl in
              Alcotest.(check bool)
                "shutdown acknowledged" true
                (String.length resp >= 3 && String.sub resp 0 3 = "ok "));
          (* The running job completes normally... *)
          let resp_a = input_line ic_a in
          Alcotest.(check bool)
            "running resolve completed" true
            (String.length resp_a >= 3 && String.sub resp_a 0 3 = "ok ");
          (* ...the job queued behind it is drained with a typed error,
             not dropped. *)
          let resp_a2 = input_line ic_a2 in
          let contains hay affix =
            let n = String.length affix in
            let rec go i =
              i + n <= String.length hay
              && (String.sub hay i n = affix || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool)
            "queued job answered with typed shutting_down" true
            (contains resp_a2 "\"kind\":\"shutting_down\"");
          (* Lane 1's job either ran to completion or was drained —
             either way a typed response, never a hang. *)
          let resp_b = input_line ic_b in
          Alcotest.(check bool)
            "sibling lane drained or served, typed" true
            ((String.length resp_b >= 3 && String.sub resp_b 0 3 = "ok ")
            || contains resp_b "\"kind\":\"shutting_down\"")))

(* ------------------------------------------------------------------ *)
(* Journal files: random damage must never escape typed recovery       *)
(* ------------------------------------------------------------------ *)

(* [Serve.Journal.recover] claims to be a total function of the bytes
   on disk: truncated, bit-flipped, duplicated or garbage-stuffed
   journals must yield a typed status and a consistent (possibly
   shorter) session — never an exception — and a second recovery of the
   same directory must be clean and identical (the self-heal
   converges). Frames are built by hand from the documented format
   (length.be32 ++ crc32.be32 ++ payload ++ '\n') so this fuzz also
   pins the on-disk contract itself. *)

module Journal = Serve.Journal

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let frame payload =
  let b = Buffer.create (String.length payload + 9) in
  let be32 v =
    List.iter
      (fun sh -> Buffer.add_char b (Char.chr ((v lsr sh) land 0xff)))
      [ 24; 16; 8; 0 ]
  in
  be32 (String.length payload);
  be32 (Journal.crc32 payload);
  Buffer.add_string b payload;
  Buffer.add_char b '\n';
  Buffer.contents b

let journal_records =
  "open"
  :: List.init 9 (fun i ->
         Printf.sprintf "assert ex:P%d ex:playsFor ex:T%d [%d,%d] 0.7 ."
           (i mod 4) (i mod 3) (2000 + i) (2001 + i))

let journal_bytes = String.concat "" (List.map frame journal_records)

let write_file path content =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc content)

let session_facts session =
  match Tecore.Session.graph session with
  | Some g -> Kg.Graph.size g
  | None -> 0

let splice data ~at insert = String.sub data 0 at ^ insert
                             ^ String.sub data at (String.length data - at)

let mutate rng data =
  let n = String.length data in
  match Prng.int rng 4 with
  | 0 ->
      (* truncation (torn tail, lost write) *)
      String.sub data 0 (Prng.int rng (n + 1))
  | 1 when n > 0 ->
      (* single bit flip (media corruption) *)
      let b = Bytes.of_string data in
      let i = Prng.int rng n in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int rng 8)));
      Bytes.to_string b
  | 2 ->
      (* duplicated slice (replayed write, doubled sector) *)
      let a = Prng.int rng (n + 1) in
      let len = Prng.int rng (n - a + 1) in
      splice data ~at:(Prng.int rng (n + 1)) (String.sub data a len)
  | _ ->
      (* interleaved garbage *)
      let garbage =
        String.init
          (1 + Prng.int rng 24)
          (fun _ -> Char.chr (Prng.int rng 256))
      in
      splice data ~at:(Prng.int rng (n + 1)) garbage

(* One damaged-directory round: build a pristine session dir, overwrite
   [victim] with mutated bytes, recover twice. *)
let damage_round rng ~iter ~victim =
  let state_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tecore-fuzz-journal-%d-%d" (Unix.getpid ()) iter)
  in
  rm_rf state_dir;
  Fun.protect
    ~finally:(fun () -> rm_rf state_dir)
    (fun () ->
      Journal.close
        (Journal.create ~state_dir ~fsync:Journal.Never ~compact_every:0 "fz");
      let dir = Journal.session_dir ~state_dir "fz" in
      write_file (Filename.concat dir "journal.0") journal_bytes;
      let target = Filename.concat dir victim in
      let pristine =
        In_channel.with_open_bin target In_channel.input_all
      in
      write_file target (mutate rng pristine);
      let r =
        try
          Journal.recover ~state_dir ~fsync:Journal.Never ~compact_every:0
            "fz"
        with e ->
          Alcotest.failf "iter %d (%s): recovery raised %s" iter victim
            (Printexc.to_string e)
      in
      let facts = session_facts r.Journal.session in
      ignore (Journal.status_name r.Journal.status);
      Journal.close r.Journal.journal;
      (* The first recovery repaired whatever it found: recovering the
         same directory again must be clean and identical. *)
      let r2 =
        try
          Journal.recover ~state_dir ~fsync:Journal.Never ~compact_every:0
            "fz"
        with e ->
          Alcotest.failf "iter %d (%s): second recovery raised %s" iter
            victim (Printexc.to_string e)
      in
      (match r2.Journal.status with
      | Journal.Full -> ()
      | s ->
          Alcotest.failf "iter %d (%s): self-heal did not converge: %s" iter
            victim (Journal.status_name s));
      if session_facts r2.Journal.session <> facts then
        Alcotest.failf "iter %d (%s): facts drifted across self-heal: %d -> %d"
          iter victim facts
          (session_facts r2.Journal.session);
      Journal.close r2.Journal.journal)

let test_journal_damage_total () =
  let rng = Prng.create 501 in
  for iter = 1 to 120 do
    damage_round rng ~iter ~victim:"journal.0"
  done

let test_manifest_damage_total () =
  let rng = Prng.create 502 in
  for iter = 1 to 40 do
    damage_round rng ~iter ~victim:"MANIFEST"
  done

(* ------------------------------------------------------------------ *)
(* Access-log files: rotation under contention, torn tails, damage     *)
(* ------------------------------------------------------------------ *)

module Access_log = Serve.Access_log

let mk_record req =
  {
    Access_log.req;
    ts = 1000.0 +. float_of_int req;
    session = (if req mod 2 = 0 then Some "fz" else None);
    lane = (if req mod 4 = 0 then Some (req mod 3) else None);
    verb = "ping";
    outcome = "ok";
    wall_ms = 0.5;
    phases = [ ("parse", 0.1); ("reply", 0.2) ];
  }

(* Rotation under concurrent writers: a small size bound forces many
   rotations while 4 threads append; with enough rotations kept, every
   record must survive, exactly once, across the live file and the
   rotated generations. *)
let test_access_log_rotation_concurrent () =
  let path = Filename.temp_file "tecore-fuzz-access" ".log" in
  let w = Access_log.open_writer ~path ~max_bytes:2048 ~keep:64 in
  let threads = 4 and per = 50 in
  let ts =
    List.init threads (fun i ->
        Thread.create
          (fun () ->
            for j = 1 to per do
              Access_log.write w (mk_record ((i * 1000) + j))
            done)
          ())
  in
  List.iter Thread.join ts;
  Access_log.close_writer w;
  let files =
    path
    :: List.filter Sys.file_exists
         (List.init 64 (fun k -> Printf.sprintf "%s.%d" path (k + 1)))
  in
  let all =
    List.concat_map
      (fun f ->
        let records, warnings = Access_log.read_file f in
        List.iter
          (fun w ->
            Alcotest.failf "%s: %s" f (Access_log.warning_to_string w))
          warnings;
        records)
      files
  in
  List.iter Sys.remove files;
  Alcotest.(check bool) "rotation happened" true (List.length files > 1);
  Alcotest.(check int)
    "every record survived rotation" (threads * per)
    (List.length all);
  let ids = List.map (fun (r : Access_log.record) -> r.Access_log.req) all in
  Alcotest.(check int)
    "request ids distinct" (threads * per)
    (List.length (List.sort_uniq compare ids))

(* A SIGKILL mid-append leaves a prefix of the final line on disk: the
   reader must return every intact record and skip the tail with a
   typed warning — exactly what the analyzer and [tecore logstat]
   rely on. *)
let test_access_log_torn_tail () =
  let path = Filename.temp_file "tecore-fuzz-access" ".log" in
  let w = Access_log.open_writer ~path ~max_bytes:1_000_000 ~keep:1 in
  for i = 1 to 5 do
    Access_log.write w (mk_record i)
  done;
  Access_log.close_writer w;
  let full = Access_log.record_to_line (mk_record 6) in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  let records, warnings = Access_log.read_file path in
  Sys.remove path;
  Alcotest.(check int) "intact records returned" 5 (List.length records);
  match warnings with
  | [ Access_log.Torn_tail { line } ] ->
      Alcotest.(check int) "warning points at the torn line" 6 line
  | ws ->
      Alcotest.failf "expected exactly one torn-tail warning, got [%s]"
        (String.concat "; " (List.map Access_log.warning_to_string ws))

(* Damage before the final line is not a torn tail: the reader reports
   a [Bad_record] with the line number and still returns every other
   record. *)
let test_access_log_mid_file_damage () =
  let path = Filename.temp_file "tecore-fuzz-access" ".log" in
  let line i =
    if i = 3 then "{\"req\":-3,\"garbage"
    else Access_log.record_to_line (mk_record i)
  in
  write_file path
    (String.concat "" (List.init 5 (fun i -> line (i + 1) ^ "\n")));
  let records, warnings = Access_log.read_file path in
  Sys.remove path;
  Alcotest.(check int) "other records returned" 4 (List.length records);
  Alcotest.(check (list int))
    "order preserved around the damage" [ 1; 2; 4; 5 ]
    (List.map (fun (r : Access_log.record) -> r.Access_log.req) records);
  match warnings with
  | [ Access_log.Bad_record { line; _ } ] ->
      Alcotest.(check int) "warning points at the damaged line" 3 line
  | ws ->
      Alcotest.failf "expected exactly one bad-record warning, got [%s]"
        (String.concat "; " (List.map Access_log.warning_to_string ws))

(* Random damage totality, journal-style: truncated, bit-flipped,
   duplicated or garbage-stuffed logs must never make the reader raise,
   and every surviving record must satisfy the schema invariants the
   parser promises. *)
let test_access_log_damage_total () =
  let rng = Prng.create 503 in
  let pristine =
    String.concat ""
      (List.init 20 (fun i -> Access_log.record_to_line (mk_record (i + 1)) ^ "\n"))
  in
  for iter = 1 to 200 do
    let path = Filename.temp_file "tecore-fuzz-access" ".log" in
    write_file path (mutate rng pristine);
    let records, _warnings =
      try Access_log.read_file path
      with e ->
        Alcotest.failf "iter %d: reader raised %s" iter (Printexc.to_string e)
    in
    Sys.remove path;
    List.iter
      (fun (r : Access_log.record) ->
        if r.Access_log.req < 1 || r.Access_log.wall_ms < 0.0 then
          Alcotest.failf "iter %d: invalid record survived validation" iter)
      records
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "parsers are total",
        [
          Alcotest.test_case "rule parser (rule-ish)" `Quick
            test_rule_parser_total;
          Alcotest.test_case "rule parser (printable)" `Quick
            test_rule_parser_printable_total;
          Alcotest.test_case "query parser" `Quick test_query_parser_total;
          Alcotest.test_case "nquads parser" `Quick test_nquads_parser_total;
          Alcotest.test_case "sql parser" `Quick test_sql_parser_total;
          Alcotest.test_case "interval parser" `Quick
            test_interval_of_string_total;
          Alcotest.test_case "script parser (script-ish)" `Quick
            test_script_parser_total;
          Alcotest.test_case "script parser (printable)" `Quick
            test_script_parser_printable_total;
        ] );
      ( "edit scripts",
        [
          Alcotest.test_case "mutations stay located" `Quick
            test_script_mutations_located;
          Alcotest.test_case "typed parse errors" `Quick
            test_script_typed_errors;
          Alcotest.test_case "retract of absent fact" `Quick
            test_script_retract_absent;
        ] );
      ( "structured",
        [
          Alcotest.test_case "valid programs roundtrip" `Quick
            test_valid_programs_roundtrip;
          Alcotest.test_case "engine survives random graphs" `Slow
            test_engine_survives_random_small_graphs;
        ] );
      ( "wire protocol",
        [
          Alcotest.test_case "mutated frames stay typed" `Quick
            test_wire_mutations_total;
          Alcotest.test_case "oversized frames refused, connection survives"
            `Quick test_wire_oversized_line;
        ] );
      ( "lane routing",
        [
          Alcotest.test_case "adversarial ids always land on a lane" `Quick
            test_lane_routing_total;
          Alcotest.test_case "lane_collide hook forces one lane" `Quick
            test_lane_collide_hook;
          Alcotest.test_case "live multi-lane server survives hostile ids"
            `Quick test_lane_adversarial_hellos_live;
          Alcotest.test_case "shutdown drains every lane, typed" `Quick
            test_shutdown_drains_lanes;
        ] );
      ( "journal files",
        [
          Alcotest.test_case "damaged journals recover, typed" `Quick
            test_journal_damage_total;
          Alcotest.test_case "damaged manifests recover, typed" `Quick
            test_manifest_damage_total;
        ] );
      ( "access-log files",
        [
          Alcotest.test_case "rotation under concurrent writers" `Quick
            test_access_log_rotation_concurrent;
          Alcotest.test_case "torn tail skipped with a typed warning" `Quick
            test_access_log_torn_tail;
          Alcotest.test_case "mid-file damage is a bad record" `Quick
            test_access_log_mid_file_damage;
          Alcotest.test_case "random damage never escapes the reader" `Quick
            test_access_log_damage_total;
        ] );
    ]
