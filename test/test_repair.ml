(* Tests for the alternative repair strategies. *)

module R = Tecore.Repair

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let c2 =
  parse_rules
    "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."

let pair_clash () =
  Kg.Graph.of_list
    [
      Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.9;
      Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 0.6;
    ]

let test_conflict_sets () =
  let sets = R.conflict_sets (pair_clash ()) c2 in
  (* One clash, both orders deduplicated by the sorted projection. *)
  Alcotest.(check (list (list int))) "one set" [ [ 0; 1 ] ] sets

let test_conflict_sets_clean () =
  let g =
    Kg.Graph.of_list [ Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 0.9 ]
  in
  Alcotest.(check (list (list int))) "no sets" [] (R.conflict_sets g c2)

let test_greedy_simple () =
  let r = R.greedy (pair_clash ()) c2 in
  Alcotest.(check int) "one removed" 1 (List.length r.R.removed);
  Alcotest.(check string) "cheaper fact removed" "B"
    (Kg.Term.to_string (snd (List.hd r.R.removed)).Kg.Quad.object_);
  Alcotest.(check int) "consistent size" 1 (Kg.Graph.size r.R.consistent);
  Alcotest.(check bool) "confidence tally" true
    (Float.abs (r.R.removed_confidence -. 0.6) < 1e-9)

let test_greedy_hub () =
  (* One cheap hub fact clashing with two expensive ones: greedy removes
     the hub (most clashes). *)
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "Hub") (2000, 2010) 0.5;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2001, 2003) 0.9;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2006, 2008) 0.9;
      ]
  in
  let r = R.greedy g c2 in
  Alcotest.(check int) "only the hub removed" 1 (List.length r.R.removed);
  Alcotest.(check string) "hub" "Hub"
    (Kg.Term.to_string (snd (List.hd r.R.removed)).Kg.Quad.object_)

let test_hitting_sets_basic () =
  let sets = [ [ 1; 2 ]; [ 2; 3 ] ] in
  let hs = R.minimal_hitting_sets sets in
  (* Minimal hitting sets: {2}, {1,3}. *)
  Alcotest.(check bool) "contains {2}" true (List.mem [ 2 ] hs);
  Alcotest.(check bool) "contains {1;3}" true (List.mem [ 1; 3 ] hs);
  Alcotest.(check bool) "no superset of {2} with 2 inside" true
    (not (List.exists (fun s -> List.mem 2 s && List.length s > 1) hs));
  (* Smallest first. *)
  Alcotest.(check (list int)) "first is {2}" [ 2 ] (List.hd hs)

let test_hitting_sets_empty () =
  Alcotest.(check (list (list int))) "no conflicts: empty repair" [ [] ]
    (R.minimal_hitting_sets [])

let test_hitting_sets_disjoint_conflicts () =
  let hs = R.minimal_hitting_sets [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "four combinations" 4 (List.length hs);
  List.iter
    (fun s -> Alcotest.(check int) "size two" 2 (List.length s))
    hs

let test_optimal_vs_greedy () =
  (* Greedy can over-pay: hub has many clashes but high confidence.
     hub (0.95) clashes with a (0.3), b (0.3), c (0.3): greedy removes
     the hub first (3 clashes); optimal removes the three cheap facts
     (cost 0.9 < 0.95). *)
  let g =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "Hub") (2000, 2010) 0.95;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2001, 2002) 0.3;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2004, 2005) 0.3;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "C") (2007, 2008) 0.3;
      ]
  in
  let greedy = R.greedy g c2 in
  (match R.optimal_hitting_set g c2 with
  | None -> Alcotest.fail "optimal repair missing"
  | Some optimal ->
      Alcotest.(check bool)
        (Printf.sprintf "optimal %.2f <= greedy %.2f"
           optimal.R.removed_confidence greedy.R.removed_confidence)
        true
        (optimal.R.removed_confidence <= greedy.R.removed_confidence +. 1e-9);
      Alcotest.(check int) "optimal removes the three cheap facts" 3
        (List.length optimal.R.removed));
  (* MAP agrees with the optimal hitting set here (no soft rules). *)
  let map_result = Tecore.Engine.resolve g c2 in
  Alcotest.(check int) "MAP removes three" 3
    (List.length map_result.Tecore.Engine.resolution.Tecore.Conflict.removed)

let test_repairs_are_consistent () =
  let d = Datagen.Footballdb.generate ~seed:31 ~players:60 ~noise_ratio:0.5 () in
  let rules = Datagen.Footballdb.constraints () in
  List.iter
    (fun (label, repair) ->
      let remaining = R.conflict_sets repair.R.consistent rules in
      Alcotest.(check (list (list int))) (label ^ " leaves no clash") []
        remaining)
    [
      ("greedy", R.greedy d.Datagen.Footballdb.graph rules);
    ]

let () =
  Alcotest.run "repair"
    [
      ( "conflict sets",
        [
          Alcotest.test_case "pair clash" `Quick test_conflict_sets;
          Alcotest.test_case "clean graph" `Quick test_conflict_sets_clean;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "simple" `Quick test_greedy_simple;
          Alcotest.test_case "hub" `Quick test_greedy_hub;
          Alcotest.test_case "consistency" `Quick test_repairs_are_consistent;
        ] );
      ( "hitting sets",
        [
          Alcotest.test_case "basic" `Quick test_hitting_sets_basic;
          Alcotest.test_case "empty" `Quick test_hitting_sets_empty;
          Alcotest.test_case "disjoint conflicts" `Quick
            test_hitting_sets_disjoint_conflicts;
          Alcotest.test_case "optimal vs greedy vs MAP" `Quick
            test_optimal_vs_greedy;
        ] );
    ]
