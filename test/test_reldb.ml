(* Tests for the in-memory relational engine. *)

module V = Reldb.Value
module Tbl = Reldb.Table
module RA = Reldb.Relalg
module DB = Reldb.Database
module I = Kg.Interval

let value_testable = Alcotest.testable V.pp V.equal

let row vals = Array.of_list vals

let people () =
  let t = Tbl.create ~name:"people" ~columns:[ "name"; "age"; "city" ] in
  List.iter (Tbl.insert t)
    [
      row [ V.term (Kg.Term.iri "ada"); V.int 36; V.term (Kg.Term.iri "london") ];
      row [ V.term (Kg.Term.iri "alan"); V.int 41; V.term (Kg.Term.iri "london") ];
      row [ V.term (Kg.Term.iri "grace"); V.int 85; V.term (Kg.Term.iri "arlington") ];
    ];
  t

let cities () =
  let t = Tbl.create ~name:"cities" ~columns:[ "city"; "country" ] in
  List.iter (Tbl.insert t)
    [
      row [ V.term (Kg.Term.iri "london"); V.term (Kg.Term.iri "uk") ];
      row [ V.term (Kg.Term.iri "arlington"); V.term (Kg.Term.iri "usa") ];
      row [ V.term (Kg.Term.iri "paris"); V.term (Kg.Term.iri "france") ];
    ];
  t

let test_value_kinds () =
  Alcotest.(check bool) "term eq" true
    (V.equal (V.term (Kg.Term.iri "a")) (V.term (Kg.Term.iri "a")));
  Alcotest.(check bool) "int vs term" false (V.equal (V.int 1) (V.term (Kg.Term.int 1)));
  Alcotest.(check bool) "interval eq" true
    (V.equal (V.interval (I.make 1 2)) (V.interval (I.make 1 2)));
  Alcotest.(check bool) "null eq" true (V.equal V.Null V.Null);
  Alcotest.(check (option int)) "as_int" (Some 3) (V.as_int (V.int 3));
  Alcotest.(check (option int)) "as_int of term" None
    (V.as_int (V.term (Kg.Term.int 3)));
  Alcotest.(check bool) "as_interval" true
    (V.as_interval (V.interval (I.make 1 2)) = Some (I.make 1 2));
  Alcotest.(check bool) "hash consistent" true
    (V.hash (V.int 5) = V.hash (V.int 5))

let test_table_basics () =
  let t = people () in
  Alcotest.(check int) "cardinal" 3 (Tbl.cardinal t);
  Alcotest.(check int) "width" 3 (Tbl.width t);
  Alcotest.(check int) "column_index" 1 (Tbl.column_index t "age");
  (match Tbl.column_index t "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown column must raise");
  Alcotest.check value_testable "get" (V.int 41) (Tbl.get t 1).(1)

let test_table_schema_checks () =
  (match Tbl.create ~name:"dup" ~columns:[ "a"; "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate columns accepted");
  let t = Tbl.create ~name:"t" ~columns:[ "a" ] in
  match Tbl.insert t (row [ V.int 1; V.int 2 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch accepted"

let test_index_lookup () =
  let t = people () in
  Tbl.create_index t [ "city" ];
  let hits = Tbl.lookup t [ "city" ] [ V.term (Kg.Term.iri "london") ] in
  Alcotest.(check int) "two londoners" 2 (List.length hits);
  (* Index stays fresh under inserts. *)
  Tbl.insert t
    (row [ V.term (Kg.Term.iri "edsger"); V.int 72; V.term (Kg.Term.iri "london") ]);
  Alcotest.(check int) "three after insert" 3
    (List.length (Tbl.lookup t [ "city" ] [ V.term (Kg.Term.iri "london") ]));
  (* Lookup without an index scans. *)
  Alcotest.(check int) "scan on age" 1
    (List.length (Tbl.lookup t [ "age" ] [ V.int 85 ]))

let test_select_project_rename () =
  let t = people () in
  let adults =
    RA.select (fun r -> match V.as_int r.(1) with Some a -> a > 40 | None -> false) t
  in
  Alcotest.(check int) "two adults" 2 (Tbl.cardinal adults);
  let names = RA.project [ "name" ] adults in
  Alcotest.(check (list string)) "projected schema" [ "name" ] (Tbl.columns names);
  let renamed = RA.rename [ ("name", "who") ] names in
  Alcotest.(check (list string)) "renamed" [ "who" ] (Tbl.columns renamed)

let test_hash_join () =
  let joined = RA.hash_join ~on:[ ("city", "city") ] (people ()) (cities ()) in
  Alcotest.(check int) "three matches" 3 (Tbl.cardinal joined);
  Alcotest.(check (list string)) "join schema"
    [ "name"; "age"; "city"; "country" ]
    (Tbl.columns joined);
  (* Every output row is consistent with its inputs. *)
  Tbl.iter
    (fun r ->
      let city = r.(2) and country = r.(3) in
      let expected =
        if V.equal city (V.term (Kg.Term.iri "london")) then
          V.term (Kg.Term.iri "uk")
        else V.term (Kg.Term.iri "usa")
      in
      Alcotest.check value_testable "country" expected country)
    joined

let test_join_empty_sides () =
  let empty = Tbl.create ~name:"empty" ~columns:[ "city" ] in
  let j = RA.hash_join ~on:[ ("city", "city") ] empty (cities ()) in
  Alcotest.(check int) "left empty" 0 (Tbl.cardinal j);
  let j2 = RA.hash_join ~on:[ ("city", "city") ] (cities ()) empty in
  Alcotest.(check int) "right empty" 0 (Tbl.cardinal j2)

let test_product () =
  let p = RA.product (people ()) (cities ()) in
  Alcotest.(check int) "3x3" 9 (Tbl.cardinal p);
  Alcotest.(check int) "5 columns" 5 (Tbl.width p)

let test_union_distinct () =
  let t = people () in
  let u = RA.union t t in
  Alcotest.(check int) "bag union" 6 (Tbl.cardinal u);
  Alcotest.(check int) "distinct" 3 (Tbl.cardinal (RA.distinct u));
  let other = cities () in
  match RA.union t other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "schema mismatch accepted"

let test_sort_by () =
  let t = people () in
  let sorted = RA.sort_by [ "age" ] t in
  let ages =
    List.filter_map (fun r -> V.as_int r.(1)) (Tbl.to_list sorted)
  in
  Alcotest.(check (list int)) "ascending" [ 36; 41; 85 ] ages

let test_database () =
  let db = DB.create () in
  DB.add_table db (people ());
  Alcotest.(check bool) "found" true (DB.table db "people" <> None);
  Alcotest.(check bool) "missing" true (DB.table db "nope" = None);
  let t = DB.get_or_create db ~name:"people" ~columns:[ "name"; "age"; "city" ] in
  Alcotest.(check int) "same table" 3 (Tbl.cardinal t);
  (match DB.get_or_create db ~name:"people" ~columns:[ "other" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "schema mismatch accepted");
  let fresh = DB.get_or_create db ~name:"new" ~columns:[ "a" ] in
  Alcotest.(check int) "fresh empty" 0 (Tbl.cardinal fresh);
  Alcotest.(check (list string)) "names" [ "new"; "people" ] (DB.names db)

(* Differential: above the partition threshold the join runs the
   partitioned code path — its output must equal the row-oriented
   reference as a multiset, and must be bitwise identical between a
   sequential run and a 4-worker pool (the determinism contract the
   grounding pipeline relies on). *)
let test_partitioned_join_matches_reference () =
  let n = 12_000 in
  (* 12k + 12k rows crosses the 16_384-row partition threshold. *)
  let mk name salt =
    let t = Tbl.create ~name ~columns:[ "k"; name ^ "v" ] in
    let rows = ref [] in
    let state = ref salt in
    for i = 0 to n - 1 do
      state := ((!state * 48271) + 11) land 0xFFFFFF;
      let k = !state mod 997 in
      Tbl.insert t (row [ V.int k; V.int i ]);
      rows := (k, i) :: !rows
    done;
    (t, List.rev !rows)
  in
  let left, left_rows = mk "l" 1 in
  let right, right_rows = mk "r" 2 in
  let seq = RA.hash_join ~on:[ ("k", "k") ] left right in
  let par =
    RA.hash_join
      ~pool:(Prelude.Pool.create ~jobs:4)
      ~on:[ ("k", "k") ] left right
  in
  Alcotest.(check int) "same cardinality" (Tbl.cardinal seq) (Tbl.cardinal par);
  Alcotest.(check bool) "jobs=4 bitwise equals jobs=1" true
    (Tbl.to_list seq = Tbl.to_list par);
  let by_key = Hashtbl.create 997 in
  List.iter
    (fun (k, rv) ->
      Hashtbl.replace by_key k
        (rv :: Option.value (Hashtbl.find_opt by_key k) ~default:[]))
    right_rows;
  let expected =
    List.concat_map
      (fun (k, lv) ->
        List.rev_map
          (fun rv -> (k, lv, rv))
          (Option.value (Hashtbl.find_opt by_key k) ~default:[]))
      left_rows
    |> List.sort compare
  in
  let got =
    Tbl.to_list seq
    |> List.map (fun r ->
           match (V.as_int r.(0), V.as_int r.(1), V.as_int r.(2)) with
           | Some k, Some lv, Some rv -> (k, lv, rv)
           | _ -> Alcotest.fail "non-int cell in join output")
    |> List.sort compare
  in
  Alcotest.(check int) "reference cardinality" (List.length expected)
    (List.length got);
  Alcotest.(check bool) "matches row-oriented reference" true (expected = got)

(* Property: hash join agrees with nested-loop join. *)
let arbitrary_rows =
  QCheck.(
    list_of_size (Gen.int_range 0 30) (pair (int_range 0 8) (int_range 0 8)))

let qcheck_join_vs_nested_loop =
  QCheck.Test.make ~name:"hash_join = nested loop join" ~count:300
    QCheck.(pair arbitrary_rows arbitrary_rows)
    (fun (left_rows, right_rows) ->
      let mk name cols rows =
        let t = Tbl.create ~name ~columns:cols in
        List.iter
          (fun (k, v) -> Tbl.insert t (row [ V.int k; V.int v ]))
          rows;
        t
      in
      let left = mk "l" [ "k"; "lv" ] left_rows in
      let right = mk "r" [ "k"; "rv" ] right_rows in
      let joined = RA.hash_join ~on:[ ("k", "k") ] left right in
      let fast =
        Tbl.to_list joined
        |> List.map (fun r -> (V.as_int r.(0), V.as_int r.(1), V.as_int r.(2)))
        |> List.sort compare
      in
      let naive =
        List.concat_map
          (fun (k, lv) ->
            List.filter_map
              (fun (k', rv) ->
                if k = k' then Some (Some k, Some lv, Some rv) else None)
              right_rows)
          left_rows
        |> List.sort compare
      in
      fast = naive)

let () =
  Alcotest.run "reldb"
    [
      ( "value",
        [ Alcotest.test_case "kinds" `Quick test_value_kinds ] );
      ( "table",
        [
          Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "schema checks" `Quick test_table_schema_checks;
          Alcotest.test_case "index lookup" `Quick test_index_lookup;
        ] );
      ( "relalg",
        [
          Alcotest.test_case "select/project/rename" `Quick
            test_select_project_rename;
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "join empty sides" `Quick test_join_empty_sides;
          Alcotest.test_case "partitioned join = reference" `Quick
            test_partitioned_join_matches_reference;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "union/distinct" `Quick test_union_distinct;
          Alcotest.test_case "sort_by" `Quick test_sort_by;
          QCheck_alcotest.to_alcotest qcheck_join_vs_nested_loop;
        ] );
      ( "database",
        [ Alcotest.test_case "registry" `Quick test_database ] );
    ]
