(* Tests for temporal coalescing and timelines. *)

module C = Kg.Coalesce
module G = Kg.Graph
module Q = Kg.Quad
module T = Kg.Term
module I = Kg.Interval

let facts_of g = List.map Q.to_string (G.to_list g)

let test_merges_overlapping () =
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "b") (2001, 2003) 0.5;
        Q.v "a" "p" (T.iri "b") (2002, 2005) 0.5;
      ]
  in
  let merged = C.coalesce g in
  Alcotest.(check int) "one fact" 1 (G.size merged);
  let q = List.hd (G.to_list merged) in
  Alcotest.(check int) "lo" 2001 (I.lo q.Q.time);
  Alcotest.(check int) "hi" 2005 (I.hi q.Q.time);
  (* noisy-or: 1 - 0.5*0.5 *)
  Alcotest.(check bool) "noisy-or confidence" true
    (Float.abs (q.Q.confidence -. 0.75) < 1e-9)

let test_merges_adjacent () =
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "b") (2001, 2003) 0.9;
        Q.v "a" "p" (T.iri "b") (2004, 2006) 0.9;
      ]
  in
  let merged = C.coalesce g in
  Alcotest.(check int) "adjacent merge" 1 (G.size merged);
  Alcotest.(check int) "hull hi" 2006 (I.hi (List.hd (G.to_list merged)).Q.time)

let test_keeps_gaps () =
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "b") (2001, 2002) 0.9;
        Q.v "a" "p" (T.iri "b") (2005, 2006) 0.9;
      ]
  in
  Alcotest.(check int) "gap preserved" 2 (G.size (C.coalesce g))

let test_distinct_statements_untouched () =
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "b") (2001, 2003) 0.9;
        Q.v "a" "p" (T.iri "c") (2002, 2004) 0.9;
        Q.v "a" "q" (T.iri "b") (2001, 2003) 0.9;
        Q.v "z" "p" (T.iri "b") (2001, 2003) 0.9;
      ]
  in
  Alcotest.(check int) "no cross-statement merge" 4 (G.size (C.coalesce g))

let test_unsorted_input () =
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "b") (2005, 2007) 0.6;
        Q.v "a" "p" (T.iri "b") (2001, 2003) 0.6;
        Q.v "a" "p" (T.iri "b") (2003, 2005) 0.6;
      ]
  in
  let merged = C.coalesce g in
  Alcotest.(check (list string)) "single chain"
    [ "(a, p, b, [2001,2007]) 0.936" ]
    (facts_of merged)

let test_confidence_capped () =
  let g =
    G.of_list
      (List.init 100 (fun i -> Q.v "a" "p" (T.iri "b") (i, i + 1) 0.9))
  in
  let merged = C.coalesce g in
  Alcotest.(check int) "all merged" 1 (G.size merged);
  let q = List.hd (G.to_list merged) in
  Alcotest.(check bool) "confidence <= 1" true (q.Q.confidence <= 1.0)

let test_timeline_segments_sorted () =
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "late") (2010, 2012) 0.9;
        Q.v "a" "p" (T.iri "early") (2001, 2003) 0.9;
      ]
  in
  let t = C.timeline g ~subject:(T.iri "a") ~predicate:(T.iri "p") in
  Alcotest.(check int) "two segments" 2 (List.length t.C.segments);
  Alcotest.(check string) "sorted" "early"
    (T.to_string (List.hd t.C.segments).C.object_)

let test_timeline_gap_detection () =
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "x") (2001, 2003) 0.9;
        Q.v "a" "p" (T.iri "y") (2008, 2010) 0.9;
      ]
  in
  let t = C.timeline g ~subject:(T.iri "a") ~predicate:(T.iri "p") in
  match t.C.issues with
  | [ C.Gap gap ] ->
      Alcotest.(check int) "gap lo" 2004 (I.lo gap);
      Alcotest.(check int) "gap hi" 2007 (I.hi gap)
  | _ -> Alcotest.fail "expected one gap"

let test_timeline_overlap_detection () =
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "x") (2001, 2005) 0.9;
        Q.v "a" "p" (T.iri "y") (2004, 2008) 0.9;
      ]
  in
  let t = C.timeline g ~subject:(T.iri "a") ~predicate:(T.iri "p") in
  match t.C.issues with
  | [ C.Overlap (i, a, b) ] ->
      Alcotest.(check int) "overlap lo" 2004 (I.lo i);
      Alcotest.(check int) "overlap hi" 2005 (I.hi i);
      Alcotest.(check bool) "objects" true
        (T.to_string a = "x" && T.to_string b = "y")
  | _ -> Alcotest.fail "expected one overlap"

let test_timeline_same_object_overlap_ok () =
  (* Overlapping segments of the same object are not an issue (they
     coalesce away). *)
  let g =
    G.of_list
      [
        Q.v "a" "p" (T.iri "x") (2001, 2005) 0.9;
        Q.v "a" "p" (T.iri "x") (2004, 2008) 0.9;
      ]
  in
  let t = C.timeline g ~subject:(T.iri "a") ~predicate:(T.iri "p") in
  Alcotest.(check int) "no issues" 0 (List.length t.C.issues)

let test_timeline_empty () =
  let g = G.create () in
  let t = C.timeline g ~subject:(T.iri "a") ~predicate:(T.iri "p") in
  Alcotest.(check int) "no segments" 0 (List.length t.C.segments);
  Alcotest.(check int) "no issues" 0 (List.length t.C.issues)

(* Property: coalescing preserves the covered time points per statement. *)
let arbitrary_intervals =
  QCheck.(
    list_of_size (Gen.int_range 1 20)
      (pair (int_range 0 50) (int_range 0 8)))

let covered quads =
  let points = Hashtbl.create 64 in
  List.iter
    (fun (q : Q.t) ->
      for p = I.lo q.Q.time to I.hi q.Q.time do
        Hashtbl.replace points p ()
      done)
    quads;
  Hashtbl.fold (fun p () acc -> p :: acc) points [] |> List.sort Int.compare

let qcheck_coverage_preserved =
  QCheck.Test.make ~name:"coalesce preserves covered time points" ~count:300
    arbitrary_intervals (fun spans ->
      let quads =
        List.map (fun (lo, len) -> Q.v "a" "p" (T.iri "b") (lo, lo + len) 0.9) spans
      in
      let g = G.of_list quads in
      covered (G.to_list (C.coalesce g)) = covered quads)

let qcheck_no_mergeable_remains =
  QCheck.Test.make ~name:"no two output intervals are mergeable" ~count:300
    arbitrary_intervals (fun spans ->
      let quads =
        List.map (fun (lo, len) -> Q.v "a" "p" (T.iri "b") (lo, lo + len) 0.9) spans
      in
      let out = G.to_list (C.coalesce (G.of_list quads)) in
      List.for_all
        (fun (a : Q.t) ->
          List.for_all
            (fun (b : Q.t) ->
              Q.equal a b
              || not
                   (I.overlaps a.Q.time b.Q.time
                   || I.hi a.Q.time + 1 = I.lo b.Q.time
                   || I.hi b.Q.time + 1 = I.lo a.Q.time))
            out)
        out)

(* Canonical form of a graph: statement + interval keys sorted, with
   confidences compared separately under a small tolerance (noisy-or
   accumulation is order-independent only up to float association). *)
let canonical g =
  G.to_list g
  |> List.map (fun (q : Q.t) ->
         ( ( T.to_string q.Q.subject,
             T.to_string q.Q.predicate,
             T.to_string q.Q.object_,
             I.lo q.Q.time,
             I.hi q.Q.time ),
           q.Q.confidence ))
  |> List.sort compare

let canonical_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ka, ca) (kb, cb) -> ka = kb && Float.abs (ca -. cb) <= 1e-9)
       a b

let arbitrary_quads =
  (* Several statements so merging interleaves across groups. *)
  QCheck.(
    list_of_size (Gen.int_range 1 25)
      (quad (int_range 0 2) (int_range 0 2) (pair (int_range 0 40) (int_range 0 6))
         (int_range 1 9)))
  |> QCheck.map
       (List.map (fun (s, p, (lo, len), c) ->
            Q.v
              (Printf.sprintf "s%d" s)
              (Printf.sprintf "p%d" p)
              (T.iri "o") (lo, lo + len)
              (float_of_int c /. 10.0)))

let qcheck_idempotent =
  QCheck.Test.make ~name:"coalesce is idempotent" ~count:300 arbitrary_quads
    (fun quads ->
      let once = C.coalesce (G.of_list quads) in
      let twice = C.coalesce once in
      canonical_equal (canonical once) (canonical twice))

let shuffle seed l =
  let rng = Prelude.Prng.create seed in
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Prelude.Prng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let qcheck_order_independent =
  QCheck.Test.make ~name:"coalesce is insertion-order independent" ~count:300
    QCheck.(pair arbitrary_quads (int_bound 1_000_000))
    (fun (quads, seed) ->
      let a = C.coalesce (G.of_list quads) in
      let b = C.coalesce (G.of_list (shuffle seed quads)) in
      canonical_equal (canonical a) (canonical b))

let () =
  Alcotest.run "coalesce"
    [
      ( "coalesce",
        [
          Alcotest.test_case "merges overlapping" `Quick test_merges_overlapping;
          Alcotest.test_case "merges adjacent" `Quick test_merges_adjacent;
          Alcotest.test_case "keeps gaps" `Quick test_keeps_gaps;
          Alcotest.test_case "distinct statements untouched" `Quick
            test_distinct_statements_untouched;
          Alcotest.test_case "unsorted input" `Quick test_unsorted_input;
          Alcotest.test_case "confidence capped" `Quick test_confidence_capped;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "segments sorted" `Quick test_timeline_segments_sorted;
          Alcotest.test_case "gap detection" `Quick test_timeline_gap_detection;
          Alcotest.test_case "overlap detection" `Quick
            test_timeline_overlap_detection;
          Alcotest.test_case "same-object overlap ok" `Quick
            test_timeline_same_object_overlap_ok;
          Alcotest.test_case "empty" `Quick test_timeline_empty;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_coverage_preserved;
          QCheck_alcotest.to_alcotest qcheck_no_mergeable_remains;
          QCheck_alcotest.to_alcotest qcheck_idempotent;
          QCheck_alcotest.to_alcotest qcheck_order_independent;
        ] );
    ]
