(* Tests for RDF terms and uncertain temporal facts. *)

module T = Kg.Term
module Q = Kg.Quad
module I = Kg.Interval

let term_testable = Alcotest.testable T.pp T.equal
let quad_testable = Alcotest.testable Q.pp Q.equal

let test_term_constructors () =
  Alcotest.check term_testable "iri" (T.Iri "a") (T.iri "a");
  Alcotest.check term_testable "str" (T.Str "a") (T.str "a");
  Alcotest.check term_testable "int" (T.Int 3) (T.int 3);
  Alcotest.check term_testable "float" (T.Flt 2.5) (T.float 2.5)

let test_term_equal_across_kinds () =
  Alcotest.(check bool) "iri vs str" false (T.equal (T.iri "a") (T.str "a"));
  Alcotest.(check bool) "int vs float" false (T.equal (T.int 1) (T.float 1.0))

let test_term_compare_total () =
  let terms = [ T.iri "b"; T.str "a"; T.int 5; T.float 1.5; T.iri "a" ] in
  let sorted = List.sort T.compare terms in
  Alcotest.(check int) "sorted length" 5 (List.length sorted);
  (* compare is a total order: sorting twice gives the same list. *)
  Alcotest.(check bool) "stable" true (List.sort T.compare sorted = sorted)

let test_term_as_int () =
  Alcotest.(check (option int)) "int" (Some 5) (T.as_int (T.int 5));
  Alcotest.(check (option int)) "year string" (Some 1951) (T.as_int (T.str "1951"));
  Alcotest.(check (option int)) "year iri" (Some 1951) (T.as_int (T.iri "1951"));
  Alcotest.(check (option int)) "integral float" (Some 2) (T.as_int (T.float 2.0));
  Alcotest.(check (option int)) "fractional" None (T.as_int (T.float 2.5));
  Alcotest.(check (option int)) "word" None (T.as_int (T.iri "Chelsea"))

let test_term_of_string () =
  Alcotest.check term_testable "int" (T.int 42) (T.of_string "42");
  Alcotest.check term_testable "float" (T.float 1.5) (T.of_string "1.5");
  Alcotest.check term_testable "quoted" (T.str "hi there") (T.of_string "\"hi there\"");
  Alcotest.check term_testable "iri" (T.iri "ex:CR") (T.of_string "ex:CR")

let test_term_hash_consistent () =
  Alcotest.(check bool) "equal terms equal hash" true
    (T.hash (T.iri "x") = T.hash (T.iri "x"))

let test_quad_make () =
  let q = Q.v "CR" "coach" (T.iri "Chelsea") (2000, 2004) 0.9 in
  Alcotest.(check bool) "confidence" true (q.Q.confidence = 0.9);
  Alcotest.(check bool) "not certain" false (Q.is_certain q);
  let s, p, o = Q.triple q in
  Alcotest.check term_testable "subject" (T.iri "CR") s;
  Alcotest.check term_testable "predicate" (T.iri "coach") p;
  Alcotest.check term_testable "object" (T.iri "Chelsea") o

let test_quad_invalid_confidence () =
  let mk c = Q.v "a" "p" (T.iri "b") (1, 2) c in
  (match mk 0.0 with
  | exception Q.Invalid _ -> ()
  | _ -> Alcotest.fail "confidence 0 must be rejected");
  (match mk 1.5 with
  | exception Q.Invalid _ -> ()
  | _ -> Alcotest.fail "confidence 1.5 must be rejected");
  match mk (-0.1) with
  | exception Q.Invalid _ -> ()
  | _ -> Alcotest.fail "negative confidence must be rejected"

let test_quad_literal_predicate () =
  match
    Q.make ~subject:(T.iri "a") ~predicate:(T.int 5) ~object_:(T.iri "b")
      (I.make 1 2)
  with
  | exception Q.Invalid _ -> ()
  | _ -> Alcotest.fail "literal predicate must be rejected"

let test_quad_weight () =
  let w p = Q.weight (Q.v "a" "p" (T.iri "b") (1, 2) p) in
  Alcotest.(check bool) "0.9 positive" true (w 0.9 > 0.0);
  Alcotest.(check bool) "0.5 zero" true (Float.abs (w 0.5) < 1e-9);
  Alcotest.(check bool) "0.2 negative" true (w 0.2 < 0.0);
  Alcotest.(check bool) "1.0 capped" true (w 1.0 = Q.max_weight);
  Alcotest.(check bool) "monotone" true (w 0.9 > w 0.7 && w 0.7 > w 0.6)

let test_quad_same_statement () =
  let a = Q.v "s" "p" (T.iri "o") (1, 5) 0.9 in
  let b = Q.v "s" "p" (T.iri "o") (1, 5) 0.4 in
  let c = Q.v "s" "p" (T.iri "o") (1, 6) 0.9 in
  Alcotest.(check bool) "same modulo confidence" true (Q.same_statement a b);
  Alcotest.(check bool) "not equal" false (Q.equal a b);
  Alcotest.(check bool) "different interval" false (Q.same_statement a c)

let test_quad_certain_default () =
  let q =
    Q.make ~subject:(T.iri "a") ~predicate:(T.iri "p") ~object_:(T.iri "b")
      (I.make 1 2)
  in
  Alcotest.(check bool) "default confidence 1.0" true (Q.is_certain q)

let test_quad_pp () =
  let q = Q.v "CR" "coach" (T.iri "Chelsea") (2000, 2004) 0.9 in
  Alcotest.(check string) "paper notation"
    "(CR, coach, Chelsea, [2000,2004]) 0.9" (Q.to_string q);
  let certain = Q.v "CR" "birthDate" (T.int 1951) (1951, 2017) 1.0 in
  Alcotest.(check string) "certain omits confidence"
    "(CR, birthDate, 1951, [1951,2017])" (Q.to_string certain)

let test_quad_compare_total () =
  let quads =
    [
      Q.v "b" "p" (T.iri "o") (1, 2) 0.5;
      Q.v "a" "p" (T.iri "o") (1, 2) 0.5;
      Q.v "a" "p" (T.iri "o") (1, 2) 0.9;
      Q.v "a" "o" (T.iri "o") (1, 2) 0.5;
    ]
  in
  let sorted = List.sort Q.compare quads in
  Alcotest.(check bool) "self compare 0" true
    (List.for_all (fun q -> Q.compare q q = 0) quads);
  Alcotest.(check bool) "sorted idempotent" true
    (List.sort Q.compare sorted = sorted)

let test_quad_equal_hash () =
  let a = Q.v "s" "p" (T.iri "o") (1, 5) 0.9 in
  let b = Q.v "s" "p" (T.iri "o") (1, 5) 0.9 in
  Alcotest.check quad_testable "structurally equal" a b;
  Alcotest.(check bool) "hash agrees" true (Q.hash a = Q.hash b)

let () =
  Alcotest.run "term-quad"
    [
      ( "term",
        [
          Alcotest.test_case "constructors" `Quick test_term_constructors;
          Alcotest.test_case "equality across kinds" `Quick
            test_term_equal_across_kinds;
          Alcotest.test_case "total order" `Quick test_term_compare_total;
          Alcotest.test_case "as_int" `Quick test_term_as_int;
          Alcotest.test_case "of_string" `Quick test_term_of_string;
          Alcotest.test_case "hash" `Quick test_term_hash_consistent;
        ] );
      ( "quad",
        [
          Alcotest.test_case "make" `Quick test_quad_make;
          Alcotest.test_case "invalid confidence" `Quick
            test_quad_invalid_confidence;
          Alcotest.test_case "literal predicate" `Quick
            test_quad_literal_predicate;
          Alcotest.test_case "weight" `Quick test_quad_weight;
          Alcotest.test_case "same_statement" `Quick test_quad_same_statement;
          Alcotest.test_case "certain default" `Quick test_quad_certain_default;
          Alcotest.test_case "pp" `Quick test_quad_pp;
          Alcotest.test_case "compare total" `Quick test_quad_compare_total;
          Alcotest.test_case "equal/hash" `Quick test_quad_equal_hash;
        ] );
    ]
