(* Tests for the synthetic dataset generators: determinism, cardinality
   shapes matching the paper, clean-data consistency and planted-noise
   detectability. *)

module FB = Datagen.Footballdb
module WD = Datagen.Wikidata

let test_footballdb_deterministic () =
  let a = FB.generate ~seed:5 ~players:200 ~noise_ratio:0.2 () in
  let b = FB.generate ~seed:5 ~players:200 ~noise_ratio:0.2 () in
  Alcotest.(check int) "same size" (Kg.Graph.size a.FB.graph)
    (Kg.Graph.size b.FB.graph);
  List.iter2
    (fun qa qb ->
      Alcotest.(check bool) "same fact" true (Kg.Quad.equal qa qb))
    (Kg.Graph.to_list a.FB.graph)
    (Kg.Graph.to_list b.FB.graph);
  Alcotest.(check (list int)) "same planted ids" a.FB.planted b.FB.planted;
  let c = FB.generate ~seed:6 ~players:200 ~noise_ratio:0.2 () in
  Alcotest.(check bool) "different seed differs" false
    (Kg.Graph.size c.FB.graph = Kg.Graph.size a.FB.graph
    && List.for_all2 Kg.Quad.equal
         (Kg.Graph.to_list c.FB.graph)
         (Kg.Graph.to_list a.FB.graph))

let test_footballdb_shape () =
  let d = FB.generate ~players:6500 () in
  let count p =
    List.length (Kg.Graph.by_predicate d.FB.graph (Kg.Term.iri p))
  in
  (* Paper: >13K playsFor, >6K birthDate. *)
  Alcotest.(check bool)
    (Printf.sprintf "playsFor %d > 13000" (count "playsFor"))
    true
    (count "playsFor" > 13_000);
  Alcotest.(check int) "one birthDate per player" 6500 (count "birthDate");
  Alcotest.(check int) "no planted noise by default" 0 (List.length d.FB.planted)

let test_footballdb_clean_is_consistent () =
  let d = FB.generate ~players:300 () in
  let result =
    Tecore.Engine.resolve
      ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
      d.FB.graph (FB.constraints ())
  in
  Alcotest.(check int) "no conflicts in clean data" 0
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.conflicting);
  Alcotest.(check int) "nothing removed" 0
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed)

let test_footballdb_noise_ratio () =
  let d = FB.generate ~players:500 ~noise_ratio:0.5 () in
  let planted = List.length d.FB.planted in
  let expected = int_of_float (0.5 *. float_of_int d.FB.clean_facts) in
  Alcotest.(check bool)
    (Printf.sprintf "planted %d ~ %d" planted expected)
    true
    (abs (planted - expected) <= expected / 10);
  Alcotest.(check int) "graph holds clean + noise"
    (d.FB.clean_facts + planted)
    (Kg.Graph.size d.FB.graph)

let test_footballdb_noise_is_conflicting () =
  let d = FB.generate ~seed:3 ~players:400 ~noise_ratio:0.4 () in
  let result =
    Tecore.Engine.resolve
      ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
      d.FB.graph (FB.constraints ())
  in
  let conflicting = result.Tecore.Engine.resolution.Tecore.Conflict.conflicting in
  (* Most planted errors participate in a detected conflict. *)
  let detected =
    List.length (List.filter (fun id -> List.mem id conflicting) d.FB.planted)
  in
  let rate = float_of_int detected /. float_of_int (List.length d.FB.planted) in
  Alcotest.(check bool)
    (Printf.sprintf "detected rate %.2f > 0.9" rate)
    true (rate > 0.9)

let test_footballdb_debugging_quality () =
  let d = FB.generate ~seed:4 ~players:400 ~noise_ratio:0.5 () in
  let result =
    Tecore.Engine.resolve
      ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
      d.FB.graph (FB.constraints ())
  in
  let removed =
    List.map fst result.Tecore.Engine.resolution.Tecore.Conflict.removed
  in
  let tp = List.length (List.filter (fun id -> List.mem id d.FB.planted) removed) in
  let precision = float_of_int tp /. float_of_int (max 1 (List.length removed)) in
  let recall = float_of_int tp /. float_of_int (max 1 (List.length d.FB.planted)) in
  Alcotest.(check bool)
    (Printf.sprintf "precision %.2f > 0.7" precision)
    true (precision > 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "recall %.2f > 0.7" recall)
    true (recall > 0.7)

let test_footballdb_rules_parse () =
  Alcotest.(check int) "three constraints" 3 (List.length (FB.constraints ()));
  Alcotest.(check int) "one rule" 1 (List.length (FB.rules ()));
  List.iter
    (fun r ->
      Alcotest.(check bool) "constraints are hard" true (Logic.Rule.is_hard r))
    (FB.constraints ())

let test_wikidata_deterministic () =
  let a = WD.generate ~seed:9 ~total_facts:2000 ~conflict_rate:0.1 () in
  let b = WD.generate ~seed:9 ~total_facts:2000 ~conflict_rate:0.1 () in
  Alcotest.(check int) "same size" (Kg.Graph.size a.WD.graph)
    (Kg.Graph.size b.WD.graph);
  Alcotest.(check (list int)) "same planted" a.WD.planted b.WD.planted

let test_wikidata_shape () =
  let d = WD.generate ~total_facts:20_000 () in
  let counts = d.WD.relation_counts in
  let count r = Option.value (List.assoc_opt r counts) ~default:0 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  Alcotest.(check bool)
    (Printf.sprintf "total %d within 10%% of 20000" total)
    true
    (abs (total - 20_000) < 2_000);
  (* playsFor dominates, as in the paper's 4M of 6.3M. *)
  Alcotest.(check bool) "playsFor majority" true
    (count "playsFor" * 2 > total);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " present") true (count r > 0))
    [ "playsFor"; "spouse"; "memberOf"; "educatedAt"; "occupation" ]

let test_wikidata_clean_is_consistent () =
  let d = WD.generate ~total_facts:3000 () in
  let result =
    Tecore.Engine.resolve
      ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
      d.WD.graph (WD.constraints ())
  in
  (* The two hard constraints hold on clean data (the soft education
     constraint may be violated; it must not remove anything on its own
     beyond confidence trade-offs, so we only check hard conflicts). *)
  Alcotest.(check int) "no hard conflicts" 0
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.conflicting)

let test_wikidata_conflict_rate () =
  let d = WD.generate ~total_facts:10_000 ~conflict_rate:0.0812 () in
  let planted = List.length d.WD.planted in
  Alcotest.(check bool)
    (Printf.sprintf "planted %d ~ 812" planted)
    true
    (abs (planted - 812) <= 81)

let test_wikidata_conflicts_detected () =
  let d = WD.generate ~seed:21 ~total_facts:5000 ~conflict_rate:0.08 () in
  let result =
    Tecore.Engine.resolve
      ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
      d.WD.graph (WD.constraints ())
  in
  let conflicting = result.Tecore.Engine.resolution.Tecore.Conflict.conflicting in
  let detected =
    List.length (List.filter (fun id -> List.mem id conflicting) d.WD.planted)
  in
  let rate = float_of_int detected /. float_of_int (List.length d.WD.planted) in
  Alcotest.(check bool)
    (Printf.sprintf "planted conflicts detected: %.2f > 0.9" rate)
    true (rate > 0.9)

let test_wikidata_rules_parse () =
  Alcotest.(check int) "three constraints" 3 (List.length (WD.constraints ()));
  Alcotest.(check int) "one rule" 1 (List.length (WD.rules ()))

let test_names_pools () =
  Alcotest.(check int) "32 teams" 32 (Array.length Datagen.Names.football_teams);
  Alcotest.(check bool) "clubs distinct" true
    (let l = Array.to_list Datagen.Names.football_clubs in
     List.length (List.sort_uniq String.compare l) = List.length l);
  let rng = Prelude.Prng.create 1 in
  let a = Datagen.Names.person rng 1 and b = Datagen.Names.person rng 2 in
  Alcotest.(check bool) "unique person names" false (String.equal a b)

let () =
  Alcotest.run "datagen"
    [
      ( "footballdb",
        [
          Alcotest.test_case "deterministic" `Quick test_footballdb_deterministic;
          Alcotest.test_case "paper shape" `Quick test_footballdb_shape;
          Alcotest.test_case "clean is consistent" `Quick
            test_footballdb_clean_is_consistent;
          Alcotest.test_case "noise ratio" `Quick test_footballdb_noise_ratio;
          Alcotest.test_case "noise is conflicting" `Quick
            test_footballdb_noise_is_conflicting;
          Alcotest.test_case "debugging quality" `Slow
            test_footballdb_debugging_quality;
          Alcotest.test_case "rules parse" `Quick test_footballdb_rules_parse;
        ] );
      ( "wikidata",
        [
          Alcotest.test_case "deterministic" `Quick test_wikidata_deterministic;
          Alcotest.test_case "paper shape" `Quick test_wikidata_shape;
          Alcotest.test_case "clean is consistent" `Quick
            test_wikidata_clean_is_consistent;
          Alcotest.test_case "conflict rate" `Quick test_wikidata_conflict_rate;
          Alcotest.test_case "conflicts detected" `Slow
            test_wikidata_conflicts_detected;
          Alcotest.test_case "rules parse" `Quick test_wikidata_rules_parse;
        ] );
      ( "names",
        [ Alcotest.test_case "pools" `Quick test_names_pools ] );
    ]
