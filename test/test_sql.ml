(* Tests for the SQL front-end over the relational engine. *)

module V = Reldb.Value
module Tbl = Reldb.Table
module DB = Reldb.Database
module Sql = Reldb.Sql

let db () =
  let db = DB.create () in
  let people = Tbl.create ~name:"people" ~columns:[ "name"; "age"; "city" ] in
  List.iter (Tbl.insert people)
    [
      [| V.term (Kg.Term.iri "ada"); V.int 36; V.term (Kg.Term.iri "london") |];
      [| V.term (Kg.Term.iri "alan"); V.int 41; V.term (Kg.Term.iri "london") |];
      [| V.term (Kg.Term.iri "grace"); V.int 85; V.term (Kg.Term.iri "arlington") |];
    ];
  DB.add_table db people;
  let cities = Tbl.create ~name:"cities" ~columns:[ "cname"; "country" ] in
  List.iter (Tbl.insert cities)
    [
      [| V.term (Kg.Term.iri "london"); V.term (Kg.Term.iri "uk") |];
      [| V.term (Kg.Term.iri "arlington"); V.term (Kg.Term.iri "usa") |];
    ];
  DB.add_table db cities;
  db

let run src =
  match Sql.query (db ()) src with
  | Ok table -> table
  | Error e -> Alcotest.fail e

let fails src =
  match Sql.query (db ()) src with
  | Ok _ -> Alcotest.fail ("should fail: " ^ src)
  | Error _ -> ()

let names table =
  Tbl.fold
    (fun acc row ->
      match V.as_term row.(0) with
      | Some t -> Kg.Term.to_string t :: acc
      | None -> acc)
    [] table
  |> List.rev

let test_select_star () =
  let t = run "SELECT * FROM people" in
  Alcotest.(check int) "all rows" 3 (Tbl.cardinal t);
  Alcotest.(check int) "all columns" 3 (Tbl.width t)

let test_projection () =
  let t = run "SELECT name, age FROM people" in
  Alcotest.(check (list string)) "columns" [ "name"; "age" ] (Tbl.columns t)

let test_where_string () =
  let t = run "SELECT name FROM people WHERE city = 'london'" in
  Alcotest.(check (list string)) "londoners" [ "ada"; "alan" ] (names t)

let test_where_number_comparison () =
  let t = run "SELECT name FROM people WHERE age > 40" in
  Alcotest.(check (list string)) "over 40" [ "alan"; "grace" ] (names t);
  let t = run "SELECT name FROM people WHERE age <= 41 AND city = 'london'" in
  Alcotest.(check (list string)) "conjunction" [ "ada"; "alan" ] (names t);
  let t = run "SELECT name FROM people WHERE city != 'london'" in
  Alcotest.(check (list string)) "negation" [ "grace" ] (names t)

let test_order_and_limit () =
  let t = run "SELECT name FROM people ORDER BY age LIMIT 2" in
  Alcotest.(check (list string)) "youngest two" [ "ada"; "alan" ] (names t);
  let t = run "SELECT name FROM people ORDER BY name LIMIT 1" in
  Alcotest.(check (list string)) "alphabetical" [ "ada" ] (names t)

let test_join () =
  let t =
    run "SELECT name, country FROM people JOIN cities ON city = cname WHERE country = 'uk'"
  in
  Alcotest.(check (list string)) "uk residents" [ "ada"; "alan" ] (names t);
  Alcotest.(check (list string)) "projected" [ "name"; "country" ]
    (Tbl.columns t)

let test_case_insensitive_keywords () =
  let t = run "select name from people where age >= 85" in
  Alcotest.(check (list string)) "lowercase keywords" [ "grace" ] (names t)

let test_errors () =
  fails "SELECT name FROM nope";
  fails "SELECT nope FROM people";
  fails "SELECT name FROM people WHERE nope = 1";
  fails "SELECT name FROM people WHERE age";
  fails "FROM people";
  fails "SELECT name FROM people LIMIT x";
  fails "SELECT name FROM people ORDER age";
  fails "SELECT name FROM people trailing"

let test_grounding_tables_queryable () =
  (* The grounder's extension tables answer SQL directly. *)
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
        Kg.Quad.v "Kid" "coach" (Kg.Term.iri "Ajax") (2010, 2012) 0.8;
      ]
  in
  let store = Grounder.Atom_store.of_graph graph in
  let db = Grounder.Atom_store.database store in
  match Reldb.Sql.query db "SELECT a0, a1 FROM coach/2@ WHERE a0 = 'CR'" with
  | Ok t -> Alcotest.(check int) "CR rows" 2 (Tbl.cardinal t)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "sql"
    [
      ( "queries",
        [
          Alcotest.test_case "select star" `Quick test_select_star;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "where string" `Quick test_where_string;
          Alcotest.test_case "where numbers" `Quick test_where_number_comparison;
          Alcotest.test_case "order/limit" `Quick test_order_and_limit;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "case-insensitive" `Quick
            test_case_insensitive_keywords;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "grounder tables" `Quick
            test_grounding_tables_queryable;
        ] );
    ]
