(* Tests for the temporal-quads serialisation format. *)

module N = Kg.Nquads
module G = Kg.Graph
module Q = Kg.Quad
module T = Kg.Term

let quad_testable = Alcotest.testable Q.pp Q.equal

let parse_ok text =
  match N.parse_string text with
  | Ok g -> g
  | Error e -> Alcotest.fail (Format.asprintf "%a" N.pp_error e)

let parse_err text =
  match N.parse_string text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let test_basic_fact () =
  let g = parse_ok "ex:CR ex:coach ex:Chelsea [2000,2004] 0.9 ." in
  Alcotest.(check int) "one fact" 1 (G.size g);
  let q = List.hd (G.to_list g) in
  Alcotest.check quad_testable "expanded"
    (Q.v "http://example.org/CR" "http://example.org/coach"
       (T.iri "http://example.org/Chelsea")
       (2000, 2004) 0.9)
    q

let test_default_confidence () =
  let g = parse_ok "ex:CR ex:birthDate 1951 [1951,2017] ." in
  let q = List.hd (G.to_list g) in
  Alcotest.(check bool) "certain" true (Q.is_certain q);
  Alcotest.check (Alcotest.testable T.pp T.equal) "int object" (T.int 1951)
    q.Q.object_

let test_optional_dot () =
  let g = parse_ok "a p b [1,2] 0.5" in
  Alcotest.(check int) "fact without dot" 1 (G.size g)

let test_comments_and_blanks () =
  let g =
    parse_ok
      "# a comment\n\n  \t\na p b [1,2] 0.5 . # trailing comment\n# done\n"
  in
  Alcotest.(check int) "one fact" 1 (G.size g)

let test_prefix_directive () =
  let g =
    parse_ok
      "@prefix foo: <http://foo.example/> .\nfoo:x foo:p foo:y [1,2] .\n"
  in
  let q = List.hd (G.to_list g) in
  Alcotest.(check string) "expanded subject" "http://foo.example/x"
    (T.to_string q.Q.subject)

let test_explicit_iri () =
  let g = parse_ok "<http://a/s> <http://a/p> <http://a/o> [3] ." in
  let q = List.hd (G.to_list g) in
  Alcotest.(check string) "subject" "http://a/s" (T.to_string q.Q.subject);
  Alcotest.(check int) "point interval" 3 (Kg.Interval.lo q.Q.time)

let test_string_literal () =
  let g = parse_ok {|a label "hello world" [1,2] 0.8 .|} in
  let q = List.hd (G.to_list g) in
  Alcotest.check (Alcotest.testable T.pp T.equal) "string object"
    (T.str "hello world") q.Q.object_

let contains ~needle hay =
  let n = String.length needle and m = String.length hay in
  let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* Malformed inputs must come back as [Error] with the offending line
   (and, for lexical errors, the column) — never as an exception. *)
let test_malformed_regressions () =
  let cases =
    [
      (* input, expected line, fragment the message must mention *)
      ("a p \"unterminated [1,2] .", 1, "unterminated string literal");
      ("a p <no-close [1,2] .", 1, "unterminated <iri>");
      ("a p b [1,2 .", 1, "unterminated [interval]");
      ("a p b [5,3] .", 1, "");             (* inverted interval *)
      ("a p b [x,y] .", 1, "");             (* non-numeric bounds *)
      ("a p b [1,2] 0.5 junk extra .", 1, "field");
      ("a p b [1,2] nan .", 1, "");         (* nan confidence rejected *)
      ("a p b [1,2] inf .", 1, "");
      ("a p b [1,2] -0.5 .", 1, "");
      ("a p b [1,2] 0.0 .", 1, "");         (* zero confidence invalid *)
      ("a p b [1,2] 1.5 .", 1, "");         (* above one invalid *)
      ("ok p b [1,2] .\na p \"oops [1,2] .", 2, "unterminated string literal");
      ("ok p b [1,2] .\n\n# comment\nbad bad\n", 4, "field");
    ]
  in
  List.iter
    (fun (input, line, fragment) ->
      match N.parse_string input with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" input
      | Error e ->
          Alcotest.(check int)
            (Printf.sprintf "line for %S" input)
            line e.N.line;
          if fragment <> "" then
            Alcotest.(check bool)
              (Printf.sprintf "message %S mentions %S" e.N.message fragment)
              true
              (contains ~needle:fragment e.N.message)
      | exception exn ->
          Alcotest.failf "raised %s on %S" (Printexc.to_string exn) input)
    cases

let test_error_columns () =
  let e = parse_err "a p \"late unterminated [1,2] ." in
  Alcotest.(check (option int)) "structured column" (Some 5) e.N.column;
  Alcotest.(check bool)
    (Printf.sprintf "pp_error renders the column of %S" e.N.message)
    true
    (contains ~needle:"column 5" (Format.asprintf "%a" N.pp_error e));
  (* Structural errors carry no column. *)
  let e = parse_err "a p b\n" in
  Alcotest.(check (option int)) "no column" None e.N.column;
  (* The single-line entry point keeps embedding the column in its
     string error for backwards compatibility. *)
  (match N.parse_quad (Kg.Namespace.create ()) "a p \"oops [1,2] ." with
  | Ok _ -> Alcotest.fail "accepted unterminated string"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "parse_quad embeds column in %S" msg)
        true
        (contains ~needle:"(column 5)" msg))

let test_errors () =
  let e = parse_err "a p b\n" in
  Alcotest.(check int) "line 1" 1 e.N.line;
  let e = parse_err "ok p b [1,2] .\nbad bad\n" in
  Alcotest.(check int) "line 2" 2 e.N.line;
  ignore (parse_err "a p b [5,3] .");
  ignore (parse_err "a p b [1,2] conf .");
  ignore (parse_err "a p b [1,2] 1.5 .");
  (* confidence above 1 *)
  ignore (parse_err "@prefix broken\n")

let test_roundtrip_explicit () =
  let ns = Kg.Namespace.create () in
  let g =
    parse_ok
      {|ex:CR ex:coach ex:Chelsea [2000,2004] 0.9 .
ex:CR ex:birthDate 1951 [1951,2017] .
ex:CR ex:label "the tinkerman" [2000,2004] 0.7 .|}
  in
  let text = N.to_string ~namespace:ns g in
  let g' = parse_ok text in
  Alcotest.(check int) "same size" (G.size g) (G.size g');
  List.iter2
    (fun a b -> Alcotest.check quad_testable "fact preserved" a b)
    (G.to_list g) (G.to_list g')

let test_file_roundtrip () =
  let g = parse_ok "a p b [1,2] 0.5 ." in
  let path = Filename.temp_file "tecore" ".tq" in
  N.save_file path g;
  (match N.parse_file path with
  | Ok g' -> Alcotest.(check int) "file roundtrip" (G.size g) (G.size g')
  | Error e -> Alcotest.fail (Format.asprintf "%a" N.pp_error e));
  Sys.remove path

let test_parse_quad_single () =
  let ns = Kg.Namespace.create () in
  (match N.parse_quad ns "ex:a ex:p ex:b [1,5] 0.75" with
  | Ok q -> Alcotest.(check bool) "confidence" true (q.Q.confidence = 0.75)
  | Error e -> Alcotest.fail e);
  match N.parse_quad ns "too few" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

(* Round-trip property over generated graphs. *)
let arbitrary_quads =
  let quad_gen =
    QCheck.map
      (fun ((s, o), (lo, len), conf10) ->
        Q.v
          (Printf.sprintf "s%d" s)
          "pred"
          (T.iri (Printf.sprintf "o%d" o))
          (lo, lo + len)
          (float_of_int (conf10 + 1) /. 10.0))
      QCheck.(
        triple
          (pair (int_range 0 20) (int_range 0 20))
          (pair (int_range (-50) 50) (int_range 0 30))
          (int_range 0 9))
  in
  QCheck.(list_of_size (Gen.int_range 0 40) quad_gen)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:200 arbitrary_quads
    (fun quads ->
      let g = G.of_list quads in
      match N.parse_string (N.to_string g) with
      | Error _ -> false
      | Ok g' ->
          let xs = G.to_list g and ys = G.to_list g' in
          List.length xs = List.length ys && List.for_all2 Q.equal xs ys)

let () =
  Alcotest.run "nquads"
    [
      ( "parsing",
        [
          Alcotest.test_case "basic fact" `Quick test_basic_fact;
          Alcotest.test_case "default confidence" `Quick test_default_confidence;
          Alcotest.test_case "optional dot" `Quick test_optional_dot;
          Alcotest.test_case "comments/blanks" `Quick test_comments_and_blanks;
          Alcotest.test_case "prefix directive" `Quick test_prefix_directive;
          Alcotest.test_case "explicit iri" `Quick test_explicit_iri;
          Alcotest.test_case "string literal" `Quick test_string_literal;
          Alcotest.test_case "errors with line numbers" `Quick test_errors;
          Alcotest.test_case "malformed regressions" `Quick
            test_malformed_regressions;
          Alcotest.test_case "error columns" `Quick test_error_columns;
          Alcotest.test_case "parse_quad" `Quick test_parse_quad_single;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "explicit" `Quick test_roundtrip_explicit;
          Alcotest.test_case "file" `Quick test_file_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
    ]
