(* Tests for the LP/ILP substrate: simplex and branch & bound. *)

module Lp = Ilp.Lp
module Simplex = Ilp.Simplex
module Milp = Ilp.Milp

let check_optimal ?(eps = 1e-6) name lp expected =
  match Simplex.solve lp with
  | Lp.Optimal { value; x } ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: value %g ~ %g" name value expected)
        true
        (Float.abs (value -. expected) < eps);
      Alcotest.(check bool) (name ^ ": feasible") true (Lp.feasible lp x)
  | Lp.Infeasible -> Alcotest.fail (name ^ ": unexpectedly infeasible")
  | Lp.Unbounded -> Alcotest.fail (name ^ ": unexpectedly unbounded")

let test_simplex_basic () =
  (* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> 12 at (4, 0). *)
  let lp =
    Lp.make ~num_vars:2 ~objective:[| 3.0; 2.0 |]
      [
        Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 4.0;
        Lp.constr [ (0, 1.0); (1, 3.0) ] Lp.Le 6.0;
      ]
  in
  check_optimal "basic" lp 12.0

let test_simplex_interior () =
  (* max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> 8/3 at (4/3, 4/3). *)
  let lp =
    Lp.make ~num_vars:2 ~objective:[| 1.0; 1.0 |]
      [
        Lp.constr [ (0, 2.0); (1, 1.0) ] Lp.Le 4.0;
        Lp.constr [ (0, 1.0); (1, 2.0) ] Lp.Le 4.0;
      ]
  in
  check_optimal "interior vertex" lp (8.0 /. 3.0)

let test_simplex_infeasible () =
  let lp =
    Lp.make ~num_vars:1 ~objective:[| 1.0 |]
      [
        Lp.constr [ (0, 1.0) ] Lp.Ge 2.0;
        Lp.constr [ (0, 1.0) ] Lp.Le 1.0;
      ]
  in
  match Simplex.solve lp with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let lp =
    Lp.make ~num_vars:2 ~objective:[| 1.0; 0.0 |]
      [ Lp.constr [ (1, 1.0) ] Lp.Le 3.0 ]
  in
  match Simplex.solve lp with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_equality () =
  (* max x + y s.t. x + y = 3, x >= 1 -> 3. *)
  let lp =
    Lp.make ~num_vars:2 ~objective:[| 1.0; 1.0 |]
      [
        Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Eq 3.0;
        Lp.constr [ (0, 1.0) ] Lp.Ge 1.0;
      ]
  in
  check_optimal "equality" lp 3.0

let test_simplex_negative_rhs () =
  (* x >= -2 written as -x <= 2; max -x s.t. x >= 1 -> -1. *)
  let lp =
    Lp.make ~num_vars:1 ~objective:[| -1.0 |]
      [ Lp.constr [ (0, -1.0) ] Lp.Le (-1.0) ]
  in
  check_optimal "negative rhs" lp (-1.0)

let test_simplex_degenerate () =
  (* Degenerate vertex: redundant constraints through the optimum. *)
  let lp =
    Lp.make ~num_vars:2 ~objective:[| 1.0; 1.0 |]
      [
        Lp.constr [ (0, 1.0) ] Lp.Le 1.0;
        Lp.constr [ (1, 1.0) ] Lp.Le 1.0;
        Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 2.0;
        Lp.constr [ (0, 2.0); (1, 2.0) ] Lp.Le 4.0;
      ]
  in
  check_optimal "degenerate" lp 2.0

let test_simplex_zero_objective () =
  let lp =
    Lp.make ~num_vars:1 ~objective:[| 0.0 |]
      [ Lp.constr [ (0, 1.0) ] Lp.Le 5.0 ]
  in
  check_optimal "zero objective" lp 0.0

let test_milp_vertex_cover_style () =
  (* max x+y+z with x+y <= 1, y+z <= 1 -> 2 (x and z). *)
  let lp =
    Lp.make ~num_vars:3 ~objective:[| 1.0; 1.0; 1.0 |]
      [
        Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 1.0;
        Lp.constr [ (1, 1.0); (2, 1.0) ] Lp.Le 1.0;
      ]
  in
  match Milp.solve ~binary:[ 0; 1; 2 ] lp with
  | Some r ->
      Alcotest.(check bool) "value 2" true (Float.abs (r.Milp.value -. 2.0) < 1e-6);
      Alcotest.(check bool) "optimal" true r.Milp.optimal;
      Alcotest.(check bool) "x=1" true (r.Milp.x.(0) = 1.0);
      Alcotest.(check bool) "y=0" true (r.Milp.x.(1) = 0.0);
      Alcotest.(check bool) "z=1" true (r.Milp.x.(2) = 1.0)
  | None -> Alcotest.fail "expected a solution"

let test_milp_fractional_relaxation () =
  (* Odd cycle: LP relaxation gives 1.5, ILP optimum is 1. *)
  let lp =
    Lp.make ~num_vars:3 ~objective:[| 1.0; 1.0; 1.0 |]
      [
        Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 1.0;
        Lp.constr [ (1, 1.0); (2, 1.0) ] Lp.Le 1.0;
        Lp.constr [ (0, 1.0); (2, 1.0) ] Lp.Le 1.0;
      ]
  in
  (match Simplex.solve lp with
  | Lp.Optimal { value; _ } ->
      Alcotest.(check bool) "relaxation 1.5" true (Float.abs (value -. 1.5) < 1e-6)
  | _ -> Alcotest.fail "relaxation failed");
  match Milp.solve ~binary:[ 0; 1; 2 ] lp with
  | Some r ->
      Alcotest.(check bool) "integer optimum 1" true
        (Float.abs (r.Milp.value -. 1.0) < 1e-6);
      Alcotest.(check bool) "branched" true (r.Milp.nodes > 1)
  | None -> Alcotest.fail "expected a solution"

let test_milp_infeasible () =
  let lp =
    Lp.make ~num_vars:1 ~objective:[| 1.0 |]
      [
        Lp.constr [ (0, 1.0) ] Lp.Ge 2.0;
      ]
  in
  (* x binary but x >= 2: infeasible. *)
  match Milp.solve ~binary:[ 0 ] lp with
  | None -> ()
  | Some _ -> Alcotest.fail "expected infeasible"

let test_milp_weighted_choice () =
  (* Choose at most one of each conflicting pair, maximise weights:
     conflicts (0,1) and (2,3); weights 5,3,2,4 -> pick 0 and 3 = 9. *)
  let lp =
    Lp.make ~num_vars:4 ~objective:[| 5.0; 3.0; 2.0; 4.0 |]
      [
        Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 1.0;
        Lp.constr [ (2, 1.0); (3, 1.0) ] Lp.Le 1.0;
      ]
  in
  match Milp.solve ~binary:[ 0; 1; 2; 3 ] lp with
  | Some r ->
      Alcotest.(check bool) "value 9" true (Float.abs (r.Milp.value -. 9.0) < 1e-6)
  | None -> Alcotest.fail "expected a solution"

(* Property: on random weighted-conflict instances, the MILP optimum is
   feasible, integral, and at least as good as the greedy solution. *)
let arbitrary_instance =
  QCheck.(
    pair
      (list_of_size (Gen.int_range 1 6) (int_range 1 20))
      (list_of_size (Gen.int_range 0 8) (pair (int_range 0 5) (int_range 0 5))))

let qcheck_milp_beats_greedy =
  QCheck.Test.make ~name:"milp >= greedy on conflict graphs" ~count:100
    arbitrary_instance
    (fun (weights, conflicts) ->
      let n = List.length weights in
      let weights = Array.of_list (List.map float_of_int weights) in
      let conflicts =
        List.filter (fun (a, b) -> a < n && b < n && a <> b) conflicts
      in
      let lp =
        Lp.make ~num_vars:n ~objective:weights
          (List.map
             (fun (a, b) -> Lp.constr [ (a, 1.0); (b, 1.0) ] Lp.Le 1.0)
             conflicts)
      in
      match Milp.solve ~binary:(List.init n (fun i -> i)) lp with
      | None -> false
      | Some r ->
          (* Greedy: take vertices in weight order when compatible. *)
          let order = List.init n (fun i -> i) in
          let order =
            List.sort (fun a b -> compare weights.(b) weights.(a)) order
          in
          let taken = Array.make n false in
          List.iter
            (fun v ->
              let ok =
                List.for_all
                  (fun (a, b) ->
                    not ((a = v && taken.(b)) || (b = v && taken.(a))))
                  conflicts
              in
              if ok then taken.(v) <- true)
            order;
          let greedy =
            Array.to_list (Array.mapi (fun i t -> if t then weights.(i) else 0.0) taken)
            |> List.fold_left ( +. ) 0.0
          in
          let integral =
            List.for_all
              (fun i -> r.Milp.x.(i) = 0.0 || r.Milp.x.(i) = 1.0)
              (List.init n (fun i -> i))
          in
          integral && Lp.feasible lp r.Milp.x && r.Milp.value >= greedy -. 1e-6)

(* Differential property: on random small all-binary MILPs, branch &
   bound must agree with brute force over every 0/1 assignment. Integer
   coefficients keep feasibility decisions far from the solver's eps
   boundaries, so the comparison is exact up to float rounding. *)
let arbitrary_milp =
  QCheck.(
    pair
      (list_of_size (Gen.int_range 1 4) (int_range (-9) 9))
      (list_of_size (Gen.int_range 0 5)
         (triple
            (list_of_size (Gen.int_range 1 4) (int_range (-3) 3))
            (int_range 0 2) (int_range (-4) 6))))

let qcheck_milp_matches_brute_force =
  QCheck.Test.make ~name:"milp = brute force on random 0/1 programs"
    ~count:300 arbitrary_milp
    (fun (objective, raw_constraints) ->
      let n = List.length objective in
      let objective = Array.of_list (List.map float_of_int objective) in
      let constraints =
        List.map
          (fun (coeffs, op, rhs) ->
            let coeffs =
              List.mapi (fun i c -> (i mod n, float_of_int c)) coeffs
            in
            let op = match op with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq in
            Lp.constr coeffs op (float_of_int rhs))
          raw_constraints
      in
      let lp = Lp.make ~num_vars:n ~objective constraints in
      let binary = List.init n (fun i -> i) in
      (* Brute force over all 2^n assignments. *)
      let brute = ref None in
      for mask = 0 to (1 lsl n) - 1 do
        let x =
          Array.init n (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0)
        in
        if Lp.feasible lp x then begin
          let value = Lp.eval_objective lp x in
          match !brute with
          | Some best when best >= value -> ()
          | _ -> brute := Some value
        end
      done;
      match (Milp.solve ~binary lp, !brute) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some r, Some best ->
          r.Milp.optimal
          && Float.abs (r.Milp.value -. best) < 1e-6
          && Lp.feasible lp r.Milp.x)

let () =
  Alcotest.run "ilp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "interior vertex" `Quick test_simplex_interior;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "zero objective" `Quick test_simplex_zero_objective;
        ] );
      ( "milp",
        [
          Alcotest.test_case "conflict pairs" `Quick test_milp_vertex_cover_style;
          Alcotest.test_case "fractional relaxation" `Quick
            test_milp_fractional_relaxation;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "weighted choice" `Quick test_milp_weighted_choice;
          QCheck_alcotest.to_alcotest qcheck_milp_beats_greedy;
          QCheck_alcotest.to_alcotest qcheck_milp_matches_brute_force;
        ] );
    ]
