(* Tests for MC-SAT, validated against exact enumeration on tiny
   networks. *)

module Network = Mln.Network
module Mcsat = Mln.Mcsat

let unit_clause atom positive weight =
  {
    Network.literals = [| { Network.atom; positive } |];
    weight;
    source = "test";
  }

let binary_clause (a, pa) (b, pb) weight =
  {
    Network.literals =
      [| { Network.atom = a; positive = pa }; { Network.atom = b; positive = pb } |];
    weight;
    source = "test";
  }

(* Exact marginals by world enumeration: P(x) ∝ exp(Σ w·sat) over worlds
   satisfying all hard clauses. *)
let exact_marginals (network : Network.t) =
  let n = network.num_atoms in
  let marginals = Array.make n 0.0 in
  let z = ref 0.0 in
  for world = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> (world lsr i) land 1 = 1) in
    let hard_ok =
      Array.for_all
        (fun (c : Network.clause) ->
          c.weight <> None || Network.clause_satisfied c x)
        network.clauses
    in
    if hard_ok then begin
      let energy =
        Array.fold_left
          (fun acc (c : Network.clause) ->
            match c.weight with
            | Some w when Network.clause_satisfied c x -> acc +. w
            | _ -> acc)
          0.0 network.clauses
      in
      let p = exp energy in
      z := !z +. p;
      Array.iteri (fun i v -> if v then marginals.(i) <- marginals.(i) +. p) x
    end
  done;
  Array.map (fun m -> m /. !z) marginals

let check_against_exact ?(tol = 0.05) network ~samples =
  let exact = exact_marginals network in
  let approx = Mcsat.run ~seed:3 ~burn_in:200 ~samples network in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "atom %d: mcsat %.3f ~ exact %.3f" i
           approx.Mcsat.marginals.(i) e)
        true
        (Float.abs (approx.Mcsat.marginals.(i) -. e) < tol))
    exact

let test_soft_only () =
  let network =
    {
      Network.num_atoms = 2;
      clauses =
        [|
          unit_clause 0 true (Some 1.0);
          unit_clause 1 true (Some 0.5);
          binary_clause (0, false) (1, true) (Some 0.7);
        |];
    }
  in
  check_against_exact network ~samples:4_000

let test_hard_exclusion_exact_zeroes () =
  (* Hard mutual exclusion plus pulls: the joint world (T,T) must never
     be sampled. *)
  let network =
    {
      Network.num_atoms = 2;
      clauses =
        [|
          unit_clause 0 true (Some 2.0);
          unit_clause 1 true (Some 1.0);
          binary_clause (0, false) (1, false) None;
        |];
    }
  in
  check_against_exact network ~samples:4_000;
  (* Also: in every sample both can never be true; the marginals sum to
     at most 1 + tolerance. *)
  let r = Mcsat.run ~seed:5 ~burn_in:200 ~samples:2_000 network in
  Alcotest.(check bool) "mutually exclusive mass" true
    (r.Mcsat.marginals.(0) +. r.Mcsat.marginals.(1) <= 1.05)

let test_hard_implication_chain () =
  (* Hard chain a -> b -> c with a pulled up: all three marginals ~ the
     same (worlds violating the chain are excluded). *)
  let network =
    {
      Network.num_atoms = 3;
      clauses =
        [|
          unit_clause 0 true (Some 1.5);
          binary_clause (0, false) (1, true) None;
          binary_clause (1, false) (2, true) None;
        |];
    }
  in
  check_against_exact network ~samples:4_000;
  let r = Mcsat.run ~seed:7 ~burn_in:200 ~samples:2_000 network in
  Alcotest.(check bool) "chain propagates" true
    (r.Mcsat.marginals.(2) >= r.Mcsat.marginals.(0) -. 0.05)

let test_unsatisfiable_hard_rejected () =
  let network =
    {
      Network.num_atoms = 1;
      clauses = [| unit_clause 0 true None; unit_clause 0 false None |];
    }
  in
  match Mcsat.run ~samples:10 network with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsatisfiable hard clauses accepted"

let test_deterministic () =
  let network =
    { Network.num_atoms = 1; clauses = [| unit_clause 0 true (Some 1.0) |] }
  in
  let a = Mcsat.run ~seed:9 ~samples:500 network in
  let b = Mcsat.run ~seed:9 ~samples:500 network in
  Alcotest.(check bool) "same seed same marginals" true
    (a.Mcsat.marginals = b.Mcsat.marginals)

let test_on_running_example () =
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
      ]
  in
  let rules =
    match
      Rulelang.Parser.parse_string
        "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "parse"
  in
  let store = Grounder.Atom_store.of_graph graph in
  let ground = Grounder.Ground.run store rules in
  let network = Network.build store ground.Grounder.Ground.instances in
  let r = Mcsat.run ~seed:11 ~burn_in:200 ~samples:2_000 network in
  Alcotest.(check bool) "chelsea likelier" true
    (r.Mcsat.marginals.(0) > r.Mcsat.marginals.(1));
  Alcotest.(check bool) "never both (hard)" true
    (r.Mcsat.marginals.(0) +. r.Mcsat.marginals.(1) <= 1.05)

let () =
  Alcotest.run "mcsat"
    [
      ( "marginals",
        [
          Alcotest.test_case "soft only vs exact" `Quick test_soft_only;
          Alcotest.test_case "hard exclusion" `Quick
            test_hard_exclusion_exact_zeroes;
          Alcotest.test_case "hard chain" `Quick test_hard_implication_chain;
          Alcotest.test_case "unsat rejected" `Quick
            test_unsatisfiable_hard_rejected;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "running example" `Quick test_on_running_example;
        ] );
    ]
