(* Tests for the MLN engine: network compilation, the three MAP solvers
   (and their mutual agreement on small instances), and CPI. *)

module Network = Mln.Network
module Store = Grounder.Atom_store
open Logic

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let cr_graph () =
  Kg.Graph.of_list
    [
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Leicester") (2015, 2017) 0.7;
      Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
      Kg.Quad.v "CR" "birthDate" (Kg.Term.int 1951) (1951, 2017) 1.0;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
    ]

let cr_rules () =
  parse_rules
    {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .|}

let build_cr () =
  let store = Store.of_graph (cr_graph ()) in
  let result = Grounder.Ground.run store (cr_rules ()) in
  (store, Network.build store result.Grounder.Ground.instances)

let test_network_shape () =
  let _store, network = build_cr () in
  Alcotest.(check int) "six atoms" 6 network.Network.num_atoms;
  let hard =
    Array.fold_left
      (fun acc (c : Network.clause) -> if c.weight = None then acc + 1 else acc)
      0 network.Network.clauses
  in
  (* 1 hard evidence (birthDate) + 1 deduplicated hard violation clause
     for the Chelsea/Napoli clash. *)
  Alcotest.(check int) "hard clauses" 2 hard

let test_clause_satisfaction_and_score () =
  let store, network = build_cr () in
  let everything_true = Array.make network.Network.num_atoms true in
  Alcotest.(check bool) "all-true violates the clash" true
    (Network.hard_violations network everything_true > 0);
  let init = Network.initial_assignment network store in
  Alcotest.(check bool) "evidence init also violates" true
    (Network.hard_violations network init > 0);
  (* Score + cost partition the total soft weight. *)
  let total =
    Array.fold_left
      (fun acc (c : Network.clause) ->
        match c.weight with Some w -> acc +. w | None -> acc)
      0.0 network.Network.clauses
  in
  Alcotest.(check bool) "score + cost = total" true
    (Float.abs (Network.score network init +. Network.cost network init -. total)
    < 1e-9)

let solve_walk network store =
  fst
    (Mln.Maxwalksat.solve ~seed:5
       ~init:(Network.initial_assignment network store)
       network)

let assignment_to_facts store assignment =
  let kept = ref [] in
  Store.iter
    (fun id atom origin ->
      if assignment.(id) then
        match origin with
        | Store.Evidence _ -> kept := Atom.Ground.to_string atom :: !kept
        | Store.Hidden -> ())
    store;
  List.sort String.compare !kept

let expected_kept =
  [
    "birthDate(CR, 1951)@[1951,2017]";
    "coach(CR, Chelsea)@[2000,2004]";
    "coach(CR, Leicester)@[2015,2017]";
    "playsFor(CR, Palermo)@[1984,1986]";
  ]

let test_walk_running_example () =
  let store, network = build_cr () in
  let assignment = solve_walk network store in
  Alcotest.(check int) "no hard violations" 0
    (Network.hard_violations network assignment);
  Alcotest.(check (list string)) "figure 7" expected_kept
    (assignment_to_facts store assignment)

let test_exact_running_example () =
  let store, network = build_cr () in
  match Mln.Exact.solve network with
  | Some { Mln.Exact.assignment; optimal; _ } ->
      Alcotest.(check bool) "optimal" true optimal;
      Alcotest.(check int) "no hard violations" 0
        (Network.hard_violations network assignment);
      Alcotest.(check (list string)) "figure 7" expected_kept
        (assignment_to_facts store assignment)
  | None -> Alcotest.fail "exact solver failed"

let test_ilp_running_example () =
  let store, network = build_cr () in
  match Mln.Ilp_encoding.solve network with
  | Some (assignment, optimal) ->
      Alcotest.(check bool) "optimal" true optimal;
      Alcotest.(check (list string)) "figure 7" expected_kept
        (assignment_to_facts store assignment)
  | None -> Alcotest.fail "ilp solver failed"

let test_exact_unsat_hard () =
  (* Two contradictory hard unit clauses. *)
  let network =
    {
      Network.num_atoms = 1;
      clauses =
        [|
          { Network.literals = [| { Network.atom = 0; positive = true } |];
            weight = None; source = "a" };
          { Network.literals = [| { Network.atom = 0; positive = false } |];
            weight = None; source = "b" };
        |];
    }
  in
  Alcotest.(check bool) "unsatisfiable" true (Mln.Exact.solve network = None);
  Alcotest.(check bool) "ilp agrees" true (Mln.Ilp_encoding.solve network = None)

let test_cpi_agrees_with_direct () =
  let store, network = build_cr () in
  let init = Network.initial_assignment network store in
  let solver net ~init =
    (fst (Mln.Maxwalksat.solve ~seed:5 ~init net), Prelude.Deadline.Completed)
  in
  let direct = fst (solver network ~init) in
  let cpi, stats = Mln.Cpi.solve ~solver ~init network in
  Alcotest.(check int) "same hard"
    (Network.hard_violations network direct)
    (Network.hard_violations network cpi);
  Alcotest.(check bool) "same score" true
    (Float.abs (Network.score network direct -. Network.score network cpi) < 1e-6);
  Alcotest.(check bool) "cpi activated fewer clauses" true
    (stats.Mln.Cpi.active_clauses <= stats.Mln.Cpi.total_clauses);
  Alcotest.(check bool) "at least one iteration" true (stats.Mln.Cpi.iterations >= 1)

let test_map_inference_pipeline () =
  let options =
    { Mln.Map_inference.default_options with Mln.Map_inference.use_cpi = false }
  in
  let out = Mln.Map_inference.run ~options (cr_graph ()) (cr_rules ()) in
  Alcotest.(check int) "atoms" 6 out.Mln.Map_inference.stats.Mln.Map_inference.atoms;
  Alcotest.(check int) "evidence" 5
    out.Mln.Map_inference.stats.Mln.Map_inference.evidence_atoms;
  Alcotest.(check int) "hidden" 1
    out.Mln.Map_inference.stats.Mln.Map_inference.hidden_atoms;
  Alcotest.(check int) "no hard violations" 0
    out.Mln.Map_inference.stats.Mln.Map_inference.hard_violations;
  Alcotest.(check bool) "napoli removed" false
    out.Mln.Map_inference.assignment.(4)

(* Random small networks: all three solvers must agree on the optimum
   (modulo ties, compare objective values not assignments). *)
let random_network rng =
  let num_atoms = 2 + Prelude.Prng.int rng 5 in
  let num_clauses = 3 + Prelude.Prng.int rng 8 in
  let clauses =
    Array.init num_clauses (fun i ->
        let len = 1 + Prelude.Prng.int rng 3 in
        let literals =
          Array.init len (fun _ ->
              {
                Network.atom = Prelude.Prng.int rng num_atoms;
                positive = Prelude.Prng.bool rng;
              })
        in
        (* Avoid tautologies (solvers treat them fine but they blur the
           objective comparison with Network.score). *)
        let tautology =
          Array.exists
            (fun (l : Network.literal) ->
              Array.exists
                (fun (l' : Network.literal) ->
                  l.atom = l'.atom && l.positive <> l'.positive)
                literals)
            literals
        in
        let literals =
          if tautology then
            [| { Network.atom = Prelude.Prng.int rng num_atoms; positive = true } |]
          else literals
        in
        {
          Network.literals;
          weight = Some (0.5 +. Prelude.Prng.float rng 3.0);
          source = Printf.sprintf "c%d" i;
        })
  in
  { Network.num_atoms; clauses }

let test_solvers_agree_on_random_networks () =
  let rng = Prelude.Prng.create 99 in
  for _ = 1 to 50 do
    let network = random_network rng in
    let exact =
      match Mln.Exact.solve network with
      | Some r -> r
      | None -> Alcotest.fail "soft-only network cannot be unsat"
    in
    Alcotest.(check bool) "exact optimal" true exact.Mln.Exact.optimal;
    let exact_score = Network.score network exact.Mln.Exact.assignment in
    (match Mln.Ilp_encoding.solve network with
    | Some (x, true) ->
        let ilp_score = Network.score network x in
        Alcotest.(check bool)
          (Printf.sprintf "ilp %.4f = exact %.4f" ilp_score exact_score)
          true
          (Float.abs (ilp_score -. exact_score) < 1e-6)
    | Some (_, false) -> Alcotest.fail "ilp hit the node budget"
    | None -> Alcotest.fail "ilp infeasible on soft-only network");
    (* MaxWalkSAT is a stochastic local search: it trades optimality for
       scalability (the paper's PSL-vs-MLN story in miniature). Demand
       near-optimality, not exactness. *)
    let walk, _ =
      Mln.Maxwalksat.solve ~seed:3 ~max_flips:50_000 ~restarts:8 ~noise:0.3
        network
    in
    let walk_score = Network.score network walk in
    Alcotest.(check bool)
      (Printf.sprintf "walk %.4f within 95%% of optimum %.4f" walk_score
         exact_score)
      true
      (walk_score >= (0.95 *. exact_score) -. 1e-6)
  done

let test_negative_confidence_evidence () =
  (* Confidence < 0.5 evidence becomes a negated unit clause; MAP should
     drop the fact even without constraints. *)
  let graph =
    Kg.Graph.of_list [ Kg.Quad.v "a" "p" (Kg.Term.iri "b") (1, 2) 0.2 ]
  in
  let out = Mln.Map_inference.run graph [] in
  Alcotest.(check bool) "dropped" false out.Mln.Map_inference.assignment.(0)

let test_hard_evidence_immovable () =
  (* Certain facts survive even when a hard constraint prefers dropping
     one of two conflicting uncertain facts. *)
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "x" "coach" (Kg.Term.iri "A") (2000, 2005) 1.0;
        Kg.Quad.v "x" "coach" (Kg.Term.iri "B") (2003, 2007) 0.95;
      ]
  in
  let rules =
    parse_rules
      "constraint c: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
  in
  let out = Mln.Map_inference.run graph rules in
  Alcotest.(check bool) "certain fact kept" true out.Mln.Map_inference.assignment.(0);
  Alcotest.(check bool) "uncertain fact dropped" false
    out.Mln.Map_inference.assignment.(1);
  Alcotest.(check int) "resolved" 0
    out.Mln.Map_inference.stats.Mln.Map_inference.hard_violations

let () =
  Alcotest.run "mln"
    [
      ( "network",
        [
          Alcotest.test_case "shape" `Quick test_network_shape;
          Alcotest.test_case "satisfaction/score" `Quick
            test_clause_satisfaction_and_score;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "walk on running example" `Quick
            test_walk_running_example;
          Alcotest.test_case "exact on running example" `Quick
            test_exact_running_example;
          Alcotest.test_case "ilp on running example" `Quick
            test_ilp_running_example;
          Alcotest.test_case "unsat hard detected" `Quick test_exact_unsat_hard;
          Alcotest.test_case "solvers agree on random nets" `Slow
            test_solvers_agree_on_random_networks;
        ] );
      ( "cpi",
        [ Alcotest.test_case "agrees with direct" `Quick test_cpi_agrees_with_direct ] );
      ( "pipeline",
        [
          Alcotest.test_case "map_inference" `Quick test_map_inference_pipeline;
          Alcotest.test_case "low-confidence evidence" `Quick
            test_negative_confidence_evidence;
          Alcotest.test_case "hard evidence immovable" `Quick
            test_hard_evidence_immovable;
        ] );
    ]
