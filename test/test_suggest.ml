(* Tests for automatic constraint suggestion. *)

module S = Tecore.Suggest

let config = { S.default_config with S.min_support = 5 }

(* A clean corpus: one person per index, disjoint club stints, birth
   before debut. *)
let clean_corpus n =
  let g = Kg.Graph.create () in
  for i = 0 to n - 1 do
    let who = Printf.sprintf "P%d" i in
    let birth = 1960 + (i mod 20) in
    ignore
      (Kg.Graph.add g
         (Kg.Quad.v who "birthDate" (Kg.Term.int birth) (birth, 2017) 0.95));
    ignore
      (Kg.Graph.add g
         (Kg.Quad.v who "playsFor"
            (Kg.Term.iri (Printf.sprintf "Club%d" (i mod 7)))
            (birth + 20, birth + 23)
            0.8));
    ignore
      (Kg.Graph.add g
         (Kg.Quad.v who "playsFor"
            (Kg.Term.iri (Printf.sprintf "Club%d" ((i + 3) mod 7)))
            (birth + 25, birth + 28)
            0.8))
  done;
  g

let find kind suggestions =
  List.find_opt
    (fun s ->
      match (kind, s.S.kind) with
      | `Disjoint p, S.Disjointness -> s.S.predicate = p
      | `Functional p, S.Functionality -> s.S.predicate = p
      | `Before (p, q), S.Precedence q' -> s.S.predicate = p && q = q'
      | _ -> false)
    suggestions

let test_mines_disjointness () =
  let suggestions = S.mine ~config (clean_corpus 50) in
  match find (`Disjoint "playsFor") suggestions with
  | Some s ->
      Alcotest.(check bool) "perfect ratio" true (s.S.ratio = 1.0);
      Alcotest.(check bool) "hard rule" true (Logic.Rule.is_hard s.S.rule);
      Alcotest.(check int) "no violations" 0 s.S.violations
  | None -> Alcotest.fail "playsFor disjointness not mined"

let test_mines_precedence () =
  let suggestions = S.mine ~config (clean_corpus 50) in
  match find (`Before ("birthDate", "playsFor")) suggestions with
  | Some s -> Alcotest.(check bool) "perfect" true (s.S.ratio = 1.0)
  | None -> Alcotest.fail "birth-before-playsFor not mined"

let test_noise_softens () =
  (* Corrupt a fraction of stints into overlaps: the disjointness
     suggestion should become soft (ratio < 1) or vanish. *)
  let g = clean_corpus 60 in
  for i = 0 to 7 do
    ignore
      (Kg.Graph.add g
         (Kg.Quad.v
            (Printf.sprintf "P%d" i)
            "playsFor"
            (Kg.Term.iri "Rogue")
            (1960 + (i mod 20) + 20, 1960 + (i mod 20) + 30)
            0.6))
  done;
  let suggestions = S.mine ~config g in
  match find (`Disjoint "playsFor") suggestions with
  | Some s ->
      Alcotest.(check bool) "ratio below 1" true (s.S.ratio < 1.0);
      Alcotest.(check bool) "soft rule" true (not (Logic.Rule.is_hard s.S.rule));
      Alcotest.(check bool) "violations counted" true (s.S.violations > 0)
  | None -> () (* dropping below min_ratio is also acceptable *)

let test_min_support_gate () =
  let suggestions = S.mine ~config:{ config with S.min_support = 10_000 }
      (clean_corpus 50)
  in
  Alcotest.(check int) "nothing with huge support gate" 0
    (List.length suggestions)

let test_functionality_mined () =
  (* A predicate whose same-subject intersecting facts always agree:
     birthDate with interval [year, 2017]. *)
  let g = Kg.Graph.create () in
  for i = 0 to 19 do
    let who = Printf.sprintf "P%d" (i mod 10) in
    (* Each person asserted twice with the same year. *)
    ignore
      (Kg.Graph.add g
         (Kg.Quad.v who "birthDate" (Kg.Term.int 1980) (1980, 2017) 0.9))
  done;
  let suggestions = S.mine ~config g in
  match find (`Functional "birthDate") suggestions with
  | Some s -> Alcotest.(check bool) "perfect" true (s.S.ratio = 1.0)
  | None -> Alcotest.fail "birthDate functionality not mined"

let test_suggestions_are_runnable () =
  let corpus = clean_corpus 40 in
  let suggestions = S.mine ~config corpus in
  Alcotest.(check bool) "some suggestions" true (suggestions <> []);
  (* Resolving the clean corpus under its own mined constraints removes
     nothing. *)
  let rules = List.map (fun s -> s.S.rule) suggestions in
  let result = Tecore.Engine.resolve corpus rules in
  Alcotest.(check int) "clean corpus stays intact" 0
    (List.length result.Tecore.Engine.resolution.Tecore.Conflict.removed)

let test_mined_constraints_catch_noise () =
  (* Mine on clean data, then debug a noisy graph with the suggestions. *)
  let suggestions = S.mine ~config (clean_corpus 60) in
  let rules = List.map (fun s -> s.S.rule) suggestions in
  let noisy =
    Kg.Graph.of_list
      [
        Kg.Quad.v "X" "birthDate" (Kg.Term.int 1980) (1980, 2017) 0.95;
        Kg.Quad.v "X" "playsFor" (Kg.Term.iri "A") (2000, 2005) 0.9;
        Kg.Quad.v "X" "playsFor" (Kg.Term.iri "B") (2003, 2007) 0.5;
      ]
  in
  let result = Tecore.Engine.resolve noisy rules in
  let removed =
    List.map (fun (_, q) -> Kg.Quad.to_string q)
      result.Tecore.Engine.resolution.Tecore.Conflict.removed
  in
  Alcotest.(check (list string)) "overlap removed"
    [ "(X, playsFor, B, [2003,2007]) 0.5" ]
    removed

let test_ordering () =
  let suggestions = S.mine ~config (clean_corpus 50) in
  let ratios = List.map (fun s -> s.S.ratio) suggestions in
  Alcotest.(check bool) "sorted by ratio desc" true
    (List.sort (fun a b -> Float.compare b a) ratios = ratios)

let () =
  Alcotest.run "suggest"
    [
      ( "mining",
        [
          Alcotest.test_case "disjointness" `Quick test_mines_disjointness;
          Alcotest.test_case "precedence" `Quick test_mines_precedence;
          Alcotest.test_case "functionality" `Quick test_functionality_mined;
          Alcotest.test_case "noise softens" `Quick test_noise_softens;
          Alcotest.test_case "support gate" `Quick test_min_support_gate;
          Alcotest.test_case "ordering" `Quick test_ordering;
        ] );
      ( "integration",
        [
          Alcotest.test_case "runnable suggestions" `Quick
            test_suggestions_are_runnable;
          Alcotest.test_case "mined constraints catch noise" `Quick
            test_mined_constraints_catch_noise;
        ] );
    ]
