(* Concurrency and isolation for [tecore serve].

   K clients drive K independent sessions through one live server at the
   same time, each with its own deterministic edit script. The whole
   exercise is then replayed sequentially (one client after another)
   against a second server: per-session isolation and determinism mean
   every client's transcript — every response byte, including resolve
   summaries and error locations — must be identical in both runs,
   regardless of how the concurrent run interleaved. A second case pins
   the same property with 4 worker domains in the shared pool.

   The lane-determinism oracle extends the same discipline to the
   multi-lane resolver: pipelined concurrent clients through a --lanes 4
   server must be byte-identical to a sequential replay on --lanes 1,
   across every solver backend — concurrency never changes bytes. A
   head-of-line case proves the lanes do something: a resolve stalled on
   one lane must not delay a sibling lane's session. *)

module Prng = Prelude.Prng
module Engine = Tecore.Engine

let () = Prelude.Deadline.Faults.clear ()

(* ------------------------------------------------------------------ *)
(* Loopback client                                                     *)
(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; ic : in_channel }

let connect server =
  let fd = Serve.connect server in
  { fd; ic = Unix.in_channel_of_descr fd }

let close client = close_in_noerr client.ic

let post client line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write client.fd b off (n - off))
  in
  go 0

let request client line =
  post client line;
  match input_line client.ic with
  | resp -> resp
  | exception End_of_file ->
      Alcotest.failf "connection closed after %S" line

(* ------------------------------------------------------------------ *)
(* Deterministic per-client scripts                                    *)
(* ------------------------------------------------------------------ *)

let gen_script ~seed ~ops =
  let rng = Prng.create seed in
  let serial = ref 0 in
  let fact () =
    incr serial;
    let lo = 1900 + !serial in
    Printf.sprintf "ex:P%d ex:playsFor ex:T%d [%d,%d] 0.%d ."
      (Prng.int rng 4) (Prng.int rng 3) lo
      (lo + 1 + Prng.int rng 4)
      (5 + Prng.int rng 5)
  in
  let live = ref [] in
  let out = ref [] in
  let push l = out := l :: !out in
  push "open";
  push
    "constraint one_team: ex:playsFor(x, y)@t ^ ex:playsFor(x, z)@t2 ^ y != \
     z => disjoint(t, t2) .";
  for _ = 1 to 4 do
    let f = fact () in
    push ("assert " ^ f);
    live := f :: !live
  done;
  push "resolve";
  for _ = 1 to ops do
    match Prng.int rng 5 with
    | 0 | 1 ->
        let f = fact () in
        push ("assert " ^ f);
        live := f :: !live
    | 2 -> (
        match !live with
        | [] -> ()
        | l ->
            let f = List.nth l (Prng.int rng (List.length l)) in
            push ("retract " ^ f);
            live := List.filter (fun x -> x <> f) l)
    | _ -> push "resolve"
  done;
  push "resolve";
  push "stat";
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The exercise                                                        *)
(* ------------------------------------------------------------------ *)

(* Run every script against a fresh server and return one transcript per
   client: the request/response lines in order. [concurrent] runs one
   thread per client over simultaneous connections; otherwise the same
   scripts run one client after another. [pipeline] fires a client's
   whole script before reading any response, so responses must come
   back in request order for the transcript to match a replay. *)
let run_exercise ?(engine = Engine.Auto) ?lanes ?(pipeline = false) ~jobs
    ~concurrent scripts =
  let lanes =
    match lanes with Some n -> n | None -> Serve.default_config.Serve.lanes
  in
  let config = { Serve.default_config with Serve.engine; jobs; lanes } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let run_one i script =
        let c = connect server in
        let lines = Printf.sprintf "hello client-%d" i :: script in
        let transcript =
          if pipeline then begin
            List.iter (post c) lines;
            List.map
              (fun line ->
                match input_line c.ic with
                | resp -> resp
                | exception End_of_file ->
                    Alcotest.failf "connection closed before reply to %S" line)
              lines
          end
          else List.map (request c) lines
        in
        close c;
        transcript
      in
      let results =
        if concurrent then begin
          let out = Array.make (List.length scripts) [] in
          let threads =
            List.mapi
              (fun i script ->
                Thread.create (fun () -> out.(i) <- run_one i script) ())
              scripts
          in
          List.iter Thread.join threads;
          Array.to_list out
        end
        else List.mapi run_one scripts
      in
      Alcotest.(check int)
        "one session per client" (List.length scripts)
        (Serve.sessions_open server);
      Alcotest.(check int) "nothing shed" 0 (Serve.shed_count server);
      results)

let check_interleaving ~jobs () =
  let scripts = List.init 5 (fun i -> gen_script ~seed:(100 + i) ~ops:8) in
  let concurrent = run_exercise ~jobs ~concurrent:true scripts in
  let sequential = run_exercise ~jobs ~concurrent:false scripts in
  List.iteri
    (fun i (got, want) ->
      List.iteri
        (fun j (g, w) ->
          if g <> w then
            Alcotest.failf
              "client %d diverged at response %d under concurrency:\n\
               concurrent: %s\nsequential: %s"
              i j g w)
        (List.combine got want))
    (List.combine concurrent sequential)

(* ------------------------------------------------------------------ *)
(* Lane-determinism oracle                                             *)
(* ------------------------------------------------------------------ *)

(* The backend matrix of test_serve.ml. *)
let engines =
  let mln = Mln.Map_inference.default_options in
  [
    ("mln-walk-cpi", Engine.Mln mln);
    ("mln-walk", Engine.Mln { mln with Mln.Map_inference.use_cpi = false });
    ( "mln-ilp",
      Engine.Mln
        {
          mln with
          Mln.Map_inference.solver = Mln.Map_inference.Ilp_exact;
          use_cpi = false;
        } );
    ( "mln-bb",
      Engine.Mln
        {
          mln with
          Mln.Map_inference.solver = Mln.Map_inference.Exact_bb;
          use_cpi = false;
        } );
    ("psl", Engine.Psl Psl.Npsl.default_options);
  ]

(* The one deliberate multi-lane response divergence: stat responses
   carry a "lane" field when lanes > 1. Strip it so the oracle can
   demand byte-identity on everything else. *)
let strip_lane_field resp =
  let marker = ",\"lane\":" in
  let mlen = String.length marker in
  let n = String.length resp in
  let rec find i =
    if i + mlen > n then None
    else if String.sub resp i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> resp
  | Some i ->
      let j = ref (i + mlen) in
      while !j < n && resp.[!j] <> '}' && resp.[!j] <> ',' do
        incr j
      done;
      String.sub resp 0 i ^ String.sub resp !j (n - !j)

(* Random wire scripts from K interleaved clients, pipelined through a
   live --lanes 4 server, must be byte-identical (modulo the lane stat
   field) to the same per-client scripts replayed sequentially on
   --lanes 1. Pipelining makes the per-session ordering guarantee load-
   bearing: responses read back in request order ARE the transcript
   that must match the replay. *)
let check_lane_oracle ~engine ~jobs () =
  let scripts = List.init 4 (fun i -> gen_script ~seed:(500 + i) ~ops:6) in
  let multi =
    run_exercise ~engine ~lanes:4 ~pipeline:true ~jobs ~concurrent:true
      scripts
  in
  let single = run_exercise ~engine ~lanes:1 ~jobs ~concurrent:false scripts in
  (* Every script ends with stat; on the 4-lane server that response
     must name the session's lane. *)
  List.iter
    (fun transcript ->
      let stat = List.nth transcript (List.length transcript - 1) in
      if strip_lane_field stat = stat then
        Alcotest.failf "expected a lane field in multi-lane stat %s" stat)
    multi;
  List.iteri
    (fun i (got, want) ->
      List.iteri
        (fun j (g, w) ->
          let g = strip_lane_field g in
          if g <> w then
            Alcotest.failf
              "client %d diverged at response %d across lane counts:\n\
               lanes=4: %s\nlanes=1: %s"
              i j g w)
        (List.combine got want))
    (List.combine multi single)

let check_lane_oracle_all_jobs ~engine () =
  List.iter (fun jobs -> check_lane_oracle ~engine ~jobs ()) [ Some 1; Some 4 ]

(* ------------------------------------------------------------------ *)
(* Head-of-line blocking                                               *)
(* ------------------------------------------------------------------ *)

(* Session A's resolve is stalled by the slow_resolve fault confined to
   A's lane. With 2 lanes, session B (pinned to the other lane) must
   complete its trivial resolve while A is still stalled; with 1 lane —
   A and B necessarily share it — B must wait behind A. Both directions
   are deterministic on a single core: the stall is a fault-injected
   sleep, not a scheduling race. *)
let check_head_of_line ~lanes ~expect_b_first () =
  Prelude.Deadline.Faults.clear ();
  let config = { Serve.default_config with Serve.lanes } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () ->
      Prelude.Deadline.Faults.clear ();
      Serve.stop server)
    (fun () ->
      (* Pick session ids pinned to the lanes the scenario needs: A on
         the stalled lane 0, B on lane 1 when there is one. *)
      let find_id prefix lane =
        let rec go k =
          let id = Printf.sprintf "%s%d" prefix k in
          if Serve.lane_of_session server id = lane then id else go (k + 1)
        in
        go 0
      in
      let id_a = find_id "hol-a-" 0 in
      let id_b = find_id "hol-b-" (min 1 (lanes - 1)) in
      let a = connect server and b = connect server in
      ignore (request a ("hello " ^ id_a));
      ignore (request a "open");
      ignore (request a "assert ex:P1 ex:playsFor ex:T1 [1901,1903] 0.7 .");
      ignore (request b ("hello " ^ id_b));
      ignore (request b "open");
      ignore (request b "assert ex:P2 ex:playsFor ex:T2 [1901,1903] 0.7 .");
      Prelude.Deadline.Faults.configure "slow_resolve:400,slow_resolve_lane:0";
      post a "resolve";
      (* Wait until A's job is actually stalling on its lane so B's
         resolve is submitted strictly after A's. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while (not (Serve.busy server)) && Unix.gettimeofday () < deadline do
        Thread.delay 0.002
      done;
      post b "resolve";
      let t_a = ref 0.0 and t_b = ref 0.0 in
      let read_reply c cell =
        Thread.create
          (fun () ->
            match input_line c.ic with
            | resp ->
                cell := Unix.gettimeofday ();
                if not (String.length resp >= 2 && String.sub resp 0 2 = "ok")
                then Alcotest.failf "expected an ok resolve, got %s" resp
            | exception End_of_file -> Alcotest.fail "connection closed")
          ()
      in
      let ra = read_reply a t_a and rb = read_reply b t_b in
      Thread.join ra;
      Thread.join rb;
      Prelude.Deadline.Faults.clear ();
      if expect_b_first then begin
        if not (!t_b < !t_a) then
          Alcotest.failf
            "2 lanes: B (done %.1f ms late) should beat stalled A (%.1f ms)"
            ((!t_b -. !t_a) *. 1000.) 0.
      end
      else if not (!t_a <= !t_b) then
        Alcotest.failf "1 lane: A should complete before queued B";
      close a;
      close b)

(* Interleaved edits on ONE shared session id still serialize: the final
   stat (facts, rules) must equal what K sequential clients would leave
   behind, whatever the interleaving — each connection's edits are
   applied under the session lock, and counting is order-independent. *)
let test_shared_session () =
  let server = Serve.start (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let k = 4 and per_client = 6 in
      let setup = connect server in
      ignore (request setup "hello shared");
      ignore (request setup "open");
      let threads =
        List.init k (fun i ->
            Thread.create
              (fun () ->
                let c = connect server in
                ignore (request c "hello shared");
                for j = 1 to per_client do
                  let lo = 1900 + (100 * i) + j in
                  ignore
                    (request c
                       (Printf.sprintf
                          "assert ex:P%d ex:playsFor ex:T%d [%d,%d] 0.7 ." i i
                          lo (lo + 1)))
                done;
                close c)
              ())
      in
      List.iter Thread.join threads;
      let stat = request setup "stat" in
      let expected = Printf.sprintf "\"facts\":%d" (k * per_client) in
      let contains affix =
        let n = String.length affix in
        let rec go i =
          i + n <= String.length stat
          && (String.sub stat i n = affix || go (i + 1))
        in
        go 0
      in
      if not (contains expected) then
        Alcotest.failf "expected %s in final stat %s" expected stat;
      Alcotest.(check int) "one shared session" 1
        (Serve.sessions_open server);
      close setup)

let () =
  Alcotest.run "serve-concurrent"
    [
      ( "isolation",
        [
          Alcotest.test_case "K interleaved clients = sequential replay"
            `Quick
            (check_interleaving ~jobs:None);
          Alcotest.test_case "same under 4 worker domains" `Quick
            (check_interleaving ~jobs:(Some 4));
          Alcotest.test_case "interleaved edits on one shared session"
            `Quick test_shared_session;
        ] );
      ( "lane oracle",
        List.map
          (fun (name, engine) ->
            Alcotest.test_case
              (Printf.sprintf "lanes 4 = lanes 1 replay (%s, jobs 1 and 4)"
                 name)
              `Quick
              (check_lane_oracle_all_jobs ~engine))
          engines );
      ( "head of line",
        [
          Alcotest.test_case "2 lanes: stalled A does not block B" `Quick
            (check_head_of_line ~lanes:2 ~expect_b_first:true);
          Alcotest.test_case "1 lane: B queues behind stalled A" `Quick
            (check_head_of_line ~lanes:1 ~expect_b_first:false);
        ] );
    ]
