(* Concurrency and isolation for [tecore serve].

   K clients drive K independent sessions through one live server at the
   same time, each with its own deterministic edit script. The whole
   exercise is then replayed sequentially (one client after another)
   against a second server: per-session isolation and determinism mean
   every client's transcript — every response byte, including resolve
   summaries and error locations — must be identical in both runs,
   regardless of how the concurrent run interleaved. A second case pins
   the same property with 4 worker domains in the shared pool. *)

module Prng = Prelude.Prng

let () = Prelude.Deadline.Faults.clear ()

(* ------------------------------------------------------------------ *)
(* Loopback client                                                     *)
(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; ic : in_channel }

let connect server =
  let fd = Serve.connect server in
  { fd; ic = Unix.in_channel_of_descr fd }

let close client = close_in_noerr client.ic

let request client line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write client.fd b off (n - off))
  in
  go 0;
  match input_line client.ic with
  | resp -> resp
  | exception End_of_file ->
      Alcotest.failf "connection closed after %S" line

(* ------------------------------------------------------------------ *)
(* Deterministic per-client scripts                                    *)
(* ------------------------------------------------------------------ *)

let gen_script ~seed ~ops =
  let rng = Prng.create seed in
  let serial = ref 0 in
  let fact () =
    incr serial;
    let lo = 1900 + !serial in
    Printf.sprintf "ex:P%d ex:playsFor ex:T%d [%d,%d] 0.%d ."
      (Prng.int rng 4) (Prng.int rng 3) lo
      (lo + 1 + Prng.int rng 4)
      (5 + Prng.int rng 5)
  in
  let live = ref [] in
  let out = ref [] in
  let push l = out := l :: !out in
  push "open";
  push
    "constraint one_team: ex:playsFor(x, y)@t ^ ex:playsFor(x, z)@t2 ^ y != \
     z => disjoint(t, t2) .";
  for _ = 1 to 4 do
    let f = fact () in
    push ("assert " ^ f);
    live := f :: !live
  done;
  push "resolve";
  for _ = 1 to ops do
    match Prng.int rng 5 with
    | 0 | 1 ->
        let f = fact () in
        push ("assert " ^ f);
        live := f :: !live
    | 2 -> (
        match !live with
        | [] -> ()
        | l ->
            let f = List.nth l (Prng.int rng (List.length l)) in
            push ("retract " ^ f);
            live := List.filter (fun x -> x <> f) l)
    | _ -> push "resolve"
  done;
  push "resolve";
  push "stat";
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The exercise                                                        *)
(* ------------------------------------------------------------------ *)

(* Run every script against a fresh server and return one transcript per
   client: the request/response lines in order. [concurrent] runs one
   thread per client over simultaneous connections; otherwise the same
   scripts run one client after another. *)
let run_exercise ~jobs ~concurrent scripts =
  let config = { Serve.default_config with Serve.jobs } in
  let server = Serve.start ~config (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let run_one i script =
        let c = connect server in
        let transcript = ref [] in
        let req line = transcript := request c line :: !transcript in
        req (Printf.sprintf "hello client-%d" i);
        List.iter req script;
        close c;
        List.rev !transcript
      in
      let results =
        if concurrent then begin
          let out = Array.make (List.length scripts) [] in
          let threads =
            List.mapi
              (fun i script ->
                Thread.create (fun () -> out.(i) <- run_one i script) ())
              scripts
          in
          List.iter Thread.join threads;
          Array.to_list out
        end
        else List.mapi run_one scripts
      in
      Alcotest.(check int)
        "one session per client" (List.length scripts)
        (Serve.sessions_open server);
      Alcotest.(check int) "nothing shed" 0 (Serve.shed_count server);
      results)

let check_interleaving ~jobs () =
  let scripts = List.init 5 (fun i -> gen_script ~seed:(100 + i) ~ops:8) in
  let concurrent = run_exercise ~jobs ~concurrent:true scripts in
  let sequential = run_exercise ~jobs ~concurrent:false scripts in
  List.iteri
    (fun i (got, want) ->
      List.iteri
        (fun j (g, w) ->
          if g <> w then
            Alcotest.failf
              "client %d diverged at response %d under concurrency:\n\
               concurrent: %s\nsequential: %s"
              i j g w)
        (List.combine got want))
    (List.combine concurrent sequential)

(* Interleaved edits on ONE shared session id still serialize: the final
   stat (facts, rules) must equal what K sequential clients would leave
   behind, whatever the interleaving — each connection's edits are
   applied under the session lock, and counting is order-independent. *)
let test_shared_session () =
  let server = Serve.start (`Tcp 0) in
  Fun.protect
    ~finally:(fun () -> Serve.stop server)
    (fun () ->
      let k = 4 and per_client = 6 in
      let setup = connect server in
      ignore (request setup "hello shared");
      ignore (request setup "open");
      let threads =
        List.init k (fun i ->
            Thread.create
              (fun () ->
                let c = connect server in
                ignore (request c "hello shared");
                for j = 1 to per_client do
                  let lo = 1900 + (100 * i) + j in
                  ignore
                    (request c
                       (Printf.sprintf
                          "assert ex:P%d ex:playsFor ex:T%d [%d,%d] 0.7 ." i i
                          lo (lo + 1)))
                done;
                close c)
              ())
      in
      List.iter Thread.join threads;
      let stat = request setup "stat" in
      let expected = Printf.sprintf "\"facts\":%d" (k * per_client) in
      let contains affix =
        let n = String.length affix in
        let rec go i =
          i + n <= String.length stat
          && (String.sub stat i n = affix || go (i + 1))
        in
        go 0
      in
      if not (contains expected) then
        Alcotest.failf "expected %s in final stat %s" expected stat;
      Alcotest.(check int) "one shared session" 1
        (Serve.sessions_open server);
      close setup)

let () =
  Alcotest.run "serve-concurrent"
    [
      ( "isolation",
        [
          Alcotest.test_case "K interleaved clients = sequential replay"
            `Quick
            (check_interleaving ~jobs:None);
          Alcotest.test_case "same under 4 worker domains" `Quick
            (check_interleaving ~jobs:(Some 4));
          Alcotest.test_case "interleaved edits on one shared session"
            `Quick test_shared_session;
        ] );
    ]
