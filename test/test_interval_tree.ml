(* Tests for the augmented interval tree, including a property check
   against a naive list implementation. *)

module IT = Kg.Interval_tree
module I = Kg.Interval

let iv = I.make

let interval_testable = Alcotest.testable I.pp I.equal

let sorted_values t query =
  IT.overlapping query t |> List.map snd |> List.sort Int.compare

let test_empty () =
  Alcotest.(check bool) "is_empty" true (IT.is_empty IT.empty);
  Alcotest.(check int) "cardinal" 0 (IT.cardinal IT.empty);
  Alcotest.(check (list int)) "no overlaps" []
    (sorted_values IT.empty (iv 0 100));
  Alcotest.(check bool) "no span" true (IT.span IT.empty = None)

let build pairs =
  List.fold_left (fun t (i, v) -> IT.add i v t) IT.empty pairs

let sample =
  [
    (iv 1 5, 0);
    (iv 3 9, 1);
    (iv 10 12, 2);
    (iv 6 6, 3);
    (iv 1 5, 4); (* duplicate interval, second value *)
    (iv 20 30, 5);
  ]

let test_overlapping () =
  let t = build sample in
  Alcotest.(check int) "cardinal" 6 (IT.cardinal t);
  Alcotest.(check (list int)) "query [4,7]" [ 0; 1; 3; 4 ]
    (sorted_values t (iv 4 7));
  Alcotest.(check (list int)) "query [13,19]" [] (sorted_values t (iv 13 19));
  Alcotest.(check (list int)) "query [12,20]" [ 2; 5 ]
    (sorted_values t (iv 12 20))

let test_stabbing () =
  let t = build sample in
  let at p = IT.stabbing p t |> List.map snd |> List.sort Int.compare in
  Alcotest.(check (list int)) "stab 6" [ 1; 3 ] (at 6);
  Alcotest.(check (list int)) "stab 1" [ 0; 4 ] (at 1);
  Alcotest.(check (list int)) "stab 15" [] (at 15)

let test_remove () =
  let t = build sample in
  let t = IT.remove (iv 1 5) (fun v -> v = 0) t in
  Alcotest.(check int) "one removed" 5 (IT.cardinal t);
  Alcotest.(check (list int)) "query after remove" [ 1; 3; 4 ]
    (sorted_values t (iv 4 7));
  (* Removing the last value under a key deletes the node. *)
  let t = IT.remove (iv 1 5) (fun v -> v = 4) t in
  Alcotest.(check int) "key gone" 4 (IT.cardinal t);
  Alcotest.(check (list int)) "still correct" [ 1; 3 ] (sorted_values t (iv 4 7));
  (* Removing a missing key is a no-op. *)
  let t = IT.remove (iv 99 100) (fun _ -> true) t in
  Alcotest.(check int) "no-op" 4 (IT.cardinal t)

let test_span () =
  let t = build sample in
  Alcotest.(check (option interval_testable)) "span" (Some (iv 1 30)) (IT.span t)

let test_iter_fold () =
  let t = build sample in
  let count = ref 0 in
  IT.iter (fun _ _ -> incr count) t;
  Alcotest.(check int) "iter visits all" 6 !count;
  let sum = IT.fold (fun _ v acc -> acc + v) t 0 in
  Alcotest.(check int) "fold sum" 15 sum

(* Balance under sorted insertion: a linear chain would overflow the
   stack or at least be very deep; we only check correctness here plus a
   large-input sanity pass. *)
let test_large_sorted_insert () =
  let n = 10_000 in
  let t = ref IT.empty in
  for i = 0 to n - 1 do
    t := IT.add (iv i (i + 2)) i !t
  done;
  Alcotest.(check int) "cardinal" n (IT.cardinal !t);
  let hits = sorted_values !t (iv 500 501) in
  Alcotest.(check (list int)) "window hits" [ 498; 499; 500; 501 ] hits

let arbitrary_pairs =
  let interval =
    QCheck.map
      (fun (a, b) -> if a <= b then iv a b else iv b a)
      QCheck.(pair (int_range 0 200) (int_range 0 200))
  in
  QCheck.(list_of_size (Gen.int_range 0 80) (pair interval small_nat))

let qcheck_matches_naive =
  QCheck.Test.make ~name:"overlapping matches naive scan" ~count:300
    QCheck.(pair arbitrary_pairs (pair (int_range 0 200) (int_range 0 200)))
    (fun (pairs, (a, b)) ->
      let query = if a <= b then iv a b else iv b a in
      let t = build pairs in
      let tree_hits =
        IT.overlapping query t |> List.map snd |> List.sort Int.compare
      in
      let naive_hits =
        List.filter (fun (i, _) -> I.overlaps i query) pairs
        |> List.map snd |> List.sort Int.compare
      in
      tree_hits = naive_hits)

let qcheck_remove_then_absent =
  QCheck.Test.make ~name:"removed values are gone" ~count:300 arbitrary_pairs
    (fun pairs ->
      match pairs with
      | [] -> true
      | (key, v) :: _ ->
          let t = build pairs in
          let t = IT.remove key (fun v' -> v' = v) t in
          IT.overlapping key t
          |> List.for_all (fun (i, v') -> not (I.equal i key && v' = v)))

let qcheck_cardinal =
  QCheck.Test.make ~name:"cardinal = list length" ~count:300 arbitrary_pairs
    (fun pairs -> IT.cardinal (build pairs) = List.length pairs)

let () =
  Alcotest.run "interval-tree"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "overlapping" `Quick test_overlapping;
          Alcotest.test_case "stabbing" `Quick test_stabbing;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "span" `Quick test_span;
          Alcotest.test_case "iter/fold" `Quick test_iter_fold;
          Alcotest.test_case "large sorted insert" `Quick test_large_sorted_insert;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_matches_naive;
          QCheck_alcotest.to_alcotest qcheck_remove_then_absent;
          QCheck_alcotest.to_alcotest qcheck_cardinal;
        ] );
    ]
