(* Robustness tests for the deadline/anytime layer: budget bookkeeping,
   deterministic fault injection, crash containment in the pool, the
   solvers' anytime contract, and the session/engine error paths. *)

module Deadline = Prelude.Deadline
module Pool = Prelude.Pool
module Network = Mln.Network

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> Alcotest.fail (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let with_faults spec f =
  Prelude.Deadline.Faults.configure spec;
  Fun.protect ~finally:Prelude.Deadline.Faults.clear f

(* The Claudio Ranieri conflict from the paper, as a ground network. *)
let cr_network () =
  let store =
    Grounder.Atom_store.of_graph
      (Kg.Graph.of_list
         [
           Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
           Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
           Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
         ])
  in
  let rules =
    parse_rules
      {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .|}
  in
  let ground = Grounder.Ground.run store rules in
  (store, Network.build store ground.Grounder.Ground.instances)

let cr_graph_and_rules () =
  ( Kg.Graph.of_list
      [
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
        Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
      ],
    parse_rules
      {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .|}
  )

(* ------------------------------------------------------------------ *)
(* Deadline bookkeeping.                                               *)

let test_none_never_expires () =
  Alcotest.(check bool) "not finite" false (Deadline.is_finite Deadline.none);
  Alcotest.(check bool) "not expired" false (Deadline.expired Deadline.none);
  Alcotest.(check bool) "infinite remaining" true
    (Deadline.remaining_ms Deadline.none = infinity);
  Alcotest.(check bool) "infinite budget" true
    (Deadline.budget_ms Deadline.none = infinity);
  (* Cancelling the shared [none] must stay a no-op. *)
  Deadline.cancel Deadline.none;
  Alcotest.(check bool) "cancel is a no-op" false
    (Deadline.expired Deadline.none)

let test_after_expires () =
  let d = Deadline.after ~ms:0. in
  Alcotest.(check bool) "finite" true (Deadline.is_finite d);
  Alcotest.(check bool) "already expired" true (Deadline.expired d);
  let d = Deadline.after ~ms:60_000. in
  Alcotest.(check bool) "fresh budget live" false (Deadline.expired d);
  Alcotest.(check bool) "remaining positive" true (Deadline.remaining_ms d > 0.);
  Deadline.cancel d;
  Alcotest.(check bool) "cancelled" true (Deadline.expired d)

let test_of_timeout_ms () =
  Alcotest.(check bool) "None is none" false
    (Deadline.is_finite (Deadline.of_timeout_ms None));
  Alcotest.(check bool) "Some is finite" true
    (Deadline.is_finite (Deadline.of_timeout_ms (Some 5.)))

let test_slice () =
  Alcotest.(check bool) "slice of none is none" false
    (Deadline.is_finite (Deadline.slice Deadline.none ~frac:0.5));
  let parent = Deadline.after ~ms:60_000. in
  let slice = Deadline.slice parent ~frac:0.5 in
  Alcotest.(check bool) "slice finite" true (Deadline.is_finite slice);
  Alcotest.(check bool) "slice within parent" true
    (Deadline.remaining_ms slice <= Deadline.remaining_ms parent);
  (* Cancellation flows parent -> slice. *)
  Deadline.cancel parent;
  Alcotest.(check bool) "parent cancel expires slice" true
    (Deadline.expired slice)

let test_status_lattice () =
  let open Deadline in
  Alcotest.(check string) "names" "completed,timed_out,degraded"
    (String.concat ","
       (List.map status_name [ Completed; Timed_out; Degraded ]));
  Alcotest.(check bool) "degraded dominates" true
    (worst Degraded Timed_out = Degraded && worst Timed_out Degraded = Degraded);
  Alcotest.(check bool) "timed_out dominates completed" true
    (worst Completed Timed_out = Timed_out);
  Alcotest.(check bool) "completed is neutral" true
    (worst Completed Completed = Completed)

(* ------------------------------------------------------------------ *)
(* Fault injection.                                                    *)

let test_faults_configure () =
  with_faults "worker_crash,slow_ground:25" (fun () ->
      let open Deadline.Faults in
      Alcotest.(check bool) "worker_crash active" true (active "worker_crash");
      Alcotest.(check int) "default arg" 1 (arg "worker_crash");
      Alcotest.(check int) "explicit arg" 25 (arg "slow_ground");
      Alcotest.(check bool) "inactive point" false (active "other");
      Alcotest.(check int) "inactive arg" 0 (arg "other");
      Alcotest.(check bool) "trips at its index" true
        (trip_at "worker_crash" ~index:1);
      Alcotest.(check bool) "quiet elsewhere" false
        (trip_at "worker_crash" ~index:2);
      Alcotest.check_raises "inject raises" (Injected "worker_crash")
        (fun () -> inject "worker_crash" ~index:1);
      (* A non-matching index must not raise. *)
      inject "worker_crash" ~index:0);
  Alcotest.(check bool) "cleared" false (Deadline.Faults.active "worker_crash")

(* ------------------------------------------------------------------ *)
(* Pool crash containment and deadline-aware dealing.                  *)

let test_map_results_contains_crashes () =
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      let results =
        Pool.map_results pool
          (fun x -> if x = 2 then failwith "boom" else x * 10)
          [ 0; 1; 2; 3 ]
      in
      Alcotest.(check int) "four results" 4 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "survivor value" (i * 10) v
          | Error (Failure msg) ->
              Alcotest.(check int) "crash position" 2 i;
              Alcotest.(check string) "crash payload" "boom" msg
          | Error e -> Alcotest.failf "unexpected %s" (Printexc.to_string e))
        results)
    [ 1; 4 ]

let test_map_results_skips_after_expiry () =
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      let results =
        Pool.map_results ~deadline:(Deadline.after ~ms:0.) pool
          (fun x -> x)
          [ 0; 1; 2 ]
      in
      Alcotest.(check bool) "all skipped as Expired" true
        (List.for_all (function Error Deadline.Expired -> true | _ -> false)
           results))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Solver anytime contracts on the CR fixture.                         *)

let test_walksat_expired_deadline () =
  let _, network = cr_network () in
  let assignment, stats =
    Mln.Maxwalksat.solve ~seed:7 ~deadline:(Deadline.after ~ms:0.) network
  in
  Alcotest.(check int) "full assignment" network.Network.num_atoms
    (Array.length assignment);
  Alcotest.(check bool) "not completed" true
    (stats.Mln.Maxwalksat.status <> Deadline.Completed);
  (* The status must be honest about hard violations. *)
  (match stats.Mln.Maxwalksat.status with
  | Deadline.Timed_out ->
      Alcotest.(check int) "timed_out is sound" 0
        stats.Mln.Maxwalksat.hard_violated
  | Deadline.Degraded | Deadline.Completed -> ());
  Alcotest.(check int) "hard violations match assignment"
    (Network.hard_violations network assignment)
    stats.Mln.Maxwalksat.hard_violated

let test_walksat_crash_keeps_best () =
  let _, network = cr_network () in
  let cost (a, (s : Mln.Maxwalksat.stats)) =
    ignore a;
    (s.Mln.Maxwalksat.hard_violated, s.Mln.Maxwalksat.soft_cost)
  in
  let solo = Mln.Maxwalksat.solve ~seed:7 ~restarts:1 network in
  with_faults "worker_crash" (fun () ->
      List.iter
        (fun pool ->
          let faulted =
            Mln.Maxwalksat.solve ~seed:7 ~restarts:4 ~pool network
          in
          Alcotest.(check bool) "crash reported as degraded" true
            ((snd faulted).Mln.Maxwalksat.status = Deadline.Degraded);
          (* Task 1 crashed, but tasks 0/2/3 ran: never worse than task 0
             alone. *)
          Alcotest.(check bool) "best-so-far kept" true
            (cost faulted <= cost solo))
        [ Pool.sequential; Pool.create ~jobs:4 ])

let test_samplers_expired_deadline () =
  let _, network = cr_network () in
  let g =
    Mln.Gibbs.run ~seed:3 ~burn_in:10 ~samples:50
      ~deadline:(Deadline.after ~ms:0.) network
  in
  Alcotest.(check int) "gibbs recorded nothing" 0 g.Mln.Gibbs.recorded;
  Alcotest.(check bool) "gibbs degraded" true
    (g.Mln.Gibbs.status = Deadline.Degraded);
  Alcotest.(check bool) "gibbs marginals stay probabilities" true
    (Array.for_all (fun p -> p >= 0. && p <= 1.) g.Mln.Gibbs.marginals);
  let m =
    Mln.Mcsat.run ~seed:3 ~burn_in:10 ~samples:50
      ~deadline:(Deadline.after ~ms:0.) network
  in
  Alcotest.(check int) "mcsat recorded nothing" 0 m.Mln.Mcsat.recorded;
  Alcotest.(check bool) "mcsat degraded" true
    (m.Mln.Mcsat.status = Deadline.Degraded);
  Alcotest.(check bool) "mcsat marginals stay probabilities" true
    (Array.for_all (fun p -> p >= 0. && p <= 1.) m.Mln.Mcsat.marginals)

(* ------------------------------------------------------------------ *)
(* Engine policies.                                                    *)

let test_engine_fail_policy_rejects_grounding () =
  let graph, rules = cr_graph_and_rules () in
  match
    Tecore.Engine.resolve
      ~deadline:(Deadline.after ~ms:0.)
      ~on_timeout:`Fail graph rules
  with
  | _ -> Alcotest.fail "expected Ground_timed_out"
  | exception Tecore.Engine.Ground_timed_out report ->
      Alcotest.(check bool) "report not ok" false report.Tecore.Translator.ok;
      Alcotest.(check bool) "structured note present" true
        (List.exists
           (fun (n : Tecore.Translator.note) ->
             n.Tecore.Translator.severity = Tecore.Translator.Error)
           report.Tecore.Translator.notes)

let test_engine_best_effort_survives_expiry () =
  let graph, rules = cr_graph_and_rules () in
  let result =
    Tecore.Engine.resolve ~deadline:(Deadline.after ~ms:0.) graph rules
  in
  Alcotest.(check bool) "status reported" true
    (result.Tecore.Engine.stats.Tecore.Engine.status <> Deadline.Completed);
  (* The anytime resolution still resolves the CR conflict machinery:
     kept + removed covers the whole input graph. *)
  let r = result.Tecore.Engine.resolution in
  Alcotest.(check int) "facts accounted for" (Kg.Graph.size graph)
    (r.Tecore.Conflict.kept + List.length r.Tecore.Conflict.removed)

let test_session_resolve_maps_ground_timeout () =
  let session = Tecore.Session.create () in
  let graph, rules = cr_graph_and_rules () in
  ignore rules;
  Tecore.Session.load_graph session graph;
  (match
     Tecore.Session.add_rules session
       {|constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .|}
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match
    Tecore.Session.resolve
      ~deadline:(Deadline.after ~ms:0.)
      ~on_timeout:`Fail session
  with
  | Error (Tecore.Session.Ground_timeout _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Tecore.Session.error_message e)
  | Ok _ -> Alcotest.fail "expected Ground_timeout"

(* ------------------------------------------------------------------ *)
(* Session error paths (satellite: actionable IO/parse errors).        *)

let contains ~needle haystack =
  let nn = String.length needle and nh = String.length haystack in
  nn = 0
  ||
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let test_session_io_error_names_path () =
  let session = Tecore.Session.create () in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "tecore-no-such-file.tq" in
  match Tecore.Session.load session path with
  | Ok () -> Alcotest.fail "loaded a missing file"
  | Error (Tecore.Session.Io_error msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S names the path" msg)
        true (contains ~needle:path msg)
  | Error e -> Alcotest.failf "wrong error: %s" (Tecore.Session.error_message e)

let test_session_parse_error_locates () =
  let path = Filename.temp_file "tecore-malformed" ".tq" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "ex:a ex:p ex:b [1,2] .\nex:a ex:p \"broken [1,2] .\n";
      close_out oc;
      let session = Tecore.Session.create () in
      match Tecore.Session.load session path with
      | Ok () -> Alcotest.fail "accepted malformed file"
      | Error (Tecore.Session.Parse_error msg) ->
          (* Compiler-style path:line:column prefix. *)
          Alcotest.(check bool)
            (Printf.sprintf "%S locates the failure" msg)
            true
            (contains ~needle:(path ^ ":2:11") msg)
      | Error e ->
          Alcotest.failf "wrong error: %s" (Tecore.Session.error_message e))

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)

(* Same generator family as test_pool's determinism property. *)
let random_network rng =
  let num_atoms = 2 + Prelude.Prng.int rng 6 in
  let num_clauses = 3 + Prelude.Prng.int rng 10 in
  let clauses =
    Array.init num_clauses (fun i ->
        let len = 1 + Prelude.Prng.int rng 3 in
        let literals =
          Array.init len (fun _ ->
              {
                Network.atom = Prelude.Prng.int rng num_atoms;
                positive = Prelude.Prng.bool rng;
              })
        in
        {
          Network.literals;
          weight =
            (if Prelude.Prng.bernoulli rng 0.2 then None
             else Some (0.5 +. Prelude.Prng.float rng 3.0));
          source = Printf.sprintf "c%d" i;
        })
  in
  { Network.num_atoms; clauses }

(* (a) Without a deadline the anytime plumbing is invisible: passing
   [Deadline.none] explicitly is bitwise-identical to not passing one,
   at every job count. *)
let no_deadline_identity_property =
  QCheck.Test.make ~count:30
    ~name:"deadline: none is invisible at every job count"
    QCheck.(pair small_int small_int)
    (fun (net_seed, solve_seed) ->
      let network = random_network (Prelude.Prng.create net_seed) in
      let solve ?deadline pool =
        Mln.Maxwalksat.solve ~seed:solve_seed ~max_flips:2_000 ~restarts:3
          ~portfolio:[ 11 ] ~pool ?deadline network
      in
      let a0, s0 = solve Pool.sequential in
      (* Sequentially the whole stats record is bitwise-identical; at
         jobs=4 flip totals depend on scheduling (as before this
         mechanism existed), so the determinism contract covers the
         assignment, the costs and the status. *)
      let a1, s1 = solve ~deadline:Deadline.none Pool.sequential in
      let a4, s4 = solve ~deadline:Deadline.none (Pool.create ~jobs:4) in
      a1 = a0 && s1 = s0
      && a4 = a0
      && s4.Mln.Maxwalksat.hard_violated = s0.Mln.Maxwalksat.hard_violated
      && s4.Mln.Maxwalksat.soft_cost = s0.Mln.Maxwalksat.soft_cost
      && s0.Mln.Maxwalksat.status = Deadline.Completed
      && s4.Mln.Maxwalksat.status = Deadline.Completed)

(* (b) An already-expired deadline still returns a full, honestly
   tagged assignment immediately. *)
let expired_deadline_property =
  QCheck.Test.make ~count:50 ~name:"deadline: expired budget stays sound"
    QCheck.(pair small_int small_int)
    (fun (net_seed, solve_seed) ->
      let network = random_network (Prelude.Prng.create net_seed) in
      let assignment, stats =
        Mln.Maxwalksat.solve ~seed:solve_seed
          ~deadline:(Deadline.after ~ms:0.) network
      in
      Array.length assignment = network.Network.num_atoms
      && stats.Mln.Maxwalksat.status <> Deadline.Completed
      && stats.Mln.Maxwalksat.hard_violated
         = Network.hard_violations network assignment
      && (stats.Mln.Maxwalksat.status <> Deadline.Timed_out
          || stats.Mln.Maxwalksat.hard_violated = 0))

(* (c) An injected worker crash never loses the best-so-far: the
   surviving descents still include task 0, so the portfolio result is
   never worse than task 0 alone — at any job count. *)
let crash_keeps_best_property =
  QCheck.Test.make ~count:30 ~name:"faults: worker crash keeps best-so-far"
    QCheck.(pair small_int small_int)
    (fun (net_seed, solve_seed) ->
      let network = random_network (Prelude.Prng.create net_seed) in
      (* Plant contradictory soft unit clauses so no descent reaches
         cost (0,0): the perfect-cost early stop would otherwise skip
         the crashing task and the fault would never fire. *)
      let contradiction positive =
        {
          Network.literals = [| { Network.atom = 0; positive } |];
          weight = Some 1.0;
          source = "pin";
        }
      in
      let network =
        {
          network with
          Network.clauses =
            Array.append network.Network.clauses
              [| contradiction true; contradiction false |];
        }
      in
      let cost (s : Mln.Maxwalksat.stats) =
        (s.Mln.Maxwalksat.hard_violated, s.Mln.Maxwalksat.soft_cost)
      in
      let _, solo =
        Mln.Maxwalksat.solve ~seed:solve_seed ~max_flips:2_000 ~restarts:1
          network
      in
      with_faults "worker_crash" (fun () ->
          List.for_all
            (fun pool ->
              let _, faulted =
                Mln.Maxwalksat.solve ~seed:solve_seed ~max_flips:2_000
                  ~restarts:4 ~pool network
              in
              faulted.Mln.Maxwalksat.status = Deadline.Degraded
              && cost faulted <= cost solo)
            [ Pool.sequential; Pool.create ~jobs:4 ]))

let () =
  Alcotest.run "deadline"
    [
      ( "budget",
        [
          Alcotest.test_case "none never expires" `Quick test_none_never_expires;
          Alcotest.test_case "after expires" `Quick test_after_expires;
          Alcotest.test_case "of_timeout_ms" `Quick test_of_timeout_ms;
          Alcotest.test_case "slice" `Quick test_slice;
          Alcotest.test_case "status lattice" `Quick test_status_lattice;
        ] );
      ( "faults",
        [ Alcotest.test_case "configure/trip/inject" `Quick test_faults_configure ] );
      ( "pool",
        [
          Alcotest.test_case "map_results contains crashes" `Quick
            test_map_results_contains_crashes;
          Alcotest.test_case "map_results skips after expiry" `Quick
            test_map_results_skips_after_expiry;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "walksat expired deadline" `Quick
            test_walksat_expired_deadline;
          Alcotest.test_case "walksat crash keeps best" `Quick
            test_walksat_crash_keeps_best;
          Alcotest.test_case "samplers expired deadline" `Quick
            test_samplers_expired_deadline;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fail policy rejects grounding timeout" `Quick
            test_engine_fail_policy_rejects_grounding;
          Alcotest.test_case "best-effort survives expiry" `Quick
            test_engine_best_effort_survives_expiry;
          Alcotest.test_case "session maps ground timeout" `Quick
            test_session_resolve_maps_ground_timeout;
        ] );
      ( "session errors",
        [
          Alcotest.test_case "io error names path" `Quick
            test_session_io_error_names_path;
          Alcotest.test_case "parse error locates" `Quick
            test_session_parse_error_locates;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            no_deadline_identity_property;
            expired_deadline_property;
            crash_keeps_best_property;
          ] );
    ]
