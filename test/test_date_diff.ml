(* Tests for calendar dates and KG diffing. *)

module D = Kg.Date
module Diff = Tecore.Diff

let date y m d = D.make ~year:y ~month:m ~day:d

let test_epoch () =
  Alcotest.(check int) "epoch day 0" 0 (D.to_day_number (date 1970 1 1));
  Alcotest.(check int) "day 1" 1 (D.to_day_number (date 1970 1 2));
  Alcotest.(check int) "day -1" (-1) (D.to_day_number (date 1969 12 31))

let test_known_days () =
  (* 2000-03-01 is day 11017 (post leap day of a 400-divisible year). *)
  Alcotest.(check int) "2000-03-01" 11017 (D.to_day_number (date 2000 3 1));
  Alcotest.(check int) "2000-02-29 exists" 11016
    (D.to_day_number (date 2000 2 29))

let test_leap_years () =
  Alcotest.(check bool) "2000 leap" true (D.is_leap_year 2000);
  Alcotest.(check bool) "1900 not leap" false (D.is_leap_year 1900);
  Alcotest.(check bool) "2024 leap" true (D.is_leap_year 2024);
  Alcotest.(check bool) "2023 not leap" false (D.is_leap_year 2023);
  Alcotest.(check int) "feb 2024" 29 (D.days_in_month ~year:2024 ~month:2);
  Alcotest.(check int) "feb 1900" 28 (D.days_in_month ~year:1900 ~month:2)

let test_invalid_dates () =
  let bad y m d =
    match D.make ~year:y ~month:m ~day:d with
    | exception D.Invalid _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "%d-%d-%d accepted" y m d)
  in
  bad 2023 2 29;
  bad 2024 2 30;
  bad 2024 13 1;
  bad 2024 0 1;
  bad 2024 4 31;
  bad 2024 1 0

let test_iso_roundtrip () =
  List.iter
    (fun s ->
      match D.of_iso s with
      | Ok d -> Alcotest.(check string) s s (D.to_iso d)
      | Error e -> Alcotest.fail e)
    [ "1970-01-01"; "2000-02-29"; "1951-10-20"; "0001-01-01"; "-0044-03-15" ];
  (match D.of_iso "not-a-date" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match D.of_iso "2023-02-29" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid leap day accepted"

let test_interval_building () =
  (match D.interval "2000-01-01" "2004-06-30" with
  | Ok i ->
      Alcotest.(check int) "length" 1643 (Kg.Interval.length i);
      let from_s, to_s = D.interval_to_iso i in
      Alcotest.(check string) "from" "2000-01-01" from_s;
      Alcotest.(check string) "to" "2004-06-30" to_s
  | Error e -> Alcotest.fail e);
  match D.interval "2004-01-01" "2000-01-01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reversed interval accepted"

let qcheck_day_roundtrip =
  QCheck.Test.make ~name:"of_day_number (to_day_number d) = d" ~count:2000
    QCheck.(int_range (-1_000_000) 1_000_000)
    (fun day ->
      let d = D.of_day_number day in
      D.to_day_number d = day)

let qcheck_successive_days =
  QCheck.Test.make ~name:"day n+1 is the calendar successor" ~count:1000
    QCheck.(int_range (-200_000) 200_000)
    (fun day ->
      let a = D.of_day_number day and b = D.of_day_number (day + 1) in
      D.compare a b < 0)

(* ---------------- diff ---------------- *)

let g quads = Kg.Graph.of_list quads
let q ?(c = 0.9) s p o span = Kg.Quad.v s p (Kg.Term.iri o) span c

let test_diff_empty () =
  let a = g [ q "s" "p" "o" (1, 2) ] in
  let d = Diff.diff a (Kg.Graph.copy a) in
  Alcotest.(check bool) "empty diff" true (Diff.is_empty d);
  Alcotest.(check int) "unchanged" 1 d.Diff.unchanged

let test_diff_additions_removals () =
  let left = g [ q "a" "p" "x" (1, 2); q "b" "p" "y" (1, 2) ] in
  let right = g [ q "b" "p" "y" (1, 2); q "c" "p" "z" (1, 2) ] in
  let d = Diff.diff left right in
  Alcotest.(check int) "one removed" 1 (List.length d.Diff.only_left);
  Alcotest.(check int) "one added" 1 (List.length d.Diff.only_right);
  Alcotest.(check int) "one shared" 1 d.Diff.unchanged;
  Alcotest.(check string) "removed is a" "a"
    (Kg.Term.to_string (List.hd d.Diff.only_left).Kg.Quad.subject);
  Alcotest.(check string) "added is c" "c"
    (Kg.Term.to_string (List.hd d.Diff.only_right).Kg.Quad.subject)

let test_diff_confidence_change () =
  let left = g [ q ~c:0.9 "a" "p" "x" (1, 2) ] in
  let right = g [ q ~c:0.4 "a" "p" "x" (1, 2) ] in
  let d = Diff.diff left right in
  Alcotest.(check int) "one changed" 1 (List.length d.Diff.confidence_changed);
  Alcotest.(check bool) "not empty" false (Diff.is_empty d);
  let l, r = List.hd d.Diff.confidence_changed in
  Alcotest.(check bool) "directions" true
    (l.Kg.Quad.confidence = 0.9 && r.Kg.Quad.confidence = 0.4)

let test_diff_interval_matters () =
  (* Same triple, different interval: an add + a remove, not a change. *)
  let left = g [ q "a" "p" "x" (1, 2) ] in
  let right = g [ q "a" "p" "x" (1, 3) ] in
  let d = Diff.diff left right in
  Alcotest.(check int) "removed" 1 (List.length d.Diff.only_left);
  Alcotest.(check int) "added" 1 (List.length d.Diff.only_right)

let test_diff_resolution_use_case () =
  (* Diffing input against its resolution shows exactly the removals and
     the derived facts. *)
  let graph =
    g [ q ~c:0.9 "x" "coach" "A" (2000, 2005); q ~c:0.6 "x" "coach" "B" (2003, 2007) ]
  in
  let rules =
    match
      Rulelang.Parser.parse_string
        "constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) ."
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "parse"
  in
  let result = Tecore.Engine.resolve graph rules in
  let d = Diff.diff graph result.Tecore.Engine.resolution.Tecore.Conflict.consistent in
  Alcotest.(check int) "the removed fact" 1 (List.length d.Diff.only_left);
  Alcotest.(check int) "nothing added (no inference rules)" 0
    (List.length d.Diff.only_right)

let test_diff_pp () =
  let left = g [ q "a" "p" "x" (1, 2) ] in
  let right = g [ q "b" "p" "y" (1, 2) ] in
  let s = Format.asprintf "%a" Diff.pp (Diff.diff left right) in
  Alcotest.(check bool) "minus line" true (String.contains s '-');
  Alcotest.(check bool) "plus line" true (String.contains s '+')

let () =
  Alcotest.run "date-diff"
    [
      ( "date",
        [
          Alcotest.test_case "epoch" `Quick test_epoch;
          Alcotest.test_case "known days" `Quick test_known_days;
          Alcotest.test_case "leap years" `Quick test_leap_years;
          Alcotest.test_case "invalid dates" `Quick test_invalid_dates;
          Alcotest.test_case "iso roundtrip" `Quick test_iso_roundtrip;
          Alcotest.test_case "interval building" `Quick test_interval_building;
          QCheck_alcotest.to_alcotest qcheck_day_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_successive_days;
        ] );
      ( "diff",
        [
          Alcotest.test_case "empty" `Quick test_diff_empty;
          Alcotest.test_case "add/remove" `Quick test_diff_additions_removals;
          Alcotest.test_case "confidence change" `Quick
            test_diff_confidence_change;
          Alcotest.test_case "interval identity" `Quick
            test_diff_interval_matters;
          Alcotest.test_case "resolution diff" `Quick
            test_diff_resolution_use_case;
          Alcotest.test_case "pp" `Quick test_diff_pp;
        ] );
    ]
