(* Tests for Allen's interval algebra: classification, converses, the
   composition table and qualitative networks. *)

module A = Kg.Allen
module I = Kg.Interval

let iv = I.make

let relation_testable =
  Alcotest.testable A.pp (fun a b -> a = b)

(* Canonical witness pairs for each of the 13 relations. *)
let witnesses =
  [
    (A.Before, iv 0 2, iv 5 9);
    (A.Meets, iv 0 4, iv 5 9);
    (A.Overlaps, iv 0 6, iv 5 9);
    (A.Finished_by, iv 0 9, iv 5 9);
    (A.Contains, iv 0 9, iv 5 8);
    (A.Starts, iv 5 6, iv 5 9);
    (A.Equals, iv 5 9, iv 5 9);
    (A.Started_by, iv 5 9, iv 5 6);
    (A.During, iv 6 8, iv 5 9);
    (A.Finishes, iv 6 9, iv 5 9);
    (A.Overlapped_by, iv 6 9, iv 5 7);
    (A.Met_by, iv 5 9, iv 0 4);
    (A.After, iv 5 9, iv 0 2);
  ]

let test_relate_witnesses () =
  List.iter
    (fun (r, a, b) ->
      Alcotest.check relation_testable (A.name r) r (A.relate a b))
    witnesses

let test_relate_exclusive () =
  (* Exactly one relation holds for any pair. *)
  List.iter
    (fun (r, a, b) ->
      List.iter
        (fun r' ->
          Alcotest.(check bool)
            (A.name r' ^ " holds iff expected")
            (r = r') (A.holds r' a b))
        A.all)
    witnesses

let test_converse_involution () =
  List.iter
    (fun r ->
      Alcotest.check relation_testable
        (A.name r ^ " converse twice")
        r
        (A.converse (A.converse r)))
    A.all

let test_converse_swaps () =
  List.iter
    (fun (r, a, b) ->
      Alcotest.check relation_testable
        (A.name r ^ " converse")
        (A.converse r) (A.relate b a))
    witnesses

let test_index_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.check relation_testable "of_index (to_index r)" r
        (A.of_index (A.to_index r)))
    A.all

let test_names () =
  List.iter
    (fun r ->
      match A.of_name (A.name r) with
      | Some r' -> Alcotest.check relation_testable (A.name r) r r'
      | None -> Alcotest.fail ("of_name failed on " ^ A.name r))
    A.all;
  (* Paper spelling variants. *)
  Alcotest.(check (option relation_testable)) "overlap" (Some A.Overlaps)
    (A.of_name "overlap");
  Alcotest.(check (option relation_testable)) "metBy" (Some A.Met_by)
    (A.of_name "metBy");
  Alcotest.(check (option relation_testable)) "finished_by" (Some A.Finished_by)
    (A.of_name "finished_by");
  Alcotest.(check (option relation_testable)) "unknown" None (A.of_name "zorp")

(* Classical composition-table spot checks (Allen 1983). *)
let set_testable = Alcotest.testable A.Set.pp A.Set.equal

let test_compose_classics () =
  let s = A.Set.of_list in
  Alcotest.check set_testable "before;before" (s [ A.Before ])
    (A.compose A.Before A.Before);
  Alcotest.check set_testable "meets;meets" (s [ A.Before ])
    (A.compose A.Meets A.Meets);
  Alcotest.check set_testable "during;during" (s [ A.During ])
    (A.compose A.During A.During);
  Alcotest.check set_testable "overlaps;overlaps"
    (s [ A.Before; A.Meets; A.Overlaps ])
    (A.compose A.Overlaps A.Overlaps);
  Alcotest.check set_testable "during;contains full" A.Set.full
    (A.compose A.During A.Contains);
  Alcotest.check set_testable "starts;during" (s [ A.During ])
    (A.compose A.Starts A.During);
  Alcotest.check set_testable "meets;during"
    (s [ A.Overlaps; A.Starts; A.During ])
    (A.compose A.Meets A.During);
  Alcotest.check set_testable "before;during"
    (s [ A.Before; A.Overlaps; A.Meets; A.During; A.Starts ])
    (A.compose A.Before A.During)

let test_compose_identity () =
  (* equals is the identity of composition. *)
  List.iter
    (fun r ->
      Alcotest.check set_testable
        ("equals;" ^ A.name r)
        (A.Set.singleton r)
        (A.compose A.Equals r);
      Alcotest.check set_testable
        (A.name r ^ ";equals")
        (A.Set.singleton r)
        (A.compose r A.Equals))
    A.all

let test_compose_converse_law () =
  (* (r1;r2)^-1 = r2^-1 ; r1^-1 *)
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          Alcotest.check set_testable
            (Printf.sprintf "(%s;%s) converse" (A.name r1) (A.name r2))
            (A.Set.converse (A.compose r1 r2))
            (A.compose_set
               (A.Set.singleton (A.converse r2))
               (A.Set.singleton (A.converse r1))))
        A.all)
    A.all

let test_table_total_size () =
  (* The classical table contains 409 basic relations in total. *)
  let total =
    List.fold_left
      (fun acc r1 ->
        List.fold_left
          (fun acc r2 -> acc + A.Set.cardinal (A.compose r1 r2))
          acc A.all)
      0 A.all
  in
  Alcotest.(check int) "409 entries" 409 total

let test_set_operations () =
  let s = A.Set.of_list [ A.Before; A.After ] in
  Alcotest.(check bool) "mem before" true (A.Set.mem A.Before s);
  Alcotest.(check bool) "mem meets" false (A.Set.mem A.Meets s);
  Alcotest.(check int) "cardinal" 2 (A.Set.cardinal s);
  Alcotest.(check int) "full has 13" 13 (A.Set.cardinal A.Set.full);
  Alcotest.(check bool) "empty" true (A.Set.is_empty A.Set.empty);
  Alcotest.check set_testable "union"
    (A.Set.of_list [ A.Before; A.After; A.Meets ])
    (A.Set.union s (A.Set.singleton A.Meets));
  Alcotest.check set_testable "inter" (A.Set.singleton A.Before)
    (A.Set.inter s (A.Set.of_list [ A.Before; A.Meets ]));
  Alcotest.check set_testable "converse of {before,after} is itself" s
    (A.Set.converse s)

let test_derived_sets () =
  Alcotest.(check bool) "disjoint gap" true
    (A.Set.holds A.Set.disjoint (iv 1 2) (iv 5 9));
  Alcotest.(check bool) "disjoint adjacent" true
    (A.Set.holds A.Set.disjoint (iv 1 4) (iv 5 9));
  Alcotest.(check bool) "disjoint overlap" false
    (A.Set.holds A.Set.disjoint (iv 1 6) (iv 5 9));
  Alcotest.(check bool) "intersects overlap" true
    (A.Set.holds A.Set.intersects (iv 1 6) (iv 5 9));
  Alcotest.(check bool) "intersects finished-by" true
    (A.Set.holds A.Set.intersects (iv 1 9) (iv 5 9));
  Alcotest.(check int) "disjoint + intersects = 13" 13
    (A.Set.cardinal A.Set.disjoint + A.Set.cardinal A.Set.intersects);
  Alcotest.(check bool) "within during" true
    (A.Set.holds A.Set.within (iv 6 8) (iv 5 9));
  Alcotest.(check bool) "within equal" true
    (A.Set.holds A.Set.within (iv 5 9) (iv 5 9));
  Alcotest.(check bool) "within contains" false
    (A.Set.holds A.Set.within (iv 1 9) (iv 5 9))

let test_network_consistent_chain () =
  let n = A.Network.create 3 in
  A.Network.constrain n 0 1 (A.Set.singleton A.Before);
  A.Network.constrain n 1 2 (A.Set.singleton A.Before);
  Alcotest.(check bool) "chain consistent" true (A.Network.path_consistency n);
  (* Composition propagates: (0,2) must now be Before. *)
  Alcotest.check set_testable "propagated" (A.Set.singleton A.Before)
    (A.Network.get n 0 2)

let test_network_contradiction () =
  let n = A.Network.create 2 in
  A.Network.constrain n 0 1 (A.Set.singleton A.Before);
  A.Network.constrain n 1 0 (A.Set.singleton A.Before);
  Alcotest.(check bool) "contradiction detected" false
    (A.Network.path_consistency n)

let test_network_triangle_contradiction () =
  (* 0 before 1, 1 before 2, 2 before 0 is unsatisfiable. *)
  let n = A.Network.create 3 in
  A.Network.constrain n 0 1 (A.Set.singleton A.Before);
  A.Network.constrain n 1 2 (A.Set.singleton A.Before);
  A.Network.constrain n 2 0 (A.Set.singleton A.Before);
  Alcotest.(check bool) "cycle detected" false (A.Network.path_consistency n)

let test_network_scenario () =
  let n = A.Network.create 3 in
  A.Network.constrain n 0 1 (A.Set.of_list [ A.Before; A.Meets ]);
  A.Network.constrain n 1 2 (A.Set.of_list [ A.Overlaps ]);
  match A.Network.consistent_scenario n with
  | None -> Alcotest.fail "expected a scenario"
  | Some s ->
      Alcotest.(check bool) "0 vs 1" true
        (A.Set.mem (A.relate s.(0) s.(1)) (A.Set.of_list [ A.Before; A.Meets ]));
      Alcotest.check relation_testable "1 vs 2" A.Overlaps (A.relate s.(1) s.(2))

let test_network_scenario_none () =
  let n = A.Network.create 2 in
  A.Network.constrain n 0 1 A.Set.empty;
  Alcotest.(check bool) "no scenario" true
    (A.Network.consistent_scenario n = None)

let arbitrary_interval =
  QCheck.map
    (fun (a, b) -> if a <= b then iv a b else iv b a)
    QCheck.(pair (int_range 0 60) (int_range 0 60))

let qcheck_composition_sound =
  QCheck.Test.make ~name:"relate(a,c) in compose(relate(a,b), relate(b,c))"
    ~count:2000
    QCheck.(triple arbitrary_interval arbitrary_interval arbitrary_interval)
    (fun (a, b, c) ->
      A.Set.mem (A.relate a c) (A.compose (A.relate a b) (A.relate b c)))

let qcheck_exactly_one_relation =
  QCheck.Test.make ~name:"exactly one basic relation holds" ~count:1000
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) ->
      List.length (List.filter (fun r -> A.holds r a b) A.all) = 1)

let qcheck_converse_relate =
  QCheck.Test.make ~name:"relate(b,a) = converse(relate(a,b))" ~count:1000
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) -> A.relate b a = A.converse (A.relate a b))

(* Lift soundness to sets: whatever sets S1 ∋ relate(a,b) and
   S2 ∋ relate(b,c) we pick, compose_set S1 S2 must keep relate(a,c). *)
let arbitrary_relation_set =
  QCheck.map
    (fun picks ->
      List.fold_left
        (fun acc (keep, r) -> if keep then A.Set.union acc (A.Set.singleton r) else acc)
        A.Set.empty
        (List.combine picks A.all))
    QCheck.(list_of_size (QCheck.Gen.return 13) bool)

let qcheck_compose_set_sound =
  QCheck.Test.make
    ~name:"compose_set preserves relate(a,c) for any covering sets"
    ~count:1000
    QCheck.(
      pair
        (triple arbitrary_interval arbitrary_interval arbitrary_interval)
        (pair arbitrary_relation_set arbitrary_relation_set))
    (fun ((a, b, c), (s1, s2)) ->
      let s1 = A.Set.union s1 (A.Set.singleton (A.relate a b)) in
      let s2 = A.Set.union s2 (A.Set.singleton (A.relate b c)) in
      A.Set.mem (A.relate a c) (A.compose_set s1 s2))

let qcheck_compose_never_empty =
  (* Every cell of the composition table is non-empty: two basic
     relations are always jointly realisable through some middle
     interval, so at least one composite relation must survive. *)
  QCheck.Test.make ~name:"compose r1 r2 is never empty" ~count:169
    QCheck.(
      pair (int_range 0 12) (int_range 0 12))
    (fun (i, j) ->
      not (A.Set.is_empty (A.compose (A.of_index i) (A.of_index j))))

let () =
  Alcotest.run "allen"
    [
      ( "relate",
        [
          Alcotest.test_case "witnesses" `Quick test_relate_witnesses;
          Alcotest.test_case "exclusive" `Quick test_relate_exclusive;
          Alcotest.test_case "converse involution" `Quick test_converse_involution;
          Alcotest.test_case "converse swaps args" `Quick test_converse_swaps;
          Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip;
          Alcotest.test_case "names" `Quick test_names;
        ] );
      ( "composition",
        [
          Alcotest.test_case "classics" `Quick test_compose_classics;
          Alcotest.test_case "identity" `Quick test_compose_identity;
          Alcotest.test_case "converse law" `Quick test_compose_converse_law;
          Alcotest.test_case "table size 409" `Quick test_table_total_size;
        ] );
      ( "sets",
        [
          Alcotest.test_case "operations" `Quick test_set_operations;
          Alcotest.test_case "derived sets" `Quick test_derived_sets;
        ] );
      ( "network",
        [
          Alcotest.test_case "consistent chain" `Quick test_network_consistent_chain;
          Alcotest.test_case "contradiction" `Quick test_network_contradiction;
          Alcotest.test_case "triangle contradiction" `Quick
            test_network_triangle_contradiction;
          Alcotest.test_case "scenario" `Quick test_network_scenario;
          Alcotest.test_case "scenario none" `Quick test_network_scenario_none;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_composition_sound;
          QCheck_alcotest.to_alcotest qcheck_exactly_one_relation;
          QCheck_alcotest.to_alcotest qcheck_converse_relate;
          QCheck_alcotest.to_alcotest qcheck_compose_set_sound;
          QCheck_alcotest.to_alcotest qcheck_compose_never_empty;
        ] );
    ]
