(* tecore — command-line front-end reproducing the demo workflow of the
   TeCoRe Web UI: select a UTKG, choose rules and constraints, run MAP
   inference, browse consistent and conflicting statements, inspect
   statistics, and generate the synthetic datasets. *)

open Cmdliner

let engine_of_string = function
  | "mln" -> Ok (Tecore.Engine.Mln Mln.Map_inference.default_options)
  | "mln-exact" ->
      Ok
        (Tecore.Engine.Mln
           {
             Mln.Map_inference.default_options with
             Mln.Map_inference.solver = Mln.Map_inference.Ilp_exact;
             use_cpi = false;
           })
  | "psl" -> Ok (Tecore.Engine.Psl Psl.Npsl.default_options)
  | "auto" -> Ok Tecore.Engine.Auto
  | s -> Error (Printf.sprintf "unknown engine %S (mln|mln-exact|psl|auto)" s)

let engine_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (engine_of_string s) in
  let print ppf _ = Format.pp_print_string ppf "<engine>" in
  Arg.conv (parse, print)

let data_arg =
  let doc = "UTKG file in the temporal-quads format." in
  Arg.(
    required & opt (some string) None & info [ "d"; "data" ] ~docv:"FILE" ~doc)

let rules_arg =
  let doc = "Rules/constraints file in the rule language." in
  Arg.(
    value & opt (some string) None & info [ "r"; "rules" ] ~docv:"FILE" ~doc)

let engine_arg =
  let doc = "Inference engine: mln, mln-exact, psl or auto." in
  Arg.(value & opt engine_conv Tecore.Engine.Auto & info [ "e"; "engine" ] ~doc)

let threshold_arg =
  let doc = "Drop derived facts below this confidence." in
  Arg.(value & opt (some float) None & info [ "t"; "threshold" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for grounding and solver portfolios (0 = all cores). \
     Defaults to $(b,TECORE_JOBS), else 1. Results are \
     objective-identical at every job count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Exit-code contract (documented in [--help] via [Cmd.Exit.info]):
   0 success, 1 generic failure, 2 translator rejection, 3 deadline
   expired under [--on-timeout fail], 4 input/output error. *)
exception Cli_error of int * string

let exit_rejected = 2
let exit_timeout = 3
let exit_io = 4

let load_session ?rules_file data_file =
  let session = Tecore.Session.create () in
  (match Tecore.Session.load session data_file with
  | Ok () -> ()
  | Error (Tecore.Session.Io_error msg) -> raise (Cli_error (exit_io, msg))
  | Error e -> failwith (Tecore.Session.error_message e));
  (match rules_file with
  | None -> ()
  | Some path ->
      let src =
        try
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error msg -> raise (Cli_error (exit_io, msg))
      in
      (match Tecore.Session.add_rules session src with
      | Ok _ -> ()
      | Error e -> failwith (Printf.sprintf "%s: %s" path e)));
  session

let handle f =
  try
    f ();
    0
  with
  | Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Cli_error (code, msg) ->
      Printf.eprintf "error: %s\n" msg;
      code

(* The resolve pipeline's wall-clock budget: [--timeout] in seconds,
   falling back to the TECORE_TIMEOUT_MS environment variable. *)
let deadline_of ~timeout =
  match timeout with
  | Some secs -> Prelude.Deadline.after ~ms:(secs *. 1000.)
  | None -> Prelude.Deadline.of_timeout_ms (Prelude.Deadline.env_timeout_ms ())

(* ------------------------------------------------------------------ *)

(* Write [text] to [path], surfacing filesystem problems on the IO exit
   code like every other output path of the CLI. *)
let write_file path text =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text)
  with Sys_error msg -> raise (Cli_error (exit_io, msg))

let resolve data rules engine jobs threshold timeout on_timeout output
    verbose explain json stats trace log_level trace_out metrics_out =
  handle (fun () ->
      (* Any telemetry consumer flips observability on; a plain run keeps
         it off so the output stays byte-identical to earlier releases. *)
      let observing =
        stats || trace || log_level <> None || trace_out <> None
        || metrics_out <> None
      in
      if observing then begin
        Obs.reset ();
        Obs.set_enabled true
      end;
      if trace then
        Obs.set_trace
          (Some
             (fun ~depth name ms ->
               Printf.eprintf "[trace] %s%s %.3f ms\n%!"
                 (String.make (2 * depth) ' ')
                 name ms));
      (match log_level with
      | None -> ()
      | Some level ->
          let min_severity = Obs.Events.severity level in
          Obs.set_event_hook
            (Some
               (fun (e : Obs.Events.event) ->
                 if Obs.Events.severity e.Obs.Events.level >= min_severity
                 then
                   Printf.eprintf "[%s] %8.1f ms %s%s\n%!"
                     (Obs.Events.level_name e.Obs.Events.level)
                     e.Obs.Events.t_ms e.Obs.Events.name
                     (String.concat ""
                        (List.map
                           (fun (k, v) ->
                             Printf.sprintf " %s=%s" k
                               (Obs.Events.value_to_string v))
                           e.Obs.Events.fields)))));
      let session = load_session ?rules_file:rules data in
      (* Start the clock once the inputs are in memory: the budget is
         for the resolve pipeline (grounding + solving), not file IO. *)
      let deadline = deadline_of ~timeout in
      (* Telemetry exports share one captured report with --stats/--json
         so every consumer sees the same numbers. *)
      let export_telemetry obs =
        (match (trace_out, obs) with
        | Some path, Some r ->
            write_file path
              (Obs.Json.to_string (Obs.Export.chrome_trace r) ^ "\n")
        | _ -> ());
        match (metrics_out, obs) with
        | Some path, Some r -> write_file path (Obs.Export.open_metrics r)
        | _ -> ()
      in
      match
        Tecore.Session.resolve ~engine ?jobs ?threshold ~deadline ~on_timeout
          session
      with
      | Error e ->
          let code =
            match e with
            | Tecore.Session.Rejected _ -> exit_rejected
            | Tecore.Session.Ground_timeout _ -> exit_timeout
            | Tecore.Session.Io_error _ -> exit_io
            | Tecore.Session.Parse_error _ | Tecore.Session.No_graph
            | Tecore.Session.Absent_fact _ -> 1
          in
          raise (Cli_error (code, Tecore.Session.error_message e))
      | Ok result
        when on_timeout = `Fail
             && result.Tecore.Engine.stats.Tecore.Engine.status
                <> Prelude.Deadline.Completed ->
          raise
            (Cli_error
               ( exit_timeout,
                 Printf.sprintf
                   "deadline expired before inference completed (status: \
                    %s); re-run with --on-timeout best-effort to accept \
                    the anytime result"
                   (Prelude.Deadline.status_name
                      result.Tecore.Engine.stats.Tecore.Engine.status) ))
      | Ok result when json ->
          let obs = if observing then Some (Obs.Report.capture ()) else None in
          export_telemetry obs;
          print_endline
            (Tecore.Json_out.of_result
               ~namespace:(Tecore.Session.namespace session)
               ~deadline ?obs result)
      | Ok result ->
          print_endline (Tecore.Session.statistics session);
          (if explain then
             match Tecore.Session.graph session with
             | None -> ()
             | Some graph ->
                 let removals, derivations =
                   Tecore.Explain.of_result graph result
                 in
                 print_endline "-- explanations --";
                 List.iter
                   (fun r -> Format.printf "%a@." Tecore.Explain.pp_removal r)
                   removals;
                 List.iter
                   (fun d -> Format.printf "%a@." Tecore.Explain.pp_derivation d)
                   derivations);
          if verbose then begin
            print_endline "-- removed (conflicting) statements --";
            List.iter
              (fun q -> Format.printf "%a@." Kg.Quad.pp q)
              (Tecore.Session.conflicting_statements session);
            print_endline "-- derived statements --";
            List.iter
              (fun (d : Tecore.Conflict.derived_fact) ->
                Format.printf "%a  %.3f@." Logic.Atom.Ground.pp
                  d.Tecore.Conflict.atom d.Tecore.Conflict.confidence)
              result.Tecore.Engine.resolution.Tecore.Conflict.derived
          end;
          (match output with
          | None -> ()
          | Some path ->
              Kg.Nquads.save_file
                ~namespace:(Tecore.Session.namespace session)
                path
                result.Tecore.Engine.resolution.Tecore.Conflict.consistent;
              Printf.printf "consistent KG written to %s\n" path);
          let obs = if observing then Some (Obs.Report.capture ()) else None in
          export_telemetry obs;
          (match obs with
          | Some r when stats ->
              print_endline "-- observability --";
              Format.printf "%a@." Obs.Report.pp r
          | _ -> ()))

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds for the resolve pipeline (grounding \
     and solving, fractions allowed). When it expires the engine \
     returns its best feasible assignment so far and tags the run \
     $(b,timed_out) (or $(b,degraded)). Defaults to \
     $(b,TECORE_TIMEOUT_MS) (milliseconds) when set, else no limit."
  in
  Arg.(
    value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)

let on_timeout_arg =
  let doc =
    "Policy when the budget expires: $(b,best-effort) (default) keeps \
     grounding to completion, gives the solver the remaining budget \
     and reports the anytime result with its completion status; \
     $(b,fail) enforces the budget everywhere (including grounding) \
     and aborts with exit status 3 when it runs out."
  in
  Arg.(
    value
    & opt
        (Arg.enum [ ("best-effort", `Best_effort); ("fail", `Fail) ])
        `Best_effort
    & info [ "on-timeout" ] ~docv:"POLICY" ~doc)

let io_exits =
  Cmd.Exit.info 1 ~doc:"on failure (malformed input, unknown names, \
                        runtime errors)."
  :: Cmd.Exit.info exit_io
       ~doc:"on input/output errors (unreadable data or rules file)."
  :: Cmd.Exit.defaults

let resolve_exits =
  Cmd.Exit.info 1 ~doc:"on failure (malformed input, unknown names, \
                        runtime errors)."
  :: Cmd.Exit.info exit_rejected
       ~doc:"when the translator rejects the program (error-level notes \
             in the verification report)."
  :: Cmd.Exit.info exit_timeout
       ~doc:"when the time budget expires under $(b,--on-timeout) \
             $(b,fail) (during grounding or solving)."
  :: Cmd.Exit.info exit_io
       ~doc:"on input/output errors (unreadable data or rules file)."
  :: Cmd.Exit.defaults

let resolve_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Write the consistent KG here.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"List removed and derived facts.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the full result as JSON.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Explain every removal (clash partners, weights) and \
                   derivation (firing rules).")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print a per-stage timing and counter report (span tree) \
                   after resolving.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Stream span close events to stderr as they happen.")
  in
  let log_level =
    Arg.(
      value
      & opt
          (some
             (Arg.enum
                [
                  ("debug", Obs.Events.Debug);
                  ("info", Obs.Events.Info);
                  ("warn", Obs.Events.Warn);
                  ("error", Obs.Events.Error);
                ]))
          None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Stream structured pipeline events at or above LEVEL \
                (debug, info, warn, error) to stderr as they happen; the \
                full event log also lands in $(b,--json) and the \
                $(b,--stats) report.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace_event JSON timeline of the resolve \
                pipeline (per-stage spans, one lane per worker domain) to \
                FILE; load it in chrome://tracing or Perfetto.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write all counters, gauges, histogram quantiles and \
                convergence series in OpenMetrics (Prometheus) text \
                exposition format to FILE.")
  in
  Cmd.v
    (Cmd.info "resolve" ~exits:resolve_exits
       ~doc:"Compute the most probable conflict-free temporal KG")
    Term.(
      const resolve $ data_arg $ rules_arg $ engine_arg $ jobs_arg
      $ threshold_arg $ timeout_arg $ on_timeout_arg $ output $ verbose
      $ explain $ json $ stats $ trace $ log_level $ trace_out
      $ metrics_out)

(* ------------------------------------------------------------------ *)

let analyse data rules =
  handle (fun () ->
      let session = load_session ?rules_file:rules data in
      match Tecore.Session.analyse session with
      | Ok report -> Format.printf "%a@." Tecore.Translator.pp_report report
      | Error e -> failwith e)

let analyse_cmd =
  Cmd.v
    (Cmd.info "analyse" ~exits:io_exits
       ~doc:"Run the translator's verification pass without solving")
    Term.(const analyse $ data_arg $ rules_arg)

(* ------------------------------------------------------------------ *)

let complete data prefix =
  handle (fun () ->
      let session = load_session data in
      List.iter print_endline (Tecore.Session.complete_predicate session prefix))

let complete_cmd =
  let prefix =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PREFIX" ~doc:"Predicate prefix to complete.")
  in
  Cmd.v
    (Cmd.info "complete" ~exits:io_exits
       ~doc:"Predicate auto-completion (the constraint editor's helper)")
    Term.(const complete $ data_arg $ prefix)

(* ------------------------------------------------------------------ *)

let generate dataset output seed players noise total conflicts =
  handle (fun () ->
      let graph, summary =
        match dataset with
        | "footballdb" ->
            let d =
              Datagen.Footballdb.generate ~seed ~players ~noise_ratio:noise ()
            in
            ( d.Datagen.Footballdb.graph,
              Printf.sprintf "footballdb: %d facts (%d planted errors)"
                (Kg.Graph.size d.Datagen.Footballdb.graph)
                (List.length d.Datagen.Footballdb.planted) )
        | "wikidata" ->
            let d =
              Datagen.Wikidata.generate ~seed ~total_facts:total
                ~conflict_rate:conflicts ()
            in
            ( d.Datagen.Wikidata.graph,
              Printf.sprintf "wikidata: %d facts (%d planted conflicts)"
                (Kg.Graph.size d.Datagen.Wikidata.graph)
                (List.length d.Datagen.Wikidata.planted) )
        | other -> failwith (Printf.sprintf "unknown dataset %S" other)
      in
      Kg.Nquads.save_file output graph;
      Printf.printf "%s -> %s\n" summary output)

let generate_cmd =
  let dataset =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DATASET" ~doc:"footballdb or wikidata.")
  in
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let players =
    Arg.(value & opt int 6500 & info [ "players" ] ~doc:"footballdb players.")
  in
  let noise =
    Arg.(value & opt float 0.0
         & info [ "noise" ] ~doc:"footballdb erroneous/correct ratio.")
  in
  let total =
    Arg.(value & opt int 63_000 & info [ "total" ] ~doc:"wikidata fact count.")
  in
  let conflicts =
    Arg.(value & opt float 0.0
         & info [ "conflicts" ] ~doc:"wikidata planted conflict rate.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic UTKG dataset")
    Term.(
      const generate $ dataset $ output $ seed $ players $ noise $ total
      $ conflicts)

(* ------------------------------------------------------------------ *)

let query data query_text =
  handle (fun () ->
      let session = load_session data in
      match Tecore.Session.graph session with
      | None -> failwith "no graph"
      | Some graph -> (
          match
            Tecore.Query.run
              ~namespace:(Tecore.Session.namespace session)
              graph query_text
          with
          | Error e -> failwith e
          | Ok answers ->
              Printf.printf "%d answers\n" (List.length answers);
              List.iter
                (fun a ->
                  Format.printf "%a@." (Tecore.Query.pp_answer graph) a)
                answers))

let query_cmd =
  let text =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY"
             ~doc:"Temporal conjunctive query, e.g. \"coach(x,y)@t ^ coach(x,z)@t2 ^ y != z ^ intersects(t,t2)\".")
  in
  Cmd.v
    (Cmd.info "query" ~exits:io_exits
       ~doc:"Evaluate a temporal conjunctive query on a UTKG")
    Term.(const query $ data_arg $ text)

(* ------------------------------------------------------------------ *)

let suggest data min_ratio min_support =
  handle (fun () ->
      let session = load_session data in
      match Tecore.Session.graph session with
      | None -> failwith "no graph"
      | Some graph ->
          let config =
            { Tecore.Suggest.default_config with
              Tecore.Suggest.min_ratio; min_support }
          in
          let suggestions = Tecore.Suggest.mine ~config graph in
          Printf.printf "%d suggested constraints\n" (List.length suggestions);
          List.iter
            (fun s -> Format.printf "%a@.@." Tecore.Suggest.pp_suggestion s)
            suggestions)

let suggest_cmd =
  let min_ratio =
    Arg.(value & opt float 0.9
         & info [ "min-ratio" ] ~doc:"Acceptance threshold on the support ratio.")
  in
  let min_support =
    Arg.(value & opt int 20
         & info [ "min-support" ] ~doc:"Minimum fact pairs before suggesting.")
  in
  Cmd.v
    (Cmd.info "suggest" ~exits:io_exits
       ~doc:"Mine candidate temporal constraints from the selected UTKG")
    Term.(const suggest $ data_arg $ min_ratio $ min_support)

(* ------------------------------------------------------------------ *)

let export data rules target output =
  handle (fun () ->
      let session = load_session ?rules_file:rules data in
      let text =
        match target with
        | "mln" -> Tecore.Export.to_mln (Tecore.Session.rules session)
        | "psl" -> Tecore.Export.to_psl (Tecore.Session.rules session)
        | "evidence" -> (
            match Tecore.Session.graph session with
            | Some g -> Tecore.Export.to_mln_evidence g
            | None -> failwith "no graph")
        | other -> failwith (Printf.sprintf "unknown target %S (mln|psl|evidence)" other)
      in
      match output with
      | None -> print_string text
      | Some path ->
          Tecore.Export.save ~path text;
          Printf.printf "written to %s\n" path)

let export_cmd =
  let target =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TARGET" ~doc:"mln, psl or evidence.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export" ~exits:io_exits
       ~doc:"Render the program in a solver's native syntax (translator output)")
    Term.(const export $ data_arg $ rules_arg $ target $ output)

(* ------------------------------------------------------------------ *)

let coalesce data output =
  handle (fun () ->
      let session = load_session data in
      match Tecore.Session.graph session with
      | None -> failwith "no graph"
      | Some graph ->
          let merged = Kg.Coalesce.coalesce graph in
          Printf.printf "%d facts -> %d after coalescing\n"
            (Kg.Graph.size graph) (Kg.Graph.size merged);
          (match output with
          | None -> ()
          | Some path ->
              Kg.Nquads.save_file
                ~namespace:(Tecore.Session.namespace session)
                path merged;
              Printf.printf "written to %s\n" path))

let coalesce_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "coalesce" ~exits:io_exits
       ~doc:"Merge same-statement facts with adjacent or overlapping intervals")
    Term.(const coalesce $ data_arg $ output)

(* ------------------------------------------------------------------ *)

let diff_cmd =
  let load path =
    match Kg.Nquads.parse_file path with
    | Ok g -> g
    | Error e -> failwith (Format.asprintf "%s: %a" path Kg.Nquads.pp_error e)
  in
  let run left right =
    handle (fun () ->
        let d = Tecore.Diff.diff (load left) (load right) in
        Format.printf "%a@." Tecore.Diff.pp d;
        if not (Tecore.Diff.is_empty d) then raise Exit)
  in
  let run left right = try run left right with Exit -> 1 in
  let left =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LEFT" ~doc:"Left UTKG.")
  in
  let right =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"RIGHT" ~doc:"Right UTKG.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff two UTKGs (exit status 1 when they differ)")
    Term.(const run $ left $ right)

(* ------------------------------------------------------------------ *)

let learn data rules iterations =
  handle (fun () ->
      let session = load_session ?rules_file:(Some rules) data in
      match Tecore.Session.graph session with
      | None -> failwith "no graph"
      | Some graph ->
          let rule_set = Tecore.Session.rules session in
          let store = Grounder.Atom_store.of_graph graph in
          let ground = Grounder.Ground.run store rule_set in
          let options =
            { Mln.Learn.default_options with Mln.Learn.iterations }
          in
          let result =
            Mln.Learn.learn ~options store ground.Grounder.Ground.instances
              rule_set
          in
          Printf.printf "learned weights (pseudo-likelihood, %d iterations):\n"
            iterations;
          List.iter
            (fun (name, w) -> Printf.printf "  %-24s %.4f\n" name w)
            result.Mln.Learn.weights;
          print_endline "\nupdated program:";
          Format.printf "%a@."
            Rulelang.Printer.pp_program
            (Mln.Learn.apply result rule_set))

let learn_cmd =
  let rules =
    Arg.(required & opt (some file) None
         & info [ "r"; "rules" ] ~docv:"FILE" ~doc:"Rules to learn weights for.")
  in
  let iterations =
    Arg.(value & opt int 200 & info [ "iterations" ] ~doc:"Ascent iterations.")
  in
  Cmd.v
    (Cmd.info "learn" ~exits:io_exits
       ~doc:"Learn soft-rule weights from a UTKG by pseudo-likelihood")
    Term.(const learn $ data_arg $ rules $ iterations)

(* ------------------------------------------------------------------ *)

let demo () =
  handle (fun () ->
      let session = Tecore.Session.create () in
      let data =
        {|# Figure 1: coach Claudio Ranieri's career
ex:CR ex:coach ex:Chelsea [2000,2004] 0.9 .
ex:CR ex:coach ex:Leicester [2015,2017] 0.7 .
ex:CR ex:playsFor ex:Palermo [1984,1986] 0.5 .
ex:CR ex:birthDate 1951 [1951,2017] .
ex:CR ex:coach ex:Napoli [2001,2003] 0.6 .
|}
      in
      let rules =
        {|rule f1 2.5: ex:playsFor(x, y)@t => ex:worksFor(x, y)@t .
constraint c2: ex:coach(x, y)@t ^ ex:coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
|}
      in
      print_endline "== input UTKG (Figure 1) ==";
      print_string data;
      (match Tecore.Session.load_string session data with
      | Ok () -> ()
      | Error e -> failwith e);
      (match Tecore.Session.add_rules session rules with
      | Ok _ -> ()
      | Error e -> failwith e);
      print_endline "== rules and constraints ==";
      print_string rules;
      (match Tecore.Session.run session with
      | Ok _ -> ()
      | Error e -> failwith e);
      print_endline "== statistics (Figure 8) ==";
      print_endline (Tecore.Session.statistics session);
      print_endline "== consistent statements (Figure 7) ==";
      List.iter
        (fun q -> Format.printf "%a@." Kg.Quad.pp q)
        (Tecore.Session.consistent_statements session);
      print_endline "== conflicting statements ==";
      List.iter
        (fun q -> Format.printf "%a@." Kg.Quad.pp q)
        (Tecore.Session.conflicting_statements session))

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's Claudio Ranieri example end to end")
    Term.(const demo $ const ())

(* ------------------------------------------------------------------ *)

let session_run script_file engine jobs =
  handle (fun () ->
      let text =
        try
          let ic = open_in script_file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error msg -> raise (Cli_error (exit_io, msg))
      in
      match Tecore.Script.parse_string ~path:script_file text with
      | Error e -> failwith (Format.asprintf "%a" Tecore.Script.pp_error e)
      | Ok script -> (
          let session = Tecore.Session.create () in
          match
            Tecore.Script.run ~engine ?jobs ~session Format.std_formatter
              script
          with
          | Ok () -> ()
          | Error e ->
              failwith (Format.asprintf "%a" Tecore.Script.pp_error e)))

let session_cmd =
  let script_arg =
    let doc = "Edit script: load/assert/retract/rule/unrule/resolve/diff." in
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "script" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "session" ~exits:io_exits
       ~doc:"Run an edit script against one incremental session"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Drives one resolution session through a line-oriented edit \
              script: load a UTKG, assert and retract facts, add and \
              remove rules, resolve (incrementally by default) and diff \
              the input against the resolution. The transcript is \
              deterministic — no timings — and each resolve line reports \
              how the incremental caches were used \
              (hit/replay/miss/invalidate/fallback/fresh).";
         ])
    Term.(const session_run $ script_arg $ engine_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)

let read_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> raise (Cli_error (exit_io, msg))

let serve_listen socket port : Serve.listen =
  match (socket, port) with
  | Some path, _ -> `Unix path
  | None, Some p -> `Tcp p
  | None, None -> `Tcp 0

let serve_config engine jobs lanes queue timeout max_sessions state_dir fsync
    compact_every idle_ttl access_log access_log_max_bytes access_log_keep
    trace_every allow_shutdown =
  {
    Serve.default_config with
    Serve.engine;
    jobs;
    lanes = max 1 lanes;
    queue_cap = queue;
    request_timeout_ms = Option.map (fun s -> s *. 1000.) timeout;
    max_sessions;
    allow_shutdown;
    state_dir;
    fsync;
    compact_every;
    idle_ttl_s = idle_ttl;
    access_log;
    access_log_max_bytes;
    access_log_keep;
    trace_every;
  }

let serve_run socket port engine jobs lanes queue timeout max_sessions
    state_dir fsync compact_every idle_ttl access_log access_log_max_bytes
    access_log_keep trace_every script =
  handle (fun () ->
      let serve_config = serve_config engine jobs lanes queue timeout
          max_sessions state_dir fsync compact_every idle_ttl access_log
          access_log_max_bytes access_log_keep trace_every
      in
      match script with
      | Some script_file ->
          (* Scripted mode: in-process server, loopback driver, determin-
             istic transcript (golden-tested in data/serve_*.golden). *)
          let text = read_file script_file in
          let config = serve_config false in
          let server =
            try Serve.start ~config (serve_listen socket port)
            with Unix.Unix_error (e, _, _) ->
              raise (Cli_error (exit_io, Unix.error_message e))
          in
          let result =
            Serve.Driver.run ~server Format.std_formatter
              ~path:script_file text
          in
          Format.pp_print_flush Format.std_formatter ();
          Serve.stop server;
          (match result with
          | Ok () -> ()
          | Error e -> failwith (Format.asprintf "%a" Tecore.Script.pp_error e))
      | None ->
          let config = serve_config true in
          let server =
            try Serve.start ~config (serve_listen socket port)
            with Unix.Unix_error (e, _, _) ->
              raise (Cli_error (exit_io, Unix.error_message e))
          in
          let stop_on_signal _ = Serve.request_stop server in
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal);
          Printf.printf "tecore serve: listening on %s\n%!"
            (Serve.address server);
          Serve.wait server;
          Printf.printf "tecore serve: stopped (%d requests, %d shed)\n%!"
            (Serve.requests_total server)
            (Serve.shed_count server))

let serve_exits =
  Cmd.Exit.info 1 ~doc:"on failure (malformed driver script)."
  :: Cmd.Exit.info exit_io
       ~doc:"when the listen address cannot be bound."
  :: Cmd.Exit.defaults

let socket_arg =
  let doc = "Listen on (or connect to) a Unix-domain socket at PATH." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc =
    "Listen on (or connect to) 127.0.0.1:PORT. 0 picks a free port. \
     Ignored when $(b,--socket) is given."
  in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let lanes =
    Arg.(
      value
      & opt int Serve.default_config.Serve.lanes
      & info [ "lanes" ] ~docv:"N"
          ~doc:
            "Resolver lanes. Each session is pinned to one of N lanes \
             by a stable hash of its id: a session's resolves stay in \
             submission order, while sessions on different lanes no \
             longer head-of-line-block each other. The solve itself is \
             serialised across lanes, so results are byte-identical at \
             any lane count. Defaults to \\$TECORE_LANES, else 1 (the \
             previous single-resolver behaviour).")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission bound: shed a resolve with a typed \
             $(b,overloaded) response when more than N resolves are \
             already pending (queued plus running). 0 sheds whenever \
             the resolver is busy.")
  in
  let timeout =
    Arg.(
      value & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-request budget: requests whose budget expires while \
             queued are shed with a typed $(b,timed_out) response; the \
             remainder disciplines the solve itself. Note a finite \
             budget bypasses the incremental caches.")
  in
  let max_sessions =
    Arg.(
      value & opt (some int) None
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Session-registry bound: when a $(b,hello) would create a \
             session past N, the least-recently-used session is evicted \
             and connections still attached to it get a typed \
             $(b,evicted) error on their next use. Unbounded by \
             default.")
  in
  let script =
    Arg.(
      value & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Scripted mode: start an in-process server, run the driver \
             script (connect/send/post/recv/await-busy/await-idle/close) \
             against it over a real loopback socket, print the \
             transcript and exit.")
  in
  let state_dir =
    Arg.(
      value & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durability root. Every session keeps a write-ahead journal \
             under DIR/sessions/: accepted edits are journaled (and \
             fsynced, per $(b,--fsync)) before they are acked, and on \
             start the session registry is rebuilt by replaying every \
             session directory — tolerating torn tails from a crash \
             mid-write. See docs/SERVER.md.")
  in
  let fsync =
    let fsync_conv =
      let parse s =
        match Serve.Journal.fsync_policy_of_string s with
        | Ok p -> Ok p
        | Error msg -> Error (`Msg msg)
      in
      let print ppf p =
        Format.pp_print_string ppf (Serve.Journal.fsync_policy_name p)
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt fsync_conv Serve.Journal.Always
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "Journal fsync policy: $(b,always) (default; an acked edit \
             survives SIGKILL), $(b,never) (leave flushing to the OS), \
             or a positive integer N (fsync once per N records). \
             Snapshots and manifests are always fsynced.")
  in
  let compact_every =
    Arg.(
      value & opt int 256
      & info [ "compact-every" ] ~docv:"N"
          ~doc:
            "Compact a session's journal into a fresh snapshot once N \
             records accumulate since the last snapshot. 0 disables \
             size-triggered compaction ($(b,load) still forces one).")
  in
  let idle_ttl =
    Arg.(
      value & opt (some float) None
      & info [ "idle-ttl" ] ~docv:"SECS"
          ~doc:
            "Expire sessions idle for more than SECS seconds. With \
             $(b,--state-dir) an expired session is parked to disk and \
             a later $(b,hello) recovers it transparently; without one \
             it is discarded. Connections still attached get a typed \
             $(b,expired) error on their next request.")
  in
  let access_log =
    Arg.(
      value & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON-lines record per traced request to FILE: \
             request id, session, verb, outcome, wall time and the \
             per-phase breakdown (parse, queue, lock, ground, solve, \
             journal, fsync, reply). Rotated at \
             $(b,--access-log-max-bytes); analysed offline with \
             $(b,tecore logstat). Implies $(b,--trace-every 1) unless a \
             period is given explicitly.")
  in
  let access_log_max_bytes =
    Arg.(
      value & opt int (4 * 1024 * 1024)
      & info [ "access-log-max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Rotate the access log before it would exceed BYTES \
             (FILE -> FILE.1 -> ... -> FILE.N, oldest dropped).")
  in
  let access_log_keep =
    Arg.(
      value & opt int 3
      & info [ "access-log-keep" ] ~docv:"N"
          ~doc:"Rotated access-log files kept before the oldest is dropped.")
  in
  let trace_every =
    Arg.(
      value & opt int 0
      & info [ "trace-every" ] ~docv:"N"
          ~doc:
            "Request-trace sampling period: 0 off (default), 1 every \
             request, N every Nth request (by request id). Traced \
             requests carry a $(b,req) field in their response, feed the \
             $(b,tail) verb and the $(b,serve_request_phase_ms) metrics, \
             and land in $(b,--access-log) when one is set. Adjustable \
             at runtime with the $(b,trace) verb.")
  in
  Cmd.v
    (Cmd.info "serve" ~exits:serve_exits
       ~doc:"Serve many incremental sessions over a line protocol"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Long-lived daemon multiplexing many incremental resolution \
              sessions over a line-oriented wire protocol (the session \
              edit-script language plus server verbs: hello, open, stat, \
              result, metrics, ping, quit, shutdown, trace, tail). \
              Responses are single-line $(b,ok)/$(b,err) JSON objects; a \
              bounded run queue sheds excess resolves with typed \
              $(b,overloaded) responses. See docs/SERVER.md for the \
              protocol grammar and the request-tracing model.";
           `P
             "Exit status 0 on clean shutdown (SIGINT, SIGTERM or the \
              $(b,shutdown) verb).";
         ])
    Term.(
      const serve_run $ socket_arg $ port_arg $ engine_arg $ jobs_arg
      $ lanes $ queue $ timeout $ max_sessions $ state_dir $ fsync
      $ compact_every $ idle_ttl $ access_log $ access_log_max_bytes
      $ access_log_keep $ trace_every $ script)

(* ------------------------------------------------------------------ *)

(* Bounded exponential backoff with jitter for transient connect
   failures (a daemon restarting, a listen backlog dropping the
   handshake). Only ECONNREFUSED/ECONNRESET are retried — anything else
   (bad path, permissions) fails fast. On exhaustion the exit-code
   contract is unchanged: [exit_io], as if no retries were asked. *)
let client_connect sockaddr domain ~retries ~backoff_ms =
  if retries > 0 then Random.self_init ();
  let rec attempt n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let transient =
          match e with
          | Unix.ECONNREFUSED | Unix.ECONNRESET -> true
          | _ -> false
        in
        if transient && n < retries then begin
          let base = backoff_ms *. (2. ** float_of_int n) in
          let jitter = Random.float (Float.max 1. (base /. 2.)) in
          Unix.sleepf (Float.min 5000. (base +. jitter) /. 1000.);
          attempt (n + 1)
        end
        else raise (Cli_error (exit_io, "connect: " ^ Unix.error_message e))
  in
  attempt 0

let client_run socket port retries backoff_ms sends =
  handle (fun () ->
      let sockaddr =
        match (socket, port) with
        | Some path, _ -> Unix.ADDR_UNIX path
        | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
        | None, None ->
            failwith "tecore client needs --socket PATH or --port PORT"
      in
      let domain =
        match sockaddr with
        | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
        | _ -> Unix.PF_INET
      in
      let fd = client_connect sockaddr domain ~retries ~backoff_ms in
      let ic = Unix.in_channel_of_descr fd in
      let worst = ref 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          List.iter
            (fun req ->
              let b = Bytes.of_string (req ^ "\n") in
              ignore (Unix.write fd b 0 (Bytes.length b));
              match input_line ic with
              | resp ->
                  print_endline resp;
                  let contains affix =
                    let n = String.length affix in
                    let rec go i =
                      i + n <= String.length resp
                      && (String.sub resp i n = affix || go (i + 1))
                    in
                    go 0
                  in
                  let code =
                    if String.length resp >= 3 && String.sub resp 0 3 = "err"
                    then
                      if contains "\"kind\":\"rejected\"" then exit_rejected
                      else if contains "\"kind\":\"timed_out\"" then
                        exit_timeout
                      else 1
                    else 0
                  in
                  worst := max !worst code
              | exception End_of_file ->
                  raise
                    (Cli_error (exit_io, "connection closed by server")))
            sends);
      if !worst <> 0 then raise (Cli_error (!worst, "request failed")))

let client_cmd =
  let sends =
    Arg.(
      value & opt_all string []
      & info [ "send" ] ~docv:"REQUEST"
          ~doc:
            "Request line to send (repeatable, sent in order); each \
             response is printed to stdout.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a refused or reset connect up to N times with \
             bounded exponential backoff and jitter (for daemons \
             mid-restart). Other connect failures are never retried, \
             and on exhaustion the exit code is the same as without \
             retries.")
  in
  let backoff =
    Arg.(
      value & opt float 50.
      & info [ "backoff" ] ~docv:"MS"
          ~doc:
            "Base backoff in milliseconds for $(b,--retries): attempt n \
             sleeps MS*2^n plus jitter, capped at 5 s.")
  in
  Cmd.v
    (Cmd.info "client" ~exits:resolve_exits
       ~doc:"Send request lines to a running tecore serve")
    Term.(const client_run $ socket_arg $ port_arg $ retries $ backoff $ sends)

(* ------------------------------------------------------------------ *)

(* Offline analyzer for the server's access log: the same aggregation
   as Serve.Access_log.stats (and therefore the same quantiles as the
   live serve_request_phase_ms summaries over the same records). *)
let logstat file top =
  handle (fun () ->
      let records, warnings =
        try Serve.Access_log.read_file file
        with Sys_error msg -> raise (Cli_error (exit_io, msg))
      in
      List.iter
        (fun w ->
          Printf.eprintf "warning: %s\n"
            (Serve.Access_log.warning_to_string w))
        warnings;
      let s = Serve.Access_log.stats ~top records in
      Printf.printf "%d requests\n" s.Serve.Access_log.total;
      if s.Serve.Access_log.total > 0 then begin
      Printf.printf "%-8s %8s %10s %10s %10s %12s\n" "phase" "count"
        "p50 ms" "p95 ms" "max ms" "total ms";
        let row name h =
          Printf.printf "%-8s %8d %10.3f %10.3f %10.3f %12.3f\n" name
            (Obs.Histogram.count h)
            (Obs.Histogram.quantile h 0.5)
            (Obs.Histogram.quantile h 0.95)
            (Obs.Histogram.maximum h) (Obs.Histogram.total h)
        in
        row "wall" s.Serve.Access_log.wall;
        List.iter (fun (name, h) -> row name h) s.Serve.Access_log.phase_hists;
        print_endline "-- slowest requests --";
        List.iter
          (fun (r : Serve.Access_log.record) ->
            Printf.printf "%10.3f ms  req=%d %s %s%s\n"
              r.Serve.Access_log.wall_ms r.req r.verb r.outcome
              (match r.session with None -> "" | Some s -> " session=" ^ s))
          s.Serve.Access_log.slowest
      end;
      (* A torn tail is expected after a crash and only warns; damaged
         records anywhere else mean the file cannot be trusted. *)
      if
        List.exists
          (function Serve.Access_log.Bad_record _ -> true | _ -> false)
          warnings
      then failwith "access log contains malformed records")

let logstat_cmd =
  let file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Access log written by $(b,tecore serve --access-log).")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Slowest requests listed.")
  in
  Cmd.v
    (Cmd.info "logstat" ~exits:io_exits
       ~doc:
         "Summarise a tecore serve access log (per-phase p50/p95, \
          slowest requests)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Reads the JSON-lines access log of $(b,tecore serve \
              --access-log) and prints per-phase latency quantiles \
              (computed exactly like the live \
              $(b,serve_request_phase_ms) summaries) plus the top-N \
              slowest requests. A torn final line — the signature of a \
              crash mid-append — is skipped with a warning; malformed \
              records anywhere else fail the run.";
         ])
    Term.(const logstat $ file $ top)

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "tecore" ~version:"1.0.0"
       ~doc:"Temporal conflict resolution in uncertain knowledge graphs")
    [ resolve_cmd; analyse_cmd; complete_cmd; generate_cmd; query_cmd;
      suggest_cmd; export_cmd; coalesce_cmd; learn_cmd; diff_cmd;
      session_cmd; serve_cmd; client_cmd; logstat_cmd; demo_cmd ]

let () = exit (Cmd.eval' main)
