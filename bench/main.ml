(* Benchmark harness: regenerates every table, figure and quantitative
   claim of the paper's evaluation (see DESIGN.md section 3 for the
   experiment index, EXPERIMENTS.md for paper-vs-measured numbers).

   Usage:
     dune exec bench/main.exe              # all experiments
     dune exec bench/main.exe -- e3 a1     # a selection
     BENCH_FAST=1 dune exec bench/main.exe # skip the full-size E2 row

   Absolute times will not match the paper (different machine, different
   substrate); the shapes are what is being reproduced. *)

let fast_mode = ref (Sys.getenv_opt "BENCH_FAST" <> None)

let section id title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "==============================================================\n%!"

let row fmt = Printf.printf fmt

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> failwith (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let mln_engine = Tecore.Engine.Mln Mln.Map_inference.default_options
let psl_engine = Tecore.Engine.Psl Psl.Npsl.default_options

let engine_name = function
  | Tecore.Engine.Mln _ -> "MLN (nRockIt path)"
  | Tecore.Engine.Psl _ -> "nPSL"
  | Tecore.Engine.Auto -> "auto"

(* ------------------------------------------------------------------ *)
(* E1: the running example (Figures 1, 4, 6 -> Figure 7).             *)

let running_example_graph () =
  Kg.Graph.of_list
    [
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Chelsea") (2000, 2004) 0.9;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Leicester") (2015, 2017) 0.7;
      Kg.Quad.v "CR" "playsFor" (Kg.Term.iri "Palermo") (1984, 1986) 0.5;
      Kg.Quad.v "CR" "birthDate" (Kg.Term.int 1951) (1951, 2017) 1.0;
      Kg.Quad.v "CR" "coach" (Kg.Term.iri "Napoli") (2001, 2003) 0.6;
    ]

let running_example_rules () =
  parse_rules
    {|rule f1 2.5: playsFor(x, y)@t => worksFor(x, y)@t .
rule f2 1.6: worksFor(x, y)@t ^ locatedIn(y, z)@t2 ^ intersects(t, t2) => livesIn(x, z)@(t * t2) .
rule f3 2.9: playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ t - t2 < 20 => TeenPlayer(x) .
constraint c1: birthDate(x, y)@t ^ deathDate(x, z)@t2 => before(t, t2) .
constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint c3: bornIn(x, y)@t ^ bornIn(x, z)@t2 ^ intersects(t, t2) => y = z .|}

let e1 () =
  section "E1" "running example: map(θ(G), F ∪ C) removes fact (5)";
  List.iter
    (fun engine ->
      let result =
        Tecore.Engine.resolve ~engine (running_example_graph ())
          (running_example_rules ())
      in
      let removed =
        List.map
          (fun (_, q) -> Kg.Quad.to_string q)
          result.Tecore.Engine.resolution.Tecore.Conflict.removed
      in
      row "engine %-20s removed=%d derived=%d runtime=%.1fms\n"
        (engine_name engine)
        (List.length removed)
        (List.length result.Tecore.Engine.resolution.Tecore.Conflict.derived)
        result.Tecore.Engine.stats.Tecore.Engine.total_ms;
      List.iter (fun q -> row "  removed: %s\n" q) removed;
      let expected = "(CR, coach, Napoli, [2001,2003]) 0.6" in
      row "  paper expects exactly: %s -> %s\n" expected
        (if removed = [ expected ] then "REPRODUCED" else "MISMATCH"))
    [ mln_engine; psl_engine ]

(* ------------------------------------------------------------------ *)
(* E2: Figure 8 statistics — 19,734 conflicting of 243,157 facts.     *)

let e2 () =
  section "E2" "Figure 8: conflicting-fact statistics on a Wikidata-style UTKG";
  row "%-12s %-10s %-12s %-12s %-10s %-10s\n" "facts" "planted" "conflicting"
    "removed" "kept" "time(ms)";
  let sizes = if !fast_mode then [ 24_315 ] else [ 24_315; 243_157 ] in
  List.iter
    (fun total ->
      let d =
        Datagen.Wikidata.generate ~seed:2 ~total_facts:total
          ~conflict_rate:0.0812 ()
      in
      let result =
        Tecore.Engine.resolve ~engine:psl_engine d.Datagen.Wikidata.graph
          (Datagen.Wikidata.constraints ())
      in
      let r = result.Tecore.Engine.resolution in
      row "%-12d %-10d %-12d %-12d %-10d %-10.0f\n"
        (Kg.Graph.size d.Datagen.Wikidata.graph)
        (List.length d.Datagen.Wikidata.planted)
        (List.length r.Tecore.Conflict.conflicting)
        (List.length r.Tecore.Conflict.removed)
        r.Tecore.Conflict.kept result.Tecore.Engine.stats.Tecore.Engine.total_ms)
    sizes;
  row "paper: 19,734 conflicting facts out of 243,157 (planted rate 8.12%%);\n";
  row "our 'conflicting' also counts the clean partner of each clash, so it\n";
  row "is roughly 2x the planted count -- same detection shape.\n"

(* ------------------------------------------------------------------ *)
(* E3: MAP inference performance, nRockIt vs nPSL on FootballDB.      *)

let e3 () =
  section "E3"
    "MAP runtime on FootballDB (paper: nRockIt 12,181ms vs nPSL 6,129ms, avg 10 runs)";
  let d = Datagen.Footballdb.generate ~seed:1 ~players:6500 ~noise_ratio:0.5 () in
  let rules = Datagen.Footballdb.constraints () @ Datagen.Footballdb.rules () in
  row "dataset: %d facts (%d planted errors)\n"
    (Kg.Graph.size d.Datagen.Footballdb.graph)
    (List.length d.Datagen.Footballdb.planted);
  let runs = if !fast_mode then 3 else 10 in
  let measure engine =
    Prelude.Timing.mean_ms ~runs (fun () ->
        ignore (Tecore.Engine.resolve ~engine d.Datagen.Footballdb.graph rules))
  in
  let mln_ms = measure mln_engine in
  let psl_ms = measure psl_engine in
  row "%-24s %12s %14s\n" "engine" "ours (ms)" "paper (ms)";
  row "%-24s %12.0f %14s\n" "MLN (nRockIt path)" mln_ms "12181";
  row "%-24s %12.0f %14s\n" "nPSL" psl_ms "6129";
  row "speedup nPSL over MLN: ours %.2fx, paper %.2fx -> %s\n" (mln_ms /. psl_ms)
    (12181.0 /. 6129.0)
    (if mln_ms > psl_ms then "SHAPE REPRODUCED (PSL faster)"
     else "SHAPE MISMATCH")

(* ------------------------------------------------------------------ *)
(* E4: dataset cardinalities of Section 4.                            *)

let e4 () =
  section "E4" "dataset shapes vs the paper's corpus description";
  let fb = Datagen.Footballdb.generate ~seed:1 ~players:6500 () in
  let count g p = List.length (Kg.Graph.by_predicate g (Kg.Term.iri p)) in
  row "FootballDB (full scale):\n";
  row "  %-12s ours=%-8d paper=%s\n" "playsFor"
    (count fb.Datagen.Footballdb.graph "playsFor")
    ">13,000";
  row "  %-12s ours=%-8d paper=%s\n" "birthDate"
    (count fb.Datagen.Footballdb.graph "birthDate")
    ">6,000";
  let wd = Datagen.Wikidata.generate ~seed:2 ~total_facts:63_000 () in
  row "Wikidata (1:100 scale; paper total 6.3M):\n";
  let paper_share =
    [
      ("playsFor", "dominant (>4M of 6.3M)"); ("memberOf", ">23K");
      ("spouse", ">20K"); ("educatedAt", ">6K"); ("occupation", ">4.5K");
    ]
  in
  List.iter
    (fun (rel, paper) ->
      let ours =
        Option.value
          (List.assoc_opt rel wd.Datagen.Wikidata.relation_counts)
          ~default:0
      in
      row "  %-12s ours=%-8d paper=%s\n" rel ours paper)
    paper_share

(* ------------------------------------------------------------------ *)
(* E5: debugging quality in the paper's 50%-noise regime.             *)

let e5 () =
  section "E5" "noise robustness: 'as many erroneous temporal facts as correct ones'";
  row "%-8s %-20s %-10s %-10s %-10s %-10s\n" "noise" "engine" "planted"
    "removed" "precision" "recall";
  List.iter
    (fun noise_ratio ->
      let d = Datagen.Footballdb.generate ~seed:7 ~players:2000 ~noise_ratio () in
      let rules = Datagen.Footballdb.constraints () in
      List.iter
        (fun engine ->
          let result =
            Tecore.Engine.resolve ~engine d.Datagen.Footballdb.graph rules
          in
          let planted = d.Datagen.Footballdb.planted in
          let removed =
            List.map fst result.Tecore.Engine.resolution.Tecore.Conflict.removed
          in
          let planted_set = Hashtbl.create 64 in
          List.iter (fun id -> Hashtbl.replace planted_set id ()) planted;
          let tp = List.length (List.filter (Hashtbl.mem planted_set) removed) in
          row "%-8.2f %-20s %-10d %-10d %-10.3f %-10.3f\n" noise_ratio
            (engine_name engine) (List.length planted) (List.length removed)
            (float_of_int tp /. float_of_int (max 1 (List.length removed)))
            (float_of_int tp /. float_of_int (max 1 (List.length planted))))
        [ mln_engine; psl_engine ])
    [ 0.25; 0.5; 1.0 ]

(* ------------------------------------------------------------------ *)
(* E6: the threshold feature on derived facts.                        *)

let e6 () =
  section "E6" "threshold on derived facts ('remove derived facts below that')";
  (* Wikidata's inference rule derives binary temporal facts
     (occupation(x, Athlete)@t), so thresholded facts visibly leave the
     expanded KG. Facts derivable from several stints get a higher
     support confidence and survive stricter thresholds. *)
  let d = Datagen.Wikidata.generate ~seed:3 ~total_facts:4_000 () in
  let rules = Datagen.Wikidata.constraints () @ Datagen.Wikidata.rules () in
  row "%-10s %-14s %-14s\n" "threshold" "derived kept" "consistent size";
  List.iter
    (fun threshold ->
      let result =
        Tecore.Engine.resolve ~engine:psl_engine ~threshold
          d.Datagen.Wikidata.graph rules
      in
      row "%-10.2f %-14d %-14d\n" threshold
        (List.length result.Tecore.Engine.resolution.Tecore.Conflict.derived)
        (Kg.Graph.size
           result.Tecore.Engine.resolution.Tecore.Conflict.consistent))
    [ 0.0; 0.5; 0.7; 0.8; 0.9; 0.95 ]

(* ------------------------------------------------------------------ *)
(* E7: scalability sweep — the expressiveness/scalability trade.      *)

let e7 () =
  section "E7" "scalability: PSL scales, MLN does not (size sweep)";
  row "%-10s %-14s %-14s %-10s\n" "facts" "MLN (ms)" "nPSL (ms)" "ratio";
  let sizes =
    if !fast_mode then [ 1_000; 4_000; 16_000 ]
    else [ 1_000; 2_000; 4_000; 8_000; 16_000; 32_000; 64_000 ]
  in
  List.iter
    (fun total ->
      let d =
        Datagen.Wikidata.generate ~seed:4 ~total_facts:total ~conflict_rate:0.08
          ()
      in
      let rules = Datagen.Wikidata.constraints () in
      let time engine =
        Prelude.Timing.time_ms (fun () ->
            ignore (Tecore.Engine.resolve ~engine d.Datagen.Wikidata.graph rules))
      in
      let mln_ms = time mln_engine in
      let psl_ms = time psl_engine in
      row "%-10d %-14.0f %-14.0f %-10.2f\n"
        (Kg.Graph.size d.Datagen.Wikidata.graph)
        mln_ms psl_ms (mln_ms /. psl_ms))
    sizes

(* ------------------------------------------------------------------ *)
(* A1: ablation — cutting-plane inference on vs off.                  *)

let a1 () =
  section "A1"
    "ablation: condition-aware grounding vs naive propositionalisation";
  (* TeCoRe grounds MLNs *with numerical constraints*: Allen and
     arithmetic conditions are evaluated during grounding, so only the
     genuinely violated constraint instances become clauses. A naive
     propositionalisation keeps one clause per instance, satisfied ones
     included (here emulated with a pinned always-true atom so the
     solver really has to carry them). *)
  let d = Datagen.Footballdb.generate ~seed:5 ~players:3000 ~noise_ratio:0.5 () in
  let rules = Datagen.Footballdb.constraints () in
  let store = Grounder.Atom_store.of_graph d.Datagen.Footballdb.graph in
  let ground, ground_ms =
    Prelude.Timing.time (fun () -> Grounder.Ground.run store rules)
  in
  let instances = ground.Grounder.Ground.instances in
  let aware = Mln.Network.build store instances in
  let naive =
    let n = aware.Mln.Network.num_atoms in
    let pinned = n in
    let extra =
      List.filter_map
        (fun { Grounder.Ground.Instance.rule; body_atoms; head } ->
          match head with
          | Grounder.Ground.Instance.Satisfied ->
              (* naive grounding keeps the satisfied instance around *)
              Some
                {
                  Mln.Network.literals =
                    Array.of_list
                      ({ Mln.Network.atom = pinned; positive = true }
                      :: List.map
                           (fun id ->
                             { Mln.Network.atom = id; positive = false })
                           body_atoms);
                  weight = rule.Logic.Rule.weight;
                  source = rule.Logic.Rule.name ^ "/naive";
                }
          | Grounder.Ground.Instance.Violated
          | Grounder.Ground.Instance.Derives _ ->
              None)
        instances
    in
    let pin_clause =
      {
        Mln.Network.literals = [| { Mln.Network.atom = pinned; positive = true } |];
        weight = None;
        source = "pin";
      }
    in
    {
      Mln.Network.num_atoms = n + 1;
      clauses =
        Array.concat
          [ aware.Mln.Network.clauses; Array.of_list (pin_clause :: extra) ];
    }
  in
  row "grounding produced %d rule instances in %.0f ms\n"
    (List.length instances) ground_ms;
  row "%-24s %-14s %-14s\n" "grounding" "clauses" "solve (ms)";
  let solve network =
    let init = Array.make network.Mln.Network.num_atoms false in
    Grounder.Atom_store.iter
      (fun id _ origin ->
        match origin with
        | Grounder.Atom_store.Evidence _ -> init.(id) <- true
        | Grounder.Atom_store.Hidden -> ())
      store;
    if network.Mln.Network.num_atoms > Grounder.Atom_store.size store then
      init.(Grounder.Atom_store.size store) <- true;
    Prelude.Timing.mean_ms ~runs:3 (fun () ->
        ignore (Mln.Maxwalksat.solve ~seed:1 ~init network))
  in
  row "%-24s %-14d %-14.0f\n" "condition-aware (ours)"
    (Array.length aware.Mln.Network.clauses)
    (solve aware);
  row "%-24s %-14d %-14.0f\n" "naive (all instances)"
    (Array.length naive.Mln.Network.clauses)
    (solve naive)

(* ------------------------------------------------------------------ *)
(* A2: ablation — exact solvers vs local search on small instances.   *)

let a2 () =
  section "A2" "ablation: MaxWalkSAT vs exact branch&bound vs ILP (small graphs)";
  row "%-10s %-14s %-12s %-12s\n" "solver" "objective" "time (ms)" "kind";
  let d = Datagen.Footballdb.generate ~seed:6 ~players:12 ~noise_ratio:0.6 () in
  let rules = Datagen.Footballdb.constraints () in
  List.iter
    (fun (name, solver) ->
      let options =
        {
          Mln.Map_inference.default_options with
          Mln.Map_inference.solver;
          use_cpi = false;
        }
      in
      let out, ms =
        Prelude.Timing.time (fun () ->
            Mln.Map_inference.run ~options d.Datagen.Footballdb.graph rules)
      in
      row "%-10s %-14.4f %-12.2f %-12s\n" name
        out.Mln.Map_inference.stats.Mln.Map_inference.objective ms
        (match solver with
        | Mln.Map_inference.Walk -> "approximate"
        | Mln.Map_inference.Exact_bb | Mln.Map_inference.Ilp_exact -> "exact"))
    [
      ("walk", Mln.Map_inference.Walk);
      ("exact", Mln.Map_inference.Exact_bb);
      ("ilp", Mln.Map_inference.Ilp_exact);
    ]

(* ------------------------------------------------------------------ *)
(* A3: ablation — ADMM iteration budget vs solution quality.          *)

let a3 () =
  section "A3" "ablation: ADMM iterations vs objective and rounding repairs";
  let d = Datagen.Footballdb.generate ~seed:8 ~players:1500 ~noise_ratio:0.5 () in
  let rules = Datagen.Footballdb.constraints () in
  row "%-12s %-12s %-12s %-14s %-10s %-10s\n" "max_iters" "iters" "objective"
    "violation" "flips" "time(ms)";
  List.iter
    (fun max_iters ->
      let options = { Psl.Npsl.default_options with Psl.Npsl.max_iters } in
      let out, ms =
        Prelude.Timing.time (fun () ->
            Psl.Npsl.run ~options d.Datagen.Footballdb.graph rules)
      in
      row "%-12d %-12d %-12.2f %-14.4f %-10d %-10.0f\n" max_iters
        out.Psl.Npsl.stats.Psl.Npsl.admm.Psl.Admm.iterations
        out.Psl.Npsl.stats.Psl.Npsl.admm.Psl.Admm.objective
        (Psl.Hlmrf.constraint_violation out.Psl.Npsl.model out.Psl.Npsl.truth)
        out.Psl.Npsl.stats.Psl.Npsl.rounding.Psl.Rounding.flipped ms)
    [ 10; 50; 100; 500; 2000 ]

(* ------------------------------------------------------------------ *)
(* A4: marginal (Gibbs) inference vs MAP — per-fact posteriors.       *)

let a4 () =
  section "A4" "extension: marginal inference (Gibbs, MC-SAT) separates noise from clean facts";
  let d = Datagen.Footballdb.generate ~seed:10 ~players:150 ~noise_ratio:0.5 () in
  let rules = Datagen.Footballdb.constraints () in
  let store = Grounder.Atom_store.of_graph d.Datagen.Footballdb.graph in
  let ground = Grounder.Ground.run store rules in
  let network = Mln.Network.build store ground.Grounder.Ground.instances in
  let init = Mln.Network.initial_assignment network store in
  let (marginals : Mln.Gibbs.result), ms =
    Prelude.Timing.time (fun () ->
        Mln.Gibbs.run ~seed:1 ~burn_in:500 ~samples:3_000 ~init network)
  in
  let planted = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace planted id ()) d.Datagen.Footballdb.planted;
  let clean_sum = ref 0.0 and clean_n = ref 0 in
  let noise_sum = ref 0.0 and noise_n = ref 0 in
  Grounder.Atom_store.iter
    (fun id _ origin ->
      match origin with
      | Grounder.Atom_store.Evidence { fact; _ } ->
          let m = marginals.Mln.Gibbs.marginals.(id) in
          if Hashtbl.mem planted fact then begin
            noise_sum := !noise_sum +. m;
            incr noise_n
          end
          else begin
            clean_sum := !clean_sum +. m;
            incr clean_n
          end
      | Grounder.Atom_store.Hidden -> ())
    store;
  let walk, _ = Mln.Maxwalksat.solve ~seed:1 ~init network in
  let agree = ref 0 and total = ref 0 in
  Array.iteri
    (fun id m ->
      incr total;
      if (m >= 0.5) = walk.(id) then incr agree)
    marginals.Mln.Gibbs.marginals;
  row "facts: %d (%d planted), Gibbs sampling %.0f ms (%d sweeps)\n"
    (Kg.Graph.size d.Datagen.Footballdb.graph)
    (List.length d.Datagen.Footballdb.planted)
    ms marginals.Mln.Gibbs.samples;
  row "Gibbs: mean posterior clean %.3f, planted noise %.3f\n"
    (!clean_sum /. float_of_int (max 1 !clean_n))
    (!noise_sum /. float_of_int (max 1 !noise_n));
  row "MAP/Gibbs agreement (threshold 0.5): %.3f\n"
    (float_of_int !agree /. float_of_int (max 1 !total));
  (* MC-SAT honours the hard constraints exactly in every sample. *)
  let (mcsat : Mln.Mcsat.result), mcsat_ms =
    Prelude.Timing.time (fun () ->
        Mln.Mcsat.run ~seed:1 ~burn_in:50 ~samples:300 ~init network)
  in
  let clean_sum = ref 0.0 and clean_n = ref 0 in
  let noise_sum = ref 0.0 and noise_n = ref 0 in
  Grounder.Atom_store.iter
    (fun id _ origin ->
      match origin with
      | Grounder.Atom_store.Evidence { fact; _ } ->
          let m = mcsat.Mln.Mcsat.marginals.(id) in
          if Hashtbl.mem planted fact then begin
            noise_sum := !noise_sum +. m;
            incr noise_n
          end
          else begin
            clean_sum := !clean_sum +. m;
            incr clean_n
          end
      | Grounder.Atom_store.Hidden -> ())
    store;
  row "MC-SAT (%d slices, %.0f ms, %d rejected): mean posterior clean \
       %.3f, planted noise %.3f\n"
    mcsat.Mln.Mcsat.samples mcsat_ms mcsat.Mln.Mcsat.rejected
    (!clean_sum /. float_of_int (max 1 !clean_n))
    (!noise_sum /. float_of_int (max 1 !noise_n))

(* ------------------------------------------------------------------ *)
(* A5: extension — constraint suggestion recovers the generators'     *)
(* ground-truth constraints from clean data.                          *)

let a5 () =
  section "A5" "extension: automatic constraint suggestion (mining)";
  let corpora =
    [
      ("footballdb", (Datagen.Footballdb.generate ~seed:11 ~players:800 ()).Datagen.Footballdb.graph);
      ("wikidata", (Datagen.Wikidata.generate ~seed:11 ~total_facts:6_000 ()).Datagen.Wikidata.graph);
    ]
  in
  List.iter
    (fun (name, graph) ->
      let suggestions, ms =
        Prelude.Timing.time (fun () -> Tecore.Suggest.mine graph)
      in
      row "%s: %d suggestions in %.0f ms\n" name (List.length suggestions) ms;
      List.iter
        (fun s ->
          row "  ratio %.3f support %-6d %s\n" s.Tecore.Suggest.ratio
            s.Tecore.Suggest.support
            (Rulelang.Printer.rule_to_string s.Tecore.Suggest.rule))
        suggestions)
    corpora;
  row "expected recoveries: playsFor disjointness and the\n";
  row "birthDate-before-playsFor precedence on footballdb; playsFor and\n";
  row "spouse disjointness on wikidata. (birthDate functionality needs\n";
  row "duplicate assertions per subject, which clean corpora lack.)\n"

(* ------------------------------------------------------------------ *)
(* A6: extension — pseudo-likelihood weight learning.                 *)

let a6 () =
  section "A6" "extension: rule-weight learning by pseudo-likelihood";
  let rules =
    parse_rules
      {|rule supported 1.0: playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ t - t2 > 30 => VeteranPlayer(x) .
rule unsupported 1.0: playsFor(x, y)@t => VeteranPlayer(x) .
constraint satisfied 1.0: playsFor(x, y)@t ^ playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint violated 1.0: playsFor(x, y)@t ^ playsFor(x, z)@t2 => intersects(t, t2) .|}
  in
  let d = Datagen.Footballdb.generate ~seed:23 ~players:1000 () in
  let store = Grounder.Atom_store.of_graph d.Datagen.Footballdb.graph in
  let ground = Grounder.Ground.run store rules in
  let result, ms =
    Prelude.Timing.time (fun () ->
        Mln.Learn.learn store ground.Grounder.Ground.instances rules)
  in
  row "trained on %d clean facts in %.0f ms\n"
    (Kg.Graph.size d.Datagen.Footballdb.graph)
    ms;
  row "%-14s %-10s %s\n" "rule" "learned w" "expectation";
  let expectation = function
    | "supported" | "unsupported" ->
        "head never observed -> floor"
    | "satisfied" -> "never violated by the data -> rises"
    | _ -> "contradicted by disjoint stints -> floor"
  in
  List.iter
    (fun (name, w) -> row "%-14s %-10.3f %s\n" name w (expectation name))
    result.Mln.Learn.weights;
  (match (List.assoc_opt "satisfied" result.Mln.Learn.weights,
          List.assoc_opt "violated" result.Mln.Learn.weights) with
  | Some s, Some v ->
      row "shape: satisfied (%.2f) > violated (%.2f) -> %s\n" s v
        (if s > v then "REPRODUCED" else "MISMATCH")
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* A7: extension — repair strategies: greedy vs hitting sets vs MAP.  *)

let a7 () =
  section "A7" "extension: repair strategies (greedy / min hitting set / MAP)";
  let d = Datagen.Footballdb.generate ~seed:35 ~players:8 ~noise_ratio:0.45 () in
  let rules = Datagen.Footballdb.constraints () in
  let graph = d.Datagen.Footballdb.graph in
  row "dataset: %d facts, %d planted errors, %d conflict sets\n"
    (Kg.Graph.size graph)
    (List.length d.Datagen.Footballdb.planted)
    (List.length (Tecore.Repair.conflict_sets graph rules));
  row "%-16s %-10s %-12s %-12s %-12s\n" "strategy" "removed" "conf cost"
    "logit cost" "time (ms)";
  let logit_cost removed =
    List.fold_left (fun acc (_, q) -> acc +. Kg.Quad.weight q) 0.0 removed
  in
  let conf_cost removed =
    List.fold_left (fun acc (_, q) -> acc +. q.Kg.Quad.confidence) 0.0 removed
  in
  let score name removed ms =
    row "%-16s %-10d %-12.2f %-12.2f %-12.2f\n" name (List.length removed)
      (conf_cost removed) (logit_cost removed) ms
  in
  let greedy, greedy_ms =
    Prelude.Timing.time (fun () -> Tecore.Repair.greedy graph rules)
  in
  score "greedy" greedy.Tecore.Repair.removed greedy_ms;
  (let result, ms =
     Prelude.Timing.time (fun () -> Tecore.Repair.optimal_hitting_set graph rules)
   in
   match result with
   | Some hs -> score "hitting-set" hs.Tecore.Repair.removed ms
   | None -> row "hitting-set      (beyond diagnosis scale)\n");
  let map_result, map_ms =
    Prelude.Timing.time (fun () -> Tecore.Engine.resolve graph rules)
  in
  score "MAP (TeCoRe)" map_result.Tecore.Engine.resolution.Tecore.Conflict.removed
    map_ms;
  row "each strategy optimises its own measure: greedy and the hitting\n";
  row "set minimise confidence mass, MAP minimises log-odds (logit) mass;\n";
  row "MAP should win the logit column, the hitting set the conf column.\n"

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the solver kernels with Bechamel.              *)

let micro () =
  section "MICRO" "bechamel micro-benchmarks of the solver kernels";
  let d = Datagen.Footballdb.generate ~seed:9 ~players:400 ~noise_ratio:0.5 () in
  let rules = Datagen.Footballdb.constraints () in
  (* Pre-ground once so the kernels are isolated. *)
  let store = Grounder.Atom_store.of_graph d.Datagen.Footballdb.graph in
  let ground = Grounder.Ground.run store rules in
  let network = Mln.Network.build store ground.Grounder.Ground.instances in
  let model = Psl.Hlmrf.build store ground.Grounder.Ground.instances in
  let init = Mln.Network.initial_assignment network store in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        Test.make ~name:"grounding/footballdb-400"
          (Staged.stage (fun () ->
               let store =
                 Grounder.Atom_store.of_graph d.Datagen.Footballdb.graph
               in
               ignore (Grounder.Ground.run store rules)));
        Test.make ~name:"maxwalksat/footballdb-400"
          (Staged.stage (fun () ->
               ignore
                 (Mln.Maxwalksat.solve ~seed:1 ~max_flips:20_000 ~init network)));
        Test.make ~name:"admm/footballdb-400"
          (Staged.stage (fun () -> ignore (Psl.Admm.solve ~max_iters:200 model)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> row "%-40s %14.0f ns/run\n" name est
      | Some _ | None -> row "%-40s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* OBS: per-stage medians over repeated end-to-end runs, exported as   *)
(* machine-readable BENCH_obs.json (validated by re-parsing it).       *)

let obs_json_path = "BENCH_obs.json"
let obs_check = ref false

(* Measure the obs experiment's runs in memory: for every
   dataset x engine, [reps] observed end-to-end resolves, reduced to
   per-stage duration medians. Shared by the write mode (serialises to
   BENCH_obs.json) and the --check mode (compares against the committed
   file). *)
let obs_measure () =
  let reps = if !fast_mode then 3 else 5 in
  let datasets =
    let fb players =
      let d =
        Datagen.Footballdb.generate ~seed:13 ~players ~noise_ratio:0.5 ()
      in
      ( Printf.sprintf "footballdb-%d" players,
        d.Datagen.Footballdb.graph,
        Datagen.Footballdb.constraints () )
    in
    let wd total =
      let d =
        Datagen.Wikidata.generate ~seed:13 ~total_facts:total
          ~conflict_rate:0.08 ()
      in
      ( Printf.sprintf "wikidata-%d" total,
        d.Datagen.Wikidata.graph,
        Datagen.Wikidata.constraints () )
    in
    if !fast_mode then [ fb 150; wd 1_000 ] else [ fb 400; wd 4_000 ]
  in
  let engines = [ ("mln", mln_engine); ("psl", psl_engine) ] in
  let stage_paths =
    [
      ("total", [ "resolve" ]);
      ("ground", [ "resolve"; "ground" ]);
      ("encode", [ "resolve"; "encode" ]);
      ("solve", [ "resolve"; "solve" ]);
      ("interpret", [ "resolve"; "interpret" ]);
    ]
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  ( reps,
    List.concat_map
      (fun (dataset, graph, rules) ->
        List.map
          (fun (engine_id, engine) ->
            let reports =
              List.init reps (fun _ ->
                  Obs.reset ();
                  Obs.set_enabled true;
                  ignore (Tecore.Engine.resolve ~engine graph rules);
                  let r = Obs.Report.capture () in
                  Obs.set_enabled false;
                  r)
            in
            let stages =
              List.filter_map
                (fun (stage, path) ->
                  let samples =
                    List.filter_map
                      (fun r ->
                        Option.map
                          (fun (n : Obs.Report.node) -> n.Obs.Report.total_ms)
                          (Obs.Report.find r path))
                      reports
                  in
                  if samples = [] then None
                  else Some (stage, median samples, samples))
                stage_paths
            in
            List.iter
              (fun (stage, ms, _) ->
                row "%-16s %-5s %-10s median %10.2f ms\n" dataset engine_id
                  stage ms)
              stages;
            (dataset, engine_id, Kg.Graph.size graph, stages))
          engines)
      datasets )

(* Compare freshly measured medians against the committed
   BENCH_obs.json. The tolerance is a generous multiplicative factor
   (machines and CI load differ far more than a regression does) with a
   small absolute floor so sub-millisecond stages never trip it; both
   are overridable via BENCH_OBS_TOL_FACTOR / BENCH_OBS_TOL_FLOOR_MS. *)
let obs_check_run () =
  section "OBS" "observability: measured medians vs committed BENCH_obs.json";
  let env_float name default =
    match Option.bind (Sys.getenv_opt name) float_of_string_opt with
    | Some v when v > 0.0 -> v
    | _ -> default
  in
  let factor = env_float "BENCH_OBS_TOL_FACTOR" 25.0 in
  let floor_ms = env_float "BENCH_OBS_TOL_FLOOR_MS" 5.0 in
  let reference =
    let text =
      try
        let ic = open_in obs_json_path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        failwith
          (Printf.sprintf
             "obs --check: cannot read %s (%s); run `bench obs` to \
              regenerate it"
             obs_json_path msg)
    in
    match Obs.Json.parse text with
    | Error e -> failwith (Printf.sprintf "obs --check: %s: %s" obs_json_path e)
    | Ok parsed -> (
        match Obs.Json.member "runs" parsed with
        | Some (Obs.Json.Arr runs) -> runs
        | _ -> failwith (obs_json_path ^ ": no runs"))
  in
  let ref_median run_json stage =
    match Obs.Json.member "stages" run_json with
    | Some (Obs.Json.Obj stages) -> (
        match
          Option.bind (List.assoc_opt stage stages) (Obs.Json.member "median_ms")
        with
        | Some (Obs.Json.Num ms) -> Some ms
        | _ -> None)
    | _ -> None
  in
  let find_ref dataset engine =
    List.find_opt
      (fun r ->
        Obs.Json.member "dataset" r = Some (Obs.Json.Str dataset)
        && Obs.Json.member "engine" r = Some (Obs.Json.Str engine))
      reference
  in
  let _, measured = obs_measure () in
  let overlaps = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (dataset, engine_id, _, stages) ->
      match find_ref dataset engine_id with
      | None ->
          row "%-16s %-5s not in %s -- skipped\n" dataset engine_id
            obs_json_path
      | Some ref_run ->
          incr overlaps;
          List.iter
            (fun (stage, ours, _) ->
              match ref_median ref_run stage with
              | None -> ()
              | Some reference ->
                  let lo = Float.min ours reference
                  and hi = Float.max ours reference in
                  let ok = hi <= floor_ms || hi <= lo *. factor in
                  row "%-16s %-5s %-10s ours %10.2f ms ref %10.2f ms %s\n"
                    dataset engine_id stage ours reference
                    (if ok then "ok" else "FAIL");
                  if not ok then
                    failures :=
                      Printf.sprintf "%s/%s/%s: %.2f ms vs %.2f ms" dataset
                        engine_id stage ours reference
                      :: !failures)
            stages)
    measured;
  if !overlaps = 0 then
    failwith
      (Printf.sprintf
         "obs --check: no measured run matches %s (regenerate it with the \
          same BENCH_FAST setting)"
         obs_json_path);
  match !failures with
  | [] ->
      row "obs --check: %d run(s) within %.0fx of %s\n" !overlaps factor
        obs_json_path
  | fs ->
      failwith
        (Printf.sprintf "obs --check: %d stage(s) out of tolerance:\n  %s"
           (List.length fs)
           (String.concat "\n  " (List.rev fs)))

let obs_bench () =
  if !obs_check then obs_check_run ()
  else begin
  section "OBS" "observability: per-stage medians -> BENCH_obs.json";
  let reps, measured = obs_measure () in
  let runs =
    List.map
      (fun (dataset, engine_id, facts, stages) ->
        Obs.Json.Obj
          [
            ("dataset", Obs.Json.Str dataset);
            ("engine", Obs.Json.Str engine_id);
            ("facts", Obs.Json.Num (float_of_int facts));
            ("reps", Obs.Json.Num (float_of_int reps));
            ( "stages",
              Obs.Json.Obj
                (List.map
                   (fun (stage, median_ms, samples) ->
                     ( stage,
                       Obs.Json.Obj
                         [
                           ("median_ms", Obs.Json.Num median_ms);
                           ( "runs_ms",
                             Obs.Json.Arr
                               (List.map (fun s -> Obs.Json.Num s) samples) );
                         ] ))
                   stages) );
          ])
      measured
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "tecore-bench-obs/1");
        ("fast", Obs.Json.Bool !fast_mode);
        ("runs", Obs.Json.Arr runs);
      ]
  in
  let oc = open_out obs_json_path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  (* Self-check: the file must round-trip through our own parser and
     contain the stages the downstream tooling keys on. *)
  let ic = open_in obs_json_path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Obs.Json.parse text with
  | Error e -> failwith (Printf.sprintf "%s: invalid JSON: %s" obs_json_path e)
  | Ok parsed -> (
      match Obs.Json.member "runs" parsed with
      | Some (Obs.Json.Arr (_ :: _ as rs)) ->
          List.iter
            (fun r ->
              match Obs.Json.member "stages" r with
              | Some (Obs.Json.Obj stages) ->
                  List.iter
                    (fun stage ->
                      if not (List.mem_assoc stage stages) then
                        failwith
                          (Printf.sprintf "%s: run misses stage %S"
                             obs_json_path stage))
                    [ "ground"; "encode"; "solve" ]
              | _ -> failwith (obs_json_path ^ ": run without stages"))
            rs
      | _ -> failwith (obs_json_path ^ ": no runs")));
  row "wrote %s (%d runs, %d reps each) -- JSON validated\n" obs_json_path
    (List.length runs) reps
  end

(* ------------------------------------------------------------------ *)
(* PAR: the multicore execution layer — million-fact memory gate,      *)
(* grounding speedup gate, and per-stage engine medians at --jobs 1 vs *)
(* N, exported as BENCH_parallel.json (schema v2, validated).          *)

let par_json_path = "BENCH_parallel.json"
let compare_jobs = ref 4

(* Row-oriented data-plane peaks (decimal MB, [Gc.top_heap_words]),
   measured before the columnar/interned rewrite with the same harness
   and the same pinned generation regimes: boxed [Value.t array] rows,
   eager constraint grounding, binding lists fully materialised. The
   memory gate requires the current plane to ground each regime in at
   most a third of its baseline. *)
let row_baseline_mb = [ ("1e5", 275.5); ("1e6", 2790.9) ]
let mem_gate_ratio = 3.0

(* Only the million-fact regime carries the 3x gate. [top_heap_words] is
   quantised by the runtime's heap-growth steps (~15% each), so a small
   regime whose live peak sits near a growth boundary can swing a full
   step (~12 MB at 10^5) on harness-shape noise alone; at 10^6 the gate
   margin is real. The 10^5 ratio is still measured and reported. *)
let mem_gated_regimes = [ "1e6" ]
let par_mem_regimes () = if !fast_mode then [ "1e5" ] else [ "1e5"; "1e6" ]

(* The memory measurement runs in a child process (hidden
   [par-mem-worker] argv mode): [Gc.top_heap_words] is a process-global
   high-water mark, so measuring in-process after other experiments
   have run would report their peak, not the grounding pipeline's. The
   worker prints one JSON object on stdout and exits. *)
let par_mem_worker regime =
  let mb words = float_of_int words *. 8. /. 1e6 in
  let alloc_mb (st : Gc.stat) =
    (st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words)
    *. 8. /. 1e6
  in
  Gc.compact ();
  let stage f =
    let before = alloc_mb (Gc.quick_stat ()) in
    let r, ms = Prelude.Timing.time f in
    let st = Gc.quick_stat () in
    (r, (mb st.Gc.top_heap_words, alloc_mb st -. before, ms))
  in
  let data, gen_s =
    stage (fun () -> Datagen.Wikidata.generate_regime regime)
  in
  let store, intern_s =
    stage (fun () -> Grounder.Atom_store.of_graph data.Datagen.Wikidata.graph)
  in
  (* Last use of [data]: the source graph must be collectable during
     grounding — once interned the pipeline no longer needs it, and the
     committed row-oriented baselines were measured the same way. *)
  let facts = Kg.Graph.size data.Datagen.Wikidata.graph in
  let rules = Datagen.Wikidata.constraints () @ Datagen.Wikidata.rules () in
  let result, ground_s =
    stage (fun () -> Grounder.Ground.run ~lazy_constraints:true store rules)
  in
  let stage_json (top_heap_mb, allocated_mb, ms) =
    Obs.Json.Obj
      [
        ("top_heap_mb", Obs.Json.Num top_heap_mb);
        ("allocated_mb", Obs.Json.Num allocated_mb);
        ("ms", Obs.Json.Num ms);
      ]
  in
  let peak_mb = match ground_s with top, _, _ -> top in
  let doc =
    Obs.Json.Obj
      [
        ("regime", Obs.Json.Str regime);
        ("facts", Obs.Json.Num (float_of_int facts));
        ("atoms", Obs.Json.Num (float_of_int (Grounder.Atom_store.size store)));
        ( "instances",
          Obs.Json.Num
            (float_of_int
               (List.length result.Grounder.Ground.instances)) );
        ("peak_mb", Obs.Json.Num peak_mb);
        ( "stages",
          Obs.Json.Obj
            [
              ("gen", stage_json gen_s);
              ("intern", stage_json intern_s);
              ("ground", stage_json ground_s);
            ] );
      ]
  in
  print_string (Obs.Json.to_string doc);
  print_newline ()

let par_measure_memory regime =
  let cmd =
    Printf.sprintf "%s par-mem-worker %s"
      (Filename.quote Sys.executable_name)
      (Filename.quote regime)
  in
  let ic = Unix.open_process_in cmd in
  let line = try input_line ic with End_of_file -> "" in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> (
      match Obs.Json.parse line with
      | Ok json -> json
      | Error e ->
          failwith
            (Printf.sprintf "par: memory worker output unparseable (%s)" e))
  | _ -> failwith (Printf.sprintf "par: memory worker failed for %s" regime)

let par_mem_num json field =
  match Obs.Json.member field json with
  | Some (Obs.Json.Num v) -> v
  | _ -> failwith (Printf.sprintf "par: memory record misses %s" field)

let par_memory_section () =
  List.map
    (fun regime ->
      let json = par_measure_memory regime in
      let peak = par_mem_num json "peak_mb" in
      let baseline = List.assoc regime row_baseline_mb in
      let ratio = baseline /. peak in
      let gated = List.mem regime mem_gated_regimes in
      row
        "memory %-4s facts %8.0f peak %8.1f MB row-baseline %8.1f MB \
         ratio %.2fx %s\n"
        regime (par_mem_num json "facts") peak baseline ratio
        (if not gated then "(info)"
         else if ratio >= mem_gate_ratio then "ok"
         else "FAIL");
      if gated && ratio < mem_gate_ratio then
        failwith
          (Printf.sprintf
             "par: memory gate failed for regime %s: peak %.1f MB is only \
              %.2fx below the %.1f MB row-oriented baseline (gate: %.1fx)"
             regime peak ratio baseline mem_gate_ratio);
      match json with
      | Obs.Json.Obj fields ->
          Obs.Json.Obj
            (fields
            @ [
                ("row_baseline_mb", Obs.Json.Num baseline);
                ("ratio", Obs.Json.Num ratio);
              ])
      | _ -> failwith "par: memory worker output is not an object")
    (par_mem_regimes ())

(* Grounding-only speedup on the pinned 10^5 regime: jobs=1 vs jobs=N
   over identical fresh stores, gated > 1.0x — but only on hardware
   that can parallelise at all. On a single core the jobs=N measurement
   is skipped entirely (it cannot win, only waste the time budget) and
   the skip reason is logged and recorded in the JSON. *)
let par_ground_speedup () =
  let reps = if !fast_mode then 2 else 3 in
  let regime = "1e5" in
  let cores = Prelude.Pool.recommended_jobs () in
  let jobs_hi = Prelude.Pool.jobs (Prelude.Pool.create ~jobs:!compare_jobs) in
  let data = Datagen.Wikidata.generate_regime regime in
  let rules = Datagen.Wikidata.constraints () @ Datagen.Wikidata.rules () in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (* Full structural fingerprint of a grounding result: the determinism
     contract is jobs=N == jobs=1, not merely "same counts". *)
  let fingerprint (r : Grounder.Ground.result) =
    ( r.rounds,
      r.derived,
      List.map
        (fun (i : Grounder.Ground.Instance.t) ->
          ( i.rule.Logic.Rule.name,
            i.body_atoms,
            match i.head with
            | Grounder.Ground.Instance.Derives id -> id
            | Grounder.Ground.Instance.Satisfied -> -1
            | Grounder.Ground.Instance.Violated -> -2 ))
        r.instances )
  in
  let measure jobs =
    let pool = Prelude.Pool.create ~jobs in
    let samples =
      List.init reps (fun _ ->
          let store =
            Grounder.Atom_store.of_graph data.Datagen.Wikidata.graph
          in
          Prelude.Timing.time (fun () ->
              Grounder.Ground.run ~pool ~lazy_constraints:true store rules))
    in
    let fp = fingerprint (fst (List.hd samples)) in
    List.iter
      (fun (r, _) ->
        if fingerprint r <> fp then
          failwith
            (Printf.sprintf "par: grounding drifts across reps at jobs=%d"
               jobs))
      samples;
    (fp, median (List.map snd samples))
  in
  let fp1, ms1 = measure 1 in
  row "ground %-4s jobs=1   median %10.2f ms\n" regime ms1;
  let base_fields =
    [
      ("regime", Obs.Json.Str regime);
      ( "facts",
        Obs.Json.Num (float_of_int (Kg.Graph.size data.Datagen.Wikidata.graph))
      );
      ("reps", Obs.Json.Num (float_of_int reps));
      ("cores", Obs.Json.Num (float_of_int cores));
      ("jobs_hi", Obs.Json.Num (float_of_int jobs_hi));
    ]
  in
  if cores < 2 || jobs_hi < 2 then begin
    let reason =
      Printf.sprintf
        "%d core(s) available: a jobs=%d grounding cannot beat jobs=1 here; \
         speedup gate skipped"
        cores jobs_hi
    in
    row "ground %-4s speedup gate SKIPPED: %s\n" regime reason;
    Obs.Json.Obj
      (base_fields
      @ [
          ("jobs_ms", Obs.Json.Obj [ ("1", Obs.Json.Num ms1) ]);
          ("skip_reason", Obs.Json.Str reason);
        ])
  end
  else begin
    let fp_hi, ms_hi = measure jobs_hi in
    if fp_hi <> fp1 then
      failwith
        (Printf.sprintf
           "par: grounding differs between jobs=1 and jobs=%d" jobs_hi);
    let speedup = ms1 /. ms_hi in
    row "ground %-4s jobs=%-3d median %10.2f ms speedup %.2fx %s\n" regime
      jobs_hi ms_hi speedup
      (if speedup > 1.0 then "ok" else "FAIL");
    if speedup <= 1.0 then
      failwith
        (Printf.sprintf
           "par: grounding speedup gate failed: jobs=%d is %.2fx jobs=1 \
            (gate: > 1.0x) on %d cores"
           jobs_hi speedup cores);
    Obs.Json.Obj
      (base_fields
      @ [
          ( "jobs_ms",
            Obs.Json.Obj
              [
                ("1", Obs.Json.Num ms1);
                (string_of_int jobs_hi, Obs.Json.Num ms_hi);
              ] );
          ("speedup", Obs.Json.Num speedup);
        ])
  end

let par_engine_runs () =
  let jobs_hi =
    let pool = Prelude.Pool.create ~jobs:!compare_jobs in
    Prelude.Pool.jobs pool
  in
  let reps = if !fast_mode then 3 else 5 in
  let datasets =
    let wd total =
      let d =
        Datagen.Wikidata.generate ~seed:13 ~total_facts:total
          ~conflict_rate:0.08 ()
      in
      ( Printf.sprintf "wikidata-%d" total,
        d.Datagen.Wikidata.graph,
        Datagen.Wikidata.constraints () )
    in
    let fb players =
      let d =
        Datagen.Footballdb.generate ~seed:13 ~players ~noise_ratio:0.5 ()
      in
      ( Printf.sprintf "footballdb-%d" players,
        d.Datagen.Footballdb.graph,
        Datagen.Footballdb.constraints () )
    in
    if !fast_mode then [ wd 1_000 ] else [ wd 4_000; fb 400 ]
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (* One measured run of an engine pipeline over a fresh store, without
     the resolve/interpret wrapper: the ground/encode/solve spans sit at
     the top level, and the MAP objective comes from the solver stats. *)
  let measure_mln pool graph rules =
    let options =
      { Mln.Map_inference.default_options with Mln.Map_inference.pool }
    in
    let out = Mln.Map_inference.run ~options graph rules in
    out.Mln.Map_inference.stats.Mln.Map_inference.objective
  in
  let measure_psl pool graph rules =
    let options = { Psl.Npsl.default_options with Psl.Npsl.pool } in
    let out = Psl.Npsl.run ~options graph rules in
    out.Psl.Npsl.stats.Psl.Npsl.admm.Psl.Admm.objective
  in
  let engines = [ ("mln", measure_mln); ("psl", measure_psl) ] in
  let stage_paths =
    [ ("ground", [ "ground" ]); ("encode", [ "encode" ]); ("solve", [ "solve" ]) ]
  in
  let runs =
    List.concat_map
      (fun (dataset, graph, rules) ->
        List.map
          (fun (engine_id, measure) ->
            (* Measure the pipeline at every job count; reps share one
               pool per job count. *)
            let per_jobs =
              List.map
                (fun jobs ->
                  let pool = Prelude.Pool.create ~jobs in
                  let samples =
                    List.init reps (fun _ ->
                        Obs.reset ();
                        Obs.set_enabled true;
                        let objective, total_ms =
                          Prelude.Timing.time (fun () ->
                              measure pool graph rules)
                        in
                        let r = Obs.Report.capture () in
                        Obs.set_enabled false;
                        (objective, total_ms, r))
                  in
                  let objective =
                    match samples with
                    | (o, _, _) :: rest ->
                        List.iter
                          (fun (o', _, _) ->
                            if o <> o' then
                              failwith
                                (Printf.sprintf
                                   "%s %s: objective drifts across reps \
                                    at jobs=%d (%.6f vs %.6f)"
                                   dataset engine_id
                                   (Prelude.Pool.jobs pool) o o'))
                          rest;
                        o
                    | [] -> assert false
                  in
                  let stage_medians =
                    List.filter_map
                      (fun (stage, path) ->
                        let ms =
                          List.filter_map
                            (fun (_, _, r) ->
                              Option.map
                                (fun (n : Obs.Report.node) ->
                                  n.Obs.Report.total_ms)
                                (Obs.Report.find r path))
                            samples
                        in
                        if ms = [] then None else Some (stage, median ms))
                      stage_paths
                  in
                  let total_median =
                    median (List.map (fun (_, ms, _) -> ms) samples)
                  in
                  ( Prelude.Pool.jobs pool,
                    objective,
                    ("total", total_median) :: stage_medians ))
                (List.sort_uniq compare [ 1; jobs_hi ])
            in
            (* Determinism gate: the MAP objective must be identical at
               every job count. *)
            (match per_jobs with
            | (_, base_objective, _) :: rest ->
                List.iter
                  (fun (jobs, objective, _) ->
                    if objective <> base_objective then
                      failwith
                        (Printf.sprintf
                           "%s %s: objective differs at jobs=%d (%.6f vs \
                            %.6f at jobs=1)"
                           dataset engine_id jobs objective base_objective))
                  rest
            | [] -> assert false);
            let medians_of jobs =
              match
                List.find_opt (fun (j, _, _) -> j = jobs) per_jobs
              with
              | Some (_, _, medians) -> medians
              | None -> []
            in
            let speedups =
              let base = medians_of 1 in
              List.filter_map
                (fun (stage, hi_ms) ->
                  match List.assoc_opt stage base with
                  | Some base_ms when hi_ms > 0.0 ->
                      Some (stage, base_ms /. hi_ms)
                  | _ -> None)
                (medians_of jobs_hi)
            in
            List.iter
              (fun (jobs, _, medians) ->
                List.iter
                  (fun (stage, ms) ->
                    row "%-16s %-5s jobs=%-3d %-8s median %10.2f ms\n"
                      dataset engine_id jobs stage ms)
                  medians)
              per_jobs;
            List.iter
              (fun (stage, s) ->
                row "%-16s %-5s speedup  %-8s %.2fx\n" dataset engine_id
                  stage s)
              speedups;
            let objective =
              match per_jobs with (_, o, _) :: _ -> o | [] -> 0.0
            in
            Obs.Json.Obj
              [
                ("dataset", Obs.Json.Str dataset);
                ("engine", Obs.Json.Str engine_id);
                ("facts", Obs.Json.Num (float_of_int (Kg.Graph.size graph)));
                ("reps", Obs.Json.Num (float_of_int reps));
                ("objective", Obs.Json.Num objective);
                ( "jobs",
                  Obs.Json.Obj
                    (List.map
                       (fun (jobs, objective, medians) ->
                         ( string_of_int jobs,
                           Obs.Json.Obj
                             [
                               ("objective", Obs.Json.Num objective);
                               ( "stages",
                                 Obs.Json.Obj
                                   (List.map
                                      (fun (stage, ms) ->
                                        (stage, Obs.Json.Num ms))
                                      medians) );
                             ] ))
                       per_jobs) );
                ( "speedup",
                  Obs.Json.Obj
                    (List.map
                       (fun (stage, s) -> (stage, Obs.Json.Num s))
                       speedups) );
              ])
          engines)
      datasets
  in
  (jobs_hi, reps, runs)

(* --check: gate the committed BENCH_parallel.json without rewriting it.
   The committed gates (memory ratio, speedup-or-skip-reason) are
   re-asserted on the committed numbers; the cheap 10^5 memory regime is
   then re-measured fresh and compared within a tolerance factor — the
   memory footprint is near machine-independent, so the factor is much
   tighter than the timing tolerances. On multicore hardware the
   grounding speedup gate is also re-run live. *)
let par_check_run () =
  section "PAR"
    (Printf.sprintf "multicore: gates vs committed %s" par_json_path);
  let text =
    try
      let ic = open_in par_json_path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      failwith
        (Printf.sprintf
           "par --check: cannot read %s (%s); run `bench par` to regenerate \
            it"
           par_json_path msg)
  in
  let parsed =
    match Obs.Json.parse text with
    | Ok p -> p
    | Error e -> failwith (Printf.sprintf "par --check: %s: %s" par_json_path e)
  in
  (match Obs.Json.member "schema" parsed with
  | Some (Obs.Json.Str "tecore-bench-parallel/2") -> ()
  | _ ->
      failwith
        (par_json_path
       ^ ": schema is not tecore-bench-parallel/2; run `bench par` to \
          regenerate it"));
  (match Obs.Json.member "runs" parsed with
  | Some (Obs.Json.Arr (_ :: _)) -> ()
  | _ -> failwith (par_json_path ^ ": no engine runs"));
  let memory =
    match Obs.Json.member "memory" parsed with
    | Some (Obs.Json.Arr (_ :: _ as ms)) -> ms
    | _ -> failwith (par_json_path ^ ": no memory section")
  in
  let committed_1e5_peak = ref None in
  let seen_regimes = ref [] in
  List.iter
    (fun m ->
      let regime =
        match Obs.Json.member "regime" m with
        | Some (Obs.Json.Str r) -> r
        | _ -> failwith (par_json_path ^ ": memory record without regime")
      in
      let peak = par_mem_num m "peak_mb" in
      let ratio = par_mem_num m "ratio" in
      (match Obs.Json.member "stages" m with
      | Some (Obs.Json.Obj stages) ->
          List.iter
            (fun stage ->
              if not (List.mem_assoc stage stages) then
                failwith
                  (Printf.sprintf "%s: memory record misses stage %S"
                     par_json_path stage))
            [ "gen"; "intern"; "ground" ]
      | _ -> failwith (par_json_path ^ ": memory record without stages"));
      seen_regimes := regime :: !seen_regimes;
      if regime = "1e5" then committed_1e5_peak := Some peak;
      let gated = List.mem regime mem_gated_regimes in
      row "committed memory %-4s peak %8.1f MB ratio %.2fx %s\n" regime peak
        ratio
        (if not gated then "(info)"
         else if ratio >= mem_gate_ratio then "ok"
         else "FAIL");
      if gated && ratio < mem_gate_ratio then
        failwith
          (Printf.sprintf
             "par --check: committed memory ratio for %s is %.2fx (gate: \
              %.1fx)"
             regime ratio mem_gate_ratio))
    memory;
  List.iter
    (fun regime ->
      if not (List.mem regime !seen_regimes) then
        failwith
          (Printf.sprintf
             "par --check: %s lacks the gated regime %s — it was written by \
              a --smoke run; regenerate with a full `bench par`"
             par_json_path regime))
    mem_gated_regimes;
  (match Obs.Json.member "ground_speedup" parsed with
  | Some gs -> (
      match
        (Obs.Json.member "speedup" gs, Obs.Json.member "skip_reason" gs)
      with
      | Some (Obs.Json.Num s), _ when s > 1.0 ->
          row "committed ground speedup %.2fx ok\n" s
      | _, Some (Obs.Json.Str reason) ->
          row "committed ground speedup gate skipped: %s\n" reason
      | _ ->
          failwith
            (par_json_path
           ^ ": ground_speedup has neither a passing speedup nor a \
              skip_reason"))
  | None -> failwith (par_json_path ^ ": no ground_speedup section"));
  (* Fresh 10^5 memory measurement: cheap enough for CI, and its peak
     must agree with the committed number within tolerance — that
     catches a data-plane memory regression without paying for a fresh
     million-fact run. (No 3x gate here: the 10^5 peak sits within one
     heap-growth quantisation step of 3x, see [mem_gated_regimes].) *)
  let fresh = par_measure_memory "1e5" in
  let fresh_peak = par_mem_num fresh "peak_mb" in
  let baseline = List.assoc "1e5" row_baseline_mb in
  let fresh_ratio = baseline /. fresh_peak in
  row "fresh memory 1e5  peak %8.1f MB ratio %.2fx (info)\n" fresh_peak
    fresh_ratio;
  (match !committed_1e5_peak with
  | None -> failwith (par_json_path ^ ": no committed 1e5 memory record")
  | Some reference ->
      let factor =
        match
          Option.bind
            (Sys.getenv_opt "BENCH_PAR_MEM_TOL_FACTOR")
            float_of_string_opt
        with
        | Some v when v > 1.0 -> v
        | _ -> 2.0
      in
      let lo = Float.min fresh_peak reference
      and hi = Float.max fresh_peak reference in
      if hi > lo *. factor then
        failwith
          (Printf.sprintf
             "par --check: fresh 1e5 peak %.1f MB vs committed %.1f MB \
              exceeds %.1fx tolerance"
             fresh_peak reference factor));
  (* Live speedup gate where the hardware can parallelise at all. *)
  if Prelude.Pool.recommended_jobs () >= 2 then
    ignore (par_ground_speedup ())
  else
    row
      "live ground speedup gate skipped: 1 core available \
       (recommended_jobs=1)\n";
  row "par --check: %s gates hold\n" par_json_path

let par_bench () =
  if !obs_check then par_check_run ()
  else begin
    section "PAR"
      (Printf.sprintf
         "multicore: memory + grounding gates, per-stage medians -> %s"
         par_json_path);
    let memory = par_memory_section () in
    let ground_speedup = par_ground_speedup () in
    let jobs_hi, reps, runs = par_engine_runs () in
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.Str "tecore-bench-parallel/2");
          ("fast", Obs.Json.Bool !fast_mode);
          ( "cores",
            Obs.Json.Num (float_of_int (Prelude.Pool.recommended_jobs ())) );
          ( "jobs_compared",
            Obs.Json.Arr
              (List.map
                 (fun j -> Obs.Json.Num (float_of_int j))
                 (List.sort_uniq compare [ 1; jobs_hi ])) );
          ("memory", Obs.Json.Arr memory);
          ("ground_speedup", ground_speedup);
          ("runs", Obs.Json.Arr runs);
        ]
    in
    let oc = open_out par_json_path in
    output_string oc (Obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    (* Self-check: round-trip through our own parser and verify the
       gates and objective agreement the schema promises. *)
    let ic = open_in par_json_path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Obs.Json.parse text with
    | Error e ->
        failwith (Printf.sprintf "%s: invalid JSON: %s" par_json_path e)
    | Ok parsed -> (
        (match Obs.Json.member "memory" parsed with
        | Some (Obs.Json.Arr (_ :: _ as ms)) ->
            List.iter
              (fun m ->
                let gated =
                  match Obs.Json.member "regime" m with
                  | Some (Obs.Json.Str r) -> List.mem r mem_gated_regimes
                  | _ -> failwith (par_json_path ^ ": memory record without regime")
                in
                if gated && par_mem_num m "ratio" < mem_gate_ratio then
                  failwith (par_json_path ^ ": memory ratio below gate"))
              ms
        | _ -> failwith (par_json_path ^ ": no memory section"));
        (match Obs.Json.member "ground_speedup" parsed with
        | Some gs -> (
            match
              (Obs.Json.member "speedup" gs, Obs.Json.member "skip_reason" gs)
            with
            | Some (Obs.Json.Num s), _ when s > 1.0 -> ()
            | _, Some (Obs.Json.Str _) -> ()
            | _ ->
                failwith
                  (par_json_path
                 ^ ": ground_speedup lacks a passing speedup or skip_reason"))
        | None -> failwith (par_json_path ^ ": no ground_speedup section"));
        match Obs.Json.member "runs" parsed with
        | Some (Obs.Json.Arr (_ :: _ as rs)) ->
            List.iter
              (fun r ->
                match Obs.Json.member "jobs" r with
                | Some (Obs.Json.Obj ((_ :: _) as per_jobs)) ->
                    let objectives =
                      List.filter_map
                        (fun (_, v) -> Obs.Json.member "objective" v)
                        per_jobs
                    in
                    (match objectives with
                    | Obs.Json.Num o :: rest ->
                        List.iter
                          (function
                            | Obs.Json.Num o' when o = o' -> ()
                            | _ ->
                                failwith
                                  (par_json_path
                                  ^ ": objectives differ across job counts"))
                          rest
                    | _ ->
                        failwith (par_json_path ^ ": run without objective"));
                    List.iter
                      (fun (_, v) ->
                        match Obs.Json.member "stages" v with
                        | Some (Obs.Json.Obj stages) ->
                            List.iter
                              (fun stage ->
                                if not (List.mem_assoc stage stages) then
                                  failwith
                                    (Printf.sprintf "%s: run misses stage %S"
                                       par_json_path stage))
                              [ "ground"; "encode"; "solve"; "total" ]
                        | _ ->
                            failwith
                              (par_json_path ^ ": job entry without stages"))
                      per_jobs
                | _ -> failwith (par_json_path ^ ": run without jobs"))
              rs
        | _ -> failwith (par_json_path ^ ": no runs")));
    row "wrote %s (%d runs, %d reps each, jobs 1 vs %d) -- JSON validated\n"
      par_json_path (List.length runs) reps jobs_hi
  end

(* ------------------------------------------------------------------ *)
(* DEADLINE: the anytime contract — best-so-far cost vs time budget on *)
(* a pre-ground network, exported as BENCH_deadline.json (validated by *)
(* re-parsing).                                                        *)

let deadline_json_path = "BENCH_deadline.json"

let deadline_bench () =
  section "DEADLINE"
    "anytime inference: best-so-far cost vs budget -> BENCH_deadline.json";
  let players = if !fast_mode then 150 else 400 in
  let d = Datagen.Footballdb.generate ~seed:13 ~players ~noise_ratio:0.5 () in
  let store = Grounder.Atom_store.of_graph d.Datagen.Footballdb.graph in
  let ground = Grounder.Ground.run store (Datagen.Footballdb.constraints ()) in
  let network = Mln.Network.build store ground.Grounder.Ground.instances in
  let init = Mln.Network.expanded_assignment network in
  let budgets =
    if !fast_mode then [ 2.; 10.; 50. ] else [ 2.; 10.; 50.; 250. ]
  in
  let point label deadline extra =
    let (_, stats), wall_ms =
      Prelude.Timing.time (fun () ->
          Mln.Maxwalksat.solve ~seed:17 ~init ?deadline network)
    in
    let status =
      Prelude.Deadline.status_name stats.Mln.Maxwalksat.status
    in
    row "%-12s status %-10s hard %5d soft %10.2f flips %9d (%.1f ms)\n"
      label status stats.Mln.Maxwalksat.hard_violated
      stats.Mln.Maxwalksat.soft_cost stats.Mln.Maxwalksat.flips wall_ms;
    Obs.Json.Obj
      (extra
      @ [
          ("status", Obs.Json.Str status);
          ( "hard_violated",
            Obs.Json.Num (float_of_int stats.Mln.Maxwalksat.hard_violated) );
          ("soft_cost", Obs.Json.Num stats.Mln.Maxwalksat.soft_cost);
          ("flips", Obs.Json.Num (float_of_int stats.Mln.Maxwalksat.flips));
          ("wall_ms", Obs.Json.Num wall_ms);
        ])
  in
  let budget_points =
    List.map
      (fun budget ->
        point
          (Printf.sprintf "%gms" budget)
          (Some (Prelude.Deadline.after ~ms:budget))
          [ ("budget_ms", Obs.Json.Num budget) ])
      budgets
  in
  let unbounded = point "unbounded" None [ ("budget_ms", Obs.Json.Null) ] in
  let runs = budget_points @ [ unbounded ] in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "tecore-bench-deadline/1");
        ("fast", Obs.Json.Bool !fast_mode);
        ("dataset", Obs.Json.Str (Printf.sprintf "footballdb-%d" players));
        ("atoms", Obs.Json.Num (float_of_int network.Mln.Network.num_atoms));
        ( "clauses",
          Obs.Json.Num
            (float_of_int (Array.length network.Mln.Network.clauses)) );
        ("runs", Obs.Json.Arr runs);
      ]
  in
  let oc = open_out deadline_json_path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  (* Self-check: round-trip through our own parser, every point tagged
     with a known status and finite non-negative costs, and the
     unbounded run completed. Deliberately NOT asserted: monotonicity
     of cost in the budget — wall-clock budgets make that flaky. *)
  let ic = open_in deadline_json_path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Obs.Json.parse text with
  | Error e ->
      failwith (Printf.sprintf "%s: invalid JSON: %s" deadline_json_path e)
  | Ok parsed -> (
      match Obs.Json.member "runs" parsed with
      | Some (Obs.Json.Arr (_ :: _ as points)) ->
          let finite_num field p =
            match Obs.Json.member field p with
            | Some (Obs.Json.Num v) when Float.is_finite v && v >= 0.0 -> v
            | _ ->
                failwith
                  (Printf.sprintf "%s: bad %s" deadline_json_path field)
          in
          List.iter
            (fun p ->
              ignore (finite_num "hard_violated" p);
              ignore (finite_num "soft_cost" p);
              ignore (finite_num "wall_ms" p);
              match Obs.Json.member "status" p with
              | Some (Obs.Json.Str ("completed" | "timed_out" | "degraded"))
                ->
                  ()
              | _ -> failwith (deadline_json_path ^ ": bad status"))
            points;
          (match List.rev points with
          | last :: _ -> (
              match Obs.Json.member "status" last with
              | Some (Obs.Json.Str "completed") -> ()
              | _ ->
                  failwith
                    (deadline_json_path ^ ": unbounded run did not complete"))
          | [] -> assert false)
      | _ -> failwith (deadline_json_path ^ ": no runs")));
  row "wrote %s (%d budgets + unbounded) -- JSON validated\n"
    deadline_json_path (List.length budgets)

(* ------------------------------------------------------------------ *)
(* INCR: incremental re-resolve latency vs from-scratch, per delta     *)
(* size, exported as BENCH_incremental.json (validated by re-parsing). *)

let incr_json_path = "BENCH_incremental.json"

(* One measured cell: [engine] re-resolving after [delta_size]
   single-fact edits (each a retract of one playsFor stint plus an
   assert of a replacement at another team), incremental vs
   from-scratch, medians over repeated edit/resolve rounds. The
   incremental result is asserted equal to the fresh one on every round,
   so the bench doubles as an end-to-end differential check at sizes the
   unit tests do not reach. *)
let incr_measure () =
  let reps = if !fast_mode then 3 else 5 in
  let players = if !fast_mode then 120 else 400 in
  let rules = Datagen.Footballdb.constraints () in
  let engines = [ ("mln", mln_engine); ("psl", psl_engine) ] in
  let deltas = [ 1; 10; 100 ] in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let signature (r : Tecore.Engine.result) =
    let res = r.Tecore.Engine.resolution in
    ( List.map fst res.Tecore.Conflict.removed,
      res.Tecore.Conflict.kept,
      List.length res.Tecore.Conflict.derived,
      r.Tecore.Engine.stats.Tecore.Engine.objective )
  in
  ( reps,
    players,
    List.concat_map
      (fun (engine_id, engine) ->
        List.map
          (fun delta_size ->
            let d =
              Datagen.Footballdb.generate ~seed:17 ~players ~noise_ratio:0.5
                ()
            in
            let g = d.Datagen.Footballdb.graph in
            let st = Tecore.Engine.create_state () in
            (* Prime the state: first resolve records the grounding
               snapshot and fills the component solution caches. *)
            ignore
              (Tecore.Engine.resolve ~engine ~state:st ~mode:`Incremental g
                 rules);
            let round = ref 0 in
            let apply_edits () =
              incr round;
              let plays =
                Kg.Graph.by_predicate g (Kg.Term.iri "playsFor")
              in
              let plays = Array.of_list plays in
              let n = Array.length plays in
              let facts = ref [] in
              for i = 0 to delta_size - 1 do
                let idx = ((!round * 37) + (i * 61)) mod n in
                let id, q = plays.(idx) in
                if Kg.Graph.mem_id g id then begin
                  let _, donor = plays.((idx + 97) mod n) in
                  Kg.Graph.remove g id;
                  let q' =
                    { q with Kg.Quad.object_ = donor.Kg.Quad.object_ }
                  in
                  ignore (Kg.Graph.add g q');
                  facts :=
                    Logic.Atom.Ground.of_quad q'
                    :: Logic.Atom.Ground.of_quad q
                    :: !facts
                end
              done;
              { Tecore.Engine.facts = !facts; rules_changed = false }
            in
            let fresh_samples = ref [] in
            let incr_samples = ref [] in
            for _ = 1 to reps do
              let delta = apply_edits () in
              let r_fresh, fresh_ms =
                Prelude.Timing.time (fun () ->
                    Tecore.Engine.resolve ~engine g rules)
              in
              let r_incr, incr_ms =
                Prelude.Timing.time (fun () ->
                    Tecore.Engine.resolve ~engine ~state:st
                      ~mode:`Incremental ~delta g rules)
              in
              if signature r_fresh <> signature r_incr then
                failwith
                  (Printf.sprintf
                     "incr: incremental diverged from fresh (%s, delta=%d)"
                     engine_id delta_size);
              fresh_samples := fresh_ms :: !fresh_samples;
              incr_samples := incr_ms :: !incr_samples
            done;
            let cache = Tecore.Engine.cache_stats st in
            let fresh_ms = median !fresh_samples in
            let incr_ms = median !incr_samples in
            row
              "incr %-4s delta=%-4d fresh %9.2f ms  incremental %9.2f ms  \
               speedup %5.2fx\n"
              engine_id delta_size fresh_ms incr_ms
              (fresh_ms /. incr_ms);
            (engine_id, delta_size, fresh_ms, incr_ms, cache))
          deltas)
      engines )

let incr_check_run () =
  section "INCR"
    "incremental: measured latencies vs committed BENCH_incremental.json";
  let env_float name default =
    match Option.bind (Sys.getenv_opt name) float_of_string_opt with
    | Some v when v > 0.0 -> v
    | Some _ | None -> default
  in
  let factor = env_float "BENCH_INCR_TOL_FACTOR" 25.0 in
  let floor_ms = env_float "BENCH_INCR_TOL_FLOOR_MS" 5.0 in
  let committed =
    let ic =
      try open_in incr_json_path
      with Sys_error msg ->
        failwith
          (Printf.sprintf
             "incr --check: cannot read %s (%s); run `bench incr` to \
              regenerate it"
             incr_json_path msg)
    in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Obs.Json.parse text with
    | Error e -> failwith (Printf.sprintf "incr --check: %s: %s" incr_json_path e)
    | Ok doc -> doc
  in
  let committed_runs =
    match Obs.Json.member "runs" committed with
    | Some (Obs.Json.Arr runs) -> runs
    | _ -> failwith (incr_json_path ^ ": no runs")
  in
  let lookup engine_id delta =
    List.find_opt
      (fun r ->
        Obs.Json.member "engine" r = Some (Obs.Json.Str engine_id)
        && Obs.Json.member "delta" r
           = Some (Obs.Json.Num (float_of_int delta)))
      committed_runs
  in
  let num field r =
    match Obs.Json.member field r with
    | Some (Obs.Json.Num v) when Float.is_finite v -> v
    | _ -> failwith (Printf.sprintf "%s: bad %s" incr_json_path field)
  in
  (* The committed headline: a 1-fact edit re-resolves faster than from
     scratch, on the machine that produced the file. *)
  List.iter
    (fun engine_id ->
      match lookup engine_id 1 with
      | None ->
          failwith
            (Printf.sprintf "%s: no delta=1 run for %s" incr_json_path
               engine_id)
      | Some r ->
          if num "speedup" r <= 1.0 then
            failwith
              (Printf.sprintf
                 "%s: committed delta=1 speedup for %s is not > 1"
                 incr_json_path engine_id))
    [ "mln"; "psl" ];
  let _, _, measured = incr_measure () in
  let failures = ref [] in
  List.iter
    (fun (engine_id, delta, fresh_ms, incr_ms, _cache) ->
      match lookup engine_id delta with
      | None ->
          failures :=
            Printf.sprintf "%s delta=%d: missing from %s" engine_id delta
              incr_json_path
            :: !failures
      | Some r ->
          let within ref_ms ms =
            ms <= (ref_ms *. factor) +. floor_ms
            && ref_ms <= (ms *. factor) +. floor_ms
          in
          if not (within (num "fresh_ms" r) fresh_ms) then
            failures :=
              Printf.sprintf "%s delta=%d: fresh %.2f ms vs committed %.2f ms"
                engine_id delta fresh_ms (num "fresh_ms" r)
              :: !failures;
          if not (within (num "incremental_ms" r) incr_ms) then
            failures :=
              Printf.sprintf
                "%s delta=%d: incremental %.2f ms vs committed %.2f ms"
                engine_id delta incr_ms
                (num "incremental_ms" r)
              :: !failures)
    measured;
  match !failures with
  | [] ->
      row "incr --check: all cells within %.0fx of %s\n" factor incr_json_path
  | fs ->
      failwith
        (Printf.sprintf "incr --check: %d cell(s) out of tolerance:\n  %s"
           (List.length fs)
           (String.concat "\n  " (List.rev fs)))

let incr_bench () =
  if !obs_check then incr_check_run ()
  else begin
    section "INCR"
      "incremental sessions: delta re-resolve -> BENCH_incremental.json";
    let reps, players, measured = incr_measure () in
    (* The headline claim of the incremental engine, enforced at write
       time: re-resolving after a single-fact edit beats a from-scratch
       resolve on wall-clock median. *)
    List.iter
      (fun (engine_id, delta, fresh_ms, incr_ms, _) ->
        if delta = 1 && incr_ms >= fresh_ms then
          failwith
            (Printf.sprintf
               "incr: delta=1 incremental (%.2f ms) did not beat fresh \
                (%.2f ms) for %s"
               incr_ms fresh_ms engine_id))
      measured;
    let runs =
      List.map
        (fun (engine_id, delta, fresh_ms, incr_ms, cache) ->
          Obs.Json.Obj
            [
              ("engine", Obs.Json.Str engine_id);
              ("delta", Obs.Json.Num (float_of_int delta));
              ("fresh_ms", Obs.Json.Num fresh_ms);
              ("incremental_ms", Obs.Json.Num incr_ms);
              ("speedup", Obs.Json.Num (fresh_ms /. incr_ms));
              ( "cache",
                Obs.Json.Obj
                  [
                    ( "entries",
                      Obs.Json.Num
                        (float_of_int cache.Tecore.Engine.solve_entries) );
                    ( "hits",
                      Obs.Json.Num
                        (float_of_int cache.Tecore.Engine.solve_hits) );
                    ( "misses",
                      Obs.Json.Num
                        (float_of_int cache.Tecore.Engine.solve_misses) );
                  ] );
            ])
        measured
    in
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.Str "tecore-bench-incremental/1");
          ("fast", Obs.Json.Bool !fast_mode);
          ("players", Obs.Json.Num (float_of_int players));
          ("reps", Obs.Json.Num (float_of_int reps));
          ("runs", Obs.Json.Arr runs);
        ]
    in
    let oc = open_out incr_json_path in
    output_string oc (Obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    (* Self-check: round-trip through our own parser, and make sure the
       numbers downstream tooling keys on are present and finite. *)
    let ic = open_in incr_json_path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Obs.Json.parse text with
    | Error e ->
        failwith (Printf.sprintf "%s: invalid JSON: %s" incr_json_path e)
    | Ok parsed -> (
        match Obs.Json.member "runs" parsed with
        | Some (Obs.Json.Arr (_ :: _ as rs)) ->
            List.iter
              (fun r ->
                List.iter
                  (fun field ->
                    match Obs.Json.member field r with
                    | Some (Obs.Json.Num v) when Float.is_finite v -> ()
                    | _ ->
                        failwith
                          (Printf.sprintf "%s: run misses %s" incr_json_path
                             field))
                  [ "delta"; "fresh_ms"; "incremental_ms"; "speedup" ])
              rs
        | _ -> failwith (incr_json_path ^ ": no runs")));
    row "wrote %s (%d cells, %d reps each) -- JSON validated\n"
      incr_json_path (List.length measured) reps
  end

(* ------------------------------------------------------------------ *)
(* serve: request latency and throughput through the wire protocol at  *)
(* 1/8/64 concurrent sessions, warm vs cold, exported as               *)
(* BENCH_serve.json (validated by re-parsing).                         *)
(* ------------------------------------------------------------------ *)

let serve_json_path = "BENCH_serve.json"

(* One benchmark client: its own session, graph and edit stream over a
   real loopback socket. *)
let serve_client_request fd ic line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0;
  let resp = input_line ic in
  if String.length resp < 2 || String.sub resp 0 2 <> "ok" then
    failwith (Printf.sprintf "bench serve: request %S failed: %s" line resp)

let serve_measure ?(lanes = 1) () =
  let reps = if !fast_mode then 4 else 12 in
  let session_counts = if !fast_mode then [ 1; 8 ] else [ 1; 8; 64 ] in
  let percentile p xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(int_of_float (p *. float_of_int (Array.length a - 1)))
  in
  let median = percentile 0.5 in
  let cells =
    List.map
      (fun sessions ->
        let config =
          { Serve.default_config with Serve.queue_cap = 4 * sessions; lanes }
        in
        let server = Serve.start ~config (`Tcp 0) in
        Fun.protect
          ~finally:(fun () -> Serve.stop server)
          (fun () ->
            let cold = Array.make sessions 0.0 in
            let warm = Array.make sessions [] in
            let client i () =
              let fd = Serve.connect server in
              let ic = Unix.in_channel_of_descr fd in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () ->
                  let req = serve_client_request fd ic in
                  req (Printf.sprintf "hello bench-%d-%d" sessions i);
                  req "open";
                  req
                    "constraint one_team: ex:playsFor(x, y)@t ^ \
                     ex:playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .";
                  (* A seed graph big enough that from-scratch grounding
                     dominates the cold resolve: 60 facts over 12
                     players, with overlapping spells inside each
                     player's career feeding the constraint. *)
                  for f = 1 to 60 do
                    req
                      (Printf.sprintf
                         "assert ex:P%d ex:playsFor ex:T%d [%d,%d] 0.8 ."
                         (f mod 12) (f mod 6) (1900 + (3 * (f / 12)))
                         (1904 + (3 * (f / 12))))
                  done;
                  (* Cold: the first resolve grounds from scratch. *)
                  let t0 = Unix.gettimeofday () in
                  req "resolve";
                  cold.(i) <- (Unix.gettimeofday () -. t0) *. 1000.;
                  (* Warm: repeated 1-fact edits ride the caches. *)
                  for r = 1 to reps do
                    req
                      (Printf.sprintf
                         "assert ex:P99 ex:playsFor ex:T0 [%d,%d] 0.6 ."
                         (2000 + (2 * r))
                         (2001 + (2 * r)));
                    let t0 = Unix.gettimeofday () in
                    req "resolve";
                    warm.(i) <-
                      ((Unix.gettimeofday () -. t0) *. 1000.) :: warm.(i)
                  done)
            in
            let wall0 = Unix.gettimeofday () in
            let threads =
              List.init sessions (fun i -> Thread.create (client i) ())
            in
            List.iter Thread.join threads;
            let wall_s = Unix.gettimeofday () -. wall0 in
            if Serve.shed_count server <> 0 then
              failwith "bench serve: admission control shed under benchmark";
            let warm_all = List.concat (Array.to_list warm) in
            let resolves = sessions * (reps + 1) in
            let requests = float_of_int (Serve.requests_total server) in
            ( sessions,
              median (Array.to_list cold),
              median warm_all,
              percentile 0.95 warm_all,
              float_of_int resolves /. wall_s,
              requests /. wall_s )))
      session_counts
  in
  (reps, cells)

let serve_check_run () =
  section "SERVE"
    "serve: measured latencies vs committed BENCH_serve.json";
  let env_float name default =
    match Option.bind (Sys.getenv_opt name) float_of_string_opt with
    | Some v when v > 0.0 -> v
    | Some _ | None -> default
  in
  let factor = env_float "BENCH_SERVE_TOL_FACTOR" 25.0 in
  let floor_ms = env_float "BENCH_SERVE_TOL_FLOOR_MS" 5.0 in
  let committed =
    let ic =
      try open_in serve_json_path
      with Sys_error msg ->
        failwith
          (Printf.sprintf
             "serve --check: cannot read %s (%s); run `bench serve` to \
              regenerate it"
             serve_json_path msg)
    in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Obs.Json.parse text with
    | Error e ->
        failwith (Printf.sprintf "serve --check: %s: %s" serve_json_path e)
    | Ok doc -> doc
  in
  (match Obs.Json.member "schema" committed with
  | Some (Obs.Json.Str "tecore-bench-serve/2") -> ()
  | Some (Obs.Json.Str s) ->
      failwith
        (Printf.sprintf
           "serve --check: %s has schema %s, expected tecore-bench-serve/2; \
            run `bench serve` to regenerate it"
           serve_json_path s)
  | _ -> failwith (serve_json_path ^ ": missing schema"));
  let committed_runs =
    match Obs.Json.member "runs" committed with
    | Some (Obs.Json.Arr runs) -> runs
    | _ -> failwith (serve_json_path ^ ": no runs")
  in
  let num field r =
    match Obs.Json.member field r with
    | Some (Obs.Json.Num v) when Float.is_finite v -> v
    | _ -> failwith (Printf.sprintf "%s: bad %s" serve_json_path field)
  in
  (* The single-lane cells are the latency baseline CI re-measures;
     multi-lane rows (when the producing machine had the cores for
     them) are covered by the write-time throughput gate instead. *)
  let lookup sessions =
    List.find_opt
      (fun r ->
        Obs.Json.member "sessions" r
          = Some (Obs.Json.Num (float_of_int sessions))
        && Obs.Json.member "lanes" r = Some (Obs.Json.Num 1.0))
      committed_runs
  in
  (* The committed headline: warm-path service beats cold resolution on
     the machine that produced the file. *)
  (match lookup 1 with
  | None -> failwith (serve_json_path ^ ": no sessions=1, lanes=1 run")
  | Some r ->
      if num "warm_ms" r >= num "cold_ms" r then
        failwith
          (Printf.sprintf "%s: committed warm_ms is not below cold_ms"
             serve_json_path));
  let _, cells = serve_measure () in
  let failures = ref [] in
  List.iter
    (fun (sessions, cold_ms, warm_ms, warm_p95_ms, _, _) ->
      match lookup sessions with
      | None ->
          failures :=
            Printf.sprintf "sessions=%d: missing from %s" sessions
              serve_json_path
            :: !failures
      | Some r ->
          let within name ref_ms ms =
            if
              not
                (ms <= (ref_ms *. factor) +. floor_ms
                && ref_ms <= (ms *. factor) +. floor_ms)
            then
              failures :=
                Printf.sprintf
                  "sessions=%d: %s %.2f ms vs committed %.2f ms" sessions
                  name ms ref_ms
                :: !failures
          in
          within "cold" (num "cold_ms" r) cold_ms;
          within "warm" (num "warm_ms" r) warm_ms;
          within "warm p95" (num "warm_p95_ms" r) warm_p95_ms)
    cells;
  match !failures with
  | [] ->
      row "serve --check: all cells within %.0fx of %s\n" factor
        serve_json_path
  | fs ->
      failwith
        (Printf.sprintf "serve --check: %d cell(s) out of tolerance:\n  %s"
           (List.length fs)
           (String.concat "\n  " (List.rev fs)))

(* Tracing sanity gate: with every-request sampling on, each traced
   request's phase durations must sum to at most its wall time (phases
   are disjoint sub-intervals of the request; 5% + 1 ms covers timer
   quantisation), and the slowest resolve must attribute a meaningful
   share of its wall time to named phases — a regression here means the
   phase brackets fell off the hot path. *)
let serve_trace_gate () =
  let config = { Serve.default_config with Serve.trace_every = 1 } in
  let server = Serve.start ~config (`Tcp 0) in
  let records =
    Fun.protect
      ~finally:(fun () -> Serve.stop server)
      (fun () ->
        let fd = Serve.connect server in
        let ic = Unix.in_channel_of_descr fd in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let req = serve_client_request fd ic in
            req "hello trace-gate";
            req "open";
            req
              "constraint one_team: ex:playsFor(x, y)@t ^ \
               ex:playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .";
            for f = 1 to 30 do
              req
                (Printf.sprintf
                   "assert ex:P%d ex:playsFor ex:T%d [%d,%d] 0.8 ."
                   (f mod 6) (f mod 3)
                   (1900 + (3 * (f / 6)))
                   (1904 + (3 * (f / 6))))
            done;
            req "resolve";
            req "assert ex:P99 ex:playsFor ex:T0 [2000,2001] 0.6 .";
            req "resolve");
        (* Stop joins the connection thread, so every record — including
           the final resolve's, emitted after its reply — is in the
           ring before we read it. *)
        Serve.stop server;
        Serve.recent_records server)
  in
  if List.length records < 10 then
    failwith
      (Printf.sprintf "serve trace gate: only %d traced requests recorded"
         (List.length records));
  let phase_sum (r : Serve.Access_log.record) =
    List.fold_left (fun acc (_, ms) -> acc +. ms) 0. r.phases
  in
  List.iter
    (fun (r : Serve.Access_log.record) ->
      let sum = phase_sum r in
      if sum > (r.wall_ms *. 1.05) +. 1.0 then
        failwith
          (Printf.sprintf
             "serve trace gate: req %d (%s): phases sum to %.3f ms, \
              exceeding the %.3f ms wall time"
             r.req r.verb sum r.wall_ms))
    records;
  let slowest_resolve =
    List.fold_left
      (fun acc (r : Serve.Access_log.record) ->
        if r.verb <> "resolve" then acc
        else
          match acc with
          | Some (b : Serve.Access_log.record) when b.wall_ms >= r.wall_ms ->
              acc
          | _ -> Some r)
      None records
  in
  (match slowest_resolve with
  | None -> failwith "serve trace gate: no traced resolve"
  | Some r ->
      (* The cold resolve is dominated by ground + solve; well under
         half attributed means the brackets are broken. The floor is
         deliberately loose: wall time also absorbs scheduler noise on
         a loaded host. *)
      if phase_sum r < 0.25 *. r.wall_ms then
        failwith
          (Printf.sprintf
             "serve trace gate: resolve req %d attributes only %.3f of \
              %.3f ms to phases"
             r.req (phase_sum r) r.wall_ms));
  row "serve trace gate: %d traced requests, phase sums within wall time\n"
    (List.length records)

let serve_bench () =
  if !obs_check then begin
    serve_check_run ();
    serve_trace_gate ()
  end
  else begin
    section "SERVE"
      "serve: wire latency and throughput -> BENCH_serve.json";
    serve_trace_gate ();
    let reps, cells = serve_measure () in
    (* Write-time gate: at one session, warm resolves through the server
       must beat the cold (from-scratch) resolve on median. *)
    List.iter
      (fun (sessions, cold_ms, warm_ms, _, _, _) ->
        if sessions = 1 && warm_ms >= cold_ms then
          failwith
            (Printf.sprintf
               "serve: warm resolve (%.2f ms) did not beat cold (%.2f ms) \
                at 1 session"
               warm_ms cold_ms))
      cells;
    let run_json lanes
        (sessions, cold_ms, warm_ms, warm_p95_ms, resolve_rps, req_rps) =
      row
        "serve %2d sessions  lanes %d  cold %8.2f ms  warm %8.2f ms  p95 \
         %8.2f ms  %7.1f resolve/s  %8.1f req/s\n"
        sessions lanes cold_ms warm_ms warm_p95_ms resolve_rps req_rps;
      Obs.Json.Obj
        [
          ("sessions", Obs.Json.Num (float_of_int sessions));
          ("lanes", Obs.Json.Num (float_of_int lanes));
          ("cold_ms", Obs.Json.Num cold_ms);
          ("warm_ms", Obs.Json.Num warm_ms);
          ("warm_p95_ms", Obs.Json.Num warm_p95_ms);
          ("resolves_per_s", Obs.Json.Num resolve_rps);
          ("requests_per_s", Obs.Json.Num req_rps);
        ]
    in
    let runs = List.map (run_json 1) cells in
    (* The lanes dimension: re-measure multi-lane and gate its
       throughput against single-lane — but only on hardware where
       lanes can overlap at all. On a single core the measurement is
       skipped entirely (per the `bench par` pattern) and the reason is
       recorded in the JSON instead of a gate result. *)
    let lanes_hi = 4 in
    let cores = Prelude.Pool.recommended_jobs () in
    let lanes_gate, lane_runs =
      if cores < 2 then begin
        let reason =
          Printf.sprintf
            "%d core(s) available: resolver lanes cannot overlap here; \
             lanes>1 throughput gate skipped"
            cores
        in
        row "serve lanes=%d gate SKIPPED: %s\n" lanes_hi reason;
        ( Obs.Json.Obj
            [
              ("lanes", Obs.Json.Num (float_of_int lanes_hi));
              ("skip_reason", Obs.Json.Str reason);
            ],
          [] )
      end
      else begin
        let _, mcells = serve_measure ~lanes:lanes_hi () in
        let lane_runs = List.map (run_json lanes_hi) mcells in
        let rps (_, _, _, _, resolve_rps, _) = resolve_rps in
        let sessions_of (s, _, _, _, _, _) = s in
        let base = List.nth cells (List.length cells - 1) in
        let multi = List.nth mcells (List.length mcells - 1) in
        let ratio = rps multi /. rps base in
        let floor =
          match
            Option.bind
              (Sys.getenv_opt "BENCH_SERVE_LANES_FACTOR")
              float_of_string_opt
          with
          | Some v when v > 0.0 -> v
          | Some _ | None -> 0.75
        in
        row
          "serve lanes gate: %d sessions, lanes=%d %.1f resolve/s vs \
           lanes=1 %.1f resolve/s (%.2fx, floor %.2fx) %s\n"
          (sessions_of multi) lanes_hi (rps multi) (rps base) ratio floor
          (if ratio >= floor then "ok" else "FAIL");
        if ratio < floor then
          failwith
            (Printf.sprintf
               "serve: lanes=%d throughput is %.2fx of lanes=1 at %d \
                sessions (floor %.2fx) on %d cores"
               lanes_hi ratio (sessions_of multi) floor cores);
        ( Obs.Json.Obj
            [
              ("lanes", Obs.Json.Num (float_of_int lanes_hi));
              ("sessions", Obs.Json.Num (float_of_int (sessions_of multi)));
              ("baseline_resolves_per_s", Obs.Json.Num (rps base));
              ("multi_resolves_per_s", Obs.Json.Num (rps multi));
              ("ratio", Obs.Json.Num ratio);
              ("floor", Obs.Json.Num floor);
            ],
          lane_runs )
      end
    in
    let runs = runs @ lane_runs in
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.Str "tecore-bench-serve/2");
          ("fast", Obs.Json.Bool !fast_mode);
          ("reps", Obs.Json.Num (float_of_int reps));
          ("lanes_gate", lanes_gate);
          ("runs", Obs.Json.Arr runs);
        ]
    in
    let oc = open_out serve_json_path in
    output_string oc (Obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    (* Self-check: round-trip through our own parser, and make sure the
       numbers downstream tooling keys on are present and finite. *)
    let ic = open_in serve_json_path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Obs.Json.parse text with
    | Error e ->
        failwith (Printf.sprintf "%s: invalid JSON: %s" serve_json_path e)
    | Ok parsed -> (
        match Obs.Json.member "runs" parsed with
        | Some (Obs.Json.Arr (_ :: _ as rs)) ->
            List.iter
              (fun r ->
                List.iter
                  (fun field ->
                    match Obs.Json.member field r with
                    | Some (Obs.Json.Num v) when Float.is_finite v -> ()
                    | _ ->
                        failwith
                          (Printf.sprintf "%s: run misses %s" serve_json_path
                             field))
                  [
                    "sessions"; "lanes"; "cold_ms"; "warm_ms"; "warm_p95_ms";
                    "resolves_per_s"; "requests_per_s";
                  ])
              rs
        | _ -> failwith (serve_json_path ^ ": no runs")));
    row "wrote %s (%d cells, %d warm reps each) -- JSON validated\n"
      serve_json_path (List.length cells) reps
  end

(* ------------------------------------------------------------------ *)
(* durability: write-ahead journal overhead on the warm edit path at   *)
(* each fsync policy vs a purely in-memory session, exported as        *)
(* BENCH_durability.json (validated by re-parsing).                    *)
(* ------------------------------------------------------------------ *)

let durability_json_path = "BENCH_durability.json"

let rec durability_rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun entry -> durability_rm_rf (Filename.concat path entry))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let durability_configs =
  [
    ("none", None);
    ("fsync-never", Some Serve.Journal.Never);
    ("fsync-always", Some Serve.Journal.Always);
  ]

let durability_measure () =
  let edit_reps = if !fast_mode then 60 else 240 in
  let resolve_reps = if !fast_mode then 3 else 8 in
  let percentile p xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(int_of_float (p *. float_of_int (Array.length a - 1)))
  in
  let median = percentile 0.5 in
  let cells =
    List.map
      (fun (name, policy) ->
        let state_dir =
          match policy with
          | None -> None
          | Some _ ->
              Some
                (Filename.concat
                   (Filename.get_temp_dir_name ())
                   (Printf.sprintf "tecore_bench_dur_%d_%s" (Unix.getpid ())
                      name))
        in
        Option.iter durability_rm_rf state_dir;
        let config =
          {
            Serve.default_config with
            Serve.state_dir;
            fsync =
              (match policy with
              | Some p -> p
              | None -> Serve.default_config.Serve.fsync);
          }
        in
        let server = Serve.start ~config (`Tcp 0) in
        Fun.protect
          ~finally:(fun () ->
            Serve.stop server;
            Option.iter durability_rm_rf state_dir)
          (fun () ->
            let fd = Serve.connect server in
            let ic = Unix.in_channel_of_descr fd in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let req = serve_client_request fd ic in
                req (Printf.sprintf "hello bench-dur-%s" name);
                req "open";
                req
                  "constraint one_team: ex:playsFor(x, y)@t ^ \
                   ex:playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .";
                for f = 1 to 60 do
                  req
                    (Printf.sprintf
                       "assert ex:P%d ex:playsFor ex:T%d [%d,%d] 0.8 ."
                       (f mod 12) (f mod 6) (1900 + (3 * (f / 12)))
                       (1904 + (3 * (f / 12))))
                done;
                (* Warm the engine so the timed resolves below ride the
                   incremental caches, as a long-lived session would. *)
                req "resolve";
                (* The edit path: the journal append (and fsync, per
                   policy) sits between parsing an assert and acking
                   it, so the ack round-trip is exactly what
                   durability taxes. *)
                let edits = ref [] in
                for r = 1 to edit_reps do
                  let line =
                    Printf.sprintf
                      "assert ex:P99 ex:playsFor ex:T0 [%d,%d] 0.6 ."
                      (2000 + (2 * r))
                      (2001 + (2 * r))
                  in
                  let t0 = Unix.gettimeofday () in
                  req line;
                  edits := ((Unix.gettimeofday () -. t0) *. 1000.) :: !edits
                done;
                let resolves = ref [] in
                for r = 1 to resolve_reps do
                  req
                    (Printf.sprintf
                       "assert ex:P98 ex:playsFor ex:T1 [%d,%d] 0.6 ."
                       (3000 + (2 * r))
                       (3001 + (2 * r)));
                  let t0 = Unix.gettimeofday () in
                  req "resolve";
                  resolves :=
                    ((Unix.gettimeofday () -. t0) *. 1000.) :: !resolves
                done;
                (name, median !edits, percentile 0.95 !edits,
                 median !resolves))))
      durability_configs
  in
  (edit_reps, cells)

(* The headline durability claim, enforced at write time and re-checked
   against the committed numbers: journaling without fsync stays within
   a small factor of the in-memory edit ack — the append itself is one
   buffered write, so the cost of crash safety lives in the fsync
   policy, not the journal. *)
let durability_edit_gate ~what lookup_edit =
  let factor =
    match
      Option.bind
        (Sys.getenv_opt "BENCH_DURABILITY_EDIT_FACTOR")
        float_of_string_opt
    with
    | Some v when v > 0.0 -> v
    | Some _ | None -> 3.0
  in
  let floor_ms =
    match
      Option.bind
        (Sys.getenv_opt "BENCH_DURABILITY_EDIT_FLOOR_MS")
        float_of_string_opt
    with
    | Some v when v >= 0.0 -> v
    | Some _ | None -> 0.2
  in
  let none = lookup_edit "none" and never = lookup_edit "fsync-never" in
  if never > (none *. factor) +. floor_ms then
    failwith
      (Printf.sprintf
         "durability%s: fsync-never edit median %.3f ms exceeds %.1fx \
          the in-memory median %.3f ms (+%.2f ms floor)"
         what never factor none floor_ms)

let durability_check_run () =
  section "DURABILITY"
    "durability: measured edit/resolve latencies vs committed \
     BENCH_durability.json";
  let env_float name default =
    match Option.bind (Sys.getenv_opt name) float_of_string_opt with
    | Some v when v > 0.0 -> v
    | Some _ | None -> default
  in
  let factor = env_float "BENCH_DURABILITY_TOL_FACTOR" 25.0 in
  let floor_ms = env_float "BENCH_DURABILITY_TOL_FLOOR_MS" 5.0 in
  let committed =
    let ic =
      try open_in durability_json_path
      with Sys_error msg ->
        failwith
          (Printf.sprintf
             "durability --check: cannot read %s (%s); run `bench \
              durability` to regenerate it"
             durability_json_path msg)
    in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Obs.Json.parse text with
    | Error e ->
        failwith
          (Printf.sprintf "durability --check: %s: %s" durability_json_path
             e)
    | Ok doc -> doc
  in
  let committed_runs =
    match Obs.Json.member "runs" committed with
    | Some (Obs.Json.Arr runs) -> runs
    | _ -> failwith (durability_json_path ^ ": no runs")
  in
  let num field r =
    match Obs.Json.member field r with
    | Some (Obs.Json.Num v) when Float.is_finite v -> v
    | _ -> failwith (Printf.sprintf "%s: bad %s" durability_json_path field)
  in
  let lookup name =
    List.find_opt
      (fun r -> Obs.Json.member "config" r = Some (Obs.Json.Str name))
      committed_runs
  in
  let committed_edit name =
    match lookup name with
    | None ->
        failwith
          (Printf.sprintf "%s: no config=%s run" durability_json_path name)
    | Some r -> num "edit_ms" r
  in
  (* The committed headline must hold on the machine that produced the
     file. *)
  durability_edit_gate ~what:" --check (committed)" committed_edit;
  let _, cells = durability_measure () in
  let failures = ref [] in
  List.iter
    (fun (name, edit_ms, edit_p95_ms, resolve_ms) ->
      match lookup name with
      | None ->
          failures :=
            Printf.sprintf "config=%s: missing from %s" name
              durability_json_path
            :: !failures
      | Some r ->
          let within what ref_ms ms =
            if
              not
                (ms <= (ref_ms *. factor) +. floor_ms
                && ref_ms <= (ms *. factor) +. floor_ms)
            then
              failures :=
                Printf.sprintf "config=%s: %s %.3f ms vs committed %.3f ms"
                  name what ms ref_ms
                :: !failures
          in
          within "edit" (num "edit_ms" r) edit_ms;
          within "edit p95" (num "edit_p95_ms" r) edit_p95_ms;
          within "resolve" (num "resolve_ms" r) resolve_ms)
    cells;
  (* And the live measurement must reproduce the headline, so a journal
     write-path regression fails even when every cell stays inside the
     (generous) timing tolerance. *)
  let live_edit name =
    match
      List.find_opt (fun (n, _, _, _) -> n = name) cells
    with
    | Some (_, edit_ms, _, _) -> edit_ms
    | None -> failwith ("durability --check: no live cell for " ^ name)
  in
  durability_edit_gate ~what:" --check (live)" live_edit;
  match !failures with
  | [] ->
      row "durability --check: all cells within %.0fx of %s\n" factor
        durability_json_path
  | fs ->
      failwith
        (Printf.sprintf
           "durability --check: %d cell(s) out of tolerance:\n  %s"
           (List.length fs)
           (String.concat "\n  " (List.rev fs)))

let durability_bench () =
  if !obs_check then durability_check_run ()
  else begin
    section "DURABILITY"
      "durability: journal overhead on the warm edit path -> \
       BENCH_durability.json";
    let edit_reps, cells = durability_measure () in
    durability_edit_gate ~what:"" (fun name ->
        match List.find_opt (fun (n, _, _, _) -> n = name) cells with
        | Some (_, edit_ms, _, _) -> edit_ms
        | None -> failwith ("durability: no cell for " ^ name));
    let runs =
      List.map
        (fun (name, edit_ms, edit_p95_ms, resolve_ms) ->
          row
            "durability %-12s  edit %7.3f ms  p95 %7.3f ms  warm resolve \
             %8.2f ms\n"
            name edit_ms edit_p95_ms resolve_ms;
          Obs.Json.Obj
            [
              ("config", Obs.Json.Str name);
              ("edit_ms", Obs.Json.Num edit_ms);
              ("edit_p95_ms", Obs.Json.Num edit_p95_ms);
              ("resolve_ms", Obs.Json.Num resolve_ms);
            ])
        cells
    in
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.Str "tecore-bench-durability/1");
          ("fast", Obs.Json.Bool !fast_mode);
          ("edit_reps", Obs.Json.Num (float_of_int edit_reps));
          ("runs", Obs.Json.Arr runs);
        ]
    in
    let oc = open_out durability_json_path in
    output_string oc (Obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    (* Self-check: round-trip through our own parser, and make sure the
       numbers downstream tooling keys on are present and finite. *)
    let ic = open_in durability_json_path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Obs.Json.parse text with
    | Error e ->
        failwith
          (Printf.sprintf "%s: invalid JSON: %s" durability_json_path e)
    | Ok parsed -> (
        match Obs.Json.member "runs" parsed with
        | Some (Obs.Json.Arr (_ :: _ as rs)) ->
            List.iter
              (fun r ->
                (match Obs.Json.member "config" r with
                | Some (Obs.Json.Str _) -> ()
                | _ ->
                    failwith
                      (Printf.sprintf "%s: run misses config"
                         durability_json_path));
                List.iter
                  (fun field ->
                    match Obs.Json.member field r with
                    | Some (Obs.Json.Num v) when Float.is_finite v -> ()
                    | _ ->
                        failwith
                          (Printf.sprintf "%s: run misses %s"
                             durability_json_path field))
                  [ "edit_ms"; "edit_p95_ms"; "resolve_ms" ])
              rs
        | _ -> failwith (durability_json_path ^ ": no runs")));
    row "wrote %s (%d cells, %d edit reps each) -- JSON validated\n"
      durability_json_path (List.length cells) edit_reps
  end

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("a1", a1); ("a2", a2); ("a3", a3); ("a4", a4);
    ("a5", a5); ("a6", a6); ("a7", a7); ("micro", micro);
    ("obs", obs_bench); ("par", par_bench); ("deadline", deadline_bench);
    ("incr", incr_bench); ("serve", serve_bench);
    ("durability", durability_bench);
  ]

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [ "par-mem-worker"; regime ] ->
      (* Hidden child-process mode: [par_measure_memory] re-executes this
         binary so [Gc.top_heap_words] starts from a clean heap. *)
      par_mem_worker regime
  | args ->
  let rec parse names = function
    | [] -> List.rev names
    | "--smoke" :: rest ->
        fast_mode := true;
        parse names rest
    | "--check" :: rest ->
        obs_check := true;
        parse names rest
    | "--jobs" :: n :: rest ->
        (match Prelude.Pool.parse_jobs (Some n) with
        | Some jobs -> compare_jobs := jobs
        | None ->
            Printf.eprintf "invalid --jobs value %s\n" n;
            exit 1);
        parse names rest
    | a :: rest -> parse (a :: names) rest
  in
  let smoke = List.mem "--smoke" args in
  let names = parse [] args in
  let requested =
    match names with
    | _ :: _ -> names
    | [] ->
        if smoke then [ "e1"; "obs"; "par"; "deadline" ]
        else List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested
