(* The constraints editor behind Figure 5: predicate auto-completion
   against the loaded KG, incremental editing of the constraint set, and
   a qualitative sanity check of the Allen relations a user wires between
   predicates — path consistency over the interval network detects
   constraint sets no timeline can satisfy before any grounding happens.

   Run with: dune exec examples/constraint_editor.exe *)

let () =
  let session = Tecore.Session.create () in
  (match
     Tecore.Session.load_string session
       {|
ex:Ada ex:birthDate 1815 [1815,1852] 1.0 .
ex:Ada ex:worksFor ex:Analytical_Society [1837,1848] 0.8 .
ex:Ada ex:deathDate 1852 [1852,1852] 1.0 .
ex:Ada ex:livesIn ex:London [1820,1852] 0.9 .
|}
   with
  | Ok () -> ()
  | Error e -> failwith e);

  (* Auto-completion, as the editor would query it per keystroke. *)
  List.iter
    (fun prefix ->
      Format.printf "complete %-6S -> %s@." prefix
        (String.concat ", " (Tecore.Session.complete_predicate session prefix)))
    [ "ex:"; "ex:b"; "ex:w"; "ex:z" ];

  (* The user wires Allen relations between predicate pairs. Before
     grounding anything, check the relations are jointly realisable with
     a qualitative interval network: variables 0 = birth, 1 = work,
     2 = death. *)
  let network = Kg.Allen.Network.create 3 in
  Kg.Allen.Network.constrain network 0 1 Kg.Allen.Set.before_or_meets;
  Kg.Allen.Network.constrain network 1 2 Kg.Allen.Set.before_or_meets;
  Kg.Allen.Network.constrain network 0 2
    (Kg.Allen.Set.of_list [ Kg.Allen.Before ]);
  Format.printf "@.birth->work->death network consistent: %b@."
    (Kg.Allen.Network.path_consistency network);
  (match Kg.Allen.Network.consistent_scenario network with
  | Some scenario ->
      Array.iteri
        (fun i interval ->
          Format.printf "  variable %d realised as %a@." i Kg.Interval.pp
            interval)
        scenario
  | None -> Format.printf "  no concrete realisation@.");

  (* A contradictory wiring: birth before death AND death before birth. *)
  let bad = Kg.Allen.Network.create 2 in
  Kg.Allen.Network.constrain bad 0 1 (Kg.Allen.Set.of_list [ Kg.Allen.Before ]);
  Kg.Allen.Network.constrain bad 1 0 (Kg.Allen.Set.of_list [ Kg.Allen.Before ]);
  Format.printf "contradictory network consistent: %b@.@."
    (Kg.Allen.Network.path_consistency bad);

  (* Edit the constraint set interactively and re-run. *)
  (match
     Tecore.Session.add_rules session
       {|
constraint born_before_death:
  ex:birthDate(x, y)@t ^ ex:deathDate(x, z)@t2 => start(t) < start(t2) .
constraint work_in_lifetime:
  ex:worksFor(x, y)@t ^ ex:birthDate(x, z)@t2 => intersects(t, t2) .
|}
   with
  | Ok added -> Format.printf "added %d constraints@." (List.length added)
  | Error e -> failwith e);

  (match Tecore.Session.run session with
  | Ok _ -> print_endline (Tecore.Session.statistics session)
  | Error e -> failwith e);

  (* Remove a constraint, as the editor's delete button would. *)
  ignore (Tecore.Session.remove_rule session "work_in_lifetime");
  Format.printf "constraints now: %s@."
    (String.concat ", "
       (List.map (fun (r : Logic.Rule.t) -> r.name) (Tecore.Session.rules session)))
