(* Debugging a Wikidata-style UTKG: generate a 20K-fact slice with 8 %
   planted conflicts (overlapping second clubs and spouses), resolve it
   with the scalable nPSL engine, and score the debugger against the
   planted ground truth — the measurement the paper's scraped data cannot
   provide.

   Run with: dune exec examples/wikidata_spouse.exe *)

let () =
  let dataset =
    Datagen.Wikidata.generate ~seed:11 ~total_facts:20_000 ~conflict_rate:0.08
      ()
  in
  Format.printf "generated %d facts:@." (Kg.Graph.size dataset.graph);
  List.iter
    (fun (relation, count) -> Format.printf "  %-12s %6d@." relation count)
    dataset.relation_counts;
  Format.printf "planted conflicts: %d@.@." (List.length dataset.planted);

  let rules = Datagen.Wikidata.constraints () @ Datagen.Wikidata.rules () in
  List.iter (fun r -> Format.printf "%a@." Rulelang.Printer.pp_rule r) rules;
  Format.printf "@.";

  let result =
    Tecore.Engine.resolve ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
      dataset.graph rules
  in
  Format.printf "%a@.@." Tecore.Engine.pp_result result;

  (* Score removals against the planted conflicts. *)
  let planted = dataset.planted in
  let removed = List.map fst result.resolution.Tecore.Conflict.removed in
  let true_positives =
    List.length (List.filter (fun id -> List.mem id planted) removed)
  in
  let precision =
    float_of_int true_positives /. float_of_int (max 1 (List.length removed))
  in
  let recall =
    float_of_int true_positives /. float_of_int (max 1 (List.length planted))
  in
  Format.printf "debugging quality vs planted ground truth:@.";
  Format.printf "  removed %d facts, %d of them planted errors@."
    (List.length removed) true_positives;
  Format.printf "  precision %.3f, recall %.3f@." precision recall;

  (* Show a few example spouse conflicts the engine resolved. *)
  Format.printf "@.sample removed spouse facts:@.";
  List.iteri
    (fun i (_, q) ->
      if
        i < 5
        && Kg.Term.to_string q.Kg.Quad.predicate = "spouse"
      then Format.printf "  %a@." Kg.Quad.pp q)
    result.resolution.Tecore.Conflict.removed
