(* The paper's running example in full: the Claudio Ranieri UTKG of
   Figure 1, the inference rules f1-f3 of Figure 4 and the constraints
   c1-c3 of Figure 6, resolved with both engines. The expected outcome is
   Figure 7: fact (5) — coach of Napoli [2001,2003] — is removed because
   it clashes with the Chelsea stint under c2 and carries less weight,
   and the rules derive worksFor / livesIn / TeenPlayer facts.

   Run with: dune exec examples/football_debugging.exe *)

let utkg =
  {|
@prefix ex: <http://example.org/> .
# (1)-(5): Figure 1, plus club locations and a youth-career player to
# exercise rules f2 and f3.
ex:CR ex:coach ex:Chelsea [2000,2004] 0.9 .
ex:CR ex:coach ex:Leicester [2015,2017] 0.7 .
ex:CR ex:playsFor ex:Palermo [1984,1986] 0.5 .
ex:CR ex:birthDate 1951 [1951,2017] .
ex:CR ex:coach ex:Napoli [2001,2003] 0.6 .
ex:Palermo ex:locatedIn ex:Sicily [1900,2017] 1.0 .
ex:Kid ex:playsFor ex:Ajax [2010,2012] 0.8 .
ex:Kid ex:birthDate 1994 [1994,2017] 0.95 .
|}

let program =
  {|
# Figure 4: temporal inference rules.
rule f1 2.5: ex:playsFor(x, y)@t => ex:worksFor(x, y)@t .
rule f2 1.6: ex:worksFor(x, y)@t ^ ex:locatedIn(y, z)@t2 ^ intersects(t, t2)
             => ex:livesIn(x, z)@(t * t2) .
rule f3 2.9: ex:playsFor(x, y)@t ^ ex:birthDate(x, z)@t2 ^ t - t2 < 20
             => ex:TeenPlayer(x) .

# Figure 6: temporal constraints.
constraint c1: ex:birthDate(x, y)@t ^ ex:deathDate(x, z)@t2 => before(t, t2) .
constraint c2: ex:coach(x, y)@t ^ ex:coach(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint c3: ex:bornIn(x, y)@t ^ ex:bornIn(x, z)@t2 ^ intersects(t, t2) => y = z .
|}

let show_resolution (result : Tecore.Engine.result) =
  Format.printf "%a@.@." Tecore.Engine.pp_result result;
  Format.printf "-- G_inferred (Figure 7 + derived facts) --@.";
  Format.printf "%a@." Kg.Graph.pp result.resolution.Tecore.Conflict.consistent;
  List.iter
    (fun (d : Tecore.Conflict.derived_fact) ->
      match d.as_quad with
      | None ->
          Format.printf "derived (non-quad): %a  %.3f@." Logic.Atom.Ground.pp
            d.atom d.confidence
      | Some _ -> ())
    result.resolution.Tecore.Conflict.derived;
  List.iter
    (fun (_, q) -> Format.printf "removed: %a@." Kg.Quad.pp q)
    result.resolution.Tecore.Conflict.removed;
  Format.printf "@."

let show_explanations session (result : Tecore.Engine.result) =
  match Tecore.Session.graph session with
  | None -> ()
  | Some graph ->
      let removals, derivations = Tecore.Explain.of_result graph result in
      Format.printf "-- why --@.";
      List.iter
        (fun r -> Format.printf "%a@." Tecore.Explain.pp_removal r)
        removals;
      List.iter
        (fun d -> Format.printf "%a@." Tecore.Explain.pp_derivation d)
        derivations;
      Format.printf "@."

let () =
  let session = Tecore.Session.create () in
  (match Tecore.Session.load_string session utkg with
  | Ok () -> ()
  | Error e -> failwith e);
  (match Tecore.Session.add_rules session program with
  | Ok _ -> ()
  | Error e -> failwith e);
  (* The translator's verification pass first (Figure 3's guidance). *)
  (match Tecore.Session.analyse session with
  | Ok report -> Format.printf "%a@.@." Tecore.Translator.pp_report report
  | Error e -> failwith e);
  Format.printf "==== MLN engine (nRockIt path) ====@.";
  (match
     Tecore.Session.run
       ~engine:(Tecore.Engine.Mln Mln.Map_inference.default_options) session
   with
  | Ok result ->
      show_resolution result;
      show_explanations session result
  | Error e -> failwith e);
  Format.printf "==== nPSL engine ====@.";
  (match
     Tecore.Session.run ~engine:(Tecore.Engine.Psl Psl.Npsl.default_options)
       session
   with
  | Ok result -> show_resolution result
  | Error e -> failwith e);
  (* Threshold feature: drop derived facts below 0.9 confidence. *)
  Format.printf "==== with a 0.9 threshold on derived facts ====@.";
  match Tecore.Session.run ~threshold:0.9 session with
  | Ok result -> show_resolution result
  | Error e -> failwith e
