(* Learning rule weights from data: train pseudo-likelihood weights on a
   clean FootballDB corpus, inspect what the data supports, and use the
   learned program to debug a noisy graph.

   Run with: dune exec examples/weight_learning.exe *)

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e -> failwith (Format.asprintf "%a" Rulelang.Parser.pp_error e)

(* Candidate program: two plausible and one wrong inference rule, plus a
   soft version of the one-team-at-a-time constraint. *)
let candidates =
  {|
rule veteran 1.0: playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ t - t2 > 30 => VeteranPlayer(x) .
rule always_veteran 1.0: playsFor(x, y)@t => VeteranPlayer(x) .
constraint one_team 1.0: playsFor(x, y)@t ^ playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .
|}

let () =
  let rules = parse_rules candidates in
  (* Training corpus: clean careers. The two inference rules have heads
     that never occur in the data (VeteranPlayer is not an observed
     predicate), so pseudo-likelihood drives both toward the weight
     floor; the soft constraint is satisfied by every clean pair, so it
     rises until the L2 prior stops it. Learning thus reads off which
     parts of a candidate program the data actually supports. *)
  let base = Datagen.Footballdb.generate ~seed:21 ~players:500 () in
  let graph = base.Datagen.Footballdb.graph in
  let store = Grounder.Atom_store.of_graph graph in
  let ground = Grounder.Ground.run store rules in
  let result = Mln.Learn.learn store ground.Grounder.Ground.instances rules in
  Format.printf "learned weights (clean corpus, %d facts):@."
    (Kg.Graph.size graph);
  List.iter
    (fun (name, w) -> Format.printf "  %-16s %.3f@." name w)
    result.Mln.Learn.weights;
  (match result.Mln.Learn.pll_trace with
  | first :: _ ->
      let last =
        List.nth result.Mln.Learn.pll_trace
          (List.length result.Mln.Learn.pll_trace - 1)
      in
      Format.printf "pseudo-log-likelihood: %.1f -> %.1f@." first last
  | [] -> ());

  (* Debug a noisy graph with the learned program. *)
  let noisy = Datagen.Footballdb.generate ~seed:22 ~players:300 ~noise_ratio:0.5 () in
  let learned_rules = Mln.Learn.apply result rules in
  let out =
    Tecore.Engine.resolve noisy.Datagen.Footballdb.graph learned_rules
  in
  let removed = List.map fst out.Tecore.Engine.resolution.Tecore.Conflict.removed in
  let tp =
    List.length
      (List.filter (fun id -> List.mem id noisy.Datagen.Footballdb.planted) removed)
  in
  Format.printf "@.debugging with the learned program:@.";
  Format.printf "  removed %d facts, precision %.3f, recall %.3f@."
    (List.length removed)
    (float_of_int tp /. float_of_int (max 1 (List.length removed)))
    (float_of_int tp
    /. float_of_int (max 1 (List.length noisy.Datagen.Footballdb.planted)))
