(* A curation session on a noisy UTKG, exercising the toolbox around MAP
   inference: temporal coalescing, per-subject timelines, temporal
   conjunctive queries, automatic constraint suggestion, and marginal
   (per-fact posterior) inference with Gibbs sampling.

   Run with: dune exec examples/kg_curation.exe *)

let () =
  (* A fragmented, noisy extraction result: the same stint split into
     pieces, plus an overlapping second club. *)
  let graph =
    Kg.Graph.of_list
      [
        Kg.Quad.v "Ada" "playsFor" (Kg.Term.iri "Ajax") (2001, 2003) 0.7;
        Kg.Quad.v "Ada" "playsFor" (Kg.Term.iri "Ajax") (2004, 2005) 0.6;
        Kg.Quad.v "Ada" "playsFor" (Kg.Term.iri "Ajax") (2005, 2007) 0.8;
        Kg.Quad.v "Ada" "playsFor" (Kg.Term.iri "Boca") (2006, 2008) 0.5;
        Kg.Quad.v "Ada" "birthDate" (Kg.Term.int 1980) (1980, 2017) 1.0;
      ]
  in

  Format.printf "== raw timeline ==@.";
  Format.printf "%a@.@."
    Kg.Coalesce.pp_timeline
    (Kg.Coalesce.timeline graph ~subject:(Kg.Term.iri "Ada")
       ~predicate:(Kg.Term.iri "playsFor"));

  (* Coalescing merges the three Ajax fragments into one interval with a
     noisy-or confidence. *)
  let merged = Kg.Coalesce.coalesce graph in
  Format.printf "== after coalescing (%d -> %d facts) ==@.%a@."
    (Kg.Graph.size graph) (Kg.Graph.size merged) Kg.Graph.pp merged;

  (* Temporal conjunctive query: which overlapping club pairs remain? *)
  Format.printf "== overlapping club spells (temporal query) ==@.";
  (match
     Tecore.Query.run merged
       "playsFor(x, y)@t ^ playsFor(x, z)@t2 ^ y != z ^ intersects(t, t2)"
   with
  | Error e -> failwith e
  | Ok answers ->
      List.iter
        (fun a -> Format.printf "%a@." (Tecore.Query.pp_answer merged) a)
        answers);

  (* Mine constraints from a bigger clean corpus, then apply them here. *)
  Format.printf "@.== suggested constraints (mined from clean FootballDB) ==@.";
  let corpus = Datagen.Footballdb.generate ~seed:12 ~players:400 () in
  let suggestions =
    Tecore.Suggest.mine corpus.Datagen.Footballdb.graph
    |> List.filter (fun s -> s.Tecore.Suggest.ratio >= 0.98)
  in
  List.iter
    (fun s -> Format.printf "%a@.@." Tecore.Suggest.pp_suggestion s)
    suggestions;

  (* Resolve the curated graph under the mined constraints. *)
  let rules = List.map (fun s -> s.Tecore.Suggest.rule) suggestions in
  let result = Tecore.Engine.resolve merged rules in
  Format.printf "== resolution under mined constraints ==@.%a@.@."
    Tecore.Engine.pp_result result;

  (* Marginal inference: per-fact posterior instead of one MAP world. *)
  Format.printf "== per-fact posteriors (Gibbs marginals) ==@.";
  let store = Grounder.Atom_store.of_graph merged in
  let ground = Grounder.Ground.run store rules in
  let network = Mln.Network.build store ground.Grounder.Ground.instances in
  let init = Mln.Network.initial_assignment network store in
  let marginals = Mln.Gibbs.run ~seed:1 ~burn_in:500 ~samples:3000 ~init network in
  Grounder.Atom_store.iter
    (fun id atom _ ->
      Format.printf "  P(%a) = %.2f@." Logic.Atom.Ground.pp atom
        marginals.Mln.Gibbs.marginals.(id))
    store
