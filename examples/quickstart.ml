(* Quickstart: build an uncertain temporal KG in a few lines, state one
   temporal constraint, and compute the most probable conflict-free KG.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* An uncertain temporal KG: who directed the lab, and when. Two of the
     facts claim different directors over overlapping years. *)
  let graph = Kg.Graph.create () in
  let fact s p o span conf = ignore (Kg.Graph.add graph (Kg.Quad.v s p o span conf)) in
  fact "Lab" "directedBy" (Kg.Term.iri "Ada") (1996, 2003) 0.9;
  fact "Lab" "directedBy" (Kg.Term.iri "Grace") (2001, 2008) 0.6;
  fact "Lab" "directedBy" (Kg.Term.iri "Edsger") (2009, 2015) 0.8;
  fact "Lab" "locatedIn" (Kg.Term.iri "Zurich") (1996, 2015) 1.0;

  (* One hard constraint: a lab has a single director at a time. *)
  let rules =
    match
      Rulelang.Parser.parse_string
        {|
constraint one_director:
  directedBy(x, y)@t ^ directedBy(x, z)@t2 ^ y != z => disjoint(t, t2) .
|}
    with
    | Ok rules -> rules
    | Error e -> failwith (Format.asprintf "%a" Rulelang.Parser.pp_error e)
  in

  (* Resolve: the engine keeps the most probable consistent subset. *)
  let result = Tecore.Engine.resolve graph rules in
  Format.printf "%a@.@." Tecore.Engine.pp_result result;

  Format.printf "consistent KG:@.%a@." Kg.Graph.pp
    result.resolution.Tecore.Conflict.consistent;

  List.iter
    (fun (_, q) -> Format.printf "removed: %a@." Kg.Quad.pp q)
    result.resolution.Tecore.Conflict.removed
