(* Validate telemetry export files produced by `tecore resolve`:

     telemetry_check trace FILE [--min-lanes N]
       FILE must parse as JSON and pass the Chrome trace_event checks
       (complete "X" events with name/cat/ph/ts/dur/pid/tid, at least N
       distinct lanes).

     telemetry_check metrics FILE
       FILE must pass the OpenMetrics text-exposition grammar check.

     telemetry_check accesslog FILE
       FILE must be a tecore serve access log: every line a valid
       JSON-lines request record whose per-phase durations sum to at
       most the recorded wall time (within tolerance). A torn final
       line — the signature of a crash mid-append — is tolerated with
       a warning; any other malformed line fails.

   Exit status 0 when valid, 1 with a diagnostic on stderr otherwise.
   Used by scripts/ci.sh to gate the telemetry smoke run. *)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Printf.eprintf "telemetry_check: %s\n" msg;
    exit 1

let fail fmt = Printf.ksprintf (fun msg ->
    Printf.eprintf "telemetry_check: %s\n" msg;
    exit 1)
  fmt

let usage () =
  prerr_endline
    "usage: telemetry_check trace FILE [--min-lanes N]\n\
    \       telemetry_check metrics FILE\n\
    \       telemetry_check accesslog FILE";
  exit 1

let check_trace path min_lanes =
  let text = read_file path in
  let json =
    match Obs.Json.parse text with
    | Ok json -> json
    | Error msg -> fail "%s: %s" path msg
  in
  match Obs.Export.validate_trace ~min_lanes json with
  | Ok () -> Printf.printf "%s: valid Chrome trace\n" path
  | Error msg -> fail "%s: %s" path msg

let check_metrics path =
  match Obs.Export.validate_metrics (read_file path) with
  | Ok () -> Printf.printf "%s: valid OpenMetrics exposition\n" path
  | Error msg -> fail "%s: %s" path msg

(* Phase durations are disjoint intervals inside the request's wall
   time, so their sum can only exceed it by timer quantisation noise:
   allow 5% plus a fixed millisecond. *)
let phase_sum_tolerable ~wall sum = sum <= (wall *. 1.05) +. 1.0

let check_accesslog path =
  let records, warnings =
    try Serve.Access_log.read_file path
    with Sys_error msg -> fail "%s" msg
  in
  List.iter
    (fun w ->
      match w with
      | Serve.Access_log.Torn_tail _ ->
          Printf.printf "%s: warning: %s\n" path
            (Serve.Access_log.warning_to_string w)
      | Serve.Access_log.Bad_record _ ->
          fail "%s: %s" path (Serve.Access_log.warning_to_string w))
    warnings;
  List.iter
    (fun (r : Serve.Access_log.record) ->
      let sum =
        List.fold_left (fun acc (_, ms) -> acc +. ms) 0. r.phases
      in
      if not (phase_sum_tolerable ~wall:r.wall_ms sum) then
        fail
          "%s: req %d: phase durations sum to %.3f ms, exceeding the \
           %.3f ms wall time"
          path r.req sum r.wall_ms)
    records;
  Printf.printf "%s: valid access log (%d records)\n" path
    (List.length records)

let () =
  match Array.to_list Sys.argv with
  | [ _; "trace"; path ] -> check_trace path 1
  | [ _; "trace"; path; "--min-lanes"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> check_trace path n
      | _ -> fail "--min-lanes expects a positive integer, got %S" n)
  | [ _; "metrics"; path ] -> check_metrics path
  | [ _; "accesslog"; path ] -> check_accesslog path
  | _ -> usage ()
