#!/usr/bin/env bash
# CI entry point: build, run the full test suite (once sequential, once
# with TECORE_JOBS=4 to exercise the multicore paths, once with
# TECORE_FAULTS injecting worker crashes and slow grounding to exercise
# the robustness paths, plus the serve suites once more with
# TECORE_LANES=4 to exercise the multi-lane resolver), audit the CLI
# exit-code contract, then
# smoke-run the benchmark harness and check that it produced valid
# machine-readable observability, parallel-speedup and anytime-curve
# output. Fails on the first broken step.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (jobs=1 default) =="
dune runtest

echo "== dune runtest (TECORE_JOBS=4) =="
TECORE_JOBS=4 dune runtest --force

echo "== dune runtest (TECORE_FAULTS=worker_crash,slow_ground) =="
# Deterministic fault injection: task 1 of every solver portfolio
# crashes and every grounding closure round sleeps 1 ms. The suite must
# still pass — crash containment keeps results sound at every job count.
TECORE_FAULTS=worker_crash,slow_ground dune runtest --force

echo "== serve suites (TECORE_LANES=4) =="
# The serve test matrix re-runs multi-lane: the differential and
# lane-determinism oracles, the journal crash oracles and the wire/lane
# fuzz must hold at any lane count — responses may only differ by the
# lane observability fields the tests account for.
for t in test_serve test_serve_concurrent test_journal test_fuzz; do
  TECORE_LANES=4 dune exec "test/$t.exe"
done

echo "== CLI exit codes =="
CLI=_build/default/bin/tecore_cli.exe
expect_exit() { # expect_exit CODE DESCRIPTION CMD...
  local want="$1" what="$2"; shift 2
  local got=0
  "$@" >/dev/null 2>&1 || got=$?
  if [ "$got" -ne "$want" ]; then
    echo "exit-code audit: $what: expected $want, got $got" >&2
    exit 1
  fi
}
expect_exit 0 "clean resolve" \
  "$CLI" resolve -d data/ranieri.tq -r data/ranieri.rules
expect_exit 4 "missing data file" \
  "$CLI" resolve -d no-such-file.tq
expect_exit 4 "missing rules file" \
  "$CLI" resolve -d data/ranieri.tq -r no-such-rules
BAD_RULES=$(mktemp)
printf 'rule broken 1.0: p(x)@t => .\n' > "$BAD_RULES"
expect_exit 1 "malformed rules" \
  "$CLI" resolve -d data/ranieri.tq -r "$BAD_RULES"
# Duplicate rule names => Error-level translator note => Rejected.
printf 'rule dup 1.0: ex:coach(x, y)@t => ex:worksFor(x, y)@t .\nrule dup 2.0: ex:playsFor(x, y)@t => ex:worksFor(x, y)@t .\n' > "$BAD_RULES"
expect_exit 2 "translator-rejected program" \
  "$CLI" resolve -d data/ranieri.tq -r "$BAD_RULES"
rm -f "$BAD_RULES"
expect_exit 3 "deadline expiry under --on-timeout fail" \
  "$CLI" resolve -d data/football.tq -r data/football.rules \
  --timeout 0.001 --on-timeout fail
expect_exit 0 "deadline expiry under best-effort" \
  "$CLI" resolve -d data/football.tq -r data/football.rules \
  --timeout 0.01 --on-timeout best-effort
"$CLI" resolve -d data/football.tq -r data/football.rules \
  --timeout 0.01 --on-timeout best-effort --json \
  | grep -q '"deadline":{"status":"\(timed_out\|degraded\)"' \
  || { echo "best-effort JSON lacks a non-completed deadline status" >&2; exit 1; }

echo "== telemetry smoke (trace + metrics + event log) =="
TRACE_OUT=$(mktemp) METRICS_OUT=$(mktemp) LOG_OUT=$(mktemp)
"$CLI" resolve -d data/football.tq -r data/football.rules \
  --jobs 4 --stats --log-level debug \
  --trace-out "$TRACE_OUT" --metrics-out "$METRICS_OUT" \
  >/dev/null 2>"$LOG_OUT"
# The Chrome trace must parse as JSON, contain only complete "X" events
# with ph/ts/dur/pid/tid, and show at least one worker lane besides the
# coordinator at --jobs 4.
_build/default/tools/telemetry_check.exe trace "$TRACE_OUT" --min-lanes 2
# The metrics file must pass the OpenMetrics grammar check.
_build/default/tools/telemetry_check.exe metrics "$METRICS_OUT"
# --log-level debug must have streamed pipeline events to stderr.
grep -q '^\[debug\]' "$LOG_OUT" \
  || { echo "--log-level debug produced no debug events on stderr" >&2; exit 1; }
grep -q 'engine.selected' "$LOG_OUT" \
  || { echo "event stream lacks engine.selected" >&2; exit 1; }
rm -f "$TRACE_OUT" "$METRICS_OUT" "$LOG_OUT"

echo "== disabled observability leaves output unchanged =="
# Without --stats/--trace*/--log-level/--*-out the telemetry layer must
# stay off: the JSON output carries no obs report, event log or series.
"$CLI" resolve -d data/ranieri.tq -r data/ranieri.rules --json \
  | grep -q '"obs"\|"events"\|"series"' \
  && { echo "plain --json output grew observability fields" >&2; exit 1; }
# And two plain runs are identical once the (pre-existing) wall-clock
# timing values are normalised — no telemetry keys, event text or
# series bleed into the default output.
PLAIN_A=$(mktemp) PLAIN_B=$(mktemp)
normalize() { sed -E 's/[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?/N/g' "$1"; }
"$CLI" resolve -d data/ranieri.tq -r data/ranieri.rules --json > "$PLAIN_A"
"$CLI" resolve -d data/ranieri.tq -r data/ranieri.rules --json > "$PLAIN_B"
diff <(normalize "$PLAIN_A") <(normalize "$PLAIN_B") >/dev/null \
  || { echo "plain --json output differs beyond timing values across runs" >&2; exit 1; }
rm -f "$PLAIN_A" "$PLAIN_B"

echo "== session script golden transcripts =="
# The golden suite under data/ already ran as part of dune runtest; this
# re-runs it in isolation so a transcript drift fails with a focused
# diff. The rules shield TECORE_FAULTS/TECORE_TIMEOUT_MS/TECORE_JOBS,
# so the transcripts are stable under the fault sweep above.
dune build @data/runtest

echo "== incremental fallback under TECORE_FAULTS=incr_timeout =="
# With the incremental-replay fault armed, every stateful resolve must
# fall back to a fresh ground — cache=fallback in the transcript, never
# a stale answer. The differential fault test (test_incremental.ml)
# already proves fallback == fresh; here we check the CLI surfaces it.
FAULT_OUT=$(mktemp)
TECORE_FAULTS=incr_timeout "$CLI" session --script data/session_demo.script \
  > "$FAULT_OUT"
grep -q 'cache=fallback' "$FAULT_OUT" \
  || { echo "incr_timeout fault did not surface cache=fallback" >&2; exit 1; }
grep -q 'cache=replay' "$FAULT_OUT" \
  && { echo "incr_timeout fault did not disable incremental replay" >&2; exit 1; }
# Apart from the cache= outcome and timing-free objective values, the
# faulted transcript must match the golden one: fallback changes the
# path taken, not the resolution.
diff <(sed 's/cache=[a-z]*/cache=X/' "$FAULT_OUT") \
     <(sed 's/cache=[a-z]*/cache=X/' data/session_demo.golden) \
  || { echo "fallback transcript diverged from golden resolution" >&2; exit 1; }
rm -f "$FAULT_OUT"

echo "== serve smoke (start, request, shutdown; exit-code contract) =="
# A real daemon on a Unix socket: start it, drive a session through the
# wire protocol with the client, stop it with the shutdown verb, and
# check the whole lifecycle exits 0. The serve_*.golden transcripts
# (part of @data/runtest above) cover the protocol surface; this checks
# the long-running daemon path and the documented exit codes.
SERVE_SOCK=$(mktemp -u)
"$CLI" serve --socket "$SERVE_SOCK" >/dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "tecore serve did not bind $SERVE_SOCK" >&2; exit 1; }
expect_exit 0 "serve round-trip" \
  "$CLI" client --socket "$SERVE_SOCK" \
  --send "hello ci" --send "load data/ranieri.tq" --send "resolve" \
  --send "quit"
expect_exit 1 "typed error on a malformed request" \
  "$CLI" client --socket "$SERVE_SOCK" --send "bogus request"
expect_exit 0 "shutdown verb" \
  "$CLI" client --socket "$SERVE_SOCK" --send "shutdown"
SERVE_EXIT=0; wait "$SERVE_PID" || SERVE_EXIT=$?
[ "$SERVE_EXIT" -eq 0 ] \
  || { echo "tecore serve exited $SERVE_EXIT after shutdown verb" >&2; exit 1; }
expect_exit 4 "unbindable listen address" \
  "$CLI" serve --socket /no-such-dir/tecore.sock
expect_exit 4 "client against a dead server" \
  "$CLI" client --socket "$SERVE_SOCK" --send "ping"

echo "== serve access-log smoke (tracing, request ids, analyzer) =="
# A daemon with --access-log traces every request: responses carry
# unique, monotone request ids, the JSON-lines log validates (schema +
# phase-sum sanity), and the offline analyzer digests it.
ACCESS_LOG=$(mktemp) ACCESS_SOCK=$(mktemp -u) ACCESS_OUT=$(mktemp)
"$CLI" serve --socket "$ACCESS_SOCK" --access-log "$ACCESS_LOG" \
  >/dev/null 2>&1 &
ACCESS_PID=$!
for _ in $(seq 50); do [ -S "$ACCESS_SOCK" ] && break; sleep 0.1; done
[ -S "$ACCESS_SOCK" ] || { echo "access-log smoke: serve did not bind" >&2; exit 1; }
"$CLI" client --socket "$ACCESS_SOCK" \
  --send "hello ci-trace" --send "open" \
  --send "constraint one_team: ex:playsFor(x, y)@t ^ ex:playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) ." \
  --send "assert ex:P1 ex:playsFor ex:T1 [2000,2004] 0.9 ." \
  --send "assert ex:P1 ex:playsFor ex:T2 [2002,2006] 0.8 ." \
  --send "resolve" \
  --send "tail 5" \
  --send "quit" > "$ACCESS_OUT"
expect_exit 0 "access-log smoke: shutdown" \
  "$CLI" client --socket "$ACCESS_SOCK" --send "shutdown"
wait "$ACCESS_PID" || { echo "access-log serve exited non-zero" >&2; exit 1; }
# Every response line leads with its request id (the tail payload nests
# more req fields, so only the leading one counts) — all present,
# unique, strictly increasing.
REQ_IDS=$(sed -n 's/^\(ok\|err\) {"req":\([0-9]*\).*/\2/p' "$ACCESS_OUT")
[ "$(echo "$REQ_IDS" | wc -l)" -eq 8 ] \
  || { echo "access-log smoke: not every response carries a request id" >&2; cat "$ACCESS_OUT" >&2; exit 1; }
[ "$(echo "$REQ_IDS" | sort -n -u | wc -l)" -eq 8 ] \
  || { echo "access-log smoke: request ids are not unique" >&2; exit 1; }
[ "$(echo "$REQ_IDS" | sort -n)" = "$REQ_IDS" ] \
  || { echo "access-log smoke: request ids are not monotone" >&2; exit 1; }
# The log itself: resolve attributed to ground/solve, every line valid.
grep -q '"verb":"resolve"' "$ACCESS_LOG" \
  || { echo "access-log smoke: no resolve record in the log" >&2; exit 1; }
grep -q '"ground":' "$ACCESS_LOG" \
  || { echo "access-log smoke: resolve record lacks a ground phase" >&2; exit 1; }
_build/default/tools/telemetry_check.exe accesslog "$ACCESS_LOG"
"$CLI" logstat "$ACCESS_LOG" --top 3 > /dev/null \
  || { echo "access-log smoke: tecore logstat failed" >&2; exit 1; }
rm -f "$ACCESS_LOG" "$ACCESS_OUT"
# Zero-cost contract: without --access-log/--trace-every the server's
# responses stay byte-identical to previous releases — in particular,
# no request ids.
PLAIN_SOCK=$(mktemp -u) PLAIN_OUT=$(mktemp)
"$CLI" serve --socket "$PLAIN_SOCK" >/dev/null 2>&1 &
PLAIN_PID=$!
for _ in $(seq 50); do [ -S "$PLAIN_SOCK" ] && break; sleep 0.1; done
[ -S "$PLAIN_SOCK" ] || { echo "zero-cost smoke: serve did not bind" >&2; exit 1; }
"$CLI" client --socket "$PLAIN_SOCK" \
  --send "hello ci-plain" --send "ping" --send "stat" --send "quit" \
  > "$PLAIN_OUT"
grep -q '"req":' "$PLAIN_OUT" \
  && { echo "zero-cost smoke: untraced responses grew request ids" >&2; cat "$PLAIN_OUT" >&2; exit 1; }
expect_exit 0 "zero-cost smoke: shutdown" \
  "$CLI" client --socket "$PLAIN_SOCK" --send "shutdown"
wait "$PLAIN_PID" || { echo "zero-cost serve exited non-zero" >&2; exit 1; }
rm -f "$PLAIN_OUT"

echo "== serve crash smoke (SIGKILL mid-journal-append, recover) =="
# A durable daemon killed with SIGKILL half-way through a journal
# write must come back with exactly the acked prefix: start it with
# the journal_torn fault armed (the 6th append on the session's
# journal writes half a frame and stalls), drive five acked records
# in, let the sixth tear, kill -9, restart over the same state dir,
# and check the recovered session resolves identically to an
# uninterrupted session fed the same five records.
CRASH_DIR=$(mktemp -d)
CRASH_SOCK=$(mktemp -u)
TECORE_FAULTS=journal_torn:6 "$CLI" serve \
  --socket "$CRASH_SOCK" --state-dir "$CRASH_DIR" >/dev/null 2>&1 &
CRASH_PID=$!
for _ in $(seq 50); do [ -S "$CRASH_SOCK" ] && break; sleep 0.1; done
[ -S "$CRASH_SOCK" ] || { echo "crash smoke: serve did not bind $CRASH_SOCK" >&2; exit 1; }
expect_exit 0 "crash smoke: acked prefix" \
  "$CLI" client --socket "$CRASH_SOCK" \
  --send "hello crash" --send "open" \
  --send "assert ex:P1 ex:playsFor ex:T1 [2000,2004] 0.9 ." \
  --send "assert ex:P1 ex:playsFor ex:T2 [2002,2006] 0.8 ." \
  --send "assert ex:P2 ex:playsFor ex:T1 [2001,2005] 0.7 ." \
  --send "assert ex:P2 ex:playsFor ex:T2 [2003,2007] 0.6 ."
# The sixth append tears mid-frame and stalls before the ack; the
# client must hang (timeout exits 124), at which point the daemon is
# killed hard with the torn record on disk.
TORN_EXIT=0
timeout 5 "$CLI" client --socket "$CRASH_SOCK" \
  --send "hello crash" \
  --send "assert ex:P3 ex:playsFor ex:T3 [2004,2008] 0.5 ." \
  >/dev/null 2>&1 || TORN_EXIT=$?
[ "$TORN_EXIT" -eq 124 ] \
  || { echo "crash smoke: torn append did not stall the ack (exit $TORN_EXIT)" >&2; exit 1; }
kill -9 "$CRASH_PID" 2>/dev/null || true
wait "$CRASH_PID" 2>/dev/null || true

# Restart (no fault) over the same state dir, binding elsewhere and
# moving the socket into place so a client retrying against the stale
# socket only ever sees ECONNREFUSED or the live daemon — this is the
# documented --retries scenario (a daemon mid-restart).
RETRY_OUT=$(mktemp)
"$CLI" client --socket "$CRASH_SOCK" --retries 20 --backoff 100 \
  --send "hello crash" --send "stat" > "$RETRY_OUT" &
RETRY_PID=$!
"$CLI" serve --socket "$CRASH_SOCK.next" --state-dir "$CRASH_DIR" \
  >/dev/null 2>&1 &
CRASH_PID=$!
for _ in $(seq 50); do [ -S "$CRASH_SOCK.next" ] && break; sleep 0.1; done
[ -S "$CRASH_SOCK.next" ] || { echo "crash smoke: restarted serve did not bind" >&2; exit 1; }
mv "$CRASH_SOCK.next" "$CRASH_SOCK"
RETRY_EXIT=0; wait "$RETRY_PID" || RETRY_EXIT=$?
[ "$RETRY_EXIT" -eq 0 ] \
  || { echo "client --retries did not ride out the restart (exit $RETRY_EXIT)" >&2; exit 1; }
grep -q '"recovery":"partial"' "$RETRY_OUT" \
  || { echo "crash smoke: recovered hello does not report a partial recovery" >&2; cat "$RETRY_OUT" >&2; exit 1; }
grep -q '"facts":4' "$RETRY_OUT" \
  || { echo "crash smoke: recovered stat does not report the 4 acked facts" >&2; cat "$RETRY_OUT" >&2; exit 1; }
# The recovered resolution must match an uninterrupted session fed the
# same acked prefix (a fresh session on the same daemon and engine).
CRASH_OBJ=$("$CLI" client --socket "$CRASH_SOCK" \
  --send "hello crash" --send "resolve" | grep -o '"objective":[0-9.eE+-]*')
REF_OBJ=$("$CLI" client --socket "$CRASH_SOCK" \
  --send "hello crash-ref" --send "open" \
  --send "assert ex:P1 ex:playsFor ex:T1 [2000,2004] 0.9 ." \
  --send "assert ex:P1 ex:playsFor ex:T2 [2002,2006] 0.8 ." \
  --send "assert ex:P2 ex:playsFor ex:T1 [2001,2005] 0.7 ." \
  --send "assert ex:P2 ex:playsFor ex:T2 [2003,2007] 0.6 ." \
  --send "resolve" | grep -o '"objective":[0-9.eE+-]*')
[ -n "$CRASH_OBJ" ] && [ "$CRASH_OBJ" = "$REF_OBJ" ] \
  || { echo "crash smoke: recovered objective ($CRASH_OBJ) != reference ($REF_OBJ)" >&2; exit 1; }
expect_exit 0 "crash smoke: shutdown" \
  "$CLI" client --socket "$CRASH_SOCK" --send "shutdown"
wait "$CRASH_PID" || { echo "restarted serve exited non-zero" >&2; exit 1; }
rm -rf "$CRASH_DIR"; rm -f "$CRASH_SOCK" "$RETRY_OUT"

echo "== bench serve --check (committed BENCH_serve.json) =="
# Re-measures wire latency/throughput at 1..N concurrent sessions and
# compares against the committed baseline (generous tolerance), plus
# the committed warm-beats-cold headline at one session.
BENCH_FAST=1 dune exec bench/main.exe -- serve --check

echo "== bench durability --check (committed BENCH_durability.json) =="
# Re-measures the warm edit-path ack latency with no journal, an
# unfsynced journal and a per-record fsync, compares each cell against
# the committed baseline (generous tolerance), and re-asserts the
# headline on both the committed and the live numbers: journaling
# without fsync stays within a small factor of the in-memory ack.
BENCH_FAST=1 dune exec bench/main.exe -- durability --check

echo "== bench incr --check (committed BENCH_incremental.json) =="
# Re-measures fresh vs incremental and compares against the committed
# baseline (generous tolerance), and re-asserts the committed delta=1
# speedup > 1: an incremental resolve that stopped beating a fresh one
# is a regression even if both got faster.
BENCH_FAST=1 dune exec bench/main.exe -- incr --check

echo "== bench obs --check (committed BENCH_obs.json) =="
# Against the committed baseline, before the smoke step regenerates the
# file; the tolerance is generous (timing noise, different machines) --
# this gates schema drift and order-of-magnitude regressions only.
BENCH_FAST=1 dune exec bench/main.exe -- obs --check

echo "== bench par --check (committed BENCH_parallel.json) =="
# Gates on the committed numbers: the million-fact memory ratio must
# stay >= 3x below the row-oriented baseline, and the grounding speedup
# record must carry either a passing speedup or a logged skip reason.
# Also re-measures the cheap 10^5 memory regime in a child process and
# compares its peak against the committed one (memory is near
# machine-independent, so the tolerance is tight), and re-runs the
# speedup gate live when the hardware has >= 2 cores.
BENCH_FAST=1 dune exec bench/main.exe -- par --check

echo "== bench smoke (e1 + obs + par + deadline) =="
rm -f BENCH_obs.json BENCH_parallel.json BENCH_deadline.json
BENCH_FAST=1 dune exec bench/main.exe -- --smoke

echo "== validate BENCH_obs.json =="
test -s BENCH_obs.json || { echo "BENCH_obs.json missing or empty" >&2; exit 1; }
case "$(head -c 1 BENCH_obs.json)" in
  '{') ;;
  *) echo "BENCH_obs.json does not start with '{'" >&2; exit 1 ;;
esac

echo "== validate BENCH_parallel.json =="
test -s BENCH_parallel.json || { echo "BENCH_parallel.json missing or empty" >&2; exit 1; }
case "$(head -c 1 BENCH_parallel.json)" in
  '{') ;;
  *) echo "BENCH_parallel.json does not start with '{'" >&2; exit 1 ;;
esac

echo "== validate BENCH_deadline.json =="
test -s BENCH_deadline.json || { echo "BENCH_deadline.json missing or empty" >&2; exit 1; }
case "$(head -c 1 BENCH_deadline.json)" in
  '{') ;;
  *) echo "BENCH_deadline.json does not start with '{'" >&2; exit 1 ;;
esac
# The bench already re-parses all three files with Obs.Json and fails
# on malformed output, missing ground/encode/solve stages, objectives
# that differ across job counts, or anytime points with unknown status
# tags; the checks above only guard against the files not being
# written at all.

# BENCH_obs.json and BENCH_parallel.json are committed (the --check
# baselines); restore them so CI leaves the working tree clean.
# BENCH_deadline.json is ignored.
git checkout -- BENCH_obs.json BENCH_parallel.json 2>/dev/null || true

echo "CI OK"
