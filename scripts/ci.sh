#!/usr/bin/env bash
# CI entry point: build, run the full test suite (once sequential, once
# with TECORE_JOBS=4 to exercise the multicore paths), then smoke-run
# the benchmark harness and check that it produced valid machine-readable
# observability and parallel-speedup output. Fails on the first broken
# step.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (jobs=1 default) =="
dune runtest

echo "== dune runtest (TECORE_JOBS=4) =="
TECORE_JOBS=4 dune runtest --force

echo "== bench smoke (e1 + obs + par) =="
rm -f BENCH_obs.json BENCH_parallel.json
BENCH_FAST=1 dune exec bench/main.exe -- --smoke

echo "== validate BENCH_obs.json =="
test -s BENCH_obs.json || { echo "BENCH_obs.json missing or empty" >&2; exit 1; }
case "$(head -c 1 BENCH_obs.json)" in
  '{') ;;
  *) echo "BENCH_obs.json does not start with '{'" >&2; exit 1 ;;
esac

echo "== validate BENCH_parallel.json =="
test -s BENCH_parallel.json || { echo "BENCH_parallel.json missing or empty" >&2; exit 1; }
case "$(head -c 1 BENCH_parallel.json)" in
  '{') ;;
  *) echo "BENCH_parallel.json does not start with '{'" >&2; exit 1 ;;
esac
# The bench already re-parses both files with Obs.Json and fails on
# malformed output, missing ground/encode/solve stages, or objectives
# that differ across job counts; the checks above only guard against
# the files not being written at all.

echo "CI OK"
