#!/usr/bin/env bash
# CI entry point: build, run the full test suite, then smoke-run the
# benchmark harness and check that it produced valid machine-readable
# observability output. Fails on the first broken step.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (e1 + obs) =="
rm -f BENCH_obs.json
BENCH_FAST=1 dune exec bench/main.exe -- --smoke

echo "== validate BENCH_obs.json =="
test -s BENCH_obs.json || { echo "BENCH_obs.json missing or empty" >&2; exit 1; }
case "$(head -c 1 BENCH_obs.json)" in
  '{') ;;
  *) echo "BENCH_obs.json does not start with '{'" >&2; exit 1 ;;
esac
# The bench already re-parses the file with Obs.Json and fails on
# malformed output or missing ground/encode/solve stages; the checks
# above only guard against the file not being written at all.

echo "CI OK"
