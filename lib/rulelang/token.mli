(** Tokens of the rule and constraint language. *)

type t =
  | Ident of string       (** predicates, variables, constants, keywords *)
  | Number of float
  | String of string      (** double-quoted literal *)
  | Interval of int * int (** [lo,hi] *)
  | Lparen
  | Rparen
  | Comma
  | Colon
  | At                    (** @, introduces a temporal term *)
  | And                   (** ^ *)
  | Arrow                 (** => or -> *)
  | Eq                    (** = or == *)
  | Neq                   (** != *)
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Star
  | Dot
  | Eof

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
