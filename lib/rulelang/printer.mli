(** Serialise rules back to the surface syntax.

    Rules store predicates and IRI constants fully expanded; the parser
    only accepts prefixed names. Pass [shrink] (typically
    [Kg.Namespace.shrink ns]) to compact them so the output round-trips
    through {!Parser.parse_string} — the session state dump relies on
    this. The default identity prints the stored (expanded) names, for
    display. *)

val pp_rule : Format.formatter -> Logic.Rule.t -> unit
(** Display form: stored (expanded) names, no shrinking. *)

val pp_program : Format.formatter -> Logic.Rule.t list -> unit

val rule_to_string : ?shrink:(string -> string) -> Logic.Rule.t -> string

val program_to_string :
  ?shrink:(string -> string) -> Logic.Rule.t list -> string
