(** Serialise rules back to the surface syntax (round-trips through
    {!Parser.parse_string}). *)

val pp_rule : Format.formatter -> Logic.Rule.t -> unit

val pp_program : Format.formatter -> Logic.Rule.t list -> unit

val rule_to_string : Logic.Rule.t -> string

val program_to_string : Logic.Rule.t list -> string
