(** Recursive-descent parser for the rule and constraint language.

    Surface syntax (one statement per declaration, mirroring the paper's
    Figures 4 and 6):

    {v
    rule f1 2.5:  playsFor(x, y)@t => worksFor(x, y)@t .
    rule f2 1.6:  worksFor(x, y)@t ^ locatedIn(y, z)@t2 ^ overlaps(t, t2)
                  => livesIn(x, z)@(t * t2) .
    rule f3 2.9:  playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ t - t2 < 20
                  => TeenPlayer(x) .
    constraint c1: birthDate(x, y)@t ^ deathDate(x, z)@t2 => before(t, t2) .
    constraint c2: coach(x, y)@t ^ coach(x, z)@t2 ^ y != z
                   => disjoint(t, t2) .
    constraint c3: bornIn(x, y)@t ^ bornIn(x, z)@t2 ^ overlaps(t, t2)
                   => y = z .
    v}

    Conventions:
    - identifiers starting with a lower-case letter are variables;
      everything else ([Chelsea], [ex:CR], [1951], ["literal"]) is a
      constant — the paper's Datalog convention;
    - [@t] attaches a validity interval to an atom; [@(t * t2)] is
      interval intersection, [@(t + t2)] the hull (heads only);
    - conditions use Allen relation names ([before], [overlaps],
      [disjoint], [intersects], ...), arithmetic over [start(t)],
      [end(t)], [length(t)], [value(x)] and integers, and [=]/[!=]
      between object terms;
    - in arithmetic, a bare variable that is used as a temporal variable
      elsewhere in the rule denotes its interval start — so the paper's
      [t - t2 < 20] (age at time [t]) reads exactly as written;
    - the paper's quad notation [quad(x, playsFor, y, t)] is accepted as
      sugar for [playsFor(x, y)@t] (the predicate position must be a
      constant);
    - a [constraint] without a weight is hard; [rule]s take an optional
      weight after their name;
    - [=>] or [->] separates body and head; [false] as head is a denial;
      statements end with an optional [.]. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string :
  ?namespace:Kg.Namespace.t -> string -> (Logic.Rule.t list, error) result
(** Parse a program. When a namespace is supplied, predicate names and
    IRI constants are expanded through it. *)

val parse_file :
  ?namespace:Kg.Namespace.t -> string -> (Logic.Rule.t list, error) result

val parse_rule :
  ?namespace:Kg.Namespace.t -> string -> (Logic.Rule.t, string) result
(** Parse a single declaration (convenience for tests and the CLI). *)

val parse_query :
  ?namespace:Kg.Namespace.t ->
  string ->
  (Logic.Atom.t list * Logic.Cond.t list, error) result
(** Parse a body-only expression — a temporal conjunctive query such as
    ["coach(x, y)@t ^ coach(x, z)@t2 ^ intersects(t, t2)"]. Bare temporal
    variables in arithmetic are resolved exactly as in rule bodies. *)
