type t =
  | Ident of string
  | Number of float
  | String of string
  | Interval of int * int
  | Lparen
  | Rparen
  | Comma
  | Colon
  | At
  | And
  | Arrow
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Star
  | Dot
  | Eof

let pp ppf = function
  | Ident s -> Format.fprintf ppf "%s" s
  | Number f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Interval (a, b) -> Format.fprintf ppf "[%d,%d]" a b
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Comma -> Format.pp_print_string ppf ","
  | Colon -> Format.pp_print_string ppf ":"
  | At -> Format.pp_print_string ppf "@"
  | And -> Format.pp_print_string ppf "^"
  | Arrow -> Format.pp_print_string ppf "=>"
  | Eq -> Format.pp_print_string ppf "="
  | Neq -> Format.pp_print_string ppf "!="
  | Lt -> Format.pp_print_string ppf "<"
  | Le -> Format.pp_print_string ppf "<="
  | Gt -> Format.pp_print_string ppf ">"
  | Ge -> Format.pp_print_string ppf ">="
  | Plus -> Format.pp_print_string ppf "+"
  | Minus -> Format.pp_print_string ppf "-"
  | Star -> Format.pp_print_string ppf "*"
  | Dot -> Format.pp_print_string ppf "."
  | Eof -> Format.pp_print_string ppf "<eof>"

let equal a b =
  match (a, b) with
  | Ident x, Ident y -> String.equal x y
  | Number x, Number y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Interval (a1, b1), Interval (a2, b2) -> a1 = a2 && b1 = b2
  | _ -> a = b
