open Logic

let pp_term ppf = function
  | Lterm.Var v -> Format.pp_print_string ppf v
  | Lterm.Const c -> Kg.Term.pp ppf c

let rec pp_ttime ppf = function
  | Lterm.Tvar v -> Format.pp_print_string ppf v
  | Lterm.Tconst i -> Kg.Interval.pp ppf i
  | Lterm.Tinter (a, b) -> Format.fprintf ppf "(%a * %a)" pp_ttime a pp_ttime b
  | Lterm.Thull (a, b) -> Format.fprintf ppf "(%a + %a)" pp_ttime a pp_ttime b

let pp_atom ppf (a : Atom.t) =
  Format.fprintf ppf "%s(%a)" a.predicate
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_term)
    a.args;
  match a.time with
  | None -> ()
  | Some tt -> Format.fprintf ppf "@@%a" pp_ttime tt

let rec pp_arith ppf = function
  | Cond.Num n -> Format.pp_print_int ppf n
  | Cond.Start_of tt -> Format.fprintf ppf "start(%a)" pp_ttime tt
  | Cond.End_of tt -> Format.fprintf ppf "end(%a)" pp_ttime tt
  | Cond.Length_of tt -> Format.fprintf ppf "length(%a)" pp_ttime tt
  | Cond.Value_of t -> Format.fprintf ppf "value(%a)" pp_term t
  | Cond.Add (a, b) -> Format.fprintf ppf "%a + %a" pp_arith a pp_arith b
  | Cond.Sub (a, b) -> Format.fprintf ppf "%a - %a" pp_arith a pp_arith b

let cmp_name = function
  | Cond.Lt -> "<"
  | Cond.Le -> "<="
  | Cond.Gt -> ">"
  | Cond.Ge -> ">="
  | Cond.Eq_cmp -> "="
  | Cond.Ne_cmp -> "!="

let pp_cond ppf = function
  | Cond.Allen (set, a, b) ->
      let name =
        if Kg.Allen.Set.equal set Kg.Allen.Set.disjoint then "disjoint"
        else if Kg.Allen.Set.equal set Kg.Allen.Set.intersects then
          "intersects"
        else
          match Kg.Allen.Set.to_list set with
          | [ r ] -> Kg.Allen.name r
          | _ -> Format.asprintf "%a" Kg.Allen.Set.pp set
      in
      Format.fprintf ppf "%s(%a, %a)" name pp_ttime a pp_ttime b
  | Cond.Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_arith a (cmp_name op) pp_arith b
  | Cond.Eq (a, b) -> Format.fprintf ppf "%a = %a" pp_term a pp_term b
  | Cond.Neq (a, b) -> Format.fprintf ppf "%a != %a" pp_term a pp_term b

let pp_rule ppf (r : Rule.t) =
  let kind = if Rule.is_inference r then "rule" else "constraint" in
  Format.fprintf ppf "%s %s" kind r.name;
  (match r.weight with
  | Some w -> Format.fprintf ppf " %g" w
  | None -> if Rule.is_inference r then () else ());
  Format.fprintf ppf ": ";
  let pp_sep ppf () = Format.pp_print_string ppf " ^ " in
  Format.pp_print_list ~pp_sep pp_atom ppf r.body;
  if r.conditions <> [] then begin
    pp_sep ppf ();
    Format.pp_print_list ~pp_sep pp_cond ppf r.conditions
  end;
  Format.fprintf ppf " => ";
  (match r.head with
  | Rule.Infer a -> pp_atom ppf a
  | Rule.Require c -> pp_cond ppf c
  | Rule.Bottom -> Format.pp_print_string ppf "false");
  Format.fprintf ppf " ."

let pp_program ppf rules =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    pp_rule ppf rules

let rule_to_string r = Format.asprintf "%a" pp_rule r

let program_to_string rules = Format.asprintf "@[<v>%a@]" pp_program rules
