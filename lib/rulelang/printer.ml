open Logic

(* [shrink] compacts full IRIs back to the prefixed names the parser
   accepts (predicates and IRI constants are stored expanded). The
   default identity keeps display output unchanged; the session's
   state dump passes [Kg.Namespace.shrink] so printed rules re-parse. *)

let pp_term ~shrink ppf = function
  | Lterm.Var v -> Format.pp_print_string ppf v
  | Lterm.Const (Kg.Term.Iri name) -> Format.pp_print_string ppf (shrink name)
  | Lterm.Const c -> Kg.Term.pp ppf c

let rec pp_ttime ppf = function
  | Lterm.Tvar v -> Format.pp_print_string ppf v
  | Lterm.Tconst i -> Kg.Interval.pp ppf i
  | Lterm.Tinter (a, b) -> Format.fprintf ppf "(%a * %a)" pp_ttime a pp_ttime b
  | Lterm.Thull (a, b) -> Format.fprintf ppf "(%a + %a)" pp_ttime a pp_ttime b

let pp_atom ~shrink ppf (a : Atom.t) =
  Format.fprintf ppf "%s(%a)" (shrink a.predicate)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (pp_term ~shrink))
    a.args;
  match a.time with
  | None -> ()
  | Some tt -> Format.fprintf ppf "@@%a" pp_ttime tt

let rec pp_arith ~shrink ppf = function
  | Cond.Num n -> Format.pp_print_int ppf n
  | Cond.Start_of tt -> Format.fprintf ppf "start(%a)" pp_ttime tt
  | Cond.End_of tt -> Format.fprintf ppf "end(%a)" pp_ttime tt
  | Cond.Length_of tt -> Format.fprintf ppf "length(%a)" pp_ttime tt
  | Cond.Value_of t -> Format.fprintf ppf "value(%a)" (pp_term ~shrink) t
  | Cond.Add (a, b) ->
      Format.fprintf ppf "%a + %a" (pp_arith ~shrink) a (pp_arith ~shrink) b
  | Cond.Sub (a, b) ->
      Format.fprintf ppf "%a - %a" (pp_arith ~shrink) a (pp_arith ~shrink) b

let cmp_name = function
  | Cond.Lt -> "<"
  | Cond.Le -> "<="
  | Cond.Gt -> ">"
  | Cond.Ge -> ">="
  | Cond.Eq_cmp -> "="
  | Cond.Ne_cmp -> "!="

let pp_cond ~shrink ppf = function
  | Cond.Allen (set, a, b) ->
      let name =
        if Kg.Allen.Set.equal set Kg.Allen.Set.disjoint then "disjoint"
        else if Kg.Allen.Set.equal set Kg.Allen.Set.intersects then
          "intersects"
        else
          match Kg.Allen.Set.to_list set with
          | [ r ] -> Kg.Allen.name r
          | _ -> Format.asprintf "%a" Kg.Allen.Set.pp set
      in
      Format.fprintf ppf "%s(%a, %a)" name pp_ttime a pp_ttime b
  | Cond.Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" (pp_arith ~shrink) a (cmp_name op)
        (pp_arith ~shrink) b
  | Cond.Eq (a, b) ->
      Format.fprintf ppf "%a = %a" (pp_term ~shrink) a (pp_term ~shrink) b
  | Cond.Neq (a, b) ->
      Format.fprintf ppf "%a != %a" (pp_term ~shrink) a (pp_term ~shrink) b

let pp_rule_shrunk ~shrink ppf (r : Rule.t) =
  let kind = if Rule.is_inference r then "rule" else "constraint" in
  Format.fprintf ppf "%s %s" kind r.name;
  (match r.weight with
  | Some w -> Format.fprintf ppf " %s" (Prelude.Floatlit.to_lexeme w)
  | None -> if Rule.is_inference r then () else ());
  Format.fprintf ppf ": ";
  let pp_sep ppf () = Format.pp_print_string ppf " ^ " in
  Format.pp_print_list ~pp_sep (pp_atom ~shrink) ppf r.body;
  if r.conditions <> [] then begin
    pp_sep ppf ();
    Format.pp_print_list ~pp_sep (pp_cond ~shrink) ppf r.conditions
  end;
  Format.fprintf ppf " => ";
  (match r.head with
  | Rule.Infer a -> pp_atom ~shrink ppf a
  | Rule.Require c -> pp_cond ~shrink ppf c
  | Rule.Bottom -> Format.pp_print_string ppf "false");
  Format.fprintf ppf " ."

let pp_rule ppf r = pp_rule_shrunk ~shrink:Fun.id ppf r

let pp_program_shrunk ~shrink ppf rules =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    (pp_rule_shrunk ~shrink) ppf rules

let pp_program ppf rules = pp_program_shrunk ~shrink:Fun.id ppf rules

let rule_to_string ?(shrink = Fun.id) r =
  Format.asprintf "%a" (pp_rule_shrunk ~shrink) r

let program_to_string ?(shrink = Fun.id) rules =
  Format.asprintf "@[<v>%a@]" (pp_program_shrunk ~shrink) rules
