type error = { line : int; column : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.column e.message

let is_digit c = c >= '0' && c <= '9'
let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_start c = is_letter c || c = '_' || c = '?'
let is_ident_char c = is_letter c || is_digit c || c = '_' || c = '\''

exception Lex_error of error

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let line_start = ref 0 in
  let tokens = ref [] in
  let i = ref 0 in
  let error message =
    raise (Lex_error { line = !line; column = !i - !line_start + 1; message })
  in
  let push tok = tokens := (tok, !line) :: !tokens in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let skip_line () =
    while !i < n && src.[!i] <> '\n' do
      incr i
    done
  in
  let scan_int () =
    let start = !i in
    if !i < n && (src.[!i] = '-' || src.[!i] = '+') then incr i;
    while !i < n && is_digit src.[!i] do
      incr i
    done;
    match int_of_string_opt (String.sub src start (!i - start)) with
    | Some v -> v
    | None -> error "expected an integer"
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      line_start := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then skip_line ()
    else if c = '/' && peek 1 = Some '/' then skip_line ()
    else if is_digit c then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i] || src.[!i] = '.'
           || (src.[!i] = 'e' && !i + 1 < n && is_digit src.[!i + 1]))
      do
        incr i
      done;
      (* A trailing '.' is the statement terminator, not a decimal part. *)
      if !i > start && src.[!i - 1] = '.' then decr i;
      match float_of_string_opt (String.sub src start (!i - start)) with
      | Some f -> push (Token.Number f)
      | None -> error "malformed number"
    end
    else if is_ident_start c then begin
      let start = !i in
      incr i;
      let continue = ref true in
      while !continue && !i < n do
        let c = src.[!i] in
        if is_ident_char c then incr i
        else if
          (* '-' or ':' bind into the identifier only when followed by an
             identifier character: met-by, ex:coach. *)
          (c = '-' || c = ':')
          && match peek 1 with Some d -> is_ident_char d | None -> false
        then i := !i + 1
        else continue := false
      done;
      push (Token.Ident (String.sub src start (!i - start)))
    end
    else
      match c with
      | '"' ->
          let start = !i + 1 in
          incr i;
          while !i < n && src.[!i] <> '"' do
            incr i
          done;
          if !i >= n then error "unterminated string"
          else begin
            push (Token.String (String.sub src start (!i - start)));
            incr i
          end
      | '<' -> (
          (* Either <iri> or the comparison operators. *)
          let rec find_close j =
            if j >= n || src.[j] = ' ' || src.[j] = '\n' then None
            else if src.[j] = '>' then Some j
            else find_close (j + 1)
          in
          match
            (match peek 1 with
            | Some d when is_letter d -> find_close (!i + 1)
            | _ -> None)
          with
          | Some close ->
              push (Token.Ident (String.sub src (!i + 1) (close - !i - 1)));
              i := close + 1
          | None ->
              if peek 1 = Some '=' then begin
                push Token.Le;
                i := !i + 2
              end
              else begin
                push Token.Lt;
                incr i
              end)
      | '[' ->
          incr i;
          let lo = scan_int () in
          let hi =
            if !i < n && src.[!i] = ',' then begin
              incr i;
              scan_int ()
            end
            else lo
          in
          if !i < n && src.[!i] = ']' then begin
            incr i;
            push (Token.Interval (lo, hi))
          end
          else error "unterminated interval"
      | '(' -> push Token.Lparen; incr i
      | ')' -> push Token.Rparen; incr i
      | ',' -> push Token.Comma; incr i
      | ':' -> push Token.Colon; incr i
      | '@' -> push Token.At; incr i
      | '^' | '&' -> push Token.And; incr i
      | '.' -> push Token.Dot; incr i
      | '*' -> push Token.Star; incr i
      | '+' -> push Token.Plus; incr i
      | '=' ->
          if peek 1 = Some '>' then begin
            push Token.Arrow;
            i := !i + 2
          end
          else if peek 1 = Some '=' then begin
            push Token.Eq;
            i := !i + 2
          end
          else begin
            push Token.Eq;
            incr i
          end
      | '!' ->
          if peek 1 = Some '=' then begin
            push Token.Neq;
            i := !i + 2
          end
          else error "expected '=' after '!'"
      | '-' ->
          if peek 1 = Some '>' then begin
            push Token.Arrow;
            i := !i + 2
          end
          else begin
            push Token.Minus;
            incr i
          end
      | '>' ->
          if peek 1 = Some '=' then begin
            push Token.Ge;
            i := !i + 2
          end
          else begin
            push Token.Gt;
            incr i
          end
      | c -> error (Printf.sprintf "unexpected character %C" c)
  done;
  push Token.Eof;
  List.rev !tokens

let tokenize src =
  match tokenize src with
  | tokens -> Ok tokens
  | exception Lex_error e -> Error e
