open Logic

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse_error of error

type state = {
  mutable tokens : (Token.t * int) list;
  ns : Kg.Namespace.t option;
}

let fail st message =
  let line = match st.tokens with (_, l) :: _ -> l | [] -> 0 in
  raise (Parse_error { line; message })

let peek st = match st.tokens with (t, _) :: _ -> t | [] -> Token.Eof

let peek2 st = match st.tokens with _ :: (t, _) :: _ -> t | _ -> Token.Eof

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let expect st tok what =
  if Token.equal (peek st) tok then advance st
  else
    fail st
      (Format.asprintf "expected %s but found '%a'" what Token.pp (peek st))

let expand st name =
  match st.ns with Some ns -> Kg.Namespace.expand ns name | None -> name

let is_variable_name name =
  String.length name > 0
  && ((name.[0] >= 'a' && name.[0] <= 'z') || name.[0] = '?')
  && not (String.contains name ':')

let strip_qmark name =
  if String.length name > 0 && name.[0] = '?' then
    String.sub name 1 (String.length name - 1)
  else name

(* Object terms: variables (lower-case), constants (anything else). *)
let parse_term st =
  match peek st with
  | Token.Ident name ->
      advance st;
      if is_variable_name name then Lterm.var (strip_qmark name)
      else Lterm.const (Kg.Term.iri (expand st name))
  | Token.Number f ->
      advance st;
      if Float.is_integer f then Lterm.const (Kg.Term.int (int_of_float f))
      else Lterm.const (Kg.Term.float f)
  | Token.String s ->
      advance st;
      Lterm.const (Kg.Term.str s)
  | t -> fail st (Format.asprintf "expected a term, found '%a'" Token.pp t)

(* Temporal terms: t, [2000,2004], (t * t2), (t + t2). *)
let rec parse_ttime st =
  let primary () =
    match peek st with
    | Token.Ident name when is_variable_name name ->
        advance st;
        Lterm.Tvar (strip_qmark name)
    | Token.Interval (lo, hi) ->
        advance st;
        if lo > hi then fail st (Printf.sprintf "interval [%d,%d] has lo > hi" lo hi)
        else Lterm.Tconst (Kg.Interval.make lo hi)
    | Token.Lparen ->
        advance st;
        let inner = parse_ttime st in
        expect st Token.Rparen "')'";
        inner
    | t ->
        fail st
          (Format.asprintf "expected a temporal term, found '%a'" Token.pp t)
  in
  let left = primary () in
  match peek st with
  | Token.Star ->
      advance st;
      Lterm.Tinter (left, parse_ttime st)
  | Token.Plus ->
      advance st;
      Lterm.Thull (left, parse_ttime st)
  | _ -> left

let arith_functions = [ "start"; "end"; "length"; "value" ]

(* Arithmetic: integers, start/end/length of a temporal term, value of an
   object term, bare identifiers (resolved to Value_of here; a post-pass
   turns temporal ones into Start_of), sums and differences. *)
let rec parse_arith st =
  let primary () =
    match peek st with
    | Token.Number f when Float.is_integer f ->
        advance st;
        Cond.Num (int_of_float f)
    | Token.Number _ -> fail st "arithmetic literals must be integers"
    | Token.Ident f when List.mem f arith_functions && peek2 st = Token.Lparen
      -> (
        advance st;
        advance st;
        match f with
        | "start" ->
            let tt = parse_ttime st in
            expect st Token.Rparen "')'";
            Cond.Start_of tt
        | "end" ->
            let tt = parse_ttime st in
            expect st Token.Rparen "')'";
            Cond.End_of tt
        | "length" ->
            let tt = parse_ttime st in
            expect st Token.Rparen "')'";
            Cond.Length_of tt
        | _ ->
            let term = parse_term st in
            expect st Token.Rparen "')'";
            Cond.Value_of term)
    | Token.Ident name when is_variable_name name ->
        advance st;
        Cond.Value_of (Lterm.var (strip_qmark name))
    | t ->
        fail st
          (Format.asprintf "expected an arithmetic term, found '%a'" Token.pp t)
  in
  let left = primary () in
  match peek st with
  | Token.Plus ->
      advance st;
      Cond.Add (left, parse_arith st)
  | Token.Minus ->
      advance st;
      Cond.Sub (left, parse_arith st)
  | _ -> left

let comparison_op st =
  match peek st with
  | Token.Lt -> advance st; Some Cond.Lt
  | Token.Le -> advance st; Some Cond.Le
  | Token.Gt -> advance st; Some Cond.Gt
  | Token.Ge -> advance st; Some Cond.Ge
  | Token.Eq -> advance st; Some Cond.Eq_cmp
  | Token.Neq -> advance st; Some Cond.Ne_cmp
  | _ -> None

(* An element of a body or head: an atom or a condition. *)
type element =
  | E_atom of Atom.t
  | E_cond of Cond.t

let allen_of_ident name =
  match name with
  | "disjoint" -> Some Kg.Allen.Set.disjoint
  | "intersects" -> Some Kg.Allen.Set.intersects
  | _ ->
      Option.map Kg.Allen.Set.singleton (Kg.Allen.of_name name)

let parse_atom_args st =
  expect st Token.Lparen "'('";
  let rec args acc =
    let t = parse_term st in
    match peek st with
    | Token.Comma ->
        advance st;
        args (t :: acc)
    | _ ->
        expect st Token.Rparen "')'";
        List.rev (t :: acc)
  in
  args []

let parse_atom st predicate =
  let args = parse_atom_args st in
  let time =
    if Token.equal (peek st) Token.At then begin
      advance st;
      Some (parse_ttime st)
    end
    else None
  in
  (* quad(x, p, y, t) sugar: the predicate position must be constant. *)
  match (predicate, args, time) with
  | "quad", [ s; p; o; t ], None -> (
      let ttime =
        match t with
        | Lterm.Var v -> Lterm.Tvar v
        | Lterm.Const (Kg.Term.Int y) -> Lterm.Tconst (Kg.Interval.point y)
        | _ -> fail st "quad/4: the fourth argument must be a temporal term"
      in
      (* The predicate position is always a constant name, even when it
         is lower-case like the paper's quad(x, playsFor, y, t). *)
      match p with
      | Lterm.Const c -> Atom.make ~time:ttime (Kg.Term.to_string c) [ s; o ]
      | Lterm.Var v -> Atom.make ~time:ttime (expand st v) [ s; o ])
  | "quad", [ s; p; o ], None -> (
      match p with
      | Lterm.Const c -> Atom.make (Kg.Term.to_string c) [ s; o ]
      | Lterm.Var v -> Atom.make (expand st v) [ s; o ])
  | _ -> Atom.make ?time (expand st predicate) args

let parse_element st =
  match peek st with
  | Token.Ident "false" ->
      advance st;
      `Bottom
  | Token.Ident name when peek2 st = Token.Lparen -> (
      match allen_of_ident name with
      | Some set -> (
          (* Allen relation names are reserved as conditions. *)
          advance st;
          expect st Token.Lparen "'('";
          let a = parse_ttime st in
          expect st Token.Comma "','";
          let b = parse_ttime st in
          expect st Token.Rparen "')'";
          `Element (E_cond (Cond.allen_set set a b)))
      | _ when List.mem name arith_functions -> (
          let left = parse_arith st in
          match comparison_op st with
          | Some op -> `Element (E_cond (Cond.Cmp (op, left, parse_arith st)))
          | None -> fail st "expected a comparison operator")
      | _ ->
          advance st;
          `Element (E_atom (parse_atom st name)))
  | Token.Ident _ | Token.Number _ | Token.String _ -> (
      (* term-level comparison or arithmetic comparison *)
      let saved = st.tokens in
      match peek st with
      | Token.Ident name
        when is_variable_name name
             && (match peek2 st with
                | Token.Eq | Token.Neq -> true
                | _ -> false) -> (
          let left = parse_term st in
          match comparison_op st with
          | Some Cond.Eq_cmp -> `Element (E_cond (Cond.Eq (left, parse_term st)))
          | Some Cond.Ne_cmp ->
              `Element (E_cond (Cond.Neq (left, parse_term st)))
          | _ -> fail st "expected '=' or '!='")
      | _ -> (
          st.tokens <- saved;
          let left = parse_arith st in
          match comparison_op st with
          | Some op -> `Element (E_cond (Cond.Cmp (op, left, parse_arith st)))
          | None -> fail st "expected a comparison operator"))
  | t -> fail st (Format.asprintf "expected an atom or condition, found '%a'" Token.pp t)

let rec parse_body st acc =
  match parse_element st with
  | `Bottom -> fail st "'false' can only appear as a head"
  | `Element e -> (
      let acc = e :: acc in
      match peek st with
      | Token.And | Token.Comma ->
          advance st;
          parse_body st acc
      | _ -> List.rev acc)

(* After parsing, a bare variable in arithmetic (Value_of) that is used as
   a temporal variable in the body denotes its interval start — this lets
   the paper's "t' - t < 20" parse as written. *)
let resolve_temporal_arith body_tvars cond =
  let rec fix_arith a =
    match a with
    | Cond.Value_of (Lterm.Var v) when List.mem v body_tvars ->
        Cond.Start_of (Lterm.Tvar v)
    | Cond.Add (x, y) -> Cond.Add (fix_arith x, fix_arith y)
    | Cond.Sub (x, y) -> Cond.Sub (fix_arith x, fix_arith y)
    | a -> a
  in
  match cond with
  | Cond.Cmp (op, a, b) -> Cond.Cmp (op, fix_arith a, fix_arith b)
  | c -> c

let parse_statement st =
  let kind =
    match peek st with
    | Token.Ident "rule" ->
        advance st;
        `Rule
    | Token.Ident "constraint" ->
        advance st;
        `Constraint
    | t ->
        fail st
          (Format.asprintf "expected 'rule' or 'constraint', found '%a'"
             Token.pp t)
  in
  let name =
    match peek st with
    | Token.Ident n ->
        advance st;
        n
    | t -> fail st (Format.asprintf "expected a name, found '%a'" Token.pp t)
  in
  let weight =
    match peek st with
    | Token.Number w ->
        advance st;
        if w <= 0.0 then fail st "weights must be positive" else Some w
    | Token.Ident "hard" ->
        advance st;
        None
    | _ -> None
  in
  expect st Token.Colon "':'";
  let body_elements = parse_body st [] in
  expect st Token.Arrow "'=>'";
  let head =
    match parse_element st with
    | `Bottom -> Rule.Bottom
    | `Element (E_atom a) -> Rule.Infer a
    | `Element (E_cond c) -> Rule.Require c
  in
  if Token.equal (peek st) Token.Dot then advance st;
  let body_atoms =
    List.filter_map (function E_atom a -> Some a | E_cond _ -> None)
      body_elements
  in
  let body_tvars = List.concat_map Atom.tvars body_atoms in
  let conditions =
    List.filter_map
      (function
        | E_cond c -> Some (resolve_temporal_arith body_tvars c)
        | E_atom _ -> None)
      body_elements
  in
  let head =
    match head with
    | Rule.Require c -> Rule.Require (resolve_temporal_arith body_tvars c)
    | h -> h
  in
  (match (kind, head) with
  | `Constraint, Rule.Infer _ ->
      fail st (name ^ ": a constraint head must be a condition or 'false'")
  | _ -> ());
  match Rule.make ?weight ~conditions ~name ~body:body_atoms head with
  | rule -> rule
  | exception Rule.Ill_formed msg -> fail st msg

let parse_program st =
  let rec loop acc =
    match peek st with
    | Token.Eof -> List.rev acc
    | _ -> loop (parse_statement st :: acc)
  in
  loop []

let parse_string ?namespace src =
  match Lexer.tokenize src with
  | Error e ->
      Error { line = e.Lexer.line; message = e.Lexer.message }
  | Ok tokens -> (
      let st = { tokens; ns = namespace } in
      match parse_program st with
      | rules -> Ok rules
      | exception Parse_error e -> Error e)

let parse_file ?namespace path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ?namespace src

let parse_rule ?namespace src =
  match parse_string ?namespace src with
  | Ok [ rule ] -> Ok rule
  | Ok rules ->
      Error (Printf.sprintf "expected 1 declaration, found %d" (List.length rules))
  | Error e -> Error (Format.asprintf "%a" pp_error e)

let parse_query ?namespace src =
  match Lexer.tokenize src with
  | Error e -> Error { line = e.Lexer.line; message = e.Lexer.message }
  | Ok tokens -> (
      let st = { tokens; ns = namespace } in
      match
        let elements = parse_body st [] in
        if Token.equal (peek st) Token.Dot then advance st;
        (match peek st with
        | Token.Eof -> ()
        | t ->
            fail st
              (Format.asprintf "trailing input after the query: '%a'" Token.pp
                 t));
        let atoms =
          List.filter_map
            (function E_atom a -> Some a | E_cond _ -> None)
            elements
        in
        let body_tvars = List.concat_map Atom.tvars atoms in
        let conditions =
          List.filter_map
            (function
              | E_cond c -> Some (resolve_temporal_arith body_tvars c)
              | E_atom _ -> None)
            elements
        in
        if atoms = [] then fail st "a query needs at least one atom";
        (atoms, conditions)
      with
      | result -> Ok result
      | exception Parse_error e -> Error e)
