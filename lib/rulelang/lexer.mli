(** Hand-written lexer for the rule language.

    Comments run from [#] or [//] to end of line. Identifiers may contain
    letters, digits, [_], ['], [.], [-] and — to support CURIEs like
    [ex:coach] — a [:] that is directly followed by an identifier
    character (so [c2: coach(...)] still separates the rule label from
    the body). *)

type error = { line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit

val tokenize : string -> ((Token.t * int) list, error) result
(** Token stream with line numbers, ending with [Eof]. *)
