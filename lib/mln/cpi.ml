type stats = {
  iterations : int;
  active_clauses : int;
  total_clauses : int;
}

let default_solver network ~init =
  fst (Maxwalksat.solve ~init network)

let solve ?(solver = default_solver) ~init (network : Network.t) =
  let total = Array.length network.clauses in
  let active = Array.make total false in
  (* Seed with the unit clauses: evidence and priors. *)
  Array.iteri
    (fun ci (c : Network.clause) ->
      if Array.length c.literals = 1 then active.(ci) <- true)
    network.clauses;
  let build_active () =
    let clauses = ref [] in
    for ci = total - 1 downto 0 do
      if active.(ci) then clauses := network.clauses.(ci) :: !clauses
    done;
    { network with Network.clauses = Array.of_list !clauses }
  in
  let rec iterate assignment iteration =
    (* Separation: activate every clause the solution violates. *)
    let added = ref 0 in
    Array.iteri
      (fun ci c ->
        if (not active.(ci)) && not (Network.clause_satisfied c assignment)
        then begin
          active.(ci) <- true;
          incr added
        end)
      network.clauses;
    if !added = 0 then (assignment, iteration)
    else begin
      let sub = build_active () in
      (* Restart every inner solve from the caller's init: re-seeding
         from the previous round's solution lets an early,
         under-constrained round (priors only) collapse derived atoms
         and strand later rounds in a poor basin. *)
      let assignment = solver sub ~init in
      iterate assignment (iteration + 1)
    end
  in
  let first = solver (build_active ()) ~init in
  let assignment, iterations = iterate first 1 in
  let active_clauses =
    Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 active
  in
  Obs.count ~n:iterations "cpi.iterations";
  Obs.count ~n:active_clauses "cpi.active_clauses";
  Obs.count ~n:total "cpi.total_clauses";
  (assignment, { iterations; active_clauses; total_clauses = total })
