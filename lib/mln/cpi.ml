module Deadline = Prelude.Deadline

type stats = {
  iterations : int;
  active_clauses : int;
  total_clauses : int;
  status : Deadline.status;
}

let default_solver deadline network ~init =
  let assignment, stats = Maxwalksat.solve ~deadline ~init network in
  (assignment, stats.Maxwalksat.status)

let solve ?solver ?(deadline = Deadline.none) ~init (network : Network.t) =
  let solver =
    match solver with Some s -> s | None -> default_solver deadline
  in
  let total = Array.length network.clauses in
  let active = Array.make total false in
  (* Seed with the unit clauses: evidence and priors. *)
  Array.iteri
    (fun ci (c : Network.clause) ->
      if Array.length c.literals = 1 then active.(ci) <- true)
    network.clauses;
  let build_active () =
    let clauses = ref [] in
    for ci = total - 1 downto 0 do
      if active.(ci) then clauses := network.clauses.(ci) :: !clauses
    done;
    { network with Network.clauses = Array.of_list !clauses }
  in
  (* The inner solver is anytime, so each round returns a status; the
     loop's own status is the worst seen, bumped to at least [Timed_out]
     when the deadline cuts the separation loop short — the returned
     assignment then proves only the active subset, not the full
     network. *)
  let rec iterate assignment status iteration =
    (* Separation: activate every clause the solution violates. *)
    let added = ref 0 in
    Array.iteri
      (fun ci c ->
        if (not active.(ci)) && not (Network.clause_satisfied c assignment)
        then begin
          active.(ci) <- true;
          incr added
        end)
      network.clauses;
    Obs.event ~level:Obs.Events.Debug "cpi.round"
      [
        ("iteration", Obs.Events.Int iteration);
        ("activated", Obs.Events.Int !added);
      ];
    if !added = 0 then (assignment, status, iteration)
    else if Deadline.expired deadline then begin
      Obs.event ~level:Obs.Events.Warn "cpi.expired"
        [ ("iteration", Obs.Events.Int iteration) ];
      (assignment, Deadline.worst status Deadline.Timed_out, iteration)
    end
    else begin
      let sub = build_active () in
      (* Restart every inner solve from the caller's init: re-seeding
         from the previous round's solution lets an early,
         under-constrained round (priors only) collapse derived atoms
         and strand later rounds in a poor basin. *)
      let assignment, round_status = solver sub ~init in
      iterate assignment (Deadline.worst status round_status) (iteration + 1)
    end
  in
  let first, first_status = solver (build_active ()) ~init in
  let assignment, status, iterations = iterate first first_status 1 in
  let active_clauses =
    Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 active
  in
  Obs.count ~n:iterations "cpi.iterations";
  Obs.count ~n:active_clauses "cpi.active_clauses";
  Obs.count ~n:total "cpi.total_clauses";
  ( assignment,
    { iterations; active_clauses; total_clauses = total; status } )
