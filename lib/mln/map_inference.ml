module Store = Grounder.Atom_store
module Deadline = Prelude.Deadline

type solver =
  | Walk
  | Exact_bb
  | Ilp_exact

type options = {
  solver : solver;
  use_cpi : bool;
  network_config : Network.config;
  seed : int;
  max_flips : int;
  restarts : int;
  portfolio : int list;
  pool : Prelude.Pool.t;
  deadline : Deadline.t;
  ground_deadline : Deadline.t;
  decompose : bool;
  solve_cache : Decompose.cache option;
}

let default_options =
  {
    solver = Walk;
    use_cpi = true;
    network_config = Network.default_config;
    seed = 7;
    max_flips = 100_000;
    restarts = 3;
    portfolio = [];
    pool = Prelude.Pool.sequential;
    deadline = Deadline.none;
    ground_deadline = Deadline.none;
    decompose = true;
    solve_cache = None;
  }

type stats = {
  atoms : int;
  evidence_atoms : int;
  hidden_atoms : int;
  clauses : int;
  hard_clauses : int;
  closure_rounds : int;
  ground_ms : float;
  solve_ms : float;
  cpi : Cpi.stats option;
  hard_violations : int;
  objective : float;
  status : Deadline.status;
}

type outcome = {
  assignment : bool array;
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  network : Network.t;
  stats : stats;
}

(* Degradation ladder for the exact backends under a finite deadline:
   the exact search gets half the remaining budget; if it does not
   prove optimality in that slice, MaxWalkSAT takes over with whatever
   budget is left, seeded from the exact incumbent when one exists.
   The answer is then best-effort rather than provably optimal, so the
   status degrades. With an infinite deadline the ladder is inert and
   the behaviour (including exhausted-node-budget results) is exactly
   the pre-deadline one. *)
let walk_fallback options network ~init =
  Obs.event "solver.degraded"
    [
      ("from", Obs.Events.Str "exact");
      ("to", Obs.Events.Str "walksat");
      ("remaining_ms", Obs.Events.Float (Deadline.remaining_ms options.deadline));
    ];
  let assignment, _ =
    Maxwalksat.solve ~seed:options.seed ~max_flips:options.max_flips
      ~restarts:options.restarts ~portfolio:options.portfolio
      ~pool:options.pool ~deadline:options.deadline ~init network
  in
  (assignment, Deadline.Degraded)

let exact_ladder options network ~init outcome =
  match outcome with
  | Some (assignment, true) -> (assignment, Deadline.Completed)
  | Some (assignment, false) when not (Deadline.is_finite options.deadline) ->
      (assignment, Deadline.Completed)
  | None when not (Deadline.is_finite options.deadline) ->
      (init, Deadline.Completed) (* hard unsat: report via stats *)
  | Some (incumbent, false) -> walk_fallback options network ~init:incumbent
  | None -> walk_fallback options network ~init

let base_solver ?stall options network ~init =
  match options.solver with
  | Walk ->
      let assignment, stats =
        Maxwalksat.solve ~seed:options.seed ~max_flips:options.max_flips
          ~restarts:options.restarts ?stall ~portfolio:options.portfolio
          ~pool:options.pool ~deadline:options.deadline ~init network
      in
      (assignment, stats.Maxwalksat.status)
  | Exact_bb ->
      let deadline = Deadline.slice options.deadline ~frac:0.5 in
      exact_ladder options network ~init
        (match Exact.solve ~deadline network with
        | Some { assignment; optimal; _ } -> Some (assignment, optimal)
        | None -> None)
  | Ilp_exact ->
      let deadline = Deadline.slice options.deadline ~frac:0.5 in
      exact_ladder options network ~init (Ilp_encoding.solve ~deadline network)

(* Per-component solver for the decomposed path. The walk budgets are
   scaled to the component's size — a component only ever needs flips
   proportional to its own atoms, and without scaling the per-descent
   stall budget alone would make an N-component network N times more
   expensive than the global solve. Everything here is a deterministic
   function of the sub-network and the (fixed) options, never of the
   surrounding network — the purity contract of {!Decompose.solve}. *)
let component_solver options sub ~init =
  let a = max 1 sub.Network.num_atoms in
  let scaled =
    {
      options with
      max_flips = min options.max_flips (max 1_000 (100 * a));
    }
  in
  let stall = min 20_000 (max 250 (25 * a)) in
  if options.use_cpi then
    let assignment, cpi_stats =
      Cpi.solve
        ~solver:(fun net ~init ->
          base_solver ~stall scaled net ~init)
        ~init sub
    in
    {
      Decompose.values = assignment;
      status = cpi_stats.Cpi.status;
      cpi = Some cpi_stats;
    }
  else
    let assignment, status = base_solver ~stall scaled sub ~init in
    { Decompose.values = assignment; status; cpi = None }

let run_ground ?(options = default_options) store
    (ground_result : Grounder.Ground.result) ~ground_ms =
  let network =
    Obs.span "encode" (fun () ->
        let network =
          Network.build ~config:options.network_config store
            ground_result.Grounder.Ground.instances
        in
        Obs.count ~n:network.Network.num_atoms "network.atoms";
        Obs.count
          ~n:(Array.length network.Network.clauses)
          "network.clauses";
        network)
  in
  let init = Network.expanded_assignment network in
  (* Decompose only under an infinite deadline: splitting a finite
     budget fairly across components would change the carefully tested
     anytime behaviour, and the incremental cache is bypassed for
     budgeted runs anyway. *)
  let solve () =
    if options.decompose && not (Deadline.is_finite options.deadline) then
      let assignment, status, cpi, _ =
        Decompose.solve ?cache:options.solve_cache
          ~solve_component:(component_solver options) ~init network
      in
      (assignment, cpi, status)
    else if options.use_cpi then
      let assignment, cpi_stats =
        Cpi.solve ~solver:(base_solver options) ~deadline:options.deadline
          ~init network
      in
      (assignment, Some cpi_stats, cpi_stats.Cpi.status)
    else
      let assignment, status = base_solver options network ~init in
      (assignment, None, status)
  in
  let (assignment, cpi, status), solve_ms =
    Prelude.Timing.time (fun () -> Obs.span "solve" solve)
  in
  if Deadline.is_finite options.deadline then
    Obs.gauge "deadline.solve_slack_ms"
      (Deadline.remaining_ms options.deadline);
  let evidence_atoms = ref 0 in
  Store.iter
    (fun _ _ origin ->
      match origin with
      | Store.Evidence _ -> incr evidence_atoms
      | Store.Hidden -> ())
    store;
  let hard_clauses =
    Array.fold_left
      (fun acc (c : Network.clause) -> if c.weight = None then acc + 1 else acc)
      0 network.Network.clauses
  in
  (* A cut-short run may leave hard clauses violated — CPI's active
     subnetwork can even hide violations the expired budget never got
     to activate. Restore soundness with the deterministic (and
     budget-free) greedy repair; only when that too fails is the run
     [Degraded]. A [Completed] run with violations is the genuinely
     unsatisfiable case and keeps its tag, exactly as without a
     deadline. *)
  let hard_violations, status =
    let violations = Network.hard_violations network assignment in
    if status = Deadline.Completed || violations = 0 then (violations, status)
    else
      let remaining = Network.repair_hard network assignment in
      Obs.event ~level:Obs.Events.Warn "solver.hard_repair"
        [
          ("violations", Obs.Events.Int violations);
          ("remaining", Obs.Events.Int remaining);
        ];
      if Deadline.is_finite options.deadline then
        Obs.count ~n:(violations - remaining) "deadline.hard_repairs";
      if remaining > 0 then (remaining, Deadline.Degraded)
      else (0, status)
  in
  {
    assignment;
    store;
    instances = ground_result.Grounder.Ground.instances;
    network;
    stats =
      {
        atoms = Store.size store;
        evidence_atoms = !evidence_atoms;
        hidden_atoms = Store.size store - !evidence_atoms;
        clauses = Array.length network.Network.clauses;
        hard_clauses;
        closure_rounds = ground_result.Grounder.Ground.rounds;
        ground_ms;
        solve_ms;
        cpi;
        hard_violations;
        objective = Network.score network assignment;
        status;
      };
  }

let run_store ?(options = default_options) store rules =
  let (ground_result : Grounder.Ground.result), ground_ms =
    Prelude.Timing.time (fun () ->
        Obs.span "ground" (fun () ->
            Grounder.Ground.run ~deadline:options.ground_deadline
              ~pool:options.pool ~lazy_constraints:true store rules))
  in
  (* Per-stage budget telemetry, only under a finite deadline so
     unbudgeted runs keep byte-identical reports. *)
  if Deadline.is_finite options.deadline then
    Obs.gauge "deadline.ground_slack_ms"
      (Deadline.remaining_ms options.deadline);
  run_ground ~options store ground_result ~ground_ms

let run ?options graph rules =
  run_store ?options (Store.of_graph graph) rules
