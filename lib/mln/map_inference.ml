module Store = Grounder.Atom_store

type solver =
  | Walk
  | Exact_bb
  | Ilp_exact

type options = {
  solver : solver;
  use_cpi : bool;
  network_config : Network.config;
  seed : int;
  max_flips : int;
  restarts : int;
  portfolio : int list;
  pool : Prelude.Pool.t;
}

let default_options =
  {
    solver = Walk;
    use_cpi = true;
    network_config = Network.default_config;
    seed = 7;
    max_flips = 100_000;
    restarts = 3;
    portfolio = [];
    pool = Prelude.Pool.sequential;
  }

type stats = {
  atoms : int;
  evidence_atoms : int;
  hidden_atoms : int;
  clauses : int;
  hard_clauses : int;
  closure_rounds : int;
  ground_ms : float;
  solve_ms : float;
  cpi : Cpi.stats option;
  hard_violations : int;
  objective : float;
}

type outcome = {
  assignment : bool array;
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  network : Network.t;
  stats : stats;
}

let base_solver options network ~init =
  match options.solver with
  | Walk ->
      fst
        (Maxwalksat.solve ~seed:options.seed ~max_flips:options.max_flips
           ~restarts:options.restarts ~portfolio:options.portfolio
           ~pool:options.pool ~init network)
  | Exact_bb -> (
      match Exact.solve network with
      | Some { assignment; _ } -> assignment
      | None -> init (* hard clauses unsatisfiable: report via stats *))
  | Ilp_exact -> (
      match Ilp_encoding.solve network with
      | Some (assignment, _) -> assignment
      | None -> init)

let run_store ?(options = default_options) store rules =
  let (ground_result : Grounder.Ground.result), ground_ms =
    Prelude.Timing.time (fun () ->
        Obs.span "ground" (fun () ->
            Grounder.Ground.run ~pool:options.pool store rules))
  in
  let network =
    Obs.span "encode" (fun () ->
        let network =
          Network.build ~config:options.network_config store
            ground_result.Grounder.Ground.instances
        in
        Obs.count ~n:network.Network.num_atoms "network.atoms";
        Obs.count
          ~n:(Array.length network.Network.clauses)
          "network.clauses";
        network)
  in
  let init = Network.expanded_assignment network in
  let solve () =
    if options.use_cpi then
      let assignment, cpi_stats =
        Cpi.solve ~solver:(base_solver options) ~init network
      in
      (assignment, Some cpi_stats)
    else (base_solver options network ~init, None)
  in
  let (assignment, cpi), solve_ms =
    Prelude.Timing.time (fun () -> Obs.span "solve" solve)
  in
  let evidence_atoms = ref 0 in
  Store.iter
    (fun _ _ origin ->
      match origin with
      | Store.Evidence _ -> incr evidence_atoms
      | Store.Hidden -> ())
    store;
  let hard_clauses =
    Array.fold_left
      (fun acc (c : Network.clause) -> if c.weight = None then acc + 1 else acc)
      0 network.Network.clauses
  in
  {
    assignment;
    store;
    instances = ground_result.Grounder.Ground.instances;
    network;
    stats =
      {
        atoms = Store.size store;
        evidence_atoms = !evidence_atoms;
        hidden_atoms = Store.size store - !evidence_atoms;
        clauses = Array.length network.Network.clauses;
        hard_clauses;
        closure_rounds = ground_result.Grounder.Ground.rounds;
        ground_ms;
        solve_ms;
        cpi;
        hard_violations = Network.hard_violations network assignment;
        objective = Network.score network assignment;
      };
  }

let run ?options graph rules =
  run_store ?options (Store.of_graph graph) rules
