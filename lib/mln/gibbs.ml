module Prng = Prelude.Prng
module Pool = Prelude.Pool
module Deadline = Prelude.Deadline

type result = {
  marginals : float array;
  samples : int;
  recorded : int;
  burn_in : int;
  chains : int;
  status : Deadline.status;
}

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let run ?(seed = 7) ?(burn_in = 1_000) ?(samples = 5_000)
    ?(hard_weight = 2.0 *. Kg.Quad.max_weight) ?init ?(chains = 1)
    ?(pool = Pool.sequential) ?(deadline = Deadline.none) (network : Network.t)
    =
  if chains < 1 then invalid_arg "Gibbs.run: chains must be >= 1";
  let n = network.num_atoms in
  let base =
    match init with Some a -> Array.copy a | None -> Array.make n false
  in
  (* The occurrence lists depend only on the network: build once, share
     read-only across chains. *)
  let occurrences = Array.make n [] in
  Array.iteri
    (fun ci (c : Network.clause) ->
      Array.iter
        (fun (l : Network.literal) ->
          occurrences.(l.atom) <- ci :: occurrences.(l.atom))
        c.literals)
    network.clauses;
  let weight (c : Network.clause) =
    match c.weight with Some w -> w | None -> hard_weight
  in
  (* Energy difference of clauses containing [v] between x_v=1 and
     x_v=0, with the rest of the chain state fixed. *)
  let delta state v =
    List.fold_left
      (fun acc ci ->
        let c = network.clauses.(ci) in
        let satisfied_with value =
          Array.exists
            (fun (l : Network.literal) ->
              if l.atom = v then l.positive = value
              else state.(l.atom) = l.positive)
            c.literals
        in
        let sat1 = satisfied_with true and sat0 = satisfied_with false in
        if sat1 = sat0 then acc
        else if sat1 then acc +. weight c
        else acc -. weight c)
      0.0 occurrences.(v)
  in
  (* One independent chain: own state, own PRNG stream. Chain 0 keeps
     the caller's seed (identical to the single-chain behaviour);
     further chains derive theirs, so the chain set — and the merged
     marginals — do not depend on the job count. *)
  (* A chain is an anytime estimator: it records as many sample sweeps
     as the deadline allows and reports how many it kept, so the merged
     marginals always divide by the number of sweeps actually counted —
     never by the nominal [samples]. Polling happens between sweeps (a
     sweep touches every atom; mid-sweep states are not sample points). *)
  let observing = Obs.enabled () in
  let run_chain k =
    if k > 0 then Deadline.Faults.inject "worker_crash" ~index:k;
    let chain_seed = if k = 0 then seed else Prng.subseed seed k in
    let rng = Prng.create chain_seed in
    let state = Array.copy base in
    let sweep () =
      for v = 0 to n - 1 do
        state.(v) <- Prng.bernoulli rng (sigmoid (delta state v))
      done
    in
    let sweeps = ref 0 in
    let halted = ref false in
    let budgeted_sweep () =
      if !halted || Deadline.expired deadline then halted := true
      else begin
        sweep ();
        incr sweeps
      end
    in
    for _ = 1 to burn_in do
      budgeted_sweep ()
    done;
    let counts = Array.make n 0 in
    let recorded = ref 0 in
    (* Progress trail for the convergence timeline: (absolute ms,
       sweeps recorded since the previous entry), sampled every 16
       recorded sweeps plus once at the end. Collected newest first,
       merged across chains by the coordinator. *)
    let trail = ref [] in
    let last_noted = ref 0 in
    let note () =
      if observing && !recorded > !last_noted then begin
        trail :=
          (Prelude.Timing.now_ms (), float_of_int (!recorded - !last_noted))
          :: !trail;
        last_noted := !recorded
      end
    in
    for _ = 1 to samples do
      budgeted_sweep ();
      if not !halted then begin
        incr recorded;
        for v = 0 to n - 1 do
          if state.(v) then counts.(v) <- counts.(v) + 1
        done;
        if !recorded land 15 = 0 then note ()
      end
    done;
    note ();
    (counts, !recorded, !sweeps, List.rev !trail)
  in
  let results =
    Pool.map_results ~deadline pool run_chain (List.init chains Fun.id)
  in
  let completed = List.filter_map Result.to_option results in
  let crashed =
    List.exists
      (function Error Deadline.Expired | Ok _ -> false | Error _ -> true)
      results
  in
  let totals = Array.make n 0 in
  List.iter
    (fun (counts, _, _, _) ->
      for v = 0 to n - 1 do
        totals.(v) <- totals.(v) + counts.(v)
      done)
    completed;
  let recorded =
    List.fold_left (fun acc (_, r, _, _) -> acc + r) 0 completed
  in
  let sweeps =
    List.fold_left (fun acc (_, _, s, _) -> acc + s) 0 completed
  in
  Obs.count ~n:sweeps "gibbs.sweeps";
  Obs.count ~n:recorded "gibbs.samples";
  Obs.count ~n:chains "gibbs.chains";
  if observing then begin
    (* Cumulative recorded sweeps over time, merged across chains. *)
    let deltas =
      List.concat_map (fun (_, _, _, trail) -> trail) completed
      |> List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
    in
    let deltas =
      match deltas with
      | [] -> [ (Prelude.Timing.now_ms (), float_of_int recorded) ]
      | _ -> deltas
    in
    ignore
      (List.fold_left
         (fun acc (t, d) ->
           let acc = acc +. d in
           Obs.sample "gibbs.convergence" ~t_ms:t ~v:acc;
           acc)
         0.0 deltas);
    List.iteri
      (fun k r ->
        match r with
        | Ok (_, chain_recorded, chain_sweeps, _) ->
            Obs.event ~level:Obs.Events.Debug "gibbs.chain"
              [
                ("chain", Obs.Events.Int k);
                ("sweeps", Obs.Events.Int chain_sweeps);
                ("recorded", Obs.Events.Int chain_recorded);
              ]
        | Error Deadline.Expired ->
            Obs.event ~level:Obs.Events.Warn "gibbs.chain_expired"
              [ ("chain", Obs.Events.Int k) ]
        | Error e ->
            Obs.event ~level:Obs.Events.Warn "gibbs.chain_crashed"
              [
                ("chain", Obs.Events.Int k);
                ("error", Obs.Events.Str (Printexc.to_string e));
              ])
      results
  end;
  let status =
    if crashed || recorded = 0 then Deadline.Degraded
    else if Deadline.expired deadline || recorded < chains * samples then
      Deadline.Timed_out
    else Deadline.Completed
  in
  let marginals =
    if recorded = 0 then
      (* Nothing was sampled (already-expired deadline, or every chain
         crashed): degenerate to the point mass of the start state. *)
      Array.map (fun b -> if b then 1.0 else 0.0) base
    else
      let denom = float_of_int recorded in
      Array.map (fun c -> float_of_int c /. denom) totals
  in
  { marginals; samples; recorded; burn_in; chains; status }
