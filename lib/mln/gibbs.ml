module Prng = Prelude.Prng
module Pool = Prelude.Pool

type result = {
  marginals : float array;
  samples : int;
  burn_in : int;
  chains : int;
}

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let run ?(seed = 7) ?(burn_in = 1_000) ?(samples = 5_000)
    ?(hard_weight = 2.0 *. Kg.Quad.max_weight) ?init ?(chains = 1)
    ?(pool = Pool.sequential) (network : Network.t) =
  if chains < 1 then invalid_arg "Gibbs.run: chains must be >= 1";
  let n = network.num_atoms in
  let base =
    match init with Some a -> Array.copy a | None -> Array.make n false
  in
  (* The occurrence lists depend only on the network: build once, share
     read-only across chains. *)
  let occurrences = Array.make n [] in
  Array.iteri
    (fun ci (c : Network.clause) ->
      Array.iter
        (fun (l : Network.literal) ->
          occurrences.(l.atom) <- ci :: occurrences.(l.atom))
        c.literals)
    network.clauses;
  let weight (c : Network.clause) =
    match c.weight with Some w -> w | None -> hard_weight
  in
  (* Energy difference of clauses containing [v] between x_v=1 and
     x_v=0, with the rest of the chain state fixed. *)
  let delta state v =
    List.fold_left
      (fun acc ci ->
        let c = network.clauses.(ci) in
        let satisfied_with value =
          Array.exists
            (fun (l : Network.literal) ->
              if l.atom = v then l.positive = value
              else state.(l.atom) = l.positive)
            c.literals
        in
        let sat1 = satisfied_with true and sat0 = satisfied_with false in
        if sat1 = sat0 then acc
        else if sat1 then acc +. weight c
        else acc -. weight c)
      0.0 occurrences.(v)
  in
  (* One independent chain: own state, own PRNG stream. Chain 0 keeps
     the caller's seed (identical to the single-chain behaviour);
     further chains derive theirs, so the chain set — and the merged
     marginals — do not depend on the job count. *)
  let run_chain k =
    let chain_seed = if k = 0 then seed else Prng.subseed seed k in
    let rng = Prng.create chain_seed in
    let state = Array.copy base in
    let sweep () =
      for v = 0 to n - 1 do
        state.(v) <- Prng.bernoulli rng (sigmoid (delta state v))
      done
    in
    for _ = 1 to burn_in do
      sweep ()
    done;
    let counts = Array.make n 0 in
    for _ = 1 to samples do
      sweep ();
      for v = 0 to n - 1 do
        if state.(v) then counts.(v) <- counts.(v) + 1
      done
    done;
    counts
  in
  let all_counts = Pool.map pool run_chain (List.init chains Fun.id) in
  let totals = Array.make n 0 in
  List.iter
    (fun counts ->
      for v = 0 to n - 1 do
        totals.(v) <- totals.(v) + counts.(v)
      done)
    all_counts;
  Obs.count ~n:(chains * (burn_in + samples)) "gibbs.sweeps";
  Obs.count ~n:(chains * samples) "gibbs.samples";
  Obs.count ~n:chains "gibbs.chains";
  let denom = float_of_int (chains * samples) in
  {
    marginals = Array.map (fun c -> float_of_int c /. denom) totals;
    samples;
    burn_in;
    chains;
  }
