module Prng = Prelude.Prng

type result = {
  marginals : float array;
  samples : int;
  burn_in : int;
}

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let run ?(seed = 7) ?(burn_in = 1_000) ?(samples = 5_000)
    ?(hard_weight = 2.0 *. Kg.Quad.max_weight) ?init (network : Network.t) =
  let n = network.num_atoms in
  let state =
    match init with Some a -> Array.copy a | None -> Array.make n false
  in
  let occurrences = Array.make n [] in
  Array.iteri
    (fun ci (c : Network.clause) ->
      Array.iter
        (fun (l : Network.literal) ->
          occurrences.(l.atom) <- ci :: occurrences.(l.atom))
        c.literals)
    network.clauses;
  let weight (c : Network.clause) =
    match c.weight with Some w -> w | None -> hard_weight
  in
  (* Energy difference of clauses containing [v] between x_v=1 and
     x_v=0, with the rest of the state fixed. *)
  let delta v =
    List.fold_left
      (fun acc ci ->
        let c = network.clauses.(ci) in
        let satisfied_with value =
          Array.exists
            (fun (l : Network.literal) ->
              if l.atom = v then l.positive = value
              else state.(l.atom) = l.positive)
            c.literals
        in
        let sat1 = satisfied_with true and sat0 = satisfied_with false in
        if sat1 = sat0 then acc
        else if sat1 then acc +. weight c
        else acc -. weight c)
      0.0 occurrences.(v)
  in
  let rng = Prng.create seed in
  let sweep () =
    for v = 0 to n - 1 do
      state.(v) <- Prng.bernoulli rng (sigmoid (delta v))
    done
  in
  for _ = 1 to burn_in do
    sweep ()
  done;
  let counts = Array.make n 0 in
  for _ = 1 to samples do
    sweep ();
    for v = 0 to n - 1 do
      if state.(v) then counts.(v) <- counts.(v) + 1
    done
  done;
  Obs.count ~n:(burn_in + samples) "gibbs.sweeps";
  Obs.count ~n:samples "gibbs.samples";
  {
    marginals =
      Array.map (fun c -> float_of_int c /. float_of_int samples) counts;
    samples;
    burn_in;
  }
