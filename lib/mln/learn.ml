module Store = Grounder.Atom_store
module Instance = Grounder.Ground.Instance

type options = {
  iterations : int;
  learning_rate : float;
  l2 : float;
  min_weight : float;
  max_weight : float;
}

let default_options =
  {
    iterations = 200;
    learning_rate = 0.1;
    l2 = 0.01;
    min_weight = 0.01;
    max_weight = 15.0;
  }

type result = {
  weights : (string * float) list;
  pll_trace : float list;
}

let log_sigmoid x =
  (* Numerically stable log(sigmoid(x)). *)
  if x >= 0.0 then -.log1p (exp (-.x)) else x -. log1p (exp x)

let hard_weight = 2.0 *. Kg.Quad.max_weight

let pseudo_log_likelihood (network : Network.t) world =
  let n = network.num_atoms in
  let occurrences = Array.make n [] in
  Array.iteri
    (fun ci (c : Network.clause) ->
      Array.iter
        (fun (l : Network.literal) ->
          occurrences.(l.atom) <- ci :: occurrences.(l.atom))
        c.literals)
    network.clauses;
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let d = ref 0.0 in
    List.iter
      (fun ci ->
        let c = network.clauses.(ci) in
        let w = match c.weight with Some w -> w | None -> hard_weight in
        let satisfied_with value =
          Array.exists
            (fun (l : Network.literal) ->
              if l.atom = i then l.positive = value
              else world.(l.atom) = l.positive)
            c.literals
        in
        let sat_obs = satisfied_with world.(i) in
        let sat_flip = satisfied_with (not world.(i)) in
        if sat_obs && not sat_flip then d := !d +. w
        else if sat_flip && not sat_obs then d := !d -. w)
      occurrences.(i);
    total := !total +. log_sigmoid !d
  done;
  !total

(* Per-atom statistics of the observed world: for each learnable rule, the
   satisfied-count difference between the observed value and the flip; for
   fixed-weight clauses, the same difference folded into a constant. *)
type atom_stats = {
  const : float;                    (* fixed-weight contribution to d_i *)
  grad : (int * float) list;        (* (rule index, g_ir) sparse vector *)
}

let learn ?(options = default_options) store instances rules =
  let learnable =
    List.filter_map
      (fun (r : Logic.Rule.t) ->
        match r.weight with Some _ -> Some r.name | None -> None)
      rules
  in
  let rule_index = Hashtbl.create 8 in
  List.iteri (fun i name -> Hashtbl.replace rule_index name i) learnable;
  let num_rules = List.length learnable in
  (* Build the network with all learnable weights at 1.0 so clause
     satisfaction structure is weight-independent; weights enter only
     through the per-rule grouping below. *)
  let network = Network.build store instances in
  (* The observed world under the closed-world assumption: evidence atoms
     are true, closure-introduced hidden atoms are unobserved and hence
     false — otherwise a rule whose head is never in the data would look
     confirmed by its own derivations. *)
  let world = Network.initial_assignment network store in
  let occurrences = Array.make network.Network.num_atoms [] in
  Array.iteri
    (fun ci (c : Network.clause) ->
      Array.iter
        (fun (l : Network.literal) ->
          occurrences.(l.atom) <- ci :: occurrences.(l.atom))
        c.literals)
    network.Network.clauses;
  let stats =
    Array.init network.Network.num_atoms (fun i ->
        let const = ref 0.0 in
        let grad = Hashtbl.create 4 in
        List.iter
          (fun ci ->
            let c = network.Network.clauses.(ci) in
            let satisfied_with value =
              Array.exists
                (fun (l : Network.literal) ->
                  if l.atom = i then l.positive = value
                  else world.(l.atom) = l.positive)
                c.literals
            in
            let diff =
              match (satisfied_with world.(i), satisfied_with (not world.(i)))
              with
              | true, false -> 1.0
              | false, true -> -1.0
              | _ -> 0.0
            in
            if diff <> 0.0 then
              match Hashtbl.find_opt rule_index c.source with
              | Some r ->
                  Hashtbl.replace grad r
                    (diff +. Option.value (Hashtbl.find_opt grad r) ~default:0.0)
              | None ->
                  let w =
                    match c.weight with Some w -> w | None -> hard_weight
                  in
                  const := !const +. (diff *. w))
          occurrences.(i);
        {
          const = !const;
          grad = Hashtbl.fold (fun r g acc -> (r, g) :: acc) grad [];
        })
  in
  let weights = Array.make num_rules 1.0 in
  let clamp w = Float.min options.max_weight (Float.max options.min_weight w) in
  let sigmoid x = 1.0 /. (1.0 +. exp (-.x)) in
  let trace = ref [] in
  for _ = 1 to options.iterations do
    let gradient = Array.make num_rules 0.0 in
    let pll = ref 0.0 in
    Array.iter
      (fun s ->
        let d =
          List.fold_left
            (fun acc (r, g) -> acc +. (weights.(r) *. g))
            s.const s.grad
        in
        pll := !pll +. log_sigmoid d;
        let slack = 1.0 -. sigmoid d in
        List.iter
          (fun (r, g) -> gradient.(r) <- gradient.(r) +. (slack *. g))
          s.grad)
      stats;
    Array.iteri
      (fun r g ->
        weights.(r) <-
          clamp
            (weights.(r)
            +. (options.learning_rate *. (g -. (options.l2 *. weights.(r))))))
      gradient;
    trace := !pll :: !trace
  done;
  {
    weights = List.mapi (fun i name -> (name, weights.(i))) learnable;
    pll_trace = List.rev !trace;
  }

let apply result rules =
  List.map
    (fun (r : Logic.Rule.t) ->
      match (r.weight, List.assoc_opt r.name result.weights) with
      | Some _, Some w -> { r with Logic.Rule.weight = Some w }
      | _ -> r)
    rules
