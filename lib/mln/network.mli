(** Ground Markov network in weighted-clause form.

    MAP inference in an MLN is weighted partial MaxSAT over the ground
    clauses: hard clauses (from [w = ∞] formulas and deterministic
    evidence) must hold; the MAP state maximises the total weight of
    satisfied soft clauses. The network is built from the grounder's rule
    instances plus unit clauses encoding the θ-translated evidence:

    - evidence atom with confidence [c < 1]: unit clause [(+a)] with the
      log-odds weight [ln (c / (1-c))];
    - evidence atom with [c = 1]: hard unit clause;
    - hidden atom: unit clause [(-a)] with a small negative-prior weight,
      so derived facts are asserted only when a firing rule outweighs the
      prior;
    - inference instance [b1 ∧ ... ∧ bn -> h] with weight [w]: clause
      [(-b1 ∨ ... ∨ -bn ∨ h)] with weight [w];
    - violated-constraint instance: clause [(-b1 ∨ ... ∨ -bn)]. *)

type literal = { atom : int; positive : bool }

type clause = {
  literals : literal array;
  weight : float option;  (** [None] = hard *)
  source : string;        (** rule name, ["evidence"] or ["prior"] *)
}

type t = {
  num_atoms : int;
  clauses : clause array;
}

type config = {
  hidden_prior : float;
      (** weight of the negative prior on hidden atoms (default 0.005, small enough that keeping
          a fact always beats dropping it to dodge derivation priors) *)
  evidence_bonus : float;
      (** small weight added to every uncertain evidence unit clause so
          that ties break toward keeping a fact — TeCoRe computes a
          {e maximal} consistent subgraph, so a confidence-0.5 fact that
          conflicts with nothing must survive (default 0.1) *)
  evidence_hard : bool;
      (** when true, confidence-1.0 evidence becomes hard clauses
          (default true) *)
}

val default_config : config

val build :
  ?config:config ->
  Grounder.Atom_store.t ->
  Grounder.Ground.Instance.t list ->
  t

val clause_satisfied : clause -> bool array -> bool

val hard_violations : t -> bool array -> int

val repair_hard : t -> bool array -> int
(** [repair_hard t x] greedily flips atoms of [x] (in place) to reduce
    the number of violated hard clauses, applying only strictly
    improving flips (lowest violated clause first, best literal by
    violation delta, ties to the earlier literal — fully
    deterministic). Returns the remaining violation count: [0] means
    [x] is now hard-sound. Terminates after at most the initial count
    of violations, so the anytime path can run it {e after} a budget
    expiry to make the best-so-far assignment sound without a budget of
    its own. *)

val score : t -> bool array -> float
(** Total weight of satisfied soft clauses. Only meaningful to compare
    assignments with equal {!hard_violations}. *)

val cost : t -> bool array -> float
(** Total weight of violated soft clauses (score's complement). *)

val initial_assignment : t -> Grounder.Atom_store.t -> bool array
(** Evidence true, hidden false — the observed world of θ(G) itself
    (the training world for weight learning and the Gibbs start). *)

val expanded_assignment : t -> bool array
(** Every atom true — the closure-expanded world. The right MAP starting
    point: derivation chains begin satisfied and the solver only has to
    retract facts to repair constraint violations, instead of pushing
    derived atoms one by one across a plateau of prior penalties. *)

val pp : Format.formatter -> t -> unit
(** Summary line plus the first few clauses. *)

val pp_clause : Format.formatter -> clause -> unit
