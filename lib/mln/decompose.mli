(** Connected-component decomposition of a ground Markov network.

    The clause graph of a TeCoRe grounding is highly disconnected: the
    constraints couple the facts of one entity (one player's stints and
    birth dates) and nothing else, so the network of an N-player UTKG
    splits into ~N independent weighted-MaxSAT problems. Solving each
    component on its own is both faster (local search never wastes flips
    crossing component boundaries) and the substrate of the incremental
    engine: a component's MAP state is a pure function of its canonical
    structural form, so solutions can be memoised across resolves and a
    one-fact edit only re-solves the one component it touches.

    Purity contract: [solve_component] must be a deterministic function
    of the sub-network and [init] alone (fixed seeds, budgets derived
    from the sub-network's size — never from global context such as the
    component count). Under that contract a cached solution is
    byte-identical to re-solving, which is what the differential oracle
    in [test/test_incremental.ml] checks end to end. *)

type component = {
  atoms : int array;    (** global atom ids, ascending *)
  network : Network.t;  (** literals remapped to local indices *)
}

type solved = {
  values : bool array;  (** local assignment, indexed like [atoms] *)
  status : Prelude.Deadline.status;
  cpi : Cpi.stats option;
}

type cache
(** Memoised component solutions keyed by canonical structural form
    (clauses, weights, sources, local init). Lookups compare keys
    structurally, so a hit is possible only for a byte-identical
    sub-problem; only [Completed] solves are stored. *)

type cache_stats = { entries : int; hits : int; misses : int }

val create_cache : unit -> cache
val clear_cache : cache -> unit
val cache_stats : cache -> cache_stats
(** Cumulative hit/miss counts since creation (or the last clear). *)

type stats = { components : int; cache_hits : int; cache_misses : int }

val split : Network.t -> component list
(** Partition by connected components of the clause graph, in ascending
    order of each component's smallest atom; clauses keep their relative
    order. Singleton atoms form their own components. A (degenerate)
    zero-literal clause collapses the split into one whole-network
    component rather than dropping the clause. *)

val solve :
  ?cache:cache ->
  solve_component:(Network.t -> init:bool array -> solved) ->
  init:bool array ->
  Network.t ->
  bool array * Prelude.Deadline.status * Cpi.stats option * stats
(** Solve every component (sequentially, in canonical order) and merge:
    assignments are scattered back to global ids, the status is the
    worst over components, CPI stats are summed. Emits
    [solve.components], [solve.cache_hits] and [solve.cache_misses]
    counters. *)
