(** MC-SAT: slice-sampling marginal inference (Poon & Domingos 2006).

    Gibbs sampling mixes poorly in the presence of the near-deterministic
    dependencies TeCoRe's hard constraints create. MC-SAT samples instead
    by repeatedly (i) selecting a clause set [M] — every hard clause plus
    each currently-satisfied soft clause with probability
    [1 - exp(-w)] — and (ii) drawing a (near-)uniform satisfying
    assignment of [M] with a SampleSAT-style randomized solver. Hard
    constraints are honoured exactly in every sample, so marginals of
    facts in unsatisfiable combinations are driven to genuine zeros
    rather than the small residuals a finite hard weight leaves. *)

type result = {
  marginals : float array;
  samples : int;
  rejected : int;
      (** slice-sampling steps where no satisfying assignment was found
          within the flip budget (the previous state is kept) *)
}

val run :
  ?seed:int ->
  ?burn_in:int ->
  ?samples:int ->
  ?sample_flips:int ->
  ?init:bool array ->
  Network.t ->
  result
(** Defaults: [burn_in = 100], [samples = 1_000], [sample_flips = 10_000]
    WalkSAT flips per slice. [init] must satisfy the hard clauses when
    one exists (otherwise MC-SAT first solves for one). *)
