(** MC-SAT: slice-sampling marginal inference (Poon & Domingos 2006).

    Gibbs sampling mixes poorly in the presence of the near-deterministic
    dependencies TeCoRe's hard constraints create. MC-SAT samples instead
    by repeatedly (i) selecting a clause set [M] — every hard clause plus
    each currently-satisfied soft clause with probability
    [1 - exp(-w)] — and (ii) drawing a (near-)uniform satisfying
    assignment of [M] with a SampleSAT-style randomized solver. Hard
    constraints are honoured exactly in every sample, so marginals of
    facts in unsatisfiable combinations are driven to genuine zeros
    rather than the small residuals a finite hard weight leaves. *)

type result = {
  marginals : float array;
  samples : int;  (** requested per chain *)
  recorded : int;
      (** samples actually recorded, summed over chains — the marginal
          denominator *)
  rejected : int;
      (** slice-sampling steps where no satisfying assignment was found
          within the flip budget (the previous state is kept), summed
          over chains *)
  chains : int;
  status : Prelude.Deadline.status;
      (** [Completed] when every chain recorded all requested samples;
          [Timed_out] when the deadline cut sampling short; [Degraded]
          when a chain crashed or nothing was recorded *)
}

val run :
  ?seed:int ->
  ?burn_in:int ->
  ?samples:int ->
  ?sample_flips:int ->
  ?init:bool array ->
  ?chains:int ->
  ?pool:Prelude.Pool.t ->
  ?deadline:Prelude.Deadline.t ->
  Network.t ->
  result
(** Defaults: [burn_in = 100], [samples = 1_000], [sample_flips = 10_000]
    WalkSAT flips per slice. [init] must satisfy the hard clauses when
    one exists (otherwise MC-SAT first solves for one; that solve
    happens once and seeds every chain).

    [chains] (default 1) runs that many independent slice-sampling
    chains and averages their counts; chain 0 uses [seed] verbatim (so
    [chains = 1] reproduces the single-chain sampler exactly), chain
    [k] derives its stream with {!Prelude.Prng.subseed}. [pool]
    (default {!Prelude.Pool.sequential}) runs chains on worker domains;
    the merged marginals are identical at every job count.

    Anytime contract: [deadline] (default {!Prelude.Deadline.none}) is
    polled between slice-sampling steps; on expiry chains stop and the
    marginals average over the samples actually recorded. The initial
    hard-clause solve always runs to completion (a sample that violates
    hard clauses would be unsound). When nothing was recorded the
    result is the point mass of that initial state with
    [status = Degraded]. A crashed chain loses only its own samples. *)
