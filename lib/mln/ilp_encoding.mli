(** ILP encoding of weighted partial MaxSAT — the nRockIt/Gurobi reduction.

    One binary variable per ground atom; per soft clause [C] with weight
    [w], an auxiliary binary [z_C] with [z_C <= Σ lit(C)] and objective
    term [w · z_C]; per hard clause, the row [Σ lit(C) >= 1]. A positive
    literal contributes [x], a negative one [1 - x]. *)

type encoding = {
  lp : Ilp.Lp.t;
  binary : int list;
      (** the atom variables; clause auxiliaries stay continuous in
          [0, 1] and are integral at the optimum once atoms are fixed *)
  num_atom_vars : int;      (** atoms occupy variables [0 .. n-1] *)
}

val encode : Network.t -> encoding

val decode : encoding -> float array -> bool array
(** Read the atom assignment off an ILP solution. *)

val solve :
  ?max_nodes:int ->
  ?deadline:Prelude.Deadline.t ->
  Network.t ->
  (bool array * bool) option
(** End-to-end: encode, run {!Ilp.Milp.solve}, decode. Returns the
    assignment and whether it is provably optimal; [None] when the hard
    clauses are unsatisfiable (or, under a finite [deadline], when it
    expired before any incumbent was found — see {!Ilp.Milp.solve}). *)
