module Prng = Prelude.Prng

type stats = {
  flips : int;
  restarts_used : int;
  hard_violated : int;
  soft_cost : float;
}

(* One dense set of clause indices with O(1) insert/remove. *)
type clause_set = {
  items : int array;
  pos : int array; (* clause -> position or -1 *)
  mutable len : int;
}

let set_create n =
  { items = Array.make (max 1 n) 0; pos = Array.make (max 1 n) (-1); len = 0 }

let set_add s ci =
  if s.pos.(ci) = -1 then begin
    s.items.(s.len) <- ci;
    s.pos.(ci) <- s.len;
    s.len <- s.len + 1
  end

let set_remove s ci =
  let p = s.pos.(ci) in
  if p <> -1 then begin
    let last = s.len - 1 in
    let moved = s.items.(last) in
    s.items.(p) <- moved;
    s.pos.(moved) <- p;
    s.len <- last;
    s.pos.(ci) <- -1
  end

(* Mutable solver state: per-clause count of true literals, violated hard
   and soft clauses tracked separately (hard violations are repaired with
   priority), and the running (hard, soft) cost. *)
type state = {
  network : Network.t;
  assignment : bool array;
  true_counts : int array;
  occurrences : int list array;
  unsat_hard : clause_set;
  unsat_soft : clause_set;
  mutable soft_cost : float;
}

let clause_weight (c : Network.clause) =
  match c.weight with None -> `Hard | Some w -> `Soft w

let mark_unsat st ci =
  match clause_weight st.network.clauses.(ci) with
  | `Hard -> set_add st.unsat_hard ci
  | `Soft w ->
      if st.unsat_soft.pos.(ci) = -1 then st.soft_cost <- st.soft_cost +. w;
      set_add st.unsat_soft ci

let mark_sat st ci =
  match clause_weight st.network.clauses.(ci) with
  | `Hard -> set_remove st.unsat_hard ci
  | `Soft w ->
      if st.unsat_soft.pos.(ci) <> -1 then st.soft_cost <- st.soft_cost -. w;
      set_remove st.unsat_soft ci

let literal_true assignment (l : Network.literal) =
  assignment.(l.atom) = l.positive

let init_state network assignment =
  let num_clauses = Array.length network.Network.clauses in
  let occurrences = Array.make network.Network.num_atoms [] in
  Array.iteri
    (fun ci (c : Network.clause) ->
      Array.iter
        (fun (l : Network.literal) ->
          occurrences.(l.atom) <- ci :: occurrences.(l.atom))
        c.literals)
    network.Network.clauses;
  let st =
    {
      network;
      assignment = Array.copy assignment;
      true_counts = Array.make num_clauses 0;
      occurrences;
      unsat_hard = set_create num_clauses;
      unsat_soft = set_create num_clauses;
      soft_cost = 0.0;
    }
  in
  Array.iteri
    (fun ci (c : Network.clause) ->
      let count =
        Array.fold_left
          (fun acc l -> if literal_true st.assignment l then acc + 1 else acc)
          0 c.literals
      in
      st.true_counts.(ci) <- count;
      if count = 0 then mark_unsat st ci)
    network.Network.clauses;
  st

let flip st v =
  let old_value = st.assignment.(v) in
  st.assignment.(v) <- not old_value;
  List.iter
    (fun ci ->
      let c = st.network.Network.clauses.(ci) in
      Array.iter
        (fun (l : Network.literal) ->
          if l.atom = v then
            if l.positive = old_value then begin
              st.true_counts.(ci) <- st.true_counts.(ci) - 1;
              if st.true_counts.(ci) = 0 then mark_unsat st ci
            end
            else begin
              st.true_counts.(ci) <- st.true_counts.(ci) + 1;
              if st.true_counts.(ci) = 1 then mark_sat st ci
            end)
        c.literals)
    st.occurrences.(v)

(* Cost change (hard, soft) of flipping [v], by break/make counting. *)
let delta st v =
  let dhard = ref 0 and dsoft = ref 0.0 in
  List.iter
    (fun ci ->
      let c = st.network.Network.clauses.(ci) in
      let sign =
        if st.true_counts.(ci) = 1 then begin
          (* Breaks iff the single true literal is carried by [v]. *)
          if
            Array.exists
              (fun (l : Network.literal) ->
                l.atom = v && literal_true st.assignment l)
              c.literals
          then 1
          else 0
        end
        else if st.true_counts.(ci) = 0 then
          (* Makes iff [v] carries a literal that becomes true. *)
          if
            Array.exists
              (fun (l : Network.literal) ->
                l.atom = v && not (literal_true st.assignment l))
              c.literals
          then -1
          else 0
        else 0
      in
      if sign <> 0 then
        match clause_weight c with
        | `Hard -> dhard := !dhard + sign
        | `Soft w -> dsoft := !dsoft +. (w *. float_of_int sign))
    st.occurrences.(v);
  (!dhard, !dsoft)

let better (h1, s1) (h2, s2) =
  h1 < h2 || (h1 = h2 && s1 < s2 -. 1e-12)

let solve ?(seed = 7) ?(max_flips = 100_000) ?(restarts = 3) ?(noise = 0.2)
    ?(stall = 20_000) ?init network =
  let rng = Prng.create seed in
  let base =
    match init with
    | Some a -> Array.copy a
    | None -> Array.make network.Network.num_atoms false
  in
  let best = ref (Array.copy base) in
  let best_cost = ref (max_int, infinity) in
  let total_flips = ref 0 in
  let restarts_used = ref 0 in
  let run start =
    let st = init_state network start in
    let current_cost st = (st.unsat_hard.len, st.soft_cost) in
    let update_best () =
      let cost = current_cost st in
      if better cost !best_cost then begin
        best_cost := cost;
        best := Array.copy st.assignment;
        true
      end
      else false
    in
    ignore (update_best ());
    let since_improvement = ref 0 in
    let flips = ref 0 in
    while
      !flips < max_flips
      && st.unsat_hard.len + st.unsat_soft.len > 0
      && !since_improvement < stall
    do
      incr flips;
      incr total_flips;
      (* Repair hard violations with priority: a solution violating a
         hard constraint is worthless whatever its soft cost. *)
      let ci =
        if st.unsat_hard.len > 0
           && (st.unsat_soft.len = 0 || not (Prng.bernoulli rng 0.1))
        then st.unsat_hard.items.(Prng.int rng st.unsat_hard.len)
        else st.unsat_soft.items.(Prng.int rng st.unsat_soft.len)
      in
      let c = st.network.Network.clauses.(ci) in
      let v =
        if Prng.bernoulli rng noise then
          (Array.get c.literals (Prng.int rng (Array.length c.literals))).atom
        else begin
          (* Greedy: the literal whose flip lowers cost the most. *)
          let best_var = ref (Array.get c.literals 0).atom in
          let best_delta = ref (delta st !best_var) in
          Array.iter
            (fun (l : Network.literal) ->
              if l.atom <> !best_var then begin
                let d = delta st l.atom in
                if better d !best_delta then begin
                  best_delta := d;
                  best_var := l.atom
                end
              end)
            c.literals;
          !best_var
        end
      in
      flip st v;
      if update_best () then since_improvement := 0
      else incr since_improvement
    done
  in
  let rec attempts i =
    if i < restarts && not (fst !best_cost = 0 && snd !best_cost = 0.0) then begin
      if i = 0 then run base
      else begin
        incr restarts_used;
        (* Perturb the best assignment to escape its basin. WalkSAT moves
           only touch variables of violated clauses, so the perturbation
           must be able to reach the others: flip a guaranteed handful. *)
        let start = Array.copy !best in
        let n = Array.length start in
        if n > 0 then begin
          let flips = max 1 (n / 10) in
          for _ = 1 to flips do
            let v = Prng.int rng n in
            start.(v) <- not start.(v)
          done;
          Array.iteri
            (fun v _ ->
              if Prng.bernoulli rng 0.05 then start.(v) <- not start.(v))
            start
        end;
        run start
      end;
      attempts (i + 1)
    end
  in
  attempts 0;
  let hard_violated, soft_cost = !best_cost in
  Obs.count ~n:!total_flips "walksat.flips";
  Obs.count ~n:!restarts_used "walksat.restarts";
  Obs.record "walksat.flips_per_solve" (float_of_int !total_flips);
  Obs.gauge "walksat.soft_cost" soft_cost;
  ( !best,
    { flips = !total_flips; restarts_used = !restarts_used; hard_violated;
      soft_cost } )
