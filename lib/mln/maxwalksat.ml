module Prng = Prelude.Prng
module Pool = Prelude.Pool
module Deadline = Prelude.Deadline

type stats = {
  flips : int;
  restarts_used : int;
  hard_violated : int;
  soft_cost : float;
  status : Deadline.status;
}

(* One dense set of clause indices with O(1) insert/remove. *)
type clause_set = {
  items : int array;
  pos : int array; (* clause -> position or -1 *)
  mutable len : int;
}

let set_create n =
  { items = Array.make (max 1 n) 0; pos = Array.make (max 1 n) (-1); len = 0 }

let set_add s ci =
  if s.pos.(ci) = -1 then begin
    s.items.(s.len) <- ci;
    s.pos.(ci) <- s.len;
    s.len <- s.len + 1
  end

let set_remove s ci =
  let p = s.pos.(ci) in
  if p <> -1 then begin
    let last = s.len - 1 in
    let moved = s.items.(last) in
    s.items.(p) <- moved;
    s.pos.(moved) <- p;
    s.len <- last;
    s.pos.(ci) <- -1
  end

let set_clear s =
  for p = 0 to s.len - 1 do
    s.pos.(s.items.(p)) <- -1
  done;
  s.len <- 0

(* Mutable solver state: per-clause count of true literals, violated hard
   and soft clauses tracked separately (hard violations are repaired with
   priority), and the running (hard, soft) cost. The occurrence lists are
   a function of the network alone, so one array is built per solve and
   shared read-only by every restart (and every domain). *)
type state = {
  network : Network.t;
  assignment : bool array;
  true_counts : int array;
  occurrences : int list array;
  unsat_hard : clause_set;
  unsat_soft : clause_set;
  mutable soft_cost : float;
}

let clause_weight (c : Network.clause) =
  match c.weight with None -> `Hard | Some w -> `Soft w

let mark_unsat st ci =
  match clause_weight st.network.clauses.(ci) with
  | `Hard -> set_add st.unsat_hard ci
  | `Soft w ->
      if st.unsat_soft.pos.(ci) = -1 then st.soft_cost <- st.soft_cost +. w;
      set_add st.unsat_soft ci

let mark_sat st ci =
  match clause_weight st.network.clauses.(ci) with
  | `Hard -> set_remove st.unsat_hard ci
  | `Soft w ->
      if st.unsat_soft.pos.(ci) <> -1 then st.soft_cost <- st.soft_cost -. w;
      set_remove st.unsat_soft ci

let literal_true assignment (l : Network.literal) =
  assignment.(l.atom) = l.positive

let build_occurrences (network : Network.t) =
  let occurrences = Array.make network.Network.num_atoms [] in
  Array.iteri
    (fun ci (c : Network.clause) ->
      Array.iter
        (fun (l : Network.literal) ->
          occurrences.(l.atom) <- ci :: occurrences.(l.atom))
        c.literals)
    network.Network.clauses;
  occurrences

let make_state network occurrences =
  let num_clauses = Array.length network.Network.clauses in
  {
    network;
    assignment = Array.make (max 1 network.Network.num_atoms) false;
    true_counts = Array.make (max 1 num_clauses) 0;
    occurrences;
    unsat_hard = set_create num_clauses;
    unsat_soft = set_create num_clauses;
    soft_cost = 0.0;
  }

(* (Re)initialise the state at [start] without reallocating: restarts
   reuse the arrays and, crucially, the shared occurrence lists. *)
let reset_state st start =
  Array.blit start 0 st.assignment 0 (Array.length start);
  set_clear st.unsat_hard;
  set_clear st.unsat_soft;
  st.soft_cost <- 0.0;
  Array.iteri
    (fun ci (c : Network.clause) ->
      let count =
        Array.fold_left
          (fun acc l -> if literal_true st.assignment l then acc + 1 else acc)
          0 c.literals
      in
      st.true_counts.(ci) <- count;
      if count = 0 then mark_unsat st ci)
    st.network.Network.clauses

let flip st v =
  let old_value = st.assignment.(v) in
  st.assignment.(v) <- not old_value;
  List.iter
    (fun ci ->
      let c = st.network.Network.clauses.(ci) in
      Array.iter
        (fun (l : Network.literal) ->
          if l.atom = v then
            if l.positive = old_value then begin
              st.true_counts.(ci) <- st.true_counts.(ci) - 1;
              if st.true_counts.(ci) = 0 then mark_unsat st ci
            end
            else begin
              st.true_counts.(ci) <- st.true_counts.(ci) + 1;
              if st.true_counts.(ci) = 1 then mark_sat st ci
            end)
        c.literals)
    st.occurrences.(v)

(* Cost change (hard, soft) of flipping [v], by break/make counting. *)
let delta st v =
  let dhard = ref 0 and dsoft = ref 0.0 in
  List.iter
    (fun ci ->
      let c = st.network.Network.clauses.(ci) in
      let sign =
        if st.true_counts.(ci) = 1 then begin
          (* Breaks iff the single true literal is carried by [v]. *)
          if
            Array.exists
              (fun (l : Network.literal) ->
                l.atom = v && literal_true st.assignment l)
              c.literals
          then 1
          else 0
        end
        else if st.true_counts.(ci) = 0 then
          (* Makes iff [v] carries a literal that becomes true. *)
          if
            Array.exists
              (fun (l : Network.literal) ->
                l.atom = v && not (literal_true st.assignment l))
              c.literals
          then -1
          else 0
        else 0
      in
      if sign <> 0 then
        match clause_weight c with
        | `Hard -> dhard := !dhard + sign
        | `Soft w -> dsoft := !dsoft +. (w *. float_of_int sign))
    st.occurrences.(v);
  (!dhard, !dsoft)

let better (h1, s1) (h2, s2) =
  h1 < h2 || (h1 = h2 && s1 < s2 -. 1e-12)

let perfect (h, s) = h = 0 && s = 0.0

(* Exact cost of [assignment], summing violated soft weight in clause
   order. The in-descent soft cost is incremental and drifts by float
   rounding ((s +. w) -. w need not equal s), so attempts are compared
   on this recomputation: the reported cost — and hence the portfolio
   winner — is a pure function of the assignment, not of the add/remove
   history, which keeps the winner identical at every job count. *)
let evaluate (network : Network.t) assignment =
  let hard = ref 0 and soft = ref 0.0 in
  Array.iter
    (fun (c : Network.clause) ->
      if not (Array.exists (literal_true assignment) c.literals) then
        match clause_weight c with
        | `Hard -> incr hard
        | `Soft w -> soft := !soft +. w)
    network.Network.clauses;
  (!hard, !soft)

(* One full WalkSAT descent from [start], task-local. [stop] holds the
   smallest task index that has reached cost (0, 0) ([max_int] while
   none has). It is only consulted *between* tasks, never inside a
   running descent, and task [k] skips only when [stop < k] — a plain
   boolean would let a later, faster-scheduled optimum skip an
   earlier-indexed task it loses the tie-break to. With the index
   check, every task below the first perfect one completes identically
   to a sequential run, and a skipped later task could at best have
   tied — which loses the earliest-task tie-break. The winning
   assignment, not just its cost, is thus the same at every job
   count. *)
type attempt = {
  a_cost : int * float;
  a_assignment : bool array;
  a_flips : int;
  a_trail : (float * float) list;
      (* (absolute ms, scalarised best cost) at each improvement,
         newest first; [] unless observability is enabled *)
}

let skipped_attempt =
  { a_cost = (max_int, infinity); a_assignment = [||]; a_flips = 0; a_trail = [] }

(* Hard violations dominate soft cost lexicographically; one scalar for
   the convergence timeline. Soft weights are nowhere near 1e9. *)
let scalar_cost (h, s) = (float_of_int h *. 1e9) +. s

(* Lower [stop] to [k] if no smaller index is recorded yet. *)
let rec note_perfect stop k =
  let cur = Atomic.get stop in
  if k < cur && not (Atomic.compare_and_set stop cur k) then note_perfect stop k

(* Poll the deadline every 256 flips: a flip is cheap, a clock read is
   not, and a safe point is any flip boundary — [best] always holds a
   complete assignment. *)
let poll_mask = 0xff

let descend st rng ~max_flips ~stall ~noise ~deadline ~stop ~k ~observing
    start =
  reset_state st start;
  let current_cost st = (st.unsat_hard.len, st.soft_cost) in
  let best = ref (Array.copy st.assignment) in
  let best_cost = ref (current_cost st) in
  let trail = ref [] in
  let note cost =
    if observing then
      trail := (Prelude.Timing.now_ms (), scalar_cost cost) :: !trail
  in
  note !best_cost;
  let update_best () =
    let cost = current_cost st in
    if better cost !best_cost then begin
      best_cost := cost;
      Array.blit st.assignment 0 !best 0 (Array.length st.assignment);
      note cost;
      true
    end
    else false
  in
  let since_improvement = ref 0 in
  let flips = ref 0 in
  let halted = ref false in
  while
    (not !halted)
    && !flips < max_flips
    && st.unsat_hard.len + st.unsat_soft.len > 0
    && !since_improvement < stall
  do
    if !flips land poll_mask = 0 && Deadline.expired deadline then
      halted := true
    else begin
    incr flips;
    (* Repair hard violations with priority: a solution violating a
       hard constraint is worthless whatever its soft cost. *)
    let ci =
      if st.unsat_hard.len > 0
         && (st.unsat_soft.len = 0 || not (Prng.bernoulli rng 0.1))
      then st.unsat_hard.items.(Prng.int rng st.unsat_hard.len)
      else st.unsat_soft.items.(Prng.int rng st.unsat_soft.len)
    in
    let c = st.network.Network.clauses.(ci) in
    let v =
      if Prng.bernoulli rng noise then
        (Array.get c.literals (Prng.int rng (Array.length c.literals))).atom
      else begin
        (* Greedy: the literal whose flip lowers cost the most. *)
        let best_var = ref (Array.get c.literals 0).atom in
        let best_delta = ref (delta st !best_var) in
        Array.iter
          (fun (l : Network.literal) ->
            if l.atom <> !best_var then begin
              let d = delta st l.atom in
              if better d !best_delta then begin
                best_delta := d;
                best_var := l.atom
              end
            end)
          c.literals;
        !best_var
      end
    in
      flip st v;
      if update_best () then since_improvement := 0 else incr since_improvement
    end
  done;
  let cost = evaluate st.network !best in
  if perfect cost then note_perfect stop k;
  note cost;
  { a_cost = cost; a_assignment = !best; a_flips = !flips; a_trail = !trail }

let solve ?(seed = 7) ?(max_flips = 100_000) ?(restarts = 3) ?(noise = 0.2)
    ?(stall = 20_000) ?init ?(portfolio = []) ?(pool = Pool.sequential)
    ?(deadline = Deadline.none) network =
  let base =
    match init with
    | Some a -> Array.copy a
    | None -> Array.make network.Network.num_atoms false
  in
  (* Task seeds: the configured restarts draw derived seeds; portfolio
     seeds are appended verbatim as extra independent descents. Task 0
     starts at [base]; every other task starts at a perturbation of
     [base] drawn from its own stream, so tasks are independent of each
     other and of the schedule. *)
  let seeds =
    Array.of_list
      (List.init (max 1 restarts) (fun i -> Prng.subseed seed i) @ portfolio)
  in
  let occurrences = build_occurrences network in
  let observing = Obs.enabled () in
  let stop = Atomic.make max_int in
  let start_of_task rng k =
    if k = 0 then Array.copy base
    else begin
      (* Perturb the base assignment to escape its basin. WalkSAT moves
         only touch variables of violated clauses, so the perturbation
         must be able to reach the others: flip a guaranteed handful. *)
      let start = Array.copy base in
      let n = Array.length start in
      if n > 0 then begin
        let forced = max 1 (n / 10) in
        for _ = 1 to forced do
          let v = Prng.int rng n in
          start.(v) <- not start.(v)
        done;
        Array.iteri
          (fun v _ ->
            if Prng.bernoulli rng 0.05 then start.(v) <- not start.(v))
          start
      end;
      start
    end
  in
  (* Every task — sequential or pooled — is crash-contained: a raised
     exception (in particular an injected "worker_crash" fault) loses
     that one attempt and nothing else. Expired deadlines skip tasks
     that have not started; running descents stop at their next poll. *)
  let run_task st k =
    if Atomic.get stop < k then skipped_attempt
    else begin
      if k > 0 then Deadline.Faults.inject "worker_crash" ~index:k;
      let rng = Prng.create seeds.(k) in
      let start = start_of_task rng k in
      descend st rng ~max_flips ~stall ~noise ~deadline ~stop ~k ~observing
        start
    end
  in
  let results =
    if Pool.jobs pool = 1 then begin
      (* Sequential path: one state reused across restarts (reset in
         place), early exit once an optimum has been found. *)
      let st = make_state network occurrences in
      List.filter_map
        (fun k ->
          if Deadline.expired deadline then Some (Error Deadline.Expired)
          else if Atomic.get stop < k then None
          else
            match run_task st k with
            | a -> Some (Ok a)
            | exception e -> Some (Error e))
        (List.init (Array.length seeds) Fun.id)
    end
    else
      (* Parallel portfolio: every task gets its own state over the
         shared occurrence lists; once some domain reaches cost (0, 0)
         descents with a larger index stop being started (running ones
         complete). *)
      Pool.map_results ~deadline pool
        (fun k -> run_task (make_state network occurrences) k)
        (List.init (Array.length seeds) Fun.id)
  in
  let attempts = List.filter_map Result.to_option results in
  let crashed =
    List.exists
      (function Error Deadline.Expired | Ok _ -> false | Error _ -> true)
      results
  in
  (* Deterministic pick: lexicographic (hard, soft), earliest task wins
     ties. The (0, 0) short-circuit can only drop attempts that would
     have lost anyway, so the winning cost is schedule-independent. *)
  let best =
    List.fold_left
      (fun acc a ->
        match acc with
        | Some b when not (better a.a_cost b.a_cost) -> acc
        | _ -> Some a)
      None attempts
  in
  let best =
    match best with
    | Some a -> a
    | None ->
        (* All tasks skipped (already-expired deadline) or crashed:
           score the base assignment directly — the one answer that is
           always available immediately. *)
        {
          a_cost = evaluate network base;
          a_assignment = Array.copy base;
          a_flips = 0;
          a_trail = [];
        }
  in
  let total_flips = List.fold_left (fun acc a -> acc + a.a_flips) 0 attempts in
  let restarts_used =
    max 0 (List.length (List.filter (fun a -> a.a_flips > 0) attempts) - 1)
  in
  let hard_violated, soft_cost = best.a_cost in
  let status =
    if crashed then Deadline.Degraded
    else if Deadline.expired deadline then
      if hard_violated > 0 then Deadline.Degraded else Deadline.Timed_out
    else Deadline.Completed
  in
  Obs.count ~n:total_flips "walksat.flips";
  Obs.count ~n:restarts_used "walksat.restarts";
  Obs.count ~n:(List.length attempts) "walksat.portfolio_tasks";
  Obs.record "walksat.flips_per_solve" (float_of_int total_flips);
  Obs.gauge "walksat.soft_cost" soft_cost;
  if observing then begin
    (* Convergence timeline: improvement samples from every attempt,
       time-ordered, lowered to a running minimum so the curve is the
       portfolio-wide best-so-far (non-increasing by construction). *)
    let samples =
      List.concat_map (fun a -> List.rev a.a_trail) attempts
      |> List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
    in
    let samples =
      match samples with
      | [] -> [ (Prelude.Timing.now_ms (), scalar_cost best.a_cost) ]
      | _ -> samples
    in
    ignore
      (List.fold_left
         (fun running (t, c) ->
           let running = Float.min running c in
           Obs.sample "walksat.convergence" ~t_ms:t ~v:running;
           running)
         infinity samples);
    List.iteri
      (fun k r ->
        match r with
        | Ok a when a.a_flips > 0 ->
            let h, s = a.a_cost in
            Obs.event ~level:Obs.Events.Debug "walksat.restart"
              [
                ("task", Obs.Events.Int k);
                ("flips", Obs.Events.Int a.a_flips);
                ("hard", Obs.Events.Int h);
                ("soft", Obs.Events.Float s);
              ]
        | Ok _ -> ()
        | Error Deadline.Expired ->
            Obs.event ~level:Obs.Events.Warn "walksat.task_expired"
              [ ("task", Obs.Events.Int k) ]
        | Error e ->
            Obs.event ~level:Obs.Events.Warn "walksat.task_crashed"
              [
                ("task", Obs.Events.Int k);
                ("error", Obs.Events.Str (Printexc.to_string e));
              ])
      results
  end;
  ( best.a_assignment,
    { flips = total_flips; restarts_used; hard_violated; soft_cost; status } )
