module Prng = Prelude.Prng
module Pool = Prelude.Pool
module Deadline = Prelude.Deadline

type result = {
  marginals : float array;
  samples : int;
  recorded : int;
  rejected : int;
  chains : int;
  status : Deadline.status;
}

(* Draw a (near-)uniform satisfying assignment of the clause subset [m]
   with randomized WalkSAT from a random initial state: high noise gives
   the chain enough entropy to act as a SampleSAT stand-in. Returns None
   when the flip budget is exhausted. *)
let sample_sat rng network m sample_flips state =
  let selected =
    { network with Network.clauses = Array.of_list m }
  in
  (* Random restart point: perturb the current state a little rather than
     fully randomize, which keeps acceptance high while still moving. *)
  let start = Array.copy state in
  Array.iteri
    (fun v _ -> if Prng.bernoulli rng 0.2 then start.(v) <- not start.(v))
    start;
  let assignment, stats =
    Maxwalksat.solve
      ~seed:(Prng.int rng 1_000_000)
      ~max_flips:sample_flips ~restarts:2 ~noise:0.5 ~init:start selected
  in
  (* All selected clauses are treated as hard by the caller's contract:
     they entered [m] as "must stay satisfied". Our MaxWalkSAT treats
     hard (None-weight) clauses lexicographically, so check both. *)
  if
    stats.Maxwalksat.hard_violated = 0
    && Array.for_all
         (fun c -> Network.clause_satisfied c assignment)
         selected.Network.clauses
  then begin
    (* WalkSAT halts at the first solution it reaches, which biases
       toward solutions near the start. De-bias with a Metropolis walk
       inside the solution space: flip a random variable, keep the flip
       only if every selected clause still holds — a symmetric chain
       whose stationary distribution is uniform over solutions. *)
    let n = Array.length assignment in
    let occurrences = Array.make n [] in
    Array.iteri
      (fun ci (c : Network.clause) ->
        Array.iter
          (fun (l : Network.literal) ->
            occurrences.(l.atom) <- ci :: occurrences.(l.atom))
          c.literals)
      selected.Network.clauses;
    let x = Array.copy assignment in
    for _ = 1 to 6 * n do
      let v = Prng.int rng n in
      x.(v) <- not x.(v);
      let still_ok =
        List.for_all
          (fun ci ->
            Network.clause_satisfied selected.Network.clauses.(ci) x)
          occurrences.(v)
      in
      if not still_ok then x.(v) <- not x.(v)
    done;
    Some x
  end
  else None

let harden (c : Network.clause) = { c with Network.weight = None }

let run ?(seed = 7) ?(burn_in = 100) ?(samples = 1_000)
    ?(sample_flips = 10_000) ?init ?(chains = 1) ?(pool = Pool.sequential)
    ?(deadline = Deadline.none) (network : Network.t) =
  if chains < 1 then invalid_arg "Mcsat.run: chains must be >= 1";
  let n = network.num_atoms in
  let hard, soft =
    Array.to_list network.clauses
    |> List.partition (fun (c : Network.clause) -> c.weight = None)
  in
  let hard = List.map harden hard in
  (* Initial state: satisfy the hard clauses. Computed once (it depends
     only on [seed] and [init]) and copied into every chain. *)
  let initial =
    let candidate =
      match init with Some a -> Array.copy a | None -> Array.make n false
    in
    if
      List.for_all (fun c -> Network.clause_satisfied c candidate) hard
    then candidate
    else begin
      let hard_only = { network with Network.clauses = Array.of_list hard } in
      let a, stats = Maxwalksat.solve ~seed ~init:candidate hard_only in
      if stats.Maxwalksat.hard_violated > 0 then
        invalid_arg "Mcsat.run: hard clauses are unsatisfiable";
      a
    end
  in
  (* One independent chain. Chain 0 keeps the caller's seed (identical
     to the single-chain sampler); chain [k] derives its own stream, so
     the merged marginals depend only on [chains] and [seed], never on
     how the chains are scheduled. *)
  let observing = Obs.enabled () in
  let run_chain k =
    if k > 0 then Deadline.Faults.inject "worker_crash" ~index:k;
    let chain_seed = if k = 0 then seed else Prng.subseed seed k in
    let rng = Prng.create chain_seed in
    let state = ref (Array.copy initial) in
    let counts = Array.make n 0 in
    let rejected = ref 0 in
    let recorded = ref 0 in
    let halted = ref false in
    (* Progress trail for the convergence timeline: (absolute ms,
       samples recorded since the previous entry), noted every 8
       recorded slice-sampling steps plus once at the end. *)
    let trail = ref [] in
    let last_noted = ref 0 in
    let note () =
      if observing && !recorded > !last_noted then begin
        trail :=
          (Prelude.Timing.now_ms (), float_of_int (!recorded - !last_noted))
          :: !trail;
        last_noted := !recorded
      end
    in
    let step record =
      (* Slice selection: hard clauses always; satisfied soft clauses with
         probability 1 - exp(-w). *)
      let m =
        hard
        @ List.filter_map
            (fun (c : Network.clause) ->
              match c.weight with
              | Some w
                when Network.clause_satisfied c !state
                     && Prng.bernoulli rng (1.0 -. exp (-.w)) ->
                  Some (harden c)
              | _ -> None)
            soft
      in
      (match sample_sat rng network m sample_flips !state with
      | Some next -> state := next
      | None -> incr rejected);
      if record then begin
        incr recorded;
        Array.iteri
          (fun v value -> if value then counts.(v) <- counts.(v) + 1)
          !state;
        if !recorded land 7 = 0 then note ()
      end
    in
    (* A slice-sampling step is the polling granularity: a step runs a
       bounded inner WalkSAT solve, so expiry is noticed within one
       [sample_flips] budget. Interrupted chains report the samples they
       actually recorded. *)
    let budgeted_step record =
      if !halted || Deadline.expired deadline then halted := true
      else step record
    in
    for _ = 1 to burn_in do
      budgeted_step false
    done;
    for _ = 1 to samples do
      budgeted_step true
    done;
    note ();
    (counts, !rejected, !recorded, List.rev !trail)
  in
  let results =
    Pool.map_results ~deadline pool run_chain (List.init chains Fun.id)
  in
  let per_chain = List.filter_map Result.to_option results in
  let crashed =
    List.exists
      (function Error Deadline.Expired | Ok _ -> false | Error _ -> true)
      results
  in
  let totals = Array.make n 0 in
  let rejected =
    List.fold_left
      (fun acc (counts, rej, _, _) ->
        for v = 0 to n - 1 do
          totals.(v) <- totals.(v) + counts.(v)
        done;
        acc + rej)
      0 per_chain
  in
  let recorded =
    List.fold_left (fun acc (_, _, r, _) -> acc + r) 0 per_chain
  in
  Obs.count ~n:recorded "mcsat.samples";
  Obs.count ~n:rejected "mcsat.rejected";
  Obs.count ~n:chains "mcsat.chains";
  if observing then begin
    (* Cumulative recorded samples over time, merged across chains. *)
    let deltas =
      List.concat_map (fun (_, _, _, trail) -> trail) per_chain
      |> List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
    in
    let deltas =
      match deltas with
      | [] -> [ (Prelude.Timing.now_ms (), float_of_int recorded) ]
      | _ -> deltas
    in
    ignore
      (List.fold_left
         (fun acc (t, d) ->
           let acc = acc +. d in
           Obs.sample "mcsat.convergence" ~t_ms:t ~v:acc;
           acc)
         0.0 deltas);
    List.iteri
      (fun k r ->
        match r with
        | Ok (_, chain_rejected, chain_recorded, _) ->
            Obs.event ~level:Obs.Events.Debug "mcsat.chain"
              [
                ("chain", Obs.Events.Int k);
                ("recorded", Obs.Events.Int chain_recorded);
                ("rejected", Obs.Events.Int chain_rejected);
              ]
        | Error Deadline.Expired ->
            Obs.event ~level:Obs.Events.Warn "mcsat.chain_expired"
              [ ("chain", Obs.Events.Int k) ]
        | Error e ->
            Obs.event ~level:Obs.Events.Warn "mcsat.chain_crashed"
              [
                ("chain", Obs.Events.Int k);
                ("error", Obs.Events.Str (Printexc.to_string e));
              ])
      results
  end;
  let status =
    if crashed || recorded = 0 then Deadline.Degraded
    else if Deadline.expired deadline || recorded < chains * samples then
      Deadline.Timed_out
    else Deadline.Completed
  in
  let marginals =
    if recorded = 0 then
      (* Nothing sampled: the hard-consistent initial state is the best
         available answer — report its point mass. *)
      Array.map (fun b -> if b then 1.0 else 0.0) initial
    else
      let denom = float_of_int recorded in
      Array.map (fun c -> float_of_int c /. denom) totals
  in
  { marginals; samples; recorded; rejected; chains; status }
