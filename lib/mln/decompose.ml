module Deadline = Prelude.Deadline

type component = {
  atoms : int array;
  network : Network.t;
}

type solved = {
  values : bool array;
  status : Deadline.status;
  cpi : Cpi.stats option;
}

(* Canonical structural form of a component: literals as signed 1-based
   local indices plus the weight and source of every clause, and the
   initial assignment restricted to the component. Keys are compared
   structurally (never by hash alone), so a cache lookup can only
   succeed on a component whose sub-problem is byte-identical to the
   one that produced the entry — the property that makes reusing the
   cached solution sound for the differential oracle. *)
type key = {
  k_atoms : int;
  k_clauses : (int array * float option * string) array;
  k_init : bool array;
}

type cache = {
  table : (key, solved) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type cache_stats = { entries : int; hits : int; misses : int }

let create_cache () = { table = Hashtbl.create 256; hits = 0; misses = 0 }

let clear_cache c =
  Hashtbl.reset c.table;
  c.hits <- 0;
  c.misses <- 0

let cache_stats c =
  { entries = Hashtbl.length c.table; hits = c.hits; misses = c.misses }

(* Entries never expire (they stay valid for any future network that
   reproduces the component), so bound the table against pathological
   edit streams that keep minting new components. *)
let max_entries = 65_536

type stats = { components : int; cache_hits : int; cache_misses : int }

let split (network : Network.t) =
  let n = network.Network.num_atoms in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
  in
  Array.iter
    (fun (c : Network.clause) ->
      let lits = c.Network.literals in
      if Array.length lits > 1 then begin
        let a0 = lits.(0).Network.atom in
        Array.iter (fun (l : Network.literal) -> union a0 l.Network.atom) lits
      end)
    network.Network.clauses;
  (* Union by smallest root, so each component's root is its smallest
     atom and first-seen order of roots is ascending — components come
     out in a canonical, job-count-independent order. *)
  let members = Hashtbl.create 64 in
  let roots = ref [] in
  for i = 0 to n - 1 do
    let r = find i in
    (match Hashtbl.find_opt members r with
    | None ->
        roots := r :: !roots;
        Hashtbl.add members r (ref [ i ])
    | Some l -> l := i :: !l)
  done;
  let roots = List.rev !roots in
  let local = Array.make n 0 in
  let atoms_of_root =
    List.map
      (fun r ->
        let atoms = Array.of_list (List.rev !(Hashtbl.find members r)) in
        Array.iteri (fun li a -> local.(a) <- li) atoms;
        (r, atoms))
      roots
  in
  let clauses_of_root = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.add clauses_of_root r (ref [])) atoms_of_root;
  let orphan = ref false in
  Array.iter
    (fun (c : Network.clause) ->
      if Array.length c.Network.literals = 0 then orphan := true
      else begin
        let r = find c.Network.literals.(0).Network.atom in
        let cell = Hashtbl.find clauses_of_root r in
        cell :=
          {
            c with
            Network.literals =
              Array.map
                (fun (l : Network.literal) ->
                  { l with Network.atom = local.(l.Network.atom) })
                c.Network.literals;
          }
          :: !cell
      end)
    network.Network.clauses;
  if !orphan then
    (* A zero-literal clause has no component to live in; solving such a
       network piecewise could silently drop it. Degenerate and (with
       the current builder) unreachable — fall back to one component. *)
    [ { atoms = Array.init n Fun.id; network } ]
  else
    List.map
      (fun (r, atoms) ->
        let clauses = Array.of_list (List.rev !(Hashtbl.find clauses_of_root r)) in
        {
          atoms;
          network = { Network.num_atoms = Array.length atoms; clauses };
        })
      atoms_of_root

let key_of component ~init =
  {
    k_atoms = component.network.Network.num_atoms;
    k_clauses =
      Array.map
        (fun (c : Network.clause) ->
          ( Array.map
              (fun (l : Network.literal) ->
                if l.Network.positive then l.Network.atom + 1
                else -(l.Network.atom + 1))
              c.Network.literals,
            c.Network.weight,
            c.Network.source ))
        component.network.Network.clauses;
    k_init = init;
  }

let merge_cpi acc = function
  | None -> acc
  | Some (s : Cpi.stats) -> (
      match acc with
      | None -> Some s
      | Some (t : Cpi.stats) ->
          Some
            {
              Cpi.iterations = t.Cpi.iterations + s.Cpi.iterations;
              active_clauses = t.Cpi.active_clauses + s.Cpi.active_clauses;
              total_clauses = t.Cpi.total_clauses + s.Cpi.total_clauses;
              status = Deadline.worst t.Cpi.status s.Cpi.status;
            })

let solve ?cache ~solve_component ~init (network : Network.t) =
  let components = split network in
  let out = Array.make network.Network.num_atoms false in
  let status = ref Deadline.Completed in
  let cpi = ref None in
  let hits = ref 0 and misses = ref 0 in
  List.iter
    (fun component ->
      let k = Array.length component.atoms in
      let local_init = Array.init k (fun i -> init.(component.atoms.(i))) in
      let run () =
        if Array.length component.network.Network.clauses = 0 then
          { values = Array.copy local_init; status = Deadline.Completed; cpi = None }
        else solve_component component.network ~init:local_init
      in
      let solved =
        match cache with
        | None ->
            incr misses;
            run ()
        | Some c -> (
            let key = key_of component ~init:local_init in
            match Hashtbl.find_opt c.table key with
            | Some s ->
                incr hits;
                c.hits <- c.hits + 1;
                s
            | None ->
                incr misses;
                c.misses <- c.misses + 1;
                let s = run () in
                (* Only fully-completed component solves are pure replays
                   of a deterministic function of the key; anything cut
                   short or degraded must be recomputed next time. *)
                if s.status = Deadline.Completed then begin
                  if Hashtbl.length c.table >= max_entries then
                    Hashtbl.reset c.table;
                  Hashtbl.add c.table key s
                end;
                s)
      in
      Array.iteri (fun i v -> out.(component.atoms.(i)) <- v) solved.values;
      status := Deadline.worst !status solved.status;
      cpi := merge_cpi !cpi solved.cpi)
    components;
  Obs.count ~n:(List.length components) "solve.components";
  Obs.count ~n:!hits "solve.cache_hits";
  Obs.count ~n:!misses "solve.cache_misses";
  ( out,
    !status,
    !cpi,
    { components = List.length components; cache_hits = !hits; cache_misses = !misses }
  )
