(** Cutting-plane inference (CPI).

    RockIt-style MAP inference rarely needs the full ground network: most
    ground clauses are already satisfied by the evidence. CPI starts from
    the unit clauses only (evidence and priors), solves that relaxation,
    then adds the clauses the current solution violates and re-solves,
    iterating until no clause of the full network is violated. On sparse
    conflict structure the solver only ever sees a small active set. *)

type stats = {
  iterations : int;
  active_clauses : int;     (** clauses in the final active set *)
  total_clauses : int;
  status : Prelude.Deadline.status;
      (** worst status over the inner solves; at least [Timed_out] when
          the deadline cut the separation loop short (the returned
          assignment then proves only the active subset, not the full
          network) *)
}

val solve :
  ?solver:(Network.t -> init:bool array -> bool array * Prelude.Deadline.status) ->
  ?deadline:Prelude.Deadline.t ->
  init:bool array ->
  Network.t ->
  bool array * stats
(** The default [solver] is MaxWalkSAT seeded from [init] and budgeted
    by [deadline] (default {!Prelude.Deadline.none}); a custom solver
    reports its own anytime status per round ([Completed] if it has no
    notion of deadlines). The separation loop additionally polls
    [deadline] between rounds and stops early on expiry, returning the
    latest assignment. *)
