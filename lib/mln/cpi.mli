(** Cutting-plane inference (CPI).

    RockIt-style MAP inference rarely needs the full ground network: most
    ground clauses are already satisfied by the evidence. CPI starts from
    the unit clauses only (evidence and priors), solves that relaxation,
    then adds the clauses the current solution violates and re-solves,
    iterating until no clause of the full network is violated. On sparse
    conflict structure the solver only ever sees a small active set. *)

type stats = {
  iterations : int;
  active_clauses : int;     (** clauses in the final active set *)
  total_clauses : int;
}

val solve :
  ?solver:(Network.t -> init:bool array -> bool array) ->
  init:bool array ->
  Network.t ->
  bool array * stats
(** The default [solver] is MaxWalkSAT seeded from [init]. *)
