(** Marginal inference by Gibbs sampling.

    TeCoRe focuses on MAP inference, but the demo's discussion
    contrasts it with marginal inference; this sampler provides the
    latter over the same ground network: the probability of each ground
    atom being true under the MLN distribution

    [P(X = x) = Z^-1 exp (Σ_i w_i n_i(x))].

    Hard clauses are handled as large-but-finite weights so the chain
    stays ergodic; the returned marginals therefore concentrate on (not
    strictly restrict to) the consistent worlds. Marginals give each
    fact an individual posterior confidence — a per-fact complement to
    the single most-probable world computed by MAP. *)

type result = {
  marginals : float array;  (** P(atom = true), one entry per atom id *)
  samples : int;            (** requested per chain *)
  recorded : int;           (** sample sweeps actually counted, summed
                                over chains — the marginal denominator *)
  burn_in : int;            (** per chain *)
  chains : int;
  status : Prelude.Deadline.status;
      (** [Completed] when every chain recorded all requested samples;
          [Timed_out] when the deadline cut sampling short but at least
          one sample was recorded; [Degraded] when a chain crashed or
          nothing was recorded at all *)
}

val run :
  ?seed:int ->
  ?burn_in:int ->
  ?samples:int ->
  ?hard_weight:float ->
  ?init:bool array ->
  ?chains:int ->
  ?pool:Prelude.Pool.t ->
  ?deadline:Prelude.Deadline.t ->
  Network.t ->
  result
(** Defaults: [burn_in = 1_000] sweeps, [samples = 5_000] sweeps,
    [hard_weight = 2 * Kg.Quad.max_weight], start at [init] (all-false
    when omitted). One sweep resamples every atom once in order.

    [chains] (default 1) runs that many independent chains and averages
    their sample counts; chain 0 uses [seed] verbatim (so [chains = 1]
    reproduces the single-chain sampler exactly) and chain [k] derives
    its stream with {!Prelude.Prng.subseed}. [pool] (default
    {!Prelude.Pool.sequential}) runs chains on worker domains; the chain
    set is fixed by [chains] and [seed] alone, so the merged marginals
    are identical at every job count.

    Anytime contract: [deadline] (default {!Prelude.Deadline.none}) is
    polled between sweeps; on expiry each chain stops and the marginals
    are averaged over the sweeps actually recorded ([recorded]). When
    nothing was recorded the result degenerates to the point mass of
    the start state with [status = Degraded]. A crashed chain loses
    only its own samples. *)
