(** MaxWalkSAT: stochastic local search for weighted partial MaxSAT.

    The scalable approximate MAP solver of the MLN path (the exact
    ILP/branch-and-bound path is {!Exact} and {!Ilp_encoding}). Hard
    clauses dominate lexicographically: an assignment with fewer hard
    violations always beats one with more, regardless of soft cost. *)

type stats = {
  flips : int;
  restarts_used : int;
  hard_violated : int;      (** in the returned assignment *)
  soft_cost : float;        (** violated soft weight in the result *)
}

val solve :
  ?seed:int ->
  ?max_flips:int ->
  ?restarts:int ->
  ?noise:float ->
  ?stall:int ->
  ?init:bool array ->
  Network.t ->
  bool array * stats
(** [solve network] returns the best assignment found. Defaults:
    [max_flips = 100_000] per restart, [restarts = 3], [noise = 0.2]
    (probability of a random walk move), [stall = 20_000] flips without
    improvement before restarting early. [init] seeds the first descent
    (by default the evidence assignment is all-false; callers should pass
    {!Network.initial_assignment}). *)
