(** MaxWalkSAT: stochastic local search for weighted partial MaxSAT.

    The scalable approximate MAP solver of the MLN path (the exact
    ILP/branch-and-bound path is {!Exact} and {!Ilp_encoding}). Hard
    clauses dominate lexicographically: an assignment with fewer hard
    violations always beats one with more, regardless of soft cost.

    The solver runs a portfolio of independent descents: the configured
    [restarts] (task 0 starts from [init], later tasks from seeded
    perturbations of it) plus any extra [portfolio] seeds. Tasks draw
    from per-task PRNG streams ({!Prelude.Prng.subseed}) and the winner
    is picked by lexicographic [(hard, soft)] cost with the earliest
    task breaking ties, so the result cost does not depend on how the
    tasks are scheduled: passing a {!Prelude.Pool} runs them on worker
    domains without changing the reported objective. *)

type stats = {
  flips : int;              (** total across all descents *)
  restarts_used : int;      (** descents beyond the first that did work *)
  hard_violated : int;      (** in the returned assignment *)
  soft_cost : float;        (** violated soft weight in the result *)
  status : Prelude.Deadline.status;
      (** anytime outcome: [Completed] when every descent ran to its
          natural end, [Timed_out] when the deadline cut search short
          but the answer satisfies every hard clause, [Degraded] when a
          descent crashed or the timed-out answer still violates hard
          clauses *)
}

val solve :
  ?seed:int ->
  ?max_flips:int ->
  ?restarts:int ->
  ?noise:float ->
  ?stall:int ->
  ?init:bool array ->
  ?portfolio:int list ->
  ?pool:Prelude.Pool.t ->
  ?deadline:Prelude.Deadline.t ->
  Network.t ->
  bool array * stats
(** [solve network] returns the best assignment found. Defaults:
    [max_flips = 100_000] per descent, [restarts = 3], [noise = 0.2]
    (probability of a random walk move), [stall = 20_000] flips without
    improvement before giving up on a descent. [init] seeds the base
    assignment (by default all-false; callers should pass
    {!Network.initial_assignment}). [portfolio] appends extra descents
    with exactly these seeds. [pool] (default
    {!Prelude.Pool.sequential}) runs the descents as parallel tasks; a
    descent reaching cost [(0, 0)] prevents further descents from
    starting (running ones complete), which never changes the winning
    assignment.

    Anytime contract: [deadline] (default {!Prelude.Deadline.none}) is
    polled every 256 flips; on expiry each running descent stops at its
    next poll and unstarted descents are skipped, but the best
    assignment seen so far is always returned — an already-expired
    deadline yields the scored [init] assignment immediately. A descent
    that raises (e.g. an injected ["worker_crash"] fault) loses only
    its own attempt. With an infinite deadline and no faults the result
    is identical to a build without this mechanism. *)
