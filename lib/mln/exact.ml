type result = {
  assignment : bool array;
  soft_cost : float;
  nodes : int;
  optimal : bool;
}

type undo = {
  mutable trail : int list; (* vars assigned since the choice point *)
}

(* Deadline polls are strided: a node expansion is tens of nanoseconds,
   a clock read is not. 1024 nodes stay well under a millisecond. *)
let deadline_stride = 1024

let solve ?(max_nodes = 2_000_000) ?(deadline = Prelude.Deadline.none)
    (network : Network.t) =
  let n = network.num_atoms in
  let clauses = network.clauses in
  let num_clauses = Array.length clauses in
  (* -1 unassigned, 0 false, 1 true *)
  let value = Array.make n (-1) in
  let occurrences = Array.make n [] in
  Array.iteri
    (fun ci (c : Network.clause) ->
      Array.iter
        (fun (l : Network.literal) ->
          occurrences.(l.atom) <- ci :: occurrences.(l.atom))
        c.literals)
    clauses;
  (* Variable order: descending occurrence count (most constrained first). *)
  let order =
    let vars = Array.init n (fun v -> v) in
    Array.sort
      (fun a b ->
        Int.compare (List.length occurrences.(b)) (List.length occurrences.(a)))
      vars;
    vars
  in
  let lit_state (l : Network.literal) =
    match value.(l.atom) with
    | -1 -> `Unassigned
    | v -> if (v = 1) = l.positive then `True else `False
  in
  let clause_state ci =
    let c = clauses.(ci) in
    let unassigned = ref 0 in
    let satisfied = ref false in
    Array.iter
      (fun l ->
        match lit_state l with
        | `True -> satisfied := true
        | `False -> ()
        | `Unassigned -> incr unassigned)
      c.literals;
    if !satisfied then `Satisfied
    else if !unassigned = 0 then `Violated
    else `Open !unassigned
  in
  let incumbent = ref None in
  let incumbent_cost = ref infinity in
  let nodes = ref 0 in
  let exhausted = ref false in
  (* Current violated soft weight on the path. *)
  let violated_soft = ref 0.0 in
  let assign_var trail v b =
    value.(v) <- (if b then 1 else 0);
    trail.trail <- v :: trail.trail
  in
  let unwind trail =
    List.iter (fun v -> value.(v) <- -1) trail.trail;
    trail.trail <- []
  in
  (* Propagate hard unit clauses; returns false on hard conflict. Also
     accumulates soft weight of clauses that became fully violated. *)
  let rec propagate trail touched =
    match touched with
    | [] -> true
    | v :: rest ->
        let conflict = ref false in
        let new_touched = ref rest in
        List.iter
          (fun ci ->
            let c = clauses.(ci) in
            if not !conflict then
              match clause_state ci with
              | `Satisfied -> ()
              | `Violated -> if c.weight = None then conflict := true
              | `Open 1 when c.weight = None ->
                  (* Hard unit: force the remaining literal. *)
                  Array.iter
                    (fun (l : Network.literal) ->
                      if lit_state l = `Unassigned then begin
                        assign_var trail l.atom l.positive;
                        new_touched := l.atom :: !new_touched
                      end)
                    c.literals
              | `Open _ -> ())
          occurrences.(v);
        (not !conflict) && propagate trail !new_touched
  in
  (* Soft cost is tracked incrementally: a soft clause is charged the
     first time it becomes fully violated (stamped so it is charged only
     once) and uncharged on backtrack. *)
  let charged = Array.make num_clauses false in
  let charge_stack = ref [] in
  let charge_soft trail_vars =
    List.iter
      (fun v ->
        List.iter
          (fun ci ->
            let c = clauses.(ci) in
            match c.weight with
            | Some w when (not charged.(ci)) && clause_state ci = `Violated ->
                charged.(ci) <- true;
                charge_stack := (ci, w) :: !charge_stack;
                violated_soft := !violated_soft +. w
            | _ -> ())
          occurrences.(v))
      trail_vars
  in
  let uncharge until =
    let rec loop () =
      if !charge_stack != until then
        match !charge_stack with
        | [] -> ()
        | (ci, w) :: rest ->
            charged.(ci) <- false;
            violated_soft := !violated_soft -. w;
            charge_stack := rest;
            loop ()
    in
    loop ()
  in
  let record_solution () =
    if !violated_soft < !incumbent_cost -. 1e-12 then begin
      incumbent_cost := !violated_soft;
      incumbent :=
        Some (Array.map (fun v -> v = 1) value)
    end
  in
  let rec search depth =
    if
      !nodes >= max_nodes
      || (!nodes land (deadline_stride - 1) = 0
         && Prelude.Deadline.expired deadline)
    then exhausted := true
    else begin
      incr nodes;
      if !violated_soft >= !incumbent_cost -. 1e-12 then () (* prune *)
      else begin
        (* Next unassigned variable in static order. *)
        let rec next i =
          if i >= n then None
          else if value.(order.(i)) = -1 then Some i
          else next (i + 1)
        in
        match next depth with
        | None -> record_solution ()
        | Some i ->
            let v = order.(i) in
            let try_value b =
              let trail = { trail = [] } in
              let saved_charges = !charge_stack in
              assign_var trail v b;
              if propagate trail [ v ] then begin
                charge_soft trail.trail;
                if !violated_soft < !incumbent_cost -. 1e-12 then
                  search (i + 1)
              end;
              uncharge saved_charges;
              unwind trail
            in
            try_value true;
            try_value false
      end
    end
  in
  search 0;
  match !incumbent with
  | None -> None
  | Some assignment ->
      Some
        {
          assignment;
          soft_cost = !incumbent_cost;
          nodes = !nodes;
          optimal = not !exhausted;
        }
