(** Exact weighted partial MaxSAT by depth-first branch & bound.

    Complete MAP inference for moderate ground networks: assigns atoms in
    a static order (most-constrained first), propagates hard unit clauses,
    and prunes branches whose already-violated soft weight cannot beat the
    incumbent. Complexity is exponential; intended for the expressive,
    small-instance regime where the paper uses nRockIt. *)

type result = {
  assignment : bool array;
  soft_cost : float;       (** violated soft weight in the optimum *)
  nodes : int;
  optimal : bool;          (** false when the node budget was exhausted *)
}

val solve :
  ?max_nodes:int -> ?deadline:Prelude.Deadline.t -> Network.t -> result option
(** [None] when the hard clauses are unsatisfiable — or, under a finite
    [deadline], when the budget expired before any solution was found
    (callers distinguish the two by checking the deadline). Default
    node budget is 2_000_000.

    [deadline] (default {!Prelude.Deadline.none}) is polled every 1024
    node expansions; on expiry the search stops, returning the best
    incumbent found so far with [optimal = false] (exactly like an
    exhausted node budget). *)
