(** End-to-end MAP inference over a UTKG with the MLN engine: the
    [map(θ(G), F ∪ C)] computation of the paper on the nRockIt path.

    Pipeline: θ-translate the graph into an atom store, saturate and
    ground the rules relationally, compile the ground network, solve
    weighted partial MaxSAT with the configured backend, and return the
    MAP state together with the artefacts needed to interpret it
    (removed evidence, derived facts). *)

type solver =
  | Walk           (** MaxWalkSAT local search (scalable, approximate) *)
  | Exact_bb       (** branch & bound MaxSAT (complete, small instances) *)
  | Ilp_exact      (** ILP reduction solved by simplex + branch & bound *)

type options = {
  solver : solver;
  use_cpi : bool;               (** wrap the solver in cutting-plane inference *)
  network_config : Network.config;
  seed : int;
  max_flips : int;
  restarts : int;
  portfolio : int list;         (** extra MaxWalkSAT descent seeds *)
  pool : Prelude.Pool.t;
      (** runs grounding joins and MaxWalkSAT descents in parallel;
          results are objective-identical at every job count *)
}

val default_options : options
(** [Walk] with CPI on, default network config, seed 7, no extra
    portfolio seeds, {!Prelude.Pool.sequential}. *)

type stats = {
  atoms : int;
  evidence_atoms : int;
  hidden_atoms : int;
  clauses : int;
  hard_clauses : int;
  closure_rounds : int;
  ground_ms : float;
  solve_ms : float;
  cpi : Cpi.stats option;
  hard_violations : int;        (** 0 unless the hard part is unsatisfiable *)
  objective : float;            (** satisfied soft weight of the MAP state *)
}

type outcome = {
  assignment : bool array;      (** MAP truth value per atom id *)
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  network : Network.t;
  stats : stats;
}

val run : ?options:options -> Kg.Graph.t -> Logic.Rule.t list -> outcome

val run_store :
  ?options:options -> Grounder.Atom_store.t -> Logic.Rule.t list -> outcome
(** Same, over a pre-built atom store (lets callers inject extra atoms). *)
