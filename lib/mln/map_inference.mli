(** End-to-end MAP inference over a UTKG with the MLN engine: the
    [map(θ(G), F ∪ C)] computation of the paper on the nRockIt path.

    Pipeline: θ-translate the graph into an atom store, saturate and
    ground the rules relationally, compile the ground network, solve
    weighted partial MaxSAT with the configured backend, and return the
    MAP state together with the artefacts needed to interpret it
    (removed evidence, derived facts). *)

type solver =
  | Walk           (** MaxWalkSAT local search (scalable, approximate) *)
  | Exact_bb       (** branch & bound MaxSAT (complete, small instances) *)
  | Ilp_exact      (** ILP reduction solved by simplex + branch & bound *)

type options = {
  solver : solver;
  use_cpi : bool;               (** wrap the solver in cutting-plane inference *)
  network_config : Network.config;
  seed : int;
  max_flips : int;
  restarts : int;
  portfolio : int list;         (** extra MaxWalkSAT descent seeds *)
  pool : Prelude.Pool.t;
      (** runs grounding joins and MaxWalkSAT descents in parallel;
          results are objective-identical at every job count *)
  deadline : Prelude.Deadline.t;
      (** solve budget. [Walk] polls it inside the descents; the exact
          backends run a degradation ladder: exact search on half the
          remaining budget, then — if optimality was not proved in the
          slice — MaxWalkSAT on the rest, seeded from the exact
          incumbent, with [status = Degraded] *)
  ground_deadline : Prelude.Deadline.t;
      (** grounding budget, polled between closure rounds; expiry
          raises {!Grounder.Ground.Timed_out} (there is no sound
          partial grounding). Kept separate from [deadline] so
          best-effort callers can budget only the solver *)
  decompose : bool;
      (** solve the network per connected component (see {!Decompose}),
          with per-component budgets scaled to component size. Only
          active under an infinite [deadline]; budgeted runs keep the
          global anytime solve path. Default [true] *)
  solve_cache : Decompose.cache option;
      (** memoises component solutions across runs (the incremental
          engine's warm start). Only consulted on the decomposed path;
          sound because component solves are pure in their canonical
          form. Default [None] *)
}

val default_options : options
(** [Walk] with CPI on, default network config, seed 7, no extra
    portfolio seeds, {!Prelude.Pool.sequential}, infinite deadlines,
    component decomposition on, no solve cache. *)

type stats = {
  atoms : int;
  evidence_atoms : int;
  hidden_atoms : int;
  clauses : int;
  hard_clauses : int;
  closure_rounds : int;
  ground_ms : float;
  solve_ms : float;
  cpi : Cpi.stats option;
  hard_violations : int;        (** 0 unless the hard part is unsatisfiable *)
  objective : float;            (** satisfied soft weight of the MAP state *)
  status : Prelude.Deadline.status;
      (** anytime outcome of the solve stage: [Completed] with an
          infinite deadline (always), [Timed_out] when the budget cut
          search short but the answer is hard-constraint-sound,
          [Degraded] when the exact→walk ladder fired, a worker
          crashed, or hard constraints are violated in a timed-out
          answer *)
}

type outcome = {
  assignment : bool array;      (** MAP truth value per atom id *)
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  network : Network.t;
  stats : stats;
}

val run : ?options:options -> Kg.Graph.t -> Logic.Rule.t list -> outcome

val run_store :
  ?options:options -> Grounder.Atom_store.t -> Logic.Rule.t list -> outcome
(** Same, over a pre-built atom store (lets callers inject extra atoms). *)

val run_ground :
  ?options:options ->
  Grounder.Atom_store.t ->
  Grounder.Ground.result ->
  ground_ms:float ->
  outcome
(** Encode-and-solve over a grounding computed elsewhere — the entry
    point of the incremental engine, which produces the grounding by
    delta replay instead of {!Grounder.Ground.run}. [ground_ms] is
    reported in the stats verbatim. *)
