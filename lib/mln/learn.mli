(** Rule-weight learning by pseudo-log-likelihood ascent.

    The demo notes that rules can be "learned from data"; weights
    certainly can. Given a training UTKG treated as the observed world
    (evidence atoms true; atoms only introduced by closure are unobserved
    and closed-world false), the generative pseudo-log-likelihood

    [PLL(w) = Σ_i log P(x_i = obs_i | MB(x_i))]

    is concave in the rule weights and its gradient has closed form: for
    atom [i], the local log-odds are [d_i = Σ_r w_r g_ir + c_i] where
    [g_ir] counts how many of rule [r]'s ground clauses containing [i]
    are satisfied in the observed world minus how many would be satisfied
    with [x_i] flipped, and [c_i] collects the same quantity for the
    fixed-weight unit clauses (evidence, priors). Both are constants of
    the training world, so each ascent iteration is linear in the number
    of (atom, rule) pairs.

    Weights are kept in [\[min_weight, max_weight\]]; a rule whose
    groundings are frequently violated by the data is driven toward the
    floor, while never-violated rules rise until the L2 prior stops
    them. *)

type options = {
  iterations : int;        (** default 200 *)
  learning_rate : float;   (** default 0.1 *)
  l2 : float;              (** L2 regularisation strength, default 0.01 *)
  min_weight : float;      (** default 0.01 *)
  max_weight : float;      (** default 15.0 *)
}

val default_options : options

type result = {
  weights : (string * float) list;
      (** learned weight per soft rule name, in input order *)
  pll_trace : float list;
      (** pseudo-log-likelihood after each iteration (monotone up to
          regularisation and clamping) *)
}

val learn :
  ?options:options ->
  Grounder.Atom_store.t ->
  Grounder.Ground.Instance.t list ->
  Logic.Rule.t list ->
  result
(** Learn weights for the soft rules in the list; hard rules and the
    evidence translation keep their fixed weights and act as the
    constant part of each atom's Markov blanket. *)

val apply : result -> Logic.Rule.t list -> Logic.Rule.t list
(** Replace each soft rule's weight with its learned value (rules
    without a learned entry are returned unchanged). *)

val pseudo_log_likelihood : Network.t -> bool array -> float
(** PLL of a world under a ground network (all clause weights as given;
    hard clauses contribute with a large finite weight). Exposed for
    testing and for comparing candidate rule sets. *)
