module Vec = Prelude.Vec
module Store = Grounder.Atom_store
module Instance = Grounder.Ground.Instance

type literal = { atom : int; positive : bool }

type clause = {
  literals : literal array;
  weight : float option;
  source : string;
}

type t = {
  num_atoms : int;
  clauses : clause array;
}

type config = {
  hidden_prior : float;
  evidence_bonus : float;
  evidence_hard : bool;
}

let default_config =
  { hidden_prior = 0.005; evidence_bonus = 0.1; evidence_hard = true }

let logit confidence =
  let w = log (confidence /. (1.0 -. confidence)) in
  Float.min Kg.Quad.max_weight (Float.max (-.Kg.Quad.max_weight) w)

let build ?(config = default_config) store instances =
  let clauses = Vec.create () in
  let push literals weight source =
    if literals <> [] then
      Vec.push clauses { literals = Array.of_list literals; weight; source }
  in
  (* Unit clauses for evidence and hidden priors. *)
  Store.iter
    (fun id _atom origin ->
      match origin with
      | Store.Evidence { confidence; _ } ->
          if confidence >= 1.0 then
            push [ { atom = id; positive = true } ]
              (if config.evidence_hard then None else Some Kg.Quad.max_weight)
              "evidence"
          else begin
            (* Confidence below 0.5 has a negative log-odds weight; keep
               all clause weights positive by asserting the negation. *)
            let w = logit confidence +. config.evidence_bonus in
            if w > 0.0 then
              push [ { atom = id; positive = true } ] (Some w) "evidence"
            else if w < 0.0 then
              push [ { atom = id; positive = false } ] (Some (-.w)) "evidence"
          end
      | Store.Hidden ->
          if config.hidden_prior > 0.0 then
            push
              [ { atom = id; positive = false } ]
              (Some config.hidden_prior) "prior")
    store;
  (* Clauses from ground rule instances. Identical hard clauses are
     deduplicated (pure efficiency); soft duplicates are genuine distinct
     groundings and must keep their cumulative weight. *)
  let seen_hard = Hashtbl.create 1024 in
  List.iter
    (fun { Instance.rule; body_atoms; head } ->
      let body_literals =
        List.map (fun id -> { atom = id; positive = false }) body_atoms
      in
      let literals =
        match head with
        | Instance.Satisfied -> []
        | Instance.Violated -> body_literals
        | Instance.Derives h -> body_literals @ [ { atom = h; positive = true } ]
      in
      match literals with
      | [] -> ()
      | _ ->
          let weight = rule.Logic.Rule.weight in
          let tautology =
            (* e.g. a reflexive self-join pairing a fact with itself:
               (-a v ... v +a) is always true. *)
            List.exists
              (fun l ->
                l.positive
                && List.exists
                     (fun l' -> (not l'.positive) && l'.atom = l.atom)
                     literals)
              literals
          in
          if not tautology then
            if weight = None then begin
              let key =
                List.sort compare
                  (List.map (fun l -> (l.atom, l.positive)) literals)
              in
              if not (Hashtbl.mem seen_hard key) then begin
                Hashtbl.replace seen_hard key ();
                push literals None rule.Logic.Rule.name
              end
            end
            else push literals weight rule.Logic.Rule.name)
    instances;
  { num_atoms = Store.size store; clauses = Vec.to_array clauses }

let clause_satisfied c x =
  Array.exists (fun l -> x.(l.atom) = l.positive) c.literals

let hard_violations t x =
  Array.fold_left
    (fun acc c ->
      if c.weight = None && not (clause_satisfied c x) then acc + 1 else acc)
    0 t.clauses

(* Greedy descent on the hard-violation count alone. Used by the
   anytime path to restore hard-soundness after a budget expiry cut the
   real search short: each applied flip strictly decreases the number
   of violated hard clauses, so the loop terminates after at most the
   initial violation count and never needs a time budget of its own. *)
let repair_hard t x =
  let occ = Array.make t.num_atoms [] in
  let rev_hard = ref [] in
  Array.iteri
    (fun c (clause : clause) ->
      if clause.weight = None then begin
        rev_hard := c :: !rev_hard;
        Array.iter
          (fun l -> occ.(l.atom) <- c :: occ.(l.atom))
          clause.literals
      end)
    t.clauses;
  let violated c = not (clause_satisfied t.clauses.(c) x) in
  let count_violated cs = List.length (List.filter violated cs) in
  let delta a =
    let before = count_violated occ.(a) in
    x.(a) <- not x.(a);
    let after = count_violated occ.(a) in
    x.(a) <- not x.(a);
    after - before
  in
  let hard = List.rev !rev_hard in
  let total = ref (count_violated hard) in
  let progress = ref true in
  while !total > 0 && !progress do
    progress := false;
    (* The first still-violated hard clause, lowest index first, keeps
       the repair deterministic. *)
    match List.find_opt violated hard with
    | None -> total := 0
    | Some c ->
        let best = ref None in
        Array.iter
          (fun (l : literal) ->
            let d = delta l.atom in
            match !best with
            | Some (_, bd) when bd <= d -> ()
            | _ -> best := Some (l.atom, d))
          t.clauses.(c).literals;
        (match !best with
        | Some (a, d) when d < 0 ->
            x.(a) <- not x.(a);
            total := !total + d;
            progress := true
        | _ -> ())
  done;
  !total

let score t x =
  Array.fold_left
    (fun acc c ->
      match c.weight with
      | Some w when clause_satisfied c x -> acc +. w
      | _ -> acc)
    0.0 t.clauses

let cost t x =
  Array.fold_left
    (fun acc c ->
      match c.weight with
      | Some w when not (clause_satisfied c x) -> acc +. w
      | _ -> acc)
    0.0 t.clauses

let initial_assignment t store =
  let x = Array.make t.num_atoms false in
  Store.iter
    (fun id _ origin ->
      match origin with
      | Store.Evidence _ -> x.(id) <- true
      | Store.Hidden -> ())
    store;
  x

let expanded_assignment t = Array.make t.num_atoms true

let pp_literal ppf l =
  Format.fprintf ppf "%s%d" (if l.positive then "+" else "-") l.atom

let pp_clause ppf c =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " v ")
       pp_literal)
    (Array.to_list c.literals);
  (match c.weight with
  | None -> Format.pp_print_string ppf " [hard]"
  | Some w -> Format.fprintf ppf " w=%g" w);
  Format.fprintf ppf " <%s>" c.source

let pp ppf t =
  let hard =
    Array.fold_left
      (fun acc c -> if c.weight = None then acc + 1 else acc)
      0 t.clauses
  in
  Format.fprintf ppf "@[<v>network: %d atoms, %d clauses (%d hard)" t.num_atoms
    (Array.length t.clauses) hard;
  Array.iteri
    (fun i c -> if i < 10 then Format.fprintf ppf "@ %a" pp_clause c)
    t.clauses;
  if Array.length t.clauses > 10 then Format.fprintf ppf "@ ...";
  Format.fprintf ppf "@]"
