type encoding = {
  lp : Ilp.Lp.t;
  binary : int list;
  num_atom_vars : int;
}

(* A clause Σ lit >= k translates to a row over atom variables: positive
   literal x contributes +x, negative contributes -x with 1 added to the
   constant side. *)
let clause_row (c : Network.clause) =
  let coeffs, negs =
    Array.fold_left
      (fun (coeffs, negs) (l : Network.literal) ->
        if l.positive then ((l.atom, 1.0) :: coeffs, negs)
        else ((l.atom, -1.0) :: coeffs, negs + 1))
      ([], 0) c.literals
  in
  (coeffs, negs)

let encode (network : Network.t) =
  let n = network.num_atoms in
  let num_soft =
    Array.fold_left
      (fun acc (c : Network.clause) ->
        if c.weight = None then acc else acc + 1)
      0 network.clauses
  in
  let num_vars = n + num_soft in
  let objective = Array.make num_vars 0.0 in
  let constraints = ref [] in
  let next_aux = ref n in
  Array.iter
    (fun (c : Network.clause) ->
      let coeffs, negs = clause_row c in
      match c.weight with
      | None ->
          (* Hard: Σ lit >= 1, i.e. Σ coeffs >= 1 - negs. *)
          constraints :=
            Ilp.Lp.constr coeffs Ilp.Lp.Ge (1.0 -. float_of_int negs)
            :: !constraints
      | Some w ->
          (* Soft: z <= Σ lit (z - Σ coeffs <= negs) and z <= 1. With the
             atoms integral, Σ lit is an integer, so z is integral at the
             optimum without being branched on. *)
          let z = !next_aux in
          incr next_aux;
          objective.(z) <- w;
          constraints :=
            Ilp.Lp.constr ((z, 1.0) :: List.map (fun (v, a) -> (v, -.a)) coeffs)
              Ilp.Lp.Le (float_of_int negs)
            :: Ilp.Lp.constr [ (z, 1.0) ] Ilp.Lp.Le 1.0
            :: !constraints)
    network.clauses;
  let lp = Ilp.Lp.make ~num_vars ~objective !constraints in
  Obs.count ~n:num_vars "ilp.vars";
  Obs.count ~n:(List.length !constraints) "ilp.constraints";
  { lp; binary = List.init n (fun i -> i); num_atom_vars = n }

let decode enc x =
  Array.init enc.num_atom_vars (fun i -> x.(i) > 0.5)

let solve ?max_nodes ?deadline network =
  let enc = encode network in
  match Ilp.Milp.solve ?max_nodes ?deadline ~binary:enc.binary enc.lp with
  | None -> None
  | Some { x; optimal; _ } -> Some (decode enc x, optimal)
