(** A named collection of tables. *)

type t

val create : unit -> t

val add_table : t -> Table.t -> unit
(** Register (or replace) a table under its own name. *)

val table : t -> string -> Table.t option

val table_exn : t -> string -> Table.t
(** @raise Not_found *)

val get_or_create : t -> name:string -> columns:string list -> Table.t
(** Existing table of that name, or a fresh empty one registered in the
    database. The existing table's schema must match. *)

val tables : t -> Table.t list

val names : t -> string list

val pp : Format.formatter -> t -> unit
