type t =
  | Term of Kg.Term.t
  | Int of int
  | Interval of Kg.Interval.t
  | Null

let term t = Term t
let int n = Int n
let interval i = Interval i

let equal a b =
  match (a, b) with
  | Term x, Term y -> Kg.Term.equal x y
  | Int x, Int y -> Int.equal x y
  | Interval x, Interval y -> Kg.Interval.equal x y
  | Null, Null -> true
  | (Term _ | Int _ | Interval _ | Null), _ -> false

let tag = function Term _ -> 0 | Int _ -> 1 | Interval _ -> 2 | Null -> 3

let compare a b =
  match (a, b) with
  | Term x, Term y -> Kg.Term.compare x y
  | Int x, Int y -> Int.compare x y
  | Interval x, Interval y -> Kg.Interval.compare x y
  | Null, Null -> 0
  | _ -> Int.compare (tag a) (tag b)

let hash = function
  | Term t -> Hashtbl.hash (0, Kg.Term.hash t)
  | Int n -> Hashtbl.hash (1, n)
  | Interval i -> Hashtbl.hash (2, Kg.Interval.lo i, Kg.Interval.hi i)
  | Null -> Hashtbl.hash 3

(* Injective encoding into a single int: two tag bits, payload above.
   Term/Interval payloads are intern-table ids (dense, small); Int
   payloads are the machine int itself, so the encoding is injective
   for |n| < 2^60 — far beyond the atom ids and interval endpoints the
   grounder stores. Code equality coincides with {!equal}, which is
   what lets the columnar tables hash and compare plain ints. *)
type code = int

let null_code = 0

let code = function
  | Null -> 0
  | Int n -> (n lsl 2) lor 1
  | Term t -> (Kg.Symbol.term_id t lsl 2) lor 2
  | Interval i -> (Kg.Symbol.interval_id i lsl 2) lor 3

let code_opt = function
  | Null -> Some 0
  | Int n -> Some ((n lsl 2) lor 1)
  | Term t ->
      Option.map (fun id -> (id lsl 2) lor 2) (Kg.Symbol.find_term t)
  | Interval i ->
      Option.map (fun id -> (id lsl 2) lor 3) (Kg.Symbol.find_interval i)

let decode c =
  match c land 3 with
  | 0 -> Null
  | 1 -> Int (c asr 2)
  | 2 -> Term (Kg.Symbol.term (c asr 2))
  | _ -> Interval (Kg.Symbol.interval (c asr 2))

let decode_term c =
  if c land 3 = 2 then Some (Kg.Symbol.term (c asr 2)) else None

let decode_int c = if c land 3 = 1 then Some (c asr 2) else None

let decode_interval c =
  if c land 3 = 3 then Some (Kg.Symbol.interval (c asr 2)) else None

let as_term = function Term t -> Some t | Int _ | Interval _ | Null -> None
let as_int = function Int n -> Some n | Term _ | Interval _ | Null -> None

let as_interval = function
  | Interval i -> Some i
  | Term _ | Int _ | Null -> None

let pp ppf = function
  | Term t -> Kg.Term.pp ppf t
  | Int n -> Format.pp_print_int ppf n
  | Interval i -> Kg.Interval.pp ppf i
  | Null -> Format.pp_print_string ppf "NULL"
