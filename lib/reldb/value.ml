type t =
  | Term of Kg.Term.t
  | Int of int
  | Interval of Kg.Interval.t
  | Null

let term t = Term t
let int n = Int n
let interval i = Interval i

let equal a b =
  match (a, b) with
  | Term x, Term y -> Kg.Term.equal x y
  | Int x, Int y -> Int.equal x y
  | Interval x, Interval y -> Kg.Interval.equal x y
  | Null, Null -> true
  | (Term _ | Int _ | Interval _ | Null), _ -> false

let tag = function Term _ -> 0 | Int _ -> 1 | Interval _ -> 2 | Null -> 3

let compare a b =
  match (a, b) with
  | Term x, Term y -> Kg.Term.compare x y
  | Int x, Int y -> Int.compare x y
  | Interval x, Interval y -> Kg.Interval.compare x y
  | Null, Null -> 0
  | _ -> Int.compare (tag a) (tag b)

let hash = function
  | Term t -> Hashtbl.hash (0, Kg.Term.hash t)
  | Int n -> Hashtbl.hash (1, n)
  | Interval i -> Hashtbl.hash (2, Kg.Interval.lo i, Kg.Interval.hi i)
  | Null -> Hashtbl.hash 3

let as_term = function Term t -> Some t | Int _ | Interval _ | Null -> None
let as_int = function Int n -> Some n | Term _ | Interval _ | Null -> None

let as_interval = function
  | Interval i -> Some i
  | Term _ | Int _ | Null -> None

let pp ppf = function
  | Term t -> Kg.Term.pp ppf t
  | Int n -> Format.pp_print_int ppf n
  | Interval i -> Kg.Interval.pp ppf i
  | Null -> Format.pp_print_string ppf "NULL"
