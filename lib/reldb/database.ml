type t = (string, Table.t) Hashtbl.t

let create () = Hashtbl.create 16

let add_table t table = Hashtbl.replace t (Table.name table) table

let table t name = Hashtbl.find_opt t name

let table_exn t name =
  match table t name with Some tbl -> tbl | None -> raise Not_found

let get_or_create t ~name ~columns =
  match table t name with
  | Some tbl ->
      if Table.columns tbl <> columns then
        invalid_arg (Printf.sprintf "Database: schema mismatch for %s" name);
      tbl
  | None ->
      let tbl = Table.create ~name ~columns in
      add_table t tbl;
      tbl

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t []

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort String.compare

let pp ppf t =
  List.iter (fun tbl -> Format.fprintf ppf "%a@." Table.pp tbl) (tables t)
