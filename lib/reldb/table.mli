(** In-memory relational tables with named columns and hash indexes. *)

type row = Value.t array

type t

val create : name:string -> columns:string list -> t
(** @raise Invalid_argument on duplicate column names. *)

val name : t -> string
val columns : t -> string list
val width : t -> int
val cardinal : t -> int

val column_index : t -> string -> int
(** @raise Not_found for an unknown column. *)

val insert : t -> row -> unit
(** @raise Invalid_argument when the row width mismatches. *)

val get : t -> int -> row
val iter : (row -> unit) -> t -> unit
val fold : ('acc -> row -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> row list

val create_index : t -> string list -> unit
(** Build (or rebuild) a hash index on the column list; kept up to date by
    subsequent inserts. *)

val lookup : t -> string list -> Value.t list -> row list
(** [lookup t cols key] — rows whose [cols] equal [key]. Uses the index on
    [cols] when one exists, otherwise scans. *)

val pp : Format.formatter -> t -> unit
(** Small ASCII rendering for debugging and the CLI. *)
