(** In-memory relational tables, stored columnar as interned codes.

    Rows live column-major: one unboxed [int] array of {!Value.code}s
    per column, so a million-row table is [width] flat allocations the
    GC never scans and joins hash plain ints. The row-oriented
    [Value.t array] API below is a decode/encode veneer kept for the
    SQL layer, the CLI and the tests; the hot grounding paths go
    through the code-level API. *)

type row = Value.t array

type t

val create : name:string -> columns:string list -> t
(** @raise Invalid_argument on duplicate column names. *)

val reserve : t -> int -> unit
(** Pre-size every column's backing array for at least [rows] rows —
    callers that know the row count up front (e.g. a join concatenating
    partition outputs) avoid the doubling-growth garbage of a
    million-row append. *)

val name : t -> string
val columns : t -> string list
val width : t -> int
val cardinal : t -> int

val column_index : t -> string -> int
(** @raise Not_found for an unknown column. *)

val insert : t -> row -> unit
(** @raise Invalid_argument when the row width mismatches. *)

val insert_codes : t -> Value.code array -> unit
(** Insert a pre-encoded row without touching boxed values.
    @raise Invalid_argument when the row width mismatches. *)

val get : t -> int -> row
val iter : (row -> unit) -> t -> unit
val fold : ('acc -> row -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> row list

val code_at : t -> row:int -> col:int -> Value.code
(** One cell, as its interned code. *)

val column_data : t -> int -> int array
(** The raw backing array of a column: entries [0 .. cardinal t - 1]
    are live codes, anything past that is garbage. Invalidated by the
    next insert. For tight scan/join loops. *)

val count_for : t -> col:int -> code:Value.code -> int
(** Occurrences of [code] in the column — the per-value cardinality the
    join-order heuristic uses as a selectivity estimate. Amortised
    O(1): a per-column count table is built on first use and rebuilt
    when the table has grown since. *)

val create_index : t -> string list -> unit
(** Build (or rebuild) a hash index on the column list; kept up to date by
    subsequent inserts. *)

val lookup : t -> string list -> Value.t list -> row list
(** [lookup t cols key] — rows whose [cols] equal [key]. Uses the index on
    [cols] when one exists, otherwise scans. A key mentioning a symbol
    that was never interned matches nothing. *)

val pp : Format.formatter -> t -> unit
(** Small ASCII rendering for debugging and the CLI. *)
