module Vec = Prelude.Vec

type row = Value.t array

module Key_table = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash k = Hashtbl.hash (List.map Value.hash k)
end)

type index = {
  on : int list; (* column positions *)
  buckets : int Vec.t Key_table.t;
}

type t = {
  table_name : string;
  cols : string array;
  positions : (string, int) Hashtbl.t;
  rows : row Vec.t;
  mutable indexes : index list;
}

let create ~name ~columns =
  let positions = Hashtbl.create 8 in
  List.iteri
    (fun i c ->
      if Hashtbl.mem positions c then
        invalid_arg (Printf.sprintf "Table %s: duplicate column %s" name c);
      Hashtbl.replace positions c i)
    columns;
  {
    table_name = name;
    cols = Array.of_list columns;
    positions;
    rows = Vec.create ();
    indexes = [];
  }

let name t = t.table_name
let columns t = Array.to_list t.cols
let width t = Array.length t.cols
let cardinal t = Vec.length t.rows

let column_index t c =
  match Hashtbl.find_opt t.positions c with
  | Some i -> i
  | None -> raise Not_found

let key_of_row positions row = List.map (fun i -> row.(i)) positions

let index_insert idx rowid row =
  let key = key_of_row idx.on row in
  match Key_table.find_opt idx.buckets key with
  | Some vec -> Vec.push vec rowid
  | None ->
      let vec = Vec.create () in
      Vec.push vec rowid;
      Key_table.replace idx.buckets key vec

let insert t row =
  if Array.length row <> width t then
    invalid_arg
      (Printf.sprintf "Table %s: row width %d, expected %d" t.table_name
         (Array.length row) (width t));
  let rowid = Vec.length t.rows in
  Vec.push t.rows row;
  List.iter (fun idx -> index_insert idx rowid row) t.indexes

let get t i = Vec.get t.rows i

let iter f t = Vec.iter f t.rows

let fold f acc t = Vec.fold f acc t.rows

let to_list t = Vec.to_list t.rows

let create_index t cols =
  let on = List.map (column_index t) cols in
  let idx = { on; buckets = Key_table.create 256 } in
  Vec.iteri (fun rowid row -> index_insert idx rowid row) t.rows;
  (* Replace an existing index on the same columns. *)
  t.indexes <- idx :: List.filter (fun i -> i.on <> on) t.indexes

let lookup t cols key =
  let on = List.map (column_index t) cols in
  match List.find_opt (fun idx -> idx.on = on) t.indexes with
  | Some idx -> (
      match Key_table.find_opt idx.buckets key with
      | None -> []
      | Some vec ->
          List.rev (Vec.fold (fun acc rid -> Vec.get t.rows rid :: acc) [] vec))
  | None ->
      List.rev
        (fold
           (fun acc row ->
             if List.for_all2 Value.equal (key_of_row on row) key then
               row :: acc
             else acc)
           [] t)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s(%s) [%d rows]" t.table_name
    (String.concat ", " (columns t))
    (cardinal t);
  let shown = ref 0 in
  iter
    (fun row ->
      if !shown < 20 then begin
        Format.fprintf ppf "@ %a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
             Value.pp)
          (Array.to_list row);
        incr shown
      end)
    t;
  if cardinal t > 20 then Format.fprintf ppf "@ ...";
  Format.fprintf ppf "@]"
