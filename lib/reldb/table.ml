module Vec = Prelude.Vec
module Ivec = Prelude.Ivec

type row = Value.t array

(* Rows live column-major as interned {!Value.code}s: one unboxed int
   array per column. The GC never scans a column, a million-row table
   is [width] flat allocations, and joins hash/compare plain ints. The
   row-oriented [Value.t array] API is kept as a decode/encode veneer
   for the SQL layer, the CLI and the tests. *)

module Code_key = Hashtbl.Make (struct
  type t = int list

  let rec equal a b =
    match (a, b) with
    | [], [] -> true
    | x :: a, y :: b -> x = y && equal a b
    | _, _ -> false

  let hash (k : t) = Hashtbl.hash k
end)

type index = {
  on : int list; (* column positions *)
  buckets : Ivec.t Code_key.t;
}

(* Per-column value counts ([code -> occurrences]), built lazily on
   first use and rebuilt when the table has grown since: the grounder's
   join-order heuristic reads them as O(1) selectivity estimates. *)
type col_stats = {
  built_at : int; (* nrows when built *)
  counts : (int, int) Hashtbl.t;
}

type t = {
  table_name : string;
  cols : string array;
  positions : (string, int) Hashtbl.t;
  data : Ivec.t array;
  mutable nrows : int;
  mutable indexes : index list;
  stats : col_stats option array;
}

let create ~name ~columns =
  let positions = Hashtbl.create 8 in
  List.iteri
    (fun i c ->
      if Hashtbl.mem positions c then
        invalid_arg (Printf.sprintf "Table %s: duplicate column %s" name c);
      Hashtbl.replace positions c i)
    columns;
  let width = List.length columns in
  {
    table_name = name;
    cols = Array.of_list columns;
    positions;
    data = Array.init width (fun _ -> Ivec.create ());
    nrows = 0;
    indexes = [];
    stats = Array.make width None;
  }

let reserve t rows = Array.iter (fun col -> Ivec.reserve col rows) t.data

let name t = t.table_name
let columns t = Array.to_list t.cols
let width t = Array.length t.cols
let cardinal t = t.nrows

let column_index t c =
  match Hashtbl.find_opt t.positions c with
  | Some i -> i
  | None -> raise Not_found

let code_at t ~row ~col = Ivec.get t.data.(col) row

let column_data t col = Ivec.raw t.data.(col)

let key_codes_of_row t on rowid =
  List.map (fun col -> Ivec.get t.data.(col) rowid) on

let index_insert t idx rowid =
  let key = key_codes_of_row t idx.on rowid in
  match Code_key.find_opt idx.buckets key with
  | Some vec -> Ivec.push vec rowid
  | None ->
      let vec = Ivec.create () in
      Ivec.push vec rowid;
      Code_key.replace idx.buckets key vec

let insert_codes t codes =
  if Array.length codes <> width t then
    invalid_arg
      (Printf.sprintf "Table %s: row width %d, expected %d" t.table_name
         (Array.length codes) (width t));
  let rowid = t.nrows in
  Array.iteri (fun j code -> Ivec.push t.data.(j) code) codes;
  t.nrows <- rowid + 1;
  List.iter (fun idx -> index_insert t idx rowid) t.indexes

let insert t row = insert_codes t (Array.map Value.code row)

let get t i =
  if i < 0 || i >= t.nrows then invalid_arg "Table.get: row out of bounds";
  Array.init (width t) (fun j -> Value.decode (Ivec.get t.data.(j) i))

let iter f t =
  for i = 0 to t.nrows - 1 do
    f (Array.init (width t) (fun j -> Value.decode (Ivec.get t.data.(j) i)))
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun row -> acc := f !acc row) t;
  !acc

let to_list t = List.rev (fold (fun acc row -> row :: acc) [] t)

let count_for t ~col ~code =
  let stats =
    match t.stats.(col) with
    | Some s when s.built_at = t.nrows -> s
    | _ ->
        let counts = Hashtbl.create 256 in
        let data = Ivec.raw t.data.(col) in
        for i = 0 to t.nrows - 1 do
          let c = Array.unsafe_get data i in
          Hashtbl.replace counts c
            (1 + Option.value (Hashtbl.find_opt counts c) ~default:0)
        done;
        let s = { built_at = t.nrows; counts } in
        t.stats.(col) <- Some s;
        s
  in
  Option.value (Hashtbl.find_opt stats.counts code) ~default:0

let create_index t cols =
  let on = List.map (column_index t) cols in
  let idx = { on; buckets = Code_key.create 256 } in
  for rowid = 0 to t.nrows - 1 do
    index_insert t idx rowid
  done;
  (* Replace an existing index on the same columns. *)
  t.indexes <- idx :: List.filter (fun i -> i.on <> on) t.indexes

let lookup t cols key =
  let on = List.map (column_index t) cols in
  match List.map Value.code_opt key with
  | exception Invalid_argument _ -> []
  | key_codes ->
      if List.exists Option.is_none key_codes then
        (* An un-interned symbol occurs in no table. *)
        []
      else
        let key_codes = List.map Option.get key_codes in
        let matching =
          match List.find_opt (fun idx -> idx.on = on) t.indexes with
          | Some idx -> (
              match Code_key.find_opt idx.buckets key_codes with
              | None -> []
              | Some vec ->
                  let acc = ref [] in
                  Ivec.iter (fun rid -> acc := rid :: !acc) vec;
                  List.rev !acc)
          | None ->
              let acc = ref [] in
              for rid = t.nrows - 1 downto 0 do
                if key_codes_of_row t on rid = key_codes then acc := rid :: !acc
              done;
              !acc
        in
        List.map (get t) matching

let pp ppf t =
  Format.fprintf ppf "@[<v>%s(%s) [%d rows]" t.table_name
    (String.concat ", " (columns t))
    (cardinal t);
  let shown = ref 0 in
  iter
    (fun row ->
      if !shown < 20 then begin
        Format.fprintf ppf "@ %a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
             Value.pp)
          (Array.to_list row);
        incr shown
      end)
    t;
  if cardinal t > 20 then Format.fprintf ppf "@ ...";
  Format.fprintf ppf "@]"
