type error = string

(* ---------------- lexer ---------------- *)

type token =
  | Word of string     (* keywords, identifiers (case preserved) *)
  | Str of string      (* 'quoted' *)
  | Num of int
  | Comma
  | Star
  | Op of string       (* = != < <= > >= *)
  | Eof

exception Error of string

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '/' || c = '@' || c = ':' || c = '#'
    || c = '?' || c = '!'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ',' then begin
      tokens := Comma :: !tokens;
      incr i
    end
    else if c = '*' then begin
      tokens := Star :: !tokens;
      incr i
    end
    else if c = '\'' then begin
      let close =
        match String.index_from_opt src (!i + 1) '\'' with
        | Some k -> k
        | None -> raise (Error "unterminated string literal")
      in
      tokens := Str (String.sub src (!i + 1) (close - !i - 1)) :: !tokens;
      i := close + 1
    end
    else if c = '=' then begin
      tokens := Op "=" :: !tokens;
      incr i
    end
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then begin
      tokens := Op "!=" :: !tokens;
      i := !i + 2
    end
    else if c = '<' then
      if !i + 1 < n && src.[!i + 1] = '=' then begin
        tokens := Op "<=" :: !tokens;
        i := !i + 2
      end
      else begin
        tokens := Op "<" :: !tokens;
        incr i
      end
    else if c = '>' then
      if !i + 1 < n && src.[!i + 1] = '=' then begin
        tokens := Op ">=" :: !tokens;
        i := !i + 2
      end
      else begin
        tokens := Op ">" :: !tokens;
        incr i
      end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      tokens := Num (int_of_string (String.sub src start (!i - start))) :: !tokens
    end
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word src.[!i] do
        incr i
      done;
      tokens := Word (String.sub src start (!i - start)) :: !tokens
    end
    else raise (Error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev (Eof :: !tokens)

(* ---------------- parser ---------------- *)

type comparison = { column : string; op : string; value : Value.t }

type statement = {
  projection : string list option; (* None = * *)
  table : string;
  joins : (string * string * string) list; (* table, left col, right col *)
  where : comparison list;
  order_by : string list;
  limit : int option;
}

type state = { mutable tokens : token list }

let peek st = match st.tokens with t :: _ -> t | [] -> Eof

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let keyword st word =
  match peek st with
  | Word w when String.lowercase_ascii w = word ->
      advance st;
      true
  | _ -> false

let expect_keyword st word =
  if not (keyword st word) then raise (Error (Printf.sprintf "expected %s" (String.uppercase_ascii word)))

let ident st what =
  match peek st with
  | Word w ->
      advance st;
      w
  | _ -> raise (Error ("expected " ^ what))

let literal st =
  match peek st with
  | Num v ->
      advance st;
      Value.int v
  | Str s ->
      advance st;
      Value.term (Kg.Term.iri s)
  | _ -> raise (Error "expected a literal ('string' or number)")

let parse_statement src =
  let st = { tokens = tokenize src } in
  expect_keyword st "select";
  let projection =
    if peek st = Star then begin
      advance st;
      None
    end
    else begin
      let rec cols acc =
        let c = ident st "a column" in
        if peek st = Comma then begin
          advance st;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      Some (cols [])
    end
  in
  expect_keyword st "from";
  let table = ident st "a table name" in
  let joins = ref [] in
  while keyword st "join" do
    let t = ident st "a table name" in
    expect_keyword st "on";
    let left = ident st "a column" in
    (match peek st with
    | Op "=" -> advance st
    | _ -> raise (Error "JOIN conditions must use ="));
    let right = ident st "a column" in
    joins := (t, left, right) :: !joins
  done;
  let where = ref [] in
  if keyword st "where" then begin
    let rec conds () =
      let column = ident st "a column" in
      let op =
        match peek st with
        | Op o ->
            advance st;
            o
        | _ -> raise (Error "expected a comparison operator")
      in
      let value = literal st in
      where := { column; op; value } :: !where;
      if keyword st "and" then conds ()
    in
    conds ()
  end;
  let order_by = ref [] in
  if keyword st "order" then begin
    expect_keyword st "by";
    let rec cols () =
      order_by := ident st "a column" :: !order_by;
      if peek st = Comma then begin
        advance st;
        cols ()
      end
    in
    cols ()
  end;
  let limit =
    if keyword st "limit" then
      match peek st with
      | Num v ->
          advance st;
          Some v
      | _ -> raise (Error "expected a number after LIMIT")
    else None
  in
  (match peek st with
  | Eof -> ()
  | _ -> raise (Error "trailing input"));
  {
    projection;
    table;
    joins = List.rev !joins;
    where = List.rev !where;
    order_by = List.rev !order_by;
    limit;
  }

(* ---------------- executor ---------------- *)

let compare_values op a b =
  let c = Value.compare a b in
  match op with
  | "=" -> c = 0
  | "!=" -> c <> 0
  | "<" -> c < 0
  | "<=" -> c <= 0
  | ">" -> c > 0
  | ">=" -> c >= 0
  | _ -> raise (Error ("unknown operator " ^ op))

let execute db stmt =
  let base =
    match Database.table db stmt.table with
    | Some t -> t
    | None -> raise (Error (Printf.sprintf "unknown table %s" stmt.table))
  in
  let joined =
    List.fold_left
      (fun acc (tname, left, right) ->
        match Database.table db tname with
        | None -> raise (Error (Printf.sprintf "unknown table %s" tname))
        | Some t -> Relalg.hash_join ~on:[ (left, right) ] acc t)
      base stmt.joins
  in
  let filtered =
    if stmt.where = [] then joined
    else begin
      let compiled =
        List.map
          (fun cond ->
            let idx =
              try Table.column_index joined cond.column
              with Not_found ->
                raise (Error (Printf.sprintf "unknown column %s" cond.column))
            in
            fun (row : Table.row) ->
              compare_values cond.op row.(idx) cond.value)
          stmt.where
      in
      Relalg.select (fun row -> List.for_all (fun p -> p row) compiled) joined
    end
  in
  let ordered =
    if stmt.order_by = [] then filtered
    else begin
      List.iter
        (fun c ->
          if not (List.mem c (Table.columns filtered)) then
            raise (Error (Printf.sprintf "unknown column %s" c)))
        stmt.order_by;
      Relalg.sort_by stmt.order_by filtered
    end
  in
  let projected =
    match stmt.projection with
    | None -> ordered
    | Some cols ->
        List.iter
          (fun c ->
            if not (List.mem c (Table.columns ordered)) then
              raise (Error (Printf.sprintf "unknown column %s" c)))
          cols;
        Relalg.project cols ordered
  in
  match stmt.limit with
  | None -> projected
  | Some k ->
      let out =
        Table.create ~name:(Table.name projected)
          ~columns:(Table.columns projected)
      in
      let count = ref 0 in
      Table.iter
        (fun row ->
          if !count < k then begin
            Table.insert out row;
            incr count
          end)
        projected;
      out

let query db src =
  match execute db (parse_statement src) with
  | table -> Ok table
  | exception Error msg -> Result.Error msg

let pp_result ppf table =
  Format.fprintf ppf "@[<v>%s" (String.concat " | " (Table.columns table));
  Table.iter
    (fun row ->
      Format.fprintf ppf "@ %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           Value.pp)
        (Array.to_list row))
    table;
  Format.fprintf ppf "@]"
