let fresh_name base = base ^ "'"

let select p t =
  let out = Table.create ~name:(fresh_name (Table.name t)) ~columns:(Table.columns t) in
  Table.iter (fun row -> if p row then Table.insert out row) t;
  out

let project cols t =
  let positions = List.map (Table.column_index t) cols in
  let out = Table.create ~name:(fresh_name (Table.name t)) ~columns:cols in
  Table.iter
    (fun row ->
      Table.insert out (Array.of_list (List.map (fun i -> row.(i)) positions)))
    t;
  out

let rename mapping t =
  let columns =
    List.map
      (fun c -> match List.assoc_opt c mapping with Some n -> n | None -> c)
      (Table.columns t)
  in
  let out = Table.create ~name:(fresh_name (Table.name t)) ~columns in
  Table.iter (fun row -> Table.insert out row) t;
  out

module Key_table = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash k = Hashtbl.hash (List.map Value.hash k)
end)

let join_columns ~on left right =
  let right_keys = List.map snd on in
  let left_cols = Table.columns left in
  let kept_right =
    List.filter (fun c -> not (List.mem c right_keys)) (Table.columns right)
  in
  let result_cols =
    left_cols
    @ List.map
        (fun c ->
          if List.mem c left_cols then Table.name right ^ "." ^ c else c)
        kept_right
  in
  (kept_right, result_cols)

let hash_join ~on left right =
  let kept_right, result_cols = join_columns ~on left right in
  let out =
    Table.create
      ~name:(Table.name left ^ "_" ^ Table.name right)
      ~columns:result_cols
  in
  let lkeys = List.map (fun (l, _) -> Table.column_index left l) on in
  let rkeys = List.map (fun (_, r) -> Table.column_index right r) on in
  let rkept = List.map (Table.column_index right) kept_right in
  (* Build on the smaller side; probe with the larger. *)
  let build_left = Table.cardinal left <= Table.cardinal right in
  let buckets = Key_table.create 1024 in
  let build_table, build_keys = if build_left then (left, lkeys) else (right, rkeys) in
  Table.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) build_keys in
      Key_table.replace buckets key
        (row :: Option.value (Key_table.find_opt buckets key) ~default:[]))
    build_table;
  let emit lrow rrow =
    let extra = List.map (fun i -> rrow.(i)) rkept in
    Table.insert out (Array.append lrow (Array.of_list extra))
  in
  let probe_table, probe_keys = if build_left then (right, rkeys) else (left, lkeys) in
  Table.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) probe_keys in
      match Key_table.find_opt buckets key with
      | None -> ()
      | Some matches ->
          List.iter
            (fun other ->
              if build_left then emit other row else emit row other)
            matches)
    probe_table;
  out

let product left right =
  let renamed_right =
    List.map
      (fun c ->
        if List.mem c (Table.columns left) then Table.name right ^ "." ^ c
        else c)
      (Table.columns right)
  in
  let out =
    Table.create
      ~name:(Table.name left ^ "_x_" ^ Table.name right)
      ~columns:(Table.columns left @ renamed_right)
  in
  Table.iter
    (fun lrow ->
      Table.iter (fun rrow -> Table.insert out (Array.append lrow rrow)) right)
    left;
  out

let union a b =
  if Table.columns a <> Table.columns b then
    invalid_arg "Relalg.union: schema mismatch";
  let out = Table.create ~name:(fresh_name (Table.name a)) ~columns:(Table.columns a) in
  Table.iter (fun row -> Table.insert out row) a;
  Table.iter (fun row -> Table.insert out row) b;
  out

let distinct t =
  let out = Table.create ~name:(fresh_name (Table.name t)) ~columns:(Table.columns t) in
  let seen = Key_table.create 1024 in
  Table.iter
    (fun row ->
      let key = Array.to_list row in
      if not (Key_table.mem seen key) then begin
        Key_table.replace seen key ();
        Table.insert out row
      end)
    t;
  out

let sort_by cols t =
  let positions = List.map (Table.column_index t) cols in
  let rows = Array.of_list (Table.to_list t) in
  let cmp a b =
    let rec loop = function
      | [] -> 0
      | i :: rest -> (
          match Value.compare a.(i) b.(i) with 0 -> loop rest | c -> c)
    in
    loop positions
  in
  Array.stable_sort cmp rows;
  let out = Table.create ~name:(fresh_name (Table.name t)) ~columns:(Table.columns t) in
  Array.iter (fun row -> Table.insert out row) rows;
  out
