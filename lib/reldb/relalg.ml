module Ivec = Prelude.Ivec

let fresh_name base = base ^ "'"

(* All operators work on interned codes ({!Value.code}): rows are read
   column-major from the input's backing arrays and appended to the
   output without ever materialising boxed values; only user-supplied
   predicates (and sort comparators) decode. *)

let raw_columns t = Array.init (Table.width t) (Table.column_data t)

let select p t =
  let out =
    Table.create ~name:(fresh_name (Table.name t)) ~columns:(Table.columns t)
  in
  let w = Table.width t in
  let cols = raw_columns t in
  let scratch = Array.make w 0 in
  for i = 0 to Table.cardinal t - 1 do
    let row = Array.init w (fun j -> Value.decode cols.(j).(i)) in
    if p row then begin
      for j = 0 to w - 1 do
        scratch.(j) <- cols.(j).(i)
      done;
      Table.insert_codes out scratch
    end
  done;
  out

let select_codes p t =
  let out =
    Table.create ~name:(fresh_name (Table.name t)) ~columns:(Table.columns t)
  in
  let w = Table.width t in
  let cols = raw_columns t in
  let scratch = Array.make w 0 in
  let dropped = ref 0 in
  for i = 0 to Table.cardinal t - 1 do
    for j = 0 to w - 1 do
      scratch.(j) <- cols.(j).(i)
    done;
    if p scratch then Table.insert_codes out scratch else incr dropped
  done;
  if !dropped > 0 then Obs.count ~n:!dropped "ground.filtered_rows";
  out

let project cols t =
  let positions = Array.of_list (List.map (Table.column_index t) cols) in
  let out = Table.create ~name:(fresh_name (Table.name t)) ~columns:cols in
  let data = raw_columns t in
  let w = Array.length positions in
  let scratch = Array.make w 0 in
  for i = 0 to Table.cardinal t - 1 do
    for j = 0 to w - 1 do
      scratch.(j) <- data.(positions.(j)).(i)
    done;
    Table.insert_codes out scratch
  done;
  out

let rename mapping t =
  let columns =
    List.map
      (fun c -> match List.assoc_opt c mapping with Some n -> n | None -> c)
      (Table.columns t)
  in
  let out = Table.create ~name:(fresh_name (Table.name t)) ~columns in
  let w = Table.width t in
  let data = raw_columns t in
  let scratch = Array.make w 0 in
  for i = 0 to Table.cardinal t - 1 do
    for j = 0 to w - 1 do
      scratch.(j) <- data.(j).(i)
    done;
    Table.insert_codes out scratch
  done;
  out

(* Fused select+rename+project in one columnar pass: the grounder turns
   every body atom's extension into a bindings fragment this way, and
   fusing the three operators avoids materialising two intermediate
   copies of (potentially) a million rows. [filters] are code-level:
   equality with a constant's code, or equality between two columns
   (intra-atom repeated variables). *)
let filter_project t ~name ~filters ~keep =
  let out = Table.create ~name ~columns:(List.map snd keep) in
  (* A filterless fragment is an exact-size copy; pre-size it. Filtered
     fragments may be much smaller than the input, so they grow. *)
  if filters = [] then Table.reserve out (Table.cardinal t);
  let data = raw_columns t in
  let keep_src = Array.of_list (List.map fst keep) in
  let w = Array.length keep_src in
  let scratch = Array.make w 0 in
  let filters = Array.of_list filters in
  let nf = Array.length filters in
  for i = 0 to Table.cardinal t - 1 do
    let ok = ref true in
    (let j = ref 0 in
     while !ok && !j < nf do
       (match filters.(!j) with
       | `Eq (col, code) -> if data.(col).(i) <> code then ok := false
       | `Same (col, col') -> if data.(col).(i) <> data.(col').(i) then ok := false);
       incr j
     done);
    if !ok then begin
      for j = 0 to w - 1 do
        scratch.(j) <- data.(keep_src.(j)).(i)
      done;
      Table.insert_codes out scratch
    end
  done;
  out

module Code_list_table = Hashtbl.Make (struct
  type t = int list

  let rec equal a b =
    match (a, b) with
    | [], [] -> true
    | x :: a, y :: b -> x = y && equal a b
    | _, _ -> false

  let hash (k : t) = Hashtbl.hash k
end)

let join_columns ~on left right =
  let right_keys = List.map snd on in
  let left_cols = Table.columns left in
  let kept_right =
    List.filter (fun c -> not (List.mem c right_keys)) (Table.columns right)
  in
  let result_cols =
    left_cols
    @ List.map
        (fun c ->
          if List.mem c left_cols then Table.name right ^ "." ^ c else c)
        kept_right
  in
  (kept_right, result_cols)

(* --------------------------------------------------------------- *)
(* Partitioned hash join.                                           *)

(* Rows are split by a deterministic hash of their join-key codes into
   a fixed number of partitions, each partition is joined independently
   (optionally on the pool's worker domains — partitions share nothing),
   and the per-partition outputs are concatenated in partition order.
   The partition count depends only on the input sizes — never on the
   job count — so jobs=N produces the same table as jobs=1, bitwise.

   Small joins skip partitioning entirely: one partition, no pool. *)

let default_partitions =
  match
    Option.bind (Sys.getenv_opt "TECORE_JOIN_PARTITIONS") int_of_string_opt
  with
  | Some n when n >= 1 -> n
  | Some _ | None -> 32

let partition_threshold = 16_384

(* SplitMix-style finaliser: [Hashtbl.hash] truncates ints to 30 bits
   of input entropy, which collapses interned codes that differ only
   high up; this keeps all 63 bits in play. *)
let mix_int x =
  let x = x * 0x3C79AC492BA7B653 in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1C69B3F74AC4AE35 in
  x lxor (x lsr 32)

(* One partition's worth of a hash join, emitting matched rows in probe
   order (build order within one probe row) into a flat row-major
   buffer. [filter] sees the assembled output row and can veto it
   before it is ever stored — the grounder pushes constraint-violation
   tests down here so satisfiable combinations never materialise. *)
let join_partition ~build_rows ~probe_rows ~build_key ~probe_key ~build_cols
    ~probe_cols ~build_is_left ~left_width ~kept_right ~out_width ~filter =
  let nkeys = Array.length build_key in
  let out = Ivec.create () in
  let scratch = Array.make out_width 0 in
  let dropped = ref 0 in
  let emit build_row probe_row =
    (* Output schema is left columns then kept right columns,
       independent of which side built the table. *)
    let lrow, lcols, rrow, rcols =
      if build_is_left then (build_row, build_cols, probe_row, probe_cols)
      else (probe_row, probe_cols, build_row, build_cols)
    in
    for j = 0 to left_width - 1 do
      scratch.(j) <- lcols.(j).(lrow)
    done;
    Array.iteri
      (fun j src -> scratch.(left_width + j) <- rcols.(src).(rrow))
      kept_right;
    match filter with
    | Some f when not (f scratch) -> incr dropped
    | _ -> Ivec.append out scratch ~pos:0 ~len:out_width
  in
  if nkeys = 1 then begin
    let bk = build_key.(0) and pk = probe_key.(0) in
    let buckets : (int, Ivec.t) Hashtbl.t = Hashtbl.create 1024 in
    Ivec.iter
      (fun row ->
        let code = build_cols.(bk).(row) in
        match Hashtbl.find_opt buckets code with
        | Some vec -> Ivec.push vec row
        | None ->
            let vec = Ivec.create () in
            Ivec.push vec row;
            Hashtbl.replace buckets code vec)
      build_rows;
    Ivec.iter
      (fun row ->
        match Hashtbl.find_opt buckets probe_cols.(pk).(row) with
        | None -> ()
        | Some matches -> Ivec.iter (fun brow -> emit brow row) matches)
      probe_rows
  end
  else begin
    let buckets = Code_list_table.create 1024 in
    let key_of cols key row =
      Array.to_list (Array.map (fun k -> cols.(k).(row)) key)
    in
    Ivec.iter
      (fun row ->
        let key = key_of build_cols build_key row in
        match Code_list_table.find_opt buckets key with
        | Some vec -> Ivec.push vec row
        | None ->
            let vec = Ivec.create () in
            Ivec.push vec row;
            Code_list_table.replace buckets key vec)
      build_rows;
    Ivec.iter
      (fun row ->
        match
          Code_list_table.find_opt buckets (key_of probe_cols probe_key row)
        with
        | None -> ()
        | Some matches -> Ivec.iter (fun brow -> emit brow row) matches)
      probe_rows
  end;
  (out, !dropped)

let hash_join ?(pool = Prelude.Pool.sequential) ?filter ~on left right =
  let kept_right, result_cols = join_columns ~on left right in
  let lkeys =
    Array.of_list (List.map (fun (l, _) -> Table.column_index left l) on)
  in
  let rkeys =
    Array.of_list (List.map (fun (_, r) -> Table.column_index right r) on)
  in
  let rkept =
    Array.of_list (List.map (Table.column_index right) kept_right)
  in
  let left_cols = raw_columns left and right_cols = raw_columns right in
  let nl = Table.cardinal left and nr = Table.cardinal right in
  (* Build on the smaller side; probe with the larger. *)
  let build_is_left = nl <= nr in
  let build_n, build_cols, build_key, probe_n, probe_cols, probe_key =
    if build_is_left then (nl, left_cols, lkeys, nr, right_cols, rkeys)
    else (nr, right_cols, rkeys, nl, left_cols, lkeys)
  in
  let left_width = Table.width left in
  let out_width = left_width + Array.length rkept in
  (* When the probe side is also the kept side mapping differs; the
     emit path reads kept columns from whichever side is right. *)
  let partitions =
    if nl + nr < partition_threshold then 1 else default_partitions
  in
  let partition_of cols key row =
    if partitions = 1 then 0
    else
      let h =
        Array.fold_left
          (fun h k -> mix_int (h lxor cols.(k).(row)))
          0x9E3779B9 key
      in
      (h land max_int) mod partitions
  in
  let build_parts = Array.init partitions (fun _ -> Ivec.create ()) in
  let probe_parts = Array.init partitions (fun _ -> Ivec.create ()) in
  for row = 0 to build_n - 1 do
    Ivec.push build_parts.(partition_of build_cols build_key row) row
  done;
  for row = 0 to probe_n - 1 do
    Ivec.push probe_parts.(partition_of probe_cols probe_key row) row
  done;
  if partitions > 1 then Obs.count ~n:partitions "ground.partition";
  let results =
    Prelude.Pool.map_array pool
      (fun p ->
        join_partition ~build_rows:build_parts.(p) ~probe_rows:probe_parts.(p)
          ~build_key ~probe_key ~build_cols ~probe_cols ~build_is_left
          ~left_width ~kept_right:rkept ~out_width ~filter)
      (Array.init partitions Fun.id)
  in
  (* Concatenate in partition order: deterministic and independent of
     which domain ran which partition. The output is created here, once
     the total row count is known, so its columns are allocated at
     exact size (no doubling-growth garbage); each consumed buffer (and
     the row-id partitions, dead once the workers return) is released
     as we go, so the peak is one output copy plus the largest
     remaining partition — not two full output copies. *)
  Array.fill build_parts 0 partitions (Ivec.create ());
  Array.fill probe_parts 0 partitions (Ivec.create ());
  let total_rows =
    Array.fold_left
      (fun acc (buf, _) -> acc + (Ivec.length buf / max 1 out_width))
      0 results
  in
  let out =
    Table.create
      ~name:(Table.name left ^ "_" ^ Table.name right)
      ~columns:result_cols
  in
  Table.reserve out total_rows;
  let scratch = Array.make out_width 0 in
  let dropped = ref 0 in
  Array.iteri
    (fun p (buf, d) ->
      dropped := !dropped + d;
      let data = Ivec.raw buf in
      let rows = Ivec.length buf / max 1 out_width in
      for i = 0 to rows - 1 do
        Array.blit data (i * out_width) scratch 0 out_width;
        Table.insert_codes out scratch
      done;
      results.(p) <- (Ivec.create (), 0))
    results;
  if !dropped > 0 then Obs.count ~n:!dropped "ground.filtered_rows";
  out

let product ?filter left right =
  let renamed_right =
    List.map
      (fun c ->
        if List.mem c (Table.columns left) then Table.name right ^ "." ^ c
        else c)
      (Table.columns right)
  in
  let out =
    Table.create
      ~name:(Table.name left ^ "_x_" ^ Table.name right)
      ~columns:(Table.columns left @ renamed_right)
  in
  let lw = Table.width left and rw = Table.width right in
  let lcols = raw_columns left and rcols = raw_columns right in
  let scratch = Array.make (lw + rw) 0 in
  let dropped = ref 0 in
  for i = 0 to Table.cardinal left - 1 do
    for j = 0 to lw - 1 do
      scratch.(j) <- lcols.(j).(i)
    done;
    for k = 0 to Table.cardinal right - 1 do
      for j = 0 to rw - 1 do
        scratch.(lw + j) <- rcols.(j).(k)
      done;
      match filter with
      | Some f when not (f scratch) -> incr dropped
      | _ -> Table.insert_codes out scratch
    done
  done;
  if !dropped > 0 then Obs.count ~n:!dropped "ground.filtered_rows";
  out

let union a b =
  if Table.columns a <> Table.columns b then
    invalid_arg "Relalg.union: schema mismatch";
  let out =
    Table.create ~name:(fresh_name (Table.name a)) ~columns:(Table.columns a)
  in
  let copy t =
    let w = Table.width t in
    let cols = raw_columns t in
    let scratch = Array.make w 0 in
    for i = 0 to Table.cardinal t - 1 do
      for j = 0 to w - 1 do
        scratch.(j) <- cols.(j).(i)
      done;
      Table.insert_codes out scratch
    done
  in
  copy a;
  copy b;
  out

let distinct t =
  let out =
    Table.create ~name:(fresh_name (Table.name t)) ~columns:(Table.columns t)
  in
  let w = Table.width t in
  let cols = raw_columns t in
  let seen = Code_list_table.create 1024 in
  let scratch = Array.make w 0 in
  for i = 0 to Table.cardinal t - 1 do
    let key = List.init w (fun j -> cols.(j).(i)) in
    if not (Code_list_table.mem seen key) then begin
      Code_list_table.replace seen key ();
      for j = 0 to w - 1 do
        scratch.(j) <- cols.(j).(i)
      done;
      Table.insert_codes out scratch
    end
  done;
  out

let sort_by cols t =
  let positions = List.map (Table.column_index t) cols in
  let n = Table.cardinal t in
  (* Sort row ids by the decoded sort key ({!Value.compare} order is
     not code order), then emit codes in sorted order. *)
  let keys =
    Array.init n (fun i ->
        (List.map (fun p -> Value.decode (Table.code_at t ~row:i ~col:p)) positions, i))
  in
  let cmp (ka, ia) (kb, ib) =
    let rec loop a b =
      match (a, b) with
      | [], [] -> Int.compare ia ib (* stability *)
      | x :: a, y :: b -> (
          match Value.compare x y with 0 -> loop a b | c -> c)
      | _ -> assert false
    in
    loop ka kb
  in
  Array.sort cmp keys;
  let out =
    Table.create ~name:(fresh_name (Table.name t)) ~columns:(Table.columns t)
  in
  let w = Table.width t in
  let data = raw_columns t in
  let scratch = Array.make w 0 in
  Array.iter
    (fun (_, i) ->
      for j = 0 to w - 1 do
        scratch.(j) <- data.(j).(i)
      done;
      Table.insert_codes out scratch)
    keys;
  out
