(** Relational-algebra operators, materialised.

    The grounding engine evaluates rule bodies as conjunctive queries; the
    operators here are the physical plan primitives: selection, projection,
    renaming, hash equi-join, union and duplicate elimination. *)

val select : (Table.row -> bool) -> Table.t -> Table.t

val project : string list -> Table.t -> Table.t
(** Keep the named columns, in the given order. *)

val rename : (string * string) list -> Table.t -> Table.t
(** [(old, new)] pairs; unlisted columns keep their names. *)

val hash_join : on:(string * string) list -> Table.t -> Table.t -> Table.t
(** [hash_join ~on:[(l1, r1); ...] left right] — equi-join on the listed
    column pairs. The result carries all left columns followed by the
    right columns that are not join keys; duplicate result names get the
    right table's name as prefix. Builds the hash table on the smaller
    input. *)

val product : Table.t -> Table.t -> Table.t
(** Cartesian product (used for condition-only joins). *)

val union : Table.t -> Table.t -> Table.t
(** Schema-compatible bag union. *)

val distinct : Table.t -> Table.t

val sort_by : string list -> Table.t -> Table.t
(** Stable sort on the named columns, ascending {!Value.compare}. *)
