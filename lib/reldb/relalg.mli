(** Relational-algebra operators, materialised over interned codes.

    The grounding engine evaluates rule bodies as conjunctive queries; the
    operators here are the physical plan primitives: selection, projection,
    renaming, hash equi-join, union and duplicate elimination. Operators
    copy {!Value.code}s column-to-column and never box values; only the
    user-supplied predicates decode. *)

val select : (Table.row -> bool) -> Table.t -> Table.t

val select_codes : (Value.code array -> bool) -> Table.t -> Table.t
(** Like {!select} but the predicate sees the raw code row — no boxed
    values are built for rejected rows. Rejections are counted under
    the [ground.filtered_rows] observable. *)

val project : string list -> Table.t -> Table.t
(** Keep the named columns, in the given order. *)

val rename : (string * string) list -> Table.t -> Table.t
(** [(old, new)] pairs; unlisted columns keep their names. *)

val filter_project :
  Table.t ->
  name:string ->
  filters:[ `Eq of int * Value.code | `Same of int * int ] list ->
  keep:(int * string) list ->
  Table.t
(** Fused select+project+rename in one columnar pass: keep rows passing
    every code-level filter ([`Eq (col, code)] — the cell equals a
    constant's code; [`Same (col, col')] — two cells are equal), then
    emit the [keep] columns ([(source position, output name)] pairs) in
    order. This is the grounder's atom-fragment operator; fusing avoids
    materialising two intermediate tables per body atom. *)

val hash_join :
  ?pool:Prelude.Pool.t ->
  ?filter:(Value.code array -> bool) ->
  on:(string * string) list ->
  Table.t ->
  Table.t ->
  Table.t
(** [hash_join ~on:[(l1, r1); ...] left right] — equi-join on the listed
    column pairs. The result carries all left columns followed by the
    right columns that are not join keys; duplicate result names get the
    right table's name as prefix. Builds the hash table on the smaller
    input.

    Large joins are partitioned by a deterministic hash of the join-key
    codes and the partitions are joined independently on [pool]'s worker
    domains (default: sequential). The partition count depends only on
    the input sizes — never on the job count — and outputs concatenate
    in partition order, so the result table is bitwise identical at
    every job count. Override the partition count with
    [TECORE_JOIN_PARTITIONS] (same caveat: a process-wide constant, not
    a per-job one).

    [filter] vetoes assembled output rows before they are stored; rows
    it rejects never materialise. It runs on worker domains and must be
    pure (decoding codes is fine — everything it can see was interned
    before the join started). *)

val product : ?filter:(Value.code array -> bool) -> Table.t -> Table.t -> Table.t
(** Cartesian product (used for condition-only joins). [filter] as in
    {!hash_join}. *)

val union : Table.t -> Table.t -> Table.t
(** Schema-compatible bag union. *)

val distinct : Table.t -> Table.t

val sort_by : string list -> Table.t -> Table.t
(** Stable sort on the named columns, ascending {!Value.compare}. *)
