(** Column values of the relational grounding backend.

    RockIt-style systems ground MLNs through SQL joins over a relational
    store; we reproduce that architecture with an in-memory engine. Values
    carry KG terms, machine integers (interval endpoints, fact ids) and
    whole intervals. *)

type t =
  | Term of Kg.Term.t
  | Int of int
  | Interval of Kg.Interval.t
  | Null

val term : Kg.Term.t -> t
val int : int -> t
val interval : Kg.Interval.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val as_term : t -> Kg.Term.t option
val as_int : t -> int option
val as_interval : t -> Kg.Interval.t option

val pp : Format.formatter -> t -> unit
