(** Column values of the relational grounding backend.

    RockIt-style systems ground MLNs through SQL joins over a relational
    store; we reproduce that architecture with an in-memory engine. Values
    carry KG terms, machine integers (interval endpoints, fact ids) and
    whole intervals. *)

type t =
  | Term of Kg.Term.t
  | Int of int
  | Interval of Kg.Interval.t
  | Null

val term : Kg.Term.t -> t
val int : int -> t
val interval : Kg.Interval.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Interned codes}

    The columnar table backend stores values as single ints: two tag
    bits plus either the machine int itself or a {!Kg.Symbol} intern id.
    The encoding is injective (for [Int n] with [|n| < 2^60]), so code
    equality coincides with {!equal} and joins hash plain ints. *)

type code = int

val null_code : code
(** [code Null]. *)

val code : t -> code
(** Encode, interning terms/intervals into the global {!Kg.Symbol}
    table as needed. *)

val code_opt : t -> code option
(** Encode without interning: [None] when the term/interval has never
    been interned — useful for lookups, where an unseen symbol simply
    matches nothing. *)

val decode : code -> t

val decode_term : code -> Kg.Term.t option
val decode_int : code -> int option
val decode_interval : code -> Kg.Interval.t option
(** Tag-checked decodes of a single code, avoiding the boxed {!t}. *)

val as_term : t -> Kg.Term.t option
val as_int : t -> int option
val as_interval : t -> Kg.Interval.t option

val pp : Format.formatter -> t -> unit
