(** A small SQL front-end over the relational engine.

    The architecture the paper inherits from RockIt grounds through a SQL
    database (MySQL/H2); the grounder itself drives {!Relalg} directly,
    but this module exposes the same capability surface for inspection,
    debugging and tests:

    {v
    SELECT name, age FROM people WHERE city = 'london' ORDER BY age LIMIT 10
    SELECT * FROM people JOIN cities ON city = city WHERE country = 'uk'
    v}

    Supported: [SELECT cols|*], one [FROM] table, any number of
    [JOIN ... ON a = b] equi-joins, [WHERE] with [AND]-ed comparisons
    against literals (numbers become integer values, ['quoted'] strings
    become IRI terms), [ORDER BY] and [LIMIT]. Keywords are
    case-insensitive. *)

type error = string

val query : Database.t -> string -> (Table.t, error) result

val pp_result : Format.formatter -> Table.t -> unit
(** Column header plus one row per line. *)
