(** Time budgets and cooperative cancellation for anytime inference.

    A deadline is a wall-clock budget plus a cancellation flag that can
    be shared across worker domains. Every stage of the pipeline
    (grounding, the solver portfolios, ADMM sweeps, MILP node
    exploration) polls its deadline at safe points and, on expiry, stops
    where it stands and returns its best feasible answer tagged with a
    {!status} instead of running to completion or dying.

    Polling is cheap: {!expired} on {!none} is a single atomic load, and
    on a finite deadline one clock read — callers on very hot paths
    (e.g. the WalkSAT flip loop) additionally stride their polls.

    {!Faults} is the deterministic fault-injection companion: tests and
    CI script worker crashes and artificial slowness at named points to
    exercise the degradation paths without relying on timing. *)

type t

val none : t
(** The infinite budget: never expires, {!cancel} is a no-op. This is
    the default of every [?deadline] argument, and with it every solver
    behaves exactly as it did before deadlines existed. *)

val after : ms:float -> t
(** [after ~ms] expires [ms] milliseconds from now. [ms <= 0] is an
    already-expired deadline (useful to force the anytime paths). *)

val of_timeout_ms : float option -> t
(** [of_timeout_ms (Some ms)] is [after ~ms]; [None] is {!none}. *)

val is_finite : t -> bool
(** [false] exactly for {!none} (and deadlines sliced from it). *)

val expired : t -> bool
(** True once the budget has run out or the deadline was cancelled. *)

val remaining_ms : t -> float
(** Milliseconds left ([infinity] for {!none}); negative once overrun,
    [neg_infinity] when cancelled. *)

val budget_ms : t -> float
(** The budget the deadline was created with ([infinity] for {!none}). *)

val cancel : t -> unit
(** Cooperatively cancel: every subsequent {!expired} poll — including
    through {!slice}s of this deadline — answers [true]. No-op on
    {!none}. *)

val slice : t -> frac:float -> t
(** [slice t ~frac] is a sub-budget covering [frac] of the remaining
    time of [t], sharing its cancellation flag (cancelling or expiring
    the parent expires the slice, never the other way around). Slicing
    {!none} returns {!none}: an infinite budget has no meaningful
    fraction. Used by the degradation ladder to give the exact solver a
    bounded first shot. *)

val env_timeout_ms : unit -> float option
(** The [TECORE_TIMEOUT_MS] environment variable as a budget in
    milliseconds ([None] when unset or unparsable). *)

exception Expired
(** The generic "budget ran out before this work started" marker:
    {!Pool.map_results} returns it for tasks it never dealt, and strict
    stages may raise it at a poll point. *)

(** Outcome tag of an anytime computation. *)
type status =
  | Completed  (** ran to natural completion *)
  | Timed_out
      (** the budget expired; the result is the best-so-far answer and
          still satisfies the hard constraints *)
  | Degraded
      (** something was lost along the way — a crashed worker, a
          fallback from the exact path, or a timed-out answer that
          violates hard constraints — the result is still the best
          sound answer available *)

val worst : status -> status -> status
(** Combine stage statuses; [Degraded] dominates [Timed_out] dominates
    [Completed]. *)

val status_name : status -> string
(** ["completed"], ["timed_out"], ["degraded"] — the spelling used in
    [--json] output and BENCH files. *)

val pp_status : Format.formatter -> status -> unit

(** Deterministic fault injection for robustness tests.

    Points are named call sites in production code (e.g.
    ["worker_crash"] at the start of every solver portfolio task,
    ["slow_ground"] in the grounding closure). A point only fires when
    the matching name was configured — via {!configure} or the
    [TECORE_FAULTS] environment variable, a comma-separated list of
    [name] or [name:arg] entries — so the hooks cost one atomic load
    when idle. Firing is a pure function of the configuration and the
    call's own index, never of scheduling, so faulted runs are exactly
    reproducible at every job count. *)
module Faults : sig
  exception Injected of string
  (** Raised by {!inject}; carries the point name. *)

  val configure : string -> unit
  (** [configure "worker_crash,slow_ground:2"] replaces the active
      fault set. The optional [:arg] integer parameterises the point
      (task index for crashes, delay milliseconds for slowdowns;
      default 1). The empty string clears. *)

  val clear : unit -> unit

  val active : string -> bool
  (** Whether the point is configured (env [TECORE_FAULTS] is read once
      at startup; {!configure} overrides it). *)

  val arg : string -> int
  (** The point's configured [:arg] (default 1); 0 when inactive. *)

  val trip_at : string -> index:int -> bool
  (** [trip_at name ~index] is true when the point is active and
      [index] equals its configured argument — the deterministic
      trigger for indexed task crews (crash exactly task [arg] of every
      portfolio, at any job count). *)

  val inject : string -> index:int -> unit
  (** [trip_at] and raise {!Injected} when it fires. *)

  val delay : string -> unit
  (** Sleep [arg] milliseconds when the point is active (the
      ["slow_ground"] hook); returns immediately otherwise. *)
end
