(** Domain-based work pool: the one multicore primitive of the codebase.

    Every parallel stage of the pipeline (solver portfolios, sampler
    chains, ADMM block updates, grounding) schedules through a pool so
    that parallelism is controlled by a single [--jobs] knob and results
    stay deterministic at any job count:

    - results are always returned (or side effects committed) in task
      order, never completion order;
    - a pool created with [jobs = 1] bypasses domains entirely — every
      combinator degenerates to a plain sequential loop, so the default
      configuration behaves exactly like the pre-multicore code;
    - callers derive per-task PRNG seeds with {!Prng.subseed} so the
      work done by task [i] does not depend on scheduling.

    The pool itself holds no OS resources: the worker domains behind
    every pool are one process-wide crew, spawned lazily on first
    parallel use, reused across operations and pools (batches
    serialise), and joined at process exit — so pools are safe to store
    in options records and free to create in any number. Operations on
    one pool do not nest: a task must not submit work to the pool
    executing it (see {!exception-Nested_use}); work submitted from
    inside a task to a {e different} pool runs sequentially on the
    calling domain. *)

type t

exception Nested_use
(** Raised when a task running on a pool submits more work to that same
    pool (or when two threads race to use one pool). Nesting would
    deadlock a fixed-size worker set; split the work or use a second
    pool. A [jobs = 1] pool is purely sequential and therefore exempt. *)

val create : jobs:int -> t
(** [create ~jobs] is a pool running at most [jobs] tasks concurrently.
    [jobs = 1] never spawns a domain. [jobs = 0] means
    [recommended_jobs ()]. Raises [Invalid_argument] when [jobs < 0]. *)

val sequential : t
(** A shared [jobs = 1] pool: the default for every [?pool] argument. *)

val jobs : t -> int
(** The concurrency bound the pool was created with (after resolving 0
    to the recommended count). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val parse_jobs : string option -> int option
(** Parse a [--jobs]/[TECORE_JOBS] value: [Some "0"] means recommended,
    [Some "n"] with [n >= 1] means [n], anything else [None]. *)

val default_jobs : unit -> int
(** Job count from the [TECORE_JOBS] environment variable (same syntax
    as {!parse_jobs}), defaulting to 1. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, running up to [jobs]
    applications concurrently, and returns results in input order. The
    first exception raised by any task is re-raised after all workers
    stop (remaining tasks are not started). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val map_results :
  ?deadline:Deadline.t -> t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map_results pool f xs] is {!map} with per-task crash containment
    and deadline-aware dealing: a task that raises yields its own
    [Error] at its input position instead of aborting the batch (the
    crew and the remaining tasks are unaffected), and a task dealt
    after [deadline] expired is skipped and reported as
    [Error Deadline.Expired]. Tasks that ran before the expiry keep
    their results — the anytime solvers use exactly this to hold on to
    the best-so-far attempt when a worker crashes or the budget runs
    out. Ordering and determinism match {!map}. *)

val run_all : t -> (unit -> unit) list -> unit
(** Run every thunk, in input order when [jobs = 1]. *)

val for_ : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [for_ pool ~chunk n f] runs [f i] for every [0 <= i < n], dealing
    indices to workers in contiguous chunks of [chunk] (default 1024).
    Within a chunk, indices run in increasing order. Chunk boundaries
    depend only on [chunk] and [n] — never on the job count — so a
    caller that accumulates per-chunk partial results gets bit-identical
    floating-point sums at every job count. *)

type stats = {
  calls : int;    (** parallel operations executed *)
  tasks : int;    (** tasks run across all operations *)
  busy_ms : float;(** summed per-domain busy time *)
  wall_ms : float;(** summed wall time of the operations *)
}

val stats : t -> stats
(** Cumulative scheduling statistics since [create]; callers surface
    them through [Obs]. ([busy_ms /. wall_ms] approximates achieved
    parallelism.) *)

val set_task_hook : ((unit -> unit) -> unit) option -> unit
(** Install a wrapper invoked around every crew task, on the domain that
    executes it. The wrapper must call its argument exactly once;
    exceptions it lets escape are treated as task failures. Only the
    parallel paths go through it — [jobs = 1] pools and the in-task
    sequential fallback bypass the crew, so sequential runs stay exactly
    as before. The observability layer installs a hook at load time to
    open a per-task span for worker profiling; [None] restores the
    identity wrapper. *)
