type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let subseed seed i =
  if i < 0 then invalid_arg "Prng.subseed: negative index";
  (* Jump the splitmix state by (i+1) gammas and mix, so child seeds are
     decorrelated from each other and from the parent stream; keep 62
     bits so the result is a non-negative native int. *)
  let z =
    mix Int64.(add (of_int seed) (mul golden_gamma (of_int (i + 1))))
  in
  Int64.to_int (Int64.shift_right_logical z 2)

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's native int without wrapping. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled to [0, 1) then to [0, bound). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (int64 t) 1L) 0L <> 0

let bernoulli t p = float t 1.0 < p

let range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let gaussian t ~mean ~stddev =
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)
