type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 0) () =
  { data = (if capacity <= 0 then [||] else Array.make capacity 0); len = 0 }

let length t = t.len

let grow t needed =
  let cap = Array.length t.data in
  let ncap = max needed (if cap = 0 then 16 else 2 * cap) in
  let ndata = Array.make ncap 0 in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.get: index out of bounds";
  t.data.(i)

let unsafe_get t i = Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Ivec.set: index out of bounds";
  t.data.(i) <- x

let clear t = t.len <- 0

let reserve t capacity = if capacity > Array.length t.data then grow t capacity

let append t src ~pos ~len =
  if len > 0 then begin
    if t.len + len > Array.length t.data then grow t (t.len + len);
    Array.blit src pos t.data t.len len;
    t.len <- t.len + len
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_array t = Array.sub t.data 0 t.len

let raw t = t.data
