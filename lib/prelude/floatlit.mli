(** Round-trip float literals for the textual formats.

    The rule language and the temporal-quads format both carry floats
    (rule weights, fact confidences) whose canonical renderings must
    reparse to the identical bit pattern: snapshot compaction rewrites a
    session's journal from its in-memory state, and a weight that drifts
    by one ulp across a compaction would silently change objectives
    after recovery.

    [%g] (6 significant digits) does not round-trip; [%.17g] does but
    emits signed exponents ("1e-07") that the hand-rolled rule lexer
    does not accept. {!to_lexeme} renders the shortest of
    [%.12g]/[%.15g]/[%.17g] that round-trips and, when that form uses a
    signed exponent, falls back to a plain decimal expansion that still
    round-trips. *)

val to_lexeme : float -> string
(** A decimal literal [s] with [float_of_string s = x] (bitwise, for
    finite [x]) containing no signed exponent. Non-finite floats render
    through [%h]-free best effort ("inf"/"nan") — callers are expected
    to keep those out of persisted state. *)
