(** Growable unboxed int vector.

    The columnar relational store keeps one of these per column; unlike
    ['a Vec.t] the backing [int array] is unboxed, so a million-row
    column is one flat allocation the GC never scans. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

val push : t -> int -> unit

val get : t -> int -> int
(** @raise Invalid_argument out of bounds. *)

val unsafe_get : t -> int -> int
(** No bounds check; caller guarantees [i < length t]. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument out of bounds. *)

val clear : t -> unit

val reserve : t -> int -> unit
(** Ensure capacity for at least [n] elements (contents preserved).
    Callers that know the final length up front avoid the
    doubling-growth garbage of repeated [push]. *)

val append : t -> int array -> pos:int -> len:int -> unit
(** Bulk-push [len] ints of [src] starting at [pos]. *)

val iter : (int -> unit) -> t -> unit

val to_array : t -> int array
(** Copy of the live prefix. *)

val raw : t -> int array
(** The backing array itself (length >= [length t]; entries past the
    live prefix are garbage). For tight loops that index [0 .. length-1]
    without per-element bounds checks. Invalidated by the next [push]. *)
