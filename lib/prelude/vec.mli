(** Growable array (vector) with amortised O(1) push.

    Used pervasively by the quad store, the grounders and the solvers, which
    all build large collections incrementally. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val pop : 'a t -> 'a option
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
