let now_ms () = Unix.gettimeofday () *. 1000.0

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  let stop = Unix.gettimeofday () in
  (result, (stop -. start) *. 1000.0)

let time_ms f = snd (time f)

let mean_ms ?(runs = 10) f =
  assert (runs > 0);
  let total = ref 0.0 in
  for _ = 1 to runs do
    total := !total +. time_ms f
  done;
  !total /. float_of_int runs
