type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let ndata = Array.make ncap x in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let map f t =
  if t.len = 0 then { data = [||]; len = 0 }
  else begin
    let first = f t.data.(0) in
    let data = Array.make t.len first in
    for i = 1 to t.len - 1 do
      data.(i) <- f t.data.(i)
    done;
    { data; len = t.len }
  end

let filter p t =
  let out = create () in
  iter (fun x -> if p x then push out x) t;
  out
