let round_trips x s =
  match float_of_string_opt s with
  | Some y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | None -> false

(* "1e-07" has a signed exponent; "1e7" and "1.5" do not. *)
let has_signed_exponent s =
  let n = String.length s in
  let rec scan i =
    i < n
    && (((s.[i] = 'e' || s.[i] = 'E')
        && i + 1 < n
        && (s.[i + 1] = '+' || s.[i + 1] = '-'))
       || scan (i + 1))
  in
  scan 0

(* Expand to plain decimal: enough fractional digits for magnitudes
   down to ~1e-310 plus 17 significant ones. *)
let plain_decimal x =
  let rec try_prec p =
    if p > 500 then Printf.sprintf "%.17g" x
    else
      let s = Printf.sprintf "%.*f" p x in
      if round_trips x s then s else try_prec (p + (p / 2) + 1)
  in
  try_prec 17

let to_lexeme x =
  if not (Float.is_finite x) then Printf.sprintf "%g" x
  else
    let shortest =
      let rec pick = function
        | [] -> Printf.sprintf "%.17g" x
        | fmt :: rest ->
            let s = Printf.sprintf fmt x in
            if round_trips x s then s else pick rest
      in
      pick [ format_of_string "%.12g"; format_of_string "%.15g" ]
    in
    if has_signed_exponent shortest then plain_decimal x else shortest
