(** Wall-clock timing helpers for the benchmark harness. *)

val now_ms : unit -> float
(** Current wall-clock reading in milliseconds. Only differences are
    meaningful; the observability layer's span timers are built on it. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in milliseconds. *)

val time_ms : (unit -> unit) -> float
(** Elapsed milliseconds of a unit thunk. *)

val mean_ms : ?runs:int -> (unit -> unit) -> float
(** [mean_ms ~runs f] averages the wall-clock time of [runs] executions,
    matching the paper's "averaged over 10 runs" protocol. *)
