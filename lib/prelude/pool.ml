(* A pool is a concurrency bound plus counters; the worker domains
   behind it are a single process-wide crew, spawned lazily on first
   parallel use, grown to the largest bound ever requested and joined at
   exit. Batches from different pools serialise on the crew, so pools
   stay cheap to create, impossible to leak, and bounded by the OCaml
   domain limit no matter how many are made.

   Determinism contract: tasks receive their input index, results land
   at that index, and nothing a task can observe depends on which domain
   ran it. *)

type stats = {
  calls : int;
  tasks : int;
  busy_ms : float;
  wall_ms : float;
}

type t = {
  jobs : int;
  active : bool Atomic.t;
  lock : Mutex.t; (* guards the counters below *)
  mutable calls : int;
  mutable tasks : int;
  mutable busy_ms : float;
  mutable wall_ms : float;
}

exception Nested_use

let recommended_jobs () = Domain.recommended_domain_count ()

let create ~jobs =
  if jobs < 0 then invalid_arg "Pool.create: jobs < 0";
  let jobs = if jobs = 0 then recommended_jobs () else jobs in
  {
    jobs;
    active = Atomic.make false;
    lock = Mutex.create ();
    calls = 0;
    tasks = 0;
    busy_ms = 0.0;
    wall_ms = 0.0;
  }

let sequential = create ~jobs:1

let jobs t = t.jobs

let parse_jobs = function
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> Some (recommended_jobs ())
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_jobs () =
  Option.value (parse_jobs (Sys.getenv_opt "TECORE_JOBS")) ~default:1

let stats t =
  Mutex.lock t.lock;
  let s =
    { calls = t.calls; tasks = t.tasks; busy_ms = t.busy_ms; wall_ms = t.wall_ms }
  in
  Mutex.unlock t.lock;
  s

let record t ~n ~busy ~wall =
  Mutex.lock t.lock;
  t.calls <- t.calls + 1;
  t.tasks <- t.tasks + n;
  t.busy_ms <- t.busy_ms +. busy;
  t.wall_ms <- t.wall_ms +. wall;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* The process-wide worker crew.                                       *)

type batch = {
  f : int -> unit;
  n : int;
  bound : int; (* concurrency bound of the submitting pool *)
}

type crew = {
  m : Mutex.t;
  cond : Condition.t; (* broadcast on every state change *)
  mutable batch : batch option;
  mutable next : int; (* next task index to deal *)
  mutable running : int; (* tasks currently executing *)
  mutable busy : float; (* summed task time of the current batch *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable domains : unit Domain.t list;
  mutable size : int; (* List.length domains *)
  mutable shutdown : bool;
}

let crew =
  {
    m = Mutex.create ();
    cond = Condition.create ();
    batch = None;
    next = 0;
    running = 0;
    busy = 0.0;
    failure = None;
    domains = [];
    size = 0;
    shutdown = false;
  }

(* Leave headroom under the runtime's maximum domain count. *)
let max_workers = 126

(* True while the current domain executes a crew task. A nested parallel
   operation from inside a task would wait on itself (same pool raises
   {!Nested_use}; any other pool falls back to a sequential loop). *)
let in_task = Domain.DLS.new_key (fun () -> false)

(* Wrapper applied around every crew task. The observability layer
   installs one at load time to open a per-task span on the executing
   domain; identity by default. The sequential paths in [run_tasks]
   bypass the crew and therefore the hook, so [jobs = 1] runs never pay
   for (or show) it. *)
let task_hook : ((unit -> unit) -> unit) ref = ref (fun f -> f ())

let set_task_hook = function
  | Some h -> task_hook := h
  | None -> task_hook := fun f -> f ()

(* Deal and execute tasks of the current batch until no index is
   available (all dealt, bound reached, or a task failed). Called and
   returns with [crew.m] held. *)
let rec deal () =
  match crew.batch with
  | Some b when crew.next < b.n && crew.running < b.bound && crew.failure = None
    ->
      let i = crew.next in
      crew.next <- crew.next + 1;
      crew.running <- crew.running + 1;
      Mutex.unlock crew.m;
      let t0 = Timing.now_ms () in
      let outcome =
        Domain.DLS.set in_task true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set in_task false)
          (fun () ->
            try
              !task_hook (fun () -> b.f i);
              None
            with e -> Some (e, Printexc.get_raw_backtrace ()))
      in
      let elapsed = Timing.now_ms () -. t0 in
      Mutex.lock crew.m;
      crew.busy <- crew.busy +. elapsed;
      crew.running <- crew.running - 1;
      (match outcome with
      | Some _ when crew.failure = None ->
          crew.failure <- outcome;
          crew.next <- b.n (* stop dealing the remaining tasks *)
      | _ -> ());
      Condition.broadcast crew.cond;
      deal ()
  | _ -> ()

let worker () =
  Mutex.lock crew.m;
  let rec loop () =
    if not crew.shutdown then begin
      deal ();
      if not crew.shutdown then begin
        Condition.wait crew.cond crew.m;
        loop ()
      end
    end
  in
  loop ();
  Mutex.unlock crew.m

(* Grow the crew to [wanted] workers; with [crew.m] held. *)
let ensure_workers wanted =
  let wanted = min wanted max_workers in
  if crew.size = 0 && wanted > 0 then
    at_exit (fun () ->
        Mutex.lock crew.m;
        crew.shutdown <- true;
        Condition.broadcast crew.cond;
        Mutex.unlock crew.m;
        List.iter Domain.join crew.domains);
  while crew.size < wanted do
    crew.domains <- Domain.spawn worker :: crew.domains;
    crew.size <- crew.size + 1
  done

(* Run one batch on the crew: publish it, participate in the dealing,
   then wait for stragglers. Returns the batch's summed task time. *)
let run_batch ~bound n f =
  Mutex.lock crew.m;
  while crew.batch <> None do
    Condition.wait crew.cond crew.m
  done;
  crew.batch <- Some { f; n; bound };
  crew.next <- 0;
  crew.running <- 0;
  crew.busy <- 0.0;
  crew.failure <- None;
  ensure_workers (min bound n - 1);
  Condition.broadcast crew.cond;
  let rec coordinate () =
    deal ();
    match crew.batch with
    | Some b when crew.next < b.n || crew.running > 0 ->
        Condition.wait crew.cond crew.m;
        coordinate ()
    | _ -> ()
  in
  coordinate ();
  let busy = crew.busy in
  let failure = crew.failure in
  crew.batch <- None;
  crew.failure <- None;
  Condition.broadcast crew.cond;
  Mutex.unlock crew.m;
  (busy, failure)

(* ------------------------------------------------------------------ *)

(* Run [f 0 .. f (n-1)], at most [t.jobs] concurrently. The first task
   exception aborts the dealing of further tasks and is re-raised (with
   its backtrace) after every running task has drained. *)
let run_tasks t n f =
  if n > 0 then
    if t.jobs = 1 || n = 1 then begin
      (* Sequential path: no domains, no crew, identical to a loop. *)
      let start = Timing.now_ms () in
      for i = 0 to n - 1 do
        f i
      done;
      let elapsed = Timing.now_ms () -. start in
      record t ~n ~busy:elapsed ~wall:elapsed
    end
    else begin
      if not (Atomic.compare_and_set t.active false true) then
        raise Nested_use;
      let finally () = Atomic.set t.active false in
      Fun.protect ~finally @@ fun () ->
      if Domain.DLS.get in_task then begin
        (* Inside a crew task of another pool: submitting a batch would
           wait on the batch this task belongs to. Degrade to the
           sequential loop — results are identical by contract. *)
        let start = Timing.now_ms () in
        for i = 0 to n - 1 do
          f i
        done;
        let elapsed = Timing.now_ms () -. start in
        record t ~n ~busy:elapsed ~wall:elapsed
      end
      else begin
        let start = Timing.now_ms () in
        let busy, failure = run_batch ~bound:t.jobs n f in
        record t ~n ~busy ~wall:(Timing.now_ms () -. start);
        match failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end

let map_array t f xs =
  let n = Array.length xs in
  let out = Array.make n None in
  run_tasks t n (fun i -> out.(i) <- Some (f xs.(i)));
  Array.map (function Some v -> v | None -> assert false) out

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

(* Containment and deadline-awareness live in the task wrapper, not in
   the crew: a task that raises stores its own [Error] and returns
   normally, so one crashed task can neither abort the batch nor wedge
   the crew, and a task dealt after expiry skips itself without running.
   The crew's abort-on-failure path stays reserved for the plain
   combinators above. *)
let map_results ?(deadline = Deadline.none) t f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  let out = Array.make n (Error Deadline.Expired) in
  run_tasks t n (fun i ->
      if not (Deadline.expired deadline) then
        out.(i) <- (try Ok (f xs.(i)) with e -> Error e));
  Array.to_list out

let run_all t thunks =
  let thunks = Array.of_list thunks in
  run_tasks t (Array.length thunks) (fun i -> thunks.(i) ())

let for_ t ?(chunk = 1024) n f =
  if chunk <= 0 then invalid_arg "Pool.for_: chunk <= 0";
  if n > 0 then begin
    let nchunks = (n + chunk - 1) / chunk in
    run_tasks t nchunks (fun c ->
        let hi = min n ((c + 1) * chunk) in
        for i = c * chunk to hi - 1 do
          f i
        done)
  end
