(* Wall-clock budgets + shared cancellation flags. The clock is
   [Unix.gettimeofday] (the same clock as {!Timing}); budgets are short
   enough that wall-vs-monotonic drift is irrelevant here, and the poll
   stays a single clock read. *)

type t = {
  limit : float; (* absolute ms; infinity = never *)
  budget : float; (* the ms the deadline was created with *)
  cancelled : bool Atomic.t; (* shared with slices *)
}

let none = { limit = infinity; budget = infinity; cancelled = Atomic.make false }

let after ~ms =
  { limit = Timing.now_ms () +. ms; budget = ms; cancelled = Atomic.make false }

let of_timeout_ms = function None -> none | Some ms -> after ~ms

let is_finite t = t.limit < infinity

let expired t =
  Atomic.get t.cancelled || (t.limit < infinity && Timing.now_ms () >= t.limit)

let remaining_ms t =
  if Atomic.get t.cancelled then neg_infinity
  else if t.limit = infinity then infinity
  else t.limit -. Timing.now_ms ()

let budget_ms t = t.budget

let cancel t = if t != none then Atomic.set t.cancelled true

let slice t ~frac =
  if not (is_finite t) then t
  else
    let left = Float.max 0.0 (remaining_ms t) in
    let ms = left *. frac in
    { limit = Timing.now_ms () +. ms; budget = ms; cancelled = t.cancelled }

let env_timeout_ms () =
  match Sys.getenv_opt "TECORE_TIMEOUT_MS" with
  | None -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some ms when Float.is_finite ms -> Some ms
      | Some _ | None -> None)

exception Expired

type status = Completed | Timed_out | Degraded

let worst a b =
  match (a, b) with
  | Degraded, _ | _, Degraded -> Degraded
  | Timed_out, _ | _, Timed_out -> Timed_out
  | Completed, Completed -> Completed

let status_name = function
  | Completed -> "completed"
  | Timed_out -> "timed_out"
  | Degraded -> "degraded"

let pp_status ppf s = Format.pp_print_string ppf (status_name s)

module Faults = struct
  exception Injected of string

  (* The active set is an immutable list behind an atomic so worker
     domains can poll concurrently with a reconfiguration from tests. *)
  let spec : (string * int) list Atomic.t = Atomic.make []

  let parse text =
    String.split_on_char ',' text
    |> List.filter_map (fun entry ->
           match String.trim entry with
           | "" -> None
           | entry -> (
               match String.index_opt entry ':' with
               | None -> Some (entry, 1)
               | Some i ->
                   let name = String.sub entry 0 i in
                   let arg =
                     String.sub entry (i + 1) (String.length entry - i - 1)
                   in
                   Some
                     ( name,
                       Option.value (int_of_string_opt arg) ~default:1 )))

  let configure text = Atomic.set spec (parse text)
  let clear () = Atomic.set spec []

  let () =
    match Sys.getenv_opt "TECORE_FAULTS" with
    | Some text -> configure text
    | None -> ()

  let lookup name = List.assoc_opt name (Atomic.get spec)
  let active name = lookup name <> None
  let arg name = Option.value (lookup name) ~default:0

  let trip_at name ~index =
    match lookup name with Some a -> index = a | None -> false

  let inject name ~index = if trip_at name ~index then raise (Injected name)

  let delay name =
    match lookup name with
    | Some ms when ms > 0 -> Unix.sleepf (float_of_int ms /. 1000.0)
    | Some _ | None -> ()
end
