(** Deterministic splitmix64 pseudo-random number generator.

    All stochastic components of the reproduction (data generators,
    MaxWalkSAT, sampling in benches) draw from this generator so that every
    run of every experiment is bit-for-bit reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] builds a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a statistically independent child
    generator; used to give sub-components their own streams. *)

val subseed : int -> int -> int
(** [subseed seed i] is a decorrelated child seed for task [i] of a
    computation seeded with [seed] — a pure function of its arguments,
    so parallel tasks get reproducible streams at any job count. The
    result is non-negative. Raises [Invalid_argument] when [i < 0]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is true with probability [p]. *)

val range : t -> int -> int -> int
(** [range g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal deviate. *)
