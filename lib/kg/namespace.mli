(** Prefix management for compact IRIs (CURIEs).

    The serialisation format and the CLI accept [prefix:local] names; this
    table expands them to full IRIs and shrinks IRIs back for display. *)

type t

val create : unit -> t
(** Fresh table preloaded with the common [rdf:], [rdfs:], [xsd:] and the
    demo's [ex:] prefixes. *)

val add : t -> prefix:string -> iri:string -> unit
(** Register or overwrite a prefix binding. *)

val bindings : t -> (string * string) list
(** All (prefix, iri) pairs, sorted by prefix. *)

val expand : t -> string -> string
(** [expand t "ex:CR"] is ["http://example.org/CR"] when [ex:] is bound;
    unbound or prefix-free names are returned unchanged. *)

val shrink : t -> string -> string
(** Longest-match inverse of {!expand}. *)
