(** Uncertain temporal facts.

    A fact [(s, p, o, [t1,t2]) c] states that the triple held during the
    interval and is believed with confidence [c] in (0, 1]. Facts with
    [c = 1.0] are deterministic evidence; the MAP solvers may never remove
    them. This is the atomic unit of a UTKG (Figure 1 of the paper). *)

type t = {
  subject : Term.t;
  predicate : Term.t;
  object_ : Term.t;
  time : Interval.t;
  confidence : float;
}

exception Invalid of string

val make :
  ?confidence:float ->
  subject:Term.t ->
  predicate:Term.t ->
  object_:Term.t ->
  Interval.t ->
  t
(** @raise Invalid when the confidence is outside (0, 1] or the predicate
    is a literal. Default confidence is 1.0. *)

val v : string -> string -> Term.t -> int * int -> float -> t
(** Terse constructor for examples and tests:
    [v subject predicate object (lo, hi) confidence]. Subject and
    predicate are IRIs. *)

val triple : t -> Term.t * Term.t * Term.t

val is_certain : t -> bool
(** True when confidence = 1.0. *)

val weight : t -> float
(** Log-odds translation used by θ: [ln (c / (1 - c))], clamped to
    [Quad.max_weight] for certain facts. *)

val max_weight : float
(** Weight assigned to deterministic (confidence 1.0) facts. *)

val equal : t -> t -> bool
(** Structural equality including time and confidence. *)

val same_statement : t -> t -> bool
(** Equality ignoring confidence (same triple, same interval). *)

val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Paper notation: [(CR, coach, Chelsea, [2000,2004]) 0.9]. *)

val to_string : t -> string
