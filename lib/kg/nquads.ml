type error = { line : int; column : int option; message : string }

let pp_error ppf e =
  match e.column with
  | Some c -> Format.fprintf ppf "line %d, column %d: %s" e.line c e.message
  | None -> Format.fprintf ppf "line %d: %s" e.line e.message

(* Split a fact line into tokens: quoted strings, <iri>, [interval] and
   bare words. Lexical errors carry the 1-based column they start at. *)
let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let i = ref 0 in
  let error ~column msg = Error (msg, column) in
  let rec scan () =
    while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do
      incr i
    done;
    if !i >= n then Ok (List.rev !tokens)
    else
      match line.[!i] with
      | '#' -> Ok (List.rev !tokens)
      | '"' -> (
          let start = !i in
          incr i;
          let rec find_close () =
            if !i >= n then None
            else if line.[!i] = '\\' then begin
              i := !i + 2;
              find_close ()
            end
            else if line.[!i] = '"' then Some !i
            else begin
              incr i;
              find_close ()
            end
          in
          match find_close () with
          | None ->
              error ~column:(start + 1) "unterminated string literal"
          | Some close ->
              i := close + 1;
              tokens := String.sub line start (close - start + 1) :: !tokens;
              scan ())
      | '<' -> (
          match String.index_from_opt line !i '>' with
          | None -> error ~column:(!i + 1) "unterminated <iri>"
          | Some close ->
              tokens := String.sub line !i (close - !i + 1) :: !tokens;
              i := close + 1;
              scan ())
      | '[' -> (
          match String.index_from_opt line !i ']' with
          | None -> error ~column:(!i + 1) "unterminated [interval]"
          | Some close ->
              tokens := String.sub line !i (close - !i + 1) :: !tokens;
              i := close + 1;
              scan ())
      | _ ->
          let start = !i in
          while
            !i < n && line.[!i] <> ' ' && line.[!i] <> '\t' && line.[!i] <> '#'
          do
            incr i
          done;
          tokens := String.sub line start (!i - start) :: !tokens;
          scan ()
  in
  scan ()

let parse_term ns token =
  let n = String.length token in
  if n >= 2 && token.[0] = '<' && token.[n - 1] = '>' then
    Term.iri (String.sub token 1 (n - 2))
  else if n >= 2 && token.[0] = '"' && token.[n - 1] = '"' then
    Term.of_string token
  else
    match Term.of_string token with
    | Term.Iri name -> Term.iri (Namespace.expand ns name)
    | t -> t

let strip_dot tokens =
  match List.rev tokens with "." :: rest -> List.rev rest | _ -> tokens

(* Like {!parse_quad} but keeps the lexer column structured, for
   {!parse_string} to surface as [error.column]. *)
let parse_quad_loc ns line =
  match tokenize line with
  | Error (msg, column) -> Error (msg, Some column)
  | Ok tokens -> (
      match strip_dot tokens with
      | [ s; p; o; time ] | [ s; p; o; time; _ ] as fields -> (
          let confidence =
            match fields with
            | [ _; _; _; _; c ] -> float_of_string_opt c
            | _ -> Some 1.0
          in
          match (Interval.of_string time, confidence) with
          | Error e, _ -> Error (e, None)
          | _, None -> Error ("confidence is not a number", None)
          | Ok interval, Some confidence -> (
              try
                Ok
                  (Quad.make ~confidence ~subject:(parse_term ns s)
                     ~predicate:(parse_term ns p) ~object_:(parse_term ns o)
                     interval)
              with Quad.Invalid msg -> Error (msg, None)))
      | [] -> Error ("empty fact line", None)
      | tokens ->
          Error
            ( Printf.sprintf "expected 4 or 5 fields, got %d"
                (List.length tokens),
              None ))

let parse_quad ns line =
  match parse_quad_loc ns line with
  | Ok q -> Ok q
  | Error (msg, None) -> Error msg
  | Error (msg, Some column) ->
      Error (Printf.sprintf "%s (column %d)" msg column)

let is_blank line =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

let parse_prefix_directive line =
  (* "@prefix ex: <http://...> ." *)
  let parts =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "" && s <> ".")
  in
  match parts with
  | [ "@prefix"; prefixed; iri ] ->
      let n = String.length prefixed in
      let m = String.length iri in
      if n >= 1 && prefixed.[n - 1] = ':' && m >= 2 && iri.[0] = '<'
         && iri.[m - 1] = '>'
      then
        Some (String.sub prefixed 0 (n - 1), String.sub iri 1 (m - 2))
      else None
  | _ -> None

let parse_string ?namespace text =
  let ns = match namespace with Some ns -> ns | None -> Namespace.create () in
  let graph = Graph.create () in
  let lines = String.split_on_char '\n' text in
  let rec loop lineno = function
    | [] -> Ok graph
    | line :: rest ->
        let trimmed = String.trim line in
        if is_blank line || (trimmed <> "" && trimmed.[0] = '#') then
          loop (lineno + 1) rest
        else if String.length trimmed >= 7 && String.sub trimmed 0 7 = "@prefix"
        then
          match parse_prefix_directive trimmed with
          | Some (prefix, iri) ->
              Namespace.add ns ~prefix ~iri;
              loop (lineno + 1) rest
          | None ->
              Error { line = lineno; column = None; message = "malformed @prefix" }
        else
          match parse_quad_loc ns trimmed with
          | Ok q ->
              ignore (Graph.add graph q);
              loop (lineno + 1) rest
          | Error (message, column) -> Error { line = lineno; column; message }
  in
  loop 1 lines

let parse_file ?namespace path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string ?namespace text

let print_term ns ppf t =
  match t with
  | Term.Iri name -> Format.pp_print_string ppf (Namespace.shrink ns name)
  | t -> Term.pp ppf t

let print ?namespace ppf graph =
  let ns = match namespace with Some ns -> ns | None -> Namespace.create () in
  List.iter
    (fun (prefix, iri) ->
      Format.fprintf ppf "@@prefix %s: <%s> .@." prefix iri)
    (Namespace.bindings ns);
  Graph.iter
    (fun _ q ->
      Format.fprintf ppf "%a %a %a %a"
        (print_term ns) q.Quad.subject
        (print_term ns) q.Quad.predicate
        (print_term ns) q.Quad.object_
        Interval.pp q.Quad.time;
      if q.Quad.confidence < 1.0 then
        Format.fprintf ppf " %s"
          (Prelude.Floatlit.to_lexeme q.Quad.confidence);
      Format.fprintf ppf " .@.")
    graph

let to_string ?namespace graph =
  Format.asprintf "%a" (fun ppf g -> print ?namespace ppf g) graph

let save_file ?namespace path graph =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  print ?namespace ppf graph;
  Format.pp_print_flush ppf ();
  close_out oc
