module Vec = Prelude.Vec

module Term_table = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

module Pair_table = Hashtbl.Make (struct
  type t = Term.t * Term.t

  let equal (a1, b1) (a2, b2) = Term.equal a1 a2 && Term.equal b1 b2
  let hash (a, b) = Hashtbl.hash (Term.hash a, Term.hash b)
end)

type id = int

(* The four lookup indexes are built lazily, on first use: the grounding
   pipeline only ever streams a graph ([iter]), and at 10^6 facts the
   subject/predicate tables, the (s, p) pair table and the per-predicate
   interval trees together cost more resident memory than the quads
   themselves. Sessions that actually edit pay the build once, on their
   first point query; [add] keeps any already-built index up to date. *)
type t = {
  quads : Quad.t Vec.t;
  alive : bool Vec.t;
  mutable live : int;
  mutable by_subject : id Vec.t Term_table.t option;
  mutable by_predicate : id Vec.t Term_table.t option;
  mutable by_sp : id Vec.t Pair_table.t option;
  mutable temporal : id Interval_tree.t Term_table.t option;
}

let create () =
  {
    quads = Vec.create ();
    alive = Vec.create ();
    live = 0;
    by_subject = None;
    by_predicate = None;
    by_sp = None;
    temporal = None;
  }

let index_push table key id =
  match Term_table.find_opt table key with
  | Some vec -> Vec.push vec id
  | None ->
      let vec = Vec.create () in
      Vec.push vec id;
      Term_table.replace table key vec

let sp_push table q id =
  match Pair_table.find_opt table (q.Quad.subject, q.Quad.predicate) with
  | Some vec -> Vec.push vec id
  | None ->
      let vec = Vec.create () in
      Vec.push vec id;
      Pair_table.replace table (q.Quad.subject, q.Quad.predicate) vec

let temporal_push table q id =
  let tree =
    Option.value
      (Term_table.find_opt table q.Quad.predicate)
      ~default:Interval_tree.empty
  in
  Term_table.replace table q.Quad.predicate
    (Interval_tree.add q.Quad.time id tree)

(* Index builders cover dead quads too: [remove]/[restore] never touch
   the indexes (liveness is checked at query time), so a lazily built
   index must agree with one maintained incrementally since [create]. *)
let subject_index t =
  match t.by_subject with
  | Some table -> table
  | None ->
      let table = Term_table.create 64 in
      Vec.iteri (fun id q -> index_push table q.Quad.subject id) t.quads;
      t.by_subject <- Some table;
      table

let predicate_index t =
  match t.by_predicate with
  | Some table -> table
  | None ->
      let table = Term_table.create 16 in
      Vec.iteri (fun id q -> index_push table q.Quad.predicate id) t.quads;
      t.by_predicate <- Some table;
      table

let sp_index t =
  match t.by_sp with
  | Some table -> table
  | None ->
      let table = Pair_table.create 64 in
      Vec.iteri (fun id q -> sp_push table q id) t.quads;
      t.by_sp <- Some table;
      table

let temporal_index t =
  match t.temporal with
  | Some table -> table
  | None ->
      let table = Term_table.create 16 in
      Vec.iteri (fun id q -> temporal_push table q id) t.quads;
      t.temporal <- Some table;
      table

let add t q =
  let id = Vec.length t.quads in
  Vec.push t.quads q;
  Vec.push t.alive true;
  t.live <- t.live + 1;
  Option.iter (fun table -> index_push table q.Quad.subject id) t.by_subject;
  Option.iter (fun table -> index_push table q.Quad.predicate id) t.by_predicate;
  Option.iter (fun table -> sp_push table q id) t.by_sp;
  Option.iter (fun table -> temporal_push table q id) t.temporal;
  id

let check_id t id =
  if id < 0 || id >= Vec.length t.quads then
    invalid_arg (Printf.sprintf "Graph: unknown fact id %d" id)

let remove t id =
  check_id t id;
  if Vec.get t.alive id then begin
    Vec.set t.alive id false;
    t.live <- t.live - 1
  end

let restore t id =
  check_id t id;
  if not (Vec.get t.alive id) then begin
    Vec.set t.alive id true;
    t.live <- t.live + 1
  end

let mem_id t id = id >= 0 && id < Vec.length t.quads && Vec.get t.alive id

let find t id =
  check_id t id;
  Vec.get t.quads id

let size t = t.live

let total t = Vec.length t.quads

let iter f t =
  Vec.iteri (fun id q -> if Vec.get t.alive id then f id q) t.quads

let fold f t acc =
  let acc = ref acc in
  iter (fun id q -> acc := f id q !acc) t;
  !acc

let to_list t = List.rev (fold (fun _ q acc -> q :: acc) t [])

let ids t = List.rev (fold (fun id _ acc -> id :: acc) t [])

let of_list quads =
  let t = create () in
  List.iter (fun q -> ignore (add t q)) quads;
  t

let copy t =
  let t' = create () in
  Vec.iter (fun q -> ignore (add t' q)) t.quads;
  Vec.iteri (fun id alive -> if not alive then remove t' id) t.alive;
  t'

let live_of_index t table key =
  match Term_table.find_opt table key with
  | None -> []
  | Some vec ->
      List.rev
        (Vec.fold
           (fun acc id ->
             if Vec.get t.alive id then (id, Vec.get t.quads id) :: acc
             else acc)
           [] vec)

let by_subject t s = live_of_index t (subject_index t) s

let by_predicate t p = live_of_index t (predicate_index t) p

let by_subject_predicate t s p =
  match Pair_table.find_opt (sp_index t) (s, p) with
  | None -> []
  | Some vec ->
      List.rev
        (Vec.fold
           (fun acc id ->
             if Vec.get t.alive id then (id, Vec.get t.quads id) :: acc
             else acc)
           [] vec)

let overlapping t p window =
  match Term_table.find_opt (temporal_index t) p with
  | None -> []
  | Some tree ->
      Interval_tree.overlapping window tree
      |> List.filter_map (fun (_, id) ->
             if Vec.get t.alive id then Some (id, Vec.get t.quads id)
             else None)

let contains_statement t q =
  List.exists
    (fun (_, q') -> Quad.same_statement q q')
    (by_subject_predicate t q.Quad.subject q.Quad.predicate)

let predicates t =
  let counts = Term_table.create 16 in
  iter
    (fun _ q ->
      let c =
        Option.value (Term_table.find_opt counts q.Quad.predicate) ~default:0
      in
      Term_table.replace counts q.Quad.predicate (c + 1))
    t;
  Term_table.fold (fun p c acc -> (p, c) :: acc) counts []
  |> List.sort (fun (p1, c1) (p2, c2) ->
         match Int.compare c2 c1 with 0 -> Term.compare p1 p2 | c -> c)

let subjects t =
  let seen = Term_table.create 64 in
  let acc = ref [] in
  iter
    (fun _ q ->
      if not (Term_table.mem seen q.Quad.subject) then begin
        Term_table.replace seen q.Quad.subject ();
        acc := q.Quad.subject :: !acc
      end)
    t;
  List.rev !acc

let complete_predicate t prefix =
  let prefix = String.lowercase_ascii prefix in
  let matches name =
    let name = String.lowercase_ascii name in
    String.length prefix <= String.length name
    && String.sub name 0 (String.length prefix) = prefix
  in
  predicates t
  |> List.filter_map (fun (p, _) ->
         if matches (Term.to_string p) then Some p else None)

type stats = {
  facts : int;
  removed : int;
  distinct_subjects : int;
  distinct_predicates : int;
  certain_facts : int;
  min_confidence : float;
  max_confidence : float;
  time_span : Interval.t option;
}

let stats t =
  let certain = ref 0 in
  let min_c = ref 1.0 and max_c = ref 0.0 in
  let span = ref None in
  iter
    (fun _ q ->
      if Quad.is_certain q then incr certain;
      if q.Quad.confidence < !min_c then min_c := q.Quad.confidence;
      if q.Quad.confidence > !max_c then max_c := q.Quad.confidence;
      span :=
        Some
          (match !span with
          | None -> q.Quad.time
          | Some s -> Interval.hull s q.Quad.time))
    t;
  {
    facts = t.live;
    removed = total t - t.live;
    distinct_subjects = List.length (subjects t);
    distinct_predicates = List.length (predicates t);
    certain_facts = !certain;
    min_confidence = (if t.live = 0 then 0.0 else !min_c);
    max_confidence = !max_c;
    time_span = !span;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>facts: %d@ removed: %d@ subjects: %d@ predicates: %d@ certain: \
     %d@ confidence: [%.3g, %.3g]@ span: %a@]"
    s.facts s.removed s.distinct_subjects s.distinct_predicates
    s.certain_facts s.min_confidence s.max_confidence
    (Format.pp_print_option Interval.pp)
    s.time_span

let pp ppf t =
  iter (fun _ q -> Format.fprintf ppf "%a@." Quad.pp q) t
