(** Text serialisation of uncertain temporal knowledge graphs.

    The format is an N-Quads-style line format extended with a validity
    interval and an optional confidence, matching the paper's notation:

    {v
    @prefix ex: <http://example.org/> .
    # subject predicate object interval confidence .
    ex:CR ex:coach ex:Chelsea [2000,2004] 0.9 .
    ex:CR ex:birthDate 1951 [1951,2017] .
    v}

    Terms are CURIEs (expanded through the prefix table), [<full-iris>],
    double-quoted strings, or numeric literals. Missing confidence means
    1.0. Lines starting with [#] and blank lines are ignored. *)

type error = {
  line : int;               (** 1-based *)
  column : int option;
      (** 1-based, relative to the trimmed line; [Some] for lexical
          errors (unterminated string/iri/interval), [None] for
          structural ones (field count, bad confidence) *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit
(** ["line L, column C: msg"] when the column is known, else
    ["line L: msg"]. *)

val parse_string : ?namespace:Namespace.t -> string -> (Graph.t, error) result
(** Parse a whole document. The prefix table collects [@prefix] directives
    encountered in the document (it may be pre-populated). *)

val parse_file : ?namespace:Namespace.t -> string -> (Graph.t, error) result

val parse_quad : Namespace.t -> string -> (Quad.t, string) result
(** Parse a single fact line (no directives). Lexical errors embed the
    column in the message text (["... (column C)"]); {!parse_string}
    callers get it structured via [error.column] instead. *)

val print : ?namespace:Namespace.t -> Format.formatter -> Graph.t -> unit
(** Serialise; IRIs are shrunk through the prefix table and the table's
    bindings are emitted as [@prefix] directives. *)

val to_string : ?namespace:Namespace.t -> Graph.t -> string

val save_file : ?namespace:Namespace.t -> string -> Graph.t -> unit
