(** Temporal coalescing and per-subject timelines.

    Noisy extraction often yields the same statement split into several
    overlapping or adjacent validity intervals; temporal databases call
    merging them {e coalescing}. [coalesce] merges facts that agree on
    subject, predicate and object and whose intervals overlap or meet,
    combining confidences by noisy-or (several independent extractions
    strengthen belief). [timeline] renders one predicate's history for a
    subject and reports the gaps and overlaps a curator would inspect. *)

val coalesce : Graph.t -> Graph.t
(** A new graph with maximal merged intervals per statement; facts of
    distinct statements are untouched. Insertion order is preserved up to
    merging (a merged group appears at its first member's position). *)

type segment = {
  object_ : Term.t;
  interval : Interval.t;
  confidence : float;
}

type gap_or_overlap =
  | Gap of Interval.t          (** no value known during this interval *)
  | Overlap of Interval.t * Term.t * Term.t
      (** two distinct objects claimed simultaneously *)

type timeline = {
  subject : Term.t;
  predicate : Term.t;
  segments : segment list;     (** sorted by interval start *)
  issues : gap_or_overlap list;
}

val timeline : Graph.t -> subject:Term.t -> predicate:Term.t -> timeline

val pp_timeline : Format.formatter -> timeline -> unit
