type t = (string, string) Hashtbl.t

let defaults =
  [
    ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
    ("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
    ("xsd", "http://www.w3.org/2001/XMLSchema#");
    ("ex", "http://example.org/");
  ]

let create () =
  let t = Hashtbl.create 8 in
  List.iter (fun (p, iri) -> Hashtbl.replace t p iri) defaults;
  t

let add t ~prefix ~iri = Hashtbl.replace t prefix iri

let bindings t =
  Hashtbl.fold (fun p iri acc -> (p, iri) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let expand t name =
  match String.index_opt name ':' with
  | None -> name
  | Some i -> (
      let prefix = String.sub name 0 i in
      let local = String.sub name (i + 1) (String.length name - i - 1) in
      match Hashtbl.find_opt t prefix with
      | Some iri -> iri ^ local
      | None -> name)

let shrink t iri =
  let best = ref None in
  Hashtbl.iter
    (fun prefix ns ->
      let nslen = String.length ns in
      if
        nslen <= String.length iri
        && String.sub iri 0 nslen = ns
        && (match !best with
           | None -> true
           | Some (_, blen) -> nslen > blen)
      then best := Some (prefix, nslen))
    t;
  match !best with
  | None -> iri
  | Some (prefix, nslen) ->
      prefix ^ ":" ^ String.sub iri nslen (String.length iri - nslen)
