(** Interval tree: an AVL tree over intervals augmented with subtree
    maxima, supporting O(log n + k) temporal overlap and stabbing queries.

    The quad store keeps one tree per predicate so that grounding
    constraints such as "coach(x, y, t) ∧ coach(x, z, t') ∧ overlaps(t,t')"
    does not scan the whole relation. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** Number of stored values (an interval may carry several). *)

val add : Interval.t -> 'a -> 'a t -> 'a t

val remove : Interval.t -> ('a -> bool) -> 'a t -> 'a t
(** [remove i p t] drops every value [v] with [p v] stored under interval
    [i]. No-op when nothing matches. *)

val overlapping : Interval.t -> 'a t -> (Interval.t * 'a) list
(** All values whose interval shares a point with the query interval. *)

val stabbing : int -> 'a t -> (Interval.t * 'a) list
(** All values whose interval contains the time point. *)

val iter : (Interval.t -> 'a -> unit) -> 'a t -> unit

val fold : (Interval.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc

val span : 'a t -> Interval.t option
(** Hull of all stored intervals. *)
