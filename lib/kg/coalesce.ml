(* Noisy-or combination: independent supports strengthen belief. *)
let combine_confidence a b = 1.0 -. ((1.0 -. a) *. (1.0 -. b))

let mergeable a b =
  Interval.overlaps a b || Interval.hi a + 1 = Interval.lo b
  || Interval.hi b + 1 = Interval.lo a

let coalesce graph =
  (* Group facts by (s, p, o); merge interval chains inside each group. *)
  let groups = Hashtbl.create 256 in
  let order = ref [] in
  Graph.iter
    (fun _ q ->
      let key =
        ( Term.to_string q.Quad.subject,
          Term.to_string q.Quad.predicate,
          Term.to_string q.Quad.object_ )
      in
      (match Hashtbl.find_opt groups key with
      | None ->
          order := key :: !order;
          Hashtbl.replace groups key [ q ]
      | Some qs -> Hashtbl.replace groups key (q :: qs)))
    graph;
  let out = Graph.create () in
  List.iter
    (fun key ->
      let qs = List.rev (Hashtbl.find groups key) in
      let sorted =
        List.sort (fun (a : Quad.t) b -> Interval.compare a.time b.time) qs
      in
      let merged =
        List.fold_left
          (fun acc (q : Quad.t) ->
            match acc with
            | (interval, confidence) :: rest when mergeable interval q.time ->
                (Interval.hull interval q.time,
                 combine_confidence confidence q.confidence)
                :: rest
            | acc -> (q.time, q.confidence) :: acc)
          [] sorted
        |> List.rev
      in
      let template = List.hd qs in
      List.iter
        (fun (interval, confidence) ->
          ignore
            (Graph.add out
               (Quad.make
                  ~confidence:(Float.min 1.0 confidence)
                  ~subject:template.Quad.subject
                  ~predicate:template.Quad.predicate
                  ~object_:template.Quad.object_ interval)))
        merged)
    (List.rev !order);
  out

type segment = {
  object_ : Term.t;
  interval : Interval.t;
  confidence : float;
}

type gap_or_overlap =
  | Gap of Interval.t
  | Overlap of Interval.t * Term.t * Term.t

type timeline = {
  subject : Term.t;
  predicate : Term.t;
  segments : segment list;
  issues : gap_or_overlap list;
}

let timeline graph ~subject ~predicate =
  let facts = Graph.by_subject_predicate graph subject predicate in
  let segments =
    List.map
      (fun (_, (q : Quad.t)) ->
        { object_ = q.object_; interval = q.time; confidence = q.confidence })
      facts
    |> List.sort (fun a b -> Interval.compare a.interval b.interval)
  in
  let rec issues acc = function
    | [] | [ _ ] -> List.rev acc
    | a :: (b :: _ as rest) ->
        let acc =
          if Interval.overlaps a.interval b.interval then
            if Term.equal a.object_ b.object_ then acc
            else
              match Interval.intersect a.interval b.interval with
              | Some i -> Overlap (i, a.object_, b.object_) :: acc
              | None -> acc
          else if Interval.hi a.interval + 1 < Interval.lo b.interval then
            Gap
              (Interval.make
                 (Interval.hi a.interval + 1)
                 (Interval.lo b.interval - 1))
            :: acc
          else acc
        in
        issues acc rest
  in
  { subject; predicate; segments; issues = issues [] segments }

let pp_timeline ppf t =
  Format.fprintf ppf "@[<v>%a / %a:" Term.pp t.subject Term.pp t.predicate;
  List.iter
    (fun s ->
      Format.fprintf ppf "@   %a %a (%.2g)" Interval.pp s.interval Term.pp
        s.object_ s.confidence)
    t.segments;
  List.iter
    (fun issue ->
      match issue with
      | Gap i -> Format.fprintf ppf "@   gap %a" Interval.pp i
      | Overlap (i, a, b) ->
          Format.fprintf ppf "@   overlap %a: %a vs %a" Interval.pp i Term.pp a
            Term.pp b)
    t.issues;
  Format.fprintf ppf "@]"
