type t =
  | Iri of string
  | Str of string
  | Int of int
  | Flt of float

let iri s = Iri s
let str s = Str s
let int n = Int n
let float f = Flt f

let equal a b =
  match (a, b) with
  | Iri x, Iri y | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Flt x, Flt y -> Float.equal x y
  | (Iri _ | Str _ | Int _ | Flt _), _ -> false

let tag = function Iri _ -> 0 | Str _ -> 1 | Int _ -> 2 | Flt _ -> 3

let compare a b =
  match (a, b) with
  | Iri x, Iri y | Str x, Str y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Flt x, Flt y -> Float.compare x y
  | _ -> Int.compare (tag a) (tag b)

let hash = function
  | Iri s -> Hashtbl.hash (0, s)
  | Str s -> Hashtbl.hash (1, s)
  | Int n -> Hashtbl.hash (2, n)
  | Flt f -> Hashtbl.hash (3, f)

let is_literal = function Iri _ -> false | Str _ | Int _ | Flt _ -> true

let as_int = function
  | Int n -> Some n
  | Str s | Iri s -> int_of_string_opt s
  | Flt f -> if Float.is_integer f then Some (int_of_float f) else None

let pp ppf = function
  | Iri s -> Format.pp_print_string ppf s
  | Str s -> Format.fprintf ppf "%S" s
  | Int n -> Format.pp_print_int ppf n
  | Flt f -> Format.fprintf ppf "%g" f

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    Str (Scanf.unescaped (String.sub s 1 (n - 2)))
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Flt f
        | None -> Iri s)
