(** RDF-style terms of a knowledge graph.

    Subjects, predicates and objects of temporal facts. We keep the model
    function-free (constants only), as required by the MLN/PSL translation:
    every term grounds to a constant of the Herbrand universe. *)

type t =
  | Iri of string      (** resource identifier, e.g. [dbp:Claudio_Ranieri] *)
  | Str of string      (** string literal *)
  | Int of int         (** integer literal (years, counts, ages) *)
  | Flt of float       (** floating point literal *)

val iri : string -> t
val str : string -> t
val int : int -> t
val float : float -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_literal : t -> bool

val as_int : t -> int option
(** Numeric view used by arithmetic rule conditions (e.g. [age < 20]):
    [Int n] and year-like [Iri]/[Str] values that parse as integers. *)

val pp : Format.formatter -> t -> unit
(** IRIs print bare, strings print quoted, numbers print plainly. *)

val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string}: quoted strings become [Str], integers [Int],
    floats [Flt], everything else [Iri]. *)
