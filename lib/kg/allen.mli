(** Allen's interval algebra over discrete intervals.

    TeCoRe's temporal constraints and rule conditions are expressed with
    Allen's thirteen basic interval relations. This module provides:
    the relations themselves, classification of a pair of intervals,
    converses, the full 13x13 composition table, relation sets encoded as
    bitmasks, and path consistency for qualitative interval networks.

    On a discrete time domain we interpret endpoints as in the paper:
    intervals are inclusive, [meets] holds when one interval ends exactly
    one time point before the next begins (the intervals are adjacent but
    share no point). *)

type relation =
  | Before        (** a ends with a gap before b starts *)
  | Meets         (** a ends immediately before b starts *)
  | Overlaps      (** proper overlap, a starts first, a ends inside b *)
  | Finished_by   (** a starts first, both end together *)
  | Contains      (** b strictly inside a *)
  | Starts        (** both start together, a ends first *)
  | Equals
  | Started_by    (** both start together, b ends first *)
  | During        (** a strictly inside b *)
  | Finishes      (** b starts first, both end together *)
  | Overlapped_by (** converse of Overlaps *)
  | Met_by        (** converse of Meets *)
  | After         (** converse of Before *)

val all : relation list
(** The thirteen basic relations in canonical order. *)

val to_index : relation -> int
(** Position 0..12 in {!all}. *)

val of_index : int -> relation

val name : relation -> string
(** Lower-case name as used in the constraint language, e.g. ["before"],
    ["overlaps"], ["met-by"]. *)

val of_name : string -> relation option
(** Inverse of {!name}; also accepts the paper's spelling variants
    (["overlap"], ["metBy"], ...). *)

val pp : Format.formatter -> relation -> unit

val converse : relation -> relation
(** [converse r] relates (b, a) whenever [r] relates (a, b). *)

val relate : Interval.t -> Interval.t -> relation
(** The unique basic relation holding between two intervals. *)

val holds : relation -> Interval.t -> Interval.t -> bool
(** [holds r a b] iff [relate a b = r]. *)

(** {1 Relation sets}

    A set of basic relations is a 13-bit mask; general Allen relations
    (e.g. "disjoint" = before ∪ after ∪ meets ∪ met-by) are such sets. *)

module Set : sig
  type t = private int

  val empty : t
  val full : t
  val singleton : relation -> t
  val of_list : relation list -> t
  val to_list : t -> relation list
  val mem : relation -> t -> bool
  val add : relation -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val equal : t -> t -> bool
  val is_empty : t -> bool
  val cardinal : t -> int
  val converse : t -> t
  val holds : t -> Interval.t -> Interval.t -> bool
  (** True when the basic relation between the intervals is in the set. *)

  val pp : Format.formatter -> t -> unit

  (** Common derived relations used by TeCoRe constraints. *)

  val disjoint : t
  (** No shared time point: before, after, meets, met-by. *)

  val intersects : t
  (** Shares at least one time point (complement of {!disjoint}). *)

  val before_or_meets : t
  (** Strictly earlier in the weak sense used by constraint c1. *)

  val within : t
  (** starts, during, finishes, equals: contained in. *)
end

val compose : relation -> relation -> Set.t
(** Allen's composition: the set of relations possibly holding between
    (a, c) given [r1] between (a, b) and [r2] between (b, c). The table is
    derived by exhaustive enumeration over a small discrete domain (sound
    and complete for Allen's algebra since every entry of the classical
    table has a witness with few distinct endpoints). *)

val compose_set : Set.t -> Set.t -> Set.t
(** Pointwise union of compositions. *)

(** {1 Qualitative interval networks}

    A network has [n] interval variables and a constraint (relation set)
    on every ordered pair. {!Network.path_consistency} runs the classic
    PC-2 style algebraic closure; an empty constraint proves the network
    inconsistent. Used to check sets of qualitative temporal constraints
    for satisfiability before translation. *)

module Network : sig
  type t

  val create : int -> t
  (** [create n] makes a network over [n] variables, all pairs
      unconstrained (full relation set). *)

  val size : t -> int

  val constrain : t -> int -> int -> Set.t -> unit
  (** Intersect the constraint on (i, j) with the given set; the converse
      is maintained on (j, i) automatically. *)

  val get : t -> int -> int -> Set.t

  val path_consistency : t -> bool
  (** Algebraic closure; returns [false] when some constraint becomes
      empty (inconsistency detected). *)

  val consistent_scenario : t -> Interval.t array option
  (** Attempts to realise the network with concrete discrete intervals by
      backtracking search over basic relations and endpoint assignment.
      Intended for small networks (tests, constraint editor feedback). *)
end
