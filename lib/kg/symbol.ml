(* One process-wide intern table for terms and intervals. Ids are dense
   (0, 1, 2, ...) in first-intern order, which makes them deterministic
   for a deterministic workload: the parallel phases only ever read
   codes interned before the batch was submitted, so the id assignment
   is defined entirely by the sequential program order.

   All dictionary accesses take a mutex — Hashtbl is not safe against a
   concurrent resize from another domain. Decoding an id back to its
   symbol is lock-free: the id handed to a reader happens-before the
   read, so the slot it names is already published. The table is
   append-only and global: symbols are never freed, which is the right
   trade for a resolver whose vocabulary (entities, predicates, years)
   is tiny relative to its fact count. *)

module Term_table = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

module Interval_table = Hashtbl.Make (struct
  type t = Interval.t

  let equal = Interval.equal
  let hash i = Hashtbl.hash (Interval.lo i, Interval.hi i)
end)

let lock = Mutex.create ()
let term_ids : int Term_table.t = Term_table.create 4096
let terms : Term.t Prelude.Vec.t = Prelude.Vec.create ()
let interval_ids : int Interval_table.t = Interval_table.create 1024
let intervals : Interval.t Prelude.Vec.t = Prelude.Vec.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let term_id t =
  locked (fun () ->
      match Term_table.find_opt term_ids t with
      | Some id -> id
      | None ->
          let id = Prelude.Vec.length terms in
          Prelude.Vec.push terms t;
          Term_table.replace term_ids t id;
          id)

let find_term t = locked (fun () -> Term_table.find_opt term_ids t)

let term id = Prelude.Vec.get terms id

let interval_id i =
  locked (fun () ->
      match Interval_table.find_opt interval_ids i with
      | Some id -> id
      | None ->
          let id = Prelude.Vec.length intervals in
          Prelude.Vec.push intervals i;
          Interval_table.replace interval_ids i id;
          id)

let find_interval i = locked (fun () -> Interval_table.find_opt interval_ids i)

let interval id = Prelude.Vec.get intervals id

let terms_interned () = Prelude.Vec.length terms
let intervals_interned () = Prelude.Vec.length intervals
