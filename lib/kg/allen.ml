type relation =
  | Before
  | Meets
  | Overlaps
  | Finished_by
  | Contains
  | Starts
  | Equals
  | Started_by
  | During
  | Finishes
  | Overlapped_by
  | Met_by
  | After

let all =
  [ Before; Meets; Overlaps; Finished_by; Contains; Starts; Equals;
    Started_by; During; Finishes; Overlapped_by; Met_by; After ]

let to_index = function
  | Before -> 0
  | Meets -> 1
  | Overlaps -> 2
  | Finished_by -> 3
  | Contains -> 4
  | Starts -> 5
  | Equals -> 6
  | Started_by -> 7
  | During -> 8
  | Finishes -> 9
  | Overlapped_by -> 10
  | Met_by -> 11
  | After -> 12

let of_index = function
  | 0 -> Before
  | 1 -> Meets
  | 2 -> Overlaps
  | 3 -> Finished_by
  | 4 -> Contains
  | 5 -> Starts
  | 6 -> Equals
  | 7 -> Started_by
  | 8 -> During
  | 9 -> Finishes
  | 10 -> Overlapped_by
  | 11 -> Met_by
  | 12 -> After
  | i -> invalid_arg (Printf.sprintf "Allen.of_index: %d" i)

let name = function
  | Before -> "before"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Finished_by -> "finished-by"
  | Contains -> "contains"
  | Starts -> "starts"
  | Equals -> "equals"
  | Started_by -> "started-by"
  | During -> "during"
  | Finishes -> "finishes"
  | Overlapped_by -> "overlapped-by"
  | Met_by -> "met-by"
  | After -> "after"

let normalise_name s =
  (* Lower-case, camelCase and snake_case all map to the hyphenated form. *)
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      if c = '_' then Buffer.add_char buf '-'
      else if c >= 'A' && c <= 'Z' then begin
        Buffer.add_char buf '-';
        Buffer.add_char buf (Char.lowercase_ascii c)
      end
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let of_name s =
  match normalise_name s with
  | "before" | "precedes" -> Some Before
  | "meets" -> Some Meets
  | "overlaps" | "overlap" -> Some Overlaps
  | "finished-by" -> Some Finished_by
  | "contains" -> Some Contains
  | "starts" -> Some Starts
  | "equals" | "equal" -> Some Equals
  | "started-by" -> Some Started_by
  | "during" -> Some During
  | "finishes" -> Some Finishes
  | "overlapped-by" -> Some Overlapped_by
  | "met-by" -> Some Met_by
  | "after" | "preceded-by" -> Some After
  | _ -> None

let pp ppf r = Format.pp_print_string ppf (name r)

let converse = function
  | Before -> After
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Finished_by -> Finishes
  | Contains -> During
  | Starts -> Started_by
  | Equals -> Equals
  | Started_by -> Starts
  | During -> Contains
  | Finishes -> Finished_by
  | Overlapped_by -> Overlaps
  | Met_by -> Meets
  | After -> Before

let relate a b =
  let alo = Interval.lo a and ahi = Interval.hi a in
  let blo = Interval.lo b and bhi = Interval.hi b in
  if ahi + 1 < blo then Before
  else if ahi + 1 = blo then Meets
  else if bhi + 1 < alo then After
  else if bhi + 1 = alo then Met_by
  else if alo = blo && ahi = bhi then Equals
  else if alo = blo then if ahi < bhi then Starts else Started_by
  else if ahi = bhi then if alo > blo then Finishes else Finished_by
  else if alo > blo && ahi < bhi then During
  else if alo < blo && ahi > bhi then Contains
  else if alo < blo then Overlaps
  else Overlapped_by

let holds r a b = relate a b = r

module Set = struct
  type t = int

  let empty = 0
  let full = (1 lsl 13) - 1
  let singleton r = 1 lsl to_index r
  let mem r s = s land singleton r <> 0
  let add r s = s lor singleton r
  let of_list rs = List.fold_left (fun s r -> add r s) empty rs
  let union = ( lor )
  let inter = ( land )
  let equal = Int.equal
  let is_empty s = s = 0

  let cardinal s =
    let rec loop s acc = if s = 0 then acc else loop (s lsr 1) (acc + (s land 1)) in
    loop s 0

  let to_list s = List.filter (fun r -> mem r s) all

  let converse s =
    List.fold_left
      (fun acc r -> if mem r s then add (converse r) acc else acc)
      empty all

  let holds s a b = mem (relate a b) s

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         pp)
      (to_list s)

  let disjoint = of_list [ Before; Meets; Met_by; After ]
  let intersects = full land lnot disjoint
  let before_or_meets = of_list [ Before; Meets ]
  let within = of_list [ Starts; During; Finishes; Equals ]
end

(* The composition table is derived once by exhaustive enumeration over a
   small discrete domain. Every entry of Allen's classical table is
   witnessed by a configuration with at most six distinct endpoints and
   unit gaps, so endpoints in 0..16 are sufficient. Soundness and
   completeness are cross-checked by property tests over a larger domain. *)
let composition_table =
  lazy
    (let table = Array.make (13 * 13) Set.empty in
     let max_point = 16 in
     let intervals =
       let acc = ref [] in
       for lo = max_point downto 0 do
         for hi = max_point downto lo do
           acc := Interval.make lo hi :: !acc
         done
       done;
       Array.of_list !acc
     in
     let n = Array.length intervals in
     (* Bucket pairs by their relation to avoid the full cubic loop over
        (a, b, c): for each b, relate it to every a and c. *)
     for bi = 0 to n - 1 do
       let b = intervals.(bi) in
       let by_rel_a = Array.make 13 [] in
       let by_rel_c = Array.make 13 [] in
       for i = 0 to n - 1 do
         let x = intervals.(i) in
         let ra = to_index (relate x b) in
         by_rel_a.(ra) <- x :: by_rel_a.(ra);
         let rc = to_index (relate b x) in
         by_rel_c.(rc) <- x :: by_rel_c.(rc)
       done;
       for r1 = 0 to 12 do
         for r2 = 0 to 12 do
           let idx = (r1 * 13) + r2 in
           if Set.cardinal table.(idx) < 13 then
             List.iter
               (fun a ->
                 List.iter
                   (fun c ->
                     table.(idx) <- Set.add (relate a c) table.(idx))
                   by_rel_c.(r2))
               by_rel_a.(r1)
         done
       done
     done;
     table)

let compose r1 r2 =
  (Lazy.force composition_table).((to_index r1 * 13) + to_index r2)

let compose_set s1 s2 =
  let table = Lazy.force composition_table in
  let acc = ref Set.empty in
  List.iter
    (fun r1 ->
      if Set.mem r1 s1 then
        List.iter
          (fun r2 ->
            if Set.mem r2 s2 then
              acc := Set.union !acc table.((to_index r1 * 13) + to_index r2))
          all)
    all;
  !acc

module Network = struct
  type t = {
    n : int;
    constraints : int array; (* n*n relation-set masks *)
  }

  let create n =
    let constraints = Array.make (n * n) (Set.full :> int) in
    for i = 0 to n - 1 do
      constraints.((i * n) + i) <- (Set.singleton Equals :> int)
    done;
    { n; constraints }

  let size t = t.n

  let get t i j = (t.constraints.((i * t.n) + j) : int :> Set.t)

  let set_raw t i j (s : Set.t) =
    t.constraints.((i * t.n) + j) <- (s :> int);
    t.constraints.((j * t.n) + i) <- (Set.converse s :> int)

  let constrain t i j s =
    let current = get t i j in
    set_raw t i j (Set.inter current s)

  let path_consistency t =
    let n = t.n in
    let queue = Queue.create () in
    let ok = ref true in
    (* Direct contradictions (empty constraints) are found before any
       composition — a two-variable network has no intermediate k. *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Set.is_empty (get t i j) then ok := false;
        Queue.add (i, j) queue
      done
    done;
    let revise i j =
      (* Tighten (i, j) through every intermediate k. *)
      let changed = ref false in
      for k = 0 to n - 1 do
        if k <> i && k <> j && !ok then begin
          let via = compose_set (get t i k) (get t k j) in
          let tightened = Set.inter (get t i j) via in
          if not (Set.equal tightened (get t i j)) then begin
            set_raw t i j tightened;
            changed := true;
            if Set.is_empty tightened then ok := false
          end
        end
      done;
      !changed
    in
    while !ok && not (Queue.is_empty queue) do
      let i, j = Queue.pop queue in
      if revise i j then
        for k = 0 to n - 1 do
          if k <> i && k <> j then begin
            Queue.add (min i k, max i k) queue;
            Queue.add (min j k, max j k) queue
          end
        done
    done;
    !ok

  let consistent_scenario t =
    let n = t.n in
    if n = 0 then Some [||]
    else begin
      let bound = (4 * n) + 2 in
      let assignment = Array.make n (Interval.point 0) in
      let candidates =
        let acc = ref [] in
        for lo = bound downto 0 do
          for hi = bound downto lo do
            acc := Interval.make lo hi :: !acc
          done
        done;
        !acc
      in
      let compatible v iv =
        let rec loop u =
          u >= v
          || (Set.mem (relate assignment.(u) iv) (get t u v) && loop (u + 1))
        in
        loop 0
      in
      let rec assign v =
        if v = n then true
        else
          List.exists
            (fun iv ->
              if compatible v iv then begin
                assignment.(v) <- iv;
                assign (v + 1)
              end
              else false)
            candidates
      in
      if assign 0 then Some (Array.copy assignment) else None
    end
end
