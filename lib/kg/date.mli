(** Calendar dates as time points.

    The paper's discrete time domain can be "days, minutes, or
    milliseconds"; the year-level examples need no conversion, but
    day-granularity KGs do. This module maps proleptic-Gregorian civil
    dates to day numbers (days since 1970-01-01, negative before) so
    ISO-8601 dates can be used as interval endpoints.

    The conversion uses the standard days-from-civil algorithm and is
    exact over the full int range of years. *)

type t = { year : int; month : int; day : int }

exception Invalid of string

val make : year:int -> month:int -> day:int -> t
(** @raise Invalid for out-of-range months or days (leap years
    respected). *)

val is_leap_year : int -> bool

val days_in_month : year:int -> month:int -> int

val to_day_number : t -> int
(** Days since 1970-01-01 (0 for the epoch itself). *)

val of_day_number : int -> t
(** Inverse of {!to_day_number}. *)

val of_iso : string -> (t, string) result
(** Parse ["YYYY-MM-DD"] (a leading [-] allows BCE years). *)

val to_iso : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool

val interval : string -> string -> (Interval.t, string) result
(** [interval "2000-01-01" "2004-06-30"] — a day-granularity validity
    interval from two ISO dates. Errors when either date is malformed or
    the first is after the second. *)

val interval_to_iso : Interval.t -> string * string
(** Render a day-granularity interval's endpoints as ISO dates. *)

val pp : Format.formatter -> t -> unit
