type t = {
  subject : Term.t;
  predicate : Term.t;
  object_ : Term.t;
  time : Interval.t;
  confidence : float;
}

exception Invalid of string

let max_weight = 20.0

let make ?(confidence = 1.0) ~subject ~predicate ~object_ time =
  if not (confidence > 0.0 && confidence <= 1.0) then
    raise (Invalid (Printf.sprintf "confidence %g outside (0, 1]" confidence));
  if Term.is_literal predicate then
    raise (Invalid "predicate must be an IRI");
  { subject; predicate; object_; time; confidence }

let v s p o (lo, hi) confidence =
  make ~confidence ~subject:(Term.iri s) ~predicate:(Term.iri p) ~object_:o
    (Interval.make lo hi)

let triple q = (q.subject, q.predicate, q.object_)

let is_certain q = q.confidence >= 1.0

let weight q =
  if is_certain q then max_weight
  else
    let w = log (q.confidence /. (1.0 -. q.confidence)) in
    Float.min max_weight (Float.max (-.max_weight) w)

let equal a b =
  Term.equal a.subject b.subject
  && Term.equal a.predicate b.predicate
  && Term.equal a.object_ b.object_
  && Interval.equal a.time b.time
  && Float.equal a.confidence b.confidence

let same_statement a b =
  Term.equal a.subject b.subject
  && Term.equal a.predicate b.predicate
  && Term.equal a.object_ b.object_
  && Interval.equal a.time b.time

let compare a b =
  let c = Term.compare a.subject b.subject in
  if c <> 0 then c
  else
    let c = Term.compare a.predicate b.predicate in
    if c <> 0 then c
    else
      let c = Term.compare a.object_ b.object_ in
      if c <> 0 then c
      else
        let c = Interval.compare a.time b.time in
        if c <> 0 then c else Float.compare a.confidence b.confidence

let hash q =
  Hashtbl.hash
    ( Term.hash q.subject,
      Term.hash q.predicate,
      Term.hash q.object_,
      Interval.lo q.time,
      Interval.hi q.time )

let pp ppf q =
  Format.fprintf ppf "(%a, %a, %a, %a)" Term.pp q.subject Term.pp q.predicate
    Term.pp q.object_ Interval.pp q.time;
  if q.confidence < 1.0 then Format.fprintf ppf " %.3g" q.confidence

let to_string q = Format.asprintf "%a" pp q
