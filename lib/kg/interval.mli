(** Discrete time intervals.

    TeCoRe assumes a discrete, linearly ordered, finite time domain (days,
    years, ...). An interval [\[lo, hi\]] is inclusive on both ends with
    [lo <= hi]; a time point [t] is the singleton [\[t, t\]]. *)

type t = private { lo : int; hi : int }

exception Invalid of string

val make : int -> int -> t
(** [make lo hi] builds [\[lo, hi\]].
    @raise Invalid if [lo > hi]. *)

val point : int -> t
(** [point t] is the singleton interval [\[t, t\]]. *)

val lo : t -> int
val hi : t -> int

val length : t -> int
(** Number of time points covered: [hi - lo + 1]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic on [(lo, hi)]. *)

val contains : t -> int -> bool
(** [contains i t] is true when time point [t] lies inside [i]. *)

val subsumes : t -> t -> bool
(** [subsumes outer inner]: every point of [inner] is in [outer]. *)

val overlaps : t -> t -> bool
(** True when the two intervals share at least one time point. *)

val disjoint : t -> t -> bool
(** Negation of {!overlaps}. *)

val intersect : t -> t -> t option
(** Largest common sub-interval, when the intervals overlap. This realises
    the [t'' = t ∩ t'] interval computation of rule heads (rule f2 in the
    paper). *)

val hull : t -> t -> t
(** Smallest interval covering both arguments. *)

val before : t -> t -> bool
(** Strictly earlier, with a gap (Allen's [before]). *)

val shift : t -> int -> t
(** Translate both endpoints. *)

val clamp : t -> within:t -> t option
(** Restrict to a window; [None] if the intersection is empty. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation, e.g. [\[2000,2004\]]. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses [\[lo,hi\]] or a bare time point [t]. *)
