(** Indexed store of uncertain temporal facts — the UTKG.

    Facts get stable integer identifiers on insertion. The store keeps
    hash indexes on subject, predicate and (subject, predicate), plus one
    interval tree per predicate for temporal overlap queries; removal is
    by tombstone so identifiers stay valid across debugging rounds. *)

type t

type id = int
(** Stable fact identifier within one store. *)

val create : unit -> t

val copy : t -> t
(** Deep copy sharing no mutable state. *)

val add : t -> Quad.t -> id
(** Insert a fact. Duplicate statements (same triple and interval) are
    allowed and get distinct ids — TeCoRe's input KGs are noisy. *)

val remove : t -> id -> unit
(** Tombstone a fact. Idempotent.
    @raise Invalid_argument on an unknown id. *)

val restore : t -> id -> unit
(** Undo a removal (used when exploring alternative repairs). *)

val mem_id : t -> id -> bool
(** True when the id is live (inserted and not removed). *)

val find : t -> id -> Quad.t
(** The fact behind an id, live or tombstoned.
    @raise Invalid_argument on an unknown id. *)

val size : t -> int
(** Number of live facts. *)

val total : t -> int
(** Number of facts ever inserted, including tombstoned ones. *)

val iter : (id -> Quad.t -> unit) -> t -> unit
(** Over live facts, in insertion order. *)

val fold : (id -> Quad.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc

val to_list : t -> Quad.t list

val ids : t -> id list

val of_list : Quad.t list -> t

val contains_statement : t -> Quad.t -> bool
(** True when a live fact has the same triple and interval. *)

(** {1 Queries} *)

val by_predicate : t -> Term.t -> (id * Quad.t) list

val by_subject : t -> Term.t -> (id * Quad.t) list

val by_subject_predicate : t -> Term.t -> Term.t -> (id * Quad.t) list

val overlapping : t -> Term.t -> Interval.t -> (id * Quad.t) list
(** Live facts with the given predicate whose validity interval overlaps
    the query interval. *)

val predicates : t -> (Term.t * int) list
(** Distinct predicates of live facts with their fact counts, sorted by
    descending count. Backs the constraint editor's auto-completion. *)

val subjects : t -> Term.t list
(** Distinct subjects of live facts. *)

val complete_predicate : t -> string -> Term.t list
(** [complete_predicate t prefix] — predicates whose rendered name starts
    with [prefix] (case-insensitive); the UI auto-completion of Figure 5. *)

(** {1 Statistics} *)

type stats = {
  facts : int;
  removed : int;
  distinct_subjects : int;
  distinct_predicates : int;
  certain_facts : int;
  min_confidence : float;
  max_confidence : float;
  time_span : Interval.t option;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

val pp : Format.formatter -> t -> unit
(** Lists live facts, one per line, in the paper's notation. *)
