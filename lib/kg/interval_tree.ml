type 'a t =
  | Leaf
  | Node of {
      left : 'a t;
      key : Interval.t;
      values : 'a list;
      right : 'a t;
      height : int;
      max_hi : int; (* max interval end in this subtree *)
      min_lo : int; (* min interval start in this subtree *)
    }

let empty = Leaf

let is_empty = function Leaf -> true | Node _ -> false

let height = function Leaf -> 0 | Node n -> n.height

let max_hi = function Leaf -> min_int | Node n -> n.max_hi

let min_lo = function Leaf -> max_int | Node n -> n.min_lo

let node left key values right =
  Node
    {
      left;
      key;
      values;
      right;
      height = 1 + max (height left) (height right);
      max_hi = max (Interval.hi key) (max (max_hi left) (max_hi right));
      min_lo = min (Interval.lo key) (min (min_lo left) (min_lo right));
    }

let balance_factor = function
  | Leaf -> 0
  | Node n -> height n.left - height n.right

let rotate_left = function
  | Node { left; key; values; right = Node r; _ } ->
      node (node left key values r.left) r.key r.values r.right
  | t -> t

let rotate_right = function
  | Node { left = Node l; key; values; right; _ } ->
      node l.left l.key l.values (node l.right key values right)
  | t -> t

let rebalance t =
  match t with
  | Leaf -> t
  | Node n ->
      let bf = balance_factor t in
      if bf > 1 then
        let left =
          if balance_factor n.left < 0 then rotate_left n.left else n.left
        in
        rotate_right (node left n.key n.values n.right)
      else if bf < -1 then
        let right =
          if balance_factor n.right > 0 then rotate_right n.right else n.right
        in
        rotate_left (node n.left n.key n.values right)
      else t

let rec add key v = function
  | Leaf -> node Leaf key [ v ] Leaf
  | Node n ->
      let c = Interval.compare key n.key in
      if c = 0 then node n.left n.key (v :: n.values) n.right
      else if c < 0 then rebalance (node (add key v n.left) n.key n.values n.right)
      else rebalance (node n.left n.key n.values (add key v n.right))

let rec min_node = function
  | Leaf -> invalid_arg "Interval_tree.min_node"
  | Node { left = Leaf; key; values; _ } -> (key, values)
  | Node { left; _ } -> min_node left

let rec delete_key key = function
  | Leaf -> Leaf
  | Node n ->
      let c = Interval.compare key n.key in
      if c < 0 then rebalance (node (delete_key key n.left) n.key n.values n.right)
      else if c > 0 then
        rebalance (node n.left n.key n.values (delete_key key n.right))
      else begin
        match (n.left, n.right) with
        | Leaf, r -> r
        | l, Leaf -> l
        | l, r ->
            let skey, svalues = min_node r in
            rebalance (node l skey svalues (delete_key skey r))
      end

let rec remove key p = function
  | Leaf -> Leaf
  | Node n ->
      let c = Interval.compare key n.key in
      if c < 0 then rebalance (node (remove key p n.left) n.key n.values n.right)
      else if c > 0 then
        rebalance (node n.left n.key n.values (remove key p n.right))
      else begin
        let kept = List.filter (fun v -> not (p v)) n.values in
        match kept with
        | [] -> delete_key n.key (node n.left n.key n.values n.right)
        | _ -> node n.left n.key kept n.right
      end

let overlapping query t =
  let rec loop t acc =
    match t with
    | Leaf -> acc
    | Node n ->
        (* Prune subtrees that cannot overlap the query window. *)
        if n.max_hi < Interval.lo query || n.min_lo > Interval.hi query then acc
        else begin
          let acc = loop n.left acc in
          let acc =
            if Interval.overlaps n.key query then
              List.fold_left (fun acc v -> (n.key, v) :: acc) acc n.values
            else acc
          in
          loop n.right acc
        end
  in
  loop t []

let stabbing point t = overlapping (Interval.point point) t

let rec iter f = function
  | Leaf -> ()
  | Node n ->
      iter f n.left;
      List.iter (fun v -> f n.key v) n.values;
      iter f n.right

let rec fold f t acc =
  match t with
  | Leaf -> acc
  | Node n ->
      let acc = fold f n.left acc in
      let acc = List.fold_left (fun acc v -> f n.key v acc) acc n.values in
      fold f n.right acc

let cardinal t = fold (fun _ _ acc -> acc + 1) t 0

let span = function
  | Leaf -> None
  | Node n -> Some (Interval.make n.min_lo n.max_hi)
