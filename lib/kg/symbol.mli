(** Process-wide intern table: terms and intervals to dense ids.

    The relational grounding backend stores interned ids — flat ints —
    instead of boxed terms, so a million-row column is one unboxed
    array. Ids are assigned densely in first-intern order; interning
    the same symbol twice returns the same id, and [term (term_id t)]
    is (structurally) [t].

    Interning is thread-safe (a mutex serialises writers). Reading a
    symbol back by id is lock-free and safe from worker domains as long
    as the id was obtained before the parallel batch was submitted —
    which the grounding pipeline guarantees: all interning happens in
    the sequential closure/intern phases. *)

val term_id : Term.t -> int
(** Intern (or look up) a term; total, never fails. *)

val term : int -> Term.t
(** @raise Invalid_argument on an id never returned by {!term_id}. *)

val find_term : Term.t -> int option
(** Lookup without interning — [None] means the term has never been
    seen, so e.g. a selection on it matches nothing. *)

val interval_id : Interval.t -> int
val interval : int -> Interval.t
val find_interval : Interval.t -> int option

val terms_interned : unit -> int
(** Current table sizes, for the [intern.*] observability gauges. *)

val intervals_interned : unit -> int
