type t = { lo : int; hi : int }

exception Invalid of string

let make lo hi =
  if lo > hi then
    raise (Invalid (Printf.sprintf "interval [%d,%d] has lo > hi" lo hi));
  { lo; hi }

let point t = { lo = t; hi = t }

let lo i = i.lo
let hi i = i.hi

let length i = i.hi - i.lo + 1

let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let contains i t = i.lo <= t && t <= i.hi

let subsumes outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let disjoint a b = not (overlaps a b)

let intersect a b =
  if overlaps a b then Some { lo = max a.lo b.lo; hi = min a.hi b.hi }
  else None

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let before a b = a.hi + 1 < b.lo

let shift i d = { lo = i.lo + d; hi = i.hi + d }

let clamp i ~within = intersect i within

let pp ppf i =
  if i.lo = i.hi then Format.fprintf ppf "[%d]" i.lo
  else Format.fprintf ppf "[%d,%d]" i.lo i.hi

let to_string i = Format.asprintf "%a" pp i

let of_string s =
  let s = String.trim s in
  let fail () = Error (Printf.sprintf "cannot parse interval %S" s) in
  let parse_int x = int_of_string_opt (String.trim x) in
  let n = String.length s in
  if n = 0 then fail ()
  else if s.[0] = '[' && s.[n - 1] = ']' then
    let body = String.sub s 1 (n - 2) in
    match String.index_opt body ',' with
    | None -> (
        match parse_int body with
        | Some t -> Ok (point t)
        | None -> fail ())
    | Some k -> (
        let a = String.sub body 0 k in
        let b = String.sub body (k + 1) (String.length body - k - 1) in
        match (parse_int a, parse_int b) with
        | Some lo, Some hi when lo <= hi -> Ok (make lo hi)
        | Some _, Some _ -> Error (Printf.sprintf "interval %S has lo > hi" s)
        | _ -> fail ())
  else
    match parse_int s with Some t -> Ok (point t) | None -> fail ()
