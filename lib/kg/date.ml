type t = { year : int; month : int; day : int }

exception Invalid of string

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month ~year ~month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year year then 29 else 28
  | _ -> raise (Invalid (Printf.sprintf "month %d out of range" month))

let make ~year ~month ~day =
  if month < 1 || month > 12 then
    raise (Invalid (Printf.sprintf "month %d out of range" month));
  let max_day = days_in_month ~year ~month in
  if day < 1 || day > max_day then
    raise
      (Invalid
         (Printf.sprintf "day %d out of range for %04d-%02d" day year month));
  { year; month; day }

(* Howard Hinnant's days-from-civil: exact for the proleptic Gregorian
   calendar over the whole int range. *)
let to_day_number { year; month; day } =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let of_day_number z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  { year; month; day }

let of_iso s =
  let s = String.trim s in
  let negative = String.length s > 0 && s.[0] = '-' in
  let body = if negative then String.sub s 1 (String.length s - 1) else s in
  match String.split_on_char '-' body with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d)
      with
      | Some year, Some month, Some day -> (
          let year = if negative then -year else year in
          match make ~year ~month ~day with
          | date -> Ok date
          | exception Invalid msg -> Error msg)
      | _ -> Error (Printf.sprintf "malformed date %S" s))
  | _ -> Error (Printf.sprintf "malformed date %S (expected YYYY-MM-DD)" s)

let to_iso { year; month; day } =
  if year < 0 then Printf.sprintf "-%04d-%02d-%02d" (-year) month day
  else Printf.sprintf "%04d-%02d-%02d" year month day

let compare a b =
  match Int.compare a.year b.year with
  | 0 -> (
      match Int.compare a.month b.month with
      | 0 -> Int.compare a.day b.day
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let interval from_s to_s =
  match (of_iso from_s, of_iso to_s) with
  | Ok from_d, Ok to_d ->
      let lo = to_day_number from_d and hi = to_day_number to_d in
      if lo > hi then
        Error (Printf.sprintf "%s is after %s" from_s to_s)
      else Ok (Interval.make lo hi)
  | Error e, _ | _, Error e -> Error e

let interval_to_iso i =
  ( to_iso (of_day_number (Interval.lo i)),
    to_iso (of_day_number (Interval.hi i)) )

let pp ppf d = Format.pp_print_string ppf (to_iso d)
