(** Synthetic FootballDB.

    The paper extracts temporal facts about American-football players from
    footballdb.com: >13 K [playsFor] facts and >6 K [birthDate] facts.
    This generator reproduces that workload shape deterministically:
    players with a birth year, a debut in their early twenties and one to
    four club stints that never overlap; at the default 6 500 players it
    emits ≈ 6.5 K birthDate and ≈ 14 K playsFor facts.

    Noise injection reproduces the paper's "highly noisy setting where
    there are as many erroneous temporal facts as the correct ones":
    [noise_ratio] is the erroneous/correct fact ratio, and every planted
    error is reported so benches can score the debugger's precision and
    recall — something the real scraped data cannot provide. Error types:
    overlapping stints at a second team, stints before a plausible debut
    age, and conflicting second birth years. *)

type dataset = {
  graph : Kg.Graph.t;
  planted : Kg.Graph.id list;  (** ids of the injected erroneous facts *)
  players : int;
  clean_facts : int;
}

val generate :
  ?seed:int -> ?players:int -> ?noise_ratio:float -> unit -> dataset
(** Defaults: [seed = 1], [players = 6500], [noise_ratio = 0.0]. *)

val constraints : unit -> Logic.Rule.t list
(** The FootballDB constraint set:
    - [fb_one_team]: a player plays for one team at a time (hard);
    - [fb_one_birth]: a player has a single birth year (hard);
    - [fb_debut_age]: a stint starts at age 15 or later (hard). *)

val rules : unit -> Logic.Rule.t list
(** One soft inference rule ([fb_veteran]): a player with a stint
    starting past age 30 is a veteran. Exercises the inference path on
    this dataset. *)

val horizon : int
(** Last time point of the generated histories (2017, as in the paper). *)
