module Prng = Prelude.Prng

type dataset = {
  graph : Kg.Graph.t;
  planted : Kg.Graph.id list;
  relation_counts : (string * int) list;
}

let horizon = 2017

let confidence rng = 0.55 +. Prng.float rng 0.4
let conflict_confidence rng = 0.5 +. Prng.float rng 0.3

(* Fraction of the total allocated to each relation (playsFor dominates,
   as in the paper's 4M/6.3M). *)
let shares =
  [
    ("playsFor", 0.64);
    ("memberOf", 0.12);
    ("spouse", 0.12);
    ("educatedAt", 0.06);
    ("occupation", 0.06);
  ]

type entity = {
  name : string;
  mutable clubs : (string * Kg.Interval.t) list;
  mutable spouses : (string * Kg.Interval.t) list;
}

let fresh_interval rng =
  let start = Prng.range rng 1950 2012 in
  let finish = min horizon (start + Prng.range rng 1 10) in
  Kg.Interval.make start finish

(* An interval after [prev] (gap >= 1 so hard disjointness holds). *)
let interval_after rng prev =
  let start = Kg.Interval.hi prev + 1 + Prng.range rng 1 4 in
  if start >= horizon then None
  else
    let finish = min horizon (start + Prng.range rng 1 8) in
    Some (Kg.Interval.make start finish)

let generate ?(seed = 2) ?(total_facts = 63_000) ?(conflict_rate = 0.0) () =
  let rng = Prng.create seed in
  let graph = Kg.Graph.create () in
  let planted = ref [] in
  let conflicts_wanted =
    int_of_float (Float.round (conflict_rate *. float_of_int total_facts))
  in
  let clean_wanted = total_facts - conflicts_wanted in
  (* Entity pool: roughly one entity per six facts keeps careers dense
     enough for joins to matter without quadratic blowups. *)
  let num_entities = max 10 (clean_wanted / 6) in
  let entities =
    Array.init num_entities (fun i ->
        { name = Names.person rng i; clubs = []; spouses = [] })
  in
  let counts = Hashtbl.create 8 in
  let bump relation =
    Hashtbl.replace counts relation
      (1 + Option.value (Hashtbl.find_opt counts relation) ~default:0)
  in
  let add relation entity object_ interval conf =
    let id =
      Kg.Graph.add graph
        (Kg.Quad.v entity relation object_
           (Kg.Interval.lo interval, Kg.Interval.hi interval)
           conf)
    in
    bump relation;
    id
  in
  let emit_clean relation =
    let e = Prng.pick rng entities in
    match relation with
    | "playsFor" ->
        let club = Prng.pick rng Names.football_clubs in
        let interval =
          match e.clubs with
          | [] -> Some (fresh_interval rng)
          | (_, last) :: _ -> interval_after rng last
        in
        (match interval with
        | None -> false
        | Some interval ->
            e.clubs <- (club, interval) :: e.clubs;
            ignore (add "playsFor" e.name (Kg.Term.iri club) interval (confidence rng));
            true)
    | "spouse" ->
        let partner = Names.person rng (num_entities + Prng.int rng 100_000) in
        let interval =
          match e.spouses with
          | [] -> Some (fresh_interval rng)
          | (_, last) :: _ -> interval_after rng last
        in
        (match interval with
        | None -> false
        | Some interval ->
            e.spouses <- (partner, interval) :: e.spouses;
            ignore (add "spouse" e.name (Kg.Term.iri partner) interval (confidence rng));
            true)
    | "memberOf" ->
        ignore
          (add "memberOf" e.name
             (Kg.Term.iri (Prng.pick rng Names.organisations))
             (fresh_interval rng) (confidence rng));
        true
    | "educatedAt" ->
        let start = Prng.range rng 1950 2000 in
        let interval = Kg.Interval.make start (start + Prng.range rng 2 5) in
        ignore
          (add "educatedAt" e.name
             (Kg.Term.iri (Prng.pick rng Names.universities))
             interval (confidence rng));
        true
    | _ ->
        ignore
          (add "occupation" e.name
             (Kg.Term.iri (Prng.pick rng Names.occupations))
             (fresh_interval rng) (confidence rng));
        true
  in
  (* Emit clean facts according to the relation shares. *)
  List.iter
    (fun (relation, share) ->
      let want = int_of_float (share *. float_of_int clean_wanted) in
      let emitted = ref 0 in
      let attempts = ref 0 in
      while !emitted < want && !attempts < want * 20 do
        incr attempts;
        if emit_clean relation then incr emitted
      done)
    shares;
  (* Plant conflicts: overlapping second club / second spouse. *)
  let emitted = ref 0 in
  let attempts = ref 0 in
  while !emitted < conflicts_wanted && !attempts < conflicts_wanted * 20 do
    incr attempts;
    let e = Prng.pick rng entities in
    let plant relation existing other =
      match existing with
      | [] -> false
      | _ ->
          let prev_obj, prev = Prng.pick_list rng existing in
          let lo = Kg.Interval.lo prev and hi = Kg.Interval.hi prev in
          let start = Prng.range rng lo hi in
          let finish = min horizon (start + Prng.range rng 1 5) in
          let obj = other prev_obj in
          let id =
            add relation e.name (Kg.Term.iri obj)
              (Kg.Interval.make start finish)
              (conflict_confidence rng)
          in
          planted := id :: !planted;
          true
    in
    let ok =
      if Prng.bernoulli rng 0.8 then
        plant "playsFor" e.clubs (fun prev ->
            let rec pick () =
              let c = Prng.pick rng Names.football_clubs in
              if c = prev then pick () else c
            in
            pick ())
      else
        plant "spouse" e.spouses (fun _ ->
            Names.person rng (num_entities + 200_000 + Prng.int rng 100_000))
    in
    if ok then incr emitted
  done;
  let relation_counts =
    Hashtbl.fold (fun r c acc -> (r, c) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  { graph; planted = List.rev !planted; relation_counts }

(* Named scale regimes for the million-fact benchmarks: generation
   parameters are pinned here so the memory/speedup gates in [bench par]
   always measure the same corpus the committed row-oriented baselines
   were measured on (seed 2, 1 % planted conflicts). *)
let regimes = [ ("1e5", 100_000); ("1e6", 1_000_000) ]

let generate_regime ?(seed = 2) name =
  match List.assoc_opt name regimes with
  | Some total_facts -> generate ~seed ~total_facts ~conflict_rate:0.01 ()
  | None ->
      invalid_arg
        (Printf.sprintf "Wikidata.generate_regime: unknown regime %s (known: %s)"
           name
           (String.concat ", " (List.map fst regimes)))

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e ->
      failwith (Format.asprintf "Wikidata: %a" Rulelang.Parser.pp_error e)

let constraints () =
  parse_rules
    {|
constraint wd_one_club:
  playsFor(x, y)@t ^ playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint wd_one_spouse:
  spouse(x, y)@t ^ spouse(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint wd_member_after_education 0.8:
  memberOf(x, y)@t ^ educatedAt(x, z)@t2 => start(t2) <= start(t) .
|}

let rules () =
  parse_rules
    {|
rule wd_player_occupation 1.2:
  playsFor(x, y)@t => occupation(x, Athlete)@t .
|}
