module Prng = Prelude.Prng

type dataset = {
  graph : Kg.Graph.t;
  planted : Kg.Graph.id list;
  players : int;
  clean_facts : int;
}

let horizon = 2017

type career = {
  name : string;
  birth : int;
  stints : (string * Kg.Interval.t) list;
}

let make_career rng i =
  let name = Names.person rng i in
  let birth = Prng.range rng 1948 1992 in
  let debut = birth + Prng.range rng 20 24 in
  let num_stints =
    (* Mean just above 2, giving ~13K playsFor for 6.5K players. *)
    let r = Prng.float rng 1.0 in
    if r < 0.30 then 1 else if r < 0.65 then 2 else if r < 0.85 then 3 else 4
  in
  let rec build start n acc =
    if n = 0 || start >= horizon then List.rev acc
    else begin
      let len = Prng.range rng 1 6 in
      let finish = min horizon (start + len - 1) in
      let team = Prng.pick rng Names.football_teams in
      let gap = if Prng.bernoulli rng 0.6 then 1 else Prng.range rng 2 3 in
      build (finish + gap) (n - 1) ((team, Kg.Interval.make start finish) :: acc)
    end
  in
  { name; birth; stints = build debut num_stints [] }

let add graph q = Kg.Graph.add graph q

let clean_confidence rng = 0.6 +. Prng.float rng 0.35
let noise_confidence rng = 0.5 +. Prng.float rng 0.25

let emit_career rng graph career =
  let birth_id =
    add graph
      (Kg.Quad.v career.name "birthDate"
         (Kg.Term.int career.birth)
         (career.birth, horizon)
         (0.8 +. Prng.float rng 0.2))
  in
  let stint_ids =
    List.map
      (fun (team, interval) ->
        add graph
          (Kg.Quad.v career.name "playsFor" (Kg.Term.iri team)
             (Kg.Interval.lo interval, Kg.Interval.hi interval)
             (clean_confidence rng)))
      career.stints
  in
  birth_id :: stint_ids

(* A different team than [avoid]. *)
let other_team rng avoid =
  let rec pick () =
    let team = Prng.pick rng Names.football_teams in
    if team = avoid then pick () else team
  in
  pick ()

let inject_noise rng graph career =
  match Prng.int rng 3 with
  | 0 when career.stints <> [] ->
      (* Overlapping stint at another club. *)
      let team, interval = Prng.pick_list rng career.stints in
      let lo = Kg.Interval.lo interval and hi = Kg.Interval.hi interval in
      let start = Prng.range rng (max (lo - 1) 1948) hi in
      let finish = min horizon (start + Prng.range rng 1 4) in
      Some
        (add graph
           (Kg.Quad.v career.name "playsFor"
              (Kg.Term.iri (other_team rng team))
              (start, finish) (noise_confidence rng)))
  | 1 ->
      (* A stint before any plausible debut. *)
      let start = career.birth + Prng.range rng 0 10 in
      let finish = start + Prng.range rng 1 3 in
      Some
        (add graph
           (Kg.Quad.v career.name "playsFor"
              (Kg.Term.iri (Prng.pick rng Names.football_teams))
              (start, finish) (noise_confidence rng)))
  | _ ->
      (* A second, different birth year. *)
      let year = career.birth + (if Prng.bool rng then 1 else -1) * Prng.range rng 1 5 in
      Some
        (add graph
           (Kg.Quad.v career.name "birthDate" (Kg.Term.int year)
              (year, horizon) (noise_confidence rng)))

let generate ?(seed = 1) ?(players = 6500) ?(noise_ratio = 0.0) () =
  let rng = Prng.create seed in
  let graph = Kg.Graph.create () in
  let careers = List.init players (fun i -> make_career rng i) in
  let clean_facts =
    List.fold_left
      (fun acc career -> acc + List.length (emit_career rng graph career))
      0 careers
  in
  let num_noise =
    int_of_float (Float.round (noise_ratio *. float_of_int clean_facts))
  in
  let career_array = Array.of_list careers in
  let planted = ref [] in
  let attempts = ref 0 in
  while List.length !planted < num_noise && !attempts < num_noise * 10 do
    incr attempts;
    let career = Prng.pick rng career_array in
    match inject_noise rng graph career with
    | Some id -> planted := id :: !planted
    | None -> ()
  done;
  { graph; planted = List.rev !planted; players; clean_facts }

let parse_rules src =
  match Rulelang.Parser.parse_string src with
  | Ok rules -> rules
  | Error e ->
      failwith (Format.asprintf "Footballdb: %a" Rulelang.Parser.pp_error e)

let constraints () =
  parse_rules
    {|
constraint fb_one_team:
  playsFor(x, y)@t ^ playsFor(x, z)@t2 ^ y != z => disjoint(t, t2) .
constraint fb_one_birth:
  birthDate(x, y)@t ^ birthDate(x, z)@t2 ^ intersects(t, t2) => y = z .
constraint fb_debut_age:
  playsFor(x, y)@t ^ birthDate(x, z)@t2 => start(t) - value(z) >= 15 .
|}

let rules () =
  parse_rules
    {|
rule fb_veteran 1.8:
  playsFor(x, y)@t ^ birthDate(x, z)@t2 ^ start(t) - value(z) > 30
  => VeteranPlayer(x) .
|}
