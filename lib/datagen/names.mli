(** Deterministic entity-name pools for the synthetic datasets.

    The paper's datasets are scraped (footballdb.com, Wikidata) and not
    redistributable; our generators synthesise entities with readable
    names so demo output stays interpretable. *)

val person : Prelude.Prng.t -> int -> string
(** [person rng i] — a unique person IRI local name, e.g.
    [P4123_Marcus_Bell]. The [i] suffix guarantees uniqueness. *)

val football_teams : string array
(** 32 synthetic pro-football franchises. *)

val football_clubs : string array
(** 40 synthetic soccer clubs (for the running-example domain). *)

val universities : string array

val organisations : string array

val occupations : string array

val cities : string array
