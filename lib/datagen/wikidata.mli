(** Synthetic Wikidata-style UTKG.

    The paper extracts 6.3 M temporal facts from Wikidata over the
    relations [playsFor] (>4 M), [spouse] (>20 K), [memberOf] (>23 K),
    [educatedAt] (>6 K) and [occupation] (>4.5 K). We reproduce the shape
    at a configurable size: [playsFor] dominates (64 %), the four long-tail
    relations share the rest (the paper's unnamed remainder is folded into
    them, preserving playsFor dominance — documented substitution).

    [conflict_rate] plants conflicting facts — overlapping second clubs
    and overlapping second spouses — at the requested fraction of the
    total, which is what Figure 8's statistics screen counts (19,734
    conflicting facts out of 243,157 ≈ 8.1 %). *)

type dataset = {
  graph : Kg.Graph.t;
  planted : Kg.Graph.id list;
  relation_counts : (string * int) list;
}

val generate :
  ?seed:int -> ?total_facts:int -> ?conflict_rate:float -> unit -> dataset
(** Defaults: [seed = 2], [total_facts = 63_000] (the paper's corpus at
    1:100), [conflict_rate = 0.0]. *)

val regimes : (string * int) list
(** Named scale regimes for the million-fact benchmarks:
    [("1e5", 100_000); ("1e6", 1_000_000)]. *)

val generate_regime : ?seed:int -> string -> dataset
(** [generate_regime name] pins the generation parameters of a named
    regime (default [seed = 2], 1 % planted conflicts) so benchmark
    gates always measure the corpus their committed baselines were
    measured on.
    @raise Invalid_argument for an unknown regime name. *)

val constraints : unit -> Logic.Rule.t list
(** - [wd_one_club]: one club at a time (hard);
    - [wd_one_spouse]: one spouse at a time (hard);
    - [wd_member_after_education]: membership in an organisation starts
      no earlier than first education (soft, weight 0.8) — an example of
      an inclusion-style soft constraint over the long-tail relations. *)

val rules : unit -> Logic.Rule.t list
(** [wd_player_occupation]: a club player has occupation [Athlete] over
    the same interval (soft, weight 1.2). *)
